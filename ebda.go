// Package ebda reproduces "EbDa: A New Theory on Design and Verification
// of Deadlock-free Interconnection Networks" (Ebrahimi & Daneshtalab,
// ISCA 2017) as a practical Go library.
//
// The theory: divide a network's channels (physical or virtual, in any
// dimension) into partitions that each contain at most one complete
// D-pair (Theorem 1); inside a partition channels may be used arbitrarily
// and repeatedly, with U-/I-turns ordered ascending (Theorem 2); packets
// may move between disjoint partitions in ascending chain order
// (Theorem 3). Every design built this way has an acyclic channel
// dependency graph and is therefore deadlock-free under wormhole
// switching — no escape channels, no per-buffer packet limits.
//
// # Quick start
//
//	// Design: the six-channel fully adaptive 2D network of Figure 7(b).
//	chain := ebda.MustParseChain("PA[X1+ Y1+ Y1-] -> PB[X1- Y2+ Y2-]")
//
//	// Extract every turn Theorems 1-3 admit.
//	turns := chain.AllTurns()
//
//	// Verify mechanically on a concrete 8x8 mesh (Dally's condition).
//	report := ebda.VerifyChain(ebda.NewMesh(8, 8), chain)
//	fmt.Println(report.Acyclic) // true
//
//	// Turn the design into a routing algorithm and simulate it.
//	alg := ebda.NewAlgorithm("dyxy", chain, 2)
//	result := ebda.Simulate(ebda.SimConfig{
//		Net: ebda.NewMesh(8, 8), Alg: alg, VCs: alg.VCs(),
//		InjectionRate: 0.2,
//	})
//
// The facade re-exports the library's building blocks; the full API lives
// in the internal packages it fronts:
//
//   - channel model and partition theory (internal/channel, internal/core)
//   - Section-5 partitioning methodology (internal/partstrat)
//   - topologies and channel-dependency-graph verification
//     (internal/topology, internal/cdg)
//   - routing algorithms and baselines (internal/routing, internal/duato)
//   - the wormhole simulator and traffic patterns (internal/sim,
//     internal/traffic)
//   - every table and figure of the paper (internal/paper)
package ebda

import (
	"ebda/internal/cdg"
	"ebda/internal/channel"
	"ebda/internal/core"
	"ebda/internal/deadlock"
	"ebda/internal/partstrat"
	"ebda/internal/routing"
	"ebda/internal/sim"
	"ebda/internal/topology"
	"ebda/internal/traffic"
	"ebda/internal/viz"
)

// Core channel-model types.
type (
	// Dim is a network dimension (X, Y, Z, T, ...).
	Dim = channel.Dim
	// Sign is a direction along a dimension.
	Sign = channel.Sign
	// Class identifies an abstract channel family such as X1+ or Ye-.
	Class = channel.Class
	// Parity restricts a class to even or odd coordinates.
	Parity = channel.Parity
)

// Theory types.
type (
	// Partition is a set of channels usable arbitrarily and repeatedly.
	Partition = core.Partition
	// Chain is an ordered sequence of disjoint cycle-free partitions; a
	// validated chain is a deadlock-free design.
	Chain = core.Chain
	// TurnSet is the set of permitted channel-to-channel transitions.
	TurnSet = core.TurnSet
	// Turn is one permitted transition.
	Turn = core.Turn
	// TurnOptions selects which theorems contribute turns.
	TurnOptions = core.TurnOptions
)

// Substrate types.
type (
	// Network is an n-dimensional mesh, torus or irregular grid.
	Network = topology.Network
	// NodeID identifies a network node.
	NodeID = topology.NodeID
	// Coord is a node position.
	Coord = topology.Coord
	// VerifyReport is the result of a dependency-graph check.
	VerifyReport = cdg.Report
	// Algorithm is an executable routing function.
	Algorithm = routing.Algorithm
	// SimConfig parameterises a wormhole simulation.
	SimConfig = sim.Config
	// SimResult is a simulation outcome.
	SimResult = sim.Result
	// TrafficPattern picks packet destinations for the simulator.
	TrafficPattern = traffic.Pattern
)

// Directions.
const (
	X = channel.X
	Y = channel.Y
	Z = channel.Z
	T = channel.T

	Plus  = channel.Plus
	Minus = channel.Minus
)

// ParseClass parses a channel class in the paper's notation ("X+",
// "Y2-", "Ye+").
func ParseClass(s string) (Class, error) { return channel.Parse(s) }

// MustParseClass is ParseClass that panics on error.
func MustParseClass(s string) Class { return channel.MustParse(s) }

// NewPartition builds a named partition from channel classes; the channel
// order fixes the Theorem-2 ascending numbering.
func NewPartition(name string, classes ...Class) (*Partition, error) {
	return core.NewPartition(name, classes...)
}

// ParseChain parses the paper's arrow notation,
// e.g. "PA[X+ X- Y-] -> PB[Y+]" (with "Z1*" expanding to "Z1+ Z1-"), and
// validates Theorems 1 and 3 on the result.
func ParseChain(s string) (*Chain, error) { return core.ParseChain(s) }

// MustParseChain is ParseChain that panics on error.
func MustParseChain(s string) *Chain { return core.MustParseChain(s) }

// NewChain builds and validates a chain from partitions in transition
// order.
func NewChain(parts ...*Partition) (*Chain, error) { return core.NewChain(parts...) }

// MinChannelsFullyAdaptive returns (n+1) * 2^(n-1), the paper's minimum
// channel count for fully adaptive routing in n dimensions (Section 4).
func MinChannelsFullyAdaptive(n int) int { return core.MinChannelsFullyAdaptive(n) }

// DesignFullyAdaptive constructs the minimum-channel fully adaptive design
// for an n-dimensional mesh: 2^(n-1) partitions of n+1 channels each
// (Section 4; DyXY for n = 2, Figure 9(b) for n = 3).
func DesignFullyAdaptive(n int) (*Chain, error) { return partstrat.MinFullyAdaptiveChain(n) }

// NewMesh returns an n-dimensional mesh with the given per-dimension
// sizes.
func NewMesh(sizes ...int) *Network { return topology.NewMesh(sizes...) }

// NewTorus returns a k-ary n-cube.
func NewTorus(sizes ...int) *Network { return topology.NewTorus(sizes...) }

// NewPartialMesh3D returns a vertically partially connected 3D network
// with the given elevator columns.
func NewPartialMesh3D(x, y, z int, elevators [][2]int) *Network {
	return topology.NewPartialMesh3D(x, y, z, elevators)
}

// VerifyChain extracts the chain's full turn set (Theorems 1-3) and checks
// the induced channel dependency graph on the network for cycles.
func VerifyChain(net *Network, chain *Chain) VerifyReport { return cdg.VerifyChain(net, chain) }

// VerifyTurnSet checks an arbitrary turn relation on a network; vcs gives
// per-dimension VC counts (nil for one each).
func VerifyTurnSet(net *Network, vcs []int, ts *TurnSet) VerifyReport {
	return cdg.VerifyTurnSet(net, cdg.VCConfig(vcs), ts)
}

// VerifyAlgorithm extracts the full routing relation of an algorithm over
// all destinations and checks it for cycles (the classic Dally
// verification).
func VerifyAlgorithm(net *Network, vcs []int, alg Algorithm) VerifyReport {
	return routing.Verify(net, cdg.VCConfig(vcs), alg)
}

// Adaptiveness measures the fraction of minimal paths a turn relation
// makes usable across all node pairs; FullyAdaptive() on the report is the
// paper's full-adaptiveness property.
func Adaptiveness(net *Network, vcs []int, ts *TurnSet) (cdg.AdaptivenessReport, error) {
	return cdg.Adaptiveness(net, cdg.VCConfig(vcs), ts)
}

// NewAlgorithm derives an executable routing algorithm from a chain for a
// network with the given dimension count. The algorithm offers every
// productive hop the turn relation permits and never strands a packet.
func NewAlgorithm(name string, chain *Chain, dims int) *routing.FromChain {
	return routing.NewFromChain(name, chain, dims)
}

// Simulate runs the wormhole simulator with the given configuration.
func Simulate(cfg SimConfig) SimResult { return sim.New(cfg).Run() }

// FindDeadlockConfiguration runs the knot analysis on an algorithm: it
// returns a concrete potential-deadlock configuration (a circular wait in
// which every occupant's full request set is occupied), or an empty result
// when none exists — the analysis that separates escape-protected cyclic
// designs (Duato-style) from deadlock-capable ones. EbDa chains, having
// acyclic relations, always come back empty.
func FindDeadlockConfiguration(net *Network, vcs []int, alg Algorithm) *deadlock.Configuration {
	return deadlock.Find(net, cdg.VCConfig(vcs), alg)
}

// TurnDiagramSVG renders a 2D design's turn set as an SVG turn diagram in
// the style of the paper's figures.
func TurnDiagramSVG(ts *TurnSet) (string, error) { return viz.TurnDiagram(ts) }
