#!/bin/sh
# serve-smoke: the end-to-end serving check wired into `make check`.
#
# Builds ebda-serve and ebda-loadgen, starts the server on a loopback
# port, waits for its listening line, drives the fixed seeded workload
# against it with -smoke (zero 5xx, at least one coalesced request,
# byte-identical verdicts for repeated identical requests, invalid
# requests rejected with 4xx; BENCH_serve.json is written), then sends
# SIGTERM and requires a clean graceful drain (exit 0).
set -eu

GO=${GO:-go}
OUT=${OUT:-BENCH_serve.json}
tmp=$(mktemp -d)
pid=
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

$GO build -o "$tmp/ebda-serve" ./cmd/ebda-serve
$GO build -o "$tmp/ebda-loadgen" ./cmd/ebda-loadgen

"$tmp/ebda-serve" -addr 127.0.0.1:0 >"$tmp/serve.out" 2>"$tmp/serve.err" &
pid=$!

addr=
i=0
while [ $i -lt 100 ]; do
    addr=$(sed -n 's/^ebda-serve: listening on //p' "$tmp/serve.out")
    [ -n "$addr" ] && break
    if ! kill -0 "$pid" 2>/dev/null; then
        echo "serve-smoke: ebda-serve exited before listening" >&2
        cat "$tmp/serve.err" >&2
        exit 1
    fi
    sleep 0.1
    i=$((i + 1))
done
if [ -z "$addr" ]; then
    echo "serve-smoke: ebda-serve never printed its listening line" >&2
    cat "$tmp/serve.err" >&2
    exit 1
fi

"$tmp/ebda-loadgen" -addr "$addr" -smoke -seed 1 -requests 200 -out "$OUT"

kill -TERM "$pid"
if wait "$pid"; then
    pid=
else
    echo "serve-smoke: ebda-serve did not drain cleanly" >&2
    cat "$tmp/serve.err" >&2
    pid=
    exit 1
fi
echo "serve-smoke: clean drain, snapshot in $OUT"
