#!/bin/sh
# graph-smoke: the arbitrary-network CLI check wired into `make check`.
#
# Builds ebda-graph and drives it over the committed testdata/graphio
# goldens in all four modes, asserting the exact verdict line and exit
# code for each (0 verified, 1 violated, 2 usage/parse error), plus a
# byte-stable export round-trip: text -> JSON -> text must reproduce
# the golden exactly.
set -eu

GO=${GO:-go}
GOLD=testdata/graphio
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT INT TERM

$GO build -o "$tmp/ebda-graph" ./cmd/ebda-graph

fail=0

# expect EXITCODE "VERDICT LINE" ARGS...
expect() {
    want_code=$1
    want_out=$2
    shift 2
    set +e
    out=$("$tmp/ebda-graph" "$@" 2>"$tmp/err")
    code=$?
    set -e
    if [ "$code" != "$want_code" ]; then
        echo "graph-smoke: ebda-graph $* exited $code, want $want_code" >&2
        cat "$tmp/err" >&2
        fail=1
    elif [ "$out" != "$want_out" ]; then
        echo "graph-smoke: ebda-graph $*" >&2
        echo "  got:  $out" >&2
        echo "  want: $want_out" >&2
        fail=1
    fi
}

# The 3x3 mesh XY-routed per-output CDG verifies in all four modes.
expect 0 "loop: 18 channels, 17 edges: VERIFIED" \
    verify -mode=loop "$GOLD/xy3x3-out4.txt"
expect 0 "liveness: 18 channels, 17 edges: VERIFIED" \
    verify -mode=liveness "$GOLD/xy3x3-out4.txt"
expect 0 "escape: 18 channels, 17 edges: VERIFIED" \
    verify -mode=escape -escape 10,11,12,13,14,15,16,17 "$GOLD/xy3x3-out4.txt"
expect 0 "subrel: 18 channels, 17 edges: VERIFIED (subrelation: 17 edges)" \
    verify -mode=subrel "$GOLD/xy3x3-out4.txt"

# The four-channel ring violates every mode, each with its own witness.
expect 1 "loop: 5 channels, 4 edges: VIOLATED (cycle): n1 => n2 => n3 => (repeat)" \
    verify -mode=loop "$GOLD/cycle4.txt"
expect 1 "liveness: 5 channels, 4 edges: VIOLATED (cycle): n0 => n1 => [n1 => n2 => n3 => (repeat)]" \
    verify -mode=liveness "$GOLD/cycle4.txt"
expect 1 "subrel: 5 channels, 4 edges: VIOLATED (no-subrelation): n0 => [n1 => n2 => n3 => (repeat)]" \
    verify -mode=subrel "$GOLD/cycle4.txt"

# The Duato exerciser: cyclic adaptive core, escape channel 4 drains it.
expect 0 "escape: 6 channels, 7 edges: VERIFIED" \
    verify -mode=escape -escape 4 "$GOLD/escape-ok.txt"
expect 1 "liveness: 4 channels, 2 edges: VIOLATED (dead-end): n0 => n1 => n2" \
    verify -mode=liveness "$GOLD/deadend.txt"

# Usage and parse failures exit 2, never 0 or 1.
expect 2 "" verify -mode=bogus "$GOLD/cycle4.txt"
expect 2 "" import "$GOLD/does-not-exist.txt"

# Round-trip: text -> JSON -> text reproduces the golden byte for byte.
"$tmp/ebda-graph" export -json "$GOLD/escape-ok.txt" >"$tmp/g.json"
"$tmp/ebda-graph" export "$tmp/g.json" >"$tmp/g.txt"
if ! cmp -s "$tmp/g.txt" "$GOLD/escape-ok.txt"; then
    echo "graph-smoke: export round-trip diverged from $GOLD/escape-ok.txt" >&2
    diff "$GOLD/escape-ok.txt" "$tmp/g.txt" >&2 || true
    fail=1
fi

[ "$fail" = 0 ] || exit 1
echo "graph-smoke: all mode verdicts and round-trips match"
