package ebda_test

import (
	"fmt"

	"ebda"
)

// Design a deadlock-free routing algorithm and verify it mechanically.
func Example() {
	chain := ebda.MustParseChain("PA[X1+ Y1+ Y1-] -> PB[X1- Y2+ Y2-]")
	report := ebda.VerifyChain(ebda.NewMesh(8, 8), chain)
	fmt.Println(report.Acyclic)
	// Output: true
}

// ParseChain reads the paper's arrow notation; chains are validated
// against Theorems 1 and 3 as they parse.
func ExampleParseChain() {
	chain, err := ebda.ParseChain("PA[X+ X- Y-] -> PB[Y+]")
	if err != nil {
		panic(err)
	}
	fmt.Println(chain.PlainString())
	// A partition with two complete D-pairs violates Theorem 1.
	_, err = ebda.ParseChain("PA[X+ X- Y+ Y-]")
	fmt.Println(err != nil)
	// Output:
	// PA[X+ X- Y-] -> PB[Y+]
	// true
}

// Turn extraction reproduces the paper's figures: the chain of Figure 5
// yields the North-Last turn model.
func ExampleChain_turns() {
	chain := ebda.MustParseChain("PA[X+ X- Y-] -> PB[Y+]")
	n90, nU, nI := chain.AllTurns().Counts()
	fmt.Printf("%d 90-degree, %d U, %d I\n", n90, nU, nI)
	// Output: 6 90-degree, 2 U, 0 I
}

// MinChannelsFullyAdaptive is the paper's Section-4 formula.
func ExampleMinChannelsFullyAdaptive() {
	for n := 1; n <= 4; n++ {
		fmt.Println(n, ebda.MinChannelsFullyAdaptive(n))
	}
	// Output:
	// 1 2
	// 2 6
	// 3 16
	// 4 40
}

// DesignFullyAdaptive constructs the minimum-channel design; for n = 2 it
// is the DyXY partitioning of Figure 7(b).
func ExampleDesignFullyAdaptive() {
	chain, _ := ebda.DesignFullyAdaptive(2)
	fmt.Println(chain)
	// Output: PA[X1+ Y1+ Y1-] -> PB[X1- Y2+ Y2-]
}

// Adaptiveness measures usable minimal paths; the six-channel design is
// fully adaptive.
func ExampleAdaptiveness() {
	chain := ebda.MustParseChain("PA[X1+ Y1+ Y1-] -> PB[X1- Y2+ Y2-]")
	report, _ := ebda.Adaptiveness(ebda.NewMesh(4, 4), []int{1, 2}, chain.AllTurns())
	fmt.Println(report.FullyAdaptive())
	// Output: true
}

// VerifyTurnSet checks arbitrary turn relations — here the unrestricted
// 2D relation, which is cyclic.
func ExampleVerifyTurnSet() {
	chain := ebda.MustParseChain("PA[X+ X- Y-] -> PB[Y+]")
	fmt.Println(ebda.VerifyTurnSet(ebda.NewMesh(4, 4), nil, chain.AllTurns()).Acyclic)
	// Output: true
}
