package partstrat

import "ebda/internal/obs"

// Strategy instrumentation: chains produced per partitioning family,
// labeled so /metrics shows which of the paper's strategies a sweep
// exercised. Derive and DeriveWithPairings count their deduplicated
// output; Partition counts each successful Algorithm 1 run (including the
// ones Derive drives internally).
var (
	obsChainsAlgorithm1 = obs.NewCounter(
		obs.Label("ebda_partstrat_chains_total", "family", "algorithm1"),
		"chains produced per partitioning strategy family")
	obsChainsDerive = obs.NewCounter(
		obs.Label("ebda_partstrat_chains_total", "family", "derive"),
		"chains produced per partitioning strategy family")
	obsChainsPairings = obs.NewCounter(
		obs.Label("ebda_partstrat_chains_total", "family", "pairings"),
		"chains produced per partitioning strategy family")
	obsChainsExceptional = obs.NewCounter(
		obs.Label("ebda_partstrat_chains_total", "family", "exceptional"),
		"chains produced per partitioning strategy family")
	obsChainsSplit = obs.NewCounter(
		obs.Label("ebda_partstrat_chains_total", "family", "split"),
		"chains produced per partitioning strategy family")
	obsChainsMinFull = obs.NewCounter(
		obs.Label("ebda_partstrat_chains_total", "family", "minfull"),
		"chains produced per partitioning strategy family")
)
