// Package partstrat implements the paper's Section 5: the systematic
// partitioning methodology that turns a channel inventory (how many VCs per
// dimension) into families of deadlock-free routing designs, from maximally
// adaptive down to deterministic.
//
// The entry points mirror the paper's structure:
//
//   - Set / Arrangement model the per-dimension channel sets and their
//     ordering rules (Section 5.1);
//   - Arrangement.Partition is Algorithm 1, the main extraction procedure
//     (Section 5.2.1);
//   - ExceptionalCase is the no-VC two-partition construction
//     (Section 5.2.2);
//   - Derive is Algorithm 2, enumerating channel reorderings
//     (Section 5.3.1);
//   - SplitLast / FullSplit increase the partition count, trading
//     adaptiveness for simplicity down to deterministic routing
//     (Section 5.3.2); core.Chain.Reversed covers Section 5.3.3;
//   - MinFullyAdaptiveChain builds the Section-4 minimum-channel fully
//     adaptive design, (n+1)*2^(n-1) channels in 2^(n-1) partitions.
package partstrat

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"ebda/internal/channel"
	"ebda/internal/core"
)

// Set is the ordered channel list of one dimension, as used by the
// arrangement step. The order is semantic: Algorithm 1 consumes channels
// from the front, and for the leading set the first two channels form the
// D-pair placed in the next partition, so sets intended to lead should be
// arranged pairwise ({Y1+ Y1-, Y2+ Y2-} or the mixed {Y2+ Y1-, Y1+ Y2-} of
// Arrangement 3).
type Set struct {
	Dim      channel.Dim
	Channels []channel.Class
}

// PairedSet returns the canonical set for a dimension with the given number
// of VCs: D1+ D1- D2+ D2- ... (Arrangement 1 ordering).
func PairedSet(d channel.Dim, vcs int) Set {
	s := Set{Dim: d}
	for vc := 1; vc <= vcs; vc++ {
		s.Channels = append(s.Channels,
			channel.NewVC(d, channel.Plus, vc),
			channel.NewVC(d, channel.Minus, vc))
	}
	return s
}

// NewSet builds a set from explicit classes, validating that they all
// belong to the stated dimension.
func NewSet(d channel.Dim, classes ...channel.Class) (Set, error) {
	for _, c := range classes {
		if c.Dim != d {
			return Set{}, fmt.Errorf("partstrat: channel %s does not belong to dimension %s", c, d)
		}
	}
	return Set{Dim: d, Channels: append([]channel.Class(nil), classes...)}, nil
}

// MustSet is NewSet that panics on error.
func MustSet(d channel.Dim, classes ...channel.Class) Set {
	s, err := NewSet(d, classes...)
	if err != nil {
		panic(err)
	}
	return s
}

// PairCount returns the number of complete D-pairs the set can still cover:
// min(#positive, #negative channels). This is the ordering key of
// Arrangement 1.
func (s Set) PairCount() int {
	pos, neg := 0, 0
	for _, c := range s.Channels {
		if c.Sign == channel.Plus {
			pos++
		} else {
			neg++
		}
	}
	if pos < neg {
		return pos
	}
	return neg
}

// Len returns the number of channels remaining in the set.
func (s Set) Len() int { return len(s.Channels) }

// clone returns a deep copy.
func (s Set) clone() Set {
	return Set{Dim: s.Dim, Channels: append([]channel.Class(nil), s.Channels...)}
}

// rotated returns the set cyclically left-shifted by k channels.
func (s Set) rotated(k int) Set {
	n := len(s.Channels)
	if n == 0 {
		return s.clone()
	}
	k = ((k % n) + n) % n
	out := Set{Dim: s.Dim, Channels: make([]channel.Class, 0, n)}
	out.Channels = append(out.Channels, s.Channels[k:]...)
	out.Channels = append(out.Channels, s.Channels[:k]...)
	return out
}

// String renders the set as "X: X1+ X1- X2+ X2-".
func (s Set) String() string {
	parts := make([]string, len(s.Channels))
	for i, c := range s.Channels {
		parts[i] = c.String()
	}
	return s.Dim.String() + ": " + strings.Join(parts, " ")
}

// Arrangement is an ordered list of sets, the input to Algorithm 1. The
// first set leads: each extracted partition takes its next D-pair from
// Set1 and one channel from each following set.
type Arrangement []Set

// ArrangeByPairs orders sets by descending pair count (Arrangement 1). The
// sort is stable, so ties keep the caller's order — choosing among tied
// orders is exactly the freedom Arrangement 2 describes.
func ArrangeByPairs(sets ...Set) Arrangement {
	out := make(Arrangement, len(sets))
	copy(out, sets)
	sort.SliceStable(out, func(i, j int) bool { return out[i].PairCount() > out[j].PairCount() })
	return out
}

// ArrangementFor builds the canonical Arrangement-1 input for a network
// whose dimension d has vcCounts[d] virtual channels.
func ArrangementFor(vcCounts []int) Arrangement {
	sets := make([]Set, len(vcCounts))
	for d, v := range vcCounts {
		sets[d] = PairedSet(channel.Dim(d), v)
	}
	return ArrangeByPairs(sets...)
}

// clone deep-copies the arrangement.
func (a Arrangement) clone() Arrangement {
	out := make(Arrangement, len(a))
	for i, s := range a {
		out[i] = s.clone()
	}
	return out
}

// empty reports whether all sets are exhausted.
func (a Arrangement) empty() bool {
	for _, s := range a {
		if s.Len() > 0 {
			return false
		}
	}
	return true
}

// Partition runs Algorithm 1: repeatedly form a partition from the leading
// set's next D-pair plus the first channel of every other set, remove the
// consumed channels, and re-sort sets by remaining pair count (stable).
// The procedure terminates when all sets are empty; trailing partitions may
// be smaller when channels run out.
func (a Arrangement) Partition() (*core.Chain, error) {
	sets := a.clone()
	var parts []*core.Partition
	for i := 0; !sets.empty(); i++ {
		if i > 1024 {
			return nil, errors.New("partstrat: Algorithm 1 failed to terminate")
		}
		var classes []channel.Class
		// Lead set contributes its next D-pair (or its last channel).
		lead := &sets[0]
		take := 2
		if lead.Len() < 2 {
			take = lead.Len()
		}
		classes = append(classes, lead.Channels[:take]...)
		lead.Channels = lead.Channels[take:]
		// Every other set contributes one channel.
		for j := 1; j < len(sets); j++ {
			s := &sets[j]
			if s.Len() == 0 {
				continue
			}
			classes = append(classes, s.Channels[0])
			s.Channels = s.Channels[1:]
		}
		if len(classes) == 0 {
			break
		}
		p, err := core.NewPartition(autoName(i), classes...)
		if err != nil {
			return nil, err
		}
		parts = append(parts, p)
		// Re-sort by remaining pair count (stable), per the paper's
		// "sets are reordered if necessary".
		sort.SliceStable(sets, func(x, y int) bool {
			return sets[x].PairCount() > sets[y].PairCount()
		})
	}
	chain, err := core.NewChain(parts...)
	if err == nil {
		obsChainsAlgorithm1.Inc()
	}
	return chain, err
}

func autoName(i int) string {
	if i < 26 {
		return "P" + string(rune('A'+i))
	}
	return fmt.Sprintf("P%d", i)
}

// Derive runs Algorithm 2: it enumerates the chains produced by Algorithm 1
// under every combination of cyclic reorderings — the leading set shifted
// pairwise (by two) through its q pair positions and every other set
// shifted channel-wise through its positions. Duplicate chains (equal
// partition sequences) are removed, preserving first-seen order.
func Derive(a Arrangement) ([]*core.Chain, error) {
	if len(a) == 0 {
		return nil, errors.New("partstrat: empty arrangement")
	}
	shiftCounts := make([]int, len(a))
	for i, s := range a {
		if i == 0 {
			shiftCounts[i] = s.Len() / 2 // pairwise shifts
		} else {
			shiftCounts[i] = s.Len()
		}
		if shiftCounts[i] == 0 {
			shiftCounts[i] = 1
		}
	}
	var (
		out  []*core.Chain
		seen = map[string]bool{}
	)
	shifts := make([]int, len(a))
	var rec func(i int) error
	rec = func(i int) error {
		if i == len(a) {
			arr := make(Arrangement, len(a))
			for j, s := range a {
				k := shifts[j]
				if j == 0 {
					k *= 2
				}
				arr[j] = s.rotated(k)
			}
			chain, err := arr.Partition()
			if err != nil {
				return err
			}
			key := chain.String()
			if !seen[key] {
				seen[key] = true
				out = append(out, chain)
			}
			return nil
		}
		for shifts[i] = 0; shifts[i] < shiftCounts[i]; shifts[i]++ {
			if err := rec(i + 1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(0); err != nil {
		return nil, err
	}
	obsChainsDerive.Add(uint64(len(out)))
	return out, nil
}

// PairArrangements implements Arrangement 3 (Section 5.1): when the
// leading set has q VCs, its D-pairs can be re-organised in q! ways by
// pairing each positive channel with a different negative VC — e.g.
// {Y1+ Y1-, Y2+ Y2-} or {Y2+ Y1-, Y1+ Y2-}. Each returned set keeps the
// positive channels in VC order and permutes the negative partners, in
// lexicographic permutation order (the identity pairing first).
func PairArrangements(s Set) []Set {
	var pos, neg []channel.Class
	for _, c := range s.Channels {
		if c.Sign == channel.Plus {
			pos = append(pos, c)
		} else {
			neg = append(neg, c)
		}
	}
	if len(pos) != len(neg) {
		// Unbalanced sets keep their original ordering only.
		return []Set{s.clone()}
	}
	var out []Set
	perm := make([]int, len(neg))
	for i := range perm {
		perm[i] = i
	}
	var rec func(k int)
	rec = func(k int) {
		if k == len(perm) {
			ns := Set{Dim: s.Dim}
			for i, p := range pos {
				ns.Channels = append(ns.Channels, p, neg[perm[i]])
			}
			out = append(out, ns)
			return
		}
		for i := k; i < len(perm); i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(0)
	// The recursion above emits permutations in swap order; sort them
	// lexicographically by the resulting channel sequence for stable,
	// documented output.
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Channels, out[j].Channels
		for k := range a {
			if c := a[k].Compare(b[k]); c != 0 {
				return c < 0
			}
		}
		return false
	})
	return out
}

// DeriveWithPairings runs Algorithm 2 over every Arrangement-3 pairing of
// the leading set, concatenating and de-duplicating the resulting chains.
func DeriveWithPairings(a Arrangement) ([]*core.Chain, error) {
	if len(a) == 0 {
		return nil, errors.New("partstrat: empty arrangement")
	}
	var out []*core.Chain
	seen := map[string]bool{}
	for _, lead := range PairArrangements(a[0]) {
		arr := append(Arrangement{lead}, a[1:]...)
		chains, err := Derive(arr)
		if err != nil {
			return nil, err
		}
		for _, c := range chains {
			key := c.String()
			if !seen[key] {
				seen[key] = true
				out = append(out, c)
			}
		}
	}
	obsChainsPairings.Add(uint64(len(out)))
	return out, nil
}

// ExceptionalCase implements Section 5.2.2: with no virtual channels,
// channels can be divided into exactly two partitions neither of which
// covers a complete pair — one channel per dimension in PA, the opposite
// directions in PB. Exchanging channels between the partitions yields all
// 2^n options (n = number of dimensions); each is returned as a two-
// partition chain PA -> PB.
func ExceptionalCase(dims int) []*core.Chain {
	if dims < 1 || dims > 16 {
		panic(fmt.Sprintf("partstrat: ExceptionalCase dims %d out of range", dims))
	}
	out := make([]*core.Chain, 0, 1<<uint(dims))
	for mask := 0; mask < 1<<uint(dims); mask++ {
		var pa, pb []channel.Class
		for d := 0; d < dims; d++ {
			sa, sb := channel.Plus, channel.Minus
			if mask&(1<<uint(d)) != 0 {
				sa, sb = channel.Minus, channel.Plus
			}
			pa = append(pa, channel.New(channel.Dim(d), sa))
			pb = append(pb, channel.New(channel.Dim(d), sb))
		}
		chain := core.MustChain(
			core.MustPartition("PA", pa...),
			core.MustPartition("PB", pb...),
		)
		out = append(out, chain)
	}
	obsChainsExceptional.Add(uint64(len(out)))
	return out
}

// SplitLast returns a new chain in which every partition after the first is
// replaced by singleton partitions, one per channel in order
// (Section 5.3.2: increasing the number of partitions reduces
// adaptiveness). Splitting never violates Theorem 1 — sub-partitions of
// cycle-free partitions are cycle-free.
func SplitLast(c *core.Chain) *core.Chain {
	parts := []*core.Partition{c.Partitions()[0].WithName(autoName(0))}
	i := 1
	for _, p := range c.Partitions()[1:] {
		for _, cls := range p.Channels() {
			parts = append(parts, core.MustPartition(autoName(i), cls))
			i++
		}
	}
	obsChainsSplit.Inc()
	return core.MustChain(parts...)
}

// FullSplit returns the chain with every channel in its own singleton
// partition, in chain order — the deterministic-routing end of the
// spectrum (Table 3).
func FullSplit(c *core.Chain) *core.Chain {
	var parts []*core.Partition
	for _, cls := range c.Channels() {
		parts = append(parts, core.MustPartition(autoName(len(parts)), cls))
	}
	obsChainsSplit.Inc()
	return core.MustChain(parts...)
}

// MinFullyAdaptiveChain constructs the Section-4 minimum-channel fully
// adaptive design for an n-dimensional mesh: 2^(n-1) partitions, one per
// pair of merged orthants, each holding the complete pair of the last
// dimension plus one channel of every other dimension, with VC numbers
// chosen so all partitions are disjoint. The total channel count is
// (n+1) * 2^(n-1), matching core.MinChannelsFullyAdaptive.
//
// Partitions are emitted in Gray-code order over the sign vector of
// dimensions 0..n-2, so consecutive partitions differ in one region axis
// (the paper's "neighbouring regions" heuristic). For n = 2 this yields the
// DyXY design of Figure 7(b); for n = 3 a design equivalent to Figure 9(b).
func MinFullyAdaptiveChain(n int) (*core.Chain, error) {
	if n < 1 {
		return nil, fmt.Errorf("partstrat: dimension %d < 1", n)
	}
	if n > 8 {
		return nil, fmt.Errorf("partstrat: dimension %d too large (2^(n-1) partitions)", n)
	}
	numParts := 1 << uint(n-1)
	// vcNext[dim][signIndex] is the next VC number to hand out.
	vcNext := make([][2]int, n)
	for d := range vcNext {
		vcNext[d] = [2]int{1, 1}
	}
	var parts []*core.Partition
	for i := 0; i < numParts; i++ {
		gray := i ^ (i >> 1)
		var classes []channel.Class
		// One channel per leading dimension, direction from the Gray code.
		for d := 0; d < n-1; d++ {
			sign := channel.Plus
			si := 0
			if gray&(1<<uint(d)) != 0 {
				sign = channel.Minus
				si = 1
			}
			vc := vcNext[d][si]
			vcNext[d][si]++
			classes = append(classes, channel.NewVC(channel.Dim(d), sign, vc))
		}
		// The last dimension contributes its complete pair, fresh VC per
		// partition.
		last := channel.Dim(n - 1)
		vc := vcNext[n-1][0]
		vcNext[n-1][0]++
		classes = append(classes,
			channel.NewVC(last, channel.Plus, vc),
			channel.NewVC(last, channel.Minus, vc))
		p, err := core.NewPartition(autoName(i), classes...)
		if err != nil {
			return nil, err
		}
		parts = append(parts, p)
	}
	chain, err := core.NewChain(parts...)
	if err == nil {
		obsChainsMinFull.Inc()
	}
	return chain, err
}

// VCRequirements returns the per-dimension VC counts used by
// MinFullyAdaptiveChain(n): 2^(n-2) for each of the first n-1 dimensions
// (1 when n < 2) and 2^(n-1) for the last.
func VCRequirements(n int) []int {
	out := make([]int, n)
	lead := 1
	if n >= 2 {
		lead = 1 << uint(n-2)
	}
	for d := 0; d < n-1; d++ {
		out[d] = lead
	}
	out[n-1] = 1 << uint(n-1)
	return out
}
