package partstrat

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ebda/internal/cdg"
	"ebda/internal/channel"
	"ebda/internal/core"
	"ebda/internal/topology"
)

func TestPairedSet(t *testing.T) {
	s := PairedSet(channel.Y, 2)
	want := channel.MustParseList("Y1+ Y1- Y2+ Y2-")
	if len(s.Channels) != 4 {
		t.Fatalf("len = %d", len(s.Channels))
	}
	for i, c := range s.Channels {
		if c != want[i] {
			t.Errorf("channel %d = %v, want %v", i, c, want[i])
		}
	}
	if s.PairCount() != 2 {
		t.Errorf("PairCount = %d", s.PairCount())
	}
}

func TestPairCountUnbalanced(t *testing.T) {
	s := MustSet(channel.X, channel.MustParseList("X1- X2+ X2- X3+ X3-")...)
	if s.PairCount() != 2 {
		t.Errorf("PairCount = %d, want 2 (min(2 pos, 3 neg))", s.PairCount())
	}
	neg := MustSet(channel.Y, channel.MustParseList("Y1- Y2-")...)
	if neg.PairCount() != 0 {
		t.Errorf("all-negative set PairCount = %d, want 0", neg.PairCount())
	}
}

func TestNewSetRejectsWrongDim(t *testing.T) {
	if _, err := NewSet(channel.X, channel.New(channel.Y, channel.Plus)); err == nil {
		t.Error("wrong-dimension channel should be rejected")
	}
}

func TestArrangeByPairs(t *testing.T) {
	x := PairedSet(channel.X, 1)
	y := PairedSet(channel.Y, 3)
	z := PairedSet(channel.Z, 2)
	a := ArrangeByPairs(x, y, z)
	if a[0].Dim != channel.Y || a[1].Dim != channel.Z || a[2].Dim != channel.X {
		t.Errorf("order = %v %v %v", a[0].Dim, a[1].Dim, a[2].Dim)
	}
	// Stability on ties: caller order kept.
	b := ArrangeByPairs(PairedSet(channel.Z, 2), PairedSet(channel.X, 2))
	if b[0].Dim != channel.Z {
		t.Error("stable sort should keep Z first on tie")
	}
}

func TestAlgorithm1Simple2D(t *testing.T) {
	a := Arrangement{PairedSet(channel.X, 1), PairedSet(channel.Y, 1)}
	chain, err := a.Partition()
	if err != nil {
		t.Fatal(err)
	}
	if got := chain.PlainString(); got != "PA[X+ X- Y+] -> PB[Y-]" {
		t.Errorf("chain = %s", got)
	}
}

func TestAlgorithm1ProducesValidChains(t *testing.T) {
	for _, vcs := range [][]int{{1, 1}, {2, 2}, {1, 2}, {3, 2, 3}, {2, 2, 4}, {1, 1, 1, 1}} {
		a := ArrangementFor(vcs)
		chain, err := a.Partition()
		if err != nil {
			t.Fatalf("vcs %v: %v", vcs, err)
		}
		// All channels consumed exactly once.
		total := 0
		for _, v := range vcs {
			total += 2 * v
		}
		if got := len(chain.Channels()); got != total {
			t.Errorf("vcs %v: chain has %d channels, want %d", vcs, got, total)
		}
	}
}

func TestDerive2DOptions(t *testing.T) {
	chains, err := Derive(Arrangement{PairedSet(channel.X, 1), PairedSet(channel.Y, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if len(chains) != 2 {
		t.Fatalf("options = %d, want 2", len(chains))
	}
	want := []string{"PA[X+ X- Y+] -> PB[Y-]", "PA[X+ X- Y-] -> PB[Y+]"}
	for i, c := range chains {
		if c.PlainString() != want[i] {
			t.Errorf("option %d = %s, want %s", i, c.PlainString(), want[i])
		}
	}
}

func TestExceptionalCase(t *testing.T) {
	chains := ExceptionalCase(2)
	if len(chains) != 4 {
		t.Fatalf("2D exceptional options = %d, want 4", len(chains))
	}
	seen := map[string]bool{}
	for _, c := range chains {
		seen[c.PlainString()] = true
		// No partition covers a complete pair.
		for _, p := range c.Partitions() {
			if len(p.CompletePairDims()) != 0 {
				t.Errorf("%s: exceptional partition covers a pair", c.PlainString())
			}
		}
	}
	for _, want := range []string{
		"PA[X+ Y+] -> PB[X- Y-]",
		"PA[X+ Y-] -> PB[X- Y+]",
		"PA[X- Y+] -> PB[X+ Y-]",
		"PA[X- Y-] -> PB[X+ Y+]",
	} {
		if !seen[want] {
			t.Errorf("missing option %s", want)
		}
	}
	if len(ExceptionalCase(3)) != 8 {
		t.Error("3D exceptional options should be 8")
	}
}

func TestSplitLastAndFullSplit(t *testing.T) {
	c := core.MustParseChain("PA[X+ Y+] -> PB[X- Y-]")
	s := SplitLast(c)
	if got := s.PlainString(); got != "PA[X+ Y+] -> PB[X-] -> PC[Y-]" {
		t.Errorf("SplitLast = %s", got)
	}
	f := FullSplit(c)
	if got := f.PlainString(); got != "PA[X+] -> PB[Y+] -> PC[X-] -> PD[Y-]" {
		t.Errorf("FullSplit = %s", got)
	}
}

func TestMinFullyAdaptiveChain2D(t *testing.T) {
	chain, err := MinFullyAdaptiveChain(2)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 7(b): PA[X1+ Y1+ Y1-] -> PB[X1- Y2+ Y2-].
	if got := chain.String(); got != "PA[X1+ Y1+ Y1-] -> PB[X1- Y2+ Y2-]" {
		t.Errorf("chain = %s", got)
	}
}

func TestMinFullyAdaptiveChainProperties(t *testing.T) {
	for n := 1; n <= 5; n++ {
		chain, err := MinFullyAdaptiveChain(n)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := len(chain.Channels()), core.MinChannelsFullyAdaptive(n); got != want {
			t.Errorf("n=%d: %d channels, want %d", n, got, want)
		}
		if got, want := chain.Len(), 1<<uint(n-1); got != want && n > 1 {
			t.Errorf("n=%d: %d partitions, want %d", n, got, want)
		}
		// Each partition has n+1 channels with exactly one complete pair
		// (the last dimension's).
		for _, p := range chain.Partitions() {
			if p.Len() != n+1 {
				t.Errorf("n=%d: partition %s has %d channels", n, p.Name(), p.Len())
			}
			dims := p.CompletePairDims()
			if len(dims) != 1 || dims[0] != channel.Dim(n-1) {
				t.Errorf("n=%d: partition %s pairs = %v", n, p.Name(), dims)
			}
		}
		// VC requirements match the stated formula.
		vcs := VCRequirements(n)
		derived := cdg.VCConfigFor(n, chain.Channels())
		for d := 0; d < n; d++ {
			if vcs[d] != derived[d] {
				t.Errorf("n=%d dim %d: VCRequirements %d != derived %d", n, d, vcs[d], derived[d])
			}
		}
	}
}

func TestMinFullyAdaptiveVerifiesAndIsFullyAdaptive(t *testing.T) {
	// n=2 on 5x5 and n=3 on 3x3x3: acyclic AND fully adaptive.
	cases := []struct {
		n   int
		net *topology.Network
	}{
		{2, topology.NewMesh(5, 5)},
		{3, topology.NewMesh(3, 3, 3)},
	}
	for _, tc := range cases {
		chain, err := MinFullyAdaptiveChain(tc.n)
		if err != nil {
			t.Fatal(err)
		}
		rep := cdg.VerifyChain(tc.net, chain)
		if !rep.Acyclic {
			t.Fatalf("n=%d: %s", tc.n, rep)
		}
		vcs := cdg.VCConfigFor(tc.n, chain.Channels())
		ad, err := cdg.Adaptiveness(tc.net, vcs, chain.AllTurns())
		if err != nil {
			t.Fatal(err)
		}
		if !ad.FullyAdaptive() {
			t.Errorf("n=%d: %s", tc.n, ad)
		}
	}
}

func TestDeriveProducesDistinctValidChains(t *testing.T) {
	chains, err := Derive(ArrangementFor([]int{2, 2}))
	if err != nil {
		t.Fatal(err)
	}
	if len(chains) < 2 {
		t.Fatalf("expected multiple options, got %d", len(chains))
	}
	seen := map[string]bool{}
	for _, c := range chains {
		key := c.String()
		if seen[key] {
			t.Errorf("duplicate chain %s", key)
		}
		seen[key] = true
	}
}

func TestQuickAlgorithm1InvariantsHold(t *testing.T) {
	// Algorithm 1 on any random arrangement must yield a valid chain
	// (Theorem-1 partitions, pairwise disjoint) consuming every channel
	// exactly once, and the chain must verify acyclic on a mesh.
	net2 := topology.NewMesh(3, 3)
	net3 := topology.NewMesh(3, 3, 2)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		dims := 2 + r.Intn(2)
		vcs := make([]int, dims)
		total := 0
		for d := range vcs {
			vcs[d] = 1 + r.Intn(3)
			total += 2 * vcs[d]
		}
		arr := ArrangementFor(vcs)
		// Random rotations to explore Arrangement 2/3 variants.
		for i := range arr {
			k := r.Intn(arr[i].Len())
			if i == 0 {
				k &^= 1 // keep the lead set pair-aligned
			}
			arr[i] = arr[i].rotated(k)
		}
		chain, err := arr.Partition()
		if err != nil {
			return false
		}
		if len(chain.Channels()) != total {
			return false
		}
		net := net2
		if dims == 3 {
			net = net3
		}
		vcfg := cdg.VCConfigFor(dims, chain.Channels())
		return cdg.VerifyTurnSetCached(net, vcfg, chain.AllTurns()).Acyclic
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPairArrangements(t *testing.T) {
	s := PairedSet(channel.Y, 2)
	arrs := PairArrangements(s)
	if len(arrs) != 2 {
		t.Fatalf("pairings = %d, want 2! = 2", len(arrs))
	}
	// Identity pairing first, mixed pairing second.
	want0 := channel.MustParseList("Y1+ Y1- Y2+ Y2-")
	want1 := channel.MustParseList("Y1+ Y2- Y2+ Y1-")
	for i, c := range arrs[0].Channels {
		if c != want0[i] {
			t.Errorf("pairing 0 channel %d = %v, want %v", i, c, want0[i])
		}
	}
	for i, c := range arrs[1].Channels {
		if c != want1[i] {
			t.Errorf("pairing 1 channel %d = %v, want %v", i, c, want1[i])
		}
	}
	if got := len(PairArrangements(PairedSet(channel.Y, 3))); got != 6 {
		t.Errorf("3-VC pairings = %d, want 3! = 6", got)
	}
	// Unbalanced sets fall back to the original ordering.
	unb := MustSet(channel.X, channel.MustParseList("X1+ X1- X2+")...)
	if got := len(PairArrangements(unb)); got != 1 {
		t.Errorf("unbalanced pairings = %d, want 1", got)
	}
}

func TestDeriveWithPairingsProducesValidDistinctChains(t *testing.T) {
	arr := ArrangementFor([]int{1, 2}) // Y leads with 2 pairs
	base, err := Derive(arr)
	if err != nil {
		t.Fatal(err)
	}
	all, err := DeriveWithPairings(arr)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) <= len(base) {
		t.Errorf("pairings should add options: %d vs %d", len(all), len(base))
	}
	// Every option is a valid chain consuming all six channels, and the
	// mixed pairing produces partitions with cross-VC D-pairs
	// (Definition 3: X2+ with X1- is a complete pair).
	net := topology.NewMesh(4, 4)
	seen := map[string]bool{}
	crossVC := false
	for _, c := range all {
		if seen[c.String()] {
			t.Fatalf("duplicate option %s", c)
		}
		seen[c.String()] = true
		if len(c.Channels()) != 6 {
			t.Errorf("%s: %d channels", c, len(c.Channels()))
		}
		vcs := cdg.VCConfigFor(2, c.Channels())
		if !cdg.VerifyTurnSetCached(net, vcs, c.AllTurns()).Acyclic {
			t.Errorf("%s: cyclic", c)
		}
		for _, p := range c.Partitions() {
			for _, dim := range p.CompletePairDims() {
				for _, a := range p.Channels() {
					for _, b := range p.Channels() {
						if a.Dim == dim && b.Dim == dim && a.Sign != b.Sign && a.VC != b.VC {
							crossVC = true
						}
					}
				}
			}
		}
	}
	if !crossVC {
		t.Error("expected at least one cross-VC complete pair from the mixed pairing")
	}
}

func TestVCRequirements(t *testing.T) {
	cases := map[int][]int{
		1: {1},
		2: {1, 2},
		3: {2, 2, 4},
		4: {4, 4, 4, 8},
	}
	for n, want := range cases {
		got := VCRequirements(n)
		if len(got) != len(want) {
			t.Fatalf("n=%d: %v", n, got)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("n=%d: VCRequirements = %v, want %v", n, got, want)
				break
			}
		}
	}
}
