package traffic

import (
	"strings"
	"testing"

	"ebda/internal/topology"
)

func TestParseTrace(t *testing.T) {
	net := topology.NewMesh(4, 4)
	csv := `cycle,sx,sy,dx,dy,len
10,0,0,3,3,4
5,1,2,2,1
20,3,0,0,3,1
`
	entries, err := ParseTrace(strings.NewReader(csv), net)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("entries = %d", len(entries))
	}
	// Sorted by cycle.
	if entries[0].Cycle != 5 || entries[1].Cycle != 10 || entries[2].Cycle != 20 {
		t.Errorf("not sorted: %+v", entries)
	}
	if entries[1].Len != 4 || entries[0].Len != 0 {
		t.Errorf("lengths wrong: %+v", entries)
	}
	if net.Coord(entries[0].Src)[0] != 1 || net.Coord(entries[0].Dst)[1] != 1 {
		t.Errorf("coords wrong: %+v", entries[0])
	}
}

func TestParseTraceNoHeader(t *testing.T) {
	net := topology.NewMesh(3, 3)
	entries, err := ParseTrace(strings.NewReader("0,0,0,2,2\n"), net)
	if err != nil || len(entries) != 1 {
		t.Fatalf("%v %v", entries, err)
	}
}

func TestParseTraceErrors(t *testing.T) {
	net := topology.NewMesh(3, 3)
	for _, bad := range []string{
		"0,0,0,2\n",   // too few fields
		"0,0,0,9,9\n", // out of bounds
		"0,0,x,2,2\n", // non-numeric
		"0,0,0,2,2,1,1,1\n" /* too many fields */} {
		if _, err := ParseTrace(strings.NewReader(bad), net); err == nil {
			t.Errorf("trace %q should fail", bad)
		}
	}
}

func TestParseTrace3D(t *testing.T) {
	net := topology.NewMesh(3, 3, 2)
	entries, err := ParseTrace(strings.NewReader("7,0,0,0,2,2,1,3\n"), net)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Len != 3 {
		t.Fatalf("%+v", entries)
	}
	if !net.Coord(entries[0].Dst).Equal(topology.Coord{2, 2, 1}) {
		t.Errorf("dst = %v", net.Coord(entries[0].Dst))
	}
}
