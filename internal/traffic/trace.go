package traffic

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"

	"ebda/internal/topology"
)

// TraceEntry schedules one packet injection (trace-driven workloads, e.g.
// replayed application traces). The simulator consumes sorted entries via
// its Config.Trace field.
type TraceEntry struct {
	Cycle    int
	Src, Dst topology.NodeID
	// Len is the packet length in flits (the simulator's default packet
	// length when 0).
	Len int
}

// ParseTrace reads a trace-driven workload from CSV: one packet per line,
// `cycle,srcX,srcY[,...],dstX,dstY[,...],len` with `len` optional (0 means
// the simulator's default packet length). Coordinates use the network's
// dimension count; a header line is skipped if present. Entries are sorted
// by cycle.
func ParseTrace(r io.Reader, net *topology.Network) ([]TraceEntry, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	var out []TraceEntry
	dims := net.Dims()
	line := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		line++
		if line == 1 && !isNumeric(rec[0]) {
			continue // header
		}
		want := 1 + 2*dims
		if len(rec) != want && len(rec) != want+1 {
			return nil, fmt.Errorf("traffic: line %d has %d fields, want %d or %d",
				line, len(rec), want, want+1)
		}
		nums := make([]int, len(rec))
		for i, f := range rec {
			v, err := strconv.Atoi(f)
			if err != nil {
				return nil, fmt.Errorf("traffic: line %d field %d: %v", line, i+1, err)
			}
			nums[i] = v
		}
		src := make(topology.Coord, dims)
		dst := make(topology.Coord, dims)
		copy(src, nums[1:1+dims])
		copy(dst, nums[1+dims:1+2*dims])
		if !net.InBounds(src) || !net.InBounds(dst) {
			return nil, fmt.Errorf("traffic: line %d out of bounds", line)
		}
		e := TraceEntry{
			Cycle: nums[0],
			Src:   net.ID(src),
			Dst:   net.ID(dst),
		}
		if len(nums) == want+1 {
			e.Len = nums[want]
		}
		out = append(out, e)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Cycle < out[j].Cycle })
	return out, nil
}

func isNumeric(s string) bool {
	_, err := strconv.Atoi(s)
	return err == nil
}
