// Package traffic provides the synthetic workload patterns used to
// exercise routing algorithms in the wormhole simulator: uniform random,
// transpose, bit-complement, hotspot and nearest-neighbor.
package traffic

import (
	"fmt"
	"math/rand"

	"ebda/internal/topology"
)

// Pattern maps a source node to a destination for each generated packet.
type Pattern interface {
	// Name identifies the pattern in reports.
	Name() string
	// Dest picks a destination for a packet injected at src. It must not
	// return src (sources with no valid destination return src, and the
	// generator skips the packet).
	Dest(net *topology.Network, src topology.NodeID, r *rand.Rand) topology.NodeID
}

// Uniform sends each packet to a destination chosen uniformly at random.
type Uniform struct{}

// Name implements Pattern.
func (Uniform) Name() string { return "uniform" }

// Dest implements Pattern.
func (Uniform) Dest(net *topology.Network, src topology.NodeID, r *rand.Rand) topology.NodeID {
	for {
		d := topology.NodeID(r.Intn(net.Nodes()))
		if d != src {
			return d
		}
	}
}

// Transpose sends (x, y, ...) to the coordinate-reversed node — the matrix
// transpose on square 2D meshes, generalised to reversal for higher
// dimensions.
type Transpose struct{}

// Name implements Pattern.
func (Transpose) Name() string { return "transpose" }

// Dest implements Pattern.
func (Transpose) Dest(net *topology.Network, src topology.NodeID, r *rand.Rand) topology.NodeID {
	c := net.Coord(src)
	d := make(topology.Coord, len(c))
	for i := range c {
		d[i] = c[len(c)-1-i]
	}
	// Clip into bounds for non-uniform extents.
	for i := range d {
		if max := net.Sizes()[i]; d[i] >= max {
			d[i] = max - 1
		}
	}
	return net.ID(d)
}

// BitComplement sends each node to its coordinate complement
// (k-1-x per dimension).
type BitComplement struct{}

// Name implements Pattern.
func (BitComplement) Name() string { return "bit-complement" }

// Dest implements Pattern.
func (BitComplement) Dest(net *topology.Network, src topology.NodeID, r *rand.Rand) topology.NodeID {
	c := net.Coord(src)
	d := make(topology.Coord, len(c))
	for i, x := range c {
		d[i] = net.Sizes()[i] - 1 - x
	}
	return net.ID(d)
}

// Hotspot sends a fraction of traffic to designated hotspot nodes and the
// rest uniformly.
type Hotspot struct {
	// Fraction of packets targeting a hotspot, in [0, 1].
	Fraction float64
	// Spots are the hotspot nodes; a single central node when empty.
	Spots []topology.NodeID
}

// Name implements Pattern.
func (h Hotspot) Name() string { return fmt.Sprintf("hotspot-%.0f%%", h.Fraction*100) }

// Dest implements Pattern.
func (h Hotspot) Dest(net *topology.Network, src topology.NodeID, r *rand.Rand) topology.NodeID {
	spots := h.Spots
	if len(spots) == 0 {
		spots = []topology.NodeID{topology.NodeID(net.Nodes() / 2)}
	}
	if r.Float64() < h.Fraction {
		d := spots[r.Intn(len(spots))]
		if d != src {
			return d
		}
	}
	return Uniform{}.Dest(net, src, r)
}

// Neighbor sends each packet one hop in the +X direction (wrapping within
// the dimension), a nearest-neighbor stress pattern.
type Neighbor struct{}

// Name implements Pattern.
func (Neighbor) Name() string { return "neighbor" }

// Dest implements Pattern.
func (Neighbor) Dest(net *topology.Network, src topology.NodeID, r *rand.Rand) topology.NodeID {
	c := net.Coord(src)
	d := c.Clone()
	d[0] = (c[0] + 1) % net.Sizes()[0]
	return net.ID(d)
}

// ByName returns the pattern registered under the given name, for CLI use.
func ByName(name string) (Pattern, error) {
	switch name {
	case "uniform":
		return Uniform{}, nil
	case "transpose":
		return Transpose{}, nil
	case "bit-complement", "bitcomplement":
		return BitComplement{}, nil
	case "neighbor":
		return Neighbor{}, nil
	case "hotspot":
		return Hotspot{Fraction: 0.1}, nil
	default:
		return nil, fmt.Errorf("traffic: unknown pattern %q", name)
	}
}
