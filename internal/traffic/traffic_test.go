package traffic

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ebda/internal/topology"
)

func TestUniformNeverSelf(t *testing.T) {
	net := topology.NewMesh(4, 4)
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		src := topology.NodeID(r.Intn(net.Nodes()))
		if (Uniform{}).Dest(net, src, r) == src {
			t.Fatal("uniform returned src")
		}
	}
}

func TestUniformCoversAllDestinations(t *testing.T) {
	net := topology.NewMesh(3, 3)
	r := rand.New(rand.NewSource(2))
	seen := map[topology.NodeID]bool{}
	src := topology.NodeID(0)
	for i := 0; i < 2000; i++ {
		seen[(Uniform{}).Dest(net, src, r)] = true
	}
	if len(seen) != net.Nodes()-1 {
		t.Errorf("covered %d destinations, want %d", len(seen), net.Nodes()-1)
	}
}

func TestTranspose(t *testing.T) {
	net := topology.NewMesh(4, 4)
	r := rand.New(rand.NewSource(3))
	src := net.ID(topology.Coord{1, 3})
	dst := (Transpose{}).Dest(net, src, r)
	if !net.Coord(dst).Equal(topology.Coord{3, 1}) {
		t.Errorf("transpose(1,3) = %v", net.Coord(dst))
	}
	// Diagonal nodes map to themselves (the generator skips those).
	diag := net.ID(topology.Coord{2, 2})
	if (Transpose{}).Dest(net, diag, r) != diag {
		t.Error("diagonal should map to itself")
	}
}

func TestTransposeNonSquareClips(t *testing.T) {
	net := topology.NewMesh(5, 3)
	r := rand.New(rand.NewSource(4))
	src := net.ID(topology.Coord{4, 1})
	dst := net.Coord((Transpose{}).Dest(net, src, r))
	if !net.InBounds(dst) {
		t.Errorf("transpose out of bounds: %v", dst)
	}
}

func TestBitComplement(t *testing.T) {
	net := topology.NewMesh(4, 4)
	r := rand.New(rand.NewSource(5))
	src := net.ID(topology.Coord{0, 1})
	dst := (BitComplement{}).Dest(net, src, r)
	if !net.Coord(dst).Equal(topology.Coord{3, 2}) {
		t.Errorf("complement(0,1) = %v", net.Coord(dst))
	}
}

func TestNeighborWraps(t *testing.T) {
	net := topology.NewMesh(4, 4)
	r := rand.New(rand.NewSource(6))
	src := net.ID(topology.Coord{3, 2})
	dst := (Neighbor{}).Dest(net, src, r)
	if !net.Coord(dst).Equal(topology.Coord{0, 2}) {
		t.Errorf("neighbor(3,2) = %v", net.Coord(dst))
	}
}

func TestHotspotBias(t *testing.T) {
	net := topology.NewMesh(4, 4)
	r := rand.New(rand.NewSource(7))
	spot := net.ID(topology.Coord{2, 2})
	h := Hotspot{Fraction: 0.5, Spots: []topology.NodeID{spot}}
	hits := 0
	const trials = 4000
	for i := 0; i < trials; i++ {
		if h.Dest(net, topology.NodeID(0), r) == spot {
			hits++
		}
	}
	frac := float64(hits) / trials
	// 50% directed plus ~1/15 of the uniform remainder.
	if frac < 0.45 || frac > 0.65 {
		t.Errorf("hotspot fraction = %.3f, want ~0.53", frac)
	}
}

func TestHotspotDefaultSpot(t *testing.T) {
	net := topology.NewMesh(4, 4)
	r := rand.New(rand.NewSource(8))
	h := Hotspot{Fraction: 1.0}
	centre := topology.NodeID(net.Nodes() / 2)
	hits := 0
	for i := 0; i < 200; i++ {
		if h.Dest(net, topology.NodeID(0), r) == centre {
			hits++
		}
	}
	if hits < 150 {
		t.Errorf("default hotspot hits = %d/200", hits)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"uniform", "transpose", "bit-complement", "neighbor", "hotspot"} {
		p, err := ByName(name)
		if err != nil {
			t.Errorf("ByName(%q): %v", name, err)
			continue
		}
		if p.Name() == "" {
			t.Errorf("%q has empty name", name)
		}
	}
	if _, err := ByName("bogus"); err == nil {
		t.Error("bogus pattern should fail")
	}
}

func TestQuickAllPatternsStayInBounds(t *testing.T) {
	net := topology.NewMesh(5, 4)
	patterns := []Pattern{Uniform{}, Transpose{}, BitComplement{}, Neighbor{}, Hotspot{Fraction: 0.3}}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		src := topology.NodeID(r.Intn(net.Nodes()))
		for _, p := range patterns {
			dst := p.Dest(net, src, r)
			if int(dst) < 0 || int(dst) >= net.Nodes() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
