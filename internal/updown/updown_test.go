package updown

import (
	"math/rand"
	"testing"

	"ebda/internal/cdg"
	"ebda/internal/channel"
	"ebda/internal/deadlock"
	"ebda/internal/routing"
	"ebda/internal/topology"
)

func TestOrderIsBFS(t *testing.T) {
	net := topology.NewMesh(4, 4)
	ud, err := New(net, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ud.Order(0) != 0 {
		t.Error("root order should be 0")
	}
	seen := map[int]bool{}
	for id := topology.NodeID(0); int(id) < net.Nodes(); id++ {
		o := ud.Order(id)
		if o < 0 || o >= net.Nodes() || seen[o] {
			t.Fatalf("bad order %d for node %d", o, id)
		}
		seen[o] = true
	}
}

func TestMeshVerifiesAndDelivers(t *testing.T) {
	net := topology.NewMesh(5, 5)
	ud, err := New(net, net.ID(topology.Coord{2, 2}))
	if err != nil {
		t.Fatal(err)
	}
	rep := routing.Verify(net, nil, ud)
	if !rep.Acyclic {
		t.Fatalf("up*/down*: %s", rep)
	}
	del := routing.CheckDelivery(net, ud, 64)
	if !del.OK() {
		t.Errorf("up*/down*: %s", del)
	}
	if cfg := deadlock.Find(net, nil, ud); !cfg.Empty() {
		t.Errorf("up*/down* should be configuration-free:\n%s", cfg)
	}
}

func TestIrregularNetworks(t *testing.T) {
	// Up*/Down*'s raison d'etre: it routes on irregular networks with no
	// coordinate structure. Break a batch of links and confirm it still
	// verifies and delivers wherever the network stays connected.
	base := topology.NewMesh(5, 5)
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		var faults []topology.Link
		for i := 0; i < 4; i++ {
			from := topology.NodeID(r.Intn(base.Nodes()))
			d := channel.Dim(r.Intn(2))
			s := channel.Plus
			if r.Intn(2) == 0 {
				s = channel.Minus
			}
			// Break both directions to keep up/down well-defined on an
			// undirected connectivity picture.
			faults = append(faults, topology.Link{From: from, Dim: d, Sign: s})
			if to, _, ok := base.Neighbor(from, d, s); ok {
				faults = append(faults, topology.Link{From: to, Dim: d, Sign: s.Opposite()})
			}
		}
		faulty := base.WithoutLinks(faults)
		ud, err := New(faulty, 0)
		if err != nil {
			continue // disconnected draw; New reports it correctly
		}
		if rep := routing.Verify(faulty, nil, ud); !rep.Acyclic {
			t.Fatalf("trial %d: %s", trial, rep)
		}
		if del := routing.CheckDelivery(faulty, ud, 96); !del.OK() {
			t.Fatalf("trial %d: %s", trial, del)
		}
	}
}

func TestTorus(t *testing.T) {
	tor := topology.NewTorus(4, 4)
	ud, err := New(tor, 0)
	if err != nil {
		t.Fatal(err)
	}
	rep := routing.Verify(tor, nil, ud)
	if !rep.Acyclic {
		t.Fatalf("up*/down* on torus: %s", rep)
	}
	if del := routing.CheckDelivery(tor, ud, 64); !del.OK() {
		t.Errorf("up*/down* on torus: %s", del)
	}
}

func TestDisconnectedRejected(t *testing.T) {
	base := topology.NewMesh(3, 2)
	// Sever the middle column entirely: nodes (2,*) become unreachable.
	var faults []topology.Link
	for y := 0; y < 2; y++ {
		from := base.ID(topology.Coord{1, y})
		faults = append(faults, topology.Link{From: from, Dim: channel.X, Sign: channel.Plus})
		faults = append(faults, topology.Link{From: base.ID(topology.Coord{2, y}), Dim: channel.X, Sign: channel.Minus})
	}
	faulty := base.WithoutLinks(faults)
	if _, err := New(faulty, 0); err == nil {
		t.Error("disconnected network should be rejected")
	}
}

func TestPhaseDiscipline(t *testing.T) {
	// Once a packet takes a down link it must never be offered an up
	// link again: walk randomly and track phases.
	net := topology.NewMesh(4, 4)
	ud, err := New(net, 0)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 300; trial++ {
		src := topology.NodeID(r.Intn(net.Nodes()))
		dst := topology.NodeID(r.Intn(net.Nodes()))
		if src == dst {
			continue
		}
		cur := src
		var in *channel.Class
		wentDown := false
		for hops := 0; cur != dst; hops++ {
			if hops > 64 {
				t.Fatalf("walk too long %d -> %d", src, dst)
			}
			cands := ud.Candidates(net, cur, in, dst)
			if len(cands) == 0 {
				t.Fatalf("stuck at n%d toward n%d", cur, dst)
			}
			c := cands[r.Intn(len(cands))]
			next, _, _ := net.Neighbor(cur, c.Dim, c.Sign)
			if ud.isUp(cur, next) && wentDown {
				t.Fatalf("up link offered after a down link (n%d -> n%d)", cur, next)
			}
			if !ud.isUp(cur, next) {
				wentDown = true
			}
			cur = next
			cls := c
			in = &cls
		}
	}
}

func TestVerifyWithCDGTurnOrderWitness(t *testing.T) {
	// The Theorem-2 connection: the relation admits an explicit
	// ascending channel numbering (the witness), exactly the ordering
	// argument the paper borrows from Up*/Down*.
	net := topology.NewMesh(4, 4)
	ud, err := New(net, 0)
	if err != nil {
		t.Fatal(err)
	}
	g := cdg.NewGraph(net, nil)
	g.AddRoutingEdges(routing.Relation(ud))
	if _, err := g.TopoOrder(); err != nil {
		t.Fatalf("no ascending witness: %v", err)
	}
}
