// Package updown implements Up*/Down* routing (Autonet, reference [40] of
// the paper): the algorithm whose ordering argument the paper borrows for
// the proof of Theorem 2. A breadth-first spanning tree orders the nodes;
// every link is "up" (toward a smaller order index) or "down", and a legal
// route takes zero or more up links followed by zero or more down links —
// channels are traced in a strictly ascending order, so no cycle can form.
//
// Because it needs no coordinates, Up*/Down* works on irregular networks;
// here it runs on arbitrary (possibly faulty) instances of
// topology.Network and is verified mechanically through the same
// channel-dependency machinery as every other algorithm in the module.
package updown

import (
	"fmt"
	"sync"

	"ebda/internal/channel"
	"ebda/internal/topology"
)

// UpDown is the routing algorithm. The per-destination reachability cache
// is filled under a sync.Once per destination, so Candidates is safe for
// concurrent use.
type UpDown struct {
	net  *topology.Network
	root topology.NodeID
	// order is the BFS index per node (root = 0); an up hop decreases it.
	order []int
	// reach caches, per destination, which (node, phase) states can
	// still reach it: reach[dst][2*node+phase], phase 0 = may still go
	// up, phase 1 = down only.
	reach     [][]bool
	reachOnce []sync.Once
}

// New builds Up*/Down* routing on the network with the given root. It
// fails if the network is disconnected from the root.
func New(net *topology.Network, root topology.NodeID) (*UpDown, error) {
	order := make([]int, net.Nodes())
	for i := range order {
		order[i] = -1
	}
	queue := []topology.NodeID{root}
	order[root] = 0
	next := 1
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range neighbors(net, u) {
			if order[v] == -1 {
				order[v] = next
				next++
				queue = append(queue, v)
			}
		}
	}
	if next != net.Nodes() {
		return nil, fmt.Errorf("updown: network disconnected (%d of %d nodes reachable from the root)",
			next, net.Nodes())
	}
	return &UpDown{
		net: net, root: root, order: order,
		reach:     make([][]bool, net.Nodes()),
		reachOnce: make([]sync.Once, net.Nodes()),
	}, nil
}

func neighbors(net *topology.Network, u topology.NodeID) []topology.NodeID {
	var out []topology.NodeID
	for d := 0; d < net.Dims(); d++ {
		for _, s := range []channel.Sign{channel.Plus, channel.Minus} {
			if v, _, ok := net.Neighbor(u, channel.Dim(d), s); ok {
				out = append(out, v)
			}
		}
	}
	return out
}

// Name implements routing.Algorithm.
func (a *UpDown) Name() string { return "up-down" }

// Order returns a node's position in the BFS ordering (the root is 0).
func (a *UpDown) Order(id topology.NodeID) int { return a.order[id] }

// isUp reports whether the hop u -> v is an up link.
func (a *UpDown) isUp(u, v topology.NodeID) bool { return a.order[v] < a.order[u] }

const (
	phaseUp   = 0
	phaseDown = 1
)

// reachSet lazily computes which (node, phase) states can reach dst.
func (a *UpDown) reachSet(dst topology.NodeID) []bool {
	a.reachOnce[dst].Do(func() { a.reach[dst] = a.computeReach(dst) })
	return a.reach[dst]
}

func (a *UpDown) computeReach(dst topology.NodeID) []bool {
	n := a.net.Nodes()
	set := make([]bool, 2*n)
	set[2*int(dst)+phaseUp] = true
	set[2*int(dst)+phaseDown] = true
	// Fixed point over the small state graph: (u, down) reaches dst if
	// some down hop lands in a reaching state with phase down; (u, up)
	// additionally via up hops into phase up.
	for changed := true; changed; {
		changed = false
		for u := topology.NodeID(0); int(u) < n; u++ {
			for _, v := range neighbors(a.net, u) {
				if a.isUp(u, v) {
					if !set[2*int(u)+phaseUp] && set[2*int(v)+phaseUp] {
						set[2*int(u)+phaseUp] = true
						changed = true
					}
				} else {
					if !set[2*int(u)+phaseDown] && set[2*int(v)+phaseDown] {
						set[2*int(u)+phaseDown] = true
						changed = true
					}
					if !set[2*int(u)+phaseUp] && set[2*int(v)+phaseDown] {
						set[2*int(u)+phaseUp] = true
						changed = true
					}
				}
			}
		}
	}
	return set
}

// Candidates implements routing.Algorithm: every neighbor hop that keeps
// the up*/down* discipline and from which the destination remains
// reachable.
func (a *UpDown) Candidates(net *topology.Network, cur topology.NodeID, in *channel.Class, dst topology.NodeID) []channel.Class {
	set := a.reachSet(dst)
	// Determine the current phase from the input hop: once a down link
	// has been taken, only down links remain.
	phase := phaseUp
	if in != nil {
		prev, _, ok := net.Neighbor(cur, in.Dim, in.Sign.Opposite())
		if ok && !a.isUp(prev, cur) {
			phase = phaseDown
		}
	}
	var out []channel.Class
	for d := 0; d < net.Dims(); d++ {
		for _, s := range []channel.Sign{channel.Plus, channel.Minus} {
			v, _, ok := net.Neighbor(cur, channel.Dim(d), s)
			if !ok {
				continue
			}
			up := a.isUp(cur, v)
			if phase == phaseDown && up {
				continue
			}
			nextPhase := phaseDown
			if up {
				nextPhase = phaseUp
			}
			if !set[2*int(v)+nextPhase] {
				continue
			}
			out = append(out, channel.New(channel.Dim(d), s))
		}
	}
	return out
}
