package duato

import (
	"testing"

	"ebda/internal/cdg"
	"ebda/internal/channel"
	"ebda/internal/routing"
	"ebda/internal/topology"
)

func TestCandidatesShape(t *testing.T) {
	net := topology.NewMesh(5, 5)
	a := New()
	src := net.ID(topology.Coord{0, 0})
	dst := net.ID(topology.Coord{2, 2})
	cands := a.Candidates(net, src, nil, dst)
	// Two productive dirs x 1 adaptive VC + 1 escape = 3.
	if len(cands) != 3 {
		t.Fatalf("candidates = %v", cands)
	}
	// Escape (VC 1) comes last and is the dimension-order hop.
	esc := cands[len(cands)-1]
	if esc.VC != 1 || esc.Dim != channel.X || esc.Sign != channel.Plus {
		t.Errorf("escape = %v, want X+ VC1", esc)
	}
	for _, c := range cands[:len(cands)-1] {
		if c.VC < 2 {
			t.Errorf("adaptive candidate on escape VC: %v", c)
		}
	}
}

func TestEscapeRelationAcyclic(t *testing.T) {
	net := topology.NewMesh(5, 5)
	a := New()
	rep := routing.Verify(net, cdg.VCConfig(a.VCsPerDim(net)), a.EscapeOnly())
	if !rep.Acyclic {
		t.Fatalf("escape sub-network must be acyclic: %s", rep)
	}
}

func TestFullRelationCyclic(t *testing.T) {
	// The defining contrast with EbDa: the complete Duato routing
	// relation is cyclic (adaptive channels form cycles); only the escape
	// sub-network is cycle-free.
	net := topology.NewMesh(5, 5)
	a := New()
	rep := routing.Verify(net, cdg.VCConfig(a.VCsPerDim(net)), a)
	if rep.Acyclic {
		t.Fatal("full Duato relation should contain cycles")
	}
}

func TestDelivery(t *testing.T) {
	net := topology.NewMesh(5, 5)
	del := routing.CheckDelivery(net, New(), 64)
	if !del.OK() {
		t.Errorf("duato: %s", del)
	}
}

func TestTorusEscapeAcyclicFullCyclic(t *testing.T) {
	tor := topology.NewTorus(5, 5)
	a := NewTorus()
	vcs := cdg.VCConfig(a.VCsPerDim(tor))
	esc := routing.Verify(tor, vcs, a.EscapeOnly())
	if !esc.Acyclic {
		t.Fatalf("torus escape must be acyclic: %s", esc)
	}
	full := routing.Verify(tor, vcs, a)
	if full.Acyclic {
		t.Fatal("full torus Duato relation should be cyclic")
	}
}

func TestTorusDelivery(t *testing.T) {
	tor := topology.NewTorus(5, 5)
	del := routing.CheckDelivery(tor, NewTorus(), 64)
	if !del.OK() {
		t.Errorf("duato-torus: %s", del)
	}
}

func TestMoreAdaptiveVCs(t *testing.T) {
	net := topology.NewMesh(4, 4)
	a := &FullyAdaptive{AdaptiveVCs: 3}
	src := net.ID(topology.Coord{0, 0})
	dst := net.ID(topology.Coord{3, 3})
	cands := a.Candidates(net, src, nil, dst)
	if len(cands) != 2*3+1 {
		t.Errorf("candidates = %d, want 7", len(cands))
	}
	vcs := a.VCsPerDim(net)
	if vcs[0] != 4 || vcs[1] != 4 {
		t.Errorf("VCsPerDim = %v", vcs)
	}
}
