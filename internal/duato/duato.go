// Package duato implements a Duato-style fully adaptive routing algorithm
// as a comparison baseline: packets may take any productive hop on the
// adaptive virtual channels, and a dimension-order escape virtual channel
// guarantees deadlock freedom (Duato 1993).
//
// The contrast with EbDa (Section 2 of the paper): the full routing
// relation of a Duato design is cyclic — only the escape sub-network is
// acyclic — so Dally-style verification of the whole graph fails by
// design, while every EbDa chain verifies acyclic outright. The package
// exposes both the combined relation and the escape sub-relation so the
// test suite can demonstrate exactly that.
package duato

import (
	"ebda/internal/channel"
	"ebda/internal/routing"
	"ebda/internal/topology"
)

// FullyAdaptive is Duato-style fully adaptive routing for meshes: VC 1 of
// every dimension is the escape channel (dimension-order routed); VCs
// 2..1+AdaptiveVCs are adaptive.
type FullyAdaptive struct {
	// AdaptiveVCs is the number of adaptive VCs per dimension (>= 1).
	AdaptiveVCs int
}

// New returns a Duato fully adaptive algorithm with one adaptive VC per
// dimension (two VCs total per dimension).
func New() *FullyAdaptive { return &FullyAdaptive{AdaptiveVCs: 1} }

// Name implements routing.Algorithm.
func (a *FullyAdaptive) Name() string { return "duato-fa" }

// VCsPerDim returns the total VC requirement per dimension.
func (a *FullyAdaptive) VCsPerDim(net *topology.Network) []int {
	out := make([]int, net.Dims())
	for d := range out {
		out[d] = 1 + a.AdaptiveVCs
	}
	return out
}

// Candidates implements routing.Algorithm: every productive direction on
// every adaptive VC, plus the single dimension-order escape hop on VC 1.
// Adaptive candidates come first so selection policies prefer them; the
// escape channel remains always available, which is what Duato's theorem
// requires.
func (a *FullyAdaptive) Candidates(net *topology.Network, cur topology.NodeID, in *channel.Class, dst topology.NodeID) []channel.Class {
	offs := net.MinimalOffsets(cur, dst)
	var out []channel.Class
	escape := channel.Class{}
	haveEscape := false
	for d, off := range offs {
		if off == 0 {
			continue
		}
		sign := channel.Plus
		if off < 0 {
			sign = channel.Minus
		}
		if !net.HasLink(cur, channel.Dim(d), sign) {
			continue
		}
		for vc := 2; vc <= 1+a.AdaptiveVCs; vc++ {
			out = append(out, channel.NewVC(channel.Dim(d), sign, vc))
		}
		if !haveEscape {
			// Dimension-order: the first uncorrected dimension.
			escape = channel.NewVC(channel.Dim(d), sign, 1)
			haveEscape = true
		}
	}
	if haveEscape {
		out = append(out, escape)
	}
	return out
}

// EscapeOnly returns the escape sub-algorithm (dimension-order on VC 1),
// whose routing relation must be acyclic.
func (a *FullyAdaptive) EscapeOnly() routing.Algorithm {
	return &escapeOnly{}
}

type escapeOnly struct{}

func (e *escapeOnly) Name() string { return "duato-escape" }

func (e *escapeOnly) Candidates(net *topology.Network, cur topology.NodeID, in *channel.Class, dst topology.NodeID) []channel.Class {
	for d, off := range net.MinimalOffsets(cur, dst) {
		if off == 0 {
			continue
		}
		sign := channel.Plus
		if off < 0 {
			sign = channel.Minus
		}
		return []channel.Class{channel.NewVC(channel.Dim(d), sign, 1)}
	}
	return nil
}

// TorusFullyAdaptive is Duato-style fully adaptive routing for k-ary
// n-cubes: the escape sub-network is dateline dimension-order routing on
// VCs 1-2 (acyclic even across wraparound links), and VCs 3..2+AdaptiveVCs
// are fully adaptive. This extends the comparison baseline to the paper's
// Assumption-3 torus topologies.
type TorusFullyAdaptive struct {
	// AdaptiveVCs is the number of adaptive VCs per dimension (>= 1).
	AdaptiveVCs int
	escape      routing.Algorithm
}

// NewTorus returns a torus Duato algorithm with one adaptive VC per
// dimension (three VCs total per dimension).
func NewTorus() *TorusFullyAdaptive {
	return &TorusFullyAdaptive{AdaptiveVCs: 1, escape: routing.NewDatelineTorus()}
}

// Name implements routing.Algorithm.
func (a *TorusFullyAdaptive) Name() string { return "duato-torus" }

// VCsPerDim returns the total VC requirement per dimension (2 escape +
// adaptive).
func (a *TorusFullyAdaptive) VCsPerDim(net *topology.Network) []int {
	out := make([]int, net.Dims())
	for d := range out {
		out[d] = 2 + a.AdaptiveVCs
	}
	return out
}

// Candidates implements routing.Algorithm: every productive direction on
// the adaptive VCs plus the dateline escape hop (which carries its own VC
// 1/2 discipline).
func (a *TorusFullyAdaptive) Candidates(net *topology.Network, cur topology.NodeID, in *channel.Class, dst topology.NodeID) []channel.Class {
	var out []channel.Class
	for d, off := range net.MinimalOffsets(cur, dst) {
		if off == 0 {
			continue
		}
		sign := channel.Plus
		if off < 0 {
			sign = channel.Minus
		}
		if !net.HasLink(cur, channel.Dim(d), sign) {
			continue
		}
		for vc := 3; vc <= 2+a.AdaptiveVCs; vc++ {
			out = append(out, channel.NewVC(channel.Dim(d), sign, vc))
		}
	}
	out = append(out, a.escape.Candidates(net, cur, in, dst)...)
	return out
}

// EscapeOnly returns the dateline escape sub-algorithm.
func (a *TorusFullyAdaptive) EscapeOnly() routing.Algorithm { return a.escape }
