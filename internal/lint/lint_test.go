package lint

import (
	"strings"
	"testing"
)

func TestDetlintGolden(t *testing.T)    { RunGolden(t, "detlint", Detlint) }
func TestLocklintGolden(t *testing.T)   { RunGolden(t, "locklint", Locklint) }
func TestHotpathGolden(t *testing.T)    { RunGolden(t, "hotpath", Hotpath) }
func TestVerifygateGolden(t *testing.T) { RunGolden(t, "verifygate", Verifygate) }

// Deadlint goldens: the lock/wait graph cases. Each package is its own
// universe (they import only sync), so the graphs stay independent.
func TestDeadlintCleanGolden(t *testing.T)     { RunGolden(t, "deadlint/clean", Deadlint) }
func TestDeadlintCyclicGolden(t *testing.T)    { RunGolden(t, "deadlint/cyclic", Deadlint) }
func TestDeadlintRWMutexGolden(t *testing.T)   { RunGolden(t, "deadlint/rwmutex", Deadlint) }
func TestDeadlintChanWaitGolden(t *testing.T)  { RunGolden(t, "deadlint/chanwait", Deadlint) }
func TestDeadlintAllowGolden(t *testing.T)     { RunGolden(t, "deadlint/allow", Deadlint) }
func TestDeadlintInterprocGolden(t *testing.T) { RunGolden(t, "deadlint/interproc", Deadlint) }

// Ctxlint goldens: the /serve-suffixed package carries the serving
// contract; the plain package pins that non-serving code is exempt.
func TestCtxlintServeGolden(t *testing.T) { RunGolden(t, "ctxlint/serve", Ctxlint) }
func TestCtxlintPlainGolden(t *testing.T) { RunGolden(t, "ctxlint/plain", Ctxlint) }

// TestVerifygateServeGolden exercises the stricter serving-layer contract:
// the golden package's import path ends in "/serve", so the uncached
// entry points and Workspace verify methods are banned too.
func TestVerifygateServeGolden(t *testing.T) { RunGolden(t, "verifygate/serve", Verifygate) }

// TestVerifygateClusterGolden pins the same serving contract to the
// shard router: a "/cluster" import path forwards served verdicts, so
// the uncached entry points and hand-built Reports are banned there too.
func TestVerifygateClusterGolden(t *testing.T) { RunGolden(t, "verifygate/cluster", Verifygate) }

// TestVerifygateObshttpGolden exercises the observability-layer contract:
// an "/obshttp" import path marks debug/metrics handlers, which read
// published state and may never drive the verify engine — every cdg
// Verify* call is flagged there, cached or not.
func TestVerifygateObshttpGolden(t *testing.T) { RunGolden(t, "verifygate/obshttp", Verifygate) }

// TestSuiteCleanOnEngine runs the full suite over the packages that carry
// the invariants it guards — the engine itself must lint clean, so a
// regression in cdg/core/routing fails here as well as in make lint.
func TestSuiteCleanOnEngine(t *testing.T) {
	for _, rel := range []string{"internal/cdg", "internal/core", "internal/routing", "internal/serve", "internal/cluster", "internal/obs", "internal/obs/trace", "internal/obs/obshttp"} {
		pkg := loadRepoPackage(t, rel)
		diags, err := Run(pkg, All())
		if err != nil {
			t.Fatalf("%s: %v", rel, err)
		}
		for _, d := range diags {
			t.Errorf("%s: unexpected finding: %s", rel, d)
		}
	}
}

// TestHotpathAnnotationsPresent pins the contract that the PR-2 fast path
// stays annotated: losing a directive silently un-guards the function.
func TestHotpathAnnotationsPresent(t *testing.T) {
	want := map[string][]string{
		"internal/cdg":  {"VerifyTurnSetJobs", "kahnPeel", "AddEdges", "addTurnEdges", "matchClassIdx", "mergeSorted", "insertSorted"},
		"internal/core": {"Matrix"},
	}
	for rel, names := range want {
		pkg := loadRepoPackage(t, rel)
		annotated := map[string]bool{}
		for _, f := range pkg.Files {
			for _, fd := range funcBodies(f) {
				if hasDirective(fd.Doc, "hotpath") {
					annotated[fd.Name.Name] = true
				}
			}
		}
		for _, name := range names {
			if !annotated[name] {
				t.Errorf("%s: function %s has lost its //ebda:hotpath directive", rel, name)
			}
		}
	}
}

// TestExpandSkipsTestdata checks the pattern walker ignores golden
// directories, hidden directories and underscore directories.
func TestExpandSkipsTestdata(t *testing.T) {
	l, err := sharedLoader()
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	dirs, err := Expand(l.ModRoot(), []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) == 0 {
		t.Fatal("Expand found no packages")
	}
	foundLint := false
	for _, d := range dirs {
		if strings.Contains(d, "testdata") {
			t.Errorf("Expand included testdata directory %s", d)
		}
		if strings.HasSuffix(d, "internal/lint") {
			foundLint = true
		}
	}
	if !foundLint {
		t.Error("Expand missed internal/lint")
	}
}

// TestAllowSuppression checks the //ebda:allow plumbing end to end on the
// golden files, which contain deliberately suppressed violations: running
// with suppressions honoured must not report the allowed lines (the
// golden tests already assert this), and the scanner must have found the
// directives at all.
func TestAllowSuppression(t *testing.T) {
	l, err := sharedLoader()
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkg, err := l.Load("testdata/detlint")
	if err != nil {
		t.Fatal(err)
	}
	allow := allowedLines(pkg)
	total := 0
	for _, lines := range allow {
		total += len(lines)
	}
	if total == 0 {
		t.Fatal("no //ebda:allow directives found in testdata/detlint; suppression plumbing is broken")
	}
}
