package lint

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// This file is the suite's analysistest equivalent: golden packages under
// testdata/ carry `// want "regexp"` comments on the lines where an
// analyzer must fire, and RunGolden checks the actual diagnostics against
// them both ways (missing report = failure, unexpected report = failure).
// Functions and files with no want comments are the must-stay-silent
// cases.

// sharedLoader caches one loader (and thus one type-checked standard
// library) across all golden tests in the package.
var (
	loaderOnce sync.Once
	loaderInst *Loader
	loaderErr  error
)

func sharedLoader() (*Loader, error) {
	loaderOnce.Do(func() {
		loaderInst, loaderErr = NewLoader(".")
	})
	return loaderInst, loaderErr
}

// expectation is one `// want` entry.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

// RunGolden loads the package in testdata/<rel>, runs one analyzer, and
// compares diagnostics against the package's want comments.
func RunGolden(t *testing.T, rel string, a *Analyzer) {
	t.Helper()
	l, err := sharedLoader()
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkg, err := l.Load(filepath.Join("testdata", rel))
	if err != nil {
		t.Fatalf("load testdata/%s: %v", rel, err)
	}
	expects, err := wantComments(pkg)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run(pkg, []*Analyzer{a})
	if err != nil {
		t.Fatalf("run %s: %v", a.Name, err)
	}
	for _, d := range diags {
		matched := false
		for i := range expects {
			e := &expects[i]
			if e.hit || e.file != d.Pos.Filename || e.line != d.Pos.Line {
				continue
			}
			if e.re.MatchString(d.Message) {
				e.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, e := range expects {
		if !e.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", e.file, e.line, e.re)
		}
	}
}

// wantComments extracts every `// want "re" ["re" ...]` expectation of a
// loaded package.
func wantComments(pkg *Package) ([]expectation, error) {
	var out []expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				res, err := parseWantPatterns(m[1])
				if err != nil {
					return nil, fmt.Errorf("%s:%d: %w", pos.Filename, pos.Line, err)
				}
				for _, re := range res {
					out = append(out, expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return out, nil
}

// parseWantPatterns splits a want payload into its quoted regexps. Both
// interpreted ("...") and raw (`...`) quoting are accepted.
func parseWantPatterns(s string) ([]*regexp.Regexp, error) {
	var out []*regexp.Regexp
	s = strings.TrimSpace(s)
	for s != "" {
		var raw string
		switch s[0] {
		case '"':
			i := 1
			for i < len(s) && s[i] != '"' {
				if s[i] == '\\' {
					i++
				}
				i++
			}
			if i >= len(s) {
				return nil, fmt.Errorf("unterminated want pattern %q", s)
			}
			unq, err := strconv.Unquote(s[:i+1])
			if err != nil {
				return nil, err
			}
			raw = unq
			s = strings.TrimSpace(s[i+1:])
		case '`':
			i := strings.IndexByte(s[1:], '`')
			if i < 0 {
				return nil, fmt.Errorf("unterminated want pattern %q", s)
			}
			raw = s[1 : i+1]
			s = strings.TrimSpace(s[i+2:])
		default:
			return nil, fmt.Errorf("want pattern must be quoted, got %q", s)
		}
		re, err := regexp.Compile(raw)
		if err != nil {
			return nil, err
		}
		out = append(out, re)
	}
	return out, nil
}

// loadRepoPackage loads a package of this module by module-root-relative
// directory (e.g. "internal/cdg").
func loadRepoPackage(t *testing.T, rel string) *Package {
	t.Helper()
	l, err := sharedLoader()
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkg, err := l.Load(filepath.Join(l.ModRoot(), rel))
	if err != nil {
		t.Fatalf("load %s: %v", rel, err)
	}
	return pkg
}
