// Package lint implements ebda-lint: a suite of static analyzers that
// mechanically enforce the engine's determinism, concurrency and hot-path
// invariants at the Go-source level.
//
// The verification fast path built in earlier iterations rests on
// properties nothing in the type system checks: results must be
// bit-identical for every -jobs value, fingerprints must be
// order-independent, shared caches must be reached through their mutexes,
// and the annotated hot functions must stay allocation-lean. The four
// analyzers here — detlint, locklint, hotpath and verifygate — turn those
// conventions into machine-checked rules, in the spirit of verifying the
// checker itself (Verbeek & Schmaltz).
//
// The framework mirrors golang.org/x/tools/go/analysis (Analyzer, Pass,
// Diagnostic) but is built on the standard library alone, because this
// module is dependency-free by policy. Migrating an analyzer to the real
// go/analysis API is a mechanical change of imports.
//
// Directives understood in source comments:
//
//	//ebda:hotpath
//	    on a function's doc comment: the function is part of the
//	    verification hot path; the hotpath analyzer checks its body for
//	    allocation hazards.
//
//	//ebda:allow <analyzer> [reason...]
//	    on the flagged line or the line directly above it: suppress that
//	    analyzer's diagnostics for the line. Used where a finding is
//	    deliberate (e.g. the bench harness reading the wall clock).
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one static check. It mirrors the shape of
// golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //ebda:allow comments.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run analyzes one package and reports findings through the pass.
	Run func(*Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	// PkgPath is the package's import path (e.g. "ebda/internal/cdg").
	PkgPath string
	Info    *types.Info
	// pkg is the loaded package behind the pass; interprocedural
	// analyzers (deadlint) use it to reach module-local imports.
	pkg    *Package
	report func(Diagnostic)
}

// Reportf records a diagnostic at a position.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of an expression, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if t, ok := p.Info.Types[e]; ok {
		return t.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := p.Info.ObjectOf(id); obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// Diagnostic is one finding, with its position already resolved.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// All returns the full ebda-lint suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{Detlint, Locklint, Hotpath, Verifygate, Deadlint, Ctxlint}
}

// Run applies the analyzers to a loaded package, drops diagnostics
// suppressed by //ebda:allow comments, and returns the rest sorted by
// position.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	allow := allowedLines(pkg)
	var out []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			PkgPath:  pkg.Path,
			Info:     pkg.Info,
			pkg:      pkg,
		}
		pass.report = func(d Diagnostic) {
			if allow.suppressed(d) {
				return
			}
			out = append(out, d)
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos.Filename != out[j].Pos.Filename {
			return out[i].Pos.Filename < out[j].Pos.Filename
		}
		if out[i].Pos.Line != out[j].Pos.Line {
			return out[i].Pos.Line < out[j].Pos.Line
		}
		if out[i].Pos.Column != out[j].Pos.Column {
			return out[i].Pos.Column < out[j].Pos.Column
		}
		if out[i].Analyzer != out[j].Analyzer {
			return out[i].Analyzer < out[j].Analyzer
		}
		// Secondary sort on the message: a single analyzer can report
		// more than once at one position (deadlint's per-cycle-edge
		// diagnostics do), and golden tests, -json and SARIF output all
		// need byte-deterministic ordering for that case too.
		return out[i].Message < out[j].Message
	})
	return out, nil
}

// allowSet records, per file and line, the analyzer names suppressed by
// //ebda:allow comments on that line.
type allowSet map[string]map[int][]string

// suppressed reports whether the diagnostic's line, or the line directly
// above it, carries a matching //ebda:allow comment.
func (s allowSet) suppressed(d Diagnostic) bool {
	lines := s[d.Pos.Filename]
	for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
		for _, name := range lines[line] {
			if name == d.Analyzer {
				return true
			}
		}
	}
	return false
}

// allowedLines scans every comment of the package for //ebda:allow
// directives.
func allowedLines(pkg *Package) allowSet {
	out := allowSet{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//ebda:allow")
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				m := out[pos.Filename]
				if m == nil {
					m = map[int][]string{}
					out[pos.Filename] = m
				}
				m[pos.Line] = append(m[pos.Line], fields[0])
			}
		}
	}
	return out
}

// hasDirective reports whether a doc comment group contains the given
// //ebda:<name> directive on a line of its own.
func hasDirective(doc *ast.CommentGroup, name string) bool {
	if doc == nil {
		return false
	}
	want := "//ebda:" + name
	for _, c := range doc.List {
		text := strings.TrimSpace(c.Text)
		if text == want || strings.HasPrefix(text, want+" ") {
			return true
		}
	}
	return false
}

// calleeObject resolves the object a call expression invokes: a package
// function, a method, or a builtin. Returns nil for calls through
// function-typed values and type conversions.
func calleeObject(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.ObjectOf(fun)
	case *ast.SelectorExpr:
		return info.ObjectOf(fun.Sel)
	}
	return nil
}

// isPkgFunc reports whether obj is the function pkgPath.name.
func isPkgFunc(obj types.Object, pkgPath, name string) bool {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return false
	}
	return fn.Pkg().Path() == pkgPath && fn.Name() == name
}

// rootIdent peels selectors, indexing, parens, stars and slicing down to
// the leftmost identifier of an expression, or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// funcBodies yields every function body of a file (declarations only;
// nested literals are walked as part of their enclosing declaration) with
// its declaration.
func funcBodies(f *ast.File) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, decl := range f.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
			out = append(out, fd)
		}
	}
	return out
}

// within reports whether pos falls inside node's source range.
func within(pos token.Pos, node ast.Node) bool {
	return node.Pos() <= pos && pos < node.End()
}
