package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Locklint enforces the repository's mutex convention on shared state:
//
//   - in any struct declaring a field `mu sync.Mutex` or `mu
//     sync.RWMutex`, every field declared after mu (the Go convention:
//     "mu guards the fields below") is a guarded field — except
//     sync/atomic values, which carry their own synchronisation. Every
//     read or write of a guarded field must be preceded, somewhere
//     earlier in the same function, by a Lock or RLock call on the same
//     receiver's mu. This is how cdg.VerifyCache.m, the WorkspacePool
//     free lists, core.TurnSet's memoized matrix and routing.FromChain's
//     reachability memo stay race-free;
//   - goroutines launched inside loops must receive loop variables as
//     arguments rather than capturing them, matching the engine's
//     parallelFor idiom (per-iteration semantics make capture safe since
//     Go 1.22, but explicit passing keeps worker identity obvious and the
//     code portable).
//
// The check is flow-insensitive by design: it catches the
// forgot-to-lock-entirely class of bug, which is the one a refactor
// introduces. Deliberate unlocked access (e.g. in a constructor before
// the value escapes) is recognised when the receiver is a local built
// from a composite literal; anything else can carry //ebda:allow
// locklint with a justification.
var Locklint = &Analyzer{
	Name: "locklint",
	Doc:  "flags guarded-field access without the guarding mutex and loop-variable capture in goroutines",
	Run:  runLocklint,
}

func runLocklint(pass *Pass) error {
	guarded := guardedFields(pass)
	for _, f := range pass.Files {
		for _, fd := range funcBodies(f) {
			if len(guarded) > 0 {
				locklintFunc(pass, fd, guarded)
			}
			goroutineCapture(pass, fd)
		}
	}
	return nil
}

// guardedFields collects the fields of package-level struct types that
// follow a `mu` mutex field.
func guardedFields(pass *Pass) map[*types.Var]string {
	out := map[*types.Var]string{}
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		muIndex := -1
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if f.Name() == "mu" && isMutex(f.Type()) {
				muIndex = i
				break
			}
		}
		if muIndex < 0 {
			continue
		}
		for i := muIndex + 1; i < st.NumFields(); i++ {
			f := st.Field(i)
			if syncOwnType(f.Type()) {
				continue
			}
			out[f] = tn.Name()
		}
	}
	return out
}

// isMutex reports whether t is sync.Mutex or sync.RWMutex.
func isMutex(t types.Type) bool {
	s := t.String()
	return s == "sync.Mutex" || s == "sync.RWMutex"
}

// syncOwnType reports whether a field type synchronises itself (sync or
// sync/atomic values), exempting it from the mu-guard rule.
func syncOwnType(t types.Type) bool {
	s := t.String()
	return strings.HasPrefix(s, "sync.") || strings.HasPrefix(s, "sync/atomic.") || strings.HasPrefix(s, "atomic.")
}

// locklintFunc checks every guarded-field access in one function.
func locklintFunc(pass *Pass, fd *ast.FuncDecl, guarded map[*types.Var]string) {
	// Collect lock events: receiver-object -> positions of x.mu.Lock() /
	// x.mu.RLock() calls.
	locks := map[types.Object][]token.Pos{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		mu, ok := sel.X.(*ast.SelectorExpr)
		if !ok || mu.Sel.Name != "mu" {
			return true
		}
		if root := rootIdent(mu.X); root != nil {
			if obj := pass.Info.ObjectOf(root); obj != nil {
				locks[obj] = append(locks[obj], call.Pos())
			}
		}
		return true
	})
	locals := freshLocals(pass, fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection, ok := pass.Info.Selections[sel]
		if !ok || selection.Kind() != types.FieldVal {
			return true
		}
		field, ok := selection.Obj().(*types.Var)
		if !ok {
			return true
		}
		owner, isGuarded := guarded[field]
		if !isGuarded {
			return true
		}
		root := rootIdent(sel.X)
		if root == nil {
			return true
		}
		recv := pass.Info.ObjectOf(root)
		if recv == nil || locals[recv] {
			return true
		}
		for _, pos := range locks[recv] {
			if pos < sel.Pos() {
				return true
			}
		}
		pass.Reportf(sel.Pos(), "%s.%s is guarded by mu; no %s.mu.Lock()/RLock() precedes this access in %s", owner, field.Name(), root.Name, fd.Name.Name)
		return true
	})
}

// freshLocals returns the objects of local variables initialised from a
// composite literal or new() in this function — values that have not
// escaped and may be filled without holding their mutex (the constructor
// pattern).
func freshLocals(pass *Pass, fd *ast.FuncDecl) map[types.Object]bool {
	out := map[types.Object]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			if freshAlloc(pass, as.Rhs[i]) {
				if obj := pass.Info.ObjectOf(id); obj != nil {
					out[obj] = true
				}
			}
		}
		return true
	})
	return out
}

// freshAlloc reports whether e allocates a brand-new value: &T{...},
// T{...} or new(T).
func freshAlloc(pass *Pass, e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			_, ok := ast.Unparen(x.X).(*ast.CompositeLit)
			return ok
		}
	case *ast.CallExpr:
		if b, ok := calleeObject(pass.Info, x).(*types.Builtin); ok && b.Name() == "new" {
			return true
		}
	}
	return false
}

// goroutineCapture flags `go func() { ... }()` literals that reference an
// enclosing loop variable instead of receiving it as an argument.
func goroutineCapture(pass *Pass, fd *ast.FuncDecl) {
	type loopFrame struct {
		node ast.Node
		vars map[types.Object]string
	}
	var loops []loopFrame
	var visit func(n ast.Node)
	collectVars := func(n ast.Node) map[types.Object]string {
		vars := map[types.Object]string{}
		addIdent := func(e ast.Expr) {
			if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
				if obj := pass.Info.Defs[id]; obj != nil {
					vars[obj] = id.Name
				}
			}
		}
		switch x := n.(type) {
		case *ast.RangeStmt:
			addIdent(x.Key)
			if x.Value != nil {
				addIdent(x.Value)
			}
		case *ast.ForStmt:
			if init, ok := x.Init.(*ast.AssignStmt); ok && init.Tok == token.DEFINE {
				for _, lhs := range init.Lhs {
					addIdent(lhs)
				}
			}
		}
		return vars
	}
	check := func(gs *ast.GoStmt) {
		lit, ok := gs.Call.Fun.(*ast.FuncLit)
		if !ok || len(loops) == 0 {
			return
		}
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.Info.Uses[id]
			if obj == nil {
				return true
			}
			for _, frame := range loops {
				if name, ok := frame.vars[obj]; ok {
					pass.Reportf(id.Pos(), "goroutine closure captures loop variable %s; pass it as an argument (the parallelFor idiom)", name)
					return true
				}
			}
			return true
		})
	}
	visit = func(n ast.Node) {
		switch x := n.(type) {
		case *ast.RangeStmt, *ast.ForStmt:
			loops = append(loops, loopFrame{node: n, vars: collectVars(n)})
			ast.Inspect(loopBody(n), func(m ast.Node) bool {
				switch y := m.(type) {
				case *ast.GoStmt:
					check(y)
				case *ast.RangeStmt, *ast.ForStmt:
					if m != x {
						visit(m)
						return false
					}
				}
				return true
			})
			loops = loops[:len(loops)-1]
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.RangeStmt, *ast.ForStmt:
			visit(n)
			return false
		}
		return true
	})
}

// loopBody returns the body block of a for or range statement.
func loopBody(n ast.Node) *ast.BlockStmt {
	switch x := n.(type) {
	case *ast.RangeStmt:
		return x.Body
	case *ast.ForStmt:
		return x.Body
	}
	return nil
}
