package lint

import (
	"go/ast"
	"go/token"
)

// Ctxlint enforces the serving layer's context discipline. The HTTP and
// cluster layers (ebda/internal/serve, ebda/internal/cluster and any
// /serve- or /cluster-suffixed package, same scope as verifygate's
// serving rule) own deadline and cancellation propagation: every piece of
// request-scoped work must derive its context from the caller, and
// polling loops must not leak timers.
//
// Two rules:
//
//   - no context.Background() or context.TODO() in a serving package. A
//     fresh root context detaches the work from the request's deadline
//     and from graceful drain. The rare deliberate detachment (e.g. a
//     coalesced flight that outlives its first caller) carries
//     //ebda:allow ctxlint with a reason.
//
//   - no time.After in a select inside a loop. Each iteration allocates
//     a timer the runtime cannot reclaim until it fires, so a tight
//     retry/poll loop with a long timeout pins memory proportional to
//     iteration rate; use time.NewTimer or time.NewTicker and reuse it.
var Ctxlint = &Analyzer{
	Name: "ctxlint",
	Doc:  "serving packages must propagate request contexts and must not leak timers in poll loops",
	Run:  runCtxlint,
}

func runCtxlint(pass *Pass) error {
	if !servingPkg(pass.PkgPath) {
		return nil
	}
	reported := map[token.Pos]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				obj := calleeObject(pass.Info, x)
				for _, name := range []string{"Background", "TODO"} {
					if isPkgFunc(obj, "context", name) {
						pass.Reportf(x.Pos(), "context.%s() in a serving package detaches work from the request deadline and graceful drain; derive the context from the caller (//ebda:allow ctxlint for deliberate detachment)", name)
					}
				}
			case *ast.ForStmt:
				reportSelectAfter(pass, x.Body, reported)
			case *ast.RangeStmt:
				reportSelectAfter(pass, x.Body, reported)
			}
			return true
		})
	}
	return nil
}

// reportSelectAfter flags time.After channels in select clauses inside a
// loop body. Function literals are skipped — their own loops are visited
// independently — and nested loops dedupe through the reported set.
func reportSelectAfter(pass *Pass, body *ast.BlockStmt, reported map[token.Pos]bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		for _, cl := range sel.Body.List {
			cc, ok := cl.(*ast.CommClause)
			if !ok || cc.Comm == nil {
				continue
			}
			ch := commChanExpr(cc.Comm)
			call, ok := ch.(*ast.CallExpr)
			if !ok || reported[call.Pos()] {
				continue
			}
			if isPkgFunc(calleeObject(pass.Info, call), "time", "After") {
				reported[call.Pos()] = true
				pass.Reportf(call.Pos(), "time.After in a select inside a loop allocates an uncollectable timer per iteration; hoist a time.NewTimer/NewTicker out of the loop and reuse it")
			}
		}
		return true
	})
}

// commChanExpr extracts the channel expression a select clause
// communicates on, or nil.
func commChanExpr(comm ast.Stmt) ast.Expr {
	switch s := comm.(type) {
	case *ast.SendStmt:
		return ast.Unparen(s.Chan)
	case *ast.ExprStmt:
		if u, ok := s.X.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
			return ast.Unparen(u.X)
		}
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			if u, ok := rhs.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				return ast.Unparen(u.X)
			}
		}
	}
	return nil
}
