package lint

import (
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestRepoLockGraphAcyclic is the reflexive acceptance test: the
// repository's own interprocedural lock/wait graph, extracted over every
// shipped package and verified through the cdg engine, is deadlock-free
// today. A refactor that introduces a lock-order cycle anywhere in the
// module fails here with the engine's witness chain rendered to
// file:line sites.
func TestRepoLockGraphAcyclic(t *testing.T) {
	l, err := sharedLoader()
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	dirs, err := Expand(l.ModRoot(), []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	pkgs := make([]*Package, 0, len(dirs))
	for _, dir := range dirs {
		pkg, err := l.Load(dir)
		if err != nil {
			t.Fatalf("load %s: %v", dir, err)
		}
		pkgs = append(pkgs, pkg)
	}
	lg := BuildLockGraph(pkgs...)
	// Node extraction must see the module's synchronisation objects (the
	// caches' mutexes, the pools, the flight group, the worker
	// WaitGroups); zero nodes would mean extraction silently broke. Edges
	// are NOT required: as of this writing every lock region in the repo
	// is call-free and wait-free, so the graph is 28 nodes and 0 edges —
	// trivially acyclic, which is the strongest possible verdict.
	if len(lg.Nodes) == 0 {
		t.Fatal("repo lock graph has no nodes — extraction is broken")
	}
	for _, h := range lg.hazards {
		t.Errorf("blocking wait under a held lock at %s: waits on %s holding %s",
			lg.shortPos(pkgs[0].Fset.Position(h.pos)), h.waitKey, h.heldKey)
	}
	rep := lg.Verify()
	if !rep.Acyclic {
		t.Fatalf("the repository's lock/wait graph has a cycle: %s", lg.RenderCycle(rep.Cycle))
	}
	// The engine's report and the graph must agree on scale.
	if rep.Nodes != len(lg.Nodes) || rep.Edges != len(lg.Edges) {
		t.Fatalf("report/graph mismatch: report %d/%d vs graph %d/%d",
			rep.Nodes, rep.Edges, len(lg.Nodes), len(lg.Edges))
	}
	t.Logf("repo lock graph: %d nodes, %d edges, acyclic", rep.Nodes, rep.Edges)
}

// TestDeadlintWitnessChain pins the shape of a rendered cycle witness on
// the AB/BA golden: an ordered chain of file:line acquisition sites where
// each step acquires exactly the node the next step holds.
func TestDeadlintWitnessChain(t *testing.T) {
	l, err := sharedLoader()
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkg, err := l.Load(filepath.Join("testdata", "deadlint", "cyclic"))
	if err != nil {
		t.Fatal(err)
	}
	lg := BuildLockGraph(pkg)
	rep := lg.Verify()
	if rep.Acyclic {
		t.Fatal("cyclic golden verified acyclic")
	}
	if len(rep.Cycle) != 2 {
		t.Fatalf("AB/BA witness has %d nodes, want 2: %v", len(rep.Cycle), rep.Cycle)
	}
	witness := lg.RenderCycle(rep.Cycle)
	stepRe := regexp.MustCompile(`^internal/lint/testdata/deadlint/cyclic/cyclic\.go:\d+: holds (\S+) while acquiring (\S+)$`)
	steps := strings.Split(witness, "; ")
	if len(steps) != 2 {
		t.Fatalf("witness has %d steps, want 2: %q", len(steps), witness)
	}
	var held, acquired []string
	for _, step := range steps {
		m := stepRe.FindStringSubmatch(step)
		if m == nil {
			t.Fatalf("witness step %q does not match %q", step, stepRe)
		}
		held = append(held, m[1])
		acquired = append(acquired, m[2])
	}
	for i := range steps {
		if acquired[i] != held[(i+1)%len(steps)] {
			t.Fatalf("witness chain broken at step %d: acquires %s but next holds %s (%q)",
				i, acquired[i], held[(i+1)%len(steps)], witness)
		}
	}
	if held[0] == held[1] {
		t.Fatalf("witness names one lock twice: %q", witness)
	}
}

// TestRunDeterministicOrdering pins satellite-level determinism of the
// suite's output: two runs render byte-identically, and the diagnostic
// order is strictly sorted by (file, line, column, analyzer, message) —
// the message tiebreak matters because deadlint reports two hazards at
// one position in the chanwait golden.
func TestRunDeterministicOrdering(t *testing.T) {
	l, err := sharedLoader()
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkg, err := l.Load(filepath.Join("testdata", "deadlint", "chanwait"))
	if err != nil {
		t.Fatal(err)
	}
	render := func() string {
		diags, err := Run(pkg, All())
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		for _, d := range diags {
			sb.WriteString(d.String())
			sb.WriteByte('\n')
		}
		return sb.String()
	}
	first := render()
	for i := 0; i < 5; i++ {
		if got := render(); got != first {
			t.Fatalf("run %d diverged:\n%s\nvs\n%s", i+2, got, first)
		}
	}
	diags, err := Run(pkg, All())
	if err != nil {
		t.Fatal(err)
	}
	samePos := 0
	for i := 1; i < len(diags); i++ {
		a, b := diags[i-1], diags[i]
		if a.Pos.Filename == b.Pos.Filename && a.Pos.Line == b.Pos.Line && a.Pos.Column == b.Pos.Column {
			samePos++
			if a.Analyzer > b.Analyzer || (a.Analyzer == b.Analyzer && a.Message >= b.Message) {
				t.Fatalf("same-position diagnostics out of order:\n%s\n%s", a, b)
			}
		}
	}
	if samePos == 0 {
		t.Fatal("chanwait golden no longer produces same-position diagnostics; the tiebreak is untested")
	}
}
