package lint

// Deadlint applies the engine's own theory to the engine's own source: it
// extracts the interprocedural lock/wait-order graph of the analyzed
// package and its module-local imports (see lockgraph.go), reduces it to
// an abstract cdg.EdgeSet, and asks the cached verification engine for
// the acyclicity verdict — the same reduction the paper makes from
// routing-deadlock freedom to CDG acyclicity, and the same blessed-entry
// discipline verifygate imposes on every other verdict consumer.
//
// Two diagnostic families come out of one graph build:
//
//   - lock-order cycles: every edge of the engine's cycle witness whose
//     acquisition site lies in the analyzed package is reported there,
//     with the full ordered file:line chain attached, so a cross-package
//     cycle surfaces once per owning package and never twice.
//
//   - blocking waits under a held mutex: a channel send/receive, blocking
//     select or WaitGroup.Wait executed while a mutex is positionally
//     held. Even when the graph stays acyclic (the waking goroutine may
//     not need the lock today), the wait pins the lock for an unbounded
//     time and turns into a deadlock the moment the waker needs it.
//     sync.Cond.Wait is exempt: its contract requires the lock held, and
//     it releases it while waiting.
//
// Deliberate exceptions carry //ebda:allow deadlint with a reason.
var Deadlint = &Analyzer{
	Name: "deadlint",
	Doc:  "verifies the package's interprocedural lock/wait graph deadlock-free through the cdg engine",
	Run:  runDeadlint,
}

func runDeadlint(pass *Pass) error {
	if pass.pkg == nil {
		return nil
	}
	lg := BuildLockGraph(pass.pkg)
	rep := lg.Verify()
	if !rep.Acyclic {
		witness := lg.RenderCycle(rep.Cycle)
		for i := range rep.Cycle {
			from := rep.Cycle[i]
			to := rep.Cycle[(i+1)%len(rep.Cycle)]
			e, ok := lg.edgeBetween(from, to)
			if !ok || e.PkgPath != pass.PkgPath {
				continue
			}
			pass.Reportf(e.pos, "lock-order cycle: holds %s while %s %s; full cycle: %s",
				lg.Nodes[from].Key, viaVerb(e.Via), lg.Nodes[to].Key, witness)
		}
	}
	for _, h := range lg.hazards {
		if h.pkgPath != pass.PkgPath {
			continue
		}
		pass.Reportf(h.pos, "blocking %s on %s while holding %s; the wait pins the lock for unbounded time and deadlocks if the waker ever needs it",
			h.op, h.waitKey, h.heldKey)
	}
	return nil
}
