package lint

import (
	"go/ast"
	"go/types"
)

// Hotpath reads //ebda:hotpath directive comments on function
// declarations and flags allocation hazards inside the annotated bodies:
//
//   - any fmt call (Sprintf and friends allocate and reflect);
//   - map or slice composite literals inside loops, and make() inside
//     loops without a capacity (a fresh backing array per iteration);
//   - append to a slice that is freshly allocated inside a loop of the
//     same function — the hoist-the-buffer / pre-size-it rule that keeps
//     VerifyTurnSet at a handful of allocations per verification;
//   - boxing of basic values into interface-keyed maps or bare
//     interface conversions, which allocate per operation.
//
// Reusing a buffer via x = x[:0], appending to parameters or
// workspace-owned scratch, and capacity-hinted make() are all recognised
// as clean. The directive is the contract: annotate a function and the
// analyzer keeps future edits allocation-lean.
//
// Calls into ebda/internal/obs/trace are held to the package's own
// contract: annotated functions may use only the zero-alloc record path
// — trace.FromContext, Trace.StartSpan and the SpanRef methods
// End/SetInt/SetStr. Minting (Tracer.Start/StartRemote), finishing,
// ID/header rendering and the render layer all allocate or format, and
// belong outside the hot path.
var Hotpath = &Analyzer{
	Name: "hotpath",
	Doc:  "flags allocation hazards inside functions annotated //ebda:hotpath",
	Run:  runHotpath,
}

// tracePath is the request-tracing package whose record-path contract
// hotpath enforces inside annotated functions.
const tracePath = "ebda/internal/obs/trace"

// hotpathTraceFastPath is the zero-alloc record set — the only trace
// calls permitted in //ebda:hotpath functions. Keys are "Func" for
// package functions and "Recv.Method" for methods.
var hotpathTraceFastPath = map[string]bool{
	"FromContext":     true,
	"Trace.StartSpan": true,
	"SpanRef.End":     true,
	"SpanRef.SetInt":  true,
	"SpanRef.SetStr":  true,
}

func runHotpath(pass *Pass) error {
	for _, f := range pass.Files {
		for _, fd := range funcBodies(f) {
			if hasDirective(fd.Doc, "hotpath") {
				hotpathFunc(pass, fd)
			}
		}
	}
	return nil
}

func hotpathFunc(pass *Pass, fd *ast.FuncDecl) {
	loops := collectLoops(fd)
	inLoop := func(pos ast.Node) bool {
		for _, l := range loops {
			if within(pos.Pos(), loopBody(l)) {
				return true
			}
		}
		return false
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			obj := calleeObject(pass.Info, x)
			if fn, ok := obj.(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
				pass.Reportf(x.Pos(), "fmt.%s in //ebda:hotpath function %s allocates; format outside the hot path", fn.Name(), fd.Name.Name)
				return true
			}
			if fn, ok := obj.(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == tracePath && pass.PkgPath != tracePath {
				key := fn.Name()
				if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
					key = recvNamed(sig.Recv().Type()) + "." + fn.Name()
				}
				if !hotpathTraceFastPath[key] {
					pass.Reportf(x.Pos(), "trace call trace.%s in //ebda:hotpath function %s is off the zero-alloc record path; only FromContext, Trace.StartSpan and SpanRef.End/SetInt/SetStr may run there", key, fd.Name.Name)
				}
				return true
			}
			if b, ok := obj.(*types.Builtin); ok {
				switch b.Name() {
				case "make":
					if inLoop(x) {
						hotpathMake(pass, fd, x)
					}
				case "append":
					hotpathAppend(pass, fd, x, loops)
				}
				return true
			}
			// Bare interface conversions of basic values: T(x) where T is
			// an interface type.
			if tv, ok := pass.Info.Types[x.Fun]; ok && tv.IsType() {
				if _, isIface := tv.Type.Underlying().(*types.Interface); isIface && len(x.Args) == 1 {
					if at := pass.TypeOf(x.Args[0]); at != nil {
						if _, basic := at.Underlying().(*types.Basic); basic {
							pass.Reportf(x.Pos(), "value boxed into interface in //ebda:hotpath function %s; keep hot-path keys concrete", fd.Name.Name)
						}
					}
				}
			}
		case *ast.CompositeLit:
			if !inLoop(x) {
				return true
			}
			if t := pass.TypeOf(x); t != nil {
				switch t.Underlying().(type) {
				case *types.Map:
					pass.Reportf(x.Pos(), "map literal inside a loop of //ebda:hotpath function %s allocates per iteration; hoist it", fd.Name.Name)
				case *types.Slice:
					pass.Reportf(x.Pos(), "slice literal inside a loop of //ebda:hotpath function %s allocates per iteration; hoist or pre-size it", fd.Name.Name)
				}
			}
		case *ast.IndexExpr:
			if mt, ok := typeAsMap(pass.TypeOf(x.X)); ok {
				if _, isIface := mt.Key().Underlying().(*types.Interface); isIface {
					if kt := pass.TypeOf(x.Index); kt != nil {
						if _, basic := kt.Underlying().(*types.Basic); basic {
							pass.Reportf(x.Index.Pos(), "basic key boxed into interface-keyed map in //ebda:hotpath function %s; use a concrete key type", fd.Name.Name)
						}
					}
				}
			}
		}
		return true
	})
}

// hotpathMake flags in-loop make() calls that allocate per iteration:
// maps always, slices unless a capacity is given.
func hotpathMake(pass *Pass, fd *ast.FuncDecl, call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	if tv, ok := pass.Info.Types[call.Args[0]]; ok && tv.IsType() {
		switch tv.Type.Underlying().(type) {
		case *types.Map:
			pass.Reportf(call.Pos(), "make(map) inside a loop of //ebda:hotpath function %s allocates per iteration; hoist and clear it", fd.Name.Name)
		case *types.Slice:
			if len(call.Args) < 3 {
				pass.Reportf(call.Pos(), "make without capacity inside a loop of //ebda:hotpath function %s; pre-size the buffer", fd.Name.Name)
			}
		}
	}
}

// hotpathAppend flags appends whose destination slice is freshly
// allocated inside a loop of the annotated function — each iteration
// grows a new backing array from scratch.
func hotpathAppend(pass *Pass, fd *ast.FuncDecl, call *ast.CallExpr, loops []ast.Node) {
	if len(call.Args) == 0 {
		return
	}
	root := rootIdent(call.Args[0])
	if root == nil {
		return
	}
	obj := pass.Info.ObjectOf(root)
	if obj == nil {
		return
	}
	declaredInLoop := false
	for _, l := range loops {
		if body := loopBody(l); body != nil && within(obj.Pos(), body) {
			declaredInLoop = true
			break
		}
	}
	if !declaredInLoop || !within(obj.Pos(), fd) {
		return
	}
	if reusesBuffer(pass, fd, obj) {
		return
	}
	pass.Reportf(call.Pos(), "append to %s, declared fresh inside a loop of //ebda:hotpath function %s; hoist the buffer or make() it with capacity", obj.Name(), fd.Name.Name)
}

// reusesBuffer reports whether obj's defining statement reuses existing
// storage (x := y[:0] or a capacity-hinted make) rather than allocating
// empty.
func reusesBuffer(pass *Pass, fd *ast.FuncDecl, obj types.Object) bool {
	reuse := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || pass.Info.Defs[id] != obj || i >= len(as.Rhs) {
				continue
			}
			switch rhs := ast.Unparen(as.Rhs[i]).(type) {
			case *ast.SliceExpr:
				reuse = true
			case *ast.CallExpr:
				if b, ok := calleeObject(pass.Info, rhs).(*types.Builtin); ok && b.Name() == "make" && len(rhs.Args) >= 3 {
					reuse = true
				}
			}
		}
		return true
	})
	return reuse
}

// collectLoops returns every for/range statement node in the function.
func collectLoops(fd *ast.FuncDecl) []ast.Node {
	var out []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			out = append(out, n)
		}
		return true
	})
	return out
}

// typeAsMap unwraps t to a map type if it is one.
func typeAsMap(t types.Type) (*types.Map, bool) {
	if t == nil {
		return nil, false
	}
	m, ok := t.Underlying().(*types.Map)
	return m, ok
}
