// Package cyclic is deadlint's AB/BA golden file: two functions take the
// same two mutexes in opposite orders, the classic two-party deadlock.
// The engine's cycle witness covers both edges, and each is reported at
// its own acquisition site with the full ordered chain attached.
package cyclic

import "sync"

type locks struct {
	a sync.Mutex
	b sync.Mutex
	n int
}

// ab nests a then b.
func (l *locks) ab() {
	l.a.Lock()
	l.b.Lock() // want `lock-order cycle: holds .*locks\.a while acquiring .*locks\.b; full cycle: .*cyclic\.go:\d+.*cyclic\.go:\d+`
	l.n++
	l.b.Unlock()
	l.a.Unlock()
}

// ba nests b then a — the reverse order that closes the cycle.
func (l *locks) ba() {
	l.b.Lock()
	l.a.Lock() // want `lock-order cycle: holds .*locks\.b while acquiring .*locks\.a`
	l.n--
	l.a.Unlock()
	l.b.Unlock()
}
