// Package rwmutex is deadlint's reader/writer golden file: an RWMutex
// participates in a lock-order cycle through its read side. A reader
// holding state.RLock blocks a writer waiting in state.Lock, so
// RLock-then-side in one function and side-then-Lock in another deadlock
// exactly like two plain mutexes — read and write acquisitions share one
// graph node by design.
package rwmutex

import "sync"

type guard struct {
	state sync.RWMutex
	side  sync.Mutex
	n     int
}

// readThenSide acquires the side mutex under a read lock.
func (g *guard) readThenSide() int {
	g.state.RLock()
	g.side.Lock() // want `lock-order cycle: holds .*guard\.state while acquiring .*guard\.side`
	v := g.n
	g.side.Unlock()
	g.state.RUnlock()
	return v
}

// sideThenWrite acquires the write lock under the side mutex — the
// reverse order.
func (g *guard) sideThenWrite(v int) {
	g.side.Lock()
	g.state.Lock() // want `lock-order cycle: holds .*guard\.side while acquiring .*guard\.state`
	g.n = v
	g.state.Unlock()
	g.side.Unlock()
}
