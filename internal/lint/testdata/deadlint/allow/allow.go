// Package allow is deadlint's suppression golden file: the same AB/BA
// cycle as package cyclic, but both acquisition sites carry
// //ebda:allow deadlint directives (one same-line, one line-above), so
// the analyzer must stay silent. An unsuppressed hazard would fail the
// golden run as an unexpected diagnostic.
package allow

import "sync"

type locks struct {
	a sync.Mutex
	b sync.Mutex
	n int
}

func (l *locks) ab() {
	l.a.Lock()
	//ebda:allow deadlint golden: suppression on the line above the site
	l.b.Lock()
	l.n++
	l.b.Unlock()
	l.a.Unlock()
}

func (l *locks) ba() {
	l.b.Lock()
	l.a.Lock() //ebda:allow deadlint golden: same-line suppression
	l.n--
	l.a.Unlock()
	l.b.Unlock()
}
