// Package interproc is deadlint's call-graph golden file: neither
// function nests two Lock calls textually — each holds its own mutex
// across a call into the other type, and the callee's acquisition set
// (propagated by the summary fixpoint) closes the cycle. The diagnostics
// land on the call sites and name the callee in the edge description.
package interproc

import "sync"

type svc struct {
	mu sync.Mutex
	n  int
}

type store struct {
	mu sync.Mutex
	m  map[int]int
}

// get locks the store alone.
func (st *store) get(k int) int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.m[k]
}

// bump locks the service alone.
func (s *svc) bump() {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
}

// readThrough holds svc.mu across a call that acquires store.mu.
func (s *svc) readThrough(st *store, k int) {
	s.mu.Lock()
	s.n = st.get(k) // want `lock-order cycle: holds .*svc\.mu while calls interproc\.store\.get, which acquires .*store\.mu`
	s.mu.Unlock()
}

// writeBack holds store.mu across a call that acquires svc.mu — the
// reverse interprocedural order that closes the cycle.
func (st *store) writeBack(s *svc, k int) {
	st.mu.Lock()
	st.m[k] = 0
	s.bump() // want `lock-order cycle: holds .*store\.mu while calls interproc\.svc\.bump, which acquires .*svc\.mu`
	st.mu.Unlock()
}
