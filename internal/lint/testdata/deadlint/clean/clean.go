// Package clean is deadlint's must-stay-silent golden file: every lock
// pair is taken in one global order, every blocking wait happens after
// the locks are dropped, and the only channel operations under a lock are
// non-blocking. The package's lock/wait graph is acyclic and hazard-free,
// so the analyzer must report nothing here.
package clean

import "sync"

type pair struct {
	a sync.Mutex
	b sync.Mutex
	n int
}

// both nests the locks in the canonical a-then-b order.
func (p *pair) both() {
	p.a.Lock()
	p.b.Lock()
	p.n++
	p.b.Unlock()
	p.a.Unlock()
}

// deferred takes the same order with deferred unlocks; the defers must
// not be mistaken for early releases (or for late re-acquisitions).
func (p *pair) deferred() {
	p.a.Lock()
	defer p.a.Unlock()
	p.b.Lock()
	defer p.b.Unlock()
	p.n--
}

// inner locks b alone; callers holding a stay consistent with the a-b
// order, so the interprocedural edge is parallel to the direct one.
func (p *pair) inner() {
	p.b.Lock()
	p.n++
	p.b.Unlock()
}

// through holds a across a call that acquires b — an a->b edge again.
func (p *pair) through() {
	p.a.Lock()
	p.inner()
	p.a.Unlock()
}

// unlockBeforeWait drops the lock before blocking on the channel.
func (p *pair) unlockBeforeWait(ch chan int) {
	p.a.Lock()
	v := p.n
	p.a.Unlock()
	ch <- v
}

// nonBlockingUnderLock polls under the lock; the default clause makes
// every arm non-blocking, so no wait happens while a is held.
func (p *pair) nonBlockingUnderLock(ch chan int) {
	p.a.Lock()
	select {
	case v := <-ch:
		p.n = v
	default:
	}
	p.a.Unlock()
}

// spawned blocks inside a goroutine launched under the lock; the literal
// runs on its own stack with nothing held, so there is no hazard.
func (p *pair) spawned(ch chan int) {
	p.a.Lock()
	go func() {
		<-ch
	}()
	p.a.Unlock()
}
