// Package chanwait is deadlint's wait-under-lock golden file: blocking
// channel operations, selects and WaitGroup waits executed while a mutex
// is held are hazards even though the graph stays acyclic (waits are
// sinks). Cond.Wait is the contract-mandated exception, and a select
// with a default clause is non-blocking.
package chanwait

import "sync"

type box struct {
	mu sync.Mutex
	wg sync.WaitGroup
	c  *sync.Cond
	v  int
}

// recvUnderLock blocks on a receive while holding mu.
func (b *box) recvUnderLock(ch chan int) {
	b.mu.Lock()
	b.v = <-ch // want `blocking receive on .* while holding .*box\.mu`
	b.mu.Unlock()
}

// sendUnderLock blocks on a send while holding mu.
func (b *box) sendUnderLock(ch chan int) {
	b.mu.Lock()
	ch <- b.v // want `blocking send on .* while holding .*box\.mu`
	b.mu.Unlock()
}

// waitGroupUnderLock blocks on workers finishing while holding mu; if a
// worker needs mu to finish, this never returns.
func (b *box) waitGroupUnderLock() {
	b.mu.Lock()
	b.wg.Wait() // want `blocking WaitGroup\.Wait on .* while holding .*box\.mu`
	b.mu.Unlock()
}

// selectUnderLock blocks in a select with no default while holding mu.
func (b *box) selectUnderLock(ch chan int) {
	b.mu.Lock()
	select {
	case v := <-ch: // want `blocking select on .* while holding .*box\.mu`
		b.v = v
	}
	b.mu.Unlock()
}

// pollUnderLock is the non-blocking variant: the default clause means
// nothing waits while mu is held.
func (b *box) pollUnderLock(ch chan int) {
	b.mu.Lock()
	select {
	case v := <-ch:
		b.v = v
	default:
	}
	b.mu.Unlock()
}

// condWait is the blessed pattern: Cond.Wait requires its locker held
// and releases it while waiting, so no hazard is reported.
func (b *box) condWait() {
	b.mu.Lock()
	for b.v == 0 {
		b.c.Wait()
	}
	b.mu.Unlock()
}

// dual holds two mutexes across one wait: two hazards at one position,
// which also pins the suite's deterministic secondary ordering (same
// file, line, column and analyzer — messages must sort the output).
type dual struct {
	l1 sync.Mutex
	l2 sync.Mutex
	v  int
}

func (d *dual) doubleHold(ch chan int) {
	d.l1.Lock()
	d.l2.Lock()
	d.v = <-ch // want `while holding .*dual\.l1` `while holding .*dual\.l2`
	d.l2.Unlock()
	d.l1.Unlock()
}

// unlockFirst drops mu before blocking — the fix deadlint wants.
func (b *box) unlockFirst(ch chan int) {
	b.mu.Lock()
	v := b.v
	b.mu.Unlock()
	ch <- v
}
