// Package lockdata is locklint's golden file: a mu-guarded cache in the
// repository's convention, accessed correctly and incorrectly, plus
// goroutine loop-variable capture.
package lockdata

import "sync"

// cache follows the engine's convention: mu guards the fields declared
// after it.
type cache struct {
	hits int // before mu: not guarded
	mu   sync.RWMutex
	m    map[uint64]int
}

// lookupUnlocked reads the guarded map with no lock on any path.
func (c *cache) lookupUnlocked(k uint64) int {
	return c.m[k] // want `guarded by mu`
}

// storeUnlocked writes the guarded map with no lock on any path.
func (c *cache) storeUnlocked(k uint64, v int) {
	c.m[k] = v // want `guarded by mu`
}

// lookup is the correct read path.
func (c *cache) lookup(k uint64) int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.m[k]
}

// store is the correct write path.
func (c *cache) store(k uint64, v int) {
	c.mu.Lock()
	c.m[k] = v
	c.mu.Unlock()
}

// bump touches only the unguarded field declared before mu.
func (c *cache) bump() {
	c.hits++
}

// newCache is the constructor pattern: the value has not escaped, so
// filling the guarded field needs no lock.
func newCache() *cache {
	c := &cache{}
	c.m = make(map[uint64]int)
	return c
}

// captured launches goroutines that close over the loop variable.
func captured(xs []int, out chan<- int) {
	for _, x := range xs {
		go func() {
			out <- x // want `captures loop variable x`
		}()
	}
}

// passed is the parallelFor idiom: the loop variable arrives as an
// argument, so the closure's x is a parameter, not a capture.
func passed(xs []int, out chan<- int) {
	for _, x := range xs {
		go func(x int) {
			out <- x
		}(x)
	}
}
