package lockdata

// Go 1.22 gave loop variables per-iteration scope, and the pre-1.22
// shadowing idioms produce genuinely distinct variables. This file pins
// locklint's boundary: only a direct capture of the range/for-init
// variable itself is flagged; per-iteration derivations — a shadowing
// re-declaration, a body-scoped local, or the parameter idiom — must
// stay silent.

// shadowed re-declares the loop variable in the body; the closure's x is
// the shadow, not the loop variable.
func shadowed(xs []int, out chan<- int) {
	for _, x := range xs {
		x := x
		go func() {
			out <- x
		}()
	}
}

// bodyLocal closes over a body-scoped derivation of the loop variable.
func bodyLocal(xs []int, out chan<- int) {
	for _, x := range xs {
		doubled := x * 2
		go func() {
			out <- doubled
		}()
	}
}

// forInitShadow is the three-clause variant of the shadowing idiom.
func forInitShadow(n int, out chan<- int) {
	for i := 0; i < n; i++ {
		i := i
		go func() {
			out <- i
		}()
	}
}

// forInitCaptured is the direct capture of a for-init variable — still
// flagged, matching the range case in lock.go.
func forInitCaptured(n int, out chan<- int) {
	for i := 0; i < n; i++ {
		go func() {
			out <- i // want `captures loop variable i`
		}()
	}
}
