// Package hotdata is hotpath's golden file: allocation hazards inside an
// annotated function, the same constructs unflagged in an unannotated
// one, and an annotated function written in the engine's allocation-lean
// style.
package hotdata

import (
	"context"
	"fmt"

	"ebda/internal/obs"
	"ebda/internal/obs/trace"
)

// sink keeps results alive without more allocations.
var sink []string

// Package-level metrics: construction happens once at init, so only the
// record calls appear inside annotated functions.
var (
	obsOps   = obs.NewCounter("hotdata_ops_total", "operations recorded by the golden file")
	obsPhase = obs.NewPhase("hotdata.instrumented", "")
)

// labelHazards is annotated and allocates per iteration in four ways.
//
//ebda:hotpath
func labelHazards(n int) {
	for i := 0; i < n; i++ {
		s := fmt.Sprintf("ch%d", i) // want `fmt.Sprintf in //ebda:hotpath`
		sink = append(sink, s)
		tmp := []int{i} // want `slice literal inside a loop`
		_ = tmp
		seen := make(map[int]bool) // want `make\(map\) inside a loop`
		seen[i] = true
		buf := make([]byte, 0) // want `make without capacity inside a loop`
		_ = buf
	}
}

// perIterationAppend grows a fresh backing array every iteration.
//
//ebda:hotpath
func perIterationAppend(rows [][]int32) int {
	total := 0
	for _, row := range rows {
		var batch []int32
		for _, v := range row {
			batch = append(batch, v) // want `declared fresh inside a loop`
		}
		total += len(batch)
	}
	return total
}

// boxedKeys boxes ints into an interface-keyed map.
//
//ebda:hotpath
func boxedKeys(m map[any]int, k int) int {
	return m[k] // want `basic key boxed into interface-keyed map`
}

// unannotated repeats labelHazards without the directive: cold paths may
// allocate freely, so nothing fires.
func unannotated(n int) {
	for i := 0; i < n; i++ {
		sink = append(sink, fmt.Sprintf("ch%d", i))
		tmp := []int{i}
		_ = tmp
	}
}

// lean is annotated and uses every sanctioned pattern: parameters and
// reslicing reuse storage, make carries a capacity, appends target
// hoisted buffers.
//
// instrumented shows that obs record calls are hot-path safe: counter
// adds are single atomics and spans are value types, so an annotated
// function may meter itself without tripping the analyzer.
//
//ebda:hotpath
func instrumented(rows [][]int32) int {
	sp := obsPhase.Start()
	total := 0
	for _, row := range rows {
		obsOps.Add(uint64(len(row)))
		total += len(row)
	}
	sp.End()
	return total
}

// tracedFastPath stays on the zero-alloc record set: FromContext,
// StartSpan and the SpanRef attribute/End calls are hot-path safe, so an
// annotated function may record spans without tripping the analyzer.
//
//ebda:hotpath
func tracedFastPath(ctx context.Context, rows [][]int32) int {
	sp := trace.FromContext(ctx).StartSpan("hotdata.sum")
	total := 0
	for _, row := range rows {
		total += len(row)
	}
	sp.SetInt("rows", int64(len(rows)))
	sp.SetStr("kind", "golden")
	sp.End()
	return total
}

// tracedSlowPath reaches off the record path: minting, ID rendering and
// finishing allocate or take locks, and belong outside the hot path.
//
//ebda:hotpath
func tracedSlowPath(tr *trace.Tracer) string {
	t := tr.Start("hotdata.slow") // want `trace call trace.Tracer.Start in`
	id := t.ID()                  // want `trace call trace.Trace.ID in`
	t.Finish(200)                 // want `trace call trace.Trace.Finish in`
	return id
}

//ebda:hotpath
func lean(rows [][]int32, scratch []int32) int {
	out := make([]int32, 0, len(rows))
	total := 0
	for _, row := range rows {
		batch := scratch[:0]
		for _, v := range row {
			batch = append(batch, v)
		}
		if len(batch) > 0 {
			out = append(out, batch[0])
		}
		total += len(batch)
	}
	return total + len(out)
}
