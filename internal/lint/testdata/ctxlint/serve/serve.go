// Package serve is ctxlint's golden file. Its import path ends in
// "/serve", so the serving-layer context discipline applies: no fresh
// root contexts, no per-iteration time.After timers in select loops.
package serve

import (
	"context"
	"time"
)

// detach mints a fresh root context in request-scoped code.
func detach() context.Context {
	return context.Background() // want `context\.Background\(\) in a serving package`
}

// todo is the placeholder variant of the same mistake.
func todo() context.Context {
	return context.TODO() // want `context\.TODO\(\) in a serving package`
}

// allowed is the deliberate detachment pattern: annotated, so silent.
func allowed() context.Context {
	//ebda:allow ctxlint golden: deliberate detachment
	return context.Background()
}

// pollLoop allocates a fresh timer every iteration.
func pollLoop(done chan struct{}) {
	for {
		select {
		case <-done:
			return
		case <-time.After(time.Second): // want `time\.After in a select inside a loop`
		}
	}
}

// rangeLoop is the range-statement variant.
func rangeLoop(items []int, done chan struct{}) {
	for range items {
		select {
		case <-done:
		case <-time.After(time.Millisecond): // want `time\.After in a select inside a loop`
		}
	}
}

// singleTimeout is fine: one timer, no loop around it.
func singleTimeout(done chan struct{}) {
	select {
	case <-done:
	case <-time.After(time.Second):
	}
}

// tickerLoop is the fix ctxlint wants: one reusable ticker.
func tickerLoop(done chan struct{}) {
	t := time.NewTicker(time.Second)
	defer t.Stop()
	for {
		select {
		case <-done:
			return
		case <-t.C:
		}
	}
}

// spawnedSelect launches a goroutine per iteration; the literal's select
// is not itself in a loop on its own stack, so the loop rule does not
// apply (the goroutine-per-iteration cost is a different analyzer's
// business).
func spawnedSelect(done chan struct{}) {
	for i := 0; i < 3; i++ {
		go func() {
			select {
			case <-done:
			case <-time.After(time.Second):
			}
		}()
	}
}
