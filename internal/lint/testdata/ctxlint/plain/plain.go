// Package plain pins ctxlint's scope: the import path ends in neither
// /serve nor /cluster, so root contexts and time.After loops — however
// inadvisable — are out of this analyzer's jurisdiction and must not be
// reported.
package plain

import (
	"context"
	"time"
)

func batchRoot() context.Context {
	return context.Background()
}

func retry(done chan struct{}) {
	for {
		select {
		case <-done:
			return
		case <-time.After(time.Second):
		}
	}
}
