// Package obshttp is verifygate's observability-layer golden file. Its
// import path ends in "/obshttp", so the analyzer applies the
// observability contract: /debug and metrics handlers read published
// state — cache lookups, snapshots, trace rings — and never drive the
// verify engine. Every cdg Verify* call is flagged here, cached or not:
// even a cache-miss on the blessed serving path would let a debug scrape
// enqueue verification work.
package obshttp

import (
	"context"

	"ebda/internal/cdg"
	"ebda/internal/core"
	"ebda/internal/topology"
)

// debugVerify drives the engine from a debug handler: the uncached
// pooled entry point is off-limits.
func debugVerify(ctx context.Context, net *topology.Network, ts *core.TurnSet) (cdg.Report, error) {
	return cdg.VerifyTurnSetCtx(ctx, net, nil, ts, 1) // want `verification call cdg.VerifyTurnSetCtx from the observability layer`
}

// debugCachedVerify shows the cached wrapper is equally banned: a cache
// miss would still compute a verdict inside a metrics scrape.
func debugCachedVerify(net *topology.Network, ts *core.TurnSet) bool {
	return cdg.VerifyTurnSetCached(net, nil, ts).Acyclic // want `verification call cdg.VerifyTurnSetCached from the observability layer`
}

// debugCacheCompute reaches the engine through a VerifyCache method; the
// ban covers methods as well as package functions.
func debugCacheCompute(ctx context.Context, cache *cdg.VerifyCache, net *topology.Network, ts *core.TurnSet) (cdg.Report, error) {
	return cache.VerifyTurnSetCtx(ctx, net, nil, ts, 1) // want `verification call cdg.VerifyTurnSetCtx from the observability layer`
}

// publishedState is the sanctioned read: a cache lookup only ever
// returns verdicts the serving layer already produced.
func publishedState(cache *cdg.VerifyCache, net *topology.Network, ts *core.TurnSet) (cdg.Report, bool) {
	return cache.Lookup(net, nil, ts)
}
