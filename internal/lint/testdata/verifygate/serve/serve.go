// Package serve is verifygate's serving-layer golden file. Its import
// path ends in "/serve", so the analyzer applies the stricter serving
// contract: on top of the usual bans, every verdict must flow through
// the verify cache — the uncached package-level entry points and the
// Workspace verify methods are forbidden here.
package serve

import (
	"context"

	"ebda/internal/cdg"
	"ebda/internal/core"
	"ebda/internal/topology"
)

// uncachedVerdict computes a served verdict without the cache.
func uncachedVerdict(net *topology.Network, ts *core.TurnSet) bool {
	return cdg.VerifyTurnSet(net, nil, ts).Acyclic // want `uncached verify call cdg.VerifyTurnSet in`
}

// uncachedParallel is the Jobs variant of the same mistake.
func uncachedParallel(net *topology.Network, ts *core.TurnSet) bool {
	return cdg.VerifyTurnSetJobs(net, nil, ts, 4).Acyclic // want `uncached verify call cdg.VerifyTurnSetJobs in`
}

// uncachedCtx threads a deadline but still skips the cache.
func uncachedCtx(ctx context.Context, net *topology.Network, ts *core.TurnSet) (cdg.Report, error) {
	return cdg.VerifyTurnSetCtx(ctx, net, nil, ts, 1) // want `uncached verify call cdg.VerifyTurnSetCtx in`
}

// uncachedChain verifies a chain outside the cache.
func uncachedChain(net *topology.Network, chain *core.Chain) bool {
	return cdg.VerifyChain(net, chain).Acyclic // want `uncached verify call cdg.VerifyChain in`
}

// rawBuild constructs the graph directly; in a serving package even the
// build step is off the blessed path.
func rawBuild(net *topology.Network, ts *core.TurnSet) *cdg.Graph {
	return cdg.BuildFromTurnSet(net, nil, ts) // want `uncached verify call cdg.BuildFromTurnSet in`
}

// uncachedEdgeSet verifies an abstract edge-set graph outside the cache;
// in a serving package even topology-free verdicts must be memoized
// through cdg.VerifyEdgeSetCached.
func uncachedEdgeSet(e *cdg.EdgeSet) bool {
	return cdg.VerifyEdgeSet(e).Acyclic // want `uncached verify call cdg.VerifyEdgeSet in`
}

// cachedEdgeSet is the blessed topology-free path.
func cachedEdgeSet(e *cdg.EdgeSet) bool {
	return cdg.VerifyEdgeSetCached(e).Acyclic
}

// uncachedMode proves a multi-mode property of an imported channel
// graph outside the mode cache; a served mode verdict would be
// unmemoized and uncoalescible.
func uncachedMode(e *cdg.EdgeSet, in, out []int) bool {
	return cdg.VerifyMode(e, cdg.ModeLiveness, in, out, nil).OK // want `uncached verify call cdg.VerifyMode in`
}

// uncachedModeJobs is the Jobs variant of the same mistake.
func uncachedModeJobs(e *cdg.EdgeSet, in, out []int) bool {
	return cdg.VerifyModeJobs(e, cdg.ModeSubrel, in, out, nil, 4).OK // want `uncached verify call cdg.VerifyModeJobs in`
}

// cachedMode is the blessed multi-mode path: ModeCache.Lookup for hits,
// the cache's context-aware compute for misses, cdg.ModeKey for
// coalescing.
func cachedMode(ctx context.Context, c *cdg.ModeCache, e *cdg.EdgeSet, in, out []int) (cdg.ModeReport, error) {
	if rep, ok := c.Lookup(e, cdg.ModeEscape, in, out, nil); ok {
		return rep, nil
	}
	key, _ := cdg.ModeKey(e, cdg.ModeEscape, in, out, nil)
	_ = key
	return c.VerifyModeCtx(ctx, e, cdg.ModeEscape, in, out, nil, 1)
}

// cachedModeWrapper shows the process-wide cached wrapper is sanctioned.
func cachedModeWrapper(e *cdg.EdgeSet, in, out []int) bool {
	return cdg.VerifyModeCached(e, cdg.ModeLoop, in, out, nil).OK
}

// workspaceVerdict bypasses the cache via a private workspace.
func workspaceVerdict(ctx context.Context, net *topology.Network, ts *core.TurnSet) (cdg.Report, error) {
	ws := cdg.NewWorkspace(net, nil)
	return ws.VerifyTurnSetCtx(ctx, ts, 1) // want `workspace verify call cdg.Workspace.VerifyTurnSetCtx`
}

// deltaWorkspaceVerdict builds a retained delta workspace by hand; in a
// serving package the verdict would bypass the delta cache.
func deltaWorkspaceVerdict(net *topology.Network, ts *core.TurnSet, diff cdg.Diff) (cdg.Report, error) {
	dw, err := cdg.NewDeltaWorkspace(net, nil, ts) // want `direct delta workspace construction cdg.NewDeltaWorkspace in`
	if err != nil {
		return cdg.Report{}, err
	}
	return dw.VerifyDiffJobs(diff, 1) // want `delta workspace verify call cdg.DeltaWorkspace.VerifyDiffJobs`
}

// deltaWorkspaceCtx is the context-threading variant of the same bypass.
func deltaWorkspaceCtx(ctx context.Context, net *topology.Network, ts *core.TurnSet, diff cdg.Diff) (cdg.Report, error) {
	dw, err := cdg.NewDeltaWorkspaceCtx(ctx, net, nil, ts, 1) // want `direct delta workspace construction cdg.NewDeltaWorkspaceCtx in`
	if err != nil {
		return cdg.Report{}, err
	}
	return dw.VerifyDiffCtx(ctx, diff, 1) // want `delta workspace verify call cdg.DeltaWorkspace.VerifyDiffCtx`
}

// deltaPoolVerdict checks a workspace out of the shared pool directly,
// skipping the memoizing delta cache entry.
func deltaPoolVerdict(ctx context.Context, net *topology.Network, ts *core.TurnSet, diff cdg.Diff) (cdg.Report, error) {
	dw, err := cdg.DefaultDeltaPool.GetCtx(ctx, net, nil, ts, 1) // want `delta pool checkout cdg.DeltaPool.GetCtx`
	if err != nil {
		return cdg.Report{}, err
	}
	defer cdg.DefaultDeltaPool.Put(dw)
	return dw.VerifyDiffCtx(ctx, diff, 1) // want `delta workspace verify call cdg.DeltaWorkspace.VerifyDiffCtx`
}

// cachedDeltaVerdict is the blessed serving path for incremental
// verdicts: LookupDelta for hits, the cache's delta compute for misses.
func cachedDeltaVerdict(ctx context.Context, c *cdg.VerifyCache, net *topology.Network, ts *core.TurnSet, diff cdg.Diff) (cdg.Report, error) {
	if rep, ok := c.LookupDelta(net, nil, ts, diff); ok {
		return rep, nil
	}
	return c.VerifyDeltaCtx(ctx, net, nil, ts, diff, 1)
}

// cachedDeltaHelpers shows the other sanctioned delta entry points: the
// delta identity for coalescing and the process-wide cached wrapper.
func cachedDeltaHelpers(net *topology.Network, ts *core.TurnSet, diff cdg.Diff) (uint64, error) {
	key, _ := cdg.DeltaKey(net, nil, ts, diff)
	_, err := cdg.VerifyDeltaCached(net, nil, ts, diff)
	return key, err
}

// cachedVerdict is the blessed serving path: Lookup for hits, then the
// cache's context-aware compute for misses.
func cachedVerdict(ctx context.Context, c *cdg.VerifyCache, net *topology.Network, ts *core.TurnSet) (cdg.Report, error) {
	if rep, ok := c.Lookup(net, nil, ts); ok {
		return rep, nil
	}
	return c.VerifyTurnSetCtx(ctx, net, nil, ts, 1)
}

// cachedHelpers shows the other sanctioned entry points: the dual-hash
// key for coalescing and the process-wide cached wrappers.
func cachedHelpers(net *topology.Network, ts *core.TurnSet) (uint64, bool) {
	key, _ := cdg.VerifyKey(net, nil, ts)
	return key, cdg.VerifyTurnSetCachedJobs(net, nil, ts, 2).Acyclic
}

// errorPath returns the zero-value Report beside a non-nil error; an
// empty literal carries no verdict and is not flagged.
func errorPath(err error) (cdg.Report, error) {
	return cdg.Report{}, err
}

// diagnosticAllowed keeps the escape hatch working in serving packages.
func diagnosticAllowed(net *topology.Network, ts *core.TurnSet) bool {
	return cdg.VerifyTurnSet(net, nil, ts).Acyclic //ebda:allow verifygate golden-file demonstration of a sanctioned diagnostic
}
