// Package gatedata is verifygate's golden file: it sits outside
// ebda/internal/cdg and exercises both the forbidden direct-acyclicity
// paths and the blessed cached entry points.
package gatedata

import (
	"ebda/internal/cdg"
	"ebda/internal/core"
	"ebda/internal/topology"
)

// directAcyclicity rebuilds the verdict the engine already provides.
func directAcyclicity(net *topology.Network, ts *core.TurnSet) bool {
	g := cdg.BuildFromTurnSet(net, nil, ts)
	return g.Acyclic() // want `direct acyclicity call cdg.Graph.Acyclic`
}

// directCycle extracts a cycle outside the engine.
func directCycle(net *topology.Network, ts *core.TurnSet) []cdg.Channel {
	g := cdg.BuildFromTurnSetJobs(net, nil, ts, 1)
	return g.FindCycleJobs(1) // want `direct acyclicity call cdg.Graph.FindCycleJobs`
}

// forgedReport fabricates a verdict the engine never produced.
func forgedReport() cdg.Report {
	return cdg.Report{Acyclic: true} // want `cdg.Report constructed by hand`
}

// cachedVerdict is the blessed path: pooled workspaces plus the
// goroutine-safe verification cache.
func cachedVerdict(net *topology.Network, ts *core.TurnSet) bool {
	return cdg.VerifyTurnSetCached(net, nil, ts).Acyclic
}

// chainVerdict is the chain-level blessed path.
func chainVerdict(net *topology.Network, chain *core.Chain) bool {
	return cdg.VerifyChainCached(net, chain).Acyclic
}

// diagnosticAllowed shows the sanctioned escape hatch for tooling that
// needs the raw graph.
func diagnosticAllowed(net *topology.Network, ts *core.TurnSet) []cdg.Channel {
	g := cdg.BuildFromTurnSet(net, nil, ts)
	return g.FindCycle() //ebda:allow verifygate golden-file demonstration of a diagnostic use
}
