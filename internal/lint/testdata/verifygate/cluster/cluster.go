// Package cluster is verifygate's shard-router golden file. Its import
// path ends in "/cluster", so the analyzer applies the serving-layer
// contract: the router hands clients verdicts sourced from peer
// replicas, and a verdict computed outside the verify cache would be
// unmemoized, uncoalescible and invisible to peer lookups. The uncached
// package-level entry points, the Workspace verify methods and the
// delta-workspace bypasses are all forbidden here, exactly as in a
// /serve package.
package cluster

import (
	"context"

	"ebda/internal/cdg"
	"ebda/internal/core"
	"ebda/internal/topology"
)

// uncachedRouteVerdict computes a routed verdict without the cache; a
// peer probing this replica would never see it.
func uncachedRouteVerdict(net *topology.Network, ts *core.TurnSet) bool {
	return cdg.VerifyTurnSet(net, nil, ts).Acyclic // want `uncached verify call cdg.VerifyTurnSet in`
}

// uncachedRouteCtx threads a deadline but still skips the cache.
func uncachedRouteCtx(ctx context.Context, net *topology.Network, ts *core.TurnSet) (cdg.Report, error) {
	return cdg.VerifyTurnSetCtx(ctx, net, nil, ts, 1) // want `uncached verify call cdg.VerifyTurnSetCtx in`
}

// rawRouteBuild constructs the graph directly; even the build step is
// off the blessed path in a routing package.
func rawRouteBuild(net *topology.Network, ts *core.TurnSet) *cdg.Graph {
	return cdg.BuildFromTurnSet(net, nil, ts) // want `uncached verify call cdg.BuildFromTurnSet in`
}

// workspaceRouteVerdict bypasses the cache via a private workspace.
func workspaceRouteVerdict(ctx context.Context, net *topology.Network, ts *core.TurnSet) (cdg.Report, error) {
	ws := cdg.NewWorkspace(net, nil)
	return ws.VerifyTurnSetCtx(ctx, ts, 1) // want `workspace verify call cdg.Workspace.VerifyTurnSetCtx`
}

// deltaRouteBypass builds a retained delta workspace by hand; the
// resulting verdict would bypass the delta cache the ring shards.
func deltaRouteBypass(net *topology.Network, ts *core.TurnSet, diff cdg.Diff) (cdg.Report, error) {
	dw, err := cdg.NewDeltaWorkspace(net, nil, ts) // want `direct delta workspace construction cdg.NewDeltaWorkspace in`
	if err != nil {
		return cdg.Report{}, err
	}
	return dw.VerifyDiffJobs(diff, 1) // want `delta workspace verify call cdg.DeltaWorkspace.VerifyDiffJobs`
}

// forgedPeerVerdict assembles a Report from peer-response fields; the
// ban on hand-built literals is what forces the real router to answer
// from decoded peer JSON instead of minting an engine verdict.
func forgedPeerVerdict(channels, edges int, acyclic bool) cdg.Report {
	return cdg.Report{Channels: channels, Edges: edges, Acyclic: acyclic} // want `cdg.Report constructed by hand outside internal/cdg`
}

// cachedRouteVerdict is the blessed path for a replica that owns the
// key: Lookup for hits, the cache's compute for misses.
func cachedRouteVerdict(ctx context.Context, c *cdg.VerifyCache, net *topology.Network, ts *core.TurnSet) (cdg.Report, error) {
	if rep, ok := c.Lookup(net, nil, ts); ok {
		return rep, nil
	}
	return c.VerifyTurnSetCtx(ctx, net, nil, ts, 1)
}

// peerProbe is the blessed path for a replica that does not own the
// key: the dual-hash identity routes the request and LookupKey answers
// from the owner's memoized verdicts without recomputing.
func peerProbe(c *cdg.VerifyCache, net *topology.Network, ts *core.TurnSet) (cdg.Report, bool) {
	key, check := cdg.VerifyKey(net, nil, ts)
	return c.LookupKey(key, check)
}

// routeErrorPath returns the zero-value Report beside a non-nil error;
// an empty literal carries no verdict and is not flagged.
func routeErrorPath(err error) (cdg.Report, error) {
	return cdg.Report{}, err
}
