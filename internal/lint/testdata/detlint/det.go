// Package detdata is detlint's golden file: seeded nondeterminism that
// must fire, next to the sanctioned idioms that must not.
package detdata

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"
)

// unsortedKeys leaks map order through an accumulated slice.
func unsortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `never sorted afterwards`
	}
	return keys
}

// printedOrder leaks map order straight to output.
func printedOrder(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want `output written inside iteration over a map`
	}
}

// builtOrder leaks map order into a strings.Builder.
func builtOrder(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k) // want `WriteString fed inside iteration over a map`
	}
	return b.String()
}

// stamped reads the wall clock.
func stamped() time.Time {
	return time.Now() // want `wall-clock read`
}

// elapsed reads the wall clock through Since.
func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `wall-clock read`
}

// rolled uses the unseeded global RNG.
func rolled() int {
	return rand.Intn(6) // want `global math/rand RNG`
}

// allowed demonstrates an //ebda:allow suppression: same construct as
// stamped, silenced with a justification.
func allowed() time.Time {
	return time.Now() //ebda:allow detlint golden-file demonstration of a sanctioned clock read
}

// sortedKeys is THE sanctioned idiom: accumulate, then sort, then use.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// countsOnly folds map entries commutatively; order cannot leak.
func countsOnly(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// seeded builds the sanctioned reproducible RNG.
func seeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// drawn uses a seeded *rand.Rand: same method names as the global
// functions, but reproducible — must stay silent.
func drawn(r *rand.Rand) int {
	if r.Float64() < 0.5 {
		return r.Intn(6)
	}
	return r.Perm(6)[0]
}
