package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Detlint flags nondeterminism in paths that must be reproducible:
//
//   - iteration over a map whose body makes the iteration order
//     observable — appending to a slice declared outside the loop without
//     sorting it afterwards, printing, or feeding a writer/hash;
//   - wall-clock reads (time.Now, time.Since) — timings belong to the
//     bench harness, which marks its sites with //ebda:allow detlint;
//   - the global math/rand RNG (rand.Intn and friends), which is not
//     seed-reproducible; all randomness must flow through
//     rand.New(rand.NewSource(seed)) as the simulator does.
//
// The engine's contract is bit-identical output for every -jobs value and
// every process run; each of these constructs breaks that silently.
var Detlint = &Analyzer{
	Name: "detlint",
	Doc:  "flags map-iteration-order leaks, wall-clock reads and unseeded randomness in deterministic paths",
	Run:  runDetlint,
}

// globalRandFuncs are the math/rand (and math/rand/v2) package-level
// functions that draw from the shared, unseeded RNG. Constructors (New,
// NewSource, NewZipf, NewPCG, NewChaCha8) are the sanctioned plumbing and
// stay allowed.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Int32": true, "Int32N": true,
	"Int64": true, "Int64N": true, "IntN": true, "N": true,
	"Uint32": true, "Uint64": true, "Uint32N": true, "Uint64N": true,
	"Uint": true, "UintN": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true, "Seed": true,
}

// outputFuncs are fmt functions that emit directly to a stream; calling
// one inside map iteration makes the map's order user-visible.
var outputFuncs = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

// writeMethods are method names that feed byte sinks (io.Writer
// implementations, strings.Builder, hash.Hash): calling one inside map
// iteration leaks the order into output or a digest.
var writeMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
}

func runDetlint(pass *Pass) error {
	for _, f := range pass.Files {
		for _, fd := range funcBodies(f) {
			detlintFunc(pass, fd)
		}
	}
	return nil
}

func detlintFunc(pass *Pass, fd *ast.FuncDecl) {
	// Pass 1 over the whole function: clock and global-RNG uses, and
	// collect every map-range statement.
	var mapRanges []*ast.RangeStmt
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			obj := calleeObject(pass.Info, x)
			if isPkgFunc(obj, "time", "Now") || isPkgFunc(obj, "time", "Since") {
				pass.Reportf(x.Pos(), "wall-clock read (%s) in a deterministic path; inject timestamps or mark the bench-harness site with //ebda:allow detlint", objName(obj))
			}
			if fn, ok := obj.(*types.Func); ok && fn.Pkg() != nil {
				// Only package-level functions draw from the shared RNG;
				// the same names as methods on a *rand.Rand are the
				// sanctioned seeded plumbing.
				sig, _ := fn.Type().(*types.Signature)
				p := fn.Pkg().Path()
				if sig != nil && sig.Recv() == nil &&
					(p == "math/rand" || p == "math/rand/v2") && globalRandFuncs[fn.Name()] {
					pass.Reportf(x.Pos(), "global math/rand RNG (rand.%s) is not seed-reproducible; use rand.New(rand.NewSource(seed))", fn.Name())
				}
			}
		case *ast.RangeStmt:
			if t := pass.TypeOf(x.X); t != nil {
				if _, ok := t.Underlying().(*types.Map); ok {
					mapRanges = append(mapRanges, x)
				}
			}
		}
		return true
	})
	for _, rs := range mapRanges {
		detlintMapRange(pass, fd, rs)
	}
}

// detlintMapRange checks one range-over-map body for order leaks.
func detlintMapRange(pass *Pass, fd *ast.FuncDecl, rs *ast.RangeStmt) {
	type appendSite struct {
		obj types.Object
		pos token.Pos
	}
	var appends []appendSite
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		obj := calleeObject(pass.Info, call)
		if b, ok := obj.(*types.Builtin); ok && b.Name() == "append" && len(call.Args) > 0 {
			if root := rootIdent(call.Args[0]); root != nil {
				if v := pass.Info.ObjectOf(root); v != nil && !within(v.Pos(), rs) {
					appends = append(appends, appendSite{obj: v, pos: call.Pos()})
				}
			}
			return true
		}
		if fn, ok := obj.(*types.Func); ok {
			if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && outputFuncs[fn.Name()] {
				pass.Reportf(call.Pos(), "output written inside iteration over a map; map order is nondeterministic — sort the keys first")
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil && writeMethods[fn.Name()] {
				pass.Reportf(call.Pos(), "%s fed inside iteration over a map; map order is nondeterministic — sort the keys first", fn.Name())
				return true
			}
			if isPkgFunc(fn, "io", "WriteString") {
				pass.Reportf(call.Pos(), "output written inside iteration over a map; map order is nondeterministic — sort the keys first")
			}
		}
		return true
	})
	for _, a := range appends {
		if !sortedAfter(pass, fd, rs, a.obj) {
			pass.Reportf(a.pos, "slice %s accumulates map-iteration results but is never sorted afterwards in %s; map order is nondeterministic", a.obj.Name(), fd.Name.Name)
		}
	}
}

// sortedAfter reports whether obj is passed to a sort/slices sorting call
// (or a .Sort method) positioned after the range statement within the
// same function.
func sortedAfter(pass *Pass, fd *ast.FuncDecl, rs *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		callee := calleeObject(pass.Info, call)
		fn, ok := callee.(*types.Func)
		if !ok {
			return true
		}
		sorter := false
		if fn.Pkg() != nil {
			switch fn.Pkg().Path() {
			case "sort", "slices":
				sorter = true
			}
		}
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil && fn.Name() == "Sort" {
			sorter = true
		}
		if !sorter {
			return true
		}
		for _, arg := range call.Args {
			if mentionsObject(pass, arg, obj) {
				found = true
				return false
			}
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && mentionsObject(pass, sel.X, obj) {
			found = true
			return false
		}
		return true
	})
	return found
}

// mentionsObject reports whether any identifier under e resolves to obj.
func mentionsObject(pass *Pass, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.Info.ObjectOf(id) == obj {
			found = true
			return false
		}
		return !found
	})
	return found
}

func objName(obj types.Object) string {
	if fn, ok := obj.(*types.Func); ok && fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return obj.Name()
}
