package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	// Path is the import path ("ebda/internal/cdg"); testdata packages get
	// the path their directory would imply even though the go tool ignores
	// them.
	Path string
	// Dir is the absolute directory the package was loaded from.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// loader is the Loader this package came from, so whole-program
	// analyses (deadlint) can pull in the ASTs of module-local imports.
	loader *Loader
}

// Loader parses and type-checks packages of the enclosing module without
// any dependency on golang.org/x/tools: module-local import paths resolve
// against the module root, and standard-library imports go through the
// compiler source importer (type-checked from GOROOT source, so no build
// cache or network is required).
//
// Test files (*_test.go) are excluded: the invariants the suite guards
// live in shipped code, and external test packages would need a second
// type-check universe.
type Loader struct {
	Fset    *token.FileSet
	modRoot string
	modPath string
	std     types.Importer
	byDir   map[string]*Package
	loading map[string]bool
}

// NewLoader locates the module containing start (a directory) and returns
// a loader for it.
func NewLoader(start string) (*Loader, error) {
	abs, err := filepath.Abs(start)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("lint: no go.mod found above %s", abs)
		}
		root = parent
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		modRoot: root,
		modPath: modPath,
		std:     importer.ForCompiler(fset, "source", nil),
		byDir:   map[string]*Package{},
		loading: map[string]bool{},
	}, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(file string) (string, error) {
	data, err := os.ReadFile(file)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			p := strings.TrimSpace(rest)
			p = strings.Trim(p, `"`)
			if p != "" {
				return p, nil
			}
		}
	}
	return "", fmt.Errorf("lint: no module line in %s", file)
}

// ModRoot returns the absolute module root directory.
func (l *Loader) ModRoot() string { return l.modRoot }

// Load parses and type-checks the package in one directory.
func (l *Loader) Load(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	if pkg, ok := l.byDir[abs]; ok {
		return pkg, nil
	}
	if l.loading[abs] {
		return nil, fmt.Errorf("lint: import cycle through %s", abs)
	}
	l.loading[abs] = true
	defer delete(l.loading, abs)

	names, err := goFiles(abs)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", abs)
	}
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(abs, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	path := l.importPathFor(abs)
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: importerFunc(l.importPkg)}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: abs, Fset: l.Fset, Files: files, Types: tpkg, Info: info, loader: l}
	l.byDir[abs] = pkg
	return pkg, nil
}

// LoadPath loads a module-local package by import path. Packages already
// pulled in as dependencies of an earlier Load are returned from the
// cache without re-parsing.
func (l *Loader) LoadPath(path string) (*Package, error) {
	if path != l.modPath && !strings.HasPrefix(path, l.modPath+"/") {
		return nil, fmt.Errorf("lint: %s is not inside module %s", path, l.modPath)
	}
	dir := filepath.Join(l.modRoot, filepath.FromSlash(strings.TrimPrefix(strings.TrimPrefix(path, l.modPath), "/")))
	return l.Load(dir)
}

// importPathFor maps an absolute directory inside the module to its
// import path.
func (l *Loader) importPathFor(abs string) string {
	rel, err := filepath.Rel(l.modRoot, abs)
	if err != nil || rel == "." {
		return l.modPath
	}
	return l.modPath + "/" + filepath.ToSlash(rel)
}

// importPkg resolves one import path during type-checking.
func (l *Loader) importPkg(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		dir := filepath.Join(l.modRoot, filepath.FromSlash(strings.TrimPrefix(strings.TrimPrefix(path, l.modPath), "/")))
		pkg, err := l.Load(dir)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// goFiles lists the buildable non-test Go files of a directory, sorted.
func goFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") {
			continue
		}
		if strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, "_") || strings.HasPrefix(name, ".") {
			continue
		}
		out = append(out, name)
	}
	sort.Strings(out)
	return out, nil
}

// Expand resolves package patterns relative to a base directory into
// package directories: "./..." and "dir/..." walk recursively, anything
// else names a single directory. Directories named "testdata" (and hidden
// or underscore-prefixed ones) are skipped during walks, matching the go
// tool's convention — the lint suite's own golden files carry seeded
// violations and must not fail the repo run.
func Expand(base string, patterns []string) ([]string, error) {
	var dirs []string
	seen := map[string]bool{}
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		root, recursive := strings.CutSuffix(pat, "...")
		root = strings.TrimSuffix(root, "/")
		if root == "" {
			root = "."
		}
		if !filepath.IsAbs(root) {
			root = filepath.Join(base, root)
		}
		if !recursive {
			add(root)
			continue
		}
		err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				name := d.Name()
				if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
					return filepath.SkipDir
				}
				names, err := goFiles(path)
				if err != nil {
					return err
				}
				if len(names) > 0 {
					add(path)
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}
