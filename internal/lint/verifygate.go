package lint

import (
	"go/ast"
	"go/types"
)

// cdgPath is the package whose verification engine verifygate protects.
const cdgPath = "ebda/internal/cdg"

// Verifygate enforces the domain invariant that verification verdicts
// have a single source of truth. Outside ebda/internal/cdg itself,
// packages must obtain cdg.Reports through the blessed entry points —
// cdg.VerifyTurnSetCached / cdg.VerifyChainCached (and their Jobs
// variants) or routing.Verify — which share the workspace pool and the
// goroutine-safe verification cache. Building a Graph and calling
// acyclicity primitives directly (Acyclic, AcyclicJobs, FindCycle,
// FindCycleJobs) bypasses both, and hand-assembled cdg.Report literals
// forge verdicts the engine never produced.
//
// Diagnostic tooling that genuinely needs the raw graph (DOT export,
// topological witnesses) may carry //ebda:allow verifygate with a
// justification; everything on the result-producing path may not.
var Verifygate = &Analyzer{
	Name: "verifygate",
	Doc:  "restricts acyclicity primitives and Report construction to the cdg engine's blessed entry points",
	Run:  runVerifygate,
}

// gatedGraphMethods are the *cdg.Graph acyclicity primitives reserved for
// the engine.
var gatedGraphMethods = map[string]bool{
	"Acyclic": true, "AcyclicJobs": true, "FindCycle": true, "FindCycleJobs": true,
}

func runVerifygate(pass *Pass) error {
	if pass.PkgPath == cdgPath {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				fn, ok := calleeObject(pass.Info, x).(*types.Func)
				if !ok || fn.Pkg() == nil || fn.Pkg().Path() != cdgPath {
					return true
				}
				sig, ok := fn.Type().(*types.Signature)
				if !ok || sig.Recv() == nil {
					return true
				}
				if recvNamed(sig.Recv().Type()) == "Graph" && gatedGraphMethods[fn.Name()] {
					pass.Reportf(x.Pos(), "direct acyclicity call cdg.Graph.%s outside internal/cdg; obtain verdicts via cdg.VerifyTurnSetCached/VerifyChainCached or routing.Verify (//ebda:allow verifygate for diagnostics)", fn.Name())
				}
			case *ast.CompositeLit:
				if t := pass.TypeOf(x); t != nil && namedPath(t) == cdgPath+".Report" {
					pass.Reportf(x.Pos(), "cdg.Report constructed by hand outside internal/cdg; reports must come from the verification engine")
				}
			}
			return true
		})
	}
	return nil
}

// recvNamed returns the name of a method receiver's named type.
func recvNamed(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// namedPath renders a named type as "pkgpath.Name", or "".
func namedPath(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return ""
	}
	return n.Obj().Pkg().Path() + "." + n.Obj().Name()
}
