package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// cdgPath is the package whose verification engine verifygate protects.
const cdgPath = "ebda/internal/cdg"

// Verifygate enforces the domain invariant that verification verdicts
// have a single source of truth. Outside ebda/internal/cdg itself,
// packages must obtain cdg.Reports through the blessed entry points —
// cdg.VerifyTurnSetCached / cdg.VerifyChainCached (and their Jobs
// variants) or routing.Verify — which share the workspace pool and the
// goroutine-safe verification cache. Building a Graph and calling
// acyclicity primitives directly (Acyclic, AcyclicJobs, FindCycle,
// FindCycleJobs) bypasses both, and hand-assembled cdg.Report literals
// forge verdicts the engine never produced.
//
// Serving packages (ebda/internal/serve, ebda/internal/cluster and
// anything whose import path ends in "/serve" or "/cluster" — the shard
// router forwards served verdicts, so it carries the same contract)
// are held to a stricter rule: every verdict they hand a
// client must flow through the verify cache — VerifyCache.Lookup plus a
// cache-computing entry point — so responses are memoized, coalescible
// and identical across requests. In those packages the uncached pooled
// entry points (cdg.VerifyTurnSet / VerifyTurnSetJobs / VerifyTurnSetCtx,
// VerifyChain, VerifyRelation, BuildFromTurnSet and the Workspace verify
// methods) are also forbidden. The same contract covers incremental
// verdicts: serving code reaches them only through the cache-layer delta
// entry points (VerifyCache.LookupDelta / VerifyDeltaCtx and friends),
// never by constructing a cdg.DeltaWorkspace, checking one out of a
// cdg.DeltaPool, or calling its Verify methods directly — a bypassed
// delta verdict would be unmemoized and uncoalescible.
//
// The observability layer (ebda/internal/obs and everything under it,
// including obshttp and any /obshttp-suffixed package) carries the
// opposite contract: /debug and metrics handlers read published state —
// snapshots, trace rings, cache lookups — and never drive the verify
// engine. Any cdg Verify* call there, cached or not, would let a debug
// scrape enqueue verification work, so all of them are flagged.
//
// Diagnostic tooling that genuinely needs the raw graph (DOT export,
// topological witnesses) may carry //ebda:allow verifygate with a
// justification; everything on the result-producing path may not.
var Verifygate = &Analyzer{
	Name: "verifygate",
	Doc:  "restricts acyclicity primitives and Report construction to the cdg engine's blessed entry points",
	Run:  runVerifygate,
}

// gatedGraphMethods are the *cdg.Graph acyclicity primitives reserved for
// the engine.
var gatedGraphMethods = map[string]bool{
	"Acyclic": true, "AcyclicJobs": true, "FindCycle": true, "FindCycleJobs": true,
}

// uncachedVerifyFuncs are the package-level cdg entry points that compute
// without consulting the verify cache — fine for sweeps and experiments,
// forbidden where served verdicts must be memoized.
var uncachedVerifyFuncs = map[string]bool{
	"VerifyTurnSet": true, "VerifyTurnSetJobs": true, "VerifyTurnSetCtx": true,
	"VerifyChain": true, "VerifyRelation": true, "VerifyRelationJobs": true,
	"BuildFromTurnSet": true, "BuildFromTurnSetJobs": true,
	"VerifyEdgeSet": true, "VerifyEdgeSetJobs": true,
	"VerifyMode": true, "VerifyModeJobs": true,
}

// deltaBypassFuncs construct retained delta workspaces directly,
// bypassing the delta cache entry and the shared workspace pool —
// forbidden in serving packages.
var deltaBypassFuncs = map[string]bool{
	"NewDeltaWorkspace": true, "NewDeltaWorkspaceCtx": true,
}

// servingPkg reports whether an import path carries the serving-layer
// contract: the repo's internal/serve and internal/cluster (the shard
// router hands clients verdicts sourced from peer replicas, so cached
// provenance matters there just as much), plus any /serve- or
// /cluster-suffixed package such as the golden testdata.
func servingPkg(path string) bool {
	return path == "ebda/internal/serve" || strings.HasSuffix(path, "/serve") ||
		path == "ebda/internal/cluster" || strings.HasSuffix(path, "/cluster")
}

// obsPkg reports whether an import path belongs to the observability
// layer: the obs registry, its subpackages (trace, obshttp), and any
// /obshttp-suffixed package such as the golden testdata.
func obsPkg(path string) bool {
	return path == "ebda/internal/obs" ||
		strings.HasPrefix(path, "ebda/internal/obs/") ||
		strings.HasSuffix(path, "/obshttp")
}

func runVerifygate(pass *Pass) error {
	if pass.PkgPath == cdgPath {
		return nil
	}
	serving := servingPkg(pass.PkgPath)
	observ := obsPkg(pass.PkgPath)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				fn, ok := calleeObject(pass.Info, x).(*types.Func)
				if !ok || fn.Pkg() == nil || fn.Pkg().Path() != cdgPath {
					return true
				}
				sig, ok := fn.Type().(*types.Signature)
				if !ok {
					return true
				}
				if observ && strings.HasPrefix(fn.Name(), "Verify") {
					pass.Reportf(x.Pos(), "verification call cdg.%s from the observability layer; /debug and metrics handlers read published state, they never drive the verify engine", fn.Name())
					return true
				}
				if sig.Recv() == nil {
					if serving && uncachedVerifyFuncs[fn.Name()] {
						pass.Reportf(x.Pos(), "uncached verify call cdg.%s in a serving package; served verdicts must flow through the verify cache (VerifyCache.Lookup / VerifyTurnSetCtx or the Cached entry points)", fn.Name())
					}
					if serving && deltaBypassFuncs[fn.Name()] {
						pass.Reportf(x.Pos(), "direct delta workspace construction cdg.%s in a serving package; served delta verdicts must flow through the delta cache entry points (VerifyCache.LookupDelta / VerifyDeltaCtx)", fn.Name())
					}
					return true
				}
				recv := recvNamed(sig.Recv().Type())
				if recv == "Graph" && gatedGraphMethods[fn.Name()] {
					pass.Reportf(x.Pos(), "direct acyclicity call cdg.Graph.%s outside internal/cdg; obtain verdicts via cdg.VerifyTurnSetCached/VerifyChainCached or routing.Verify (//ebda:allow verifygate for diagnostics)", fn.Name())
				}
				if serving && recv == "Workspace" && strings.HasPrefix(fn.Name(), "Verify") {
					pass.Reportf(x.Pos(), "workspace verify call cdg.Workspace.%s in a serving package; served verdicts must flow through the verify cache", fn.Name())
				}
				if serving && recv == "DeltaWorkspace" && strings.HasPrefix(fn.Name(), "Verify") {
					pass.Reportf(x.Pos(), "delta workspace verify call cdg.DeltaWorkspace.%s in a serving package; served delta verdicts must flow through the delta cache entry points (VerifyCache.LookupDelta / VerifyDeltaCtx)", fn.Name())
				}
				if serving && recv == "DeltaPool" && strings.HasPrefix(fn.Name(), "Get") {
					pass.Reportf(x.Pos(), "delta pool checkout cdg.DeltaPool.%s in a serving package; served delta verdicts must flow through the delta cache entry points (VerifyCache.LookupDelta / VerifyDeltaCtx)", fn.Name())
				}
			case *ast.CompositeLit:
				// The zero value cdg.Report{} carries no verdict (error
				// paths return it alongside a non-nil error); only a
				// literal with fields forges one.
				if t := pass.TypeOf(x); t != nil && len(x.Elts) > 0 && namedPath(t) == cdgPath+".Report" {
					pass.Reportf(x.Pos(), "cdg.Report constructed by hand outside internal/cdg; reports must come from the verification engine")
				}
			}
			return true
		})
	}
	return nil
}

// recvNamed returns the name of a method receiver's named type.
func recvNamed(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// namedPath renders a named type as "pkgpath.Name", or "".
func namedPath(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return ""
	}
	return n.Obj().Pkg().Path() + "." + n.Obj().Name()
}
