package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"

	"ebda/internal/cdg"
)

// This file builds the repository's own channel dependency graph: nodes
// are lock objects (sync.Mutex/RWMutex fields and package-level mutexes)
// and blocking-wait targets (channels, WaitGroups, Conds); an edge A -> B
// records "some function holds A while acquiring or waiting on B". The
// construction is interprocedural: a call made under a lock contributes
// edges to everything the callee may transitively acquire, discovered by
// a summary fixpoint over the call graph of the package universe (the
// analyzed packages plus their module-local imports, all reachable
// through the Loader). Deadlock freedom of the concurrent serving stack
// then reduces — exactly as the paper reduces routing deadlock — to
// acyclicity of this graph, and the verdict comes from the same engine:
// cdg.VerifyEdgeSetCached.
//
// The analysis is deliberately flow-insensitive in the locklint style: a
// lock is "held" at a point if a Lock/RLock on it precedes the point
// positionally in the same function body with no non-deferred
// Unlock/RUnlock in between (deferred unlocks release at return, so they
// never end a hold early). Function literals are separate scopes — a
// goroutine body neither inherits the spawner's held set nor leaks its
// acquisitions into the spawner's summary (goroutine acquisitions still
// produce their own edges). Known approximations, each on the
// false-negative side or covered by //ebda:allow: calls through function
// values and interfaces are not tracked, deferred calls are not tracked,
// and two distinct instances of one struct type share a node (their
// cross-instance hand-over-hand edges are suppressed; same-instance
// re-acquisition is kept, because that is the classic Go self-deadlock).

// Lock-node kinds.
const (
	nodeMutex     = "mutex"
	nodeRWMutex   = "rwmutex"
	nodeChan      = "chan"
	nodeWaitGroup = "waitgroup"
	nodeCond      = "cond"
)

// LockNode is one vertex of the lock/wait graph.
type LockNode struct {
	// Key canonically names the node, e.g.
	// "ebda/internal/cdg.VerifyCache.mu" or "chan ebda/internal/serve.flightCall.done".
	Key string
	// Kind is one of mutex, rwmutex, chan, waitgroup, cond. Only mutex
	// and rwmutex nodes can be held, so only they have outgoing edges.
	Kind string
}

// LockEdge records that From is held at Site while To is acquired or
// waited on (possibly transitively, through the call named in Via).
type LockEdge struct {
	From, To int
	Site     token.Position
	pos      token.Pos
	// Via describes the step: "acquires", "waits-on", or
	// "calls pkg.f" for interprocedural edges.
	Via string
	// PkgPath is the package containing Site, so per-package analyzer
	// runs report each edge exactly once, in the package that owns it.
	PkgPath string
}

// lockHazard is a blocking wait executed under a held mutex — recorded
// for direct diagnostics independent of whether the graph is cyclic.
type lockHazard struct {
	pos      token.Pos
	pkgPath  string
	heldKey  string
	waitKey  string
	waitKind string
	op       string // "receive", "send", "select", "WaitGroup.Wait"
}

// LockGraph is the assembled lock/wait-order graph of a package universe.
type LockGraph struct {
	Nodes   []LockNode
	Edges   []LockEdge
	hazards []lockHazard
	modRoot string
}

// BuildLockGraph builds the interprocedural lock/wait graph of the given
// packages plus their transitive module-local imports. The result is
// deterministic: nodes and edges are discovered in (package path, file,
// position) order and edges are deduplicated keeping the first site.
func BuildLockGraph(pkgs ...*Package) *LockGraph {
	b := &lockGraphBuilder{
		nodeByObj: map[types.Object]int{},
		nodeByKey: map[string]int{},
		scopeByFn: map[*types.Func]*lockScope{},
		edgeSeen:  map[[2]int]bool{},
	}
	if len(pkgs) > 0 && pkgs[0].loader != nil {
		b.modRoot = pkgs[0].loader.modRoot
	}
	for _, pkg := range lockUniverse(pkgs) {
		b.scanPackage(pkg)
	}
	b.fixpoint()
	for _, sc := range b.scopes {
		b.emitEdges(sc)
	}
	return &LockGraph{Nodes: b.nodes, Edges: b.edges, hazards: b.hazards, modRoot: b.modRoot}
}

// EdgeSet reduces the graph to the engine's abstract form.
func (lg *LockGraph) EdgeSet() *cdg.EdgeSet {
	es := cdg.NewEdgeSet(len(lg.Nodes))
	for _, e := range lg.Edges {
		es.AddEdge(e.From, e.To)
	}
	return es
}

// Verify obtains the acyclicity verdict from the cached engine — the same
// discipline verifygate enforces on every other verdict consumer.
func (lg *LockGraph) Verify() cdg.EdgeReport {
	return cdg.VerifyEdgeSetCached(lg.EdgeSet())
}

// edgeBetween returns the recorded edge from -> to, if any.
func (lg *LockGraph) edgeBetween(from, to int) (LockEdge, bool) {
	for _, e := range lg.Edges {
		if e.From == from && e.To == to {
			return e, true
		}
	}
	return LockEdge{}, false
}

// RenderCycle renders an engine cycle witness (node indices in dependency
// order) back into an ordered chain of source acquisition sites:
// "file:line: holds A while acquiring B" steps joined with "; ".
func (lg *LockGraph) RenderCycle(cycle []int) string {
	if len(cycle) == 0 {
		return "<acyclic>"
	}
	steps := make([]string, 0, len(cycle))
	for i := range cycle {
		from := cycle[i]
		to := cycle[(i+1)%len(cycle)]
		e, ok := lg.edgeBetween(from, to)
		if !ok {
			continue
		}
		steps = append(steps, fmt.Sprintf("%s: holds %s while %s %s",
			lg.shortPos(e.Site), lg.Nodes[from].Key, viaVerb(e.Via), lg.Nodes[to].Key))
	}
	return strings.Join(steps, "; ")
}

// shortPos renders a site as "file:line" with the module root trimmed.
func (lg *LockGraph) shortPos(p token.Position) string {
	name := p.Filename
	if lg.modRoot != "" {
		if rel, err := filepath.Rel(lg.modRoot, name); err == nil && !strings.HasPrefix(rel, "..") {
			name = filepath.ToSlash(rel)
		}
	}
	return fmt.Sprintf("%s:%d", name, p.Line)
}

// viaVerb renders an edge's Via as a verb phrase for the witness chain.
func viaVerb(via string) string {
	switch via {
	case "acquires":
		return "acquiring"
	case "waits-on":
		return "waiting on"
	default: // "calls pkg.f"
		return via + ", which acquires"
	}
}

// lockUniverse expands packages to their transitive module-local import
// closure in deterministic order (breadth-first, import paths sorted).
func lockUniverse(roots []*Package) []*Package {
	var out []*Package
	seen := map[string]bool{}
	queue := append([]*Package(nil), roots...)
	for _, p := range queue {
		seen[p.Path] = true
	}
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		out = append(out, p)
		if p.loader == nil {
			continue
		}
		var paths []string
		for _, imp := range p.Types.Imports() {
			path := imp.Path()
			if (path == p.loader.modPath || strings.HasPrefix(path, p.loader.modPath+"/")) && !seen[path] {
				seen[path] = true
				paths = append(paths, path)
			}
		}
		sort.Strings(paths)
		for _, path := range paths {
			dep, err := p.loader.LoadPath(path)
			if err != nil {
				// The import type-checked when p loaded, so this cannot
				// fail in practice; skip defensively rather than abort.
				continue
			}
			queue = append(queue, dep)
		}
	}
	return out
}

// Event kinds of one function scope, in positional order.
const (
	evLock = iota
	evUnlock
	evWait
	evCall
)

type lockEvent struct {
	kind int
	pos  token.Pos
	// node is the lock/wait node (evLock/evUnlock/evWait).
	node int
	// inst is the receiver instance object for lock/unlock matching.
	inst types.Object
	// callee is the static callee (evCall).
	callee *types.Func
	// op describes a wait ("receive", "send", "select", ...).
	op string
}

// lockScope is one function body: a declared function or a function
// literal (literals run on their own goroutine or behind an unknown
// callback, so they neither inherit a held set nor feed a summary).
type lockScope struct {
	fn      *types.Func // nil for function literals
	name    string
	pkg     *Package
	events  []lockEvent
	summary map[int]bool
}

type lockGraphBuilder struct {
	modRoot   string
	nodes     []LockNode
	nodeByObj map[types.Object]int
	nodeByKey map[string]int
	scopes    []*lockScope
	scopeByFn map[*types.Func]*lockScope
	edges     []LockEdge
	edgeSeen  map[[2]int]bool
	hazards   []lockHazard
}

// scanPackage collects the event streams of every function body.
func (b *lockGraphBuilder) scanPackage(pkg *Package) {
	for _, f := range pkg.Files {
		for _, fd := range funcBodies(f) {
			name := fd.Name.Name
			if fd.Recv != nil && len(fd.Recv.List) > 0 {
				if rn := recvNamed(typeOfExpr(pkg, fd.Recv.List[0].Type)); rn != "" {
					name = rn + "." + name
				}
			}
			sc := &lockScope{pkg: pkg, name: pkg.Types.Name() + "." + name, summary: map[int]bool{}}
			if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
				sc.fn = obj
				b.scopeByFn[obj] = sc
			}
			b.scopes = append(b.scopes, sc)
			b.walkBody(sc, fd.Body)
		}
	}
}

// typeOfExpr resolves an expression's type against a package's Info.
func typeOfExpr(pkg *Package, e ast.Expr) types.Type {
	if t, ok := pkg.Info.Types[e]; ok {
		return t.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := pkg.Info.ObjectOf(id); obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// walkBody records the scope's events, spinning nested function literals
// off into their own anonymous scopes.
func (b *lockGraphBuilder) walkBody(sc *lockScope, body *ast.BlockStmt) {
	var inspect func(n ast.Node) bool
	litScope := func(lit *ast.FuncLit) {
		sub := &lockScope{pkg: sc.pkg, name: sc.name + ".func", summary: map[int]bool{}}
		b.scopes = append(b.scopes, sub)
		b.walkBody(sub, lit.Body)
	}
	inspect = func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			litScope(x)
			return false
		case *ast.DeferStmt:
			// Deferred calls run at return: a deferred Unlock must not
			// end the hold positionally, and deferred work is skipped
			// entirely (it executes with the at-return held set, which
			// flow-insensitive tracking cannot name). A deferred literal
			// still gets its own scope.
			if lit, ok := x.Call.Fun.(*ast.FuncLit); ok {
				litScope(lit)
			}
			return false
		case *ast.SelectStmt:
			b.selectEvents(sc, x, inspect)
			return false
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				b.waitEvent(sc, x.Pos(), x.X, "receive")
			}
		case *ast.SendStmt:
			b.waitEvent(sc, x.Arrow, x.Chan, "send")
		case *ast.CallExpr:
			if b.callEvent(sc, x) {
				return false
			}
		}
		return true
	}
	ast.Inspect(body, inspect)
}

// selectEvents handles a select statement: a default clause makes every
// arm non-blocking (no wait events); otherwise each communication is a
// wait. Clause bodies are walked in the enclosing scope either way, and
// the communicated channels are recorded here rather than re-visited, so
// a recv arm does not double-count.
func (b *lockGraphBuilder) selectEvents(sc *lockScope, sel *ast.SelectStmt, inspect func(ast.Node) bool) {
	blocking := true
	for _, cl := range sel.Body.List {
		if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
			blocking = false
		}
	}
	for _, cl := range sel.Body.List {
		cc, ok := cl.(*ast.CommClause)
		if !ok {
			continue
		}
		if blocking && cc.Comm != nil {
			switch comm := cc.Comm.(type) {
			case *ast.SendStmt:
				b.waitEvent(sc, comm.Arrow, comm.Chan, "select")
			case *ast.ExprStmt:
				if u, ok := comm.X.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
					b.waitEvent(sc, u.Pos(), u.X, "select")
				}
			case *ast.AssignStmt:
				for _, rhs := range comm.Rhs {
					if u, ok := rhs.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
						b.waitEvent(sc, u.Pos(), u.X, "select")
					}
				}
			}
		}
		for _, stmt := range cc.Body {
			ast.Inspect(stmt, inspect)
		}
	}
}

// callEvent classifies one call: a Lock/Unlock on a mutex, a blocking
// Wait, or a static call into the module universe. It reports whether the
// call was fully handled (so the walker skips the callee expression —
// arguments are still visited by the caller's Inspect when false).
func (b *lockGraphBuilder) callEvent(sc *lockScope, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if ok {
		recv := typeOfExpr(sc.pkg, sel.X)
		switch syncTypeName(recv) {
		case "sync.Mutex", "sync.RWMutex":
			kind := nodeMutex
			if syncTypeName(recv) == "sync.RWMutex" {
				kind = nodeRWMutex
			}
			switch sel.Sel.Name {
			case "Lock", "RLock", "TryLock", "TryRLock":
				node := b.lockNodeFor(sc, sel.X, kind)
				b.addEvent(sc, lockEvent{kind: evLock, pos: call.Pos(), node: node, inst: instanceObj(sc.pkg, sel.X)})
				return true
			case "Unlock", "RUnlock":
				node := b.lockNodeFor(sc, sel.X, kind)
				b.addEvent(sc, lockEvent{kind: evUnlock, pos: call.Pos(), node: node, inst: instanceObj(sc.pkg, sel.X)})
				return true
			}
		case "sync.WaitGroup":
			if sel.Sel.Name == "Wait" {
				node := b.lockNodeFor(sc, sel.X, nodeWaitGroup)
				b.addEvent(sc, lockEvent{kind: evWait, pos: call.Pos(), node: node, op: "WaitGroup.Wait"})
				return true
			}
		case "sync.Cond":
			if sel.Sel.Name == "Wait" {
				node := b.lockNodeFor(sc, sel.X, nodeCond)
				b.addEvent(sc, lockEvent{kind: evWait, pos: call.Pos(), node: node, op: "Cond.Wait"})
				return true
			}
		}
	}
	if fn, okf := calleeObject(sc.pkg.Info, call).(*types.Func); okf && fn.Pkg() != nil && sc.pkg.loader != nil {
		mod := sc.pkg.loader.modPath
		p := fn.Pkg().Path()
		if p == mod || strings.HasPrefix(p, mod+"/") {
			b.addEvent(sc, lockEvent{kind: evCall, pos: call.Pos(), node: -1, callee: fn})
		}
	}
	return false
}

// addEvent appends an event keeping the stream position-sorted (AST
// pre-order is already nearly positional; the insertion sort is a no-op
// in the common case).
func (b *lockGraphBuilder) addEvent(sc *lockScope, ev lockEvent) {
	sc.events = append(sc.events, ev)
	for i := len(sc.events) - 1; i > 0 && sc.events[i].pos < sc.events[i-1].pos; i-- {
		sc.events[i], sc.events[i-1] = sc.events[i-1], sc.events[i]
	}
}

// waitEvent records a blocking channel operation.
func (b *lockGraphBuilder) waitEvent(sc *lockScope, pos token.Pos, ch ast.Expr, op string) {
	node := b.chanNodeFor(sc, ch)
	b.addEvent(sc, lockEvent{kind: evWait, pos: pos, node: node, op: op})
}

// syncTypeName returns "sync.Mutex" etc for a (possibly pointer) sync
// type, or "".
func syncTypeName(t types.Type) string {
	if t == nil {
		return ""
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	switch t.String() {
	case "sync.Mutex", "sync.RWMutex", "sync.WaitGroup", "sync.Cond":
		return t.String()
	}
	return ""
}

// lockNodeFor resolves the identity node of a mutex/WaitGroup/Cond
// expression: a struct field (keyed by owner type), a package-level or
// local variable, or — when unresolvable — a per-type fallback node.
func (b *lockGraphBuilder) lockNodeFor(sc *lockScope, e ast.Expr, kind string) int {
	e = ast.Unparen(e)
	if sel, ok := e.(*ast.SelectorExpr); ok {
		if selection, ok := sc.pkg.Info.Selections[sel]; ok && selection.Kind() == types.FieldVal {
			if field, ok := selection.Obj().(*types.Var); ok {
				owner := ""
				if rt := typeOfExpr(sc.pkg, sel.X); rt != nil {
					owner = namedPath(rt)
				}
				if owner == "" && field.Pkg() != nil {
					owner = field.Pkg().Path()
				}
				return b.node(field, owner+"."+field.Name(), kind)
			}
		}
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := sc.pkg.Info.ObjectOf(id); obj != nil {
			scope := sc.pkg.Path
			if obj.Parent() != nil && obj.Parent() != sc.pkg.Types.Scope() {
				scope = sc.name
			}
			return b.node(obj, scope+"."+obj.Name(), kind)
		}
	}
	return b.node(nil, kind+" "+exprKeyString(sc, e), kind)
}

// chanNodeFor resolves the node of a channel expression; unresolvable
// channels (call results such as ctx.Done()) share a per-type node,
// which is safe because wait nodes are sinks — nothing holds a channel.
func (b *lockGraphBuilder) chanNodeFor(sc *lockScope, e ast.Expr) int {
	e = ast.Unparen(e)
	if sel, ok := e.(*ast.SelectorExpr); ok {
		if selection, ok := sc.pkg.Info.Selections[sel]; ok && selection.Kind() == types.FieldVal {
			if field, ok := selection.Obj().(*types.Var); ok {
				owner := ""
				if rt := typeOfExpr(sc.pkg, sel.X); rt != nil {
					owner = namedPath(rt)
				}
				if owner == "" && field.Pkg() != nil {
					owner = field.Pkg().Path()
				}
				return b.node(field, "chan "+owner+"."+field.Name(), nodeChan)
			}
		}
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := sc.pkg.Info.ObjectOf(id); obj != nil {
			scope := sc.pkg.Path
			if obj.Parent() != nil && obj.Parent() != sc.pkg.Types.Scope() {
				scope = sc.name
			}
			return b.node(obj, "chan "+scope+"."+obj.Name(), nodeChan)
		}
	}
	return b.node(nil, "chan "+exprKeyString(sc, e), nodeChan)
}

// exprKeyString names an unresolvable lock/channel expression by its
// static type, a stable degenerate key.
func exprKeyString(sc *lockScope, e ast.Expr) string {
	if t := typeOfExpr(sc.pkg, e); t != nil {
		return t.String()
	}
	return "<unknown>"
}

// node interns a graph node by identity object (when non-nil) or key.
func (b *lockGraphBuilder) node(obj types.Object, key, kind string) int {
	if obj != nil {
		if id, ok := b.nodeByObj[obj]; ok {
			return id
		}
	}
	if id, ok := b.nodeByKey[key]; ok {
		if obj != nil {
			b.nodeByObj[obj] = id
		}
		return id
	}
	id := len(b.nodes)
	b.nodes = append(b.nodes, LockNode{Key: key, Kind: kind})
	b.nodeByKey[key] = id
	if obj != nil {
		b.nodeByObj[obj] = id
	}
	return id
}

// instanceObj resolves the receiver instance a mutex expression hangs off
// (the root identifier's object), for matching Lock to Unlock and for
// distinguishing same-instance re-acquisition from cross-instance
// ordering.
func instanceObj(pkg *Package, e ast.Expr) types.Object {
	if root := rootIdent(e); root != nil {
		return pkg.Info.ObjectOf(root)
	}
	return nil
}

// fixpoint propagates acquisition summaries over the call graph until
// stable: summary(f) = f's direct lock/wait nodes ∪ summaries of its
// static callees. Literals contribute nothing (they run asynchronously
// or behind unknown callbacks).
func (b *lockGraphBuilder) fixpoint() {
	for _, sc := range b.scopes {
		for _, ev := range sc.events {
			if ev.kind == evLock || ev.kind == evWait {
				sc.summary[ev.node] = true
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, sc := range b.scopes {
			for _, ev := range sc.events {
				if ev.kind != evCall {
					continue
				}
				callee, ok := b.scopeByFn[ev.callee]
				if !ok {
					continue
				}
				for node := range callee.summary {
					if !sc.summary[node] {
						sc.summary[node] = true
						changed = true
					}
				}
			}
		}
	}
}

// heldLock is one live acquisition during the positional sweep.
type heldLock struct {
	inst types.Object
	node int
}

// emitEdges sweeps one scope's events, maintaining the held set and
// recording graph edges and wait-under-lock hazards.
func (b *lockGraphBuilder) emitEdges(sc *lockScope) {
	var held []heldLock
	for _, ev := range sc.events {
		switch ev.kind {
		case evLock:
			for _, h := range held {
				if h.node == ev.node && (h.inst == nil || ev.inst == nil || h.inst != ev.inst) {
					// Cross-instance hand-over-hand on one type: order
					// unknowable statically, suppressed by design.
					continue
				}
				b.addEdge(sc, h.node, ev.node, ev.pos, "acquires")
			}
			held = append(held, heldLock{inst: ev.inst, node: ev.node})
		case evUnlock:
			for i := len(held) - 1; i >= 0; i-- {
				if held[i].node == ev.node && held[i].inst == ev.inst {
					held = append(held[:i], held[i+1:]...)
					break
				}
			}
		case evWait:
			for _, h := range held {
				b.addEdge(sc, h.node, ev.node, ev.pos, "waits-on")
				// Cond.Wait is exempt from the hazard diagnostic: the
				// contract requires its locker held, and it releases it
				// while waiting.
				if b.nodes[ev.node].Kind != nodeCond {
					b.hazards = append(b.hazards, lockHazard{
						pos: ev.pos, pkgPath: sc.pkg.Path,
						heldKey: b.nodes[h.node].Key, waitKey: b.nodes[ev.node].Key,
						waitKind: b.nodes[ev.node].Kind, op: ev.op,
					})
				}
			}
		case evCall:
			if len(held) == 0 {
				continue
			}
			callee, ok := b.scopeByFn[ev.callee]
			if !ok || len(callee.summary) == 0 {
				continue
			}
			targets := make([]int, 0, len(callee.summary))
			for node := range callee.summary {
				targets = append(targets, node)
			}
			sort.Ints(targets)
			via := "calls " + calleeDisplay(ev.callee)
			for _, h := range held {
				for _, t := range targets {
					b.addEdge(sc, h.node, t, ev.pos, via)
				}
			}
		}
	}
}

// calleeDisplay renders a callee as "pkg.Func" or "pkg.Type.Method".
func calleeDisplay(fn *types.Func) string {
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if rn := recvNamed(sig.Recv().Type()); rn != "" {
			name = rn + "." + name
		}
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + name
	}
	return name
}

// addEdge records one dependency edge, deduplicated on (from, to) with
// the first site kept (scope scan order is deterministic).
func (b *lockGraphBuilder) addEdge(sc *lockScope, from, to int, pos token.Pos, via string) {
	key := [2]int{from, to}
	if b.edgeSeen[key] {
		return
	}
	b.edgeSeen[key] = true
	b.edges = append(b.edges, LockEdge{
		From: from, To: to,
		Site: sc.pkg.Fset.Position(pos), pos: pos,
		Via: via, PkgPath: sc.pkg.Path,
	})
}
