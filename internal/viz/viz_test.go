package viz

import (
	"strings"
	"testing"

	"ebda/internal/core"
	"ebda/internal/topology"
)

func TestTurnDiagramNorthLast(t *testing.T) {
	chain := core.MustParseChain("PA[X+ X- Y-] -> PB[Y+]")
	ts := chain.AllTurns()
	svg, err := TurnDiagram(ts)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(svg, "<svg") || !strings.HasSuffix(strings.TrimSpace(svg), "</svg>") {
		t.Error("not a well-formed SVG document")
	}
	// One line per channel class.
	if got := strings.Count(svg, "<line "); got != 4 {
		t.Errorf("arrows = %d, want 4", got)
	}
	// One arc per turn (6 x 90 + 2 U).
	if got := strings.Count(svg, "<path d=\"M "); got != 8 {
		t.Errorf("arcs = %d, want 8", got)
	}
	for _, label := range []string{">E<", ">W<", ">N<", ">S<"} {
		if !strings.Contains(svg, label) {
			t.Errorf("missing label %s", label)
		}
	}
	if !strings.Contains(svg, "8 turns: 6 x 90deg, 2 U, 0 I") {
		t.Error("missing caption")
	}
}

func TestTurnDiagramVCsFanOut(t *testing.T) {
	chain := core.MustParseChain("PA[X1+ Y1+ Y1-] -> PB[X1- Y2+ Y2-]")
	svg, err := TurnDiagram(chain.AllTurns())
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(svg, "<line "); got != 6 {
		t.Errorf("arrows = %d, want 6 (six channels)", got)
	}
	for _, label := range []string{">N2<", ">S2<"} {
		if !strings.Contains(svg, label) {
			t.Errorf("missing VC label %s", label)
		}
	}
}

func TestTurnDiagramRejects3D(t *testing.T) {
	chain := core.MustParseChain("PA[X+ Y+ Z+ Z-]")
	if _, err := TurnDiagram(chain.AllTurns()); err == nil {
		t.Error("3D should be rejected")
	}
}

func TestTurnDiagramDeterministic(t *testing.T) {
	chain := core.MustParseChain("PA[X- Y-] -> PB[X+ Y+]")
	a, err := TurnDiagram(chain.AllTurns())
	if err != nil {
		t.Fatal(err)
	}
	b, err := TurnDiagram(chain.AllTurns())
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("diagram not deterministic")
	}
}

func TestHeatmap(t *testing.T) {
	net := topology.NewMesh(3, 2)
	loads := []int{0, 1, 2, 3, 4, 5}
	svg, err := Heatmap(net, loads)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(svg, "<rect "); got != 6 {
		t.Errorf("cells = %d, want 6", got)
	}
	if !strings.Contains(svg, "max 5 flits/node") {
		t.Error("missing caption")
	}
	if _, err := Heatmap(net, []int{1, 2}); err == nil {
		t.Error("wrong load length should fail")
	}
	if _, err := Heatmap(topology.NewMesh(2, 2, 2), make([]int, 8)); err == nil {
		t.Error("3D should be rejected")
	}
}
