// Package viz renders reproduction artifacts as standalone SVG documents:
// turn diagrams in the style of the paper's figures (direction arrows with
// arcs for every permitted turn) and per-node traffic heatmaps from
// simulator runs. Output is deterministic text, suitable for golden tests
// and for dropping into documentation.
package viz

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"ebda/internal/channel"
	"ebda/internal/core"
	"ebda/internal/topology"
)

// arrowGeometry describes one direction arrow of the diagram.
type arrowGeometry struct {
	cls        channel.Class
	x1, y1     float64 // tail
	x2, y2     float64 // head
	labelX     float64
	labelY     float64
	labelAlign string
}

// TurnDiagram renders a 2D design's turn set in the paper's figure style:
// one arrow per channel class radiating from the centre (virtual channels
// fan out side by side), and one curved arc per permitted 90-degree,
// U- or I-turn, drawn from the head of the source arrow to the tail of the
// destination arrow. Parity-classed designs are rendered with their parity
// subscripts as labels. Only 2D turn sets are supported.
func TurnDiagram(ts *core.TurnSet) (string, error) {
	classes := ts.Classes()
	for _, c := range classes {
		if c.Dim > channel.Y {
			return "", fmt.Errorf("viz: turn diagrams support 2D designs only, got %s", c)
		}
	}
	const (
		cx, cy  = 160.0, 160.0
		rTail   = 28.0
		rHead   = 120.0
		fanStep = 22.0
	)
	// Group classes by direction so VCs fan out.
	byDir := map[[2]int][]channel.Class{}
	for _, c := range classes {
		key := [2]int{int(c.Dim), int(c.Sign)}
		byDir[key] = append(byDir[key], c)
	}
	angleOf := func(d channel.Dim, s channel.Sign) float64 {
		switch {
		case d == channel.X && s == channel.Plus:
			return 0 // east
		case d == channel.X && s == channel.Minus:
			return math.Pi // west
		case d == channel.Y && s == channel.Plus:
			return -math.Pi / 2 // north (SVG y grows downward)
		default:
			return math.Pi / 2 // south
		}
	}
	arrows := map[channel.Class]arrowGeometry{}
	for key, group := range byDir {
		sort.Slice(group, func(i, j int) bool { return group[i].Compare(group[j]) < 0 })
		ang := angleOf(channel.Dim(key[0]), channel.Sign(key[1]))
		// Perpendicular fan offset.
		px, py := -math.Sin(ang), math.Cos(ang)
		for i, c := range group {
			off := (float64(i) - float64(len(group)-1)/2) * fanStep
			a := arrowGeometry{
				cls: c,
				x1:  cx + rTail*math.Cos(ang) + off*px,
				y1:  cy + rTail*math.Sin(ang) + off*py,
				x2:  cx + rHead*math.Cos(ang) + off*px,
				y2:  cy + rHead*math.Sin(ang) + off*py,
			}
			a.labelX = cx + (rHead+22)*math.Cos(ang) + off*px
			a.labelY = cy + (rHead+22)*math.Sin(ang) + off*py + 4
			arrows[c] = a
		}
	}

	var b strings.Builder
	b.WriteString(`<svg xmlns="http://www.w3.org/2000/svg" width="320" height="320" viewBox="0 0 320 320">` + "\n")
	b.WriteString(`  <defs><marker id="ah" markerWidth="8" markerHeight="8" refX="6" refY="3" orient="auto"><path d="M0,0 L6,3 L0,6 z" fill="#333"/></marker>` +
		`<marker id="at" markerWidth="7" markerHeight="7" refX="5" refY="2.5" orient="auto"><path d="M0,0 L5,2.5 L0,5 z" fill="#c33"/></marker></defs>` + "\n")
	// Direction arrows, sorted for determinism.
	sorted := append([]channel.Class(nil), classes...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Compare(sorted[j]) < 0 })
	for _, c := range sorted {
		a := arrows[c]
		fmt.Fprintf(&b, `  <line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#333" stroke-width="2" marker-end="url(#ah)"/>`+"\n",
			a.x1, a.y1, a.x2, a.y2)
		fmt.Fprintf(&b, `  <text x="%.1f" y="%.1f" font-size="11" text-anchor="middle" font-family="monospace">%s</text>`+"\n",
			a.labelX, a.labelY, c.ShortPlain())
	}
	// Turn arcs: quadratic curves from the source arrow's head toward the
	// destination arrow's tail, bowed through the midpoint pushed outward.
	for _, t := range ts.Turns() {
		from, okF := arrows[t.From]
		to, okT := arrows[t.To]
		if !okF || !okT {
			continue
		}
		mx, my := (from.x2+to.x1)/2, (from.y2+to.y1)/2
		// Push the control point away from the centre for visibility.
		dx, dy := mx-160, my-160
		norm := math.Hypot(dx, dy)
		if norm < 1 {
			dx, dy, norm = 1, 0, 1
		}
		cxp, cyp := mx+22*dx/norm, my+22*dy/norm
		color := "#c33"
		if t.Kind() != core.Turn90 {
			color = "#36c"
		}
		fmt.Fprintf(&b, `  <path d="M %.1f %.1f Q %.1f %.1f %.1f %.1f" fill="none" stroke="%s" stroke-width="1.3" marker-end="url(#at)"/>`+"\n",
			from.x2, from.y2, cxp, cyp, to.x1, to.y1, color)
	}
	n90, nU, nI := ts.Counts()
	fmt.Fprintf(&b, `  <text x="8" y="312" font-size="10" font-family="monospace">%d turns: %d x 90deg, %d U, %d I (red: 90deg, blue: U/I)</text>`+"\n",
		n90+nU+nI, n90, nU, nI)
	b.WriteString("</svg>\n")
	return b.String(), nil
}

// Heatmap renders per-node loads of a 2D mesh as a shaded grid (row 0 at
// the bottom, as in the paper's coordinate convention).
func Heatmap(net *topology.Network, loads []int) (string, error) {
	if net.Dims() != 2 {
		return "", fmt.Errorf("viz: heatmaps support 2D meshes only")
	}
	if len(loads) != net.Nodes() {
		return "", fmt.Errorf("viz: %d loads for %d nodes", len(loads), net.Nodes())
	}
	w, h := net.Sizes()[0], net.Sizes()[1]
	max := 1
	for _, l := range loads {
		if l > max {
			max = l
		}
	}
	const cell = 28
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d">`+"\n",
		w*cell+20, h*cell+30)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			l := loads[net.ID(topology.Coord{x, y})]
			// Light yellow to dark red.
			frac := float64(l) / float64(max)
			r := 255
			g := int(235 * (1 - frac*0.85))
			bl := int(205 * (1 - frac))
			fmt.Fprintf(&b, `  <rect x="%d" y="%d" width="%d" height="%d" fill="rgb(%d,%d,%d)" stroke="#999"/>`+"\n",
				10+x*cell, 10+(h-1-y)*cell, cell, cell, r, g, bl)
		}
	}
	fmt.Fprintf(&b, `  <text x="10" y="%d" font-size="10" font-family="monospace">max %d flits/node</text>`+"\n",
		h*cell+24, max)
	b.WriteString("</svg>\n")
	return b.String(), nil
}
