package core

import (
	"encoding/json"
	"fmt"

	"ebda/internal/channel"
)

// chainJSON is the on-disk representation of a chain: partition names and
// channel classes in the paper's string notation.
type chainJSON struct {
	Partitions []partitionJSON `json:"partitions"`
}

type partitionJSON struct {
	Name     string   `json:"name"`
	Channels []string `json:"channels"`
}

// MarshalJSON encodes the chain as named partitions of class strings,
// e.g. {"partitions":[{"name":"PA","channels":["X1+","Y1+","Y1-"]}, ...]}.
func (c *Chain) MarshalJSON() ([]byte, error) {
	out := chainJSON{}
	for _, p := range c.parts {
		pj := partitionJSON{Name: p.Name()}
		for _, cls := range p.Channels() {
			pj.Channels = append(pj.Channels, cls.String())
		}
		out.Partitions = append(out.Partitions, pj)
	}
	return json.Marshal(out)
}

// UnmarshalJSON decodes and validates a chain (Theorem 1 per partition,
// pairwise disjointness).
func (c *Chain) UnmarshalJSON(data []byte) error {
	var in chainJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	var parts []*Partition
	for i, pj := range in.Partitions {
		var classes []channel.Class
		for _, s := range pj.Channels {
			cls, err := channel.Parse(s)
			if err != nil {
				return fmt.Errorf("core: partition %d: %w", i, err)
			}
			classes = append(classes, cls)
		}
		name := pj.Name
		if name == "" {
			name = autoName(i)
		}
		p, err := NewPartition(name, classes...)
		if err != nil {
			return err
		}
		parts = append(parts, p)
	}
	chain, err := NewChain(parts...)
	if err != nil {
		return err
	}
	*c = *chain
	return nil
}
