// Package core implements the EbDa theory: partitions of channel classes,
// the three theorems governing when a partition (and a chain of partitions)
// is cycle-free, and the extraction of the full allowable turn set from a
// partition chain.
//
// The theory operates on abstract channel classes (see internal/channel).
// Designs produced here are independently verifiable on concrete networks
// through internal/cdg, which builds the induced channel dependency graph
// and checks it for cycles — the Dally condition.
package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"ebda/internal/channel"
)

// TurnKind classifies a transition between two channels by the angle
// between them, following the paper's Definitions 4 and 5.
type TurnKind int

// The three turn kinds.
const (
	// Turn90 is a transition between channels of different dimensions
	// (a 90-degree turn).
	Turn90 TurnKind = iota
	// UTurn is a transition between opposite directions of the same
	// dimension (a 180-degree turn), possibly with different VC numbers.
	UTurn
	// ITurn is a transition between channels of the same dimension and
	// direction but different VC numbers or parity classes (a 0-degree
	// turn).
	ITurn
)

// String returns "90", "U" or "I".
func (k TurnKind) String() string {
	switch k {
	case Turn90:
		return "90"
	case UTurn:
		return "U"
	case ITurn:
		return "I"
	default:
		return fmt.Sprintf("TurnKind(%d)", int(k))
	}
}

// Theorem identifies which of the paper's three theorems admits a turn.
type Theorem int

// The theorem labels used when annotating extracted turns.
const (
	// ByTheorem1 marks 90-degree turns formed inside a partition.
	ByTheorem1 Theorem = 1
	// ByTheorem2 marks U- and I-turns formed inside a partition under
	// the ascending-order rule.
	ByTheorem2 Theorem = 2
	// ByTheorem3 marks turns formed by transitions between partitions.
	ByTheorem3 Theorem = 3
)

// String returns "T1", "T2" or "T3".
func (t Theorem) String() string { return fmt.Sprintf("T%d", int(t)) }

// Turn is a permitted transition from one channel class to another.
type Turn struct {
	From, To channel.Class
	// Source records which theorem admitted the turn.
	Source Theorem
}

// Kind classifies the turn by the relation between its endpoints.
func (t Turn) Kind() TurnKind { return KindOf(t.From, t.To) }

// KindOf classifies the transition from one class to another.
func KindOf(from, to channel.Class) TurnKind {
	if from.Dim != to.Dim {
		return Turn90
	}
	if from.Sign != to.Sign {
		return UTurn
	}
	return ITurn
}

// String renders the turn in the figure notation of the paper, e.g. "E1N2"
// for VC-numbered channels or "WS" in plain 2D settings.
func (t Turn) String() string { return t.From.Short() + t.To.Short() }

// PlainString renders the turn using ShortPlain endpoint notation ("WS",
// "N1W1" only when VCs matter).
func (t Turn) PlainString() string { return t.From.ShortPlain() + t.To.ShortPlain() }

// TurnSet is the set of permitted transitions of a design, keyed by the
// (from, to) class pair, together with the set of channel classes the
// design declares (a class may be declared without participating in any
// turn, e.g. the only channel of a single-partition design). It is the
// object the paper's figures and tables enumerate, and the input from
// which routing algorithms and channel dependency graphs are built.
//
// Continuing along the same channel class (taking the class's next
// concrete channel without turning) is always permitted for declared
// classes — Definition 2's "arbitrarily and repeatedly" — and Allows
// reflects that.
type TurnSet struct {
	turns    map[[2]channel.Class]Theorem
	declared map[channel.Class]bool

	// mu guards matrix, the memoized allow-matrix. Mutations (Add,
	// Declare) invalidate it; Matrix rebuilds on demand. The maps above
	// are not guarded: TurnSet construction is single-goroutine, and only
	// the built set (and its immutable matrix) is shared across workers.
	mu     sync.Mutex
	matrix *AllowMatrix
}

// NewTurnSet returns an empty turn set.
func NewTurnSet() *TurnSet {
	return &TurnSet{
		turns:    make(map[[2]channel.Class]Theorem),
		declared: make(map[channel.Class]bool),
	}
}

// Add inserts a turn and declares both endpoint classes. If the turn is
// already present, the earliest theorem label is kept (a turn admitted by
// Theorem 1 stays labelled T1 even if a later transition would also
// produce it).
func (s *TurnSet) Add(from, to channel.Class, src Theorem) {
	s.invalidate()
	s.declared[from] = true
	s.declared[to] = true
	key := [2]channel.Class{from, to}
	if old, ok := s.turns[key]; ok && old <= src {
		return
	}
	s.turns[key] = src
}

// invalidate drops the memoized allow-matrix after a mutation.
func (s *TurnSet) invalidate() {
	s.mu.Lock()
	s.matrix = nil
	s.mu.Unlock()
}

// Declare registers a channel class as part of the design without adding
// any turn. Declared classes permit same-class continuation.
func (s *TurnSet) Declare(cls channel.Class) {
	s.invalidate()
	s.declared[cls] = true
}

// Declared reports whether a class is part of the design.
func (s *TurnSet) Declared(cls channel.Class) bool { return s.declared[cls] }

// Allows reports whether the transition from one class to another is
// permitted: either an explicit turn, or same-class continuation of a
// declared class.
func (s *TurnSet) Allows(from, to channel.Class) bool {
	if from == to {
		return s.declared[from]
	}
	_, ok := s.turns[[2]channel.Class{from, to}]
	return ok
}

// Contains reports whether the exact turn (including its theorem label) is
// present.
func (s *TurnSet) Contains(t Turn) bool {
	src, ok := s.turns[[2]channel.Class{t.From, t.To}]
	return ok && src == t.Source
}

// Len returns the number of turns in the set.
func (s *TurnSet) Len() int { return len(s.turns) }

// Turns returns all turns sorted by (From, To) class order.
func (s *TurnSet) Turns() []Turn {
	out := make([]Turn, 0, len(s.turns))
	for key, src := range s.turns {
		out = append(out, Turn{From: key[0], To: key[1], Source: src})
	}
	sort.Slice(out, func(i, j int) bool {
		if c := out[i].From.Compare(out[j].From); c != 0 {
			return c < 0
		}
		return out[i].To.Compare(out[j].To) < 0
	})
	return out
}

// ByKind returns the turns of one kind, sorted.
func (s *TurnSet) ByKind(k TurnKind) []Turn {
	var out []Turn
	for _, t := range s.Turns() {
		if t.Kind() == k {
			out = append(out, t)
		}
	}
	return out
}

// BySource returns the turns admitted by one theorem, sorted.
func (s *TurnSet) BySource(src Theorem) []Turn {
	var out []Turn
	for _, t := range s.Turns() {
		if t.Source == src {
			out = append(out, t)
		}
	}
	return out
}

// Counts returns the number of 90-degree, U- and I-turns in the set.
func (s *TurnSet) Counts() (n90, nU, nI int) {
	for key := range s.turns {
		switch KindOf(key[0], key[1]) {
		case Turn90:
			n90++
		case UTurn:
			nU++
		case ITurn:
			nI++
		}
	}
	return
}

// Classes returns every declared channel class (which includes every turn
// endpoint), sorted.
func (s *TurnSet) Classes() []channel.Class {
	out := make([]channel.Class, 0, len(s.declared))
	for c := range s.declared {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// AllowMatrix is an immutable dense snapshot of a turn set's transition
// relation over interned class indices. Hot loops (channel-dependency
// extraction, path counting) use it in place of TurnSet.Allows to avoid
// hashing struct keys per query: classes are interned once, then every
// Allows test is one bit probe.
//
// The matrix reflects the turn set at the time Matrix was called; turns
// added later are not visible.
type AllowMatrix struct {
	classes []channel.Class
	index   map[channel.Class]int32
	words   int
	// rows[i*words : (i+1)*words] is the bitset of classes reachable
	// from class i.
	rows []uint64
}

// Matrix returns the dense allow-matrix of the set's current state. Class
// indices follow Classes() order (sorted), and same-class continuation of
// declared classes is included, matching Allows. The matrix is memoized:
// repeated calls between mutations return the same immutable snapshot, so
// hot verification loops pay the dense build once per turn set.
//
//ebda:hotpath
func (s *TurnSet) Matrix() *AllowMatrix {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.matrix == nil {
		s.matrix = s.buildMatrix()
	}
	return s.matrix
}

// buildMatrix constructs a fresh dense snapshot; callers hold s.mu.
func (s *TurnSet) buildMatrix() *AllowMatrix {
	classes := s.Classes()
	m := &AllowMatrix{
		classes: classes,
		index:   make(map[channel.Class]int32, len(classes)),
		words:   (len(classes) + 63) / 64,
	}
	m.rows = make([]uint64, len(classes)*m.words)
	for i, c := range classes {
		m.index[c] = int32(i)
	}
	for i, from := range classes {
		row := m.rows[i*m.words : (i+1)*m.words]
		for j, to := range classes {
			if s.Allows(from, to) {
				row[j/64] |= 1 << uint(j%64)
			}
		}
	}
	return m
}

// NumClasses returns the number of interned classes.
func (m *AllowMatrix) NumClasses() int { return len(m.classes) }

// Classes returns the interned classes in index order. The slice must not
// be modified.
func (m *AllowMatrix) Classes() []channel.Class { return m.classes }

// Index returns the interned index of a class, or false if the class was
// not part of the set when the matrix was built.
func (m *AllowMatrix) Index(c channel.Class) (int, bool) {
	i, ok := m.index[c]
	return int(i), ok
}

// Allows reports whether the transition from class index from to class
// index to is permitted.
func (m *AllowMatrix) Allows(from, to int) bool {
	return m.rows[from*m.words+to/64]&(1<<uint(to%64)) != 0
}

// AllowsAny reports whether any (from, to) pair across the two index sets
// is permitted — the inner test of dependency-edge construction.
func (m *AllowMatrix) AllowsAny(from, to []int32) bool {
	for _, a := range from {
		row := m.rows[int(a)*m.words:]
		for _, b := range to {
			if row[b/64]&(1<<uint(b%64)) != 0 {
				return true
			}
		}
	}
	return false
}

// Clone returns a deep copy of the set: same turns (with labels) and the
// same declared classes. The memoized matrix is not shared; the clone
// builds its own on first use. Delta verification clones the base relation
// before toggling turns so the base set stays untouched.
func (s *TurnSet) Clone() *TurnSet {
	c := NewTurnSet()
	for key, src := range s.turns {
		c.turns[key] = src
	}
	for cls := range s.declared {
		c.declared[cls] = true
	}
	return c
}

// Remove deletes the turn from one class to another and reports whether it
// was present. Both endpoint classes stay declared — removing a turn
// narrows the transition relation without shrinking the design's channel
// class set, which keeps interned class tables (and the VC configuration
// they imply) stable across turn-toggle deltas.
func (s *TurnSet) Remove(from, to channel.Class) bool {
	key := [2]channel.Class{from, to}
	if _, ok := s.turns[key]; !ok {
		return false
	}
	s.invalidate()
	delete(s.turns, key)
	return true
}

// Union returns a new set containing the turns and declared classes of
// both sets.
func (s *TurnSet) Union(o *TurnSet) *TurnSet {
	u := NewTurnSet()
	for key, src := range s.turns {
		u.Add(key[0], key[1], src)
	}
	for key, src := range o.turns {
		u.Add(key[0], key[1], src)
	}
	for c := range s.declared {
		u.Declare(c)
	}
	for c := range o.declared {
		u.Declare(c)
	}
	return u
}

// Equal reports whether two sets permit exactly the same transitions
// (theorem labels are ignored).
func (s *TurnSet) Equal(o *TurnSet) bool {
	if len(s.turns) != len(o.turns) {
		return false
	}
	for key := range s.turns {
		if _, ok := o.turns[key]; !ok {
			return false
		}
	}
	return true
}

// Subset reports whether every turn in s is also in o.
func (s *TurnSet) Subset(o *TurnSet) bool {
	for key := range s.turns {
		if _, ok := o.turns[key]; !ok {
			return false
		}
	}
	return true
}

// Fingerprint returns two independent 64-bit digests of the transition
// relation: the declared classes plus every (from, to) turn pair. Theorem
// labels are excluded — verification depends only on Allows — so two sets
// that are Equal with the same declarations always share a fingerprint,
// even when built by different derivations. Per-element digests combine by
// addition, which is commutative, so map iteration order cannot change the
// result. Verification caches key on the first digest and store the second
// as a collision check.
func (s *TurnSet) Fingerprint() (uint64, uint64) {
	const (
		declSeedA = 0x9e3779b97f4a7c15
		declSeedB = 0xc2b2ae3d27d4eb4f
		turnSeedA = 0xd6e8feb86659fd93
		turnSeedB = 0xa0761d6478bd642f
	)
	var h1, h2 uint64
	for c := range s.declared {
		e := classCode(c)
		h1 += mix64(e ^ declSeedA)
		h2 += mix64(e ^ declSeedB)
	}
	for key := range s.turns {
		// The pair combination is ordered (from*prime ^ to), so the turn
		// a->b and its reverse b->a digest differently.
		e := classCode(key[0])*0x100000001b3 ^ classCode(key[1])
		h1 += mix64(e ^ turnSeedA)
		h2 += mix64(e ^ turnSeedB)
	}
	return h1, h2
}

// classCode packs a channel class into a uint64 for fingerprinting.
func classCode(c channel.Class) uint64 {
	e := uint64(uint32(int32(c.Dim)))
	e = e*1000003 + uint64(uint32(int32(c.Sign)))
	e = e*1000003 + uint64(uint32(int32(c.VC)))
	e = e*1000003 + uint64(uint32(int32(c.PDim)))
	e = e*1000003 + uint64(uint32(int32(c.Par)))
	return e
}

// mix64 is the splitmix64 finalizer: a fast, well-distributed bijection
// used to decorrelate the additive fingerprint terms.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// String renders the set grouped by kind, in Short notation, e.g.
// "90: E1N1 N1E1 | U: U1D1 | I: E1E2".
func (s *TurnSet) String() string {
	var b strings.Builder
	for i, k := range []TurnKind{Turn90, UTurn, ITurn} {
		ts := s.ByKind(k)
		if len(ts) == 0 {
			continue
		}
		if i > 0 && b.Len() > 0 {
			b.WriteString(" | ")
		}
		fmt.Fprintf(&b, "%s:", k)
		for _, t := range ts {
			b.WriteByte(' ')
			b.WriteString(t.String())
		}
	}
	return b.String()
}

// FormatTurns renders a list of turns as space-separated Short notation.
func FormatTurns(ts []Turn) string {
	parts := make([]string, len(ts))
	for i, t := range ts {
		parts[i] = t.String()
	}
	return strings.Join(parts, " ")
}

// FormatTurnsPlain renders a list of turns as space-separated ShortPlain
// notation ("WS SE ES SW").
func FormatTurnsPlain(ts []Turn) string {
	parts := make([]string, len(ts))
	for i, t := range ts {
		parts[i] = t.PlainString()
	}
	return strings.Join(parts, " ")
}

// ParseTurnList parses turns given as "from>to" pairs separated by spaces or
// commas, where each endpoint uses the channel.Parse notation, e.g.
// "X+>Y+, Y1->X2+". It is used by the verification CLI.
func ParseTurnList(s string) ([]Turn, error) {
	fields := strings.FieldsFunc(s, func(r rune) bool { return r == ' ' || r == ',' })
	out := make([]Turn, 0, len(fields))
	for _, f := range fields {
		parts := strings.Split(f, ">")
		if len(parts) != 2 {
			return nil, fmt.Errorf("core: malformed turn %q (want from>to)", f)
		}
		from, err := channel.Parse(parts[0])
		if err != nil {
			return nil, err
		}
		to, err := channel.Parse(parts[1])
		if err != nil {
			return nil, err
		}
		out = append(out, Turn{From: from, To: to})
	}
	return out, nil
}
