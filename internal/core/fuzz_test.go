package core

import (
	"testing"
)

// FuzzParseChain checks the chain parser never panics, never accepts a
// Theorem-1-violating or overlapping design, and that accepted chains
// survive a String round trip and extract turns without error.
func FuzzParseChain(f *testing.F) {
	for _, seed := range []string{
		"PA[X+ X- Y-] -> PB[Y+]",
		"PA[X1+ Y1+ Y1-] -> PB[X1- Y2+ Y2-]",
		"P[Z1*]",
		"PA[X+ X- Y+ Y-]",
		"PA[X+] -> PB[X+]",
		"->", "PA[", "[]", "PA[bogus]", "PA[X+] -> -> PB[Y+]",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		if len(s) > 200 {
			return // keep turn extraction cheap
		}
		chain, err := ParseChain(s)
		if err != nil {
			return
		}
		// Accepted chains satisfy the theorems by construction.
		if err := chain.Validate(); err != nil {
			t.Fatalf("accepted chain fails validation: %v", err)
		}
		// Round trip through the canonical rendering.
		back, err := ParseChain(chain.String())
		if err != nil {
			t.Fatalf("canonical form %q does not re-parse: %v", chain.String(), err)
		}
		if !back.Equal(chain) {
			t.Fatalf("round trip mismatch: %s != %s", back, chain)
		}
		// Turn extraction must not panic and must stay internally
		// consistent.
		ts := chain.AllTurns()
		n90, nU, nI := ts.Counts()
		if n90+nU+nI != ts.Len() {
			t.Fatalf("turn counts inconsistent: %d+%d+%d != %d", n90, nU, nI, ts.Len())
		}
	})
}
