package core

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestChainJSONRoundTrip(t *testing.T) {
	orig := MustParseChain("PA[X1+ Y1+ Y1-] -> PB[X1- Y2+ Y2-]")
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"X1+"`) || !strings.Contains(string(data), `"PA"`) {
		t.Errorf("encoding: %s", data)
	}
	var back Chain
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !back.Equal(orig) {
		t.Errorf("round trip: %s != %s", back.String(), orig.String())
	}
}

func TestChainJSONValidates(t *testing.T) {
	// Theorem-1 violations are rejected at decode time.
	bad := `{"partitions":[{"name":"PA","channels":["X1+","X1-","Y1+","Y1-"]}]}`
	var c Chain
	if err := json.Unmarshal([]byte(bad), &c); err == nil {
		t.Error("Theorem-1 violation should fail to decode")
	}
	// Overlapping partitions too.
	overlap := `{"partitions":[{"name":"PA","channels":["X1+"]},{"name":"PB","channels":["X1+"]}]}`
	if err := json.Unmarshal([]byte(overlap), &c); err == nil {
		t.Error("overlap should fail to decode")
	}
	// Bad class strings.
	junk := `{"partitions":[{"name":"PA","channels":["bogus"]}]}`
	if err := json.Unmarshal([]byte(junk), &c); err == nil {
		t.Error("bad class should fail to decode")
	}
	// Missing names are auto-assigned.
	anon := `{"partitions":[{"channels":["X1+"]},{"channels":["X1-"]}]}`
	if err := json.Unmarshal([]byte(anon), &c); err != nil {
		t.Fatal(err)
	}
	if c.Partitions()[0].Name() != "PA" || c.Partitions()[1].Name() != "PB" {
		t.Error("auto names not assigned")
	}
}

func TestChainJSONParityClasses(t *testing.T) {
	// Odd-Even style parity classes survive the round trip.
	spec := `{"partitions":[{"name":"PA","channels":["X1-","Ye+","Ye-"]},{"name":"PB","channels":["X1+","Yo+","Yo-"]}]}`
	var c Chain
	if err := json.Unmarshal([]byte(spec), &c); err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(&c)
	if err != nil {
		t.Fatal(err)
	}
	var back Chain
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !back.Equal(&c) {
		t.Error("parity round trip failed")
	}
}
