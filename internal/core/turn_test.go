package core

import (
	"math/rand"
	"testing"

	"ebda/internal/channel"
)

// randomTurnSet draws a turn set over a small class pool, mixing explicit
// turns with declare-only classes and parity-restricted classes.
func randomTurnSet(r *rand.Rand) *TurnSet {
	pool := channel.MustParseList("X1+ X1- X2+ Y1+ Y1- Y2-")
	pool = append(pool,
		channel.NewParity(channel.Y, channel.Plus, channel.X, channel.Odd),
		channel.NewParity(channel.Y, channel.Plus, channel.X, channel.Even),
	)
	ts := NewTurnSet()
	for _, c := range pool {
		if r.Intn(2) == 0 {
			ts.Declare(c)
		}
	}
	for i := 0; i < 12; i++ {
		from := pool[r.Intn(len(pool))]
		to := pool[r.Intn(len(pool))]
		if from != to {
			ts.Add(from, to, Theorem(1+r.Intn(3)))
		}
	}
	return ts
}

func TestMatrixMatchesAllows(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		ts := randomTurnSet(r)
		m := ts.Matrix()
		classes := m.Classes()
		if len(classes) != m.NumClasses() {
			t.Fatalf("NumClasses = %d, want %d", m.NumClasses(), len(classes))
		}
		for i, from := range classes {
			if idx, ok := m.Index(from); !ok || idx != i {
				t.Fatalf("Index(%s) = %d,%v, want %d", from, idx, ok, i)
			}
			for j, to := range classes {
				if m.Allows(i, j) != ts.Allows(from, to) {
					t.Fatalf("trial %d: matrix.Allows(%s, %s) = %v, turn set says %v",
						trial, from, to, m.Allows(i, j), ts.Allows(from, to))
				}
			}
		}
	}
}

func TestMatrixContinuationAndUnknown(t *testing.T) {
	ts := NewTurnSet()
	e := channel.New(channel.X, channel.Plus)
	n := channel.New(channel.Y, channel.Plus)
	ts.Declare(e)
	ts.Add(e, n, ByTheorem1)
	m := ts.Matrix()
	ei, _ := m.Index(e)
	ni, _ := m.Index(n)
	if !m.Allows(ei, ei) {
		t.Error("declared class must allow same-class continuation")
	}
	if !m.Allows(ei, ni) || m.Allows(ni, ei) {
		t.Error("explicit turn direction lost")
	}
	if _, ok := m.Index(channel.New(channel.X, channel.Minus)); ok {
		t.Error("unknown class must not resolve")
	}
	// AllowsAny covers the pairwise any-match used by edge construction.
	if !m.AllowsAny([]int32{int32(ei)}, []int32{int32(ni)}) {
		t.Error("AllowsAny must see the explicit turn")
	}
	if m.AllowsAny([]int32{int32(ni)}, []int32{int32(ei)}) {
		t.Error("AllowsAny must not invent turns")
	}
	if m.AllowsAny(nil, []int32{int32(ni)}) || m.AllowsAny([]int32{int32(ei)}, nil) {
		t.Error("empty sides must yield false")
	}
	// The matrix is a snapshot: later Adds are invisible.
	ts.Add(n, e, ByTheorem1)
	if m.Allows(ni, ei) {
		t.Error("matrix must be a snapshot, not a live view")
	}
}
