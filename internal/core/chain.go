package core

import (
	"errors"
	"fmt"
	"strings"

	"ebda/internal/channel"
)

// Chain is an ordered sequence of disjoint cycle-free partitions. Packets
// may move between partitions only in ascending chain order (Theorem 3);
// within a partition they move freely (Theorem 1) plus the ascending U/I
// turns (Theorem 2). A validated chain therefore induces an acyclic channel
// dependency graph, i.e. a deadlock-free wormhole design.
type Chain struct {
	parts []*Partition
}

// NewChain builds a chain from partitions in transition order and validates
// it: every partition must satisfy Theorem 1 and all partitions must be
// pairwise disjoint.
func NewChain(parts ...*Partition) (*Chain, error) {
	c := &Chain{parts: append([]*Partition(nil), parts...)}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// MustChain is NewChain that panics on error.
func MustChain(parts ...*Partition) *Chain {
	c, err := NewChain(parts...)
	if err != nil {
		panic(err)
	}
	return c
}

// ParseChain parses the paper's arrow notation, e.g.
// "PA[X+ X- Y-] -> PB[Y+]" or "X+Y+ -> X-Y-" (with partitions auto-named
// PA, PB, ... when unnamed). Channels within a partition are separated by
// spaces; "Z1*" expands to "Z1+ Z1-".
func ParseChain(s string) (*Chain, error) {
	segments := strings.Split(s, "->")
	parts := make([]*Partition, 0, len(segments))
	for i, seg := range segments {
		seg = strings.TrimSpace(seg)
		if seg == "" {
			return nil, fmt.Errorf("core: empty partition segment in chain %q", s)
		}
		if !strings.Contains(seg, "[") {
			seg = "[" + seg + "]"
		}
		p, err := ParsePartition(seg)
		if err != nil {
			return nil, err
		}
		if p.Name() == "" {
			p = p.WithName(autoName(i))
		}
		parts = append(parts, p)
	}
	return NewChain(parts...)
}

// MustParseChain is ParseChain that panics on error.
func MustParseChain(s string) *Chain {
	c, err := ParseChain(s)
	if err != nil {
		panic(err)
	}
	return c
}

// autoName returns PA, PB, ..., PZ, P26, P27, ...
func autoName(i int) string {
	if i < 26 {
		return "P" + string(rune('A'+i))
	}
	return fmt.Sprintf("P%d", i)
}

// ErrNotDisjoint is returned when two partitions of a chain share a channel.
var ErrNotDisjoint = errors.New("core: partitions are not disjoint")

// Validate checks Theorem 1 on every partition and pairwise disjointness
// across the chain (the precondition of Theorem 3).
func (c *Chain) Validate() error {
	if len(c.parts) == 0 {
		return errors.New("core: chain has no partitions")
	}
	for _, p := range c.parts {
		if err := p.CheckTheorem1(); err != nil {
			return err
		}
	}
	for i, a := range c.parts {
		for _, b := range c.parts[i+1:] {
			if !a.Disjoint(b) {
				return fmt.Errorf("%w: %s and %s share a channel",
					ErrNotDisjoint, a.Name(), b.Name())
			}
		}
	}
	return nil
}

// Partitions returns the chain's partitions in transition order. The
// returned slice must not be modified.
func (c *Chain) Partitions() []*Partition { return c.parts }

// Len returns the number of partitions.
func (c *Chain) Len() int { return len(c.parts) }

// Channels returns every channel class of the chain, in partition order.
func (c *Chain) Channels() []channel.Class {
	var out []channel.Class
	for _, p := range c.parts {
		out = append(out, p.Channels()...)
	}
	return out
}

// PartitionOf returns the index of the partition containing the exact
// class, or -1 if no partition contains it.
func (c *Chain) PartitionOf(cls channel.Class) int {
	for i, p := range c.parts {
		if p.Contains(cls) {
			return i
		}
	}
	return -1
}

// TurnOptions controls which theorems contribute to turn extraction.
type TurnOptions struct {
	// UITurns enables Theorem 2 (U- and I-turns inside partitions) and
	// the U/I turns arising from Theorem-3 transitions. The paper's
	// Theorem-1-only figures set this false.
	UITurns bool
	// ConsecutiveOnly restricts Theorem-3 transitions to adjacent
	// partitions (Pi -> Pi+1). By the corollary of Theorem 3 transitions
	// may be taken in any ascending order, which is the default (false):
	// every Pi -> Pj with i < j.
	ConsecutiveOnly bool
	// NoTransitions disables Theorem 3 entirely, extracting only
	// intra-partition turns.
	NoTransitions bool
}

// DefaultTurnOptions enables everything the theory permits: Theorems 1-3
// with any-ascending-order transitions.
var DefaultTurnOptions = TurnOptions{UITurns: true}

// Turns extracts the complete allowable turn set of the chain under the
// given options. This reproduces the paper's Figure 8 procedure:
//
//   - Theorem 1: all 90-degree turns inside each partition;
//   - Theorem 2: ascending U/I-turns inside each partition;
//   - Theorem 3: all transitions from each partition to every later
//     partition (or only the next one if ConsecutiveOnly), classified as
//     90-degree, U- or I-turns.
func (c *Chain) Turns(opts TurnOptions) *TurnSet {
	s := NewTurnSet()
	for _, cls := range c.Channels() {
		s.Declare(cls)
	}
	for _, p := range c.parts {
		p.addInnerTurns(s, opts.UITurns)
	}
	if opts.NoTransitions {
		return s
	}
	for i, from := range c.parts {
		for j := i + 1; j < len(c.parts); j++ {
			if opts.ConsecutiveOnly && j != i+1 {
				break
			}
			to := c.parts[j]
			for _, a := range from.Channels() {
				for _, b := range to.Channels() {
					if !opts.UITurns && KindOf(a, b) != Turn90 {
						continue
					}
					s.Add(a, b, ByTheorem3)
				}
			}
		}
	}
	return s
}

// AllTurns is Turns with DefaultTurnOptions.
func (c *Chain) AllTurns() *TurnSet { return c.Turns(DefaultTurnOptions) }

// Turns90 is Turns with U/I-turns disabled (Theorems 1 and 3, 90-degree
// turns only) — the view used when comparing against classic turn models.
func (c *Chain) Turns90() *TurnSet { return c.Turns(TurnOptions{}) }

// Reversed returns a new chain with the partition (transition) order
// reversed. Per Section 5.3.3 this derives a different deadlock-free
// algorithm from the same partitions.
func (c *Chain) Reversed() *Chain {
	parts := make([]*Partition, len(c.parts))
	for i, p := range c.parts {
		parts[len(parts)-1-i] = p
	}
	return &Chain{parts: parts}
}

// MaxChannelsPerPartition returns n+1: the maximum number of channels that
// can be grouped inside a partition of an n-dimensional network with no
// redundancy (note to Theorem 1).
func MaxChannelsPerPartition(n int) int { return n + 1 }

// MinChannelsFullyAdaptive returns (n+1) * 2^(n-1): the paper's minimum
// number of channels providing fully adaptive routing in an n-dimensional
// network (Section 4).
func MinChannelsFullyAdaptive(n int) int {
	if n < 1 {
		return 0
	}
	return (n + 1) << (n - 1)
}

// String renders the chain in the paper's arrow notation.
func (c *Chain) String() string {
	parts := make([]string, len(c.parts))
	for i, p := range c.parts {
		parts[i] = p.String()
	}
	return strings.Join(parts, " -> ")
}

// PlainString renders the chain with VC-1 numbers elided.
func (c *Chain) PlainString() string {
	parts := make([]string, len(c.parts))
	for i, p := range c.parts {
		parts[i] = p.PlainString()
	}
	return strings.Join(parts, " -> ")
}

// Equal reports whether two chains have equal partitions in the same order.
func (c *Chain) Equal(o *Chain) bool {
	if len(c.parts) != len(o.parts) {
		return false
	}
	for i := range c.parts {
		if !c.parts[i].Equal(o.parts[i]) {
			return false
		}
	}
	return true
}
