package core

import (
	"errors"
	"fmt"
	"strings"

	"ebda/internal/channel"
)

// Partition is an ordered set of channel classes that packets may use
// arbitrarily and repeatedly (Definition 2). The order of the channels is
// semantic: it fixes the ascending numbering used by Theorem 2 to decide
// which U- and I-turns along the complete-pair dimension are permitted.
type Partition struct {
	name     string
	channels []channel.Class
}

// NewPartition builds a partition from the given channel classes in order.
// Duplicate or invalid classes are rejected.
func NewPartition(name string, classes ...channel.Class) (*Partition, error) {
	p := &Partition{name: name, channels: append([]channel.Class(nil), classes...)}
	seen := make(map[channel.Class]bool, len(classes))
	for _, c := range classes {
		if !c.Valid() {
			return nil, fmt.Errorf("core: partition %s: invalid channel class %+v", name, c)
		}
		if seen[c] {
			return nil, fmt.Errorf("core: partition %s: duplicate channel %s", name, c)
		}
		seen[c] = true
	}
	return p, nil
}

// MustPartition is NewPartition that panics on error.
func MustPartition(name string, classes ...channel.Class) *Partition {
	p, err := NewPartition(name, classes...)
	if err != nil {
		panic(err)
	}
	return p
}

// ParsePartition builds a partition from the paper's bracket notation,
// e.g. "PA[X1+ Y1+ Z1+ Z1-]" or just "X+ X- Y-" (the name is then empty).
// A trailing "*" on a dimension expands to both directions: "Z1*" means
// "Z1+ Z1-".
func ParsePartition(s string) (*Partition, error) {
	name := ""
	body := strings.TrimSpace(s)
	if i := strings.IndexByte(body, '['); i >= 0 {
		if !strings.HasSuffix(body, "]") {
			return nil, fmt.Errorf("core: malformed partition %q", s)
		}
		name = strings.TrimSpace(body[:i])
		body = body[i+1 : len(body)-1]
	}
	var classes []channel.Class
	for _, f := range strings.Fields(body) {
		if strings.HasSuffix(f, "*") {
			base := f[:len(f)-1]
			plus, err := channel.Parse(base + "+")
			if err != nil {
				return nil, err
			}
			classes = append(classes, plus, plus.Opposite())
			continue
		}
		c, err := channel.Parse(f)
		if err != nil {
			return nil, err
		}
		classes = append(classes, c)
	}
	return NewPartition(name, classes...)
}

// MustParsePartition is ParsePartition that panics on error.
func MustParsePartition(s string) *Partition {
	p, err := ParsePartition(s)
	if err != nil {
		panic(err)
	}
	return p
}

// Name returns the partition's label (PA, PB, ...; may be empty).
func (p *Partition) Name() string { return p.name }

// WithName returns a copy of the partition with a new label.
func (p *Partition) WithName(name string) *Partition {
	return &Partition{name: name, channels: p.channels}
}

// Channels returns the partition's channel classes in order. The returned
// slice must not be modified.
func (p *Partition) Channels() []channel.Class { return p.channels }

// Len returns the number of channel classes in the partition.
func (p *Partition) Len() int { return len(p.channels) }

// Contains reports whether the exact class is a member of the partition.
func (p *Partition) Contains(c channel.Class) bool {
	for _, pc := range p.channels {
		if pc == c {
			return true
		}
	}
	return false
}

// CompletePairDims returns the dimensions for which the partition covers a
// complete D-pair — both positive and negative directions, in any VC or
// parity combination that can overlap on a concrete network (Definition 3).
//
// Parity-disjoint opposite directions (e.g. Xe+ together with Xo-) do NOT
// form a complete pair: no single position class offers both directions, so
// a path cannot reverse within the partition. This is what makes the
// Hamiltonian-path partitioning {Xe+ Xo- Y+} a legal Theorem-1 partition.
func (p *Partition) CompletePairDims() []channel.Dim {
	var dims []channel.Dim
	seen := make(map[channel.Dim]bool)
	for i, a := range p.channels {
		if seen[a.Dim] {
			continue
		}
		for _, b := range p.channels[i+1:] {
			if a.Dim != b.Dim || a.Sign == b.Sign {
				continue
			}
			if !parityCompatible(a, b) {
				continue
			}
			seen[a.Dim] = true
			dims = append(dims, a.Dim)
			break
		}
	}
	return dims
}

// parityCompatible reports whether two opposite-direction classes of the
// same dimension can meet at a common position and hence close a 180-degree
// movement. Classes restricted to complementary parities of the same
// coordinate never meet.
func parityCompatible(a, b channel.Class) bool {
	if a.Par == channel.Any || b.Par == channel.Any {
		return true
	}
	if a.PDim != b.PDim {
		return true
	}
	return a.Par == b.Par
}

// ErrTheorem1 is returned when a partition covers more than one complete
// D-pair, violating Theorem 1.
var ErrTheorem1 = errors.New("core: partition violates Theorem 1 (more than one complete D-pair)")

// CheckTheorem1 verifies the partition covers at most one complete D-pair.
// On failure the returned error wraps ErrTheorem1 and names the offending
// dimensions.
func (p *Partition) CheckTheorem1() error {
	dims := p.CompletePairDims()
	if len(dims) <= 1 {
		return nil
	}
	names := make([]string, len(dims))
	for i, d := range dims {
		names[i] = d.String()
	}
	return fmt.Errorf("%w: partition %s has complete pairs in dimensions %s",
		ErrTheorem1, p.name, strings.Join(names, ", "))
}

// CycleFree reports whether the partition satisfies Theorem 1.
func (p *Partition) CycleFree() bool { return p.CheckTheorem1() == nil }

// Disjoint reports whether two partitions share no overlapping channel
// class (Definition 6). Classes that could denote a common concrete channel
// — same dimension/direction/VC with compatible parities — count as shared.
func (p *Partition) Disjoint(o *Partition) bool {
	for _, a := range p.channels {
		for _, b := range o.channels {
			if a.Overlaps(b) {
				return false
			}
		}
	}
	return true
}

// SubPartition returns a new partition containing only the listed classes,
// which must all be members. Per the corollary of Theorem 1, any
// sub-partition of a cycle-free partition is cycle-free.
func (p *Partition) SubPartition(name string, classes ...channel.Class) (*Partition, error) {
	for _, c := range classes {
		if !p.Contains(c) {
			return nil, fmt.Errorf("core: %s is not a member of partition %s", c, p.name)
		}
	}
	return NewPartition(name, classes...)
}

// InnerTurns returns the turns permitted inside the partition alone:
//
//   - Theorem 1: every ordered pair of channels in different dimensions
//     (all 90-degree turns, usable arbitrarily and repeatedly);
//   - Theorem 2 (if includeUI): along each complete-pair dimension the
//     channels are numbered in partition order and transitions are allowed
//     strictly ascending (yielding the permitted U- and I-turns); along
//     dimensions without a complete pair all I-turns are allowed in both
//     orders (corollary of Theorem 2).
//
// The result is empty of U/I turns when includeUI is false, matching the
// Theorem-1-only view used in several of the paper's figures.
func (p *Partition) InnerTurns(includeUI bool) *TurnSet {
	s := NewTurnSet()
	p.addInnerTurns(s, includeUI)
	return s
}

func (p *Partition) addInnerTurns(s *TurnSet, includeUI bool) {
	for _, c := range p.channels {
		s.Declare(c)
	}
	// Theorem 1: 90-degree turns between different dimensions.
	for _, a := range p.channels {
		for _, b := range p.channels {
			if a.Dim != b.Dim {
				s.Add(a, b, ByTheorem1)
			}
		}
	}
	if !includeUI {
		return
	}
	complete := make(map[channel.Dim]bool)
	for _, d := range p.CompletePairDims() {
		complete[d] = true
	}
	// Group channels by dimension preserving partition order.
	byDim := make(map[channel.Dim][]channel.Class)
	var dimOrder []channel.Dim
	for _, c := range p.channels {
		if _, ok := byDim[c.Dim]; !ok {
			dimOrder = append(dimOrder, c.Dim)
		}
		byDim[c.Dim] = append(byDim[c.Dim], c)
	}
	for _, d := range dimOrder {
		group := byDim[d]
		if len(group) < 2 {
			continue
		}
		if complete[d] {
			// Theorem 2: strictly ascending in partition order.
			for i := 0; i < len(group); i++ {
				for j := i + 1; j < len(group); j++ {
					s.Add(group[i], group[j], ByTheorem2)
				}
			}
		} else {
			// Corollary: single-direction dimensions cannot close a
			// cycle; all I-turns are allowed both ways.
			for _, a := range group {
				for _, b := range group {
					if a != b {
						s.Add(a, b, ByTheorem2)
					}
				}
			}
		}
	}
}

// UITurnCounts returns, for a set of n channels along one complete-pair
// dimension with a channels in the positive and b in the negative direction,
// the number of permitted U- and I-turns under the ascending rule. The paper
// (Figure 4) shows total = n(n-1)/2 = a*b + C(a,2) + C(b,2).
func UITurnCounts(a, b int) (uTurns, iTurns, total int) {
	uTurns = a * b
	iTurns = a*(a-1)/2 + b*(b-1)/2
	total = uTurns + iTurns
	return
}

// String renders the partition in the paper's notation: "PA[X1+ Y1+ Z1*]".
// Complete same-VC pairs are not compressed to "*"; each class prints
// individually for clarity.
func (p *Partition) String() string {
	var b strings.Builder
	if p.name != "" {
		b.WriteString(p.name)
	}
	b.WriteByte('[')
	for i, c := range p.channels {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(c.String())
	}
	b.WriteByte(']')
	return b.String()
}

// PlainString renders the partition with VC-1 numbers elided:
// "PA[X+ X- Y-]".
func (p *Partition) PlainString() string {
	var b strings.Builder
	if p.name != "" {
		b.WriteString(p.name)
	}
	b.WriteByte('[')
	for i, c := range p.channels {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(c.Plain())
	}
	b.WriteByte(']')
	return b.String()
}

// Equal reports whether two partitions contain exactly the same classes in
// the same order (names are ignored).
func (p *Partition) Equal(o *Partition) bool {
	if len(p.channels) != len(o.channels) {
		return false
	}
	for i := range p.channels {
		if p.channels[i] != o.channels[i] {
			return false
		}
	}
	return true
}

// EqualUnordered reports whether two partitions contain the same set of
// classes regardless of order.
func (p *Partition) EqualUnordered(o *Partition) bool {
	if len(p.channels) != len(o.channels) {
		return false
	}
	for _, c := range p.channels {
		if !o.Contains(c) {
			return false
		}
	}
	return true
}
