package core

import (
	"errors"
	"strings"
	"testing"

	"ebda/internal/channel"
)

func TestParseChain(t *testing.T) {
	c := MustParseChain("PA[X+ X- Y-] -> PB[Y+]")
	if c.Len() != 2 {
		t.Fatalf("len = %d", c.Len())
	}
	if c.Partitions()[0].Name() != "PA" || c.Partitions()[1].Name() != "PB" {
		t.Error("names not preserved")
	}
	// Unnamed partitions get PA, PB, ...
	c2 := MustParseChain("X+ Y+ -> X- Y-")
	if c2.Partitions()[0].Name() != "PA" || c2.Partitions()[1].Name() != "PB" {
		t.Error("auto names broken")
	}
}

func TestChainValidation(t *testing.T) {
	// Overlapping partitions are rejected.
	_, err := ParseChain("PA[X+ Y+] -> PB[X+ Y-]")
	if !errors.Is(err, ErrNotDisjoint) {
		t.Errorf("expected ErrNotDisjoint, got %v", err)
	}
	// Theorem-1 violations are rejected.
	_, err = ParseChain("PA[X+ X- Y+ Y-]")
	if !errors.Is(err, ErrTheorem1) {
		t.Errorf("expected ErrTheorem1, got %v", err)
	}
	// Empty chains are rejected.
	if _, err := NewChain(); err == nil {
		t.Error("empty chain should fail")
	}
}

func TestNorthLastTurns(t *testing.T) {
	// Figure 5: PA{X+ X- Y-} -> PB{Y+} yields the North-Last 90-degree
	// turns; NE and NW remain prohibited.
	c := MustParseChain("PA[X+ X- Y-] -> PB[Y+]")
	ts := c.Turns90()
	n90, nU, nI := ts.Counts()
	if n90 != 6 || nU != 0 || nI != 0 {
		t.Fatalf("counts = %d/%d/%d, want 6/0/0", n90, nU, nI)
	}
	got := map[string]bool{}
	for _, turn := range ts.Turns() {
		got[turn.PlainString()] = true
	}
	for _, want := range strings.Fields("WS SE ES SW EN WN") {
		if !got[want] {
			t.Errorf("missing turn %s", want)
		}
	}
	for _, banned := range []string{"NE", "NW"} {
		if got[banned] {
			t.Errorf("turn %s must be prohibited (north-last)", banned)
		}
	}
}

func TestTheorem3UTurns(t *testing.T) {
	// Figure 5(b)/(c): Theorem 2 allows one X U-turn inside PA and
	// Theorem 3 allows S -> N across the transition; N -> S is impossible.
	c := MustParseChain("PA[X+ X- Y-] -> PB[Y+]")
	ts := c.AllTurns()
	yp, ym := channel.New(channel.Y, channel.Plus), channel.New(channel.Y, channel.Minus)
	if !ts.Allows(ym, yp) {
		t.Error("S -> N U-turn via transition should be allowed")
	}
	if ts.Allows(yp, ym) {
		t.Error("N -> S U-turn must be prohibited (no PB -> PA transition)")
	}
	xp, xm := channel.New(channel.X, channel.Plus), channel.New(channel.X, channel.Minus)
	allowed := 0
	if ts.Allows(xp, xm) {
		allowed++
	}
	if ts.Allows(xm, xp) {
		allowed++
	}
	if allowed != 1 {
		t.Errorf("exactly one X U-turn should be allowed, got %d", allowed)
	}
}

func TestConsecutiveOnlyOption(t *testing.T) {
	c := MustParseChain("PA[X+] -> PB[Y+] -> PC[X-]")
	all := c.Turns(TurnOptions{UITurns: true})
	consec := c.Turns(TurnOptions{UITurns: true, ConsecutiveOnly: true})
	xp, xm := channel.New(channel.X, channel.Plus), channel.New(channel.X, channel.Minus)
	if !all.Allows(xp, xm) {
		t.Error("PA -> PC transition should exist with any-ascending order")
	}
	if consec.Allows(xp, xm) {
		t.Error("PA -> PC transition must be absent with consecutive-only")
	}
	if !consec.Allows(xp, channel.New(channel.Y, channel.Plus)) {
		t.Error("PA -> PB transition should exist with consecutive-only")
	}
}

func TestNoTransitionsOption(t *testing.T) {
	c := MustParseChain("PA[X+] -> PB[Y+]")
	ts := c.Turns(TurnOptions{UITurns: true, NoTransitions: true})
	if ts.Len() != 0 {
		t.Errorf("singleton partitions with no transitions should have no turns, got %v", ts)
	}
}

func TestChainReversed(t *testing.T) {
	c := MustParseChain("PA[X+] -> PB[Y+]")
	r := c.Reversed()
	if r.Partitions()[0].Name() != "PB" || r.Partitions()[1].Name() != "PA" {
		t.Error("Reversed order wrong")
	}
	// Reversing twice is identity.
	if !r.Reversed().Equal(c) {
		t.Error("double reverse should equal original")
	}
}

func TestPartitionOf(t *testing.T) {
	c := MustParseChain("PA[X+ Y-] -> PB[X- Y+]")
	if i := c.PartitionOf(channel.New(channel.Y, channel.Plus)); i != 1 {
		t.Errorf("PartitionOf(Y+) = %d", i)
	}
	if i := c.PartitionOf(channel.NewVC(channel.Y, channel.Plus, 2)); i != -1 {
		t.Errorf("PartitionOf(Y2+) = %d, want -1", i)
	}
}

func TestMinChannelsFormula(t *testing.T) {
	want := map[int]int{1: 2, 2: 6, 3: 16, 4: 40, 5: 96}
	for n, w := range want {
		if got := MinChannelsFullyAdaptive(n); got != w {
			t.Errorf("MinChannelsFullyAdaptive(%d) = %d, want %d", n, got, w)
		}
	}
	if MinChannelsFullyAdaptive(0) != 0 {
		t.Error("n=0 should be 0")
	}
	for n := 1; n <= 6; n++ {
		if got := MaxChannelsPerPartition(n); got != n+1 {
			t.Errorf("MaxChannelsPerPartition(%d) = %d", n, got)
		}
	}
}

func TestTurnSetOperations(t *testing.T) {
	a := NewTurnSet()
	b := NewTurnSet()
	e := channel.New(channel.X, channel.Plus)
	n := channel.New(channel.Y, channel.Plus)
	s := channel.New(channel.Y, channel.Minus)
	a.Add(e, n, ByTheorem1)
	b.Add(e, s, ByTheorem3)
	u := a.Union(b)
	if u.Len() != 2 || !u.Allows(e, n) || !u.Allows(e, s) {
		t.Error("Union broken")
	}
	if a.Equal(b) || !a.Equal(a) {
		t.Error("Equal broken")
	}
	if !a.Subset(u) || u.Subset(a) {
		t.Error("Subset broken")
	}
	// Earliest theorem label wins on re-add.
	a.Add(e, n, ByTheorem3)
	if got := a.Turns()[0].Source; got != ByTheorem1 {
		t.Errorf("source after re-add = %v, want T1", got)
	}
	a.Add(e, s, ByTheorem3)
	a.Add(e, s, ByTheorem1)
	for _, turn := range a.Turns() {
		if turn.To == s && turn.Source != ByTheorem1 {
			t.Errorf("upgrade to earlier theorem failed: %v", turn.Source)
		}
	}
}

func TestTurnKinds(t *testing.T) {
	cases := []struct {
		from, to string
		kind     TurnKind
	}{
		{"X+", "Y+", Turn90},
		{"X+", "X-", UTurn},
		{"X1+", "X2-", UTurn},
		{"X1+", "X2+", ITurn},
	}
	for _, tc := range cases {
		got := KindOf(channel.MustParse(tc.from), channel.MustParse(tc.to))
		if got != tc.kind {
			t.Errorf("KindOf(%s, %s) = %v, want %v", tc.from, tc.to, got, tc.kind)
		}
	}
	if Turn90.String() != "90" || UTurn.String() != "U" || ITurn.String() != "I" {
		t.Error("TurnKind.String broken")
	}
}

func TestParseTurnList(t *testing.T) {
	ts, err := ParseTurnList("X+>Y+, Y1->X2+")
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 2 {
		t.Fatalf("len = %d", len(ts))
	}
	if ts[0].Kind() != Turn90 {
		t.Error("first turn should be 90 degree")
	}
	if _, err := ParseTurnList("X+Y+"); err == nil {
		t.Error("missing > should fail")
	}
}

func TestChainString(t *testing.T) {
	c := MustParseChain("PA[X+ X- Y-] -> PB[Y+]")
	if got := c.PlainString(); got != "PA[X+ X- Y-] -> PB[Y+]" {
		t.Errorf("PlainString = %q", got)
	}
	if got := c.String(); got != "PA[X1+ X1- Y1-] -> PB[Y1+]" {
		t.Errorf("String = %q", got)
	}
}

func TestTurnSetByKindAndSource(t *testing.T) {
	c := MustParseChain("PA[X+ X- Y-] -> PB[Y+]")
	ts := c.AllTurns()
	if len(ts.BySource(ByTheorem1)) != 4 {
		t.Errorf("T1 turns = %d, want 4", len(ts.BySource(ByTheorem1)))
	}
	if len(ts.BySource(ByTheorem2)) != 1 {
		t.Errorf("T2 turns = %d, want 1", len(ts.BySource(ByTheorem2)))
	}
	// Theorem 3: X+ -> Y+, X- -> Y+ (90), Y- -> Y+ (U).
	if len(ts.BySource(ByTheorem3)) != 3 {
		t.Errorf("T3 turns = %d, want 3", len(ts.BySource(ByTheorem3)))
	}
	if len(ts.ByKind(UTurn)) != 2 {
		t.Errorf("U turns = %d, want 2", len(ts.ByKind(UTurn)))
	}
}
