package core

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"ebda/internal/channel"
)

func TestNewPartitionRejectsDuplicates(t *testing.T) {
	_, err := NewPartition("P", channel.New(channel.X, channel.Plus), channel.New(channel.X, channel.Plus))
	if err == nil {
		t.Fatal("duplicate channel should be rejected")
	}
}

func TestNewPartitionRejectsInvalid(t *testing.T) {
	_, err := NewPartition("P", channel.Class{})
	if err == nil {
		t.Fatal("invalid class should be rejected")
	}
}

func TestParsePartition(t *testing.T) {
	p := MustParsePartition("PA[X1+ Y1+ Z1*]")
	if p.Name() != "PA" {
		t.Errorf("name = %q", p.Name())
	}
	want := channel.MustParseList("X1+ Y1+ Z1+ Z1-")
	if len(p.Channels()) != len(want) {
		t.Fatalf("channels = %v", p.Channels())
	}
	for i, c := range p.Channels() {
		if c != want[i] {
			t.Errorf("channel %d = %v, want %v", i, c, want[i])
		}
	}
	if _, err := ParsePartition("PA[X1+"); err == nil {
		t.Error("unterminated bracket should fail")
	}
	if _, err := ParsePartition("PA[bogus+]"); err == nil {
		t.Error("bad channel should fail")
	}
}

func TestCompletePairDims(t *testing.T) {
	cases := []struct {
		partition string
		wantDims  int
	}{
		{"[X+ X- Y-]", 1},   // X pair
		{"[X+ Y+]", 0},      // no pair
		{"[X1+ X2- Y+]", 1}, // pair across VCs (Definition 3)
		{"[X1+ X2- Y1+ Y2-]", 2},
		{"[X1+ Y1+ Y1- Y2+ Y2-]", 1}, // multiple pairs in one dim count once
		{"[X+ X- Y+ Y- Z+ Z-]", 3},
	}
	for _, tc := range cases {
		p := MustParsePartition(tc.partition)
		if got := len(p.CompletePairDims()); got != tc.wantDims {
			t.Errorf("%s: complete pair dims = %d, want %d", tc.partition, got, tc.wantDims)
		}
	}
}

func TestTheorem1(t *testing.T) {
	// Paper's note to Theorem 1: {X1+ X2- Y1+ Y2-} is NOT cycle-free —
	// two complete pairs.
	bad := MustParsePartition("[X1+ X2- Y1+ Y2-]")
	if err := bad.CheckTheorem1(); !errors.Is(err, ErrTheorem1) {
		t.Errorf("expected ErrTheorem1, got %v", err)
	}
	// {X1+ Y1+ Y1- Y2+ Y2-} IS cycle-free — one D-pair dimension.
	good := MustParsePartition("[X1+ Y1+ Y1- Y2+ Y2-]")
	if err := good.CheckTheorem1(); err != nil {
		t.Errorf("expected valid, got %v", err)
	}
	if !good.CycleFree() || bad.CycleFree() {
		t.Error("CycleFree disagrees with CheckTheorem1")
	}
}

func TestParityPairsDoNotComplete(t *testing.T) {
	// Hamiltonian-path partition {Xe+ Xo- Y+}: opposite X directions in
	// complementary rows never meet, so no complete pair forms.
	p := MustPartition("PA",
		channel.NewParity(channel.X, channel.Plus, channel.Y, channel.Even),
		channel.NewParity(channel.X, channel.Minus, channel.Y, channel.Odd),
		channel.New(channel.Y, channel.Plus),
	)
	if got := len(p.CompletePairDims()); got != 0 {
		t.Errorf("parity-disjoint opposite channels formed %d pairs", got)
	}
	// Same parity does complete: {Xe+ Xe-}.
	q := MustPartition("PB",
		channel.NewParity(channel.X, channel.Plus, channel.Y, channel.Even),
		channel.NewParity(channel.X, channel.Minus, channel.Y, channel.Even),
	)
	if got := len(q.CompletePairDims()); got != 1 {
		t.Errorf("same-parity opposite channels formed %d pairs, want 1", got)
	}
}

func TestDisjoint(t *testing.T) {
	a := MustParsePartition("PA[X1+ Y1+]")
	b := MustParsePartition("PB[X1- Y2+]")
	c := MustParsePartition("PC[X1+ Z1+]")
	if !a.Disjoint(b) {
		t.Error("PA and PB should be disjoint")
	}
	if a.Disjoint(c) {
		t.Error("PA and PC share X1+")
	}
}

func TestSubPartition(t *testing.T) {
	p := MustParsePartition("PA[X+ X- Y-]")
	sub, err := p.SubPartition("S", channel.New(channel.X, channel.Plus))
	if err != nil {
		t.Fatal(err)
	}
	if !sub.CycleFree() {
		t.Error("sub-partition of a cycle-free partition must be cycle-free")
	}
	if _, err := p.SubPartition("S", channel.New(channel.Y, channel.Plus)); err == nil {
		t.Error("SubPartition with non-member should fail")
	}
}

func TestFigure3Turns(t *testing.T) {
	// P = {X+ X- Y-}: four 90-degree turns WS, SE, ES, SW.
	p := MustParsePartition("[X+ X- Y-]")
	ts := p.InnerTurns(false)
	n90, nU, nI := ts.Counts()
	if n90 != 4 || nU != 0 || nI != 0 {
		t.Fatalf("counts = %d/%d/%d, want 4/0/0", n90, nU, nI)
	}
	for _, want := range []string{"WS", "SE", "ES", "SW"} {
		found := false
		for _, turn := range ts.Turns() {
			if turn.PlainString() == want {
				found = true
			}
		}
		if !found {
			t.Errorf("missing turn %s", want)
		}
	}
}

func TestTheorem2AscendingUTurn(t *testing.T) {
	// Order [X+ X- Y-]: numbering gives exactly the X+ -> X- U-turn.
	p := MustParsePartition("[X+ X- Y-]")
	ts := p.InnerTurns(true)
	xp, xm := channel.New(channel.X, channel.Plus), channel.New(channel.X, channel.Minus)
	if !ts.Allows(xp, xm) {
		t.Error("ascending U-turn X+ -> X- should be allowed")
	}
	if ts.Allows(xm, xp) {
		t.Error("descending U-turn X- -> X+ must be prohibited")
	}
	// Reversing the stated order flips the permitted U-turn.
	q := MustParsePartition("[X- X+ Y-]")
	ts2 := q.InnerTurns(true)
	if !ts2.Allows(xm, xp) || ts2.Allows(xp, xm) {
		t.Error("reversed order should flip the permitted U-turn")
	}
}

func TestFigure4UITurnCounts(t *testing.T) {
	// Three VCs along Y inside one partition: 6 channels, 15 U/I turns
	// (9 U + 6 I), per Figure 4.
	p := MustParsePartition("[Y1* Y2* Y3*]")
	ts := p.InnerTurns(true)
	n90, nU, nI := ts.Counts()
	if n90 != 0 {
		t.Errorf("unexpected 90-degree turns: %d", n90)
	}
	if nU != 9 || nI != 6 {
		t.Errorf("U/I = %d/%d, want 9/6", nU, nI)
	}
	u, i, total := UITurnCounts(3, 3)
	if u != 9 || i != 6 || total != 15 {
		t.Errorf("UITurnCounts(3,3) = %d/%d/%d", u, i, total)
	}
}

func TestUITurnCountsIdentity(t *testing.T) {
	// n(n-1)/2 == ab + C(a,2) + C(b,2) for all small a, b.
	for a := 0; a <= 8; a++ {
		for b := 0; b <= 8; b++ {
			u, i, total := UITurnCounts(a, b)
			n := a + b
			if total != n*(n-1)/2 {
				t.Errorf("a=%d b=%d: total %d != %d", a, b, total, n*(n-1)/2)
			}
			if u+i != total {
				t.Errorf("a=%d b=%d: u+i != total", a, b)
			}
		}
	}
}

func TestITurnsInNonPairDimension(t *testing.T) {
	// A dimension present in one direction only allows all its I-turns in
	// both orders (corollary of Theorem 2).
	p := MustParsePartition("[X1+ X2+ Y-]")
	ts := p.InnerTurns(true)
	x1, x2 := channel.NewVC(channel.X, channel.Plus, 1), channel.NewVC(channel.X, channel.Plus, 2)
	if !ts.Allows(x1, x2) || !ts.Allows(x2, x1) {
		t.Error("both I-turn orders should be allowed in a pair-free dimension")
	}
}

func TestITurnsAscendingInPairDimension(t *testing.T) {
	// With a complete pair present, I-turns follow the ascending order too.
	p := MustParsePartition("[X1+ X1- X2+ Y-]")
	ts := p.InnerTurns(true)
	x1p := channel.NewVC(channel.X, channel.Plus, 1)
	x2p := channel.NewVC(channel.X, channel.Plus, 2)
	if !ts.Allows(x1p, x2p) {
		t.Error("ascending I-turn should be allowed")
	}
	if ts.Allows(x2p, x1p) {
		t.Error("descending I-turn must be prohibited in a complete-pair dimension")
	}
}

func TestPartitionStrings(t *testing.T) {
	p := MustParsePartition("PA[X+ X- Y-]")
	if got := p.String(); got != "PA[X1+ X1- Y1-]" {
		t.Errorf("String = %q", got)
	}
	if got := p.PlainString(); got != "PA[X+ X- Y-]" {
		t.Errorf("PlainString = %q", got)
	}
}

func TestPartitionEqual(t *testing.T) {
	a := MustParsePartition("PA[X+ Y-]")
	b := MustParsePartition("PB[X+ Y-]")
	c := MustParsePartition("PC[Y- X+]")
	if !a.Equal(b) {
		t.Error("names must not affect Equal")
	}
	if a.Equal(c) {
		t.Error("order matters for Equal")
	}
	if !a.EqualUnordered(c) {
		t.Error("EqualUnordered should ignore order")
	}
}

// randomPartition builds a random valid partition over dims 0..2, VCs 1..2.
func randomPartition(r *rand.Rand) *Partition {
	var classes []channel.Class
	seen := map[channel.Class]bool{}
	n := 1 + r.Intn(5)
	for len(classes) < n {
		c := channel.NewVC(channel.Dim(r.Intn(3)), channel.Plus, 1+r.Intn(2))
		if r.Intn(2) == 0 {
			c = c.Opposite()
		}
		if seen[c] {
			continue
		}
		seen[c] = true
		classes = append(classes, c)
	}
	p, _ := NewPartition("R", classes...)
	return p
}

func TestQuickSubPartitionsPreserveTheorem1(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randomPartition(r)
		if p == nil || !p.CycleFree() {
			return true // only the corollary's premise matters
		}
		// Drop one random channel; the rest must stay cycle-free.
		chans := p.Channels()
		if len(chans) < 2 {
			return true
		}
		drop := r.Intn(len(chans))
		var keep []channel.Class
		for i, c := range chans {
			if i != drop {
				keep = append(keep, c)
			}
		}
		sub, err := p.SubPartition("S", keep...)
		return err == nil && sub.CycleFree()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickInnerTurnsNeverCrossDimInUI(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randomPartition(r)
		if p == nil {
			return true
		}
		ts := p.InnerTurns(true)
		for _, turn := range ts.Turns() {
			switch turn.Kind() {
			case Turn90:
				if turn.From.Dim == turn.To.Dim {
					return false
				}
			case UTurn, ITurn:
				if turn.From.Dim != turn.To.Dim {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
