package topology

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ebda/internal/channel"
)

func TestMeshBasics(t *testing.T) {
	m := NewMesh(4, 3)
	if m.Nodes() != 12 || m.Dims() != 2 {
		t.Fatalf("nodes=%d dims=%d", m.Nodes(), m.Dims())
	}
	if m.Size(channel.X) != 4 || m.Size(channel.Y) != 3 {
		t.Error("sizes wrong")
	}
	if m.Wrap(channel.X) || m.Wrap(channel.Y) {
		t.Error("mesh must not wrap")
	}
	if m.String() != "4x3 mesh" {
		t.Errorf("String = %q", m.String())
	}
}

func TestCoordIDRoundTrip(t *testing.T) {
	m := NewMesh(5, 4, 3)
	for id := NodeID(0); int(id) < m.Nodes(); id++ {
		c := m.Coord(id)
		if !m.InBounds(c) {
			t.Fatalf("coord %v out of bounds", c)
		}
		if m.ID(c) != id {
			t.Fatalf("round trip failed for %d -> %v", id, c)
		}
	}
}

func TestMeshNeighbors(t *testing.T) {
	m := NewMesh(3, 3)
	origin := m.ID(Coord{0, 0})
	if _, _, ok := m.Neighbor(origin, channel.X, channel.Minus); ok {
		t.Error("west of origin should not exist in a mesh")
	}
	to, wrapped, ok := m.Neighbor(origin, channel.X, channel.Plus)
	if !ok || wrapped || !m.Coord(to).Equal(Coord{1, 0}) {
		t.Errorf("east of origin = %v wrapped=%v ok=%v", m.Coord(to), wrapped, ok)
	}
	corner := m.ID(Coord{2, 2})
	if _, _, ok := m.Neighbor(corner, channel.Y, channel.Plus); ok {
		t.Error("north of far corner should not exist")
	}
}

func TestTorusWraparound(t *testing.T) {
	tor := NewTorus(4, 4)
	origin := tor.ID(Coord{0, 0})
	to, wrapped, ok := tor.Neighbor(origin, channel.X, channel.Minus)
	if !ok || !wrapped || !tor.Coord(to).Equal(Coord{3, 0}) {
		t.Errorf("wraparound west = %v wrapped=%v ok=%v", tor.Coord(to), wrapped, ok)
	}
	edge := tor.ID(Coord{3, 1})
	to, wrapped, ok = tor.Neighbor(edge, channel.X, channel.Plus)
	if !ok || !wrapped || !tor.Coord(to).Equal(Coord{0, 1}) {
		t.Error("wraparound east broken")
	}
}

func TestLinksCount(t *testing.T) {
	// k x k mesh: 2 * 2 * k * (k-1) unidirectional links.
	m := NewMesh(4, 4)
	if got, want := len(m.Links()), 2*2*4*3; got != want {
		t.Errorf("mesh links = %d, want %d", got, want)
	}
	// k x k torus: 2 * 2 * k * k.
	tor := NewTorus(4, 4)
	if got, want := len(tor.Links()), 2*2*4*4; got != want {
		t.Errorf("torus links = %d, want %d", got, want)
	}
	// Wrap flags appear only on torus links.
	for _, l := range m.Links() {
		if l.Wrap {
			t.Error("mesh link marked wrap")
		}
	}
	wraps := 0
	for _, l := range tor.Links() {
		if l.Wrap {
			wraps++
		}
	}
	if wraps != 2*2*4 {
		t.Errorf("torus wrap links = %d, want 16", wraps)
	}
}

func TestPartialMesh3D(t *testing.T) {
	net := NewPartialMesh3D(3, 3, 2, [][2]int{{1, 1}})
	up := 0
	for _, l := range net.Links() {
		if l.Dim == channel.Z {
			up++
			c := net.Coord(l.From)
			if c[0] != 1 || c[1] != 1 {
				t.Errorf("vertical link at non-elevator %v", c)
			}
		}
	}
	// One elevator column with 2 layers: 1 up + 1 down.
	if up != 2 {
		t.Errorf("vertical links = %d, want 2", up)
	}
	// X/Y links unaffected.
	if !net.HasLink(net.ID(Coord{0, 0, 1}), channel.X, channel.Plus) {
		t.Error("horizontal link missing on upper layer")
	}
}

func TestMinimalOffsetsMesh(t *testing.T) {
	m := NewMesh(5, 5)
	src, dst := m.ID(Coord{1, 1}), m.ID(Coord{4, 0})
	offs := m.MinimalOffsets(src, dst)
	if offs[0] != 3 || offs[1] != -1 {
		t.Errorf("offsets = %v", offs)
	}
	if m.MinimalHops(src, dst) != 4 {
		t.Error("hops wrong")
	}
}

func TestMinimalOffsetsTorus(t *testing.T) {
	tor := NewTorus(8, 8)
	src, dst := tor.ID(Coord{0, 0}), tor.ID(Coord{7, 5})
	offs := tor.MinimalOffsets(src, dst)
	// 0 -> 7 is shorter backwards (-1); 0 -> 5 shorter backwards (-3).
	if offs[0] != -1 || offs[1] != -3 {
		t.Errorf("offsets = %v", offs)
	}
	// Exactly half way: positive direction preferred.
	src, dst = tor.ID(Coord{0, 0}), tor.ID(Coord{4, 0})
	offs = tor.MinimalOffsets(src, dst)
	if offs[0] != 4 {
		t.Errorf("half-way offset = %d, want +4", offs[0])
	}
}

func TestMinimalPathCount(t *testing.T) {
	m := NewMesh(5, 5)
	cases := []struct {
		a, b Coord
		want int
	}{
		{Coord{0, 0}, Coord{1, 0}, 1},
		{Coord{0, 0}, Coord{1, 1}, 2},
		{Coord{0, 0}, Coord{2, 2}, 6},
		{Coord{0, 0}, Coord{4, 4}, 70},
		{Coord{4, 4}, Coord{0, 0}, 70},
		{Coord{0, 0}, Coord{0, 0}, 1},
	}
	for _, tc := range cases {
		if got := m.MinimalPathCount(m.ID(tc.a), m.ID(tc.b)); got != tc.want {
			t.Errorf("paths %v -> %v = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
	m3 := NewMesh(3, 3, 3)
	// (0,0,0) -> (2,2,2): 6!/(2!2!2!) = 90.
	if got := m3.MinimalPathCount(m3.ID(Coord{0, 0, 0}), m3.ID(Coord{2, 2, 2})); got != 90 {
		t.Errorf("3D path count = %d, want 90", got)
	}
}

func TestQuickNeighborSymmetry(t *testing.T) {
	m := NewMesh(6, 5)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		id := NodeID(r.Intn(m.Nodes()))
		d := channel.Dim(r.Intn(2))
		sign := channel.Plus
		if r.Intn(2) == 0 {
			sign = channel.Minus
		}
		to, _, ok := m.Neighbor(id, d, sign)
		if !ok {
			return true
		}
		back, _, ok2 := m.Neighbor(to, d, sign.Opposite())
		return ok2 && back == id
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestQuickTorusOffsetsMinimal(t *testing.T) {
	tor := NewTorus(7, 5)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		src := NodeID(r.Intn(tor.Nodes()))
		dst := NodeID(r.Intn(tor.Nodes()))
		offs := tor.MinimalOffsets(src, dst)
		// Walking the offsets must land on dst.
		c := tor.Coord(src)
		for d, off := range offs {
			k := tor.Size(channel.Dim(d))
			c[d] = ((c[d]+off)%k + k) % k
		}
		if !c.Equal(tor.Coord(dst)) {
			return false
		}
		// No offset may exceed half the ring.
		for d, off := range offs {
			if abs(off) > tor.Size(channel.Dim(d))/2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("size < 2 should panic")
		}
	}()
	NewMesh(1)
}
