package topology

import "fmt"

// This file adds the first non-mesh generator: a canonical dragonfly —
// fully connected groups of routers joined by all-to-all global links —
// expressed directly as an annotated channel dependence graph rather
// than as a coordinate Network. The dragonfly is the classic exerciser
// for the multi-mode verifier because minimal routing over a single
// virtual channel deadlocks (the local-global-local cycle), while the
// textbook two-VC discipline (VC0 before the global hop, VC1 after)
// breaks every cycle; both variants come out of the same generator.

// ChannelGraph is a plain-data annotated CDG: channel count, input and
// output channel ids, and directed dependency edges. It is the bridge
// from topology generators to graphio.New without the topology package
// depending on the verification engine.
type ChannelGraph struct {
	Channels int
	Inputs   []int
	Outputs  []int
	Edges    [][2]int
}

// Dragonfly describes a dragonfly: Groups fully connected groups, each
// of Routers fully connected routers with Terminals terminals apiece.
// Every ordered group pair (a, b) gets one dedicated global channel,
// hosted round-robin over the routers of a.
type Dragonfly struct {
	Groups    int
	Routers   int
	Terminals int
}

// Validate checks the shape is constructible.
func (d Dragonfly) Validate() error {
	if d.Groups < 2 {
		return fmt.Errorf("topology: dragonfly needs >= 2 groups, got %d", d.Groups)
	}
	if d.Routers < 1 || d.Terminals < 1 {
		return fmt.Errorf("topology: dragonfly needs >= 1 router and terminal per group, got %d x %d",
			d.Routers, d.Terminals)
	}
	return nil
}

// terminals returns the system terminal count.
func (d Dragonfly) terminals() int { return d.Groups * d.Routers * d.Terminals }

// Inj returns the injection channel id of terminal k of router r in
// group g. Injection channels are the CDG inputs.
func (d Dragonfly) Inj(g, r, k int) int { return (g*d.Routers+r)*d.Terminals + k }

// Ej returns the ejection channel id mirroring Inj. Ejection channels
// are the CDG outputs.
func (d Dragonfly) Ej(g, r, k int) int { return d.terminals() + d.Inj(g, r, k) }

// Local returns the channel id of virtual channel vc on the directed
// local link from router i to router j (i != j) inside group g. The
// graph has vcs local VCs; vc must be in [0, vcs).
func (d Dragonfly) Local(g, i, j, vc, vcs int) int {
	k := j
	if j > i {
		k = j - 1
	}
	slot := g*d.Routers*(d.Routers-1) + i*(d.Routers-1) + k
	return 2*d.terminals() + slot*vcs + vc
}

// Global returns the channel id of the global link from group a to
// group b (a != b).
func (d Dragonfly) Global(a, b, vcs int) int {
	k := b
	if b > a {
		k = b - 1
	}
	return 2*d.terminals() + d.Groups*d.Routers*(d.Routers-1)*vcs + a*(d.Groups-1) + k
}

// Gateway returns the router of group a hosting the global link toward
// group b.
func (d Dragonfly) Gateway(a, b int) int {
	k := b
	if b > a {
		k = b - 1
	}
	return k % d.Routers
}

// NumChannels returns the channel count of the vcs-VC graph.
func (d Dragonfly) NumChannels(vcs int) int {
	return 2*d.terminals() + d.Groups*d.Routers*(d.Routers-1)*vcs + d.Groups*(d.Groups-1)
}

// ChannelGraph builds the CDG of minimal routing over vcs local virtual
// channels. Every source terminal routes to every destination terminal:
// inside a group, one local hop on VC0; across groups, local to the
// gateway on VC0, the global channel, then local to the final router on
// VC vcs-1. With vcs == 1 the two local stages share channels and the
// classic local-global-local cycle appears; with vcs >= 2 the graph is
// acyclic.
func (d Dragonfly) ChannelGraph(vcs int) (ChannelGraph, error) {
	if err := d.Validate(); err != nil {
		return ChannelGraph{}, err
	}
	if vcs < 1 {
		return ChannelGraph{}, fmt.Errorf("topology: dragonfly needs >= 1 virtual channel, got %d", vcs)
	}
	cg := ChannelGraph{Channels: d.NumChannels(vcs)}
	for g := 0; g < d.Groups; g++ {
		for r := 0; r < d.Routers; r++ {
			for k := 0; k < d.Terminals; k++ {
				cg.Inputs = append(cg.Inputs, d.Inj(g, r, k))
				cg.Outputs = append(cg.Outputs, d.Ej(g, r, k))
			}
		}
	}
	seen := make(map[[2]int]bool)
	add := func(from, to int) {
		e := [2]int{from, to}
		if !seen[e] {
			seen[e] = true
			cg.Edges = append(cg.Edges, e)
		}
	}
	// route emits the channel chain from source router (g, r) to the
	// ejection channels of destination router (g2, r2).
	route := func(g, r, g2, r2 int) []int {
		var hops []int
		if g == g2 {
			if r != r2 {
				hops = append(hops, d.Local(g, r, r2, 0, vcs))
			}
			return hops
		}
		if gw := d.Gateway(g, g2); r != gw {
			hops = append(hops, d.Local(g, r, gw, 0, vcs))
		}
		hops = append(hops, d.Global(g, g2, vcs))
		if gw := d.Gateway(g2, g); gw != r2 {
			hops = append(hops, d.Local(g2, gw, r2, vcs-1, vcs))
		}
		return hops
	}
	for g := 0; g < d.Groups; g++ {
		for r := 0; r < d.Routers; r++ {
			for g2 := 0; g2 < d.Groups; g2++ {
				for r2 := 0; r2 < d.Routers; r2++ {
					hops := route(g, r, g2, r2)
					for k := 0; k < d.Terminals; k++ {
						prev := d.Inj(g, r, k)
						for _, h := range hops {
							add(prev, h)
							prev = h
						}
						for k2 := 0; k2 < d.Terminals; k2++ {
							add(prev, d.Ej(g2, r2, k2))
						}
					}
				}
			}
		}
	}
	return cg, nil
}
