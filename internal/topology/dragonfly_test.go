// External test package: the dragonfly exerciser feeds its CDG through
// graphio into the multi-mode verifier, and graphio depends on cdg,
// which imports topology.
package topology_test

import (
	"testing"

	"ebda/internal/cdg"
	"ebda/internal/graphio"
	"ebda/internal/topology"
)

// dragonflyGraph bridges the plain-data ChannelGraph into a validated
// graphio.Graph.
func dragonflyGraph(t *testing.T, d topology.Dragonfly, vcs int) *graphio.Graph {
	t.Helper()
	cg, err := d.ChannelGraph(vcs)
	if err != nil {
		t.Fatal(err)
	}
	g, err := graphio.New(cg.Channels, cg.Inputs, cg.Outputs, cg.Edges)
	if err != nil {
		t.Fatalf("generator produced an invalid graph: %v", err)
	}
	return g
}

func TestDragonflyValidate(t *testing.T) {
	bad := []topology.Dragonfly{
		{Groups: 1, Routers: 2, Terminals: 1},
		{Groups: 2, Routers: 0, Terminals: 1},
		{Groups: 2, Routers: 1, Terminals: 0},
	}
	for _, d := range bad {
		if _, err := d.ChannelGraph(1); err == nil {
			t.Fatalf("%+v accepted", d)
		}
	}
	if _, err := (topology.Dragonfly{Groups: 2, Routers: 1, Terminals: 1}).ChannelGraph(0); err == nil {
		t.Fatal("0 VCs accepted")
	}
}

// TestDragonflySingleVCDeadlocks pins the classic result: minimal
// routing over one virtual channel closes a local-global-local cycle.
func TestDragonflySingleVCDeadlocks(t *testing.T) {
	g := dragonflyGraph(t, topology.Dragonfly{Groups: 4, Routers: 2, Terminals: 1}, 1)
	rep, err := g.Verify(cdg.ModeLoop, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK || rep.Reason != cdg.ReasonCycle || len(rep.Cycle) == 0 {
		t.Fatalf("single-VC dragonfly verified: %+v", rep)
	}
	// The witness must alternate through at least one global channel:
	// purely local cycles cannot occur inside a fully connected group.
	d := topology.Dragonfly{Groups: 4, Routers: 2, Terminals: 1}
	globalBase := d.Global(0, 1, 1)
	hasGlobal := false
	for _, c := range rep.Cycle {
		if c >= globalBase-1 { // globals occupy the top id range
			hasGlobal = true
		}
	}
	if !hasGlobal {
		t.Fatalf("cycle %v crosses no global channel", rep.Cycle)
	}
}

// TestDragonflyTwoVCVerifies pins the fix: VC0 before the global hop,
// VC1 after, and every mode verifies.
func TestDragonflyTwoVCVerifies(t *testing.T) {
	d := topology.Dragonfly{Groups: 4, Routers: 2, Terminals: 2}
	g := dragonflyGraph(t, d, 2)
	for _, mode := range []cdg.GraphMode{cdg.ModeLoop, cdg.ModeLiveness, cdg.ModeSubrel} {
		rep, err := g.Verify(mode, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.OK {
			t.Fatalf("%s: %+v", mode, rep)
		}
	}
	// The VC1 local channels plus the global channels form a valid
	// escape set under the Duato condition.
	var escape []int
	for grp := 0; grp < d.Groups; grp++ {
		for i := 0; i < d.Routers; i++ {
			for j := 0; j < d.Routers; j++ {
				if i != j {
					escape = append(escape, d.Local(grp, i, j, 1, 2))
				}
			}
		}
	}
	for a := 0; a < d.Groups; a++ {
		for b := 0; b < d.Groups; b++ {
			if a != b {
				escape = append(escape, d.Global(a, b, 2))
			}
		}
	}
	rep, err := g.Verify(cdg.ModeEscape, escape)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK {
		t.Fatalf("escape: %+v", rep)
	}
}

// TestDragonflyRoundTrip exports the generated CDG through graphio and
// reimports it byte-stably.
func TestDragonflyRoundTrip(t *testing.T) {
	g := dragonflyGraph(t, topology.Dragonfly{Groups: 3, Routers: 2, Terminals: 1}, 2)
	data := g.ExportCDG()
	g2, err := graphio.ParseCDG(data)
	if err != nil {
		t.Fatal(err)
	}
	if got := string(g2.ExportCDG()); got != string(data) {
		t.Fatalf("round trip drifted:\n%s", got)
	}
	rep, err := g2.Verify(cdg.ModeLiveness, nil)
	if err != nil || !rep.OK {
		t.Fatalf("reimported graph: %+v err=%v", rep, err)
	}
}

// TestDragonflyChannelLayout pins the id layout so exported graphs stay
// stable across refactors.
func TestDragonflyChannelLayout(t *testing.T) {
	d := topology.Dragonfly{Groups: 3, Routers: 2, Terminals: 2}
	nt := 3 * 2 * 2
	if got := d.Inj(0, 0, 0); got != 0 {
		t.Fatalf("Inj(0,0,0) = %d", got)
	}
	if got := d.Inj(2, 1, 1); got != nt-1 {
		t.Fatalf("Inj(2,1,1) = %d", got)
	}
	if got := d.Ej(0, 0, 0); got != nt {
		t.Fatalf("Ej(0,0,0) = %d", got)
	}
	if got := d.Local(0, 0, 1, 0, 2); got != 2*nt {
		t.Fatalf("Local(0,0,1,0) = %d", got)
	}
	wantGlobalBase := 2*nt + 3*2*1*2
	if got := d.Global(0, 1, 2); got != wantGlobalBase {
		t.Fatalf("Global(0,1) = %d", got)
	}
	if got := d.NumChannels(2); got != wantGlobalBase+3*2 {
		t.Fatalf("NumChannels = %d", got)
	}
	// Distinct ids for every channel.
	cg, err := d.ChannelGraph(2)
	if err != nil {
		t.Fatal(err)
	}
	if cg.Channels != d.NumChannels(2) {
		t.Fatalf("graph channels %d != layout %d", cg.Channels, d.NumChannels(2))
	}
}
