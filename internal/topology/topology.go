// Package topology models the direct-network topologies the paper assumes
// (Assumption 3): n-dimensional meshes, k-ary n-cubes (tori), and irregular
// variants such as vertically partially connected 3D networks, for arbitrary
// n and k.
//
// A Network is a set of nodes at integer coordinates plus the unidirectional
// physical links between neighbours. Virtual channels are layered on top by
// internal/cdg and internal/sim; the topology only describes geometry.
package topology

import (
	"fmt"
	"strings"
	"sync"

	"ebda/internal/channel"
)

// NodeID identifies a node; IDs are dense in [0, Nodes()).
type NodeID int

// Coord is a node position, one integer per dimension.
type Coord []int

// Equal reports whether two coordinates are identical.
func (c Coord) Equal(o Coord) bool {
	if len(c) != len(o) {
		return false
	}
	for i := range c {
		if c[i] != o[i] {
			return false
		}
	}
	return true
}

// Clone returns a copy of the coordinate.
func (c Coord) Clone() Coord { return append(Coord(nil), c...) }

// String renders the coordinate as "(x,y,z)".
func (c Coord) String() string {
	parts := make([]string, len(c))
	for i, v := range c {
		parts[i] = fmt.Sprintf("%d", v)
	}
	return "(" + strings.Join(parts, ",") + ")"
}

// Link is one unidirectional physical link between neighbouring nodes.
type Link struct {
	From, To NodeID
	// Dim and Sign give the direction of travel along the link. For a
	// torus wraparound link the sign still reflects logical direction
	// (the +k-1 -> 0 link has Sign Plus).
	Dim  channel.Dim
	Sign channel.Sign
	// Wrap marks torus wraparound links.
	Wrap bool
}

// LinkFilter decides whether a physical link exists; used for irregular
// networks. It receives the source coordinate and the direction.
type LinkFilter func(from Coord, dim channel.Dim, sign channel.Sign) bool

// Network is a (possibly irregular) n-dimensional grid network.
type Network struct {
	name    string
	dims    []int
	wrap    []bool
	strides []int
	nodes   int
	filter  LinkFilter

	// linksOnce/links memoize the link enumeration: the geometry is
	// immutable after build, and verification workspaces, caches and
	// graph constructors all consume the same list.
	linksOnce sync.Once
	links     []Link
}

// NewMesh returns an n-dimensional mesh with the given per-dimension sizes,
// e.g. NewMesh(8, 8) for an 8x8 2D mesh.
func NewMesh(sizes ...int) *Network {
	return build("mesh", sizes, make([]bool, len(sizes)), nil)
}

// NewTorus returns a k-ary n-cube: every dimension has wraparound links.
func NewTorus(sizes ...int) *Network {
	wrap := make([]bool, len(sizes))
	for i := range wrap {
		wrap[i] = true
	}
	return build("torus", sizes, wrap, nil)
}

// NewIrregular returns a mesh with the given sizes where links exist only
// where the filter allows. The filter is consulted for each direction of
// each potential link independently.
func NewIrregular(name string, sizes []int, filter LinkFilter) *Network {
	return build(name, sizes, make([]bool, len(sizes)), filter)
}

// NewPartialMesh3D returns a vertically partially connected 3D network
// (as targeted by Elevator-First routing): an X x Y x Z stack of 2D meshes
// where vertical (Z) links exist only at the listed elevator columns,
// given as [x, y] positions.
func NewPartialMesh3D(x, y, z int, elevators [][2]int) *Network {
	evs := make(map[[2]int]bool, len(elevators))
	for _, e := range elevators {
		evs[e] = true
	}
	filter := func(from Coord, dim channel.Dim, sign channel.Sign) bool {
		if dim != channel.Z {
			return true
		}
		return evs[[2]int{from[0], from[1]}]
	}
	return build("partial-3d", []int{x, y, z}, []bool{false, false, false}, filter)
}

// WithoutLinks returns a copy of the network in which the listed
// unidirectional links are faulty (absent). Fault injection composes with
// any existing irregularity filter. Links are identified by their source
// coordinate and direction.
func (n *Network) WithoutLinks(faults []Link) *Network {
	type key struct {
		from NodeID
		dim  channel.Dim
		sign channel.Sign
	}
	bad := make(map[key]bool, len(faults))
	for _, f := range faults {
		bad[key{f.From, f.Dim, f.Sign}] = true
	}
	inner := n.filter
	filter := func(from Coord, dim channel.Dim, sign channel.Sign) bool {
		if inner != nil && !inner(from, dim, sign) {
			return false
		}
		// Reconstruct the source node ID from the coordinate.
		id := 0
		for i, x := range from {
			id += x * n.strides[i]
		}
		return !bad[key{NodeID(id), dim, sign}]
	}
	net := build(n.name+"-faulty", n.dims, n.wrap, filter)
	return net
}

func build(name string, sizes []int, wrap []bool, filter LinkFilter) *Network {
	if len(sizes) == 0 {
		panic("topology: network needs at least one dimension")
	}
	n := 1
	strides := make([]int, len(sizes))
	for i, s := range sizes {
		if s < 2 {
			panic(fmt.Sprintf("topology: dimension %d size %d < 2", i, s))
		}
		strides[i] = n
		n *= s
	}
	return &Network{
		name:    name,
		dims:    append([]int(nil), sizes...),
		wrap:    append([]bool(nil), wrap...),
		strides: strides,
		nodes:   n,
		filter:  filter,
	}
}

// Name returns the topology family name ("mesh", "torus", ...).
func (n *Network) Name() string { return n.name }

// Regular reports whether the network is fully described by its sizes and
// wraparound flags (no irregularity filter). Regular networks of equal
// shape have identical link sets, which verification caches exploit.
func (n *Network) Regular() bool { return n.filter == nil }

// Dims returns the number of dimensions.
func (n *Network) Dims() int { return len(n.dims) }

// Size returns the extent of one dimension.
func (n *Network) Size(d channel.Dim) int { return n.dims[d] }

// Sizes returns the per-dimension extents. The slice must not be modified.
func (n *Network) Sizes() []int { return n.dims }

// Wrap reports whether a dimension has wraparound (torus) links.
func (n *Network) Wrap(d channel.Dim) bool { return n.wrap[d] }

// Nodes returns the number of nodes.
func (n *Network) Nodes() int { return n.nodes }

// Coord returns the coordinate of a node ID.
func (n *Network) Coord(id NodeID) Coord {
	c := make(Coord, len(n.dims))
	v := int(id)
	for i, s := range n.dims {
		c[i] = v % s
		v /= s
	}
	return c
}

// ID returns the node ID for a coordinate.
func (n *Network) ID(c Coord) NodeID {
	v := 0
	for i, x := range c {
		v += x * n.strides[i]
	}
	return NodeID(v)
}

// InBounds reports whether the coordinate lies inside the network.
func (n *Network) InBounds(c Coord) bool {
	if len(c) != len(n.dims) {
		return false
	}
	for i, x := range c {
		if x < 0 || x >= n.dims[i] {
			return false
		}
	}
	return true
}

// Neighbor returns the node reached from id by one hop in direction
// (d, sign) and whether that link exists (considering bounds, wraparound,
// and the irregularity filter). wrapped reports whether the hop used a
// wraparound link.
func (n *Network) Neighbor(id NodeID, d channel.Dim, sign channel.Sign) (to NodeID, wrapped, ok bool) {
	c := n.Coord(id)
	if n.filter != nil && !n.filter(c, d, sign) {
		return 0, false, false
	}
	x := c[int(d)] + int(sign)
	switch {
	case x < 0:
		if !n.wrap[d] {
			return 0, false, false
		}
		x = n.dims[d] - 1
		wrapped = true
	case x >= n.dims[d]:
		if !n.wrap[d] {
			return 0, false, false
		}
		x = 0
		wrapped = true
	}
	c[int(d)] = x
	return n.ID(c), wrapped, true
}

// HasLink reports whether the unidirectional link from id in direction
// (d, sign) exists.
func (n *Network) HasLink(id NodeID, d channel.Dim, sign channel.Sign) bool {
	_, _, ok := n.Neighbor(id, d, sign)
	return ok
}

// FindLink resolves the unidirectional link leaving id in direction
// (d, sign) to its canonical Link value (To and Wrap filled in), or false
// if no such link exists. Delta diffs identify faulty links by source and
// direction; this helper normalises that identification to the same Link
// values Links() enumerates.
func (n *Network) FindLink(id NodeID, d channel.Dim, sign channel.Sign) (Link, bool) {
	if int(id) < 0 || int(id) >= n.nodes || int(d) < 0 || int(d) >= len(n.dims) {
		return Link{}, false
	}
	to, wrapped, ok := n.Neighbor(id, d, sign)
	if !ok {
		return Link{}, false
	}
	return Link{From: id, To: to, Dim: d, Sign: sign, Wrap: wrapped}, true
}

// Links returns every unidirectional physical link in the network, ordered
// by source node, then dimension, then sign (+ before -). The list is
// computed once and shared; the returned slice must not be modified.
func (n *Network) Links() []Link {
	n.linksOnce.Do(func() {
		var links []Link
		for id := NodeID(0); int(id) < n.nodes; id++ {
			for d := 0; d < len(n.dims); d++ {
				for _, sign := range []channel.Sign{channel.Plus, channel.Minus} {
					to, wrapped, ok := n.Neighbor(id, channel.Dim(d), sign)
					if !ok {
						continue
					}
					links = append(links, Link{
						From: id, To: to,
						Dim: channel.Dim(d), Sign: sign,
						Wrap: wrapped,
					})
				}
			}
		}
		n.links = links
	})
	return n.links
}

// MinimalOffsets returns, per dimension, the signed hop count of a minimal
// route from src to dst. In wraparound dimensions the shorter way around is
// chosen (ties resolve to the positive direction).
func (n *Network) MinimalOffsets(src, dst NodeID) []int {
	a, b := n.Coord(src), n.Coord(dst)
	out := make([]int, len(n.dims))
	for i := range n.dims {
		delta := b[i] - a[i]
		if n.wrap[i] {
			k := n.dims[i]
			alt := delta
			switch {
			case delta > 0 && delta > k/2:
				alt = delta - k
			case delta < 0 && -delta > k/2:
				alt = delta + k
			case delta < 0 && -delta == k-(-delta): // unreachable; keep delta
			}
			if abs(alt) < abs(delta) || (abs(alt) == abs(delta) && alt > 0) {
				delta = alt
			}
		}
		out[i] = delta
	}
	return out
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// MinimalHops returns the length of a minimal route from src to dst.
func (n *Network) MinimalHops(src, dst NodeID) int {
	total := 0
	for _, d := range n.MinimalOffsets(src, dst) {
		total += abs(d)
	}
	return total
}

// MinimalPathCount returns the number of distinct minimal direction
// sequences from src to dst: the multinomial coefficient over the
// per-dimension offsets. This is the denominator of the paper's "fully
// adaptive" property.
func (n *Network) MinimalPathCount(src, dst NodeID) int {
	offs := n.MinimalOffsets(src, dst)
	total := 0
	for _, d := range offs {
		total += abs(d)
	}
	count := 1
	remaining := total
	for _, d := range offs {
		count *= binomial(remaining, abs(d))
		remaining -= abs(d)
	}
	return count
}

func binomial(n, k int) int {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	r := 1
	for i := 1; i <= k; i++ {
		r = r * (n - k + i) / i
	}
	return r
}

// String describes the network, e.g. "8x8 mesh".
func (n *Network) String() string {
	parts := make([]string, len(n.dims))
	for i, s := range n.dims {
		parts[i] = fmt.Sprintf("%d", s)
	}
	return strings.Join(parts, "x") + " " + n.name
}
