package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"ebda/internal/cdg"
)

// escapeOKSpec is the canonical Duato exerciser from the graphio
// goldens: a cyclic adaptive core 2<->3 with escape channel 4 draining
// to output 5.
const escapeOKSpec = `{"channels":6,"inputs":[0,1],"outputs":[5],"edges":[[0,2],[1,3],[2,3],[2,4],[3,2],[3,4],[4,5]]}`

const escapeOKText = "6\n0 1\n5\n0 2\n1 3\n2 3 4\n3 2 4\n4 5\n"

func graphBody(mode, extra string) string {
	return `{"graph":` + escapeOKSpec + `,"mode":"` + mode + `"` + extra + `}`
}

func TestGraphEndpoint(t *testing.T) {
	_, ts := testServer(t, Config{})
	body := graphBody("liveness", "")

	status, raw := post(t, ts, "/v1/verify/graph", body)
	if status != 200 {
		t.Fatalf("POST /v1/verify/graph = %d: %s", status, raw)
	}
	var first GraphVerifyResponse
	if err := json.Unmarshal(raw, &first); err != nil {
		t.Fatal(err)
	}
	if first.OK || first.Reason != cdg.ReasonCycle {
		t.Fatalf("cyclic region accepted: %+v", first)
	}
	if first.Provenance != provComputed {
		t.Fatalf("first verdict provenance = %q, want %q", first.Provenance, provComputed)
	}
	if first.Channels != 6 || first.Edges != 7 || first.Key == "" || first.Cycle == "" || first.Path == "" {
		t.Fatalf("response missing fields: %+v", first)
	}

	// The identical request again: answered from the mode cache, with
	// verdict fields byte-identical once provenance is canonicalized.
	status, raw2 := post(t, ts, "/v1/verify/graph", body)
	if status != 200 {
		t.Fatalf("repeat POST = %d: %s", status, raw2)
	}
	var second GraphVerifyResponse
	if err := json.Unmarshal(raw2, &second); err != nil {
		t.Fatal(err)
	}
	if second.Provenance != provCache {
		t.Fatalf("repeat verdict provenance = %q, want %q", second.Provenance, provCache)
	}
	first.Provenance, second.Provenance = "", ""
	a, _ := json.Marshal(first)
	b, _ := json.Marshal(second)
	if !bytes.Equal(a, b) {
		t.Fatalf("repeat verdict differs:\nfirst  %s\nsecond %s", a, b)
	}
}

// TestGraphTextAndJSONAgree pins that the constellation text form and
// the structured form of the same graph share the verdict, the cache
// key, and therefore the cache entry.
func TestGraphTextAndJSONAgree(t *testing.T) {
	_, ts := testServer(t, Config{})
	textBody, _ := json.Marshal(GraphVerifyRequest{CDG: escapeOKText, Mode: "escape", Escape: []int{4}})
	status, raw := post(t, ts, "/v1/verify/graph", string(textBody))
	if status != 200 {
		t.Fatalf("text form = %d: %s", status, raw)
	}
	var tr GraphVerifyResponse
	if err := json.Unmarshal(raw, &tr); err != nil {
		t.Fatal(err)
	}
	if !tr.OK || tr.Provenance != provComputed {
		t.Fatalf("escape verdict: %+v", tr)
	}

	status, raw = post(t, ts, "/v1/verify/graph", graphBody("escape", `,"escape":[4]`))
	if status != 200 {
		t.Fatalf("structured form = %d: %s", status, raw)
	}
	var jr GraphVerifyResponse
	if err := json.Unmarshal(raw, &jr); err != nil {
		t.Fatal(err)
	}
	if jr.Provenance != provCache {
		t.Fatalf("structured form missed the cache: %+v", jr)
	}
	if jr.Key != tr.Key || jr.OK != tr.OK {
		t.Fatalf("encodings disagree:\ntext %+v\njson %+v", tr, jr)
	}
}

func TestGraphAllModes(t *testing.T) {
	_, ts := testServer(t, Config{})
	cases := []struct {
		body   string
		ok     bool
		reason string
	}{
		{graphBody("loop", ""), false, cdg.ReasonCycle},
		{graphBody("liveness", ""), false, cdg.ReasonCycle},
		{graphBody("escape", `,"escape":[4]`), true, ""},
		{graphBody("subrel", ""), true, ""},
	}
	keys := make(map[string]string)
	for _, tc := range cases {
		status, raw := post(t, ts, "/v1/verify/graph", tc.body)
		if status != 200 {
			t.Fatalf("%s = %d: %s", tc.body, status, raw)
		}
		var resp GraphVerifyResponse
		if err := json.Unmarshal(raw, &resp); err != nil {
			t.Fatal(err)
		}
		if resp.OK != tc.ok || resp.Reason != tc.reason {
			t.Fatalf("%s: %+v", tc.body, resp)
		}
		if prev, dup := keys[resp.Key]; dup {
			t.Fatalf("mode %s shares cache key %s with mode %s", resp.Mode, resp.Key, prev)
		}
		keys[resp.Key] = resp.Mode
		if resp.Mode == "subrel" && resp.SubrelationEdges == 0 {
			t.Fatalf("subrel verdict without subrelation: %+v", resp)
		}
	}
}

func TestGraphBadRequests(t *testing.T) {
	_, ts := testServer(t, Config{})
	huge := `{"graph":{"channels":5000,"inputs":[],"outputs":[],"edges":[]},"mode":"loop"}`
	cases := []struct {
		name string
		body string
	}{
		{"unknown field", `{"graph":` + escapeOKSpec + `,"mode":"loop","frob":1}`},
		{"both encodings", `{"graph":` + escapeOKSpec + `,"cdg":"1\n\n\n","mode":"loop"}`},
		{"no graph", `{"mode":"loop"}`},
		{"bad mode", `{"graph":` + escapeOKSpec + `,"mode":"bogus"}`},
		{"escape without set", graphBody("escape", "")},
		{"escape out of range", graphBody("escape", `,"escape":[99]`)},
		{"channels over limit", huge},
		{"cdg parse error", `{"cdg":"2\n9\n\n","mode":"loop"}`},
		{"edge out of range", `{"graph":{"channels":2,"inputs":[],"outputs":[],"edges":[[0,7]]},"mode":"loop"}`},
		{"trailing garbage", graphBody("loop", "") + `{}`},
	}
	for _, tc := range cases {
		status, raw := post(t, ts, "/v1/verify/graph", tc.body)
		if status != 400 {
			t.Fatalf("%s: status %d: %s", tc.name, status, raw)
		}
	}
	resp, err := ts.Client().Get(ts.URL + "/v1/verify/graph")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 405 {
		t.Fatalf("GET = %d, want 405", resp.StatusCode)
	}
}

// TestGraphDraining pins that the graph pipeline shares the admission
// machinery: a draining server sheds graph requests with 503.
func TestGraphDraining(t *testing.T) {
	s, ts := testServer(t, Config{})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	status, raw := post(t, ts, "/v1/verify/graph", graphBody("loop", ""))
	if status != 503 {
		t.Fatalf("draining server answered %d: %s", status, raw)
	}
	if !strings.Contains(string(raw), "draining") {
		t.Fatalf("error body: %s", raw)
	}
}
