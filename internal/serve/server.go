package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"time"

	"ebda/internal/cdg"
	"ebda/internal/obs"
	"ebda/internal/obs/trace"
	"ebda/internal/partstrat"
)

// Backpressure sentinels. Handlers map them to HTTP statuses
// (ErrQueueFull -> 429, ErrDraining -> 503); embedders that submit work
// directly can test for them with errors.Is.
var (
	ErrQueueFull = errors.New("serve: admission queue full")
	ErrDraining  = errors.New("serve: server draining")
)

// Config sizes the admission pipeline.
type Config struct {
	// Workers is the verification worker pool size (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds verifications admitted but not yet running
	// (default 64). Past it, requests get 429.
	QueueDepth int
	// Timeout bounds each request end to end (default 10s). It also
	// bounds a coalesced flight's computation.
	Timeout time.Duration
	// Jobs is the intra-verification parallelism handed to the engine
	// (default 1: the pool parallelizes across requests, so per-request
	// parallelism only helps when the server is idle).
	Jobs int
	// Cluster, when non-nil, shards the verify-cache keyspace across a
	// replica ring (see cluster.go). Validate it before constructing the
	// server.
	Cluster *ClusterConfig
	// TraceSample retains 1 in N finished request traces in the flight
	// recorder's sampled main lane (default 16; negative disables
	// sampling — the slow/error lane still captures).
	TraceSample int
	// TraceSlow is the latency past which a request's trace is always
	// captured (default 250ms; negative disables latency-based capture —
	// 5xx traces are still captured).
	TraceSlow time.Duration
	// Tracer overrides the tracer built from TraceSample/TraceSlow.
	// Harnesses running several replicas in one process give each its
	// own fragment name and share a recorder.
	Tracer *trace.Tracer
	// Metrics supplies this replica's snapshot for /v1/peer/metrics and
	// the /v1/cluster/metrics fan-out (default: the process-wide
	// obs.Default registry).
	Metrics func() obs.Snapshot
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.Timeout <= 0 {
		c.Timeout = 10 * time.Second
	}
	if c.Jobs <= 0 {
		c.Jobs = 1
	}
	if c.TraceSample == 0 {
		c.TraceSample = 16
	}
	if c.TraceSlow == 0 {
		c.TraceSlow = trace.DefaultSlowThreshold
	}
	if c.Metrics == nil {
		c.Metrics = func() obs.Snapshot { return obs.Default.Snapshot() }
	}
	return c
}

// Resolved returns the configuration with defaults applied: the worker
// pool size, queue depth, timeout and jobs value the server actually
// runs with. Benchmark harnesses record it so snapshots never carry the
// zero-sentinels of an unconfigured field.
func (c Config) Resolved() Config { return c.withDefaults() }

// Server is the verification service: decoded requests are admitted to a
// bounded queue, executed by a fixed worker pool through the cached
// context-aware verify path, and coalesced through a singleflight group.
// Create with New, mount with Register, stop with Shutdown.
type Server struct {
	cfg     Config
	nets    *networkCache
	cache   *cdg.VerifyCache
	modes   *cdg.ModeCache
	flight  *flightGroup[cdg.Report]
	gflight *flightGroup[cdg.ModeReport]
	cluster *clusterPeers // nil outside cluster mode
	tracer  *trace.Tracer
	queue   chan func()
	workers sync.WaitGroup

	mu       sync.RWMutex
	draining bool
}

// New starts the worker pool and returns a ready server. It serves
// through cdg.DefaultCache, so verdicts are shared with any in-process
// engine user.
func New(cfg Config) *Server {
	return newServer(cfg, cdg.DefaultCache)
}

// NewReplica is New against an explicit cache. Cluster harnesses run
// several replicas in one process; each needs a private cache for the
// ring's ownership semantics to be observable (and testable).
func NewReplica(cfg Config, cache *cdg.VerifyCache) *Server {
	return newServer(cfg, cache)
}

// newServer is New against an explicit cache (tests isolate themselves
// from the process-wide one). It panics on an invalid cluster config —
// callers validate with ClusterConfig.Validate before constructing.
func newServer(cfg Config, cache *cdg.VerifyCache) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		nets:    newNetworkCache(),
		cache:   cache,
		modes:   cdg.DefaultModeCache,
		flight:  newFlightGroup[cdg.Report](),
		gflight: newFlightGroup[cdg.ModeReport](),
		queue:   make(chan func(), cfg.QueueDepth),
	}
	if cfg.Cluster != nil {
		s.cluster = newClusterPeers(cfg.Cluster)
	}
	if s.tracer = cfg.Tracer; s.tracer == nil {
		fragment := "local"
		if cfg.Cluster != nil {
			fragment = cfg.Cluster.Self
		}
		s.tracer = trace.New(trace.Config{
			Fragment:      fragment,
			SampleEvery:   cfg.TraceSample,
			SlowThreshold: cfg.TraceSlow,
		})
	}
	s.workers.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go func() {
			defer s.workers.Done()
			for task := range s.queue {
				task()
			}
		}()
	}
	return s
}

// Register mounts the API on mux.
func (s *Server) Register(mux *http.ServeMux) {
	mux.HandleFunc("/v1/verify", s.handleVerify)
	mux.HandleFunc("/v1/verify/delta", s.handleDelta)
	mux.HandleFunc("/v1/verify/graph", s.handleGraph)
	mux.HandleFunc("/v1/design", s.handleDesign)
	mux.HandleFunc("/v1/batch", s.handleBatch)
	mux.HandleFunc("GET /v1/peer/lookup/{key}", s.handlePeerLookup)
	mux.HandleFunc("GET /v1/peer/metrics", s.handlePeerMetrics)
	mux.HandleFunc("GET /v1/cluster/metrics", s.handleClusterMetrics)
}

// Tracer returns the tracer this server mints request traces from.
func (s *Server) Tracer() *trace.Tracer { return s.tracer }

// statusWriter remembers the first status a handler wrote, so the
// request's trace can be finished with it.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.status == 0 {
		sw.status = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

// startTrace mints the request's trace — joining the distributed trace
// a peer propagated when the request carries an X-Ebda-Trace header —
// and threads it through the request context, wrapping the response
// writer so Finish sees the status the handler wrote.
func (s *Server) startTrace(w http.ResponseWriter, r *http.Request, root string) (*trace.Trace, *statusWriter, *http.Request) {
	var t *trace.Trace
	if h := r.Header.Get(trace.Header); h != "" {
		t = s.tracer.StartRemote(h, root)
	} else {
		t = s.tracer.Start(root)
	}
	return t, &statusWriter{ResponseWriter: w}, r.WithContext(trace.NewContext(r.Context(), t))
}

// Ready reports whether the server accepts new work; it is the /readyz
// gate. It flips false permanently once Shutdown begins.
func (s *Server) Ready() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return !s.draining
}

// Shutdown drains the server: new submissions get ErrDraining (503)
// immediately, queued and running verifications finish, and the worker
// pool exits. It returns when the pool is idle or ctx fires, and is safe
// to call more than once.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	s.mu.Unlock()
	if !already {
		// No submitter can be sending now: submit holds the read lock
		// across its check-and-send, and every lock acquired after the
		// write above observes draining.
		close(s.queue)
	}
	idle := make(chan struct{})
	go func() {
		s.workers.Wait()
		close(idle)
	}()
	select {
	case <-idle:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// submit admits one task to the queue without blocking: a full queue is
// load the server must shed, not buffer.
func (s *Server) submit(task func()) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.draining {
		return ErrDraining
	}
	select {
	case s.queue <- task:
		obsQueueDepth.Add(1)
		return nil
	default:
		return ErrQueueFull
	}
}

// Verdict provenance values (the VerifyResponse.Provenance field).
const (
	provCache     = "cache"
	provComputed  = "computed"
	provCoalesced = "coalesced"
	provDelta     = "delta"
)

// verdict produces one verification verdict: cache probe first, then a
// coalesced flight whose leader computes on a queue worker. The
// provenance string reports which path answered.
func (s *Server) verdict(ctx context.Context, b *builtVerify) (cdg.Report, string, error) {
	tc := trace.FromContext(ctx)
	lsp := tc.StartSpan("cache.lookup")
	if rep, ok := s.cache.Lookup(b.net, b.vcs, b.ts); ok {
		lsp.SetInt("hit", 1)
		lsp.End()
		obsVerdictCache.Inc()
		return rep, provCache, nil
	}
	lsp.SetInt("hit", 0)
	lsp.End()
	key, check := cdg.VerifyKey(b.net, b.vcs, b.ts)
	fsp := tc.StartSpan("flight")
	rep, leader, err := s.flight.do(ctx, key, check, s.cfg.Timeout, func(fctx context.Context) (cdg.Report, error) {
		return s.compute(fctx, b)
	})
	if err != nil {
		fsp.End()
		return cdg.Report{}, "", err
	}
	if leader {
		fsp.SetStr("role", "leader")
		fsp.End()
		obsVerdictComputed.Inc()
		return rep, provComputed, nil
	}
	fsp.SetStr("role", "follower")
	fsp.End()
	obsVerdictCoalesced.Inc()
	return rep, provCoalesced, nil
}

// compute runs one verification on a queue worker under ctx, reporting
// admission failures to the caller.
func (s *Server) compute(ctx context.Context, b *builtVerify) (cdg.Report, error) {
	type result struct {
		rep cdg.Report
		err error
	}
	res := make(chan result, 1)
	// The queued task may outlive the trace's Finish (an abandoned
	// deadline); the extra reference keeps the trace out of the pool
	// until the task's spans have landed.
	tc := trace.FromContext(ctx)
	tc.Retain()
	qsp := tc.StartSpan("queue.wait")
	err := s.submit(func() {
		qsp.End()
		obsQueueDepth.Add(-1)
		rep, err := s.cache.VerifyTurnSetCtx(ctx, b.net, b.vcs, b.ts, s.cfg.Jobs)
		res <- result{rep, err}
		tc.Release()
	})
	if err != nil {
		qsp.SetInt("rejected", 1)
		qsp.End()
		tc.Release()
		return cdg.Report{}, err
	}
	select {
	case r := <-res:
		return r.rep, r.err
	case <-ctx.Done():
		// The queued task still runs (quickly, its context is dead) and
		// parks its result in the buffered channel for the collector.
		return cdg.Report{}, ctx.Err()
	}
}

// deltaVerdict is verdict for a perturbed design: delta cache probe
// first, then a coalesced flight keyed on the delta identity whose
// leader runs the incremental re-verification on a queue worker. The
// leader's provenance is "delta" — the verdict came from a retained
// workspace's region re-peel, not a from-scratch verification.
func (s *Server) deltaVerdict(ctx context.Context, b *builtVerify, diff cdg.Diff) (cdg.Report, string, error) {
	tc := trace.FromContext(ctx)
	lsp := tc.StartSpan("cache.lookup")
	if rep, ok := s.cache.LookupDelta(b.net, b.vcs, b.ts, diff); ok {
		lsp.SetInt("hit", 1)
		lsp.End()
		obsVerdictCache.Inc()
		return rep, provCache, nil
	}
	lsp.SetInt("hit", 0)
	lsp.End()
	key, check := cdg.DeltaKey(b.net, b.vcs, b.ts, diff)
	fsp := tc.StartSpan("flight")
	rep, leader, err := s.flight.do(ctx, key, check, s.cfg.Timeout, func(fctx context.Context) (cdg.Report, error) {
		return s.computeDelta(fctx, b, diff)
	})
	if err != nil {
		fsp.End()
		return cdg.Report{}, "", err
	}
	if leader {
		fsp.SetStr("role", "leader")
		fsp.End()
		obsVerdictDelta.Inc()
		return rep, provDelta, nil
	}
	fsp.SetStr("role", "follower")
	fsp.End()
	obsVerdictCoalesced.Inc()
	return rep, provCoalesced, nil
}

// computeDelta runs one delta verification on a queue worker under ctx.
func (s *Server) computeDelta(ctx context.Context, b *builtVerify, diff cdg.Diff) (cdg.Report, error) {
	type result struct {
		rep cdg.Report
		err error
	}
	res := make(chan result, 1)
	tc := trace.FromContext(ctx)
	tc.Retain()
	qsp := tc.StartSpan("queue.wait")
	err := s.submit(func() {
		qsp.End()
		obsQueueDepth.Add(-1)
		rep, err := s.cache.VerifyDeltaCtx(ctx, b.net, b.vcs, b.ts, diff, s.cfg.Jobs)
		res <- result{rep, err}
		tc.Release()
	})
	if err != nil {
		qsp.SetInt("rejected", 1)
		qsp.End()
		tc.Release()
		return cdg.Report{}, err
	}
	select {
	case r := <-res:
		return r.rep, r.err
	case <-ctx.Done():
		return cdg.Report{}, ctx.Err()
	}
}

// statusFor maps pipeline errors to HTTP statuses and counts the
// rejection.
func statusFor(err error) int {
	switch {
	case errors.Is(err, cdg.ErrBadDiff):
		obsRejectBad.Inc()
		return http.StatusBadRequest
	case errors.Is(err, ErrQueueFull):
		obsRejectQueue.Inc()
		return http.StatusTooManyRequests
	case errors.Is(err, ErrDraining):
		obsRejectDrain.Inc()
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		obsRejectDeadline.Inc()
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		// The client went away; nobody reads this response.
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorBody{Error: msg})
}

// respond builds the response body for one verdict.
func respond(b *builtVerify, rep cdg.Report, prov string, key uint64) *VerifyResponse {
	n90, nU, nI := b.ts.Counts()
	resp := &VerifyResponse{
		Network:    b.net.String(),
		Channels:   rep.Channels,
		Edges:      rep.Edges,
		Acyclic:    rep.Acyclic,
		Turns:      TurnCounts{Deg90: n90, U: nU, I: nI},
		Provenance: prov,
		Key:        strconv.FormatUint(key, 16),
	}
	if !rep.Acyclic {
		resp.Cycle = cdg.FormatCycle(rep.Cycle)
	}
	return resp
}

// verifyOne runs one built request end to end.
func (s *Server) verifyOne(ctx context.Context, b *builtVerify) (*VerifyResponse, int, error) {
	rep, prov, err := s.verdict(ctx, b)
	if err != nil {
		return nil, statusFor(err), err
	}
	key, _ := cdg.VerifyKey(b.net, b.vcs, b.ts)
	return respond(b, rep, prov, key), http.StatusOK, nil
}

func (s *Server) handleVerify(w http.ResponseWriter, r *http.Request) {
	obsReqVerify.Inc()
	t, sw, r := s.startTrace(w, r, "serve.verify")
	defer func() { t.Finish(sw.status) }()
	w = sw
	sp := phaseServeVerify.Start()
	defer sp.End()
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	// The raw body is retained: cluster mode may replay it verbatim to
	// the owning replica.
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, MaxBodyBytes))
	if err != nil {
		obsRejectBad.Inc()
		writeError(w, http.StatusBadRequest, sanitizeErr(err))
		return
	}
	req, err := DecodeVerifyRequest(bytes.NewReader(body))
	if err != nil {
		obsRejectBad.Inc()
		writeError(w, http.StatusBadRequest, sanitizeErr(err))
		return
	}
	b, err := req.build(s.nets)
	if err != nil {
		obsRejectBad.Inc()
		writeError(w, http.StatusBadRequest, sanitizeErr(err))
		return
	}
	if s.routeVerify(w, r, b, body) {
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.Timeout)
	defer cancel()
	resp, status, err := s.verifyOne(ctx, b)
	if err != nil {
		writeError(w, status, sanitizeErr(err))
		return
	}
	t.SetProvenance(resp.Provenance)
	writeJSON(w, status, resp)
}

func (s *Server) handleDelta(w http.ResponseWriter, r *http.Request) {
	obsReqDelta.Inc()
	t, sw, r := s.startTrace(w, r, "serve.delta")
	defer func() { t.Finish(sw.status) }()
	w = sw
	sp := phaseServeDelta.Start()
	defer sp.End()
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, MaxBodyBytes))
	if err != nil {
		obsRejectBad.Inc()
		writeError(w, http.StatusBadRequest, sanitizeErr(err))
		return
	}
	req, err := DecodeDeltaRequest(bytes.NewReader(body))
	if err != nil {
		obsRejectBad.Inc()
		writeError(w, http.StatusBadRequest, sanitizeErr(err))
		return
	}
	b, err := req.Base.build(s.nets)
	if err != nil {
		obsRejectBad.Inc()
		writeError(w, http.StatusBadRequest, sanitizeErr(err))
		return
	}
	baseKey, _ := cdg.VerifyKey(b.net, b.vcs, b.ts)
	if req.BaseKey != "" {
		want, perr := strconv.ParseUint(req.BaseKey, 16, 64)
		if perr != nil || want != baseKey {
			obsRejectBad.Inc()
			writeError(w, http.StatusBadRequest,
				"base_key "+req.BaseKey+" does not match the base design (key "+
					strconv.FormatUint(baseKey, 16)+")")
			return
		}
	}
	diff, err := req.buildDiff(b)
	if err != nil {
		obsRejectBad.Inc()
		writeError(w, http.StatusBadRequest, sanitizeErr(err))
		return
	}
	if s.routeDelta(w, r, b, diff, baseKey, body) {
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.Timeout)
	defer cancel()
	rep, prov, err := s.deltaVerdict(ctx, b, diff)
	if err != nil {
		writeError(w, statusFor(err), sanitizeErr(err))
		return
	}
	t.SetProvenance(prov)
	key, _ := cdg.DeltaKey(b.net, b.vcs, b.ts, diff)
	resp := &DeltaResponse{
		Network:    rep.Network,
		Channels:   rep.Channels,
		Edges:      rep.Edges,
		Acyclic:    rep.Acyclic,
		Provenance: prov,
		Key:        strconv.FormatUint(key, 16),
		BaseKey:    strconv.FormatUint(baseKey, 16),
	}
	if !rep.Acyclic {
		resp.Cycle = cdg.FormatCycle(rep.Cycle)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleDesign(w http.ResponseWriter, r *http.Request) {
	obsReqDesign.Inc()
	t, sw, r := s.startTrace(w, r, "serve.design")
	defer func() { t.Finish(sw.status) }()
	w = sw
	sp := phaseServeDesign.Start()
	defer sp.End()
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req DesignRequest
	if err := decodeStrict(http.MaxBytesReader(w, r.Body, MaxBodyBytes), &req); err != nil {
		obsRejectBad.Inc()
		writeError(w, http.StatusBadRequest, sanitizeErr(err))
		return
	}
	if err := req.validate(); err != nil {
		obsRejectBad.Inc()
		writeError(w, http.StatusBadRequest, sanitizeErr(err))
		return
	}
	chains, err := partstrat.Derive(partstrat.ArrangementFor(req.VCs))
	if err != nil {
		obsRejectBad.Inc()
		writeError(w, http.StatusBadRequest, sanitizeErr(err))
		return
	}
	max := req.Max
	if max <= 0 || max > maxDesignOptions {
		max = maxDesignOptions
	}
	net := req.designNet(s.nets)
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.Timeout)
	defer cancel()
	resp := DesignResponse{Network: net.String(), Derived: len(chains)}
	for _, chain := range chains {
		if len(resp.Options) >= max {
			break
		}
		b := &builtVerify{
			net: net,
			vcs: cdg.VCConfigFor(net.Dims(), chain.Channels()),
			ts:  chain.AllTurns(),
		}
		rep, prov, err := s.verdict(ctx, b)
		if err != nil {
			writeError(w, statusFor(err), sanitizeErr(err))
			return
		}
		resp.Options = append(resp.Options, DesignOption{
			Chain:      chain.PlainString(),
			Channels:   rep.Channels,
			Acyclic:    rep.Acyclic,
			Provenance: prov,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	obsReqBatch.Inc()
	t, sw, r := s.startTrace(w, r, "serve.batch")
	defer func() { t.Finish(sw.status) }()
	w = sw
	sp := phaseServeBatch.Start()
	defer sp.End()
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req BatchRequest
	if err := decodeStrict(http.MaxBytesReader(w, r.Body, MaxBodyBytes), &req); err != nil {
		obsRejectBad.Inc()
		writeError(w, http.StatusBadRequest, sanitizeErr(err))
		return
	}
	if len(req.Requests) == 0 {
		obsRejectBad.Inc()
		writeError(w, http.StatusBadRequest, "requests is empty")
		return
	}
	if len(req.Requests) > maxBatch {
		obsRejectBad.Inc()
		writeError(w, http.StatusBadRequest,
			"batch has "+strconv.Itoa(len(req.Requests))+" requests, limit "+strconv.Itoa(maxBatch))
		return
	}
	// One deadline covers the whole batch; items run in request order so
	// a batch's results are deterministic (repeats after the first hit
	// the cache). Per-item failures stay per-item — a batch is a
	// convenience wrapper, not a transaction.
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.Timeout)
	defer cancel()
	resp := BatchResponse{Results: make([]BatchResult, len(req.Requests))}
	for i := range req.Requests {
		item := &req.Requests[i]
		if err := item.validate(); err != nil {
			resp.Results[i] = BatchResult{Error: sanitizeErr(err), Status: http.StatusBadRequest}
			continue
		}
		b, err := item.build(s.nets)
		if err != nil {
			resp.Results[i] = BatchResult{Error: sanitizeErr(err), Status: http.StatusBadRequest}
			continue
		}
		ok, status, err := s.verifyOne(ctx, b)
		if err != nil {
			resp.Results[i] = BatchResult{Error: sanitizeErr(err), Status: status}
			continue
		}
		resp.Results[i] = BatchResult{OK: ok}
	}
	writeJSON(w, http.StatusOK, resp)
}
