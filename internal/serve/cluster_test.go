package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"ebda/internal/cdg"
	"ebda/internal/cluster"
)

// testReplica is one member of an in-process test cluster.
type testReplica struct {
	srv   *Server
	cache *cdg.VerifyCache
	ts    *httptest.Server
}

// testCluster starts one isolated server per name, all sharing a ring
// over ringMembers (names outside ringMembers run as edge routers).
// Each replica has a private cache, so ownership is observable.
func testCluster(t *testing.T, names, ringMembers []string, noForward bool) map[string]*testReplica {
	t.Helper()
	ring, err := cluster.New(ringMembers)
	if err != nil {
		t.Fatal(err)
	}
	reps := make(map[string]*testReplica, len(names))
	muxes := make(map[string]*http.ServeMux, len(names))
	urls := make(map[string]string, len(names))
	for _, name := range names {
		mux := http.NewServeMux()
		hts := httptest.NewServer(mux)
		t.Cleanup(hts.Close)
		muxes[name] = mux
		urls[name] = hts.URL
		reps[name] = &testReplica{ts: hts}
	}
	for _, name := range names {
		peers := make(map[string]string)
		for other, u := range urls {
			if other != name {
				peers[other] = u
			}
		}
		cache := &cdg.VerifyCache{}
		srv := NewReplica(Config{Cluster: &ClusterConfig{
			Self:      name,
			Ring:      ring,
			Peers:     peers,
			NoForward: noForward,
		}}, cache)
		srv.Register(muxes[name])
		reps[name].srv = srv
		reps[name].cache = cache
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			srv.Shutdown(ctx)
		})
	}
	return reps
}

// designOwnedBy searches a family of designs for one whose verify key
// the ring assigns to wantOwner, returning the request body and key.
func designOwnedBy(t *testing.T, ring *cluster.Ring, wantOwner string) (string, uint64) {
	t.Helper()
	nets := newNetworkCache()
	for size := 4; size <= 9; size++ {
		for _, chain := range []string{
			"PA[X+ X- Y-] -> PB[Y+]",
			"PA[X+ X- Y+] -> PB[Y-]",
			"PA[X1+ Y1+ Y1-] -> PB[X1- Y2+ Y2-]",
		} {
			req := VerifyRequest{
				Network: NetworkSpec{Kind: "mesh", Sizes: []int{size, size}},
				Chain:   chain,
			}
			b, err := req.build(nets)
			if err != nil {
				t.Fatal(err)
			}
			key, _ := cdg.VerifyKey(b.net, b.vcs, b.ts)
			if ring.Owner(key) == wantOwner {
				body, _ := json.Marshal(req)
				return string(body), key
			}
		}
	}
	t.Fatalf("no probe design owned by %q", wantOwner)
	return "", 0
}

// sameVerdict compares every verdict field except provenance and fails
// on a mismatch — the cluster's byte-identical-verdicts contract.
func sameVerdict(t *testing.T, a, b VerifyResponse, label string) {
	t.Helper()
	a.Provenance, b.Provenance = "", ""
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	if string(aj) != string(bj) {
		t.Fatalf("%s: verdicts diverged:\n%s\nvs\n%s", label, aj, bj)
	}
}

func TestClusterRoutingProvenance(t *testing.T) {
	names := []string{"r0", "r1"}
	reps := testCluster(t, names, names, false)
	ring := reps["r0"].srv.cluster.ring
	body, _ := designOwnedBy(t, ring, "r0")

	// Cold key at the non-owner: proxied to the owner, which computes.
	status, raw := post(t, reps["r1"].ts, "/v1/verify", body)
	if status != 200 {
		t.Fatalf("non-owner POST = %d: %s", status, raw)
	}
	var fwd VerifyResponse
	if err := json.Unmarshal(raw, &fwd); err != nil {
		t.Fatal(err)
	}
	if fwd.Provenance != provForwarded {
		t.Fatalf("cold misrouted verdict provenance = %q, want %q", fwd.Provenance, provForwarded)
	}

	// Same key at the non-owner again: its own cache is still cold (the
	// forward seeded the owner), so the peer probe answers.
	status, raw = post(t, reps["r1"].ts, "/v1/verify", body)
	if status != 200 {
		t.Fatalf("repeat POST = %d: %s", status, raw)
	}
	var peer VerifyResponse
	if err := json.Unmarshal(raw, &peer); err != nil {
		t.Fatal(err)
	}
	if peer.Provenance != provPeer {
		t.Fatalf("warm misrouted verdict provenance = %q, want %q", peer.Provenance, provPeer)
	}
	sameVerdict(t, fwd, peer, "forwarded vs peer")

	// At the owner: a plain cache hit.
	status, raw = post(t, reps["r0"].ts, "/v1/verify", body)
	if status != 200 {
		t.Fatalf("owner POST = %d: %s", status, raw)
	}
	var own VerifyResponse
	if err := json.Unmarshal(raw, &own); err != nil {
		t.Fatal(err)
	}
	if own.Provenance != provCache {
		t.Fatalf("owner verdict provenance = %q, want %q", own.Provenance, provCache)
	}
	sameVerdict(t, fwd, own, "forwarded vs owner")
}

func TestClusterPeerLookupEndpoint(t *testing.T) {
	names := []string{"r0", "r1"}
	reps := testCluster(t, names, names, false)
	ring := reps["r0"].srv.cluster.ring
	body, key := designOwnedBy(t, ring, "r0")

	// Seed the owner's cache, then probe it directly.
	if status, raw := post(t, reps["r0"].ts, "/v1/verify", body); status != 200 {
		t.Fatalf("seed POST = %d: %s", status, raw)
	}
	req := VerifyRequest{}
	if err := json.Unmarshal([]byte(body), &req); err != nil {
		t.Fatal(err)
	}
	b, err := req.build(newNetworkCache())
	if err != nil {
		t.Fatal(err)
	}
	_, check := cdg.VerifyKey(b.net, b.vcs, b.ts)

	get := func(url string) (int, []byte) {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp.StatusCode, []byte(sb.String())
	}

	keyHex := strconv.FormatUint(key, 16)
	checkHex := strconv.FormatUint(check, 16)
	status, raw := get(reps["r0"].ts.URL + "/v1/peer/lookup/" + keyHex + "?check=" + checkHex)
	if status != 200 {
		t.Fatalf("peer lookup = %d: %s", status, raw)
	}
	var pl PeerLookupResponse
	if err := json.Unmarshal(raw, &pl); err != nil {
		t.Fatal(err)
	}
	if !pl.Found || pl.Channels == 0 || pl.Edges == 0 {
		t.Fatalf("peer lookup hit incomplete: %+v", pl)
	}

	// A wrong check hash is a miss, never a wrong report.
	status, _ = get(reps["r0"].ts.URL + "/v1/peer/lookup/" + keyHex + "?check=0")
	if status != http.StatusNotFound {
		t.Fatalf("wrong-check lookup = %d, want 404", status)
	}
	// Malformed identities are 400s.
	status, _ = get(reps["r0"].ts.URL + "/v1/peer/lookup/zzz?check=" + checkHex)
	if status != http.StatusBadRequest {
		t.Fatalf("bad-key lookup = %d, want 400", status)
	}
	status, _ = get(reps["r0"].ts.URL + "/v1/peer/lookup/" + keyHex + "?check=zzz")
	if status != http.StatusBadRequest {
		t.Fatalf("bad-check lookup = %d, want 400", status)
	}
}

func TestClusterForwardLoopProtection(t *testing.T) {
	names := []string{"r0", "r1"}
	reps := testCluster(t, names, names, false)
	ring := reps["r0"].srv.cluster.ring
	body, _ := designOwnedBy(t, ring, "r0")

	// A request already marked forwarded must be served locally by the
	// non-owner — never bounced onward, even though r0 owns the key.
	hreq, err := http.NewRequest(http.MethodPost, reps["r1"].ts.URL+"/v1/verify", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set(ForwardHeader, "test")
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var vr VerifyResponse
	if err := json.NewDecoder(resp.Body).Decode(&vr); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("forwarded POST = %d", resp.StatusCode)
	}
	if vr.Provenance != provComputed {
		t.Fatalf("forwarded request provenance = %q, want %q (local compute, no second hop)", vr.Provenance, provComputed)
	}
	// The owner's cache stayed cold: the request really did stop here.
	if reps["r0"].cache.Stats().Entries != 0 {
		t.Fatal("loop-protected request still reached the owner")
	}
}

func TestClusterNoForwardDegradesToLocalCompute(t *testing.T) {
	names := []string{"r0", "r1"}
	reps := testCluster(t, names, names, true)
	ring := reps["r0"].srv.cluster.ring
	body, _ := designOwnedBy(t, ring, "r0")

	status, raw := post(t, reps["r1"].ts, "/v1/verify", body)
	if status != 200 {
		t.Fatalf("no-forward POST = %d: %s", status, raw)
	}
	var vr VerifyResponse
	if err := json.Unmarshal(raw, &vr); err != nil {
		t.Fatal(err)
	}
	if vr.Provenance != provComputed {
		t.Fatalf("no-forward cold verdict provenance = %q, want %q", vr.Provenance, provComputed)
	}
}

func TestClusterDegradesWhenOwnerUnreachable(t *testing.T) {
	// A ring whose owner URL points at a dead listener: the non-owner
	// must still answer (local compute), not 5xx.
	ring, err := cluster.New([]string{"r0", "r1"})
	if err != nil {
		t.Fatal(err)
	}
	dead := httptest.NewServer(http.NewServeMux())
	deadURL := dead.URL
	dead.Close()

	cache := &cdg.VerifyCache{}
	srv := NewReplica(Config{Cluster: &ClusterConfig{
		Self:  "r1",
		Ring:  ring,
		Peers: map[string]string{"r0": deadURL},
	}}, cache)
	mux := http.NewServeMux()
	srv.Register(mux)
	hts := httptest.NewServer(mux)
	t.Cleanup(func() {
		hts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})

	body, _ := designOwnedBy(t, ring, "r0")
	status, raw := post(t, hts, "/v1/verify", body)
	if status != 200 {
		t.Fatalf("partitioned POST = %d: %s", status, raw)
	}
	var vr VerifyResponse
	if err := json.Unmarshal(raw, &vr); err != nil {
		t.Fatal(err)
	}
	if vr.Provenance != provComputed {
		t.Fatalf("partitioned verdict provenance = %q, want %q", vr.Provenance, provComputed)
	}
}

func TestClusterDeltaRouting(t *testing.T) {
	names := []string{"r0", "r1"}
	reps := testCluster(t, names, names, false)
	ring := reps["r0"].srv.cluster.ring

	// Find a delta whose identity r0 owns, driven from a fixed base.
	nets := newNetworkCache()
	var body string
	var found bool
	for size := 4; size <= 9 && !found; size++ {
		req := DeltaRequest{
			Base: VerifyRequest{
				Network: NetworkSpec{Kind: "mesh", Sizes: []int{size, size}},
				Chain:   "PA[X+ X- Y-] -> PB[Y+]",
			},
			RemoveLinks: []LinkSpec{{At: []int{1, 1}, Dir: "X+"}},
		}
		b, err := req.Base.build(nets)
		if err != nil {
			t.Fatal(err)
		}
		diff, err := req.buildDiff(b)
		if err != nil {
			t.Fatal(err)
		}
		key, _ := cdg.DeltaKey(b.net, b.vcs, b.ts, diff)
		if ring.Owner(key) == "r0" {
			raw, _ := json.Marshal(req)
			body, found = string(raw), true
		}
	}
	if !found {
		t.Fatal("no probe delta owned by r0")
	}

	status, raw := post(t, reps["r1"].ts, "/v1/verify/delta", body)
	if status != 200 {
		t.Fatalf("non-owner delta POST = %d: %s", status, raw)
	}
	var fwd DeltaResponse
	if err := json.Unmarshal(raw, &fwd); err != nil {
		t.Fatal(err)
	}
	if fwd.Provenance != provForwarded {
		t.Fatalf("cold misrouted delta provenance = %q, want %q", fwd.Provenance, provForwarded)
	}
	if !strings.Contains(fwd.Network, "faulty") {
		t.Fatalf("forwarded delta response lost the perturbed network name: %+v", fwd)
	}

	status, raw = post(t, reps["r1"].ts, "/v1/verify/delta", body)
	if status != 200 {
		t.Fatalf("repeat delta POST = %d: %s", status, raw)
	}
	var peer DeltaResponse
	if err := json.Unmarshal(raw, &peer); err != nil {
		t.Fatal(err)
	}
	if peer.Provenance != provPeer {
		t.Fatalf("warm misrouted delta provenance = %q, want %q", peer.Provenance, provPeer)
	}
	fwd.Provenance, peer.Provenance = "", ""
	aj, _ := json.Marshal(fwd)
	bj, _ := json.Marshal(peer)
	if string(aj) != string(bj) {
		t.Fatalf("delta verdicts diverged:\n%s\nvs\n%s", aj, bj)
	}
}

func TestClusterEdgeRouterOwnsNothing(t *testing.T) {
	// "edge" serves but is not a ring member: every key belongs to r0,
	// so edge answers via forward/peer and its own cache stays empty of
	// computed entries.
	reps := testCluster(t, []string{"r0", "edge"}, []string{"r0"}, false)
	body, _ := designOwnedBy(t, reps["r0"].srv.cluster.ring, "r0")

	status, raw := post(t, reps["edge"].ts, "/v1/verify", body)
	if status != 200 {
		t.Fatalf("edge POST = %d: %s", status, raw)
	}
	var vr VerifyResponse
	if err := json.Unmarshal(raw, &vr); err != nil {
		t.Fatal(err)
	}
	if vr.Provenance != provForwarded {
		t.Fatalf("edge verdict provenance = %q, want %q", vr.Provenance, provForwarded)
	}
	if reps["edge"].cache.Stats().Entries != 0 {
		t.Fatal("edge router computed locally")
	}
	if reps["r0"].cache.Stats().Entries == 0 {
		t.Fatal("owner cache not seeded by the forward")
	}
}

func TestClusterWarmStartServesFromCache(t *testing.T) {
	// A replica warm-started from another's snapshot must answer its
	// first hot-key request with provenance "cache", never "computed".
	names := []string{"r0", "r1"}
	reps := testCluster(t, names, names, false)
	ring := reps["r0"].srv.cluster.ring
	body, _ := designOwnedBy(t, ring, "r0")
	if status, raw := post(t, reps["r0"].ts, "/v1/verify", body); status != 200 {
		t.Fatalf("seed POST = %d: %s", status, raw)
	}

	var snap strings.Builder
	if _, err := reps["r0"].cache.SaveSnapshot(&snap); err != nil {
		t.Fatal(err)
	}

	// A fresh replica under the same name, warm-started from the file.
	cache := &cdg.VerifyCache{}
	if _, err := cache.LoadSnapshot(strings.NewReader(snap.String())); err != nil {
		t.Fatal(err)
	}
	warm := NewReplica(Config{}, cache)
	mux := http.NewServeMux()
	warm.Register(mux)
	hts := httptest.NewServer(mux)
	t.Cleanup(func() {
		hts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		warm.Shutdown(ctx)
	})

	status, raw := post(t, hts, "/v1/verify", body)
	if status != 200 {
		t.Fatalf("warm POST = %d: %s", status, raw)
	}
	var vr VerifyResponse
	if err := json.Unmarshal(raw, &vr); err != nil {
		t.Fatal(err)
	}
	if vr.Provenance != provCache {
		t.Fatalf("warm-started first verdict provenance = %q, want %q", vr.Provenance, provCache)
	}
}

func TestClusterConfigValidate(t *testing.T) {
	ring, err := cluster.New([]string{"r0", "r1"})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		cfg  ClusterConfig
		ok   bool
	}{
		{"valid", ClusterConfig{Self: "r0", Ring: ring, Peers: map[string]string{"r1": "http://x"}}, true},
		{"edge self", ClusterConfig{Self: "edge", Ring: ring, Peers: map[string]string{"r0": "http://x", "r1": "http://y"}}, true},
		{"no self", ClusterConfig{Ring: ring, Peers: map[string]string{"r1": "http://x"}}, false},
		{"no ring", ClusterConfig{Self: "r0"}, false},
		{"missing peer", ClusterConfig{Self: "r0", Ring: ring}, false},
	}
	for _, tc := range cases {
		err := tc.cfg.Validate()
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: invalid config accepted", tc.name)
		}
	}
}

func TestReadClusterBenchRejectsOtherKinds(t *testing.T) {
	if _, err := ReadClusterBench([]byte(`{"kind":"serve"}`)); err == nil {
		t.Error("serve snapshot accepted as cluster")
	}
	if _, err := ReadClusterBench([]byte(`{"kind":"cluster","replicas":4}`)); err != nil {
		t.Errorf("cluster snapshot rejected: %v", err)
	}
	if _, err := ReadClusterBench([]byte(`not json`)); err == nil {
		t.Error("malformed snapshot accepted")
	}
}
