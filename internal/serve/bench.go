package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Bench is the serving-layer perf snapshot written by ebda-loadgen (the
// BENCH_serve.json file). Kind distinguishes it from the engine snapshot
// (BENCH_verify.json has no kind field); ebda-benchdiff dispatches on
// it. Latencies are client-observed per-request wall times.
type Bench struct {
	Kind        string `json:"kind"` // always "serve"
	GeneratedAt string `json:"generated_at"`
	GoVersion   string `json:"go_version"`
	NumCPU      int    `json:"num_cpu"`
	Workers     int    `json:"workers"`
	QueueDepth  int    `json:"queue_depth"`
	Seed        uint64 `json:"seed"`

	Requests  int `json:"requests"`
	Status2xx int `json:"status_2xx"`
	Status4xx int `json:"status_4xx"`
	Status5xx int `json:"status_5xx"`

	Cache     int `json:"verdicts_cache"`
	Computed  int `json:"verdicts_computed"`
	Coalesced int `json:"verdicts_coalesced"`
	// Deltas counts verdicts the /v1/verify/delta endpoint computed
	// incrementally (provenance "delta"; cached or coalesced delta
	// verdicts land in the fields above).
	Deltas int `json:"verdicts_delta"`
	// CoalesceRate is coalesced over all verdicts the run observed (0
	// when it observed none).
	CoalesceRate float64 `json:"coalesce_rate"`

	WallSeconds float64 `json:"wall_seconds"`
	// ThroughputRPS is Requests / WallSeconds.
	ThroughputRPS float64 `json:"throughput_rps"`
	P50Millis     float64 `json:"p50_ms"`
	P99Millis     float64 `json:"p99_ms"`
}

// BenchKind is the Kind value of serving-layer snapshots.
const BenchKind = "serve"

// Quantile returns the q-quantile (0..1) of latencies in milliseconds
// using the nearest-rank method, 0 for an empty sample. The input is
// sorted in place.
func Quantile(latenciesMS []float64, q float64) float64 {
	if len(latenciesMS) == 0 {
		return 0
	}
	sort.Float64s(latenciesMS)
	rank := int(q*float64(len(latenciesMS))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(latenciesMS) {
		rank = len(latenciesMS) - 1
	}
	return latenciesMS[rank]
}

// WriteJSON renders the snapshot as indented JSON.
func (b Bench) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// ReadBench parses a serving-layer snapshot, rejecting other kinds.
func ReadBench(data []byte) (Bench, error) {
	var b Bench
	if err := json.Unmarshal(data, &b); err != nil {
		return Bench{}, err
	}
	if b.Kind != BenchKind {
		return Bench{}, fmt.Errorf("snapshot kind %q is not %q", b.Kind, BenchKind)
	}
	return b, nil
}
