package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Bench is the serving-layer perf snapshot written by ebda-loadgen (the
// BENCH_serve.json file). Kind distinguishes it from the engine snapshot
// (BENCH_verify.json has no kind field); ebda-benchdiff dispatches on
// it. Latencies are client-observed per-request wall times.
type Bench struct {
	Kind        string `json:"kind"` // always "serve"
	GeneratedAt string `json:"generated_at"`
	GoVersion   string `json:"go_version"`
	NumCPU      int    `json:"num_cpu"`
	Workers     int    `json:"workers"`
	QueueDepth  int    `json:"queue_depth"`
	Seed        uint64 `json:"seed"`

	Requests  int `json:"requests"`
	Status2xx int `json:"status_2xx"`
	Status4xx int `json:"status_4xx"`
	Status5xx int `json:"status_5xx"`

	Cache     int `json:"verdicts_cache"`
	Computed  int `json:"verdicts_computed"`
	Coalesced int `json:"verdicts_coalesced"`
	// Deltas counts verdicts the /v1/verify/delta endpoint computed
	// incrementally (provenance "delta"; cached or coalesced delta
	// verdicts land in the fields above).
	Deltas int `json:"verdicts_delta"`
	// CoalesceRate is coalesced over all verdicts the run observed (0
	// when it observed none).
	CoalesceRate float64 `json:"coalesce_rate"`
	// Traced counts the traces the flight recorder held at /debug/traces
	// when the run finished — sampled retentions plus the slow/error
	// lane, after any ring overwrite.
	Traced int `json:"traced"`

	WallSeconds float64 `json:"wall_seconds"`
	// ThroughputRPS is Requests / WallSeconds.
	ThroughputRPS float64 `json:"throughput_rps"`
	P50Millis     float64 `json:"p50_ms"`
	P99Millis     float64 `json:"p99_ms"`
}

// BenchKind is the Kind value of serving-layer snapshots.
const BenchKind = "serve"

// Quantile returns the q-quantile (0..1) of latencies in milliseconds
// using the nearest-rank method, 0 for an empty sample. The input is
// sorted in place.
func Quantile(latenciesMS []float64, q float64) float64 {
	if len(latenciesMS) == 0 {
		return 0
	}
	sort.Float64s(latenciesMS)
	rank := int(q*float64(len(latenciesMS))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(latenciesMS) {
		rank = len(latenciesMS) - 1
	}
	return latenciesMS[rank]
}

// WriteJSON renders the snapshot as indented JSON.
func (b Bench) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// ReadBench parses a serving-layer snapshot, rejecting other kinds.
func ReadBench(data []byte) (Bench, error) {
	var b Bench
	if err := json.Unmarshal(data, &b); err != nil {
		return Bench{}, err
	}
	if b.Kind != BenchKind {
		return Bench{}, fmt.Errorf("snapshot kind %q is not %q", b.Kind, BenchKind)
	}
	return b, nil
}

// ClusterBenchKind is the Kind value of cluster snapshots
// (BENCH_cluster.json).
const ClusterBenchKind = "cluster"

// ReplicaBench is one replica's share of a cluster run.
type ReplicaBench struct {
	Name          string  `json:"name"`
	Requests      int     `json:"requests"`
	WallSeconds   float64 `json:"wall_seconds"`
	ThroughputRPS float64 `json:"throughput_rps"`
	P50Millis     float64 `json:"p50_ms"`
	P99Millis     float64 `json:"p99_ms"`

	Cache     int `json:"verdicts_cache"`
	Computed  int `json:"verdicts_computed"`
	Coalesced int `json:"verdicts_coalesced"`
	Peer      int `json:"verdicts_peer"`
	Forwarded int `json:"verdicts_forwarded"`
}

// ClusterBench is the merged snapshot ebda-loadgen -cluster writes
// (BENCH_cluster.json): a single-replica baseline over the same
// workload, the per-replica shares of the N-replica run, and the
// modeled aggregate. The harness runs replicas of one process on one
// machine, so the cluster wall is modeled, not measured: the workload
// is driven in per-entry-replica phases and ClusterWallSeconds is the
// slowest phase — the wall an N-machine cluster would observe, since
// the phases are independent request streams. ScalingX is therefore a
// measure of shard balance plus routing overhead (peer probes,
// forwards), not of host parallelism.
type ClusterBench struct {
	Kind        string `json:"kind"` // always "cluster"
	GeneratedAt string `json:"generated_at"`
	GoVersion   string `json:"go_version"`
	NumCPU      int    `json:"num_cpu"`
	Seed        uint64 `json:"seed"`

	Replicas int `json:"replicas"`
	Requests int `json:"requests"`
	Designs  int `json:"designs"`
	// MisrouteRate is the fraction of requests the driver deliberately
	// sent to a non-owner to exercise the peer-lookup and forward paths.
	MisrouteRate float64 `json:"misroute_rate"`

	BaselineWallSeconds float64 `json:"baseline_wall_seconds"`
	BaselineRPS         float64 `json:"baseline_rps"`
	ClusterWallSeconds  float64 `json:"cluster_wall_seconds"`
	AggregateRPS        float64 `json:"aggregate_rps"`
	// ScalingX is BaselineWallSeconds / ClusterWallSeconds: how much
	// faster the modeled N-replica cluster finishes the same workload.
	ScalingX float64 `json:"scaling_x"`

	PeerHits    int     `json:"peer_hits"`
	Forwards    int     `json:"forwards"`
	PeerHitRate float64 `json:"peer_hit_rate"`
	ForwardRate float64 `json:"forward_rate"`

	Status2xx int `json:"status_2xx"`
	Status4xx int `json:"status_4xx"`
	Status5xx int `json:"status_5xx"`

	AggP50Millis float64 `json:"agg_p50_ms"`
	AggP99Millis float64 `json:"agg_p99_ms"`

	PerReplica []ReplicaBench `json:"per_replica"`
}

// WriteJSON renders the cluster snapshot as indented JSON.
func (b ClusterBench) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// ReadClusterBench parses a cluster snapshot, rejecting other kinds.
func ReadClusterBench(data []byte) (ClusterBench, error) {
	var b ClusterBench
	if err := json.Unmarshal(data, &b); err != nil {
		return ClusterBench{}, err
	}
	if b.Kind != ClusterBenchKind {
		return ClusterBench{}, fmt.Errorf("snapshot kind %q is not %q", b.Kind, ClusterBenchKind)
	}
	return b, nil
}
