package serve

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
)

// FuzzDecodeVerifyRequest drives the API's decode + validation surface
// with arbitrary bodies. Properties: never panic, never accept a request
// that violates the admission limits, and accepted requests survive a
// marshal/decode round trip (the wire form is canonical).
func FuzzDecodeVerifyRequest(f *testing.F) {
	seeds := []string{
		`{"network":{"kind":"mesh","sizes":[6,6]},"chain":"PA[X+ X- Y-] -> PB[Y+]"}`,
		`{"network":{"kind":"torus","sizes":[4,4]},"turns":"X+>Y+,X+>Y-"}`,
		`{"network":{"kind":"mesh","sizes":[3,3,3]},"chain":"PA[X1+ Y1+ Y1-] -> PB[X1- Y2+ Y2-]","no_ui_turns":true}`,
		`{"network":{"kind":"mesh","sizes":[64,64]},"chain":"PA[X+]"}`,
		`{"network":{"kind":"ring","sizes":[8]},"chain":"PA[X+]"}`,
		`{"network":{"kind":"mesh","sizes":[1,1]},"turns":"X+>Y+"}`,
		`{"network":{"kind":"mesh","sizes":[4,4]},"chain":"PA[X+]","turns":"X+>Y+"}`,
		`{"network":{"kind":"mesh","sizes":[4,4]}}`,
		`{}`,
		``,
		`not json`,
		`[1,2,3]`,
		`{"network":{"kind":"mesh","sizes":[4,4]},"chain":"PA[X+ X- Y-] -> PB[Y+]"} trailing`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	nets := newNetworkCache()
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeVerifyRequest(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted requests are within the admission envelope.
		if err := req.Network.validate(); err != nil {
			t.Fatalf("accepted request fails network validation: %v", err)
		}
		if (req.Chain == "") == (req.Turns == "") {
			t.Fatalf("accepted request has chain=%q turns=%q", req.Chain, req.Turns)
		}
		// The wire form round-trips.
		wire, err := json.Marshal(req)
		if err != nil {
			t.Fatalf("accepted request does not re-marshal: %v", err)
		}
		again, err := DecodeVerifyRequest(bytes.NewReader(wire))
		if err != nil {
			t.Fatalf("canonical form rejected: %v\n%s", err, wire)
		}
		if !reflect.DeepEqual(again, req) {
			t.Fatalf("round trip changed the request: %+v vs %+v", req, again)
		}
		// build may reject the design (parse errors are data-dependent)
		// but must not panic, and network construction stays within the
		// validated envelope.
		if b, err := req.build(nets); err == nil {
			if b.net.Nodes() > maxNodes {
				t.Fatalf("built network exceeds node cap: %d", b.net.Nodes())
			}
		}
	})
}
