// Package serve exposes the verification engine as a small HTTP JSON
// API: /v1/verify checks one routing design, /v1/design derives and
// verifies the Algorithm 1/2 option family for a channel budget, and
// /v1/batch verifies up to maxBatch designs in one request. The package
// owns admission control (a bounded queue in front of a fixed worker
// pool, with explicit 429/503 backpressure), per-request deadlines
// threaded into the engine's context-aware verify path, and
// singleflight coalescing keyed on the verify cache's dual-hash
// identity — so a burst of identical requests costs one computation.
//
// Every served verdict flows through the cached verify API
// (VerifyCache.Lookup / VerifyCache.VerifyTurnSetCtx); the verifygate
// lint analyzer enforces that no handler reaches the uncached entry
// points directly.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"

	"ebda/internal/cdg"
	"ebda/internal/channel"
	"ebda/internal/core"
	"ebda/internal/topology"
)

// Request admission limits. They bound worst-case work per request so a
// single call cannot monopolize the worker pool: the largest admissible
// verification (a 64x64 torus) builds in well under the default
// deadline.
const (
	// MaxBodyBytes caps a request body; handlers read through
	// http.MaxBytesReader so oversized bodies fail fast.
	MaxBodyBytes = 1 << 20
	// maxDims bounds network dimensionality (the repo's designs top out
	// at 4D).
	maxDims = 4
	// minSize / maxSize bound each dimension extent.
	minSize = 2
	maxSize = 64
	// maxNodes bounds the product of sizes, the real cost driver.
	maxNodes = 4096
	// maxVCsPerDim bounds the virtual-channel count a chain may imply
	// per dimension.
	maxVCsPerDim = 8
	// maxBatch bounds /v1/batch fan-out.
	maxBatch = 64
	// maxSpecLen bounds the chain / turn-list source strings.
	maxSpecLen = 4096
	// maxDesignOptions caps how many derived options /v1/design verifies.
	maxDesignOptions = 32
	// maxDeltaLinks bounds the link removals a delta request may name. The
	// incremental path stays cheap only while the dirty region is small, so
	// admitting huge diffs would just be a slow spelling of /v1/verify.
	maxDeltaLinks = 8
)

// NetworkSpec names a concrete network: a regular mesh or torus with
// explicit per-dimension sizes.
type NetworkSpec struct {
	Kind  string `json:"kind"`
	Sizes []int  `json:"sizes"`
}

// validate bounds the spec against the admission limits.
func (n NetworkSpec) validate() error {
	switch n.Kind {
	case "mesh", "torus":
	case "":
		return errors.New("network.kind is required (mesh or torus)")
	default:
		return fmt.Errorf("network.kind %q is not mesh or torus", n.Kind)
	}
	if len(n.Sizes) == 0 {
		return errors.New("network.sizes is required")
	}
	if len(n.Sizes) > maxDims {
		return fmt.Errorf("network has %d dimensions, limit %d", len(n.Sizes), maxDims)
	}
	nodes := 1
	for _, s := range n.Sizes {
		if s < minSize || s > maxSize {
			return fmt.Errorf("network size %d outside [%d, %d]", s, minSize, maxSize)
		}
		nodes *= s
	}
	if nodes > maxNodes {
		return fmt.Errorf("network has %d nodes, limit %d", nodes, maxNodes)
	}
	return nil
}

// VerifyRequest asks for one design's deadlock-freedom verdict. Exactly
// one of Chain (a partition chain, e.g. "PA[X+ X- Y-] -> PB[Y+]") or
// Turns (an explicit turn list, e.g. "X+>Y+,X+>Y-") selects the design.
type VerifyRequest struct {
	Network NetworkSpec `json:"network"`
	Chain   string      `json:"chain,omitempty"`
	Turns   string      `json:"turns,omitempty"`
	// NoUITurns excludes the Theorem-2/3 U- and I-turns from a chain's
	// turn set (ignored for Turns requests, which are already explicit).
	NoUITurns bool `json:"no_ui_turns,omitempty"`
}

// TurnCounts breaks a turn set down by kind.
type TurnCounts struct {
	Deg90 int `json:"deg90"`
	U     int `json:"u"`
	I     int `json:"i"`
}

// VerifyResponse is one design's verdict. Provenance says how the
// verdict was produced: "cache" (memoized), "computed" (this request ran
// the verification) or "coalesced" (this request shared another
// in-flight request's computation). Key is the verify cache's canonical
// 64-bit identity of the verification, in hex — two responses with equal
// keys answered the same question.
type VerifyResponse struct {
	Network    string     `json:"network"`
	Channels   int        `json:"channels"`
	Edges      int        `json:"edges"`
	Acyclic    bool       `json:"acyclic"`
	Cycle      string     `json:"cycle,omitempty"`
	Turns      TurnCounts `json:"turns"`
	Provenance string     `json:"provenance"`
	Key        string     `json:"key"`
}

// LinkSpec names one unidirectional link by its source node coordinate
// and direction, e.g. {"at": [3, 2], "dir": "X+"}.
type LinkSpec struct {
	At  []int  `json:"at"`
	Dir string `json:"dir"`
}

// DeltaRequest asks for the verdict of a base design perturbed by a
// small structural diff: removed links and/or toggled turns. The server
// answers through the retained delta workspace pool, re-peeling only the
// dirty region, and memoizes under the (base key, diff fingerprint)
// delta cache identity.
type DeltaRequest struct {
	// Base selects the unperturbed design, exactly as /v1/verify would.
	Base VerifyRequest `json:"base"`
	// BaseKey optionally pins the base verification's cache key (the hex
	// Key of a prior /v1/verify response). A mismatch against the key the
	// server derives from Base is a 400: the client's cached baseline is
	// not the design it thinks it is.
	BaseKey string `json:"base_key,omitempty"`
	// RemoveLinks lists unidirectional links to delete from the network.
	RemoveLinks []LinkSpec `json:"remove_links,omitempty"`
	// DisableTurns / EnableTurns are turn lists ("X+>Y+,...") toggled off
	// and on relative to the base turn set.
	DisableTurns string `json:"disable_turns,omitempty"`
	EnableTurns  string `json:"enable_turns,omitempty"`
}

// DeltaResponse is a delta verdict. Provenance is "cache", "coalesced",
// or "delta" (this request ran the incremental re-verification). Key is
// the delta cache identity; BaseKey is the underlying full
// verification's identity, usable as base_key in later requests.
type DeltaResponse struct {
	Network    string `json:"network"`
	Channels   int    `json:"channels"`
	Edges      int    `json:"edges"`
	Acyclic    bool   `json:"acyclic"`
	Cycle      string `json:"cycle,omitempty"`
	Provenance string `json:"provenance"`
	Key        string `json:"key"`
	BaseKey    string `json:"base_key"`
}

// DesignRequest asks for the verified Algorithm 1/2 option family of a
// per-dimension VC budget. Network is optional; it defaults to the same
// verification meshes ebda-design uses (5x5 for 2D, 3x3x3 for 3D).
type DesignRequest struct {
	VCs     []int        `json:"vcs"`
	Network *NetworkSpec `json:"network,omitempty"`
	Max     int          `json:"max,omitempty"`
}

// DesignOption is one derived design with its verdict.
type DesignOption struct {
	Chain      string `json:"chain"`
	Channels   int    `json:"channels"`
	Acyclic    bool   `json:"acyclic"`
	Provenance string `json:"provenance"`
}

// DesignResponse lists the verified options for the budget. Derived is
// the family size before the Max cap; len(Options) is after.
type DesignResponse struct {
	Network string         `json:"network"`
	Derived int            `json:"derived"`
	Options []DesignOption `json:"options"`
}

// BatchRequest verifies several designs in one call.
type BatchRequest struct {
	Requests []VerifyRequest `json:"requests"`
}

// BatchResult is one batch entry: either a verdict or a per-item error
// with the HTTP status it would have carried as a standalone request.
type BatchResult struct {
	OK     *VerifyResponse `json:"ok,omitempty"`
	Error  string          `json:"error,omitempty"`
	Status int             `json:"status,omitempty"`
}

// BatchResponse carries one result per request, in request order.
type BatchResponse struct {
	Results []BatchResult `json:"results"`
}

// decodeStrict unmarshals one JSON value from r into v, rejecting
// unknown fields and trailing garbage so malformed clients fail loudly.
func decodeStrict(r io.Reader, v any) error {
	dec := json.NewDecoder(io.LimitReader(r, MaxBodyBytes+1))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("bad JSON: %w", err)
	}
	if dec.More() {
		return errors.New("bad JSON: trailing data after request object")
	}
	return nil
}

// DecodeVerifyRequest parses and bounds-checks one verify request. It is
// pure decode + validation (no network is built), which makes it the
// fuzzing surface for the API.
func DecodeVerifyRequest(r io.Reader) (*VerifyRequest, error) {
	var req VerifyRequest
	if err := decodeStrict(r, &req); err != nil {
		return nil, err
	}
	if err := req.validate(); err != nil {
		return nil, err
	}
	return &req, nil
}

// validate bounds-checks the request without parsing the design.
func (req *VerifyRequest) validate() error {
	if err := req.Network.validate(); err != nil {
		return err
	}
	switch {
	case req.Chain != "" && req.Turns != "":
		return errors.New("use either chain or turns, not both")
	case req.Chain == "" && req.Turns == "":
		return errors.New("one of chain or turns is required")
	case len(req.Chain) > maxSpecLen:
		return fmt.Errorf("chain is %d bytes, limit %d", len(req.Chain), maxSpecLen)
	case len(req.Turns) > maxSpecLen:
		return fmt.Errorf("turns is %d bytes, limit %d", len(req.Turns), maxSpecLen)
	}
	return nil
}

// builtVerify is a decoded request resolved against interned topology:
// everything verdict() needs.
type builtVerify struct {
	net *topology.Network
	vcs cdg.VCConfig
	ts  *core.TurnSet
}

// build parses the design and resolves the network through the interning
// cache, then applies the semantic limits that need the parsed form (VC
// budget per dimension).
func (req *VerifyRequest) build(nets *networkCache) (*builtVerify, error) {
	net := nets.get(req.Network.Kind, req.Network.Sizes)
	b := &builtVerify{net: net}
	if req.Chain != "" {
		chain, err := core.ParseChain(req.Chain)
		if err != nil {
			return nil, fmt.Errorf("chain: %w", err)
		}
		opts := core.DefaultTurnOptions
		if req.NoUITurns {
			opts.UITurns = false
		}
		b.ts = chain.Turns(opts)
		b.vcs = cdg.VCConfigFor(net.Dims(), chain.Channels())
	} else {
		turns, err := core.ParseTurnList(req.Turns)
		if err != nil {
			return nil, fmt.Errorf("turns: %w", err)
		}
		ts := core.NewTurnSet()
		for _, t := range turns {
			ts.Add(t.From, t.To, core.ByTheorem1)
		}
		b.ts = ts
		b.vcs = cdg.VCConfigFor(net.Dims(), ts.Classes())
	}
	for d := 0; d < net.Dims(); d++ {
		if v := b.vcs.VCs(channel.Dim(d)); v > maxVCsPerDim {
			return nil, fmt.Errorf("design implies %d VCs in dimension %d, limit %d", v, d, maxVCsPerDim)
		}
	}
	return b, nil
}

// DecodeDeltaRequest parses and bounds-checks one delta request. Like
// DecodeVerifyRequest it is pure decode + validation.
func DecodeDeltaRequest(r io.Reader) (*DeltaRequest, error) {
	var req DeltaRequest
	if err := decodeStrict(r, &req); err != nil {
		return nil, err
	}
	if err := req.validate(); err != nil {
		return nil, err
	}
	return &req, nil
}

// validate bounds-checks the request without resolving the network.
func (req *DeltaRequest) validate() error {
	if err := req.Base.validate(); err != nil {
		return fmt.Errorf("base: %w", err)
	}
	if len(req.RemoveLinks) == 0 && req.DisableTurns == "" && req.EnableTurns == "" {
		return errors.New("delta names no change: remove_links, disable_turns or enable_turns required")
	}
	if len(req.RemoveLinks) > maxDeltaLinks {
		return fmt.Errorf("delta removes %d links, limit %d", len(req.RemoveLinks), maxDeltaLinks)
	}
	for i, l := range req.RemoveLinks {
		if len(l.At) == 0 || len(l.At) > maxDims {
			return fmt.Errorf("remove_links[%d].at has %d coordinates, want 1..%d", i, len(l.At), maxDims)
		}
		for _, c := range l.At {
			if c < 0 || c >= maxSize {
				return fmt.Errorf("remove_links[%d].at coordinate %d outside [0, %d)", i, c, maxSize)
			}
		}
		if l.Dir == "" {
			return fmt.Errorf("remove_links[%d].dir is required", i)
		}
	}
	if len(req.DisableTurns) > maxSpecLen {
		return fmt.Errorf("disable_turns is %d bytes, limit %d", len(req.DisableTurns), maxSpecLen)
	}
	if len(req.EnableTurns) > maxSpecLen {
		return fmt.Errorf("enable_turns is %d bytes, limit %d", len(req.EnableTurns), maxSpecLen)
	}
	if len(req.BaseKey) > 16 {
		return fmt.Errorf("base_key %q is not a 64-bit hex key", req.BaseKey)
	}
	return nil
}

// parseDir splits a direction spec ("X+", "Y-") into dimension and sign.
func parseDir(s string) (channel.Dim, channel.Sign, error) {
	if len(s) < 2 {
		return 0, 0, fmt.Errorf("malformed direction %q (want e.g. X+)", s)
	}
	var sign channel.Sign
	switch s[len(s)-1] {
	case '+':
		sign = channel.Plus
	case '-':
		sign = channel.Minus
	default:
		return 0, 0, fmt.Errorf("direction %q does not end in + or -", s)
	}
	d, err := channel.ParseDim(s[:len(s)-1])
	if err != nil {
		return 0, 0, err
	}
	return d, sign, nil
}

// buildDiff lowers the request's diff against the resolved base design.
// Link and turn lists are deduplicated here so the canonical diff
// fingerprint (which is duplicate-sensitive) identifies the set, not the
// spelling.
func (req *DeltaRequest) buildDiff(b *builtVerify) (cdg.Diff, error) {
	var diff cdg.Diff
	seenLinks := make(map[topology.Link]bool, len(req.RemoveLinks))
	for i, spec := range req.RemoveLinks {
		if len(spec.At) != b.net.Dims() {
			return cdg.Diff{}, fmt.Errorf("remove_links[%d].at has %d coordinates, network has %d dimensions",
				i, len(spec.At), b.net.Dims())
		}
		if !b.net.InBounds(topology.Coord(spec.At)) {
			return cdg.Diff{}, fmt.Errorf("remove_links[%d].at %v outside the network", i, spec.At)
		}
		d, sign, err := parseDir(spec.Dir)
		if err != nil {
			return cdg.Diff{}, fmt.Errorf("remove_links[%d]: %w", i, err)
		}
		link, ok := b.net.FindLink(b.net.ID(spec.At), d, sign)
		if !ok {
			return cdg.Diff{}, fmt.Errorf("remove_links[%d]: no link from %v along %s", i, spec.At, spec.Dir)
		}
		if !seenLinks[link] {
			seenLinks[link] = true
			diff.RemoveLinks = append(diff.RemoveLinks, link)
		}
	}
	var err error
	if diff.DisableTurns, err = parseTurnToggles(req.DisableTurns); err != nil {
		return cdg.Diff{}, fmt.Errorf("disable_turns: %w", err)
	}
	if diff.EnableTurns, err = parseTurnToggles(req.EnableTurns); err != nil {
		return cdg.Diff{}, fmt.Errorf("enable_turns: %w", err)
	}
	return diff, nil
}

// parseTurnToggles parses a turn list and drops duplicate pairs.
func parseTurnToggles(s string) ([]core.Turn, error) {
	if s == "" {
		return nil, nil
	}
	turns, err := core.ParseTurnList(s)
	if err != nil {
		return nil, err
	}
	seen := make(map[[2]channel.Class]bool, len(turns))
	out := turns[:0]
	for _, t := range turns {
		k := [2]channel.Class{t.From, t.To}
		if !seen[k] {
			seen[k] = true
			out = append(out, t)
		}
	}
	return out, nil
}

// validate bounds-checks a design request.
func (req *DesignRequest) validate() error {
	if len(req.VCs) == 0 {
		return errors.New("vcs is required")
	}
	if len(req.VCs) > maxDims {
		return fmt.Errorf("vcs names %d dimensions, limit %d", len(req.VCs), maxDims)
	}
	for d, v := range req.VCs {
		if v < 1 || v > maxVCsPerDim {
			return fmt.Errorf("vcs[%d] = %d outside [1, %d]", d, v, maxVCsPerDim)
		}
	}
	if req.Max < 0 {
		return errors.New("max must be >= 0")
	}
	if req.Network != nil {
		if err := req.Network.validate(); err != nil {
			return err
		}
		if req.Network.Kind != "mesh" {
			return errors.New("design verification runs on meshes")
		}
		if len(req.Network.Sizes) != len(req.VCs) {
			return fmt.Errorf("network has %d dimensions but vcs names %d",
				len(req.Network.Sizes), len(req.VCs))
		}
	}
	return nil
}

// designNet resolves the verification mesh: the explicit spec when
// given, otherwise the per-dimension defaults ebda-design uses.
func (req *DesignRequest) designNet(nets *networkCache) *topology.Network {
	if req.Network != nil {
		return nets.get(req.Network.Kind, req.Network.Sizes)
	}
	dims := len(req.VCs)
	sizes := make([]int, dims)
	for i := range sizes {
		switch {
		case dims <= 2:
			sizes[i] = 5
		case dims == 3:
			sizes[i] = 3
		default:
			sizes[i] = 2
		}
	}
	return nets.get("mesh", sizes)
}

// sanitizeErr trims an error for the response body: single line, capped
// length, no internal prefixes beyond the failing stage.
func sanitizeErr(err error) string {
	msg := err.Error()
	if i := strings.IndexByte(msg, '\n'); i >= 0 {
		msg = msg[:i]
	}
	const maxLen = 256
	if len(msg) > maxLen {
		msg = msg[:maxLen]
	}
	return msg
}
