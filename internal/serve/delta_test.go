package serve

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"ebda/internal/cdg"
	"ebda/internal/channel"
	"ebda/internal/core"
	"ebda/internal/topology"
)

// deltaBaseBody is the /v1/verify request every delta test perturbs: the
// north-last chain on a 6x6 mesh.
const deltaBaseBody = `{"network":{"kind":"mesh","sizes":[6,6]},"chain":"PA[X+ X- Y-] -> PB[Y+]"}`

// deltaBaseDesign rebuilds the base design the way the server does, for
// computing expected verdicts through the cached engine entry points.
func deltaBaseDesign(t *testing.T) (*topology.Network, cdg.VCConfig, *core.TurnSet) {
	t.Helper()
	net := topology.NewMesh(6, 6)
	chain, err := core.ParseChain("PA[X+ X- Y-] -> PB[Y+]")
	if err != nil {
		t.Fatal(err)
	}
	return net, cdg.VCConfigFor(net.Dims(), chain.Channels()), chain.Turns(core.DefaultTurnOptions)
}

func TestDeltaEndpointSingleLink(t *testing.T) {
	_, ts := testServer(t, Config{})

	status, raw := post(t, ts, "/v1/verify", deltaBaseBody)
	if status != 200 {
		t.Fatalf("base POST /v1/verify = %d: %s", status, raw)
	}
	var base VerifyResponse
	if err := json.Unmarshal(raw, &base); err != nil {
		t.Fatal(err)
	}

	dbody := `{"base":` + deltaBaseBody + `,"base_key":"` + base.Key +
		`","remove_links":[{"at":[2,3],"dir":"X+"}]}`
	status, raw = post(t, ts, "/v1/verify/delta", dbody)
	if status != 200 {
		t.Fatalf("POST /v1/verify/delta = %d: %s", status, raw)
	}
	var first DeltaResponse
	if err := json.Unmarshal(raw, &first); err != nil {
		t.Fatal(err)
	}
	if first.Provenance != provDelta {
		t.Fatalf("first delta provenance = %q, want %q", first.Provenance, provDelta)
	}
	if first.BaseKey != base.Key {
		t.Fatalf("delta base key %q != verify key %q", first.BaseKey, base.Key)
	}
	if first.Key == "" || first.Key == base.Key {
		t.Fatalf("delta key %q must be set and distinct from the base key", first.Key)
	}
	if first.Network != "6x6 mesh-faulty" {
		t.Fatalf("delta network = %q, want the faulty derivation name", first.Network)
	}

	// The verdict must match a fresh verification of the derived network.
	net, vcs, tset := deltaBaseDesign(t)
	link, ok := net.FindLink(net.ID(topology.Coord{2, 3}), channel.Dim(0), channel.Plus)
	if !ok {
		t.Fatal("test link missing from the mesh")
	}
	want := cdg.VerifyTurnSetCached(net.WithoutLinks([]topology.Link{link}), vcs, tset)
	if first.Channels != want.Channels || first.Edges != want.Edges || first.Acyclic != want.Acyclic {
		t.Fatalf("delta verdict %+v disagrees with fresh verify %+v", first, want)
	}
	if !first.Acyclic {
		t.Fatalf("north-last minus one link must stay acyclic: %+v", first)
	}

	// The identical diff again: memoized under the delta cache identity.
	status, raw = post(t, ts, "/v1/verify/delta", dbody)
	if status != 200 {
		t.Fatalf("repeat POST = %d: %s", status, raw)
	}
	var second DeltaResponse
	if err := json.Unmarshal(raw, &second); err != nil {
		t.Fatal(err)
	}
	if second.Provenance != provCache {
		t.Fatalf("repeat delta provenance = %q, want %q", second.Provenance, provCache)
	}
	second.Provenance = first.Provenance
	if second != first {
		t.Fatalf("memoized delta verdict differs:\n first %+v\nsecond %+v", first, second)
	}

	// Spelling the same link set twice (duplicate specs) is the same
	// canonical diff, so it hits the same cache entry.
	dup := `{"base":` + deltaBaseBody +
		`,"remove_links":[{"at":[2,3],"dir":"X+"},{"at":[2,3],"dir":"X+"}]}`
	status, raw = post(t, ts, "/v1/verify/delta", dup)
	if status != 200 {
		t.Fatalf("duplicate-spec POST = %d: %s", status, raw)
	}
	var third DeltaResponse
	if err := json.Unmarshal(raw, &third); err != nil {
		t.Fatal(err)
	}
	if third.Provenance != provCache || third.Key != first.Key {
		t.Fatalf("duplicate link specs must canonicalize to the cached diff: %+v", third)
	}
}

func TestDeltaEndpointTurnToggle(t *testing.T) {
	_, ts := testServer(t, Config{})
	baseTurns := "X+>Y+,X+>Y-,X->Y+,X->Y-,Y+>X+"
	vbody := `{"network":{"kind":"mesh","sizes":[5,5]},"turns":"` + baseTurns + `"}`
	dbody := `{"base":` + vbody + `,"disable_turns":"Y+>X+"}`

	status, raw := post(t, ts, "/v1/verify/delta", dbody)
	if status != 200 {
		t.Fatalf("POST /v1/verify/delta = %d: %s", status, raw)
	}
	var got DeltaResponse
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if got.Provenance != provDelta {
		t.Fatalf("delta provenance = %q, want %q", got.Provenance, provDelta)
	}
	if got.Network != "5x5 mesh" {
		t.Fatalf("turn-only delta renames the network: %q", got.Network)
	}

	// Expected verdict: the reduced turn list verified from scratch. The
	// declared class set is identical (every class still appears as an
	// endpoint), so the two verifications ask the same question.
	turns, err := core.ParseTurnList("X+>Y+,X+>Y-,X->Y+,X->Y-")
	if err != nil {
		t.Fatal(err)
	}
	tset := core.NewTurnSet()
	for _, tr := range turns {
		tset.Add(tr.From, tr.To, core.ByTheorem1)
	}
	tset.Declare(channel.MustParse("Y+"))
	net := topology.NewMesh(5, 5)
	want := cdg.VerifyTurnSetCached(net, cdg.VCConfigFor(net.Dims(), tset.Classes()), tset)
	if got.Channels != want.Channels || got.Edges != want.Edges || got.Acyclic != want.Acyclic {
		t.Fatalf("turn-toggle delta %+v disagrees with fresh verify %+v", got, want)
	}
}

func TestDeltaBaseKeyMismatch(t *testing.T) {
	_, ts := testServer(t, Config{})
	dbody := `{"base":` + deltaBaseBody + `,"base_key":"deadbeef","remove_links":[{"at":[2,3],"dir":"X+"}]}`
	status, raw := post(t, ts, "/v1/verify/delta", dbody)
	if status != http.StatusBadRequest {
		t.Fatalf("mismatched base_key = %d, want 400 (%s)", status, raw)
	}
	var e errorBody
	if err := json.Unmarshal(raw, &e); err != nil || !strings.Contains(e.Error, "base_key") {
		t.Fatalf("error body %q does not name base_key", raw)
	}
}

func TestDeltaRejectsBadRequests(t *testing.T) {
	_, ts := testServer(t, Config{})
	mesh44 := `{"network":{"kind":"mesh","sizes":[4,4]},"chain":"PA[X+ X- Y-] -> PB[Y+]"}`
	manyLinks := make([]string, maxDeltaLinks+1)
	for i := range manyLinks {
		manyLinks[i] = `{"at":[0,0],"dir":"Y+"}`
	}
	cases := []struct {
		name, body string
	}{
		{"empty", ``},
		{"not json", `not json`},
		{"unknown field", `{"base":` + mesh44 + `,"remove_links":[{"at":[0,0],"dir":"X+"}],"nope":1}`},
		{"no diff", `{"base":` + mesh44 + `}`},
		{"bad base", `{"base":{"network":{"kind":"mesh","sizes":[4,4]}},"remove_links":[{"at":[0,0],"dir":"X+"}]}`},
		{"too many links", `{"base":` + mesh44 + `,"remove_links":[` + strings.Join(manyLinks, ",") + `]}`},
		{"no dir", `{"base":` + mesh44 + `,"remove_links":[{"at":[0,0]}]}`},
		{"bad dir", `{"base":` + mesh44 + `,"remove_links":[{"at":[0,0],"dir":"Q+"}]}`},
		{"dir without sign", `{"base":` + mesh44 + `,"remove_links":[{"at":[0,0],"dir":"XX"}]}`},
		{"wrong coord count", `{"base":` + mesh44 + `,"remove_links":[{"at":[1],"dir":"X+"}]}`},
		{"coord out of bounds", `{"base":` + mesh44 + `,"remove_links":[{"at":[9,9],"dir":"X+"}]}`},
		{"negative coord", `{"base":` + mesh44 + `,"remove_links":[{"at":[-1,0],"dir":"X+"}]}`},
		{"boundary link missing", `{"base":` + mesh44 + `,"remove_links":[{"at":[3,3],"dir":"X+"}]}`},
		{"bad turn list", `{"base":` + mesh44 + `,"disable_turns":"garbage"}`},
		{"long base key", `{"base":` + mesh44 + `,"base_key":"00000000000000000","remove_links":[{"at":[0,0],"dir":"X+"}]}`},
		// These two decode fine but fail diff validation inside the engine:
		// the 400 flows back through statusFor's ErrBadDiff mapping.
		{"disable unknown turn", `{"base":` + mesh44 + `,"disable_turns":"Y+>X+"}`},
		{"enable permitted turn", `{"base":` + mesh44 + `,"enable_turns":"X+>Y+"}`},
	}
	for _, tc := range cases {
		status, raw := post(t, ts, "/v1/verify/delta", tc.body)
		if status != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400 (%s)", tc.name, status, raw)
			continue
		}
		var e errorBody
		if err := json.Unmarshal(raw, &e); err != nil || e.Error == "" {
			t.Errorf("%s: error body %q is not the JSON envelope", tc.name, raw)
		}
	}
}
