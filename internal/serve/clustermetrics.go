package serve

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sort"

	"ebda/internal/obs"
	"ebda/internal/obs/trace"
)

// Cluster-wide metrics aggregation. Every replica serves its own
// snapshot at GET /v1/peer/metrics (a registry read — it bypasses the
// admission queue and keeps answering while draining, like the peer
// cache probe). GET /v1/cluster/metrics turns any replica into an
// aggregation point: it fans out to every other ring member, folds the
// per-replica snapshots into one fleet view with the snapshot algebra's
// Merge, and reports which members it could not reach — a partial merge
// is labelled, never silent. Peers are visited in sorted name order and
// the per-replica section is keyed by name, so two aggregations over
// the same counter state render byte-identically regardless of which
// replica answered.

// ClusterMetricsResponse is the fleet view one aggregation produced.
type ClusterMetricsResponse struct {
	// Replicas lists the members whose snapshots fed the merge (always
	// including the answering replica), sorted by name.
	Replicas []string `json:"replicas"`
	// Unreachable lists ring members whose snapshot fetch failed; their
	// series are missing from Merged.
	Unreachable []string `json:"unreachable,omitempty"`
	// Merged is the fold of every reachable replica's snapshot: counters
	// and gauges sum, histograms combine, phase maxima take the fleet
	// maximum.
	Merged obs.Snapshot `json:"merged"`
	// PerReplica carries each contributing replica's own snapshot — the
	// provenance of every merged series. encoding/json renders map keys
	// sorted, so the response stays deterministic.
	PerReplica map[string]obs.Snapshot `json:"per_replica"`
}

// handlePeerMetrics serves this replica's own snapshot.
func (s *Server) handlePeerMetrics(w http.ResponseWriter, r *http.Request) {
	obsReqPeerMetrics.Inc()
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	if err := s.cfg.Metrics().WriteJSON(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// handleClusterMetrics fans out to the ring and answers the merged
// fleet view. Outside cluster mode the "fleet" is this process alone.
func (s *Server) handleClusterMetrics(w http.ResponseWriter, r *http.Request) {
	obsReqClusterMetrics.Inc()
	t, sw, r := s.startTrace(w, r, "cluster.metrics")
	defer func() { t.Finish(sw.status) }()
	w = sw

	self := "local"
	if s.cluster != nil {
		self = s.cluster.self
	}
	resp := &ClusterMetricsResponse{
		PerReplica: make(map[string]obs.Snapshot),
	}
	own := s.cfg.Metrics()
	resp.Replicas = append(resp.Replicas, self)
	resp.PerReplica[self] = own
	merged := own

	if s.cluster != nil {
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.Timeout)
		defer cancel()
		members := append([]string(nil), s.cluster.ring.Replicas()...)
		sort.Strings(members)
		for _, name := range members {
			if name == self {
				continue
			}
			snap, err := s.cluster.fetchMetrics(ctx, name)
			if err != nil {
				obsClusterMetricsUnreachable.Inc()
				resp.Unreachable = append(resp.Unreachable, name)
				continue
			}
			resp.Replicas = append(resp.Replicas, name)
			resp.PerReplica[name] = snap
			merged = merged.Merge(snap)
		}
		sort.Strings(resp.Replicas)
	}
	resp.Merged = merged
	writeJSON(w, http.StatusOK, resp)
}

// fetchMetrics pulls one peer's snapshot.
func (cp *clusterPeers) fetchMetrics(ctx context.Context, name string) (obs.Snapshot, error) {
	base := cp.peers[name]
	if base == "" {
		return obs.Snapshot{}, fmt.Errorf("serve: no peer URL for %q", name)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/peer/metrics", nil)
	if err != nil {
		return obs.Snapshot{}, err
	}
	hsp := trace.FromContext(ctx).StartSpan("metrics.fetch")
	hsp.SetStr("replica", name)
	defer hsp.End()
	if h := hsp.Header(); h != "" {
		req.Header.Set(trace.Header, h)
	}
	resp, err := cp.client.Do(req)
	if err != nil {
		return obs.Snapshot{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, MaxBodyBytes))
		return obs.Snapshot{}, fmt.Errorf("serve: peer metrics at %q returned %d", name, resp.StatusCode)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, MaxBodyBytes))
	if err != nil {
		return obs.Snapshot{}, err
	}
	return obs.ParseSnapshot(body)
}
