package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"ebda/internal/cdg"
)

// gatedFn returns a compute function that signals when it starts and
// blocks until released, counting invocations.
type gatedFn struct {
	started chan struct{}
	release chan struct{}
	mu      sync.Mutex
	calls   int
}

func newGatedFn() *gatedFn {
	return &gatedFn{started: make(chan struct{}, 16), release: make(chan struct{})}
}

func (g *gatedFn) fn(rep cdg.Report) func(context.Context) (cdg.Report, error) {
	return func(ctx context.Context) (cdg.Report, error) {
		g.mu.Lock()
		g.calls++
		g.mu.Unlock()
		g.started <- struct{}{}
		select {
		case <-g.release:
			return rep, nil
		case <-ctx.Done():
			return cdg.Report{}, ctx.Err()
		}
	}
}

func (g *gatedFn) callCount() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.calls
}

func TestFlightCoalescesIdenticalKeys(t *testing.T) {
	fg := newFlightGroup[cdg.Report]()
	gate := newGatedFn()
	want := cdg.Report{Network: "mesh 6x6", Channels: 4, Acyclic: true}

	type out struct {
		rep    cdg.Report
		leader bool
		err    error
	}
	results := make(chan out, 2)
	go func() {
		rep, leader, err := fg.do(context.Background(), 1, 2, time.Minute, gate.fn(want))
		results <- out{rep, leader, err}
	}()
	<-gate.started // the leader is computing

	go func() {
		rep, leader, err := fg.do(context.Background(), 1, 2, time.Minute, gate.fn(want))
		results <- out{rep, leader, err}
	}()
	// The joiner must not start a second computation; give it a moment
	// to (wrongly) do so before releasing the leader.
	for deadline := 0; ; deadline++ {
		fg.mu.Lock()
		refs := 0
		if c, ok := fg.m[1]; ok {
			refs = c.refs
		}
		fg.mu.Unlock()
		if refs == 2 {
			break
		}
		if deadline > 1000 {
			t.Fatal("joiner never joined the flight")
		}
		time.Sleep(time.Millisecond)
	}
	close(gate.release)

	leaders := 0
	for i := 0; i < 2; i++ {
		r := <-results
		if r.err != nil {
			t.Fatalf("flight error: %v", r.err)
		}
		if r.rep.Network != want.Network || !r.rep.Acyclic {
			t.Fatalf("wrong report: %+v", r.rep)
		}
		if r.leader {
			leaders++
		}
	}
	if leaders != 1 {
		t.Fatalf("got %d leaders, want exactly 1", leaders)
	}
	if n := gate.callCount(); n != 1 {
		t.Fatalf("compute ran %d times, want 1", n)
	}
}

func TestFlightCollisionComputesAlone(t *testing.T) {
	fg := newFlightGroup[cdg.Report]()
	gate := newGatedFn()
	go fg.do(context.Background(), 7, 100, time.Minute, gate.fn(cdg.Report{}))
	<-gate.started

	// Same key, different check hash: a dual-hash collision must not
	// share the other flight's verdict.
	rep, leader, err := fg.do(context.Background(), 7, 200, time.Minute,
		func(ctx context.Context) (cdg.Report, error) {
			return cdg.Report{Channels: 9}, nil
		})
	if err != nil || !leader || rep.Channels != 9 {
		t.Fatalf("collision path: rep=%+v leader=%v err=%v", rep, leader, err)
	}
	close(gate.release)
}

func TestFlightWaiterLeavesOnOwnDeadline(t *testing.T) {
	fg := newFlightGroup[cdg.Report]()
	gate := newGatedFn()
	want := cdg.Report{Channels: 3}

	done := make(chan error, 1)
	go func() {
		_, _, err := fg.do(context.Background(), 3, 4, time.Minute, gate.fn(want))
		done <- err
	}()
	<-gate.started

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, leader, err := fg.do(ctx, 3, 4, time.Minute, gate.fn(want))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled joiner err = %v", err)
	}
	if leader {
		t.Fatal("joiner reported itself leader")
	}

	// The leader is unaffected by the joiner's departure.
	close(gate.release)
	if err := <-done; err != nil {
		t.Fatalf("leader err after joiner left: %v", err)
	}
	if n := gate.callCount(); n != 1 {
		t.Fatalf("compute ran %d times, want 1", n)
	}
}

func TestFlightAbandonedWhenAllWaitersLeave(t *testing.T) {
	fg := newFlightGroup[cdg.Report]()
	computeCtx := make(chan context.Context, 1)
	started := make(chan struct{})

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := fg.do(ctx, 5, 6, time.Minute, func(fctx context.Context) (cdg.Report, error) {
			computeCtx <- fctx
			close(started)
			<-fctx.Done()
			return cdg.Report{}, fctx.Err()
		})
		done <- err
	}()
	<-started
	cancel() // the only waiter leaves

	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("departing leader err = %v", err)
	}
	// With no waiter left, the flight cancels its compute context.
	fctx := <-computeCtx
	select {
	case <-fctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("compute context never cancelled after all waiters left")
	}
}
