package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ebda/internal/cdg"
)

// testServer starts an isolated server (private verify cache) on an
// httptest listener and tears both down with the test.
func testServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := newServer(cfg, &cdg.VerifyCache{})
	// Isolate the mode cache too: graph-endpoint provenance assertions
	// must not see verdicts another test cached process-wide.
	s.modes = &cdg.ModeCache{}
	mux := http.NewServeMux()
	s.Register(mux)
	ts := httptest.NewServer(mux)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s, ts
}

func post(t *testing.T, ts *httptest.Server, path, body string) (int, []byte) {
	t.Helper()
	resp, err := ts.Client().Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.Bytes()
}

func TestVerifyEndpoint(t *testing.T) {
	_, ts := testServer(t, Config{})
	body := `{"network":{"kind":"mesh","sizes":[6,6]},"chain":"PA[X+ X- Y-] -> PB[Y+]"}`

	status, raw := post(t, ts, "/v1/verify", body)
	if status != 200 {
		t.Fatalf("POST /v1/verify = %d: %s", status, raw)
	}
	var first VerifyResponse
	if err := json.Unmarshal(raw, &first); err != nil {
		t.Fatal(err)
	}
	if !first.Acyclic {
		t.Fatalf("north-last on a mesh must be acyclic: %+v", first)
	}
	if first.Provenance != provComputed {
		t.Fatalf("first verdict provenance = %q, want %q", first.Provenance, provComputed)
	}
	if first.Channels == 0 || first.Edges == 0 || first.Key == "" {
		t.Fatalf("response missing report fields: %+v", first)
	}
	if first.Turns.Deg90 == 0 {
		t.Fatalf("response missing turn counts: %+v", first)
	}

	// The identical request again: memoized, and the verdict fields are
	// byte-identical once provenance (which legitimately differs) is
	// canonicalized.
	status, raw2 := post(t, ts, "/v1/verify", body)
	if status != 200 {
		t.Fatalf("repeat POST = %d: %s", status, raw2)
	}
	var second VerifyResponse
	if err := json.Unmarshal(raw2, &second); err != nil {
		t.Fatal(err)
	}
	if second.Provenance != provCache {
		t.Fatalf("repeat verdict provenance = %q, want %q", second.Provenance, provCache)
	}
	first.Provenance, second.Provenance = "", ""
	a, _ := json.Marshal(first)
	b, _ := json.Marshal(second)
	if !bytes.Equal(a, b) {
		t.Fatalf("repeat verdict differs:\nfirst  %s\nsecond %s", a, b)
	}
}

func TestVerifyCyclicDesign(t *testing.T) {
	_, ts := testServer(t, Config{})
	body := `{"network":{"kind":"mesh","sizes":[5,5]},"turns":"X+>Y+,X+>Y-,X->Y+,X->Y-,Y+>X+,Y+>X-,Y->X+,Y->X-"}`
	status, raw := post(t, ts, "/v1/verify", body)
	if status != 200 {
		t.Fatalf("POST = %d: %s", status, raw)
	}
	var resp VerifyResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Acyclic {
		t.Fatal("the unrestricted turn relation must be cyclic on a mesh")
	}
	if resp.Cycle == "" {
		t.Fatal("cyclic verdict carries no example cycle")
	}
}

func TestVerifyRejectsBadRequests(t *testing.T) {
	_, ts := testServer(t, Config{})
	cases := []struct {
		name, body string
	}{
		{"empty", ``},
		{"not json", `not json`},
		{"unknown field", `{"network":{"kind":"mesh","sizes":[4,4]},"chain":"PA[X+]","nope":1}`},
		{"trailing data", `{"network":{"kind":"mesh","sizes":[4,4]},"chain":"PA[X+ X- Y-] -> PB[Y+]"} {}`},
		{"missing network kind", `{"network":{"sizes":[4,4]},"chain":"PA[X+]"}`},
		{"bad kind", `{"network":{"kind":"ring","sizes":[4,4]},"chain":"PA[X+]"}`},
		{"no sizes", `{"network":{"kind":"mesh","sizes":[]},"chain":"PA[X+]"}`},
		{"size too small", `{"network":{"kind":"mesh","sizes":[1,4]},"chain":"PA[X+]"}`},
		{"size too large", `{"network":{"kind":"mesh","sizes":[65,4]},"chain":"PA[X+]"}`},
		{"too many dims", `{"network":{"kind":"mesh","sizes":[2,2,2,2,2]},"chain":"PA[X+]"}`},
		{"node cap", `{"network":{"kind":"mesh","sizes":[64,64,2]},"chain":"PA[X+]"}`},
		{"no design", `{"network":{"kind":"mesh","sizes":[4,4]}}`},
		{"both designs", `{"network":{"kind":"mesh","sizes":[4,4]},"chain":"PA[X+]","turns":"X+>Y+"}`},
		{"bad chain", `{"network":{"kind":"mesh","sizes":[4,4]},"chain":"PA[Q*]"}`},
		{"bad turns", `{"network":{"kind":"mesh","sizes":[4,4]},"turns":"garbage"}`},
	}
	for _, tc := range cases {
		status, raw := post(t, ts, "/v1/verify", tc.body)
		if status != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400 (%s)", tc.name, status, raw)
			continue
		}
		var e errorBody
		if err := json.Unmarshal(raw, &e); err != nil || e.Error == "" {
			t.Errorf("%s: error body %q is not the JSON envelope", tc.name, raw)
		}
	}
}

func TestEndpointsRejectGET(t *testing.T) {
	_, ts := testServer(t, Config{})
	for _, path := range []string{"/v1/verify", "/v1/verify/delta", "/v1/design", "/v1/batch"} {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("GET %s = %d, want 405", path, resp.StatusCode)
		}
	}
}

func TestBatchMixedResults(t *testing.T) {
	_, ts := testServer(t, Config{})
	body := `{"requests":[
		{"network":{"kind":"mesh","sizes":[5,5]},"chain":"PA[X+ X- Y-] -> PB[Y+]"},
		{"network":{"kind":"mesh","sizes":[1,5]},"chain":"PA[X+]"},
		{"network":{"kind":"mesh","sizes":[5,5]},"chain":"PA[X+ X- Y-] -> PB[Y+]"}
	]}`
	status, raw := post(t, ts, "/v1/batch", body)
	if status != 200 {
		t.Fatalf("POST /v1/batch = %d: %s", status, raw)
	}
	var resp BatchResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(resp.Results))
	}
	if resp.Results[0].OK == nil || !resp.Results[0].OK.Acyclic {
		t.Fatalf("item 0 should verify acyclic: %+v", resp.Results[0])
	}
	if resp.Results[1].OK != nil || resp.Results[1].Status != http.StatusBadRequest {
		t.Fatalf("item 1 should fail validation with 400: %+v", resp.Results[1])
	}
	// Item 2 repeats item 0 inside one batch: served from cache.
	if resp.Results[2].OK == nil || resp.Results[2].OK.Provenance != provCache {
		t.Fatalf("item 2 should be a cache hit: %+v", resp.Results[2])
	}
	if resp.Results[2].OK.Key != resp.Results[0].OK.Key {
		t.Fatal("identical items carry different verify keys")
	}
}

func TestBatchLimits(t *testing.T) {
	_, ts := testServer(t, Config{})
	if status, _ := post(t, ts, "/v1/batch", `{"requests":[]}`); status != http.StatusBadRequest {
		t.Fatalf("empty batch = %d, want 400", status)
	}
	var sb strings.Builder
	sb.WriteString(`{"requests":[`)
	for i := 0; i <= maxBatch; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		sb.WriteString(`{"network":{"kind":"mesh","sizes":[4,4]},"chain":"PA[X+ X- Y-] -> PB[Y+]"}`)
	}
	sb.WriteString(`]}`)
	if status, _ := post(t, ts, "/v1/batch", sb.String()); status != http.StatusBadRequest {
		t.Fatalf("oversized batch = %d, want 400", status)
	}
}

func TestDesignEndpoint(t *testing.T) {
	_, ts := testServer(t, Config{})
	status, raw := post(t, ts, "/v1/design", `{"vcs":[1,2],"max":4}`)
	if status != 200 {
		t.Fatalf("POST /v1/design = %d: %s", status, raw)
	}
	var resp DesignResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Derived == 0 || len(resp.Options) == 0 {
		t.Fatalf("design family is empty: %+v", resp)
	}
	if len(resp.Options) > 4 {
		t.Fatalf("max=4 not honored: %d options", len(resp.Options))
	}
	for i, opt := range resp.Options {
		if !opt.Acyclic {
			t.Errorf("derived option %d (%s) is cyclic — Algorithm 2 output must be deadlock-free", i, opt.Chain)
		}
		if opt.Chain == "" || opt.Channels == 0 {
			t.Errorf("option %d missing fields: %+v", i, opt)
		}
	}
}

func TestDesignRejectsBadBudgets(t *testing.T) {
	_, ts := testServer(t, Config{})
	for name, body := range map[string]string{
		"no vcs":        `{}`,
		"zero vc":       `{"vcs":[0,1]}`,
		"vc over cap":   `{"vcs":[9]}`,
		"too many dims": `{"vcs":[1,1,1,1,1]}`,
		"torus net":     `{"vcs":[1,1],"network":{"kind":"torus","sizes":[5,5]}}`,
		"dim mismatch":  `{"vcs":[1,1],"network":{"kind":"mesh","sizes":[5,5,5]}}`,
	} {
		if status, raw := post(t, ts, "/v1/design", body); status != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400 (%s)", name, status, raw)
		}
	}
}

func TestQueueFullRejects429(t *testing.T) {
	s, ts := testServer(t, Config{Workers: 1, QueueDepth: 1, Timeout: 5 * time.Second})
	// Wedge the single worker, then fill the queue's one slot, so the
	// next admission must shed.
	block := make(chan struct{})
	running := make(chan struct{})
	if err := s.submit(func() { close(running); <-block }); err != nil {
		t.Fatal(err)
	}
	<-running
	if err := s.submit(func() {}); err != nil {
		t.Fatalf("queue slot should admit: %v", err)
	}
	defer close(block)

	status, raw := post(t, ts, "/v1/verify",
		`{"network":{"kind":"mesh","sizes":[7,7]},"chain":"PA[X+ X- Y-] -> PB[Y+]"}`)
	if status != http.StatusTooManyRequests {
		t.Fatalf("saturated server = %d, want 429 (%s)", status, raw)
	}
}

func TestDrainingRejects503ButServesCacheHits(t *testing.T) {
	s, ts := testServer(t, Config{})
	warm := `{"network":{"kind":"mesh","sizes":[6,6]},"chain":"PA[X- Y-] -> PB[X+ Y+]"}`
	if status, raw := post(t, ts, "/v1/verify", warm); status != 200 {
		t.Fatalf("warmup = %d: %s", status, raw)
	}

	if !s.Ready() {
		t.Fatal("fresh server not ready")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if s.Ready() {
		t.Fatal("draining server reports ready")
	}

	// Fresh work is shed...
	status, raw := post(t, ts, "/v1/verify",
		`{"network":{"kind":"mesh","sizes":[9,9]},"chain":"PA[X+ X- Y-] -> PB[Y+]"}`)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("fresh request while draining = %d, want 503 (%s)", status, raw)
	}
	// ...but a memoized verdict costs nothing and is still answered.
	status, raw = post(t, ts, "/v1/verify", warm)
	if status != 200 {
		t.Fatalf("cached request while draining = %d, want 200 (%s)", status, raw)
	}
	var resp VerifyResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Provenance != provCache {
		t.Fatalf("draining verdict provenance = %q, want %q", resp.Provenance, provCache)
	}

	// Shutdown is idempotent.
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
}

func TestNetworkCacheInterns(t *testing.T) {
	nc := newNetworkCache()
	a := nc.get("mesh", []int{6, 6})
	b := nc.get("mesh", []int{6, 6})
	if a != b {
		t.Fatal("same shape resolved to distinct networks; the workspace pool cannot reuse")
	}
	if c := nc.get("torus", []int{6, 6}); c == a {
		t.Fatal("torus interned onto the mesh entry")
	}
	if d := nc.get("mesh", []int{6, 8}); d == a {
		t.Fatal("distinct sizes interned together")
	}
}

func TestQuantile(t *testing.T) {
	if q := Quantile(nil, 0.5); q != 0 {
		t.Fatalf("empty quantile = %v", q)
	}
	one := []float64{7}
	if q := Quantile(one, 0.99); q != 7 {
		t.Fatalf("single-sample p99 = %v", q)
	}
	xs := []float64{5, 1, 4, 2, 3}
	if q := Quantile(xs, 0.5); q != 3 {
		t.Fatalf("p50 of 1..5 = %v, want 3", q)
	}
	if q := Quantile(xs, 1); q != 5 {
		t.Fatalf("p100 of 1..5 = %v, want 5", q)
	}
}

func TestReadBenchRejectsOtherKinds(t *testing.T) {
	if _, err := ReadBench([]byte(`{"kind":"serve","requests":3}`)); err != nil {
		t.Fatalf("serve snapshot rejected: %v", err)
	}
	if _, err := ReadBench([]byte(`{"go_version":"go1.24"}`)); err == nil {
		t.Fatal("engine snapshot (no kind) accepted as a serve snapshot")
	}
	if _, err := ReadBench([]byte(`not json`)); err == nil {
		t.Fatal("garbage accepted")
	}
}
