package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"ebda/internal/cdg"
	"ebda/internal/graphio"
	"ebda/internal/obs/trace"
)

// POST /v1/verify/graph: multi-mode verification of an arbitrary
// channel dependence graph supplied inline — the serving face of
// internal/graphio. Requests carry either the structured JSON graph or
// the constellation text form verbatim, plus a mode; verdicts flow
// through the same admission queue, per-request deadline, singleflight
// group, and provenance discipline as /v1/verify, memoized in the
// process-wide mode cache under cdg.ModeKey. The endpoint is local to
// each replica: mode keys are not part of the cluster ring's keyspace.

// Graph request limits.
const (
	// maxGraphChannels bounds a submitted graph's channel count,
	// mirroring the maxNodes bound on concrete networks.
	maxGraphChannels = 4096
	// maxGraphEdges bounds a submitted graph's edge count.
	maxGraphEdges = 1 << 17
)

// GraphSpec is the inline structured encoding of an annotated CDG,
// field-for-field the graphio JSON variant.
type GraphSpec struct {
	Channels int      `json:"channels"`
	Inputs   []int    `json:"inputs"`
	Outputs  []int    `json:"outputs"`
	Edges    [][2]int `json:"edges"`
}

// GraphVerifyRequest asks for one mode verdict over an inline graph.
// Exactly one of Graph (structured) and CDG (constellation text,
// verbatim) must be set.
type GraphVerifyRequest struct {
	Graph  *GraphSpec `json:"graph,omitempty"`
	CDG    string     `json:"cdg,omitempty"`
	Mode   string     `json:"mode"`
	Escape []int      `json:"escape,omitempty"`
}

// GraphVerifyResponse is the mode verdict. Path and Cycle render the
// witness chains in the engine's "n1 => n17" form; Key is the
// mode-aware cache identity (hex).
type GraphVerifyResponse struct {
	Mode             string `json:"mode"`
	Channels         int    `json:"channels"`
	Edges            int    `json:"edges"`
	OK               bool   `json:"ok"`
	Reason           string `json:"reason,omitempty"`
	Path             string `json:"path,omitempty"`
	Cycle            string `json:"cycle,omitempty"`
	SubrelationEdges int    `json:"subrelation_edges,omitempty"`
	Provenance       string `json:"provenance"`
	Key              string `json:"key"`
}

// builtGraph is a decoded, validated graph request ready for the
// verdict pipeline.
type builtGraph struct {
	g      *graphio.Graph
	mode   cdg.GraphMode
	escape []int
}

// build validates the request and parses the graph. Like
// VerifyRequest.build it returns client errors only — everything here
// maps to a 400.
func (req *GraphVerifyRequest) build() (*builtGraph, error) {
	mode, err := cdg.ParseGraphMode(req.Mode)
	if err != nil {
		return nil, err
	}
	var g *graphio.Graph
	switch {
	case req.Graph != nil && req.CDG != "":
		return nil, errors.New("use either graph or cdg, not both")
	case req.Graph != nil:
		g, err = graphio.New(req.Graph.Channels, req.Graph.Inputs, req.Graph.Outputs, req.Graph.Edges)
	case req.CDG != "":
		g, err = graphio.ParseCDG([]byte(req.CDG))
	default:
		return nil, errors.New("one of graph or cdg is required")
	}
	if err != nil {
		return nil, err
	}
	if n := g.Edges.NumNodes(); n > maxGraphChannels {
		return nil, fmt.Errorf("graph has %d channels, limit %d", n, maxGraphChannels)
	}
	if n := g.Edges.NumEdges(); n > maxGraphEdges {
		return nil, fmt.Errorf("graph has %d edges, limit %d", n, maxGraphEdges)
	}
	if mode == cdg.ModeEscape && len(req.Escape) == 0 {
		return nil, errors.New("mode escape requires a non-empty escape set")
	}
	for _, v := range req.Escape {
		if v < 0 || v >= g.Edges.NumNodes() {
			return nil, fmt.Errorf("escape channel %d outside [0, %d)", v, g.Edges.NumNodes())
		}
	}
	return &builtGraph{g: g, mode: mode, escape: req.Escape}, nil
}

// graphVerdict produces one mode verdict: mode cache probe first, then
// a coalesced flight whose leader computes on a queue worker.
func (s *Server) graphVerdict(ctx context.Context, b *builtGraph) (cdg.ModeReport, string, error) {
	tc := trace.FromContext(ctx)
	lsp := tc.StartSpan("cache.lookup")
	if rep, ok := s.modes.Lookup(b.g.Edges, b.mode, b.g.Inputs, b.g.Outputs, b.escape); ok {
		lsp.SetInt("hit", 1)
		lsp.End()
		obsVerdictCache.Inc()
		return rep, provCache, nil
	}
	lsp.SetInt("hit", 0)
	lsp.End()
	key, check := cdg.ModeKey(b.g.Edges, b.mode, b.g.Inputs, b.g.Outputs, b.escape)
	fsp := tc.StartSpan("flight")
	rep, leader, err := s.gflight.do(ctx, key, check, s.cfg.Timeout, func(fctx context.Context) (cdg.ModeReport, error) {
		return s.computeGraph(fctx, b)
	})
	if err != nil {
		fsp.End()
		return cdg.ModeReport{}, "", err
	}
	if leader {
		fsp.SetStr("role", "leader")
		fsp.End()
		obsVerdictComputed.Inc()
		return rep, provComputed, nil
	}
	fsp.SetStr("role", "follower")
	fsp.End()
	obsVerdictCoalesced.Inc()
	return rep, provCoalesced, nil
}

// computeGraph runs one mode verification on a queue worker under ctx.
func (s *Server) computeGraph(ctx context.Context, b *builtGraph) (cdg.ModeReport, error) {
	type result struct {
		rep cdg.ModeReport
		err error
	}
	res := make(chan result, 1)
	tc := trace.FromContext(ctx)
	tc.Retain()
	qsp := tc.StartSpan("queue.wait")
	err := s.submit(func() {
		qsp.End()
		obsQueueDepth.Add(-1)
		rep, err := s.modes.VerifyModeCtx(ctx, b.g.Edges, b.mode, b.g.Inputs, b.g.Outputs, b.escape, s.cfg.Jobs)
		res <- result{rep, err}
		tc.Release()
	})
	if err != nil {
		qsp.SetInt("rejected", 1)
		qsp.End()
		tc.Release()
		return cdg.ModeReport{}, err
	}
	select {
	case r := <-res:
		return r.rep, r.err
	case <-ctx.Done():
		// The queued task still runs (quickly, its context is dead) and
		// parks its result in the buffered channel for the collector.
		return cdg.ModeReport{}, ctx.Err()
	}
}

func (s *Server) handleGraph(w http.ResponseWriter, r *http.Request) {
	obsReqGraph.Inc()
	t, sw, r := s.startTrace(w, r, "serve.graph")
	defer func() { t.Finish(sw.status) }()
	w = sw
	sp := phaseServeGraph.Start()
	defer sp.End()
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req GraphVerifyRequest
	if err := decodeStrict(http.MaxBytesReader(w, r.Body, MaxBodyBytes), &req); err != nil {
		obsRejectBad.Inc()
		writeError(w, http.StatusBadRequest, sanitizeErr(err))
		return
	}
	b, err := req.build()
	if err != nil {
		obsRejectBad.Inc()
		writeError(w, http.StatusBadRequest, sanitizeErr(err))
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.Timeout)
	defer cancel()
	rep, prov, err := s.graphVerdict(ctx, b)
	if err != nil {
		writeError(w, statusFor(err), sanitizeErr(err))
		return
	}
	t.SetProvenance(prov)
	key, _ := cdg.ModeKey(b.g.Edges, b.mode, b.g.Inputs, b.g.Outputs, b.escape)
	resp := &GraphVerifyResponse{
		Mode:       rep.Mode.String(),
		Channels:   rep.Nodes,
		Edges:      rep.Edges,
		OK:         rep.OK,
		Reason:     rep.Reason,
		Provenance: prov,
		Key:        strconv.FormatUint(key, 16),
	}
	if len(rep.Path) > 0 {
		resp.Path = cdg.FormatNodeChain(rep.Path)
	}
	if len(rep.Cycle) > 0 {
		resp.Cycle = cdg.FormatNodeChain(rep.Cycle)
	}
	if rep.OK && rep.Mode == cdg.ModeSubrel {
		resp.SubrelationEdges = len(rep.Subrelation)
	}
	writeJSON(w, http.StatusOK, resp)
}
