package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"ebda/internal/cdg"
	"ebda/internal/cluster"
	"ebda/internal/obs"
	"ebda/internal/obs/trace"
)

// tracedCluster is testCluster with per-replica tracers sharing one
// flight recorder, so a forwarded request's fragments land in the same
// ring and Collect can merge them.
func tracedCluster(t *testing.T, names []string, rec *trace.Recorder, metrics map[string]func() obs.Snapshot) map[string]*testReplica {
	t.Helper()
	ring, err := cluster.New(names)
	if err != nil {
		t.Fatal(err)
	}
	reps := make(map[string]*testReplica, len(names))
	muxes := make(map[string]*http.ServeMux, len(names))
	urls := make(map[string]string, len(names))
	for _, name := range names {
		mux := http.NewServeMux()
		hts := httptest.NewServer(mux)
		t.Cleanup(hts.Close)
		muxes[name] = mux
		urls[name] = hts.URL
		reps[name] = &testReplica{ts: hts}
	}
	for _, name := range names {
		peers := make(map[string]string)
		for other, u := range urls {
			if other != name {
				peers[other] = u
			}
		}
		cache := &cdg.VerifyCache{}
		cfg := Config{
			Cluster: &ClusterConfig{Self: name, Ring: ring, Peers: peers},
			Tracer: trace.New(trace.Config{
				Fragment:      name,
				SampleEvery:   1,
				SlowThreshold: -1,
				Recorder:      rec,
			}),
		}
		if metrics != nil {
			cfg.Metrics = metrics[name]
		}
		srv := NewReplica(cfg, cache)
		srv.Register(muxes[name])
		reps[name].srv = srv
		reps[name].cache = cache
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			srv.Shutdown(ctx)
		})
	}
	return reps
}

// TestClusterTraceOneRequest is the tracing acceptance check: a request
// forwarded across two in-process replicas yields ONE trace containing
// the edge admission, the peer hop and the owner's peel spans, with the
// cross-replica parent links intact.
func TestClusterTraceOneRequest(t *testing.T) {
	rec := trace.NewRecorder(64, 16)
	reps := tracedCluster(t, []string{"r0", "r1"}, rec, nil)
	body, _ := designOwnedBy(t, reps["r0"].srv.cluster.ring, "r1")

	resp, err := http.Post(reps["r0"].ts.URL+"/v1/verify", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var vr VerifyResponse
	if err := json.Unmarshal(raw, &vr); err != nil {
		t.Fatal(err)
	}
	if vr.Provenance != provForwarded {
		t.Fatalf("provenance = %q, want %q (fresh caches must forward to the owner)", vr.Provenance, provForwarded)
	}

	traces := trace.Collect(rec.Snapshot())
	if len(traces) != 1 {
		t.Fatalf("Collect returned %d traces, want 1 (edge and owner fragments must merge): %+v", len(traces), traces)
	}
	tj := traces[0]
	if !strings.HasPrefix(tj.ID, "r0-") {
		t.Errorf("trace ID %q does not carry the edge fragment prefix r0-", tj.ID)
	}
	if tj.Provenance != provForwarded {
		t.Errorf("trace provenance = %q, want %q", tj.Provenance, provForwarded)
	}

	// Index spans by fragment-qualified name.
	find := func(frag, name string) *trace.SpanJSON {
		for i := range tj.Spans {
			sp := &tj.Spans[i]
			if sp.Name == name && strings.HasPrefix(sp.ID, frag+":") {
				return sp
			}
		}
		t.Fatalf("span %s on fragment %s missing from merged trace: %+v", name, frag, tj.Spans)
		return nil
	}
	edgeRoot := find("r0", "serve.verify")
	if edgeRoot.Parent != "" {
		t.Errorf("edge root parent = %q, want none", edgeRoot.Parent)
	}
	lookup := find("r0", "cluster.lookup")
	forward := find("r0", "cluster.forward")
	if lookup.Parent != edgeRoot.ID || forward.Parent != edgeRoot.ID {
		t.Errorf("peer-hop spans parent = %q/%q, want edge root %q", lookup.Parent, forward.Parent, edgeRoot.ID)
	}
	peerRoot := find("r1", "peer.lookup")
	if peerRoot.Parent != lookup.ID {
		t.Errorf("owner peer.lookup parent = %q, want edge cluster.lookup %q", peerRoot.Parent, lookup.ID)
	}
	ownerRoot := find("r1", "serve.verify")
	if ownerRoot.Parent != forward.ID {
		t.Errorf("owner root parent = %q, want edge cluster.forward %q", ownerRoot.Parent, forward.ID)
	}
	// The owner computed: its peel spans must hang off its own root.
	kahn := find("r1", "cdg.kahn")
	verify := find("r1", "cdg.verify")
	if kahn.Parent != verify.ID {
		t.Errorf("owner cdg.kahn parent = %q, want owner cdg.verify %q", kahn.Parent, verify.ID)
	}
}

// TestClusterMetricsMerge pins /v1/cluster/metrics: the merged snapshot
// equals the per-replica sum on exercised counters, an unreachable
// member is labelled rather than silently dropped, and two aggregations
// over the same state render byte-identically.
func TestClusterMetricsMerge(t *testing.T) {
	rec := trace.NewRecorder(64, 16)
	snapA := obs.Snapshot{Counters: []obs.CounterVal{{Name: "x_total", Value: 3}, {Name: "y_total", Value: 1}}}
	snapB := obs.Snapshot{Counters: []obs.CounterVal{{Name: "x_total", Value: 4}, {Name: "z_total", Value: 9}}}
	reps := tracedCluster(t, []string{"r0", "r1"}, rec, map[string]func() obs.Snapshot{
		"r0": func() obs.Snapshot { return snapA },
		"r1": func() obs.Snapshot { return snapB },
	})

	// Point r0 at a third ring member whose URL refuses connections: the
	// merge must proceed and label the gap.
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()
	ring, err := cluster.New([]string{"r0", "r1", "r2"})
	if err != nil {
		t.Fatal(err)
	}
	r0 := reps["r0"].srv
	r0.cluster.ring = ring
	r0.cluster.peers["r2"] = deadURL

	fetch := func() ([]byte, ClusterMetricsResponse) {
		resp, err := http.Get(reps["r0"].ts.URL + "/v1/cluster/metrics")
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, raw)
		}
		var cm ClusterMetricsResponse
		if err := json.Unmarshal(raw, &cm); err != nil {
			t.Fatal(err)
		}
		return raw, cm
	}
	rawFirst, cm := fetch()

	if got, want := cm.Replicas, []string{"r0", "r1"}; strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("replicas = %v, want %v", got, want)
	}
	if got, want := cm.Unreachable, []string{"r2"}; strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("unreachable = %v, want %v", got, want)
	}
	// Merged equals the per-replica sum on every exercised counter.
	for _, c := range []struct {
		name string
		want uint64
	}{{"x_total", 7}, {"y_total", 1}, {"z_total", 9}} {
		if got := cm.Merged.Counter(c.name); got != c.want {
			t.Errorf("merged %s = %d, want %d", c.name, got, c.want)
		}
	}
	if got := cm.PerReplica["r0"].Counter("x_total"); got != 3 {
		t.Errorf("per-replica r0 x_total = %d, want 3 (provenance lost)", got)
	}
	if got := cm.PerReplica["r1"].Counter("z_total"); got != 9 {
		t.Errorf("per-replica r1 z_total = %d, want 9 (provenance lost)", got)
	}

	rawSecond, _ := fetch()
	if string(rawFirst) != string(rawSecond) {
		t.Errorf("two aggregations over identical state differ:\n%s\nvs\n%s", rawFirst, rawSecond)
	}
}

// TestCoalescedFollowerLinksLeaderTrace pins the flight fix: a follower
// joining an in-flight computation records the leader's trace ID, so
// /debug/traces can link the coalesced pair.
func TestCoalescedFollowerLinksLeaderTrace(t *testing.T) {
	rec := trace.NewRecorder(8, 4)
	tr := trace.New(trace.Config{Fragment: "f", SampleEvery: 1, SlowThreshold: -1, Recorder: rec})
	g := newFlightGroup[cdg.Report]()

	leaderT := tr.Start("serve.verify")
	followerT := tr.Start("serve.verify")
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		ctx := trace.NewContext(context.Background(), leaderT)
		g.do(ctx, 1, 2, time.Minute, func(context.Context) (cdg.Report, error) {
			<-release
			return cdg.Report{}, nil
		})
	}()
	// The flight is joinable once registered; wait for it, then join.
	for {
		g.mu.Lock()
		_, ok := g.m[1]
		g.mu.Unlock()
		if ok {
			break
		}
		time.Sleep(time.Millisecond)
	}
	go func() {
		defer wg.Done()
		ctx := trace.NewContext(context.Background(), followerT)
		g.do(ctx, 1, 2, time.Minute, func(context.Context) (cdg.Report, error) {
			t.Error("follower led its own flight; it should have joined the leader's")
			return cdg.Report{}, nil
		})
	}()
	// Release the compute only once both waiters are on the flight.
	for {
		g.mu.Lock()
		c, ok := g.m[1]
		refs := 0
		if ok {
			refs = c.refs
		}
		g.mu.Unlock()
		if refs == 2 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	leaderID := leaderT.ID()
	if got := followerT.Export().CoalescedWith; got != leaderID {
		t.Fatalf("follower coalesced_with = %q, want leader trace %q", got, leaderID)
	}
	leaderT.Finish(200)
	followerT.Finish(200)
}
