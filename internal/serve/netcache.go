package serve

import (
	"strconv"
	"sync"

	"ebda/internal/topology"
)

// networkCache interns *topology.Network values by (kind, sizes). The
// engine's workspace pool keys on network pointer identity, so two
// requests naming the same shape must resolve to the same pointer to
// share pooled workspaces — a fresh NewMesh per request would defeat the
// pool (and its allocation-free repeat path) entirely.
//
// The map is bounded like the verify cache: past maxNetworks it is
// flushed wholesale. Correctness never depends on interning — a flush
// only costs pool warmth.
type networkCache struct {
	mu sync.Mutex
	m  map[string]*topology.Network
}

// maxNetworks bounds the interning map. The admissible shape space is
// small (kinds x sizes under the node cap), so steady state never
// flushes; the bound is a backstop.
const maxNetworks = 256

func newNetworkCache() *networkCache {
	return &networkCache{m: make(map[string]*topology.Network)}
}

// get returns the canonical network for a validated (kind, sizes) pair,
// constructing it on first use. kind must be "mesh" or "torus" (the spec
// validator guarantees it).
func (nc *networkCache) get(kind string, sizes []int) *topology.Network {
	key := netKey(kind, sizes)
	nc.mu.Lock()
	if net, ok := nc.m[key]; ok {
		nc.mu.Unlock()
		return net
	}
	nc.mu.Unlock()
	// Build outside the lock: construction is pure and a duplicate build
	// on a race is harmless — the store below re-checks.
	var net *topology.Network
	if kind == "torus" {
		net = topology.NewTorus(sizes...)
	} else {
		net = topology.NewMesh(sizes...)
	}
	nc.mu.Lock()
	defer nc.mu.Unlock()
	if cur, ok := nc.m[key]; ok {
		return cur
	}
	if len(nc.m) >= maxNetworks {
		nc.m = make(map[string]*topology.Network)
	}
	nc.m[key] = net
	return net
}

// netKey renders the interning key, e.g. "mesh:8x8".
func netKey(kind string, sizes []int) string {
	b := make([]byte, 0, len(kind)+1+len(sizes)*3)
	b = append(b, kind...)
	b = append(b, ':')
	for i, s := range sizes {
		if i > 0 {
			b = append(b, 'x')
		}
		b = strconv.AppendInt(b, int64(s), 10)
	}
	return string(b)
}
