package serve

import (
	"context"
	"sync"
	"time"

	"ebda/internal/obs/trace"
)

// flightGroup coalesces concurrent identical verifications onto one
// computation. Flights are keyed by a dual-hash identity from the
// cdg key family (cdg.VerifyKey, cdg.DeltaKey, cdg.ModeKey): two
// requests share a flight iff they would share a cache entry, so a
// coalesced verdict is exactly the verdict the joiner would have
// computed. The report type is generic — the /v1/verify pipeline
// flies cdg.Report, /v1/verify/graph flies cdg.ModeReport — with one
// group per report type so keys from different families never meet.
//
// The leader's computation runs in its own goroutine on a context
// detached from any single request: joiners may outlive the request that
// started the flight, so the compute is cancelled only when every
// interested waiter has left (a refcount), or when the flight-wide
// timeout fires. A completed flight is removed from the map before its
// result is published; by then the verify cache holds the report, so
// late arrivals hit the cache instead of a stale flight.
type flightGroup[R any] struct {
	mu sync.Mutex
	m  map[uint64]*flightCall[R]
}

type flightCall[R any] struct {
	check  uint64
	done   chan struct{}
	cancel context.CancelFunc
	refs   int
	// traceID names the leader's trace; joiners link their own traces to
	// it (the coalesced_with field at /debug/traces).
	traceID string
	rep     R
	err     error
}

func newFlightGroup[R any]() *flightGroup[R] {
	return &flightGroup[R]{m: make(map[uint64]*flightCall[R])}
}

// do returns the verification keyed (key, check), joining an in-flight
// computation when one exists and otherwise leading a new one through
// fn. The leader bool reports which role this call played. fn receives a
// context bounded by timeout and cancelled when no waiter remains; its
// error (including context expiry) propagates to every waiter of the
// flight. A waiter whose own ctx fires leaves early with ctx's error.
func (g *flightGroup[R]) do(ctx context.Context, key, check uint64, timeout time.Duration, fn func(context.Context) (R, error)) (R, bool, error) {
	g.mu.Lock()
	if c, ok := g.m[key]; ok {
		if c.check == check {
			c.refs++
			leaderID := c.traceID
			g.mu.Unlock()
			trace.FromContext(ctx).SetCoalescedWith(leaderID)
			return g.wait(ctx, c, false)
		}
		g.mu.Unlock()
		// Dual-hash collision: a distinct verification shares the 64-bit
		// map key. Compute alone rather than coalesce onto (or displace)
		// the other flight — correctness over sharing.
		cctx, cancel := context.WithTimeout(ctx, timeout)
		defer cancel()
		rep, err := fn(cctx)
		return rep, true, err
	}
	c := &flightCall[R]{check: check, done: make(chan struct{}), refs: 1}
	lt := trace.FromContext(ctx)
	c.traceID = lt.ID()
	// The flight deliberately detaches from the first caller's context:
	// later joiners must not lose the result because the first requester
	// hung up. Cancellation happens via refcount in wait(). The leader's
	// trace rides along so the compute's spans land on it; the extra
	// reference keeps the trace out of the pool while the detached
	// goroutine may still be recording.
	//ebda:allow ctxlint detached coalesced flight outlives its first caller
	base, cancel := context.WithCancel(trace.NewContext(context.Background(), lt))
	c.cancel = cancel
	g.m[key] = c
	g.mu.Unlock()
	lt.Retain()
	go func() {
		defer lt.Release()
		fctx, fcancel := context.WithTimeout(base, timeout)
		rep, err := fn(fctx)
		fcancel()
		cancel()
		g.mu.Lock()
		c.rep, c.err = rep, err
		delete(g.m, key)
		g.mu.Unlock()
		close(c.done)
	}()
	return g.wait(ctx, c, true)
}

// wait blocks until the flight completes or the waiter's own context
// fires. A departing waiter drops its reference; the last one out
// cancels the compute — nobody is left to use the result.
func (g *flightGroup[R]) wait(ctx context.Context, c *flightCall[R], leader bool) (R, bool, error) {
	select {
	case <-c.done:
		return c.rep, leader, c.err
	case <-ctx.Done():
		g.mu.Lock()
		c.refs--
		abandon := c.refs == 0
		g.mu.Unlock()
		if abandon {
			c.cancel()
		}
		var zero R
		return zero, leader, ctx.Err()
	}
}
