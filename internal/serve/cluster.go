package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"ebda/internal/cdg"
	"ebda/internal/cluster"
	"ebda/internal/obs/trace"
)

// Cluster mode shards the verify-cache keyspace across replicas: every
// replica builds the same cluster.Ring, so all of them agree — with no
// runtime coordination — on which replica owns which cache key. A
// replica that receives a request for a key it does not own answers in
// cost order:
//
//  1. its own cache (a prior forward or snapshot may have seeded it),
//  2. a peer cache probe at the owner (GET /v1/peer/lookup/{key}),
//  3. a proxied request to the owner (provenance "forwarded"), so the
//     verdict is computed and memoized where the keyspace says it lives,
//  4. local compute, the degraded path when the owner is unreachable
//     (the cluster keeps answering through partitions; the stray entry
//     is wasted cache space, never a wrong verdict).
//
// Forwarded requests carry the ForwardHeader; a replica that sees it
// always serves locally, so a misrouted request makes at most one hop
// regardless of how the rings disagree. Peer lookups are pure cache
// probes: they bypass the admission queue (they cost a map read, not a
// verification) and keep answering while the replica drains, so a
// draining owner still shares its memoized verdicts with the replicas
// taking over its traffic.
//
// Only /v1/verify and /v1/verify/delta route through the ring — they
// are keyed by a single cache identity. /v1/batch and /v1/design fan
// out over many keys per request and stay local; their per-verdict
// cache traffic is not worth a network hop per item.

// ForwardHeader marks a request proxied by a non-owner replica. Its
// value is the forwarding replica's name; any value disables further
// forwarding at the receiver (single-hop loop protection).
const ForwardHeader = "X-Ebda-Forwarded"

// Forwarded-path provenance values: "peer" answered from the owner's
// cache via a peer lookup, "forwarded" proxied the whole request to the
// owner.
const (
	provPeer      = "peer"
	provForwarded = "forwarded"
)

// ClusterConfig wires a server into a replica ring.
type ClusterConfig struct {
	// Self is this replica's name. It need not be a ring member: a
	// non-member owns no keys and acts as a pure edge router.
	Self string
	// Ring is the shared slot table. Every replica must build it from
	// the same member list (cluster.Ring.Fingerprint asserts agreement).
	Ring *cluster.Ring
	// Peers maps every ring member except Self to a base URL
	// ("http://host:port"). Members without a URL cannot be probed or
	// forwarded to, so validation rejects the gap.
	Peers map[string]string
	// NoForward disables step 3: a non-owner that misses its cache and
	// the owner's cache computes locally instead of proxying.
	NoForward bool
	// Client issues peer lookups and forwards (default: a plain
	// http.Client; per-request contexts bound every call).
	Client *http.Client
}

// Validate checks the config against the ring: a non-nil ring and a
// peer URL for every member other than Self.
func (c *ClusterConfig) Validate() error {
	if c.Self == "" {
		return errors.New("serve: cluster config needs a replica name")
	}
	if c.Ring == nil {
		return errors.New("serve: cluster config needs a ring")
	}
	for _, name := range c.Ring.Replicas() {
		if name == c.Self {
			continue
		}
		if c.Peers[name] == "" {
			return fmt.Errorf("serve: ring member %q has no peer URL", name)
		}
	}
	return nil
}

// clusterPeers is the runtime routing state built from a ClusterConfig.
type clusterPeers struct {
	self      string
	ring      *cluster.Ring
	peers     map[string]string
	noForward bool
	client    *http.Client
}

func newClusterPeers(cfg *ClusterConfig) *clusterPeers {
	if err := cfg.Validate(); err != nil {
		panic(err) // constructor contract: callers validate first
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{}
	}
	peers := make(map[string]string, len(cfg.Peers))
	for name, url := range cfg.Peers {
		peers[name] = url
	}
	obsClusterReplicas.Set(int64(cfg.Ring.Size()))
	return &clusterPeers{
		self:      cfg.Self,
		ring:      cfg.Ring,
		peers:     peers,
		noForward: cfg.NoForward,
		client:    client,
	}
}

// PeerLookupResponse is the peer cache probe result. Found=false (with
// a 404) means the owner has not memoized the key; everything else
// mirrors the owner's cached report. Cycle is pre-formatted — the probe
// never re-materializes an engine report on the asking side.
type PeerLookupResponse struct {
	Found    bool   `json:"found"`
	Network  string `json:"network,omitempty"`
	Channels int    `json:"channels,omitempty"`
	Edges    int    `json:"edges,omitempty"`
	Acyclic  bool   `json:"acyclic"`
	Cycle    string `json:"cycle,omitempty"`
}

// handlePeerLookup serves GET /v1/peer/lookup/{key}?check=<hex>: a pure
// probe of this replica's verify cache by raw dual-hash identity. It
// submits nothing to the admission queue and ignores the drain state —
// a map read is always affordable, and a draining owner sharing its
// cache is exactly what lets peers absorb its keyspace.
func (s *Server) handlePeerLookup(w http.ResponseWriter, r *http.Request) {
	obsReqPeerLookup.Inc()
	t, sw, r := s.startTrace(w, r, "peer.lookup")
	defer func() { t.Finish(sw.status) }()
	w = sw
	key, err := strconv.ParseUint(r.PathValue("key"), 16, 64)
	if err != nil {
		obsRejectBad.Inc()
		writeError(w, http.StatusBadRequest, "key is not a 64-bit hex value")
		return
	}
	check, err := strconv.ParseUint(r.URL.Query().Get("check"), 16, 64)
	if err != nil {
		obsRejectBad.Inc()
		writeError(w, http.StatusBadRequest, "check query parameter is not a 64-bit hex value")
		return
	}
	lsp := trace.FromContext(r.Context()).StartSpan("cache.lookup")
	rep, ok := s.cache.LookupKey(key, check)
	if !ok {
		lsp.SetInt("hit", 0)
		lsp.End()
		writeJSON(w, http.StatusNotFound, &PeerLookupResponse{Found: false})
		return
	}
	lsp.SetInt("hit", 1)
	lsp.End()
	obsPeerLookupHits.Inc()
	resp := &PeerLookupResponse{
		Found:    true,
		Network:  rep.Network,
		Channels: rep.Channels,
		Edges:    rep.Edges,
		Acyclic:  rep.Acyclic,
	}
	if !rep.Acyclic {
		resp.Cycle = cdg.FormatCycle(rep.Cycle)
	}
	writeJSON(w, http.StatusOK, resp)
}

// lookup probes the owner's cache for a key. A nil response with a nil
// error means a clean miss (owner answered 404); transport and decode
// failures return the error.
func (cp *clusterPeers) lookup(ctx context.Context, owner string, key, check uint64) (*PeerLookupResponse, error) {
	base := cp.peers[owner]
	if base == "" {
		return nil, fmt.Errorf("serve: no peer URL for %q", owner)
	}
	url := base + "/v1/peer/lookup/" + strconv.FormatUint(key, 16) +
		"?check=" + strconv.FormatUint(check, 16)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	hsp := trace.FromContext(ctx).StartSpan("cluster.lookup")
	hsp.SetStr("owner", owner)
	defer hsp.End()
	if h := hsp.Header(); h != "" {
		req.Header.Set(trace.Header, h)
	}
	obsClusterPeerProbes.Inc()
	resp, err := cp.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		var pl PeerLookupResponse
		if err := json.NewDecoder(io.LimitReader(resp.Body, MaxBodyBytes)).Decode(&pl); err != nil {
			return nil, err
		}
		if !pl.Found {
			return nil, nil
		}
		obsClusterPeerHits.Inc()
		return &pl, nil
	case http.StatusNotFound:
		io.Copy(io.Discard, io.LimitReader(resp.Body, MaxBodyBytes))
		return nil, nil
	default:
		return nil, fmt.Errorf("serve: peer lookup at %q returned %d", owner, resp.StatusCode)
	}
}

// forward proxies a request body to the owner, marked with the
// ForwardHeader so the owner serves it locally. It returns the owner's
// status and body verbatim; the caller rewrites provenance on success.
func (cp *clusterPeers) forward(ctx context.Context, owner, path string, body []byte) (int, []byte, error) {
	base := cp.peers[owner]
	if base == "" {
		return 0, nil, fmt.Errorf("serve: no peer URL for %q", owner)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+path, bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(ForwardHeader, cp.self)
	hsp := trace.FromContext(ctx).StartSpan("cluster.forward")
	hsp.SetStr("owner", owner)
	defer hsp.End()
	if h := hsp.Header(); h != "" {
		req.Header.Set(trace.Header, h)
	}
	obsClusterForwards.Inc()
	resp, err := cp.client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(io.LimitReader(resp.Body, MaxBodyBytes))
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, respBody, nil
}

// routeVerify decides whether a /v1/verify request for a key this
// replica does not own is answered off-path (local cache, peer cache,
// or a forward to the owner). It returns true when it wrote the
// response; false falls through to the normal local pipeline — either
// because this replica owns the key, the request already made its one
// hop, or every remote path failed (degrade to local compute).
func (s *Server) routeVerify(w http.ResponseWriter, r *http.Request, b *builtVerify, body []byte) bool {
	cp := s.cluster
	if cp == nil {
		return false
	}
	key, check := cdg.VerifyKey(b.net, b.vcs, b.ts)
	owner := cp.ring.Owner(key)
	if owner == cp.self {
		return false
	}
	if r.Header.Get(ForwardHeader) != "" {
		// Single-hop protection: a forwarded request is served here no
		// matter what this replica's ring says.
		obsClusterForwardServed.Inc()
		return false
	}
	tc := trace.FromContext(r.Context())
	// Step 1: this replica's own cache (seeded by snapshots, earlier
	// forwards, or degraded computes).
	if rep, ok := s.cache.Lookup(b.net, b.vcs, b.ts); ok {
		obsVerdictCache.Inc()
		tc.SetProvenance(provCache)
		writeJSON(w, http.StatusOK, respond(b, rep, provCache, key))
		return true
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.Timeout)
	defer cancel()
	// Step 2: the owner's cache, one GET away.
	if pl, err := cp.lookup(ctx, owner, key, check); err == nil && pl != nil {
		obsVerdictPeer.Inc()
		tc.SetProvenance(provPeer)
		writeJSON(w, http.StatusOK, respondPeerVerify(b, pl, key))
		return true
	}
	if cp.noForward {
		return false
	}
	// Step 3: proxy to the owner, which computes and memoizes in the
	// shard the key belongs to.
	status, respBody, err := cp.forward(ctx, owner, "/v1/verify", body)
	if err != nil {
		obsClusterForwardFails.Inc()
		return false
	}
	if status != http.StatusOK {
		// The owner rejected the request (bad design, backpressure, ...);
		// its verdict-free answer passes through verbatim.
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		w.WriteHeader(status)
		w.Write(respBody)
		return true
	}
	var resp VerifyResponse
	if err := json.Unmarshal(respBody, &resp); err != nil {
		obsClusterForwardFails.Inc()
		return false
	}
	resp.Provenance = provForwarded
	tc.SetProvenance(provForwarded)
	obsVerdictForwarded.Inc()
	writeJSON(w, http.StatusOK, &resp)
	return true
}

// routeDelta is routeVerify for /v1/verify/delta, keyed by the delta
// cache identity.
func (s *Server) routeDelta(w http.ResponseWriter, r *http.Request, b *builtVerify, diff cdg.Diff, baseKey uint64, body []byte) bool {
	cp := s.cluster
	if cp == nil {
		return false
	}
	key, check := cdg.DeltaKey(b.net, b.vcs, b.ts, diff)
	owner := cp.ring.Owner(key)
	if owner == cp.self {
		return false
	}
	if r.Header.Get(ForwardHeader) != "" {
		obsClusterForwardServed.Inc()
		return false
	}
	tc := trace.FromContext(r.Context())
	if rep, ok := s.cache.LookupDelta(b.net, b.vcs, b.ts, diff); ok {
		obsVerdictCache.Inc()
		tc.SetProvenance(provCache)
		writeJSON(w, http.StatusOK, respondPeerDelta(&PeerLookupResponse{
			Found:    true,
			Network:  rep.Network,
			Channels: rep.Channels,
			Edges:    rep.Edges,
			Acyclic:  rep.Acyclic,
			Cycle:    formatIfCyclic(rep),
		}, provCache, key, baseKey))
		return true
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.Timeout)
	defer cancel()
	if pl, err := cp.lookup(ctx, owner, key, check); err == nil && pl != nil {
		obsVerdictPeer.Inc()
		tc.SetProvenance(provPeer)
		writeJSON(w, http.StatusOK, respondPeerDelta(pl, provPeer, key, baseKey))
		return true
	}
	if cp.noForward {
		return false
	}
	status, respBody, err := cp.forward(ctx, owner, "/v1/verify/delta", body)
	if err != nil {
		obsClusterForwardFails.Inc()
		return false
	}
	if status != http.StatusOK {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		w.WriteHeader(status)
		w.Write(respBody)
		return true
	}
	var resp DeltaResponse
	if err := json.Unmarshal(respBody, &resp); err != nil {
		obsClusterForwardFails.Inc()
		return false
	}
	resp.Provenance = provForwarded
	tc.SetProvenance(provForwarded)
	obsVerdictForwarded.Inc()
	writeJSON(w, http.StatusOK, &resp)
	return true
}

// respondPeerVerify builds a /v1/verify response from a peer cache hit.
// The verdict fields come from the owner's report; the request-shaped
// fields (network rendering, turn counts, key) are derived locally from
// the built request — no cdg.Report is ever materialized outside the
// engine.
func respondPeerVerify(b *builtVerify, pl *PeerLookupResponse, key uint64) *VerifyResponse {
	n90, nU, nI := b.ts.Counts()
	return &VerifyResponse{
		Network:    b.net.String(),
		Channels:   pl.Channels,
		Edges:      pl.Edges,
		Acyclic:    pl.Acyclic,
		Cycle:      pl.Cycle,
		Turns:      TurnCounts{Deg90: n90, U: nU, I: nI},
		Provenance: provPeer,
		Key:        strconv.FormatUint(key, 16),
	}
}

// respondPeerDelta builds a /v1/verify/delta response from cached
// verdict fields. Delta reports name the perturbed network (the
// "-faulty" rendering), so Network comes from the cached report, not
// the base request.
func respondPeerDelta(pl *PeerLookupResponse, prov string, key, baseKey uint64) *DeltaResponse {
	return &DeltaResponse{
		Network:    pl.Network,
		Channels:   pl.Channels,
		Edges:      pl.Edges,
		Acyclic:    pl.Acyclic,
		Cycle:      pl.Cycle,
		Provenance: prov,
		Key:        strconv.FormatUint(key, 16),
		BaseKey:    strconv.FormatUint(baseKey, 16),
	}
}

// formatIfCyclic renders a report's cycle witness, empty when acyclic.
func formatIfCyclic(rep cdg.Report) string {
	if rep.Acyclic {
		return ""
	}
	return cdg.FormatCycle(rep.Cycle)
}
