package serve

import "ebda/internal/obs"

// Serving-layer instrumentation, hoisted to package variables so
// handlers never touch the registry. Invariants worth alerting on:
// verdicts{cache}+verdicts{computed}+verdicts{coalesced} equals the
// verifications answered 2xx; queue depth returns to zero when idle;
// rejected{queue_full}/rejected{draining} are the 429/503 counts.
// Per-endpoint latency comes from the serve.* phases, which feed the
// shared ebda_phase_duration_seconds histograms.
var (
	obsReqVerify = obs.NewCounter(obs.Label("ebda_serve_requests_total", "endpoint", "verify"),
		"requests received by /v1/verify")
	obsReqDesign = obs.NewCounter(obs.Label("ebda_serve_requests_total", "endpoint", "design"),
		"requests received by /v1/design")
	obsReqBatch = obs.NewCounter(obs.Label("ebda_serve_requests_total", "endpoint", "batch"),
		"requests received by /v1/batch")
	obsReqDelta = obs.NewCounter(obs.Label("ebda_serve_requests_total", "endpoint", "delta"),
		"requests received by /v1/verify/delta")
	obsReqGraph = obs.NewCounter(obs.Label("ebda_serve_requests_total", "endpoint", "graph"),
		"requests received by /v1/verify/graph")
	obsReqPeerLookup = obs.NewCounter(obs.Label("ebda_serve_requests_total", "endpoint", "peer_lookup"),
		"requests received by /v1/peer/lookup")
	obsReqPeerMetrics = obs.NewCounter(obs.Label("ebda_serve_requests_total", "endpoint", "peer_metrics"),
		"requests received by /v1/peer/metrics")
	obsReqClusterMetrics = obs.NewCounter(obs.Label("ebda_serve_requests_total", "endpoint", "cluster_metrics"),
		"requests received by /v1/cluster/metrics")

	obsVerdictCache = obs.NewCounter(obs.Label("ebda_serve_verdicts_total", "provenance", "cache"),
		"verdicts answered from the verify cache")
	obsVerdictComputed = obs.NewCounter(obs.Label("ebda_serve_verdicts_total", "provenance", "computed"),
		"verdicts computed by the answering request")
	obsVerdictCoalesced = obs.NewCounter(obs.Label("ebda_serve_verdicts_total", "provenance", "coalesced"),
		"verdicts shared from another request's in-flight computation")
	obsVerdictDelta = obs.NewCounter(obs.Label("ebda_serve_verdicts_total", "provenance", "delta"),
		"verdicts computed incrementally through a retained delta workspace")
	obsVerdictPeer = obs.NewCounter(obs.Label("ebda_serve_verdicts_total", "provenance", "peer"),
		"verdicts answered from an owning replica's cache via peer lookup")
	obsVerdictForwarded = obs.NewCounter(obs.Label("ebda_serve_verdicts_total", "provenance", "forwarded"),
		"verdicts proxied to and computed by the owning replica")

	obsRejectBad = obs.NewCounter(obs.Label("ebda_serve_rejected_total", "reason", "bad_request"),
		"requests rejected by decode or validation (400)")
	obsRejectQueue = obs.NewCounter(obs.Label("ebda_serve_rejected_total", "reason", "queue_full"),
		"requests rejected by a full admission queue (429)")
	obsRejectDrain = obs.NewCounter(obs.Label("ebda_serve_rejected_total", "reason", "draining"),
		"requests rejected while draining (503)")
	obsRejectDeadline = obs.NewCounter(obs.Label("ebda_serve_rejected_total", "reason", "deadline"),
		"requests abandoned at their deadline (504)")

	obsQueueDepth = obs.NewGauge("ebda_serve_queue_depth",
		"verifications admitted and waiting for a worker")

	// Cluster routing series. Invariants: peer_probes >= peer_probe_hits;
	// forwards = forward-path verdicts + forward_fails + owner-rejected
	// pass-throughs; forward_served counts single-hop arrivals (a second
	// hop never happens, so this equals the forwards peers sent us).
	obsClusterReplicas = obs.NewGauge("ebda_cluster_replicas",
		"ring members this replica routes across")
	obsClusterPeerProbes = obs.NewCounter("ebda_cluster_peer_probes_total",
		"peer cache lookups issued to owning replicas")
	obsClusterPeerHits = obs.NewCounter("ebda_cluster_peer_probe_hits_total",
		"peer cache lookups answered from the owner's cache")
	obsClusterForwards = obs.NewCounter("ebda_cluster_forwards_total",
		"requests proxied to their owning replica")
	obsClusterForwardFails = obs.NewCounter("ebda_cluster_forward_fails_total",
		"forwards that failed in transport and degraded to local compute")
	obsClusterForwardServed = obs.NewCounter("ebda_cluster_forward_served_total",
		"forwarded requests served locally (the single permitted hop)")
	obsPeerLookupHits = obs.NewCounter("ebda_serve_peer_lookup_hits_total",
		"peer lookup requests answered from this replica's cache")
	obsClusterMetricsUnreachable = obs.NewCounter("ebda_cluster_metrics_unreachable_total",
		"metrics fan-out fetches that failed (the merge proceeded without them)")

	phaseServeVerify = obs.NewPhase("serve.verify", "")
	phaseServeDelta  = obs.NewPhase("serve.delta", "")
	phaseServeDesign = obs.NewPhase("serve.design", "")
	phaseServeBatch  = obs.NewPhase("serve.batch", "")
	phaseServeGraph  = obs.NewPhase("serve.graph", "")
)
