package serve

import "ebda/internal/obs"

// Serving-layer instrumentation, hoisted to package variables so
// handlers never touch the registry. Invariants worth alerting on:
// verdicts{cache}+verdicts{computed}+verdicts{coalesced} equals the
// verifications answered 2xx; queue depth returns to zero when idle;
// rejected{queue_full}/rejected{draining} are the 429/503 counts.
// Per-endpoint latency comes from the serve.* phases, which feed the
// shared ebda_phase_duration_seconds histograms.
var (
	obsReqVerify = obs.NewCounter(obs.Label("ebda_serve_requests_total", "endpoint", "verify"),
		"requests received by /v1/verify")
	obsReqDesign = obs.NewCounter(obs.Label("ebda_serve_requests_total", "endpoint", "design"),
		"requests received by /v1/design")
	obsReqBatch = obs.NewCounter(obs.Label("ebda_serve_requests_total", "endpoint", "batch"),
		"requests received by /v1/batch")
	obsReqDelta = obs.NewCounter(obs.Label("ebda_serve_requests_total", "endpoint", "delta"),
		"requests received by /v1/verify/delta")

	obsVerdictCache = obs.NewCounter(obs.Label("ebda_serve_verdicts_total", "provenance", "cache"),
		"verdicts answered from the verify cache")
	obsVerdictComputed = obs.NewCounter(obs.Label("ebda_serve_verdicts_total", "provenance", "computed"),
		"verdicts computed by the answering request")
	obsVerdictCoalesced = obs.NewCounter(obs.Label("ebda_serve_verdicts_total", "provenance", "coalesced"),
		"verdicts shared from another request's in-flight computation")
	obsVerdictDelta = obs.NewCounter(obs.Label("ebda_serve_verdicts_total", "provenance", "delta"),
		"verdicts computed incrementally through a retained delta workspace")

	obsRejectBad = obs.NewCounter(obs.Label("ebda_serve_rejected_total", "reason", "bad_request"),
		"requests rejected by decode or validation (400)")
	obsRejectQueue = obs.NewCounter(obs.Label("ebda_serve_rejected_total", "reason", "queue_full"),
		"requests rejected by a full admission queue (429)")
	obsRejectDrain = obs.NewCounter(obs.Label("ebda_serve_rejected_total", "reason", "draining"),
		"requests rejected while draining (503)")
	obsRejectDeadline = obs.NewCounter(obs.Label("ebda_serve_rejected_total", "reason", "deadline"),
		"requests abandoned at their deadline (504)")

	obsQueueDepth = obs.NewGauge("ebda_serve_queue_depth",
		"verifications admitted and waiting for a worker")

	phaseServeVerify = obs.NewPhase("serve.verify", "")
	phaseServeDelta  = obs.NewPhase("serve.delta", "")
	phaseServeDesign = obs.NewPhase("serve.design", "")
	phaseServeBatch  = obs.NewPhase("serve.batch", "")
)
