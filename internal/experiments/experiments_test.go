package experiments

import (
	"reflect"
	"strings"
	"testing"
)

// The full per-experiment assertions live in internal/paper and the root
// package; here we exercise the harness machinery itself.

func TestAllRunnersHaveDistinctIDs(t *testing.T) {
	seen := map[string]bool{}
	for _, r := range All() {
		if r.ID == "" || r.Name == "" || r.Run == nil {
			t.Errorf("incomplete runner %+v", r)
		}
		if seen[r.ID] {
			t.Errorf("duplicate ID %s", r.ID)
		}
		seen[r.ID] = true
	}
	if len(seen) != 23 {
		t.Errorf("runners = %d, want 23", len(seen))
	}
}

func TestResultString(t *testing.T) {
	ok := Result{ID: "E01", Name: "x", Paper: "p", Measured: "m", Match: true}
	if !strings.Contains(ok.String(), "OK") {
		t.Error("match should render OK")
	}
	bad := Result{ID: "E01", Name: "x", Paper: "p", Measured: "m"}
	if !strings.Contains(bad.String(), "MISMATCH") {
		t.Error("mismatch should render MISMATCH")
	}
}

func TestSweepQuickShape(t *testing.T) {
	points := Sweep(Options{Quick: true})
	if len(points) != 7*3 {
		t.Fatalf("points = %d, want 23", len(points))
	}
	algs := map[string]bool{}
	for _, p := range points {
		algs[p.Alg] = true
		if p.Rate <= 0 {
			t.Errorf("bad rate %f", p.Rate)
		}
		if p.Deadlocked {
			t.Errorf("%s deadlocked at %.2f", p.Alg, p.Rate)
		}
	}
	if len(algs) != 7 {
		t.Errorf("algorithms = %d, want 7", len(algs))
	}
}

func TestSameTurnWords(t *testing.T) {
	if !sameTurnWords("A B C", "C A B") {
		t.Error("order must not matter")
	}
	if sameTurnWords("A B", "A B C") || sameTurnWords("A B C", "A B") {
		t.Error("length mismatch must fail")
	}
	if sameTurnWords("A B", "A D") {
		t.Error("different words must fail")
	}
}

func TestSearchRejectsSixChannelDesigns(t *testing.T) {
	// The search bound is exclusive: with maxChannels=7, six-channel
	// designs are in scope and DyXY is fully adaptive, so the search
	// must report a fully adaptive design exists.
	ok, _ := SearchNoFullyAdaptiveBelow(7)
	if ok {
		t.Error("search should find the 6-channel fully adaptive design below 7")
	}
}

func TestChainFromAssignment(t *testing.T) {
	chain, err := chainFromAssignment([]string{"X+", "Y+", "X-"}, []int{0, 0, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if chain.Len() != 2 {
		t.Errorf("partitions = %d", chain.Len())
	}
	// Invalid partitions propagate errors.
	if _, err := chainFromAssignment([]string{"X+", "X-", "Y+", "Y-"}, []int{0, 0, 0, 0}, 1); err == nil {
		t.Error("Theorem-1 violation should be rejected")
	}
}

func TestRunAllJobsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full quick harness twice")
	}
	// Every experiment seeds its own RNGs, so the harness must produce
	// byte-identical records no matter how the pool schedules them —
	// and in canonical All() order.
	opts := Options{Quick: true}
	ref := RunAllJobs(opts, 1)
	got := RunAllJobs(opts, 8)
	if len(ref) != len(got) || len(ref) != len(All()) {
		t.Fatalf("result counts: jobs=1 %d, jobs=8 %d, runners %d", len(ref), len(got), len(All()))
	}
	for i, r := range All() {
		if ref[i].ID != r.ID {
			t.Fatalf("jobs=1 order broken at %d: got %s, want %s", i, ref[i].ID, r.ID)
		}
		if !reflect.DeepEqual(ref[i], got[i]) {
			t.Fatalf("%s diverged between jobs=1 and jobs=8:\n  %+v\n  %+v", r.ID, ref[i], got[i])
		}
	}
}
