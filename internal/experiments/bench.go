package experiments

import (
	"encoding/json"
	"io"
	"runtime"
	"time"

	"ebda/internal/cdg"
	"ebda/internal/core"
	"ebda/internal/topology"
)

// BenchExperiment records the wall time of one reproduction experiment.
type BenchExperiment struct {
	ID          string  `json:"id"`
	Name        string  `json:"name"`
	WallSeconds float64 `json:"wall_seconds"`
	Match       bool    `json:"match"`
}

// BenchCDG records the construction rate of one channel dependency graph:
// the core verification primitive, expressed as channels processed per
// second so snapshots are comparable across network sizes.
type BenchCDG struct {
	Network        string  `json:"network"`
	Channels       int     `json:"channels"`
	Edges          int     `json:"edges"`
	Acyclic        bool    `json:"acyclic"`
	WallSeconds    float64 `json:"wall_seconds"`
	ChannelsPerSec float64 `json:"channels_per_sec"`
}

// Bench is the perf snapshot written by `ebda-repro -benchjson` (the
// BENCH_verify.json file): per-experiment wall times plus CDG construction
// rates, stamped with the parallelism it ran under.
type Bench struct {
	GeneratedAt string            `json:"generated_at"`
	GoMaxProcs  int               `json:"gomaxprocs"`
	Jobs        int               `json:"jobs"`
	Quick       bool              `json:"quick"`
	Experiments []BenchExperiment `json:"experiments"`
	CDG         []BenchCDG        `json:"cdg"`
}

// benchCDGCases are the networks the snapshot times: the six-channel fully
// adaptive design (the paper's Figure 7 flagship) on growing meshes, all
// built through the jobs-aware constructor.
func benchCDGCases() []*topology.Network {
	return []*topology.Network{
		topology.NewMesh(16, 16),
		topology.NewMesh(32, 32),
		topology.NewMesh(48, 48),
	}
}

// RunBench executes every experiment and the CDG construction cases,
// timing each, and returns the snapshot. Experiments run one at a time so
// their wall times are not polluted by sibling load; jobs (<= 0 means all
// cores) sets the intra-build parallelism of the CDG cases.
func RunBench(opts Options, jobs int) Bench {
	b := Bench{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Jobs:        jobs,
		Quick:       opts.Quick,
	}
	for _, r := range All() {
		start := time.Now()
		res := r.Run(opts)
		b.Experiments = append(b.Experiments, BenchExperiment{
			ID: r.ID, Name: r.Name,
			WallSeconds: time.Since(start).Seconds(),
			Match:       res.Match,
		})
	}
	chain := core.MustParseChain("PA[X1+ Y1+ Y1-] -> PB[X1- Y2+ Y2-]")
	ts := chain.AllTurns()
	vcs := cdg.VCConfigFor(2, chain.Channels())
	for _, net := range benchCDGCases() {
		start := time.Now()
		rep := cdg.VerifyTurnSetJobs(net, vcs, ts, jobs)
		wall := time.Since(start).Seconds()
		rate := 0.0
		if wall > 0 {
			rate = float64(rep.Channels) / wall
		}
		b.CDG = append(b.CDG, BenchCDG{
			Network:     net.String(),
			Channels:    rep.Channels,
			Edges:       rep.Edges,
			Acyclic:     rep.Acyclic,
			WallSeconds: wall, ChannelsPerSec: rate,
		})
	}
	return b
}

// WriteJSON renders the snapshot as indented JSON.
func (b Bench) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}
