package experiments

import (
	"encoding/json"
	"io"
	"runtime"
	"time"

	"ebda/internal/cdg"
	"ebda/internal/core"
	"ebda/internal/topology"
)

// BenchExperiment records the wall time of one reproduction experiment,
// plus the verification-cache traffic it generated (hit/miss deltas over
// the run of that experiment alone).
type BenchExperiment struct {
	ID          string  `json:"id"`
	Name        string  `json:"name"`
	WallSeconds float64 `json:"wall_seconds"`
	Match       bool    `json:"match"`
	CacheHits   uint64  `json:"cache_hits"`
	CacheMisses uint64  `json:"cache_misses"`
	// CacheHitRate is hits/(hits+misses) over this experiment alone (0
	// when it generated no cache traffic).
	CacheHitRate float64 `json:"cache_hit_rate"`
}

// BenchCDG records the construction rate of one channel dependency graph:
// the core verification primitive, expressed as channels processed per
// second so snapshots are comparable across network sizes. The repeat
// columns measure the pooled fast path: allocations and bytes per verify
// (runtime.MemStats deltas) over repeated verifications of the same shape,
// where the workspace pool should make reruns nearly allocation-free.
type BenchCDG struct {
	Network        string  `json:"network"`
	Channels       int     `json:"channels"`
	Edges          int     `json:"edges"`
	Acyclic        bool    `json:"acyclic"`
	WallSeconds    float64 `json:"wall_seconds"`
	ChannelsPerSec float64 `json:"channels_per_sec"`
	RepeatAllocs   float64 `json:"repeat_allocs_per_verify"`
	RepeatBytes    float64 `json:"repeat_bytes_per_verify"`
}

// BenchCache summarises the verification cache over the whole snapshot run.
type BenchCache struct {
	Hits      uint64  `json:"hits"`
	Misses    uint64  `json:"misses"`
	Evictions uint64  `json:"evictions"`
	Entries   int     `json:"entries"`
	HitRate   float64 `json:"hit_rate"`
}

// Bench is the perf snapshot written by `ebda-repro -benchjson` (the
// BENCH_verify.json file): per-experiment wall times plus CDG construction
// rates, stamped with the toolchain and parallelism it ran under.
type Bench struct {
	GeneratedAt string            `json:"generated_at"`
	GoVersion   string            `json:"go_version"`
	NumCPU      int               `json:"num_cpu"`
	GoMaxProcs  int               `json:"gomaxprocs"`
	Jobs        int               `json:"jobs"`
	Quick       bool              `json:"quick"`
	Experiments []BenchExperiment `json:"experiments"`
	CDG         []BenchCDG        `json:"cdg"`
	VerifyCache BenchCache        `json:"verify_cache"`
}

// benchCDGCases are the networks the snapshot times: the six-channel fully
// adaptive design (the paper's Figure 7 flagship) on growing meshes, all
// built through the jobs-aware constructor.
func benchCDGCases() []*topology.Network {
	return []*topology.Network{
		topology.NewMesh(16, 16),
		topology.NewMesh(32, 32),
		topology.NewMesh(48, 48),
	}
}

// RunBench executes every experiment and the CDG construction cases,
// timing each, and returns the snapshot. Experiments run one at a time so
// their wall times are not polluted by sibling load; jobs (<= 0 means all
// cores) sets the intra-build parallelism of the CDG cases.
func RunBench(opts Options, jobs int) Bench {
	b := Bench{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339), //ebda:allow detlint bench snapshots are stamped with real wall time by design
		GoVersion:   runtime.Version(),
		NumCPU:      runtime.NumCPU(),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Jobs:        jobs,
		Quick:       opts.Quick,
	}
	// Start the verification cache fresh so the snapshot's hit/miss
	// columns describe this run alone.
	cdg.DefaultCache.Reset()
	prev := cdg.DefaultCache.Stats()
	for _, r := range All() {
		start := time.Now() //ebda:allow detlint bench harness measures wall time by design
		res := r.Run(opts)
		wall := time.Since(start).Seconds() //ebda:allow detlint bench harness measures wall time by design
		cur := cdg.DefaultCache.Stats()
		hits, misses := cur.Hits-prev.Hits, cur.Misses-prev.Misses
		rate := 0.0
		if hits+misses > 0 {
			rate = float64(hits) / float64(hits+misses)
		}
		b.Experiments = append(b.Experiments, BenchExperiment{
			ID: r.ID, Name: r.Name,
			WallSeconds:  wall,
			Match:        res.Match,
			CacheHits:    hits,
			CacheMisses:  misses,
			CacheHitRate: rate,
		})
		prev = cur
	}
	chain := core.MustParseChain("PA[X1+ Y1+ Y1-] -> PB[X1- Y2+ Y2-]")
	ts := chain.AllTurns()
	vcs := cdg.VCConfigFor(2, chain.Channels())
	for _, net := range benchCDGCases() {
		start := time.Now() //ebda:allow detlint bench harness measures wall time by design
		rep := cdg.VerifyTurnSetJobs(net, vcs, ts, jobs)
		wall := time.Since(start).Seconds() //ebda:allow detlint bench harness measures wall time by design
		rate := 0.0
		if wall > 0 {
			rate = float64(rep.Channels) / wall
		}
		// Repeat columns: the first verify above warmed the workspace
		// pool for this shape, so reruns measure the steady state.
		const repeats = 8
		runtime.GC()
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		for r := 0; r < repeats; r++ {
			cdg.VerifyTurnSetJobs(net, vcs, ts, jobs)
		}
		runtime.ReadMemStats(&m1)
		b.CDG = append(b.CDG, BenchCDG{
			Network:     net.String(),
			Channels:    rep.Channels,
			Edges:       rep.Edges,
			Acyclic:     rep.Acyclic,
			WallSeconds: wall, ChannelsPerSec: rate,
			RepeatAllocs: float64(m1.Mallocs-m0.Mallocs) / repeats,
			RepeatBytes:  float64(m1.TotalAlloc-m0.TotalAlloc) / repeats,
		})
	}
	s := cdg.DefaultCache.Stats()
	b.VerifyCache = BenchCache{
		Hits: s.Hits, Misses: s.Misses, Evictions: s.Evictions,
		Entries: s.Entries, HitRate: s.HitRate(),
	}
	return b
}

// WriteJSON renders the snapshot as indented JSON.
func (b Bench) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}
