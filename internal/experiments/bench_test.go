package experiments

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestBenchWriteJSON(t *testing.T) {
	b := Bench{
		GeneratedAt: "2026-01-01T00:00:00Z",
		GoMaxProcs:  4, Jobs: 2, Quick: true,
		Experiments: []BenchExperiment{{ID: "E01", Name: "x", WallSeconds: 0.5, Match: true}},
		CDG:         []BenchCDG{{Network: "8x8 mesh", Channels: 224, Edges: 100, Acyclic: true, WallSeconds: 0.1, ChannelsPerSec: 2240}},
	}
	var buf bytes.Buffer
	if err := b.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Bench
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Experiments[0].ID != "E01" || back.CDG[0].ChannelsPerSec != 2240 {
		t.Fatalf("round trip lost data: %+v", back)
	}
}

func TestBenchCDGCasesVerify(t *testing.T) {
	if testing.Short() {
		t.Skip("builds large graphs")
	}
	// The snapshot's CDG cases must all be acyclic (they time genuine
	// deadlock-free verification, not failures).
	b := RunBench(Options{Quick: true}, 0)
	if len(b.Experiments) != len(All()) {
		t.Fatalf("experiments timed = %d, want %d", len(b.Experiments), len(All()))
	}
	for _, c := range b.CDG {
		if !c.Acyclic {
			t.Errorf("CDG case %s unexpectedly cyclic", c.Network)
		}
		if c.Channels == 0 || c.ChannelsPerSec <= 0 {
			t.Errorf("CDG case %s: empty measurement %+v", c.Network, c)
		}
	}
}
