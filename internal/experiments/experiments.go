// Package experiments is the reproduction harness: one runner per table,
// figure and section-level claim of the paper (E01..E16) plus the
// extension experiments (X01..X06). Each runner returns a structured
// paper-vs-measured record; cmd/ebda-repro prints them, EXPERIMENTS.md
// records them, and the top-level benchmarks time them.
package experiments

import (
	"fmt"
	"runtime"
	"strings"
	"sync"

	"ebda/internal/cdg"
	"ebda/internal/core"
	"ebda/internal/deadlock"
	"ebda/internal/duato"
	"ebda/internal/multicast"
	"ebda/internal/paper"
	"ebda/internal/routing"
	"ebda/internal/sim"
	"ebda/internal/synth"
	"ebda/internal/topology"
	"ebda/internal/traffic"
)

// Result is one experiment's outcome.
type Result struct {
	// ID is the experiment identifier (E01..E15, X01..).
	ID string
	// Name describes the paper artifact.
	Name string
	// Paper states the paper's claim.
	Paper string
	// Measured states what this reproduction observed.
	Measured string
	// Match reports whether the measurement reproduces the claim.
	Match bool
	// Details holds extra report lines (turn listings, tables).
	Details []string
}

// String renders the result compactly.
func (r Result) String() string {
	status := "OK"
	if !r.Match {
		status = "MISMATCH"
	}
	return fmt.Sprintf("[%s] %-42s %s\n    paper:    %s\n    measured: %s",
		r.ID, r.Name, status, r.Paper, r.Measured)
}

// Options tunes expensive experiments.
type Options struct {
	// Quick shrinks simulation-based experiments (shorter runs, smaller
	// sweeps) for test and CI use.
	Quick bool
}

// Runner executes one experiment.
type Runner struct {
	ID   string
	Name string
	Run  func(Options) Result
}

// All returns every experiment in order.
func All() []Runner {
	return []Runner{
		{"E01", "Figure 3: three-channel partition turns", E01},
		{"E02", "Figure 4: U/I-turn counting", E02},
		{"E03", "Figure 5: North-Last from Theorems 1-3", E03},
		{"E04", "Figure 6: partitioning strategies P1-P5", E04},
		{"E05", "Figure 7: 2D fully adaptive, 6 channels", E05},
		{"E06", "Figure 8: full 3D turn extraction", E06},
		{"E07", "Figure 9 + formula: minimum channels", E07},
		{"E08", "Table 1: 12 maximum-adaptiveness options", E08},
		{"E09", "Table 2: three-partition options", E09},
		{"E10", "Table 3: deterministic options", E10},
		{"E11", "Table 4: Odd-Even via parity partitions", E11},
		{"E12", "Table 5: partially connected 3D design", E12},
		{"E13", "Section 2: turn-model search space", E13},
		{"E14", "Section 5: worked example (Algorithm 1)", E14},
		{"E15", "Section 6.2: Hamiltonian-path coverage", E15},
		{"E16", "Section 5.4: synthesized routing logic", E16},
		{"X01", "Extension: latency/throughput sweep", X01},
		{"X02", "Extension: deadlock injection", X02},
		{"X03", "Extension: torus dateline design", X03},
		{"X04", "Extension: saturation throughput", X04},
		{"X05", "Assumptions 1-2: switching modes, packet lengths", X05},
		{"X06", "Section 6.2: dual-path Hamiltonian multicast", X06},
		{"X07", "Section 2: EbDa vs Duato, mechanically", X07},
	}
}

// RunAll executes every experiment on every available core.
func RunAll(opts Options) []Result { return RunAllJobs(opts, 0) }

// RunAllJobs is RunAll over a bounded worker pool (jobs <= 0 means all
// cores). Experiments are independent; results are collected by index, so
// the returned slice is in canonical All() order regardless of which
// worker finished first.
func RunAllJobs(opts Options, jobs int) []Result {
	return RunRunnersJobs(All(), opts, jobs)
}

// RunRunnersJobs executes an arbitrary runner subset over a bounded worker
// pool, preserving the input order in the results.
func RunRunnersJobs(runners []Runner, opts Options, jobs int) []Result {
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if jobs > len(runners) {
		jobs = len(runners)
	}
	out := make([]Result, len(runners))
	run := func(i int) {
		r := runners[i]
		res := r.Run(opts)
		res.ID, res.Name = r.ID, r.Name
		out[i] = res
	}
	if jobs <= 1 {
		sp := phaseRunners.Start()
		for i := range runners {
			run(i)
		}
		sp.End()
		return out
	}
	var wg sync.WaitGroup
	wg.Add(jobs)
	for w := 0; w < jobs; w++ {
		go func(w int) {
			defer wg.Done()
			sp := phaseRunners.StartWorker(w)
			for i := w; i < len(runners); i += jobs {
				run(i)
			}
			sp.End()
		}(w)
	}
	wg.Wait()
	return out
}

// E01 reproduces Figure 3.
func E01(Options) Result {
	chain := paper.Figure3()
	ts := chain.Turns90()
	got := core.FormatTurnsPlain(ts.Turns())
	rep := cdg.VerifyChainCached(topology.NewMesh(8, 8), chain)
	match := sameTurnWords(got, paper.Figure3Turns) && rep.Acyclic
	return Result{
		Paper:    "P{X+ X- Y-} allows exactly WS, SE, ES, SW; cycle-free",
		Measured: fmt.Sprintf("turns {%s}; 8x8 mesh CDG acyclic=%v", got, rep.Acyclic),
		Match:    match,
	}
}

// E02 reproduces Figure 4.
func E02(Options) Result {
	ts := paper.Figure4().AllTurns()
	_, nU, nI := ts.Counts()
	u, i, total := core.UITurnCounts(3, 3)
	match := nU == 9 && nI == 6 && u == 9 && i == 6 && total == 15
	return Result{
		Paper:    "3 VCs on Y: n(n-1)/2 = 15 U/I-turns (9 U + 6 I); ab + C(a,2) + C(b,2) identity",
		Measured: fmt.Sprintf("extracted %d U + %d I; formula gives %d U + %d I = %d", nU, nI, u, i, total),
		Match:    match,
	}
}

// E03 reproduces Figure 5.
func E03(Options) Result {
	chain := paper.Figure5()
	got := core.FormatTurnsPlain(chain.Turns90().Turns())
	_, nU, _ := chain.AllTurns().Counts()
	rep := cdg.VerifyChainCached(topology.NewMesh(8, 8), chain)
	match := sameTurnWords(got, paper.Figure5Turns90) && nU == 2 && rep.Acyclic
	return Result{
		Paper:    "PA{X+ X- Y-} -> PB{Y+} yields North-Last (6 turns) plus 2 safe U-turns",
		Measured: fmt.Sprintf("turns {%s}, %d U-turns, acyclic=%v", got, nU, rep.Acyclic),
		Match:    match,
	}
}

// E04 reproduces Figure 6.
func E04(Options) Result {
	mesh := topology.NewMesh(6, 6)
	want90 := map[string]string{
		"P1 (XY routing)":     "EN ES WN WS",
		"P3 (West-First)":     "EN NE ES SE WN WS",
		"P4 (Negative-First)": "WN WS SE SW NE EN",
	}
	match := true
	var details []string
	for _, nc := range paper.Figure6() {
		got := core.FormatTurnsPlain(nc.Chain.Turns90().Turns())
		rep := cdg.VerifyChainCached(mesh, nc.Chain)
		ok := rep.Acyclic
		if want, check := want90[nc.Name]; check {
			ok = ok && sameTurnWords(got, want)
		}
		match = match && ok
		details = append(details, fmt.Sprintf("%-30s turns {%s} acyclic=%v", nc.Name, got, rep.Acyclic))
	}
	// Figure 6(e): VCs inside the partition add no adaptiveness.
	p3, _ := cdg.Adaptiveness(mesh, nil, paper.Figure6()[2].Chain.AllTurns())
	p5, _ := cdg.Adaptiveness(mesh, cdg.VCConfig{1, 2}, paper.Figure6()[4].Chain.AllTurns())
	sameAdapt := p3.UsableSum == p5.UsableSum
	match = match && sameAdapt
	return Result{
		Paper:    "P1=XY, P2=partial, P3=West-First, P4=Negative-First; P5's extra VCs add no adaptiveness",
		Measured: fmt.Sprintf("all turn sets match, all acyclic; P3 vs P5 usable paths %d vs %d", p3.UsableSum, p5.UsableSum),
		Match:    match,
		Details:  details,
	}
}

// E05 reproduces Figure 7.
func E05(Options) Result {
	mesh := topology.NewMesh(5, 5)
	match := true
	var details []string
	for _, tc := range []struct {
		name  string
		chain *core.Chain
		chans int
	}{
		{"Figure 7(a) 4 partitions", paper.Figure7FourPartitions(), 8},
		{"Figure 7(b) P1 (DyXY)", paper.Figure7P1(), 6},
		{"Figure 7(c) P2", paper.Figure7P2(), 6},
	} {
		rep := cdg.VerifyChainCached(mesh, tc.chain)
		vcs := cdg.VCConfigFor(2, tc.chain.Channels())
		ad, err := cdg.Adaptiveness(mesh, vcs, tc.chain.AllTurns())
		ok := err == nil && rep.Acyclic && ad.FullyAdaptive() && len(tc.chain.Channels()) == tc.chans
		match = match && ok
		details = append(details, fmt.Sprintf("%-26s %d channels, acyclic=%v, %s",
			tc.name, len(tc.chain.Channels()), rep.Acyclic, ad))
	}
	return Result{
		Paper:    "6 channels suffice for 2D fully adaptive routing (both partitionings); 8-channel variant also fully adaptive",
		Measured: "all three designs acyclic and fully adaptive at stated channel counts",
		Match:    match,
		Details:  details,
	}
}

// E06 reproduces Figure 8.
func E06(Options) Result {
	chain := paper.Figure8()
	ts := chain.AllTurns()
	n90, nU, nI := ts.Counts()
	rep := cdg.VerifyChainCached(topology.NewMesh(3, 3, 3), chain)
	boxes := paper.Figure8Boxes()
	match := n90 == 100 && nU == 24 && nI == 16 && rep.Acyclic
	var details []string
	for _, b := range boxes {
		line := b.Label + ": " + b.Turns90
		if b.UTurns != "" {
			line += " | U: " + b.UTurns
		}
		if b.ITurns != "" {
			line += " | I: " + b.ITurns
		}
		if b.Notes != "" {
			line += " (" + b.Notes + ")"
		}
		details = append(details, line)
	}
	return Result{
		Paper:    "3D with 2,2,4 VCs: all Theorem-1/2/3 boxes as printed (one typo: W1W2 should be W2W1)",
		Measured: fmt.Sprintf("%d 90-degree + %d U + %d I turns, all boxes match, 3x3x3 CDG acyclic=%v", n90, nU, nI, rep.Acyclic),
		Match:    match,
		Details:  details,
	}
}

// E07 reproduces Figure 9 and the minimum-channel formula.
func E07(opts Options) Result {
	claims, err := paper.MinChannelClaims(6)
	if err != nil {
		return Result{Paper: "N=(n+1)*2^(n-1)", Measured: err.Error()}
	}
	var rows []string
	for _, c := range claims {
		rows = append(rows, fmt.Sprintf("n=%d: %d", c.N, c.Channels))
	}
	mesh3 := topology.NewMesh(3, 3, 3)
	match := true
	for _, tc := range []struct {
		name  string
		chain *core.Chain
	}{
		{"Figure 9(a)", paper.Figure9EightPartitions()},
		{"Figure 9(b)", paper.Figure9B()},
		{"Figure 9(c)", paper.Figure9C()},
	} {
		rep := cdg.VerifyChainCached(mesh3, tc.chain)
		vcs := cdg.VCConfigFor(3, tc.chain.Channels())
		ad, err := cdg.Adaptiveness(mesh3, vcs, tc.chain.AllTurns())
		ok := err == nil && rep.Acyclic && ad.FullyAdaptive()
		match = match && ok
		rows = append(rows, fmt.Sprintf("%s: %d channels, acyclic=%v, fully adaptive=%v",
			tc.name, len(tc.chain.Channels()), rep.Acyclic, err == nil && ad.FullyAdaptive()))
	}
	// Exhaustive minimality search for n = 2 (unless quick): no
	// <=5-channel design is fully adaptive.
	minimalityLine := "minimality search skipped (quick)"
	if !opts.Quick {
		ok, best := SearchNoFullyAdaptiveBelow(6)
		match = match && ok
		minimalityLine = fmt.Sprintf("exhaustive n=2 search: best <6-channel design reaches %.4f adaptiveness (<1)", best)
	}
	rows = append(rows, minimalityLine)
	return Result{
		Paper:    "minimum channels: 6 (n=2), 16 (n=3), formula (n+1)*2^(n-1); Figure 9 designs fully adaptive",
		Measured: strings.Join(rows[:3], ", ") + "; all Figure 9 designs verified",
		Match:    match,
		Details:  rows,
	}
}

// E08..E10 reproduce Tables 1-3.
func E08(Options) Result { return tableResult(1) }
func E09(Options) Result { return tableResult(2) }
func E10(Options) Result { return tableResult(3) }

func tableResult(n int) Result {
	var (
		chains   []*core.Chain
		expected []string
		err      error
	)
	switch n {
	case 1:
		chains, err = paper.Table1()
		expected = paper.Table1Expected
	case 2:
		chains = paper.Table2()
		expected = paper.Table2Expected
	case 3:
		chains, err = paper.Table3()
		expected = paper.Table3Expected
	}
	if err != nil {
		return Result{Measured: err.Error()}
	}
	mesh := topology.NewMesh(5, 5)
	match := len(chains) == len(expected)
	var details []string
	for i, c := range chains {
		got := c.PlainString()
		rep := cdg.VerifyChainCached(mesh, c)
		obsTableVerifies[n].Inc()
		ok := i < len(expected) && got == expected[i] && rep.Acyclic
		match = match && ok
		details = append(details, fmt.Sprintf("%-34s acyclic=%v", got, rep.Acyclic))
	}
	return Result{
		Paper:    fmt.Sprintf("Table %d: %d partitioning options, all deadlock-free", n, len(expected)),
		Measured: fmt.Sprintf("generated %d options, all entries match and verify acyclic=%v", len(chains), match),
		Match:    match,
		Details:  details,
	}
}

// E11 reproduces Table 4 (Odd-Even).
func E11(Options) Result {
	chain := paper.Table4Chain()
	mesh := topology.NewMesh(6, 6)
	rep := cdg.VerifyChainCached(mesh, chain)
	conn := cdg.Connectivity(mesh, nil, chain.AllTurns(), true)
	n90, _, _ := chain.Turns90().Counts()
	oe, _ := cdg.Adaptiveness(mesh, nil, chain.AllTurns())
	wf, _ := cdg.Adaptiveness(mesh, nil, core.MustParseChain("PA[X-] -> PB[X+ Y+ Y-]").AllTurns())
	match := rep.Acyclic && conn.Connected() && n90 == 12
	return Result{
		Paper:    "PA{X- Ye*} -> PB{X+ Yo*} reproduces Odd-Even: 12 turns, same adaptiveness level as West-First",
		Measured: fmt.Sprintf("12 turns=%v, acyclic=%v, connected=%v; adaptiveness OE %.4f vs WF %.4f", n90 == 12, rep.Acyclic, conn.Connected(), oe.Degree(), wf.Degree()),
		Match:    match,
		Details: []string{
			"note: measured minimal-path adaptiveness of OE is below WF on a 6x6 mesh; the paper's 'same level' claim is qualitative (see EXPERIMENTS.md)",
		},
	}
}

// E12 reproduces Table 5 (partially connected 3D).
func E12(Options) Result {
	chain := paper.Table5Chain()
	n90, nU, nI := chain.AllTurns().Counts()
	net := topology.NewPartialMesh3D(4, 4, 3, [][2]int{{0, 0}, {3, 3}})
	vcs := cdg.VCConfigFor(3, chain.Channels())
	rep := cdg.VerifyTurnSetCached(net, vcs, chain.AllTurns())
	conn := cdg.Connectivity(net, vcs, chain.AllTurns(), false)
	alg := routing.NewEbDaElevator(chain, routing.Elevators{{0, 0}, {3, 3}})
	del := routing.CheckDelivery(net, alg, 96)
	// The region-wise adaptiveness claim: fully adaptive in NEU, SEU,
	// NWD, SWD; partially adaptive in NED, SED, NWU, SWU (evaluated on a
	// fully connected 3D mesh — the claim is a turn-set property).
	regions, err := cdg.RegionAdaptiveness(topology.NewMesh(3, 3, 3),
		cdg.VCConfigFor(3, chain.Channels()), chain.AllTurns())
	if err != nil {
		return Result{Measured: err.Error()}
	}
	wantFull := map[string]bool{
		"ENU": true, "ESU": true, "WND": true, "WSD": true,
		"END": false, "ESD": false, "WNU": false, "WSU": false,
	}
	regionsOK := true
	var regionLines []string
	for _, r := range regions {
		if r.FullyAdaptive() != wantFull[r.Name()] {
			regionsOK = false
		}
		regionLines = append(regionLines, fmt.Sprintf("region %s: %s", r.Name(), r.AdaptivenessReport))
	}
	match := n90 == 30 && rep.Acyclic && conn.Connected() && del.OK() && regionsOK
	return Result{
		Paper:    "PA[X1+ Y1* Z1+] -> PB[X1- Y2* Z1-]: 30 turns with 1,2,1 VCs vs Elevator-First's 16 with 2,2,1; fully adaptive in NEU/SEU/NWD/SWD, partial elsewhere",
		Measured: fmt.Sprintf("%d 90-degree + %d U/I turns; partial-3D CDG acyclic=%v, connected=%v, routing %s; region claim holds=%v", n90, nU+nI, rep.Acyclic, conn.Connected(), del, regionsOK),
		Match:    match,
		Details:  regionLines,
	}
}

// E13 reproduces the Section 2 search-space discussion, and — beyond the
// paper — completes the 3D search the paper only sizes: all 4^6 = 4,096
// removals are swept through the CDG checker.
func E13(opts Options) Result {
	claims := paper.Section2Claims()
	var details []string
	for _, c := range claims {
		flag := ""
		if !c.Consistent {
			flag = "  <-- " + c.Notes
		}
		details = append(details, fmt.Sprintf("%-35s %d cycles -> %s combinations (paper: %s)%s",
			c.Setting, c.Cycles, c.Combos, c.PaperText, flag))
	}
	rs := paper.TurnModelSearch(topology.NewMesh(4, 4))
	free, classes := paper.CountDeadlockFree(rs)
	match := free == 12 && classes == 3
	measured := fmt.Sprintf("brute force over 16 combinations: %d deadlock-free, %d symmetry classes", free, classes)
	if !opts.Quick {
		res3 := paper.TurnModelSearch3D(topology.NewMesh(3, 3, 3))
		match = match && res3.Combinations == 4096 && res3.DeadlockFree == 176 && res3.Classes == 9
		details = append(details, fmt.Sprintf(
			"3D sweep (beyond the paper): %d combinations, %d deadlock-free, %d classes under the 48 cube symmetries",
			res3.Combinations, res3.DeadlockFree, res3.Classes))
		measured += fmt.Sprintf("; 3D: %d/%d deadlock-free (%d classes)",
			res3.DeadlockFree, res3.Combinations, res3.Classes)
	}
	return Result{
		Paper:    "16 removal combinations in 2D; 12 deadlock-free, 3 unique under symmetry; 3D sized at 4^6",
		Measured: measured,
		Match:    match,
		Details:  details,
	}
}

// E14 reproduces the Section 5 worked example.
func E14(Options) Result {
	chain, err := paper.Section5Run()
	if err != nil {
		return Result{Measured: err.Error()}
	}
	got := chain.String()
	rep := cdg.VerifyChainCached(topology.NewMesh(3, 3, 3), chain)
	match := got == paper.Section5Expected && rep.Acyclic
	return Result{
		Paper:    "Algorithm 1 on 3,2,3 VCs yields " + paper.Section5Expected,
		Measured: fmt.Sprintf("%s (acyclic=%v)", got, rep.Acyclic),
		Match:    match,
	}
}

// E15 reproduces the Hamiltonian-path coverage claim.
func E15(Options) Result {
	chain := paper.HamiltonianChain()
	ts := chain.AllTurns()
	n90, _, _ := ts.Counts()
	all := true
	for _, t := range paper.HamiltonianPathTurns() {
		if !ts.Allows(t.From, t.To) {
			all = false
		}
	}
	mesh := topology.NewMesh(6, 6)
	rep := cdg.VerifyTurnSetCached(mesh, nil, ts)
	conn := cdg.Connectivity(mesh, nil, ts, false)
	match := n90 == 12 && all && rep.Acyclic && conn.Connected()
	return Result{
		Paper:    "PA{Xe+ Xo- Y+} -> PB{Xe- Xo+ Y-}: 12 turns including all 8 Hamiltonian-path turns",
		Measured: fmt.Sprintf("%d 90-degree turns, HP turns covered=%v, acyclic=%v, connected=%v", n90, all, rep.Acyclic, conn.Connected()),
		Match:    match,
	}
}

// E16 reproduces Section 5.4: routing logic synthesized from turn sets,
// showing that more allowable turns do not imply more routing-unit
// overhead.
func E16(Options) Result {
	type design struct {
		name, spec string
		turns      int
	}
	designs := []design{
		{"xy", "PA[X+] -> PB[X-] -> PC[Y+] -> PD[Y-]", 4},
		{"west-first", "PA[X-] -> PB[X+ Y+ Y-]", 6},
		{"negative-first", "PA[X- Y-] -> PB[X+ Y+]", 6},
		{"fully-adaptive", "PA[X1+ Y1+ Y1-] -> PB[X1- Y2+ Y2-]", 12},
	}
	var details []string
	leaves := map[string]int{}
	match := true
	for _, d := range designs {
		l, err := synth.Generate(d.name, core.MustParseChain(d.spec), 2)
		if err != nil {
			return Result{Measured: err.Error()}
		}
		n90, _, _ := core.MustParseChain(d.spec).Turns90().Counts()
		if n90 != d.turns {
			match = false
		}
		leaves[d.name] = l.Leaves()
		details = append(details, fmt.Sprintf("%-15s %2d turns -> %2d rules, %2d comparisons",
			d.name, n90, l.Leaves(), l.Comparisons()))
	}
	// The claim: six-turn WF/NF need no more rules than four-turn XY,
	// and the fully adaptive NE region is a single input-independent
	// rule.
	if leaves["west-first"] != leaves["xy"] || leaves["negative-first"] != leaves["xy"] {
		match = false
	}
	fa, err := synth.Generate("fa", core.MustParseChain("PA[X1+ Y1+ Y1-] -> PB[X1- Y2+ Y2-]"), 2)
	if err != nil {
		return Result{Measured: err.Error()}
	}
	ne := fa.RulesForRegion(synth.Region{1, 1})
	if len(ne) != 1 || ne[0].In != nil {
		match = false
	}
	return Result{
		Paper:    "more allowable turns do not necessarily lead to larger or more complex routing logic",
		Measured: fmt.Sprintf("XY/WF/NF all synthesize to %d region rules; fully adaptive NE region is one rule", leaves["xy"]),
		Match:    match,
		Details:  details,
	}
}

// SweepPoint is one (algorithm, rate) measurement of X01.
type SweepPoint struct {
	Alg        string
	Rate       float64
	Latency    float64
	Throughput float64
	Deadlocked bool
}

// Sweep runs the latency/throughput sweep of X01 and returns the points.
func Sweep(opts Options) []SweepPoint {
	meshSize := 8
	warm, meas, drain := 1000, 3000, 1000
	rates := []float64{0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4}
	if opts.Quick {
		meshSize, warm, meas, drain = 4, 300, 800, 400
		rates = []float64{0.05, 0.15, 0.3}
	}
	net := topology.NewMesh(meshSize, meshSize)
	dyxyChain := core.MustParseChain("PA[X1+ Y1+ Y1-] -> PB[X1- Y2+ Y2-]")
	dyxy := routing.NewFromChain("ebda-6ch", dyxyChain, 2)
	du := duato.New()
	algs := []struct {
		alg routing.Algorithm
		vcs []int
	}{
		{routing.NewXY(), nil},
		{routing.NewWestFirst(), nil},
		{routing.NewNorthLast(), nil},
		{routing.NewNegativeFirst(), nil},
		{routing.NewOddEven(), nil},
		{dyxy, dyxy.VCs()},
		{du, du.VCsPerDim(net)},
	}
	var points []SweepPoint
	for _, a := range algs {
		for _, rate := range rates {
			res := sim.New(sim.Config{
				Net: net, Alg: a.alg, VCs: a.vcs,
				InjectionRate: rate, Seed: 1,
				Pattern: traffic.Uniform{},
				Warmup:  warm, Measure: meas, Drain: drain,
			}).Run()
			points = append(points, SweepPoint{
				Alg: a.alg.Name(), Rate: rate,
				Latency: res.AvgLatency, Throughput: res.Throughput,
				Deadlocked: res.Deadlocked,
			})
		}
	}
	return points
}

// X01 runs the latency/throughput extension sweep.
func X01(opts Options) Result {
	points := Sweep(opts)
	var details []string
	anyDeadlock := false
	for _, p := range points {
		status := ""
		if p.Deadlocked {
			status = "  DEADLOCK"
			anyDeadlock = true
		}
		details = append(details, fmt.Sprintf("%-15s rate %.2f: latency %7.1f  throughput %.4f%s",
			p.Alg, p.Rate, p.Latency, p.Throughput, status))
	}
	return Result{
		Paper:    "(extension; the paper reports no performance numbers) all designs must stay deadlock-free across loads",
		Measured: fmt.Sprintf("%d (algorithm, rate) points simulated; deadlocks: %v", len(points), anyDeadlock),
		Match:    !anyDeadlock,
		Details:  details,
	}
}

// X02 demonstrates deadlock injection.
func X02(opts Options) Result {
	warm, meas := 2000, 6000
	if opts.Quick {
		warm, meas = 500, 2500
	}
	mk := func(alg routing.Algorithm, vcs []int) sim.Result {
		return sim.New(sim.Config{
			Net: topology.NewMesh(4, 4), Alg: alg, VCs: vcs,
			InjectionRate: 0.6, PacketLen: 8, BufferDepth: 2, Seed: 7,
			Warmup: warm, Measure: meas, Drain: 1000, DeadlockThreshold: 500,
		}).Run()
	}
	bad := mk(routing.NewUnrestricted(), nil)
	dyxy := routing.NewFromChain("dyxy", core.MustParseChain("PA[X1+ Y1+ Y1-] -> PB[X1- Y2+ Y2-]"), 2)
	good := mk(dyxy, dyxy.VCs())
	match := bad.Deadlocked && !good.Deadlocked
	return Result{
		Paper:    "(extension) cyclic turn sets deadlock in wormhole switching; EbDa designs do not",
		Measured: fmt.Sprintf("unrestricted: deadlocked=%v (%d flits stuck); EbDa 6-channel: deadlocked=%v", bad.Deadlocked, bad.StuckFlits, good.Deadlocked),
		Match:    match,
	}
}

// X03 verifies the torus dateline design.
func X03(Options) Result {
	tor := topology.NewTorus(5, 5)
	alg := routing.NewDatelineTorus()
	rep := routing.Verify(tor, cdg.VCConfig(alg.VCsPerDim(tor)), alg)
	plain := routing.Verify(tor, nil, routing.NewXY())
	del := routing.CheckDelivery(tor, alg, 64)
	match := rep.Acyclic && !plain.Acyclic && del.OK()
	return Result{
		Paper:    "(extension; note to Theorem 2) wraparound channels need ordered U-turn discipline: plain DOR cycles, dateline VCs do not",
		Measured: fmt.Sprintf("plain XY on 5x5 torus acyclic=%v; dateline acyclic=%v, %s", plain.Acyclic, rep.Acyclic, del),
		Match:    match,
	}
}

// SaturationPoint estimates the saturation load of an algorithm: the
// lowest injection rate (on the given grid) at which average latency
// exceeds three times the zero-load latency, in flits/node/cycle. It also
// returns the throughput accepted at that point.
func SaturationPoint(net *topology.Network, alg routing.Algorithm, vcs []int, pattern traffic.Pattern, cycles int) (rate, throughput float64) {
	run := func(r float64) sim.Result {
		return sim.New(sim.Config{
			Net: net, Alg: alg, VCs: vcs, Pattern: pattern,
			InjectionRate: r, Seed: 1,
			Warmup: cycles / 4, Measure: cycles, Drain: cycles / 4,
		}).Run()
	}
	zero := run(0.01)
	threshold := 3 * zero.AvgLatency
	last := zero
	for r := 0.05; r <= 0.95; r += 0.05 {
		res := run(r)
		if res.Deadlocked || res.AvgLatency > threshold || res.MeasuredPackets == 0 {
			return r, last.Throughput
		}
		last = res
	}
	return 1.0, last.Throughput
}

// X04 measures saturation throughput for the main algorithms under
// uniform and transpose traffic — the standard NoC comparison the paper's
// derived algorithms would be evaluated with.
func X04(opts Options) Result {
	size, cycles := 8, 2000
	if opts.Quick {
		size, cycles = 4, 600
	}
	net := topology.NewMesh(size, size)
	dyxy := routing.NewFromChain("ebda-6ch", core.MustParseChain("PA[X1+ Y1+ Y1-] -> PB[X1- Y2+ Y2-]"), 2)
	du := duato.New()
	algs := []struct {
		alg routing.Algorithm
		vcs []int
	}{
		{routing.NewXY(), nil},
		{routing.NewOddEven(), nil},
		{dyxy, dyxy.VCs()},
		{du, du.VCsPerDim(net)},
	}
	var details []string
	match := true
	for _, pattern := range []traffic.Pattern{traffic.Uniform{}, traffic.Transpose{}} {
		for _, a := range algs {
			rate, thr := SaturationPoint(net, a.alg, a.vcs, pattern, cycles)
			if thr <= 0 {
				match = false
			}
			details = append(details, fmt.Sprintf("%-12s %-9s saturates near %.2f (accepted %.3f flits/node/cycle)",
				pattern.Name(), a.alg.Name(), rate, thr))
		}
	}
	return Result{
		Paper:    "(extension) saturation comparison of derived vs baseline algorithms",
		Measured: fmt.Sprintf("%d saturation points measured, all with positive accepted throughput", len(details)),
		Match:    match,
		Details:  details,
	}
}

// X05 exercises Assumptions 1 and 2: the same EbDa design runs
// deadlock-free under wormhole, virtual cut-through and store-and-forward
// switching, and with mixed arbitrary packet lengths, while the
// unrestricted baseline deadlocks under each.
func X05(opts Options) Result {
	cycles := 2000
	if opts.Quick {
		cycles = 800
	}
	net := topology.NewMesh(4, 4)
	dyxy := routing.NewFromChain("ebda-6ch", core.MustParseChain("PA[X1+ Y1+ Y1-] -> PB[X1- Y2+ Y2-]"), 2)
	run := func(alg routing.Algorithm, vcs []int, sw sim.Switching) sim.Result {
		return sim.New(sim.Config{
			Net: net, Alg: alg, VCs: vcs,
			InjectionRate: 0.4, PacketLen: 3,
			LongPacketLen: 10, LongFraction: 0.25,
			BufferDepth: 2, Seed: 7, Switching: sw,
			Warmup: cycles / 2, Measure: cycles, Drain: cycles / 2,
			DeadlockThreshold: 400,
		}).Run()
	}
	var details []string
	match := true
	for _, sw := range []sim.Switching{sim.Wormhole, sim.VirtualCutThrough, sim.StoreAndForward} {
		good := run(dyxy, dyxy.VCs(), sw)
		bad := run(routing.NewUnrestricted(), nil, sw)
		if good.Deadlocked {
			match = false
		}
		details = append(details, fmt.Sprintf("%-9s ebda-6ch: deadlock=%v latency %.1f; unrestricted: deadlock=%v",
			sw, good.Deadlocked, good.AvgLatency, bad.Deadlocked))
	}
	return Result{
		Paper:    "theorems hold for WH, VCT and SAF (Assumption 1) and arbitrary packet lengths (Assumption 2)",
		Measured: "EbDa design deadlock-free under all three switching modes with mixed 3/10-flit packets",
		Match:    match,
		Details:  details,
	}
}

// X06 runs the dual-path Hamiltonian multicast derived from the Section
// 6.2 parity partitioning: every worm turn must be admitted by the
// extracted turn set, and broadcasts must beat separate unicasts in link
// traversals.
func X06(opts Options) Result {
	size := 8
	if opts.Quick {
		size = 6
	}
	net := topology.NewMesh(size, size)
	h, err := multicast.New(net)
	if err != nil {
		return Result{Measured: err.Error()}
	}
	ts := paper.HamiltonianChain().AllTurns()
	rep := cdg.VerifyTurnSetCached(net, nil, ts)

	// Broadcast from every corner; all turns checked, hops compared.
	match := rep.Acyclic
	var details []string
	corners := []topology.Coord{
		{0, 0}, {size - 1, 0}, {0, size - 1}, {size - 1, size - 1}, {size / 2, size / 2},
	}
	var dsts []topology.NodeID
	for id := topology.NodeID(0); int(id) < net.Nodes(); id++ {
		dsts = append(dsts, id)
	}
	for _, c := range corners {
		src := net.ID(c)
		route, err := h.DualPath(src, dsts)
		if err != nil {
			return Result{Measured: err.Error()}
		}
		turnsOK := true
		for _, p := range [][]topology.NodeID{route.High, route.Low} {
			classes, err := h.PathClasses(p)
			if err != nil {
				return Result{Measured: err.Error()}
			}
			for i := 1; i < len(classes); i++ {
				if !ts.Allows(classes[i-1], classes[i]) {
					turnsOK = false
				}
			}
		}
		uni := multicast.UnicastHops(net, src, dsts)
		ok := turnsOK && route.Hops() < uni
		match = match && ok
		details = append(details, fmt.Sprintf("broadcast from %v: %d hops vs %d unicast hops, turns admitted=%v",
			c, route.Hops(), uni, turnsOK))
	}
	return Result{
		Paper:    "the Hamiltonian-path strategy's turns are a subset of the parity partitioning's (Section 6.2)",
		Measured: fmt.Sprintf("all dual-path worm turns admitted by the EbDa turn set on a %dx%d mesh; broadcasts beat unicasts", size, size),
		Match:    match,
		Details:  details,
	}
}

// X07 realises the Section-2 theory contrast mechanically: EbDa designs
// have acyclic dependency graphs (no escape channels needed); the Duato
// baseline's graph is cyclic yet admits no deadlock configuration (the
// escape channel breaks every candidate circular wait); the unrestricted
// baseline admits a concrete configuration.
func X07(Options) Result {
	net := topology.NewMesh(4, 4)
	ebdaAlg := routing.NewFromChain("ebda-6ch", core.MustParseChain("PA[X1+ Y1+ Y1-] -> PB[X1- Y2+ Y2-]"), 2)
	du := duato.New()
	type row struct {
		name    string
		alg     routing.Algorithm
		vcs     cdg.VCConfig
		acyclic bool
		knot    bool
	}
	rows := []row{
		{name: "ebda-6ch", alg: ebdaAlg, vcs: cdg.VCConfig(ebdaAlg.VCs())},
		{name: "duato-fa", alg: du, vcs: cdg.VCConfig(du.VCsPerDim(net))},
		{name: "unrestricted", alg: routing.NewUnrestricted()},
	}
	var details []string
	for i := range rows {
		rows[i].acyclic = routing.Verify(net, rows[i].vcs, rows[i].alg).Acyclic
		rows[i].knot = !deadlock.Find(net, rows[i].vcs, rows[i].alg).Empty()
		details = append(details, fmt.Sprintf("%-13s CDG acyclic=%-5v deadlock configuration exists=%v",
			rows[i].name, rows[i].acyclic, rows[i].knot))
	}
	match := rows[0].acyclic && !rows[0].knot && // EbDa: acyclic, no knot
		!rows[1].acyclic && !rows[1].knot && // Duato: cyclic, no knot
		!rows[2].acyclic && rows[2].knot // unrestricted: cyclic, knot
	return Result{
		Paper:    "EbDa builds acyclic graphs outright; Duato tolerates cycles via escape channels (Section 2)",
		Measured: "EbDa: acyclic/no configuration; Duato: cyclic/no configuration (escape breaks every wait); unrestricted: cyclic + concrete configuration",
		Match:    match,
		Details:  details,
	}
}

// SearchNoFullyAdaptiveBelow exhaustively enumerates every chain over at
// most maxChannels-1 channels drawn from {X,Y} x {+,-} x {VC1,VC2} on a
// 4x4 mesh and reports (true, bestDegree) if none is fully adaptive —
// the constructive lower-bound check for the Section 4 formula at n = 2.
func SearchNoFullyAdaptiveBelow(maxChannels int) (bool, float64) {
	net := topology.NewMesh(4, 4)
	pool := []string{"X1+", "X1-", "X2+", "X2-", "Y1+", "Y1-", "Y2+", "Y2-"}
	best := 0.0
	// Enumerate channel subsets of size < maxChannels.
	n := len(pool)
	for mask := 1; mask < 1<<uint(n); mask++ {
		var subset []string
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				subset = append(subset, pool[i])
			}
		}
		if len(subset) >= maxChannels {
			continue
		}
		// Enumerate ordered partitions (chains) of the subset, bounded
		// by assigning each channel a partition index 0..len-1 and
		// compacting. To keep the search tractable, partition counts of
		// 1..3 are enumerated via index assignment.
		if full, degree := bestChainDegree(net, subset); full {
			return false, 1
		} else if degree > best {
			best = degree
		}
	}
	return true, best
}

// bestChainDegree tries all partition assignments (up to 3 partitions) of
// the subset and returns whether any yields a fully adaptive design, plus
// the best adaptiveness degree seen.
func bestChainDegree(net *topology.Network, subset []string) (bool, float64) {
	k := len(subset)
	best := 0.0
	assign := make([]int, k)
	var rec func(i, maxUsed int) bool
	rec = func(i, maxUsed int) bool {
		if i == k {
			chain, err := chainFromAssignment(subset, assign, maxUsed)
			if err != nil {
				return false
			}
			vcs := cdg.VCConfigFor(2, chain.Channels())
			ad, err := cdg.Adaptiveness(net, vcs, chain.AllTurns())
			if err != nil {
				return false
			}
			if ad.FullyAdaptive() {
				return true
			}
			if d := ad.Degree(); d > best {
				best = d
			}
			return false
		}
		limit := maxUsed + 1
		if limit > 3 {
			limit = 3
		}
		for p := 0; p < limit; p++ {
			assign[i] = p
			next := maxUsed
			if p == maxUsed {
				next++
			}
			if rec(i+1, next) {
				return true
			}
		}
		return false
	}
	full := rec(0, 0)
	return full, best
}

func chainFromAssignment(subset []string, assign []int, parts int) (*core.Chain, error) {
	groups := make([][]string, parts)
	for i, p := range assign {
		groups[p] = append(groups[p], subset[i])
	}
	var ps []*core.Partition
	for i, g := range groups {
		if len(g) == 0 {
			continue
		}
		p, err := core.ParsePartition(fmt.Sprintf("P%d[%s]", i, strings.Join(g, " ")))
		if err != nil {
			return nil, err
		}
		ps = append(ps, p)
	}
	return core.NewChain(ps...)
}

// sameTurnWords compares two space-separated turn listings as sets.
func sameTurnWords(a, b string) bool {
	as, bs := strings.Fields(a), strings.Fields(b)
	if len(as) != len(bs) {
		return false
	}
	set := map[string]bool{}
	for _, w := range as {
		set[w] = true
	}
	for _, w := range bs {
		if !set[w] {
			return false
		}
	}
	return true
}
