package experiments

import "ebda/internal/obs"

// Harness instrumentation: how many chain verifications each paper table
// contributed (labeled per table so /metrics shows the sweep shape) and a
// phase covering the experiment runners, attributed per worker.
var (
	obsTableVerifies = [4]*obs.Counter{
		nil, // tables are 1-indexed
		obs.NewCounter(obs.Label("ebda_experiments_table_verifies_total", "table", "1"),
			"chain verifications per paper table"),
		obs.NewCounter(obs.Label("ebda_experiments_table_verifies_total", "table", "2"),
			"chain verifications per paper table"),
		obs.NewCounter(obs.Label("ebda_experiments_table_verifies_total", "table", "3"),
			"chain verifications per paper table"),
	}

	phaseRunners = obs.NewPhase("experiments.run", "")
)
