// Package synth implements Section 5.4 of the paper: turning an extracted
// turn set into the routing-unit logic of a router — the if-else cascade
// over destination offsets and the input channel — and measuring its
// implementation cost. The paper's point, reproduced here, is that more
// allowable turns do not necessarily mean more complex routing logic:
// adding turns can merge if-else branches (the fully adaptive NE region
// needs one rule where XY needs two).
//
// The synthesizer abstracts a design into sign-based rules: for every
// destination region (the sign of the remaining offset in each dimension)
// and every possible input channel class, it derives the set of output
// channel classes the design offers. Rules with identical outputs across
// all inputs collapse to region-only rules, mirroring how a hardware
// routing unit is written. The result can be rendered as paper-style
// pseudo-code or as compilable Go source, and costed in leaves and
// comparisons.
package synth

import (
	"fmt"
	"sort"
	"strings"

	"ebda/internal/channel"
	"ebda/internal/core"
	"ebda/internal/routing"
	"ebda/internal/topology"
)

// Region is the sign of the remaining offset per dimension: -1, 0 or +1.
type Region []int8

// String renders the region as "X+ Y-" ("·" for zero offsets).
func (r Region) String() string {
	parts := make([]string, 0, len(r))
	for d, s := range r {
		switch s {
		case 1:
			parts = append(parts, channel.Dim(d).String()+"+")
		case -1:
			parts = append(parts, channel.Dim(d).String()+"-")
		}
	}
	if len(parts) == 0 {
		return "local"
	}
	return strings.Join(parts, " ")
}

// Rule is one row of the synthesized decision table.
type Rule struct {
	// Region is the destination region the rule applies to.
	Region Region
	// In is the input channel class the rule is conditioned on; nil when
	// the rule holds for every input reaching that region (merged rule).
	In *channel.Class
	// Out lists the output channel classes offered.
	Out []channel.Class
}

// Logic is a synthesized routing unit.
type Logic struct {
	Name  string
	Dims  int
	Rules []Rule
	// merged counts how many per-input cases collapsed into region-only
	// rules.
	merged int
}

// Generate synthesizes the routing logic of a chain-derived design by
// probing a FromChain algorithm at the centre of a mesh large enough that
// boundary effects cannot reach it. Designs with coordinate-parity classes
// are position-dependent and are rejected (their logic differs between
// even and odd columns; synthesize per-parity variants by fixing columns
// instead).
func Generate(name string, chain *core.Chain, dims int) (*Logic, error) {
	for _, c := range chain.Channels() {
		if c.Par != channel.Any {
			return nil, fmt.Errorf("synth: parity-classed design %s is position-dependent", c)
		}
	}
	alg := routing.NewFromChain(name, chain, dims)
	// A mesh of extent 7 per dimension with the probe at the centre
	// keeps every +-2 offset interior.
	sizes := make([]int, dims)
	centre := make(topology.Coord, dims)
	for d := range sizes {
		sizes[d] = 7
		centre[d] = 3
	}
	net := topology.NewMesh(sizes...)
	cur := net.ID(centre)

	// Probe inputs: injection plus every (dim, sign, vc) the design has.
	type inCase struct {
		cls *channel.Class
	}
	inputs := []inCase{{nil}}
	vcs := alg.VCs()
	for d := 0; d < dims; d++ {
		for _, sign := range []channel.Sign{channel.Plus, channel.Minus} {
			for vc := 1; vc <= vcs[d]; vc++ {
				c := channel.NewVC(channel.Dim(d), sign, vc)
				inputs = append(inputs, inCase{&c})
			}
		}
	}

	logic := &Logic{Name: name, Dims: dims}
	for _, region := range regions(dims) {
		dst := centre.Clone()
		for d, s := range region {
			dst[d] += 2 * int(s)
		}
		dstID := net.ID(dst)
		// Collect per-input candidate sets; inputs that cannot occur in
		// this region (the packet would have had to move away from the
		// destination) are skipped: an input is plausible if its reverse
		// hop was productive, i.e. arriving via (d, sign) implies the
		// offset in d is not opposite to sign... more simply, arriving
		// via (d, sign) is plausible unless the remaining offset in d
		// points opposite to the arrival direction would never happen
		// under minimal routing. Detour-capable designs are synthesized
		// with all inputs.
		type entry struct {
			in  *channel.Class
			out []channel.Class
		}
		var entries []entry
		for _, ic := range inputs {
			if !plausible(region, ic.cls) {
				continue
			}
			out := alg.Candidates(net, cur, ic.cls, dstID)
			if len(out) == 0 {
				// A state with no outputs is unreachable under the
				// design itself: the chain-derived algorithm never
				// routes a packet into a class from which the
				// destination region would become unreachable
				// (FromChain's reachability guard). Injection states
				// must never be empty, though — that would be a
				// broken (disconnected) design.
				if ic.cls == nil {
					return nil, fmt.Errorf("synth: design offers no route for region %s", region)
				}
				continue
			}
			sortClasses(out)
			entries = append(entries, entry{in: ic.cls, out: out})
		}
		// Merge when every plausible input yields identical outputs.
		same := len(entries) > 0
		for _, e := range entries[1:] {
			if !equalClasses(entries[0].out, e.out) {
				same = false
				break
			}
		}
		if same {
			logic.Rules = append(logic.Rules, Rule{
				Region: append(Region(nil), region...),
				Out:    entries[0].out,
			})
			logic.merged += len(entries) - 1
			continue
		}
		for _, e := range entries {
			logic.Rules = append(logic.Rules, Rule{
				Region: append(Region(nil), region...),
				In:     e.in,
				Out:    e.out,
			})
		}
	}
	return logic, nil
}

func equalClasses(a, b []channel.Class) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sortClasses(cs []channel.Class) {
	sort.Slice(cs, func(i, j int) bool { return cs[i].Compare(cs[j]) < 0 })
}

// plausible reports whether a packet can be at the probe with the given
// remaining region having arrived on the given channel under minimal
// routing: the hop that brought it here must have been productive, so the
// remaining offset along the arrival dimension cannot point backwards.
func plausible(region Region, in *channel.Class) bool {
	if in == nil {
		return true
	}
	rem := region[in.Dim]
	if rem == 0 {
		return true
	}
	return (rem > 0) == (in.Sign == channel.Plus)
}

// regions enumerates the 3^n - 1 non-local destination regions.
func regions(dims int) []Region {
	var out []Region
	cur := make(Region, dims)
	var rec func(d int)
	rec = func(d int) {
		if d == dims {
			zero := true
			for _, s := range cur {
				if s != 0 {
					zero = false
				}
			}
			if !zero {
				out = append(out, append(Region(nil), cur...))
			}
			return
		}
		for _, s := range []int8{1, -1, 0} {
			cur[d] = s
			rec(d + 1)
		}
	}
	rec(0)
	return out
}

// Leaves returns the number of decision-table rows — the paper's measure
// of routing-logic size.
func (l *Logic) Leaves() int { return len(l.Rules) }

// Merged returns how many per-input cases collapsed into region-only
// rules (more turns often means more merging, hence simpler logic).
func (l *Logic) Merged() int { return l.merged }

// Comparisons estimates the comparator count of an if-else realisation:
// each rule needs one sign test per non-zero region dimension, one zero
// test per zero dimension, plus one input-class test when conditioned on
// the input.
func (l *Logic) Comparisons() int {
	total := 0
	for _, r := range l.Rules {
		total += len(r.Region)
		if r.In != nil {
			total++
		}
	}
	return total
}

// RulesForRegion returns the rules of one region.
func (l *Logic) RulesForRegion(region Region) []Rule {
	var out []Rule
	for _, r := range l.Rules {
		if regionEqual(r.Region, region) {
			out = append(out, r)
		}
	}
	return out
}

func regionEqual(a, b Region) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Pseudo renders the logic in the paper's if-else style.
func (l *Logic) Pseudo() string {
	var b strings.Builder
	fmt.Fprintf(&b, "routing unit %s:\n", l.Name)
	for _, r := range l.Rules {
		conds := make([]string, 0, len(r.Region)+1)
		for d, s := range r.Region {
			off := channel.Dim(d).String() + "offset"
			switch s {
			case 1:
				conds = append(conds, off+" > 0")
			case -1:
				conds = append(conds, off+" < 0")
			default:
				conds = append(conds, off+" == 0")
			}
		}
		if r.In != nil {
			conds = append(conds, "in == "+r.In.String())
		}
		outs := make([]string, len(r.Out))
		for i, c := range r.Out {
			outs[i] = c.String()
		}
		sel := strings.Join(outs, " or ")
		if sel == "" {
			sel = "<none>"
		}
		fmt.Fprintf(&b, "  if %s then Channel <- %s\n", strings.Join(conds, " and "), sel)
	}
	return b.String()
}

// GoSource renders the logic as a compilable Go function over offsets and
// the input class, returning the candidate classes. It is illustrative
// (real designs would feed a hardware generator), but it is valid Go.
func (l *Logic) GoSource(funcName string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "// %s is the synthesized routing unit for design %q.\n", funcName, l.Name)
	fmt.Fprintf(&b, "func %s(off [%d]int, in *channel.Class) []channel.Class {\n", funcName, l.Dims)
	b.WriteString("\tswitch {\n")
	for _, r := range l.Rules {
		conds := make([]string, 0, len(r.Region)+1)
		for d, s := range r.Region {
			switch s {
			case 1:
				conds = append(conds, fmt.Sprintf("off[%d] > 0", d))
			case -1:
				conds = append(conds, fmt.Sprintf("off[%d] < 0", d))
			default:
				conds = append(conds, fmt.Sprintf("off[%d] == 0", d))
			}
		}
		if r.In != nil {
			conds = append(conds, fmt.Sprintf("in != nil && *in == channel.MustParse(%q)", r.In.String()))
		}
		outs := make([]string, len(r.Out))
		for i, c := range r.Out {
			outs[i] = fmt.Sprintf("channel.MustParse(%q)", c.String())
		}
		fmt.Fprintf(&b, "\tcase %s:\n\t\treturn []channel.Class{%s}\n",
			strings.Join(conds, " && "), strings.Join(outs, ", "))
	}
	b.WriteString("\t}\n\treturn nil\n}\n")
	return b.String()
}
