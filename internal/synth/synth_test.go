package synth

import (
	"math/rand"

	"strings"
	"testing"

	"ebda/internal/cdg"
	"ebda/internal/channel"
	"ebda/internal/core"
	"ebda/internal/topology"
)

func mustGenerate(t *testing.T, name, spec string, dims int) *Logic {
	t.Helper()
	l, err := Generate(name, core.MustParseChain(spec), dims)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestXYLogicShape(t *testing.T) {
	// XY routing: every region resolves deterministically; the NE region
	// needs the two-leaf cascade of Section 5.4 collapsed by region:
	// (X+ Y+) -> E, and only when X is done -> N.
	l := mustGenerate(t, "xy", "PA[X+] -> PB[X-] -> PC[Y+] -> PD[Y-]", 2)
	// 8 regions, each fully merged (output independent of input).
	if l.Leaves() != 8 {
		t.Fatalf("XY leaves = %d, want 8:\n%s", l.Leaves(), l.Pseudo())
	}
	ne := l.RulesForRegion(Region{1, 1})
	if len(ne) != 1 {
		t.Fatalf("NE rules = %d", len(ne))
	}
	if len(ne[0].Out) != 1 || ne[0].Out[0] != channel.New(channel.X, channel.Plus) {
		t.Errorf("XY NE rule = %v, want E only", ne[0].Out)
	}
}

func TestFullyAdaptiveNERegionIsOneRule(t *testing.T) {
	// Section 5.4's point: with the fully adaptive design the NE region
	// is a single rule offering E or N — not more complex than XY's.
	l := mustGenerate(t, "dyxy", "PA[X1+ Y1+ Y1-] -> PB[X1- Y2+ Y2-]", 2)
	ne := l.RulesForRegion(Region{1, 1})
	if len(ne) != 1 {
		t.Fatalf("NE rules = %d:\n%s", len(ne), l.Pseudo())
	}
	if ne[0].In != nil {
		t.Error("NE rule should be input-independent")
	}
	// Offers E and N (the Y1+ VC; Y2+ belongs to PB whose state cannot
	// reach an NE destination... it can: X1+ after Y2+ is disallowed, so
	// the reachability guard prunes Y2+ while X offsets remain).
	if len(ne[0].Out) != 2 {
		t.Errorf("NE outputs = %v, want E + N", ne[0].Out)
	}
}

func TestMoreTurnsNotMoreLogic(t *testing.T) {
	// "More allowable turns do not necessarily lead to a larger
	// overhead" (Section 5.4): West-First and Negative-First admit six
	// turns against XY's four, yet synthesize to exactly the same eight
	// region rules — adding turns merged branches instead of adding
	// them. (VC-classed designs do grow in leaves, but per *region* the
	// fully adaptive design still needs a single rule; see
	// TestFullyAdaptiveNERegionIsOneRule.)
	xy := mustGenerate(t, "xy", "PA[X+] -> PB[X-] -> PC[Y+] -> PD[Y-]", 2)
	wf := mustGenerate(t, "west-first", "PA[X-] -> PB[X+ Y+ Y-]", 2)
	nf := mustGenerate(t, "negative-first", "PA[X- Y-] -> PB[X+ Y+]", 2)
	if wf.Leaves() != xy.Leaves() {
		t.Errorf("west-first leaves %d != XY leaves %d despite same regions", wf.Leaves(), xy.Leaves())
	}
	if nf.Leaves() != xy.Leaves() {
		t.Errorf("negative-first leaves %d != XY leaves %d", nf.Leaves(), xy.Leaves())
	}
	fa := mustGenerate(t, "dyxy", "PA[X1+ Y1+ Y1-] -> PB[X1- Y2+ Y2-]", 2)
	t.Logf("leaves/comparisons: XY %d/%d, WF %d/%d, NF %d/%d, fully-adaptive %d/%d",
		xy.Leaves(), xy.Comparisons(), wf.Leaves(), wf.Comparisons(),
		nf.Leaves(), nf.Comparisons(), fa.Leaves(), fa.Comparisons())
}

func TestWestFirstLogicInputDependence(t *testing.T) {
	// West-first logic: the NE/SE regions are fully adaptive (merged),
	// while regions needing west depend only on the region (west first).
	l := mustGenerate(t, "wf", "PA[X-] -> PB[X+ Y+ Y-]", 2)
	nw := l.RulesForRegion(Region{-1, 1})
	if len(nw) != 1 || len(nw[0].Out) != 1 || nw[0].Out[0].Sign != channel.Minus {
		t.Errorf("NW region should be a single W rule: %v", nw)
	}
}

func TestParityDesignsRejected(t *testing.T) {
	pa := core.MustPartition("PA",
		channel.New(channel.X, channel.Minus),
		channel.NewParity(channel.Y, channel.Plus, channel.X, channel.Even),
		channel.NewParity(channel.Y, channel.Minus, channel.X, channel.Even),
	)
	pb := core.MustPartition("PB",
		channel.New(channel.X, channel.Plus),
		channel.NewParity(channel.Y, channel.Plus, channel.X, channel.Odd),
		channel.NewParity(channel.Y, channel.Minus, channel.X, channel.Odd),
	)
	if _, err := Generate("oe", core.MustChain(pa, pb), 2); err == nil {
		t.Error("parity design should be rejected")
	}
}

func TestPseudoAndGoSource(t *testing.T) {
	l := mustGenerate(t, "xy", "PA[X+] -> PB[X-] -> PC[Y+] -> PD[Y-]", 2)
	pseudo := l.Pseudo()
	for _, want := range []string{"Xoffset > 0", "Yoffset == 0", "Channel <- X1+"} {
		if !strings.Contains(pseudo, want) {
			t.Errorf("pseudo missing %q:\n%s", want, pseudo)
		}
	}
	src := l.GoSource("routeXY")
	for _, want := range []string{"func routeXY(off [2]int, in *channel.Class)", "off[0] > 0", "return nil"} {
		if !strings.Contains(src, want) {
			t.Errorf("source missing %q:\n%s", want, src)
		}
	}
}

func TestThreeDimensionalLogic(t *testing.T) {
	// The Figure 9(b) design synthesizes over 26 regions without error,
	// and every region has at least one rule with outputs.
	l := mustGenerate(t, "fig9b",
		"PA[X1+ Y1+ Z1+ Z1-] -> PB[X2+ Y1- Z2+ Z2-] -> PC[X2- Y2- Z3+ Z3-] -> PD[X1- Y2+ Z4+ Z4-]", 3)
	if l.Leaves() < 26 {
		t.Errorf("3D leaves = %d, want >= 26", l.Leaves())
	}
	for _, r := range regions(3) {
		rules := l.RulesForRegion(r)
		if len(rules) == 0 {
			t.Errorf("region %s has no rules", r)
			continue
		}
		for _, rule := range rules {
			if len(rule.Out) == 0 {
				t.Errorf("region %s input %v offers nothing", r, rule.In)
			}
		}
	}
}

func TestQuickRandomChainsSynthesize(t *testing.T) {
	// Every connected VC-only 2D chain must synthesize: no error, and
	// every region reachable at injection gets at least one rule with
	// outputs.
	r := rand.New(rand.NewSource(17))
	for trial := 0; trial < 60; trial++ {
		chain := randomVCChain(r)
		if chain == nil {
			continue
		}
		// Only synthesize designs that can route everywhere.
		net := topology.NewMesh(4, 4)
		vcs := cdg.VCConfigFor(2, chain.Channels())
		if !cdg.Connectivity(net, vcs, chain.AllTurns(), true).Connected() {
			continue
		}
		l, err := Generate("rand", chain, 2)
		if err != nil {
			t.Fatalf("chain %s: %v", chain.PlainString(), err)
		}
		for _, region := range regions(2) {
			rules := l.RulesForRegion(region)
			if len(rules) == 0 {
				t.Fatalf("chain %s: region %s has no rules", chain.PlainString(), region)
			}
			for _, rule := range rules {
				if len(rule.Out) == 0 {
					t.Fatalf("chain %s: empty rule in region %s", chain.PlainString(), region)
				}
			}
		}
	}
}

// randomVCChain builds a random Theorem-1-valid 2D chain over VCs 1..2.
func randomVCChain(r *rand.Rand) *core.Chain {
	var pool []channel.Class
	for d := 0; d < 2; d++ {
		for vc := 1; vc <= 2; vc++ {
			for _, s := range []channel.Sign{channel.Plus, channel.Minus} {
				if r.Intn(4) > 0 {
					pool = append(pool, channel.NewVC(channel.Dim(d), s, vc))
				}
			}
		}
	}
	r.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	numParts := 1 + r.Intn(3)
	buckets := make([][]channel.Class, numParts)
	for _, c := range pool {
		for _, b := range r.Perm(numParts) {
			trial := append(append([]channel.Class(nil), buckets[b]...), c)
			p, err := core.NewPartition("T", trial...)
			if err == nil && p.CycleFree() {
				buckets[b] = trial
				break
			}
		}
	}
	var parts []*core.Partition
	for i, b := range buckets {
		if len(b) == 0 {
			continue
		}
		p, err := core.NewPartition("P"+string(rune('A'+i)), b...)
		if err != nil {
			return nil
		}
		parts = append(parts, p)
	}
	if len(parts) == 0 {
		return nil
	}
	chain, err := core.NewChain(parts...)
	if err != nil {
		return nil
	}
	return chain
}

func TestRegionsEnumeration(t *testing.T) {
	if got := len(regions(2)); got != 8 {
		t.Errorf("2D regions = %d, want 8", got)
	}
	if got := len(regions(3)); got != 26 {
		t.Errorf("3D regions = %d, want 26", got)
	}
}

func TestPlausibility(t *testing.T) {
	e := channel.New(channel.X, channel.Plus)
	w := channel.New(channel.X, channel.Minus)
	// Remaining offset X+ means the packet cannot have arrived moving W.
	if plausible(Region{1, 0}, &w) {
		t.Error("W arrival with X+ remaining should be implausible")
	}
	if !plausible(Region{1, 0}, &e) {
		t.Error("E arrival with X+ remaining should be plausible")
	}
	if !plausible(Region{0, 1}, &e) || !plausible(Region{0, 1}, &w) {
		t.Error("X arrivals with X done should be plausible")
	}
	if !plausible(Region{1, 1}, nil) {
		t.Error("injection always plausible")
	}
}
