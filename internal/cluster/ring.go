// Package cluster implements the consistent-hash shard router that maps
// verify-cache keys to owner replicas. The verify cache's canonical
// dual-hash key (cdg.VerifyKey / cdg.DeltaKey) is the shard key: every
// replica builds the same Ring from the same member list and therefore
// agrees on which replica owns which keyspace slice, with no
// coordination at runtime.
//
// The ring is a bounded-load consistent hash: each replica contributes
// a deterministic set of virtual nodes, the 64-bit hash space is
// quantized into fixed slots, and slots are assigned to the nearest
// virtual node's replica subject to a per-replica capacity of
// ceil(loadFactor * slots / replicas). The cap turns the classic
// ketama tail risk (one replica owning an outsized arc) into a hard
// bound — no replica ever owns more than loadFactor times its fair
// share of the keyspace — while vnode placement keeps slot ownership
// stable under membership changes (adding one replica to n moves about
// 1/(n+1) of the slots).
//
// Construction is deterministic: it depends only on the sorted member
// names, the vnode count and the load factor. Two processes given the
// same membership always produce identical slot tables; Fingerprint
// exposes a hash of the table so peers can cheaply assert agreement.
package cluster

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

const (
	// slotBits quantizes the hash space: 2^slotBits slots, each covering
	// a 2^(64-slotBits) arc. 4096 slots keep the table small (8 KiB)
	// while holding quantization error under 0.03% of the keyspace.
	slotBits = 12
	// Slots is the number of keyspace slots a Ring assigns.
	Slots = 1 << slotBits

	// DefaultVirtualNodes is the per-replica vnode count. 128 vnodes per
	// replica keep the pre-cap ownership spread tight enough that the
	// bounded-load cap rarely has to intervene.
	DefaultVirtualNodes = 128

	// DefaultLoadFactor caps any replica's keyspace share at 1.25x the
	// fair share, the classic bounded-load setting: low enough to bound
	// hot-spotting, high enough that slot reassignment stays local.
	DefaultLoadFactor = 1.25
)

// Ring is an immutable consistent-hash slot table. Build one with New
// (or NewWithOptions); all methods are safe for concurrent use.
type Ring struct {
	replicas []string // sorted member names
	slots    []uint16 // slot index -> replicas index
	shares   []int    // replicas index -> owned slot count
	cap      int      // bounded-load slot cap per replica
}

// New builds a ring over the replica names with DefaultVirtualNodes and
// DefaultLoadFactor. Names are sorted internally, so member order does
// not matter; duplicate or empty names are errors.
func New(replicas []string) (*Ring, error) {
	return NewWithOptions(replicas, DefaultVirtualNodes, DefaultLoadFactor)
}

// NewWithOptions is New with explicit vnode count and load factor. The
// load factor must be at least 1 (a cap below the fair share cannot
// cover the keyspace).
func NewWithOptions(replicas []string, vnodes int, loadFactor float64) (*Ring, error) {
	if len(replicas) == 0 {
		return nil, errors.New("cluster: ring needs at least one replica")
	}
	if vnodes < 1 {
		return nil, fmt.Errorf("cluster: %d virtual nodes per replica, need at least 1", vnodes)
	}
	if loadFactor < 1 {
		return nil, fmt.Errorf("cluster: load factor %.2f below 1", loadFactor)
	}
	names := make([]string, len(replicas))
	copy(names, replicas)
	sort.Strings(names)
	for i, n := range names {
		if n == "" {
			return nil, errors.New("cluster: empty replica name")
		}
		if i > 0 && names[i-1] == n {
			return nil, fmt.Errorf("cluster: duplicate replica name %q", n)
		}
	}

	// Place the virtual nodes. The point hash chains the name hash with
	// the vnode index through splitmix64, so placement depends only on
	// (name, index) — deterministic across processes and Go versions.
	type vnode struct {
		point   uint64
		replica uint16
	}
	vs := make([]vnode, 0, len(names)*vnodes)
	for ri, name := range names {
		h := hashString(name)
		for v := 0; v < vnodes; v++ {
			vs = append(vs, vnode{point: mix64(h ^ mix64(uint64(v)+0x9e3779b97f4a7c15)), replica: uint16(ri)})
		}
	}
	sort.Slice(vs, func(i, j int) bool {
		if vs[i].point != vs[j].point {
			return vs[i].point < vs[j].point
		}
		return vs[i].replica < vs[j].replica
	})

	// Assign slots in slot order: each slot goes to the first successor
	// vnode whose replica is still under the bounded-load cap. With
	// cap*n >= Slots there is always such a replica, so the walk
	// terminates within one lap of the vnode list.
	r := &Ring{
		replicas: names,
		slots:    make([]uint16, Slots),
		shares:   make([]int, len(names)),
		cap:      int((loadFactor*Slots + float64(len(names)) - 1) / float64(len(names))),
	}
	if r.cap < Slots/len(names) {
		r.cap = (Slots + len(names) - 1) / len(names)
	}
	for s := 0; s < Slots; s++ {
		point := uint64(s) << (64 - slotBits)
		i := sort.Search(len(vs), func(i int) bool { return vs[i].point >= point })
		for probes := 0; ; probes++ {
			if probes > len(vs) {
				// Unreachable: cap*len(names) >= Slots guarantees an
				// under-cap replica exists on every walk.
				panic("cluster: bounded-load walk found no replica under cap")
			}
			v := vs[(i+probes)%len(vs)]
			if r.shares[v.replica] < r.cap {
				r.slots[s] = v.replica
				r.shares[v.replica]++
				break
			}
		}
	}
	return r, nil
}

// Owner returns the replica name owning a cache key.
func (r *Ring) Owner(key uint64) string {
	return r.replicas[r.slots[key>>(64-slotBits)]]
}

// Contains reports whether name is a ring member. A serving process
// whose name is not a member acts as a pure edge router: it owns no
// keys and answers everything via its peers (or local compute).
func (r *Ring) Contains(name string) bool {
	i := sort.SearchStrings(r.replicas, name)
	return i < len(r.replicas) && r.replicas[i] == name
}

// Replicas returns the sorted member names (a copy).
func (r *Ring) Replicas() []string {
	out := make([]string, len(r.replicas))
	copy(out, r.replicas)
	return out
}

// Size returns the member count.
func (r *Ring) Size() int { return len(r.replicas) }

// Shares returns each member's owned slot count, in Replicas() order.
// Every share is bounded by Cap.
func (r *Ring) Shares() []int {
	out := make([]int, len(r.shares))
	copy(out, r.shares)
	return out
}

// Cap returns the bounded-load slot cap: no replica owns more slots.
func (r *Ring) Cap() int { return r.cap }

// Fingerprint hashes the slot table. Two rings with equal fingerprints
// route every key identically; replicas can exchange fingerprints to
// assert membership agreement before serving.
func (r *Ring) Fingerprint() uint64 {
	h := uint64(0xcbf29ce484222325)
	for _, name := range r.replicas {
		h = mix64(h ^ hashString(name))
	}
	for _, s := range r.slots {
		h = mix64(h*0x100000001b3 + uint64(s))
	}
	return h
}

// String summarizes the ring for logs.
func (r *Ring) String() string {
	return fmt.Sprintf("ring{%s; %d slots, cap %d}", strings.Join(r.replicas, " "), Slots, r.cap)
}

// hashString is FNV-1a 64 diffused through splitmix64.
func hashString(s string) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 0x100000001b3
	}
	return mix64(h)
}

// mix64 is the splitmix64 finalizer, the same diffusion the verify
// cache key derivation uses.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
