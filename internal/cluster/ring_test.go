package cluster

import (
	"math/rand"
	"testing"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("empty membership accepted")
	}
	if _, err := New([]string{"a", ""}); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := New([]string{"a", "b", "a"}); err == nil {
		t.Error("duplicate name accepted")
	}
	if _, err := NewWithOptions([]string{"a"}, 0, 1.25); err == nil {
		t.Error("zero vnodes accepted")
	}
	if _, err := NewWithOptions([]string{"a"}, 16, 0.5); err == nil {
		t.Error("load factor below 1 accepted")
	}
}

// TestDeterministic pins the routing contract the cluster depends on:
// every replica builds the same table from the same membership, in any
// member order.
func TestDeterministic(t *testing.T) {
	a, err := New([]string{"r0", "r1", "r2", "r3"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New([]string{"r3", "r1", "r0", "r2"})
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("member order changed the table: %x vs %x", a.Fingerprint(), b.Fingerprint())
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 10000; i++ {
		k := rng.Uint64()
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("key %x owner disagrees: %s vs %s", k, a.Owner(k), b.Owner(k))
		}
	}
}

// TestBoundedLoad checks the capacity invariant: no replica owns more
// slots than the cap, and the cap covers the keyspace.
func TestBoundedLoad(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 7, 16} {
		names := make([]string, n)
		for i := range names {
			names[i] = string(rune('a' + i))
		}
		r, err := New(names)
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for i, s := range r.Shares() {
			total += s
			if s > r.Cap() {
				t.Errorf("n=%d: replica %d owns %d slots, cap %d", n, i, s, r.Cap())
			}
			if s == 0 {
				t.Errorf("n=%d: replica %d owns no slots", n, i)
			}
		}
		if total != Slots {
			t.Errorf("n=%d: shares sum to %d, want %d", n, total, Slots)
		}
	}
}

// TestRemapStability checks the consistent-hashing property: growing
// the membership from 4 to 5 moves roughly 1/5 of the slots, not all
// of them.
func TestRemapStability(t *testing.T) {
	four, err := New([]string{"r0", "r1", "r2", "r3"})
	if err != nil {
		t.Fatal(err)
	}
	five, err := New([]string{"r0", "r1", "r2", "r3", "r4"})
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for s := 0; s < Slots; s++ {
		key := uint64(s) << (64 - slotBits)
		if four.Owner(key) != five.Owner(key) {
			moved++
		}
	}
	frac := float64(moved) / Slots
	if frac < 0.05 || frac > 0.45 {
		t.Errorf("adding a 5th replica moved %.0f%% of slots, want roughly 20%%", frac*100)
	}
}

// TestEdgeRouter pins the non-member contract: a name outside the ring
// is never an owner, so a process under that name forwards everything.
func TestEdgeRouter(t *testing.T) {
	r, err := New([]string{"r0", "r1"})
	if err != nil {
		t.Fatal(err)
	}
	if r.Contains("edge") {
		t.Error("non-member reported as contained")
	}
	if !r.Contains("r0") || !r.Contains("r1") {
		t.Error("member reported as missing")
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		if r.Owner(rng.Uint64()) == "edge" {
			t.Fatal("non-member owns a key")
		}
	}
}

func TestSingleReplicaOwnsAll(t *testing.T) {
	r, err := New([]string{"solo"})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 1000; i++ {
		if got := r.Owner(rng.Uint64()); got != "solo" {
			t.Fatalf("Owner = %q, want solo", got)
		}
	}
}
