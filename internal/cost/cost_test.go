package cost

import (
	"strings"
	"testing"

	"ebda/internal/cdg"
	"ebda/internal/core"
	"ebda/internal/topology"
)

func TestEstimate2D(t *testing.T) {
	// XY: 1 VC per dimension, default sizing (64-bit flits, 4-deep).
	r := Estimate([]int{1, 1}, Params{})
	if r.Ports != 5 {
		t.Errorf("ports = %d", r.Ports)
	}
	// 4 directional VCs + 1 local = 5 VCs x 4 flits x 64 bits.
	if r.BufferBits != 5*4*64 {
		t.Errorf("buffer bits = %d", r.BufferBits)
	}
	if r.CrossbarPoints != 5*5*64 {
		t.Errorf("crosspoints = %d", r.CrossbarPoints)
	}
	if r.VCAllocArbiters != 25 {
		t.Errorf("arbiters = %d", r.VCAllocArbiters)
	}
}

func TestEstimateScalesWithVCs(t *testing.T) {
	xy := Estimate([]int{1, 1}, Params{})
	dyxy := Estimate([]int{1, 2}, Params{})
	duato := Estimate([]int{2, 2}, Params{})
	if !(xy.BufferBits < dyxy.BufferBits && dyxy.BufferBits < duato.BufferBits) {
		t.Errorf("buffer ordering wrong: %d %d %d",
			xy.BufferBits, dyxy.BufferBits, duato.BufferBits)
	}
	fig9b := Estimate([]int{2, 2, 4}, Params{})
	// 2*(2+2+4) + 1 = 17 VCs.
	if fig9b.BufferBits != 17*4*64 {
		t.Errorf("3D buffer bits = %d", fig9b.BufferBits)
	}
}

func TestComparisonTable(t *testing.T) {
	net := topology.NewMesh(5, 5)
	mk := func(name, spec string, vcs []int) Comparison {
		chain := core.MustParseChain(spec)
		ad, err := cdg.Adaptiveness(net, cdg.VCConfig(vcs), chain.AllTurns())
		if err != nil {
			t.Fatal(err)
		}
		return Comparison{
			Name: name, VCs: vcs,
			Router:       Estimate(vcs, Params{}),
			Adaptiveness: ad.Degree(),
		}
	}
	rows := []Comparison{
		mk("xy", "PA[X+] -> PB[X-] -> PC[Y+] -> PD[Y-]", []int{1, 1}),
		mk("west-first", "PA[X-] -> PB[X+ Y+ Y-]", []int{1, 1}),
		mk("dyxy", "PA[X1+ Y1+ Y1-] -> PB[X1- Y2+ Y2-]", []int{1, 2}),
	}
	// The claim worth checking: West-First buys ~6x XY's adaptiveness at
	// identical router cost, so its efficiency dominates; DyXY reaches
	// 1.0 adaptiveness with only one extra VC in one dimension.
	if rows[1].Router.BufferBits != rows[0].Router.BufferBits {
		t.Error("west-first and XY must cost the same")
	}
	if rows[1].Efficiency() <= rows[0].Efficiency() {
		t.Error("west-first efficiency should dominate XY")
	}
	if rows[2].Adaptiveness != 1 {
		t.Errorf("dyxy adaptiveness = %f", rows[2].Adaptiveness)
	}
	out := Table(rows)
	for _, want := range []string{"design", "xy", "dyxy", "1,2"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

func TestEfficiencyZeroGuard(t *testing.T) {
	if (Comparison{}).Efficiency() != 0 {
		t.Error("zero-cost comparison should have zero efficiency")
	}
}
