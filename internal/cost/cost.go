// Package cost estimates router implementation cost for a design, in the
// spirit of the paper's Section 5.4 discussion and its remark that
// relaxing wormhole restrictions "costs more resources" (the [30]
// comparison): input buffering dominates NoC router area, so designs are
// compared by buffer bits, crossbar size, virtual-channel allocator
// complexity, and the routing-unit comparator count synthesized by
// internal/synth.
//
// The model is deliberately first-order (an ORION-style estimate, not a
// layout tool): it ranks designs and exposes trade-offs such as
// adaptiveness per buffer bit; absolute numbers are illustrative.
package cost

import (
	"fmt"
	"strings"
)

// Params are the technology-independent sizing knobs.
type Params struct {
	// FlitBits is the flit width (default 64).
	FlitBits int
	// BufferDepth is the per-VC buffer depth in flits (default 4).
	BufferDepth int
}

func (p *Params) setDefaults() {
	if p.FlitBits == 0 {
		p.FlitBits = 64
	}
	if p.BufferDepth == 0 {
		p.BufferDepth = 4
	}
}

// Router describes one router's resource profile.
type Router struct {
	// Ports is the number of directional ports (2 per dimension) plus
	// the local injection/ejection port.
	Ports int
	// VCsPerPort is the total virtual channels summed over directional
	// ports (the local port is counted with one VC).
	VCsPerPort []int
	// BufferBits is the total input buffering.
	BufferBits int
	// CrossbarPoints is the crosspoint count (inputs x outputs at flit
	// width).
	CrossbarPoints int
	// VCAllocArbiters counts the VC-allocator arbitration inputs: each
	// output VC arbitrates among all input VCs.
	VCAllocArbiters int
	// RoutingComparators is the synthesized routing-unit comparator
	// count when available (set by the caller from internal/synth), or
	// zero.
	RoutingComparators int
}

// Estimate sizes a router for an n-dimensional design with the given
// per-dimension VC counts.
func Estimate(vcsPerDim []int, p Params) Router {
	p.setDefaults()
	dims := len(vcsPerDim)
	r := Router{Ports: 2*dims + 1}
	totalVCs := 1 // local port
	for _, v := range vcsPerDim {
		r.VCsPerPort = append(r.VCsPerPort, v, v) // + and - ports
		totalVCs += 2 * v
	}
	r.VCsPerPort = append(r.VCsPerPort, 1)
	r.BufferBits = totalVCs * p.BufferDepth * p.FlitBits
	r.CrossbarPoints = r.Ports * r.Ports * p.FlitBits
	r.VCAllocArbiters = totalVCs * totalVCs
	return r
}

// String renders the profile.
func (r Router) String() string {
	return fmt.Sprintf("%d ports, %d buffer bits, %d crosspoints, %d VC-alloc arbiter inputs",
		r.Ports, r.BufferBits, r.CrossbarPoints, r.VCAllocArbiters)
}

// Comparison is one row of a design cost table.
type Comparison struct {
	Name         string
	VCs          []int
	Router       Router
	Adaptiveness float64
}

// Efficiency returns adaptiveness per kilobit of buffering — the
// figure of merit for "how much path diversity a design buys per unit of
// its dominant resource".
func (c Comparison) Efficiency() float64 {
	if c.Router.BufferBits == 0 {
		return 0
	}
	return c.Adaptiveness / (float64(c.Router.BufferBits) / 1024)
}

// Table renders comparisons aligned.
func Table(rows []Comparison) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %-10s %12s %12s %14s %12s\n",
		"design", "VCs", "buffer bits", "crosspoints", "adaptiveness", "adapt/kbit")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s %-10s %12d %12d %14.4f %12.4f\n",
			r.Name, vcString(r.VCs), r.Router.BufferBits, r.Router.CrossbarPoints,
			r.Adaptiveness, r.Efficiency())
	}
	return b.String()
}

func vcString(vcs []int) string {
	parts := make([]string, len(vcs))
	for i, v := range vcs {
		parts[i] = fmt.Sprintf("%d", v)
	}
	return strings.Join(parts, ",")
}
