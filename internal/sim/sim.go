// Package sim is a flit-level wormhole network simulator with
// credit-based virtual-channel flow control — the switching substrate the
// paper assumes (Assumption 1). Routers implement the classic RC/VA/SA/ST
// stages: route computation for head flits, virtual-channel allocation
// against downstream buffer state, per-output switch arbitration
// (round-robin), and single-flit-per-link traversal.
//
// The simulator deliberately honours the paper's relaxed wormhole
// assumptions: buffers may hold flits of multiple packets (a new packet's
// head may sit behind the previous packet's tail in the same VC FIFO), and
// packets have arbitrary length. A deadlock watchdog reports global lack
// of progress, which lets the test suite demonstrate that EbDa-derived
// designs never deadlock while cyclic turn sets do.
package sim

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"ebda/internal/channel"
	"ebda/internal/routing"
	"ebda/internal/stats"
	"ebda/internal/topology"
	"ebda/internal/traffic"
)

// Switching selects the packet switching technique (the paper's
// Assumption 1 covers all three: the deadlock-freedom proof for wormhole
// carries over to VCT and SAF).
type Switching int

// Switching techniques.
const (
	// Wormhole forwards flits as soon as the next buffer has any space
	// (the default).
	Wormhole Switching = iota
	// VirtualCutThrough forwards the head only when the downstream
	// buffer can hold the entire packet.
	VirtualCutThrough
	// StoreAndForward additionally waits until the whole packet has
	// arrived at the current router before requesting the next hop.
	StoreAndForward
)

// String names the technique.
func (s Switching) String() string {
	switch s {
	case VirtualCutThrough:
		return "vct"
	case StoreAndForward:
		return "saf"
	default:
		return "wormhole"
	}
}

// Selection chooses among the routing algorithm's candidate output
// channels during VC allocation.
type Selection int

// Selection policies.
const (
	// SelectRandom picks uniformly among allocatable candidates (the
	// default).
	SelectRandom Selection = iota
	// SelectFirst takes the first allocatable candidate in the order the
	// routing algorithm returned them.
	SelectFirst
	// SelectCredits picks the allocatable candidate with the most
	// downstream credits (congestion-aware, as in DyXY).
	SelectCredits
)

// Config parameterises one simulation run.
type Config struct {
	// Net is the topology; Alg the routing algorithm under test.
	Net *topology.Network
	Alg routing.Algorithm
	// VCs is the per-dimension virtual channel count (default all 1).
	VCs []int
	// BufferDepth is the per-VC input buffer capacity in flits
	// (default 4).
	BufferDepth int
	// PacketLen is the packet length in flits (default 5).
	PacketLen int
	// InjectionRate is the offered load in flits per node per cycle.
	InjectionRate float64
	// Pattern picks packet destinations (default uniform random).
	Pattern traffic.Pattern
	// Seed makes runs reproducible.
	Seed int64
	// Warmup, Measure and Drain are the phase lengths in cycles
	// (defaults 1000, 4000, 2000).
	Warmup, Measure, Drain int
	// DeadlockThreshold aborts the run after this many cycles without
	// any flit movement while flits remain in flight (default 1000).
	DeadlockThreshold int
	// Selection is the VC selection policy (default SelectRandom).
	Selection Selection
	// LinkLatency is the cycles a flit spends on a link (default 1).
	LinkLatency int
	// Switching selects wormhole (default), virtual cut-through or
	// store-and-forward. VCT and SAF raise BufferDepth to the longest
	// packet if needed.
	Switching Switching
	// LongPacketLen and LongFraction mix in long packets (Assumption 2:
	// arbitrary lengths): each generated packet is LongPacketLen flits
	// with probability LongFraction, PacketLen otherwise.
	LongPacketLen int
	LongFraction  float64
	// RouterLatency is the router pipeline depth in cycles: a flit
	// becomes eligible for switch traversal this many cycles after it
	// arrives (default 1 = single-cycle routers).
	RouterLatency int
	// Trace, when non-empty, replaces the stochastic traffic generator:
	// each entry injects one packet at its cycle. Entries must be sorted
	// by cycle. InjectionRate and Pattern are ignored.
	Trace []traffic.TraceEntry
}

func (c *Config) setDefaults() {
	if c.BufferDepth == 0 {
		c.BufferDepth = 4
	}
	if c.PacketLen == 0 {
		c.PacketLen = 5
	}
	if c.Pattern == nil {
		c.Pattern = traffic.Uniform{}
	}
	if c.Warmup == 0 {
		c.Warmup = 1000
	}
	if c.Measure == 0 {
		c.Measure = 4000
	}
	if c.Drain == 0 {
		c.Drain = 2000
	}
	if c.DeadlockThreshold == 0 {
		c.DeadlockThreshold = 1000
	}
	if c.LinkLatency == 0 {
		c.LinkLatency = 1
	}
	if c.RouterLatency == 0 {
		c.RouterLatency = 1
	}
	if c.Switching != Wormhole {
		longest := c.PacketLen
		if c.LongPacketLen > longest {
			longest = c.LongPacketLen
		}
		if c.BufferDepth < longest {
			c.BufferDepth = longest
		}
	}
	if c.VCs == nil {
		c.VCs = make([]int, c.Net.Dims())
		for i := range c.VCs {
			c.VCs[i] = 1
		}
	}
}

// Result summarises a run.
type Result struct {
	// Cycles actually simulated.
	Cycles int
	// InjectedPackets / DeliveredPackets over the whole run.
	InjectedPackets, DeliveredPackets int
	// MeasuredPackets is the number of packets generated during the
	// measurement window and delivered by the end of the run.
	MeasuredPackets int
	// AvgLatency is the mean packet latency (generation to tail
	// ejection) over measured packets, in cycles.
	AvgLatency float64
	// P50Latency, P95Latency and P99Latency are latency percentiles over
	// measured packets; MaxLatency is the worst observed.
	P50Latency, P95Latency, P99Latency, MaxLatency int
	// Throughput is the accepted traffic during the measurement window,
	// in flits per node per cycle.
	Throughput float64
	// LatencyStd is the standard deviation of measured packet latencies.
	LatencyStd float64
	// Fairness is Jain's fairness index over per-source delivered
	// packets in the measurement window: 1 = perfectly fair, 1/N = one
	// source monopolises the network. Zero when nothing was measured.
	Fairness float64
	// LinkLoad summarises how evenly measured traffic spread over the
	// physical links (max/mean ratio and Gini coefficient).
	LinkLoad stats.LoadImbalance
	// Deadlocked reports that the watchdog fired; StuckFlits counts the
	// flits in flight at that moment, and DeadlockTrace holds a
	// human-readable wait cycle extracted from the wedged network.
	Deadlocked    bool
	StuckFlits    int
	DeadlockTrace string
}

// String renders the result on one line.
func (r Result) String() string {
	if r.Deadlocked {
		return fmt.Sprintf("DEADLOCK after %d cycles (%d flits stuck)", r.Cycles, r.StuckFlits)
	}
	return fmt.Sprintf("latency %.1f cycles (p99 %d), throughput %.4f flits/node/cycle, %d/%d packets delivered",
		r.AvgLatency, r.P99Latency, r.Throughput, r.DeliveredPackets, r.InjectedPackets)
}

type packetInfo struct {
	id       int
	src, dst topology.NodeID
	gen      int
	length   int
	measured bool
}

type flit struct {
	pkt        *packetInfo
	head, tail bool
	// ready is the first cycle the flit may traverse the switch (models
	// the router pipeline depth).
	ready int
}

// inVC is one input virtual-channel FIFO plus its route assignment for the
// packet currently at its front.
type inVC struct {
	buf      []flit
	assigned bool
	outPort  int16
	outVC    int16
}

// outVC tracks one downstream virtual channel: whether a packet currently
// holds it and how many buffer slots remain. The holder's input location
// (on the same router) is recorded for deadlock diagnosis.
type outVC struct {
	held    bool
	credits int
	// holderPort/holderVC locate the input VC whose packet holds this
	// output; holderSrc marks the source queue instead.
	holderPort int16
	holderVC   int16
	holderSrc  bool
}

// router is one node's switching state.
type router struct {
	id       topology.NodeID
	in       [][]inVC // [port][vc]
	out      [][]outVC
	hasOut   []bool
	neighbor []topology.NodeID
	// upstream[p] is the router feeding input port p, when hasUp[p].
	// Recorded explicitly (rather than looked up via the reverse link)
	// because credit return is control signaling tied to the forward
	// link: with unidirectional link faults the reverse data link may
	// not exist even though the forward one does.
	upstream []topology.NodeID
	hasUp    []bool
	srcQ     []flit
	src      inVC // assignment state for the source queue front
	saPtr    []int
}

// Simulator runs one configuration.
type Simulator struct {
	cfg     Config
	net     *topology.Network
	rng     *rand.Rand
	routers []*router
	ports   int // directional ports per router (2 * dims)

	cycle        int
	nextPacketID int
	inFlight     int
	lastProgress int

	injected, delivered int
	injectedFlits       int
	deliveredFlits      int
	latencies           []int
	measuredFlits       int
	traceIdx            int
	deliveredBySrc      []int
	// linkLoad counts measured-window flit traversals per (router,
	// output port); pending holds in-flight link traversals when
	// LinkLatency > 1.
	linkLoad []int
	pending  []arrival
}

// Replicated aggregates independent runs of the same configuration under
// different seeds.
type Replicated struct {
	Runs int
	// Latency and Throughput are streams over per-run means; use Mean()
	// and Std() for confidence reporting.
	Latency, Throughput stats.Stream
	// Deadlocks counts runs the watchdog aborted.
	Deadlocks int
}

// String renders mean +/- std for both metrics.
func (r Replicated) String() string {
	if r.Deadlocks > 0 {
		return fmt.Sprintf("%d/%d runs deadlocked", r.Deadlocks, r.Runs)
	}
	return fmt.Sprintf("latency %.1f±%.1f cycles, throughput %.4f±%.4f flits/node/cycle (%d runs)",
		r.Latency.Mean(), r.Latency.Std(), r.Throughput.Mean(), r.Throughput.Std(), r.Runs)
}

// RunSeeds executes the configuration under seeds cfg.Seed .. cfg.Seed+n-1
// and aggregates the results, running the seeds concurrently on every
// available core.
func RunSeeds(cfg Config, n int) Replicated { return RunSeedsJobs(cfg, n, 0) }

// RunSeedsJobs is RunSeeds over a bounded worker pool (jobs <= 0 means all
// cores). Each seed is an independent simulation with its own RNG; results
// are collected by seed index and folded into the streams in seed order, so
// the aggregate is bit-identical for every jobs value (Welford streams are
// order-sensitive). The routing algorithm in cfg is shared across workers
// and must be safe for concurrent Candidates calls — every algorithm in
// this repository is.
func RunSeedsJobs(cfg Config, n, jobs int) Replicated {
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if jobs > n {
		jobs = n
	}
	results := make([]Result, n)
	if jobs <= 1 {
		sp := phaseSeeds.Start()
		for i := 0; i < n; i++ {
			c := cfg
			c.Seed = cfg.Seed + int64(i)
			results[i] = New(c).Run()
		}
		sp.End()
	} else {
		var wg sync.WaitGroup
		wg.Add(jobs)
		for w := 0; w < jobs; w++ {
			go func(w int) {
				defer wg.Done()
				sp := phaseSeeds.StartWorker(w)
				for i := w; i < n; i += jobs {
					c := cfg
					c.Seed = cfg.Seed + int64(i)
					results[i] = New(c).Run()
				}
				sp.End()
			}(w)
		}
		wg.Wait()
	}
	rep := Replicated{Runs: n}
	for _, res := range results {
		if res.Deadlocked {
			rep.Deadlocks++
			continue
		}
		rep.Latency.Add(res.AvgLatency)
		rep.Throughput.Add(res.Throughput)
	}
	return rep
}

// New builds a simulator for the configuration.
func New(cfg Config) *Simulator {
	cfg.setDefaults()
	s := &Simulator{
		cfg:   cfg,
		net:   cfg.Net,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		ports: 2 * cfg.Net.Dims(),
	}
	s.routers = make([]*router, cfg.Net.Nodes())
	for id := range s.routers {
		r := &router{id: topology.NodeID(id)}
		r.in = make([][]inVC, s.ports)
		r.out = make([][]outVC, s.ports)
		r.hasOut = make([]bool, s.ports)
		r.neighbor = make([]topology.NodeID, s.ports)
		r.upstream = make([]topology.NodeID, s.ports)
		r.hasUp = make([]bool, s.ports)
		r.saPtr = make([]int, s.ports+1) // +1 for the ejection port
		for p := 0; p < s.ports; p++ {
			d, sign := portDir(p)
			vcs := cfg.VCs[d]
			r.in[p] = make([]inVC, vcs)
			r.out[p] = make([]outVC, vcs)
			for v := range r.out[p] {
				r.out[p][v].credits = cfg.BufferDepth
			}
			if to, _, ok := cfg.Net.Neighbor(topology.NodeID(id), d, sign); ok {
				r.hasOut[p] = true
				r.neighbor[p] = to
			}
		}
		s.routers[id] = r
	}
	s.linkLoad = make([]int, len(s.routers)*s.ports)
	s.deliveredBySrc = make([]int, len(s.routers))
	// Wire upstream feeders from forward links: the input port p of the
	// downstream router is fed by exactly the router whose output port p
	// points at it.
	for _, r := range s.routers {
		for p := 0; p < s.ports; p++ {
			if !r.hasOut[p] {
				continue
			}
			down := s.routers[r.neighbor[p]]
			down.upstream[p] = r.id
			down.hasUp[p] = true
		}
	}
	return s
}

// portDir maps a directional port index to (dimension, sign): even ports
// are positive, odd negative.
func portDir(p int) (channel.Dim, channel.Sign) {
	d := channel.Dim(p / 2)
	if p%2 == 0 {
		return d, channel.Plus
	}
	return d, channel.Minus
}

// dirPort is the inverse of portDir.
func dirPort(d channel.Dim, s channel.Sign) int {
	p := 2 * int(d)
	if s == channel.Minus {
		p++
	}
	return p
}

// ejectPort is the pseudo output port index for local delivery.
func (s *Simulator) ejectPort() int { return s.ports }

// LinkLoads returns, after Run, the measured-window flit counts of every
// physical link in Links() order (for heatmaps and load analysis).
func (s *Simulator) LinkLoads() []int {
	var out []int
	for id, r := range s.routers {
		for op := 0; op < s.ports; op++ {
			if r.hasOut[op] {
				out = append(out, s.linkLoad[id*s.ports+op])
			}
		}
	}
	return out
}

// NodeLoad returns, after Run, the total measured flit traversals leaving
// each node (summed over its output links) — a per-node congestion view.
func (s *Simulator) NodeLoad() []int {
	out := make([]int, len(s.routers))
	for id := range s.routers {
		for op := 0; op < s.ports; op++ {
			out[id] += s.linkLoad[id*s.ports+op]
		}
	}
	return out
}

// Run executes the configured warmup/measure/drain phases and returns the
// result. The watchdog may end the run early on deadlock.
func (s *Simulator) Run() Result {
	sp := phaseRun.Start()
	res := s.run()
	s.recordObs(res)
	sp.End()
	return res
}

// run is the cycle loop behind Run, free of observability bookkeeping.
func (s *Simulator) run() Result {
	total := s.cfg.Warmup + s.cfg.Measure + s.cfg.Drain
	for s.cycle = 0; s.cycle < total; s.cycle++ {
		if s.cycle < s.cfg.Warmup+s.cfg.Measure {
			s.inject()
		}
		s.allocate()
		moved := s.traverse()
		if moved {
			s.lastProgress = s.cycle
		}
		if s.inFlight > 0 && s.cycle-s.lastProgress > s.cfg.DeadlockThreshold {
			res := s.result(true)
			res.DeadlockTrace = s.diagnose()
			return res
		}
	}
	return s.result(false)
}

func (s *Simulator) result(deadlocked bool) Result {
	res := Result{
		Cycles:           s.cycle,
		InjectedPackets:  s.injected,
		DeliveredPackets: s.delivered,
		MeasuredPackets:  len(s.latencies),
		Deadlocked:       deadlocked,
		StuckFlits:       s.inFlight,
		Throughput:       float64(s.measuredFlits) / float64(s.net.Nodes()) / float64(s.cfg.Measure),
	}
	if len(s.latencies) > 0 {
		var stream stats.Stream
		for _, l := range s.latencies {
			stream.Add(float64(l))
		}
		res.AvgLatency = stream.Mean()
		res.LatencyStd = stream.Std()
		sorted := append([]int(nil), s.latencies...)
		sort.Ints(sorted)
		res.P50Latency = sorted[len(sorted)*50/100]
		res.P95Latency = sorted[len(sorted)*95/100]
		res.P99Latency = sorted[len(sorted)*99/100]
		res.MaxLatency = sorted[len(sorted)-1]
	}
	// Only count ports with physical links in the imbalance metric.
	var loads []int
	for id, r := range s.routers {
		for op := 0; op < s.ports; op++ {
			if r.hasOut[op] {
				loads = append(loads, s.linkLoad[id*s.ports+op])
			}
		}
	}
	res.LinkLoad = stats.Imbalance(loads)
	// Jain's fairness index over per-source measured deliveries.
	var sum, sumSq float64
	for _, d := range s.deliveredBySrc {
		sum += float64(d)
		sumSq += float64(d) * float64(d)
	}
	if sumSq > 0 {
		res.Fairness = sum * sum / (float64(len(s.deliveredBySrc)) * sumSq)
	}
	return res
}

// meanPacketLen returns the expected packet length of the configured mix.
func (s *Simulator) meanPacketLen() float64 {
	if s.cfg.LongPacketLen <= 0 || s.cfg.LongFraction <= 0 {
		return float64(s.cfg.PacketLen)
	}
	return float64(s.cfg.PacketLen)*(1-s.cfg.LongFraction) +
		float64(s.cfg.LongPacketLen)*s.cfg.LongFraction
}

// pickLen draws a packet length from the configured mix.
func (s *Simulator) pickLen() int {
	if s.cfg.LongPacketLen > 0 && s.rng.Float64() < s.cfg.LongFraction {
		return s.cfg.LongPacketLen
	}
	return s.cfg.PacketLen
}

// inject generates new packets — from the trace when one is configured,
// otherwise per the Bernoulli process — and appends their flits to source
// queues.
func (s *Simulator) inject() {
	if len(s.cfg.Trace) > 0 {
		for s.traceIdx < len(s.cfg.Trace) && s.cfg.Trace[s.traceIdx].Cycle <= s.cycle {
			e := s.cfg.Trace[s.traceIdx]
			s.traceIdx++
			if e.Src == e.Dst || int(e.Src) >= s.net.Nodes() || int(e.Dst) >= s.net.Nodes() {
				continue
			}
			length := e.Len
			if length <= 0 {
				length = s.cfg.PacketLen
			}
			s.enqueuePacket(e.Src, e.Dst, length)
		}
		return
	}
	pktProb := s.cfg.InjectionRate / s.meanPacketLen()
	for id := range s.routers {
		if s.rng.Float64() >= pktProb {
			continue
		}
		src := topology.NodeID(id)
		dst := s.cfg.Pattern.Dest(s.net, src, s.rng)
		if dst == src {
			continue
		}
		s.enqueuePacket(src, dst, s.pickLen())
	}
}

// enqueuePacket appends one packet's flits to the source queue.
func (s *Simulator) enqueuePacket(src, dst topology.NodeID, length int) {
	s.nextPacketID++
	pkt := &packetInfo{
		id: s.nextPacketID, src: src, dst: dst, gen: s.cycle,
		length:   length,
		measured: s.cycle >= s.cfg.Warmup && s.cycle < s.cfg.Warmup+s.cfg.Measure,
	}
	r := s.routers[src]
	for i := 0; i < length; i++ {
		r.srcQ = append(r.srcQ, flit{
			pkt:  pkt,
			head: i == 0,
			tail: i == length-1,
		})
	}
	s.injected++
	s.injectedFlits += length
	s.inFlight += length
}

// allocate performs RC + VC allocation for every input VC (and source
// queue) whose front flit is an unassigned head.
func (s *Simulator) allocate() {
	for _, r := range s.routers {
		for p := 0; p < s.ports; p++ {
			d, sign := portDir(p)
			for v := range r.in[p] {
				ivc := &r.in[p][v]
				if ivc.assigned || len(ivc.buf) == 0 || !ivc.buf[0].head {
					continue
				}
				in := channel.NewVC(d, sign, v+1)
				s.tryAllocate(r, ivc, &in, ivc.buf[0].pkt, wholePacketBuffered(ivc.buf), p, v, false)
			}
		}
		if !r.src.assigned && len(r.srcQ) > 0 && r.srcQ[0].head {
			s.tryAllocate(r, &r.src, nil, r.srcQ[0].pkt, true, 0, 0, true)
		}
	}
}

// tryAllocate runs the routing function and claims a free downstream VC
// according to the selection policy. inPort/inVCIdx/fromSrc identify the
// requesting input for holder tracking. pkt is the packet being routed and
// wholePresent reports whether all its flits are buffered locally (always
// true at injection); VCT and SAF gate allocation on packet length.
func (s *Simulator) tryAllocate(r *router, ivc *inVC, in *channel.Class, pkt *packetInfo, wholePresent bool, inPort, inVCIdx int, fromSrc bool) {
	dst := pkt.dst
	if dst == r.id {
		ivc.assigned = true
		ivc.outPort = int16(s.ejectPort())
		return
	}
	minCredits := 1
	switch s.cfg.Switching {
	case VirtualCutThrough:
		minCredits = pkt.length
	case StoreAndForward:
		minCredits = pkt.length
		if !wholePresent {
			return
		}
	}
	cands := s.cfg.Alg.Candidates(s.net, r.id, in, dst)
	type option struct {
		port, vc, credits int
	}
	var opts []option
	for _, c := range cands {
		p := dirPort(c.Dim, c.Sign)
		if p >= s.ports || !r.hasOut[p] || c.VC-1 >= len(r.out[p]) {
			continue
		}
		ovc := &r.out[p][c.VC-1]
		if ovc.held || ovc.credits < minCredits {
			continue
		}
		opts = append(opts, option{port: p, vc: c.VC - 1, credits: ovc.credits})
	}
	if len(opts) == 0 {
		return
	}
	var pick option
	switch s.cfg.Selection {
	case SelectRandom:
		pick = opts[s.rng.Intn(len(opts))]
	case SelectCredits:
		pick = opts[0]
		for _, o := range opts[1:] {
			if o.credits > pick.credits {
				pick = o
			}
		}
	default:
		pick = opts[0]
	}
	ovc := &r.out[pick.port][pick.vc]
	ovc.held = true
	ovc.holderPort = int16(inPort)
	ovc.holderVC = int16(inVCIdx)
	ovc.holderSrc = fromSrc
	ivc.assigned = true
	ivc.outPort = int16(pick.port)
	ivc.outVC = int16(pick.vc)
}

// wholePacketBuffered reports whether the front packet's tail flit is in
// the buffer (flits of a packet are contiguous in FIFO order).
func wholePacketBuffered(buf []flit) bool {
	if len(buf) == 0 {
		return false
	}
	pkt := buf[0].pkt
	for _, f := range buf {
		if f.pkt != pkt {
			return false
		}
		if f.tail {
			return true
		}
	}
	return false
}

// arrival is a staged link traversal, applied once its delivery cycle is
// reached (LinkLatency cycles after the send).
type arrival struct {
	to   topology.NodeID
	port int
	vc   int
	at   int
	f    flit
}

// traverse performs switch allocation and link/ejection traversal; it
// returns whether any flit moved.
func (s *Simulator) traverse() bool {
	moved := false
	measuring := s.cycle >= s.cfg.Warmup && s.cycle < s.cfg.Warmup+s.cfg.Measure
	for _, r := range s.routers {
		// Each output port (plus ejection) accepts one flit per cycle,
		// arbitrated round-robin over requesting input VCs.
		for op := 0; op <= s.ports; op++ {
			reqs := s.requesters(r, op)
			if len(reqs) == 0 {
				continue
			}
			idx := r.saPtr[op] % len(reqs)
			winner := reqs[idx]
			r.saPtr[op] = idx + 1
			f, fromSrc := s.popFront(r, winner)
			moved = true
			if op == s.ejectPort() {
				s.deliver(f)
			} else {
				ovc := &r.out[op][winner.vc]
				ovc.credits--
				if f.tail {
					ovc.held = false
				}
				if measuring {
					s.linkLoad[int(r.id)*s.ports+op]++
				}
				s.pending = append(s.pending, arrival{
					to: r.neighbor[op], port: op, vc: winner.vc,
					at: s.cycle + s.cfg.LinkLatency - 1, f: f,
				})
			}
			// Return a credit upstream for the freed buffer slot.
			if !fromSrc {
				s.creditUpstream(r, winner.port, winner.vcIn)
			}
		}
	}
	// Deliver link traversals that complete this cycle; the flit then
	// spends RouterLatency cycles in the downstream pipeline before it
	// may traverse that switch.
	kept := s.pending[:0]
	for _, a := range s.pending {
		if a.at <= s.cycle {
			a.f.ready = s.cycle + s.cfg.RouterLatency
			s.routers[a.to].in[a.port][a.vc].buf = append(s.routers[a.to].in[a.port][a.vc].buf, a.f)
		} else {
			kept = append(kept, a)
		}
	}
	s.pending = kept
	return moved
}

// requester identifies one input VC (or the source queue) ready to send
// through an output port.
type requester struct {
	src  bool
	port int // input port (when !src)
	vcIn int // input VC (when !src)
	vc   int // allocated output VC (meaningless for ejection)
}

// requesters collects the ready inputs for an output port.
func (s *Simulator) requesters(r *router, op int) []requester {
	var out []requester
	eject := op == s.ejectPort()
	for p := 0; p < s.ports; p++ {
		for v := range r.in[p] {
			ivc := &r.in[p][v]
			if !ivc.assigned || int(ivc.outPort) != op || len(ivc.buf) == 0 {
				continue
			}
			if ivc.buf[0].ready > s.cycle {
				continue // still in the router pipeline
			}
			if !eject && r.out[op][ivc.outVC].credits <= 0 {
				continue
			}
			out = append(out, requester{port: p, vcIn: v, vc: int(ivc.outVC)})
		}
	}
	if r.src.assigned && int(r.src.outPort) == op && len(r.srcQ) > 0 {
		if eject || r.out[op][r.src.outVC].credits > 0 {
			out = append(out, requester{src: true, vc: int(r.src.outVC)})
		}
	}
	return out
}

// popFront removes the front flit of the winning input and resets its
// assignment on tail.
func (s *Simulator) popFront(r *router, w requester) (flit, bool) {
	if w.src {
		f := r.srcQ[0]
		r.srcQ = r.srcQ[1:]
		if f.tail {
			r.src.assigned = false
		}
		return f, true
	}
	ivc := &r.in[w.port][w.vcIn]
	f := ivc.buf[0]
	ivc.buf = ivc.buf[1:]
	if f.tail {
		ivc.assigned = false
	}
	return f, false
}

// creditUpstream returns one credit to the upstream router's output VC
// feeding the given input.
func (s *Simulator) creditUpstream(r *router, port, vc int) {
	if !r.hasUp[port] {
		return
	}
	s.routers[r.upstream[port]].out[port][vc].credits++
}

// deliver consumes an ejected flit and records statistics on tails.
func (s *Simulator) deliver(f flit) {
	s.inFlight--
	s.deliveredFlits++
	if f.pkt.measured {
		s.measuredFlits++
	}
	if !f.tail {
		return
	}
	s.delivered++
	if f.pkt.measured {
		s.latencies = append(s.latencies, s.cycle-f.pkt.gen)
		s.deliveredBySrc[f.pkt.src]++
	}
}
