package sim

import (
	"testing"

	"ebda/internal/core"
	"ebda/internal/duato"
	"ebda/internal/routing"
	"ebda/internal/topology"
	"ebda/internal/traffic"
)

// The paper's Assumption 1: SAF and VCT are special cases of wormhole, so
// an EbDa design that is deadlock-free under wormhole is deadlock-free
// under all three. Assumption 2: packets may have arbitrary lengths.

func switchingConfig(sw Switching, alg routing.Algorithm, vcs []int, rate float64) Config {
	return Config{
		Net: topology.NewMesh(4, 4), Alg: alg, VCs: vcs,
		InjectionRate: rate, Seed: 5, Switching: sw,
		Warmup: 500, Measure: 2000, Drain: 2500,
	}
}

func TestAllSwitchingModesDeliver(t *testing.T) {
	chain := core.MustParseChain("PA[X1+ Y1+ Y1-] -> PB[X1- Y2+ Y2-]")
	alg := routing.NewFromChain("dyxy", chain, 2)
	for _, sw := range []Switching{Wormhole, VirtualCutThrough, StoreAndForward} {
		res := New(switchingConfig(sw, alg, alg.VCs(), 0.05)).Run()
		if res.Deadlocked {
			t.Errorf("%s: %s", sw, res)
			continue
		}
		if res.DeliveredPackets != res.InjectedPackets {
			t.Errorf("%s: delivered %d/%d", sw, res.DeliveredPackets, res.InjectedPackets)
		}
	}
}

func TestSwitchingLatencyOrdering(t *testing.T) {
	// At low load: wormhole and VCT pipeline flits (latency ~ hops +
	// packetLen), SAF serialises per hop (~ hops * packetLen). SAF must
	// be clearly slower; VCT close to wormhole.
	alg := routing.NewXY()
	lat := map[Switching]float64{}
	for _, sw := range []Switching{Wormhole, VirtualCutThrough, StoreAndForward} {
		res := New(switchingConfig(sw, alg, nil, 0.02)).Run()
		if res.Deadlocked {
			t.Fatalf("%s deadlocked", sw)
		}
		lat[sw] = res.AvgLatency
	}
	if lat[StoreAndForward] < lat[Wormhole]*1.5 {
		t.Errorf("SAF latency %.1f should be well above wormhole %.1f",
			lat[StoreAndForward], lat[Wormhole])
	}
	if lat[VirtualCutThrough] > lat[Wormhole]*1.3 {
		t.Errorf("VCT latency %.1f should be close to wormhole %.1f",
			lat[VirtualCutThrough], lat[Wormhole])
	}
}

func TestSwitchingRaisesBufferDepth(t *testing.T) {
	cfg := Config{Net: topology.NewMesh(3, 3), Alg: routing.NewXY(),
		PacketLen: 8, BufferDepth: 2, Switching: VirtualCutThrough}
	cfg.setDefaults()
	if cfg.BufferDepth != 8 {
		t.Errorf("VCT buffer depth = %d, want 8", cfg.BufferDepth)
	}
	cfg2 := Config{Net: topology.NewMesh(3, 3), Alg: routing.NewXY(),
		PacketLen: 4, LongPacketLen: 12, LongFraction: 0.1,
		BufferDepth: 2, Switching: StoreAndForward}
	cfg2.setDefaults()
	if cfg2.BufferDepth != 12 {
		t.Errorf("SAF buffer depth = %d, want 12", cfg2.BufferDepth)
	}
}

func TestMixedPacketLengths(t *testing.T) {
	// Assumption 2: mixed short/long packets. The EbDa design stays
	// deadlock-free even with long packets over shallow buffers, and
	// everything drains.
	chain := core.MustParseChain("PA[X1+ Y1+ Y1-] -> PB[X1- Y2+ Y2-]")
	alg := routing.NewFromChain("dyxy", chain, 2)
	res := New(Config{
		Net: topology.NewMesh(4, 4), Alg: alg, VCs: alg.VCs(),
		InjectionRate: 0.2, PacketLen: 2,
		LongPacketLen: 16, LongFraction: 0.2,
		BufferDepth: 2, Seed: 9,
		Warmup: 500, Measure: 2000, Drain: 4000,
	}).Run()
	if res.Deadlocked {
		t.Fatalf("mixed lengths deadlocked: %s", res)
	}
	if res.DeliveredPackets != res.InjectedPackets || res.StuckFlits != 0 {
		t.Errorf("mixed lengths: %s", res)
	}
}

func TestMixedLengthsStressEbDaVsUnrestricted(t *testing.T) {
	// Long packets over shallow buffers are the classic deadlock
	// amplifier; the contrast must hold with mixed lengths too.
	stress := func(alg routing.Algorithm, vcs []int) Result {
		return New(Config{
			Net: topology.NewMesh(4, 4), Alg: alg, VCs: vcs,
			InjectionRate: 0.5, PacketLen: 3,
			LongPacketLen: 12, LongFraction: 0.3,
			BufferDepth: 2, Seed: 7,
			Warmup: 1500, Measure: 4000, Drain: 1000, DeadlockThreshold: 500,
		}).Run()
	}
	if res := stress(routing.NewUnrestricted(), nil); !res.Deadlocked {
		t.Errorf("unrestricted with long packets should deadlock: %s", res)
	}
	chain := core.MustParseChain("PA[X1+ Y1+ Y1-] -> PB[X1- Y2+ Y2-]")
	alg := routing.NewFromChain("dyxy", chain, 2)
	if res := stress(alg, alg.VCs()); res.Deadlocked {
		t.Errorf("EbDa design deadlocked with long packets: %s", res)
	}
}

func TestDuatoTorusSimulation(t *testing.T) {
	tor := topology.NewTorus(4, 4)
	alg := duato.NewTorus()
	res := New(Config{
		Net: tor, Alg: alg, VCs: alg.VCsPerDim(tor),
		InjectionRate: 0.3, Seed: 13,
		Warmup: 1000, Measure: 3000, Drain: 2000, DeadlockThreshold: 500,
	}).Run()
	if res.Deadlocked {
		t.Fatalf("duato-torus deadlocked: %s", res)
	}
	if res.DeliveredPackets == 0 {
		t.Error("delivered nothing")
	}
}

func TestOddEvenOddWidthMeshes(t *testing.T) {
	// Chiu's conditions must hold on odd-width and non-square meshes
	// (edge columns of both parities).
	for _, sizes := range [][]int{{5, 5}, {7, 5}, {5, 3}} {
		net := topology.NewMesh(sizes...)
		alg := routing.NewOddEven()
		if rep := routing.Verify(net, nil, alg); !rep.Acyclic {
			t.Errorf("%v: %s", sizes, rep)
		}
		if del := routing.CheckDelivery(net, alg, 64); !del.OK() {
			t.Errorf("%v: %s", sizes, del)
		}
		res := New(Config{
			Net: net, Alg: alg,
			InjectionRate: 0.1, Seed: 17,
			Warmup: 500, Measure: 1500, Drain: 1500,
		}).Run()
		if res.Deadlocked || res.DeliveredPackets != res.InjectedPackets {
			t.Errorf("%v sim: %s", sizes, res)
		}
	}
}

func TestTraceDrivenInjection(t *testing.T) {
	// A fixed trace replaces the stochastic generator: exactly the
	// scheduled packets are injected, in order, and all deliver.
	net := topology.NewMesh(4, 4)
	trace := []traffic.TraceEntry{
		{Cycle: 0, Src: net.ID(topology.Coord{0, 0}), Dst: net.ID(topology.Coord{3, 3})},
		{Cycle: 5, Src: net.ID(topology.Coord{3, 0}), Dst: net.ID(topology.Coord{0, 3}), Len: 9},
		{Cycle: 5, Src: net.ID(topology.Coord{1, 1}), Dst: net.ID(topology.Coord{2, 2})},
		{Cycle: 40, Src: net.ID(topology.Coord{0, 3}), Dst: net.ID(topology.Coord{3, 0})},
	}
	res := New(Config{
		Net: net, Alg: routing.NewXY(), Trace: trace,
		Warmup: 0, Measure: 100, Drain: 200, Seed: 1,
	}).Run()
	if res.Deadlocked {
		t.Fatal(res)
	}
	if res.InjectedPackets != 4 || res.DeliveredPackets != 4 {
		t.Errorf("trace packets: injected %d delivered %d, want 4/4", res.InjectedPackets, res.DeliveredPackets)
	}
	if res.StuckFlits != 0 {
		t.Errorf("stuck flits = %d", res.StuckFlits)
	}
}

func TestRouterLatencyIncreasesLatency(t *testing.T) {
	mk := func(depth int) Result {
		cfg := Config{
			Net: topology.NewMesh(4, 4), Alg: routing.NewXY(),
			InjectionRate: 0.02, Seed: 42, RouterLatency: depth,
			Warmup: 500, Measure: 2000, Drain: 1500,
		}
		return New(cfg).Run()
	}
	shallow, deep := mk(1), mk(4)
	if shallow.Deadlocked || deep.Deadlocked {
		t.Fatal("unexpected deadlock")
	}
	// Each hop pays ~3 extra cycles with a 4-deep pipeline; average hops
	// on a 4x4 mesh is ~2.7, so expect roughly +8 cycles.
	if deep.AvgLatency < shallow.AvgLatency+4 {
		t.Errorf("pipeline depth 4 latency %.1f vs depth 1 %.1f: too small a gap",
			deep.AvgLatency, shallow.AvgLatency)
	}
	if deep.DeliveredPackets != deep.InjectedPackets {
		t.Errorf("deep pipeline lost packets: %s", deep)
	}
}

func TestVCTNeverInterleavesBuffers(t *testing.T) {
	// Under VCT, allocation requires room for the whole packet, so a
	// buffer can never hold flits of a packet that wouldn't fit. Run a
	// moderate load and re-verify conservation.
	chain := core.MustParseChain("PA[X1+ Y1+ Y1-] -> PB[X1- Y2+ Y2-]")
	alg := routing.NewFromChain("dyxy", chain, 2)
	res := New(switchingConfig(VirtualCutThrough, alg, alg.VCs(), 0.15)).Run()
	if res.Deadlocked || res.StuckFlits != 0 {
		t.Errorf("VCT run: %s", res)
	}
}
