package sim

import (
	"strings"
	"testing"

	"ebda/internal/channel"
	"ebda/internal/core"
	"ebda/internal/duato"
	"ebda/internal/routing"
	"ebda/internal/topology"
	"ebda/internal/traffic"
)

func lowLoadConfig(alg routing.Algorithm, vcs []int) Config {
	return Config{
		Net: topology.NewMesh(4, 4), Alg: alg, VCs: vcs,
		InjectionRate: 0.02, Seed: 42,
		Warmup: 500, Measure: 1500, Drain: 1500,
	}
}

func TestXYLowLoadDeliversEverything(t *testing.T) {
	res := New(lowLoadConfig(routing.NewXY(), nil)).Run()
	if res.Deadlocked {
		t.Fatalf("XY deadlocked: %s", res)
	}
	if res.InjectedPackets == 0 {
		t.Fatal("no packets injected")
	}
	if res.DeliveredPackets != res.InjectedPackets {
		t.Errorf("delivered %d of %d", res.DeliveredPackets, res.InjectedPackets)
	}
	if res.StuckFlits != 0 {
		t.Errorf("stuck flits = %d", res.StuckFlits)
	}
	if res.MeasuredPackets == 0 || res.AvgLatency <= 0 {
		t.Errorf("bad measurement: %s", res)
	}
}

func TestZeroLoadLatencyIsHopsPlusSerialization(t *testing.T) {
	// At near-zero load, packet latency approaches
	// hops + packetLen - 1 + ejection. Average hop count on a 4x4 mesh
	// under uniform traffic is ~2.67; expect latency in a tight band.
	cfg := lowLoadConfig(routing.NewXY(), nil)
	cfg.InjectionRate = 0.005
	cfg.Measure = 4000
	res := New(cfg).Run()
	if res.Deadlocked {
		t.Fatal(res)
	}
	if res.AvgLatency < 5 || res.AvgLatency > 14 {
		t.Errorf("zero-load latency %.1f outside expected band", res.AvgLatency)
	}
}

func TestDeterminism(t *testing.T) {
	a := New(lowLoadConfig(routing.NewXY(), nil)).Run()
	b := New(lowLoadConfig(routing.NewXY(), nil)).Run()
	if a != b {
		t.Errorf("same seed produced different results:\n%v\n%v", a, b)
	}
	cfg := lowLoadConfig(routing.NewXY(), nil)
	cfg.Seed = 43
	c := New(cfg).Run()
	if a == c {
		t.Error("different seeds produced identical results (suspicious)")
	}
}

func TestUnrestrictedDeadlocksUnderLoad(t *testing.T) {
	// The adversarial baseline: minimal fully adaptive with one VC and
	// no deadlock avoidance. Under heavy load with long packets and
	// shallow buffers it must deadlock — and the watchdog must say so.
	cfg := Config{
		Net: topology.NewMesh(4, 4), Alg: routing.NewUnrestricted(),
		InjectionRate: 0.6, PacketLen: 8, BufferDepth: 2, Seed: 7,
		Warmup: 2000, Measure: 6000, Drain: 2000, DeadlockThreshold: 500,
	}
	res := New(cfg).Run()
	if !res.Deadlocked {
		t.Fatalf("unrestricted routing should deadlock: %s", res)
	}
	if res.StuckFlits == 0 {
		t.Error("deadlock reported with no stuck flits")
	}
	// The diagnosis must extract a genuine wait cycle.
	if !strings.Contains(res.DeadlockTrace, "wait cycle:") {
		t.Errorf("missing wait cycle trace:\n%s", res.DeadlockTrace)
	}
	if strings.Count(res.DeadlockTrace, "buffer ") < 2 {
		t.Errorf("trace too short:\n%s", res.DeadlockTrace)
	}
}

func TestEbDaDesignsNeverDeadlockUnderSameLoad(t *testing.T) {
	// The same stress that deadlocks the unrestricted baseline leaves
	// every EbDa-derived design live (throughput may saturate, but the
	// watchdog must stay quiet).
	chains := map[string]string{
		"north-last-chain": "PA[X+ X- Y-] -> PB[Y+]",
		"negative-first":   "PA[X- Y-] -> PB[X+ Y+]",
		"dyxy":             "PA[X1+ Y1+ Y1-] -> PB[X1- Y2+ Y2-]",
	}
	for name, spec := range chains {
		chain := core.MustParseChain(spec)
		alg := routing.NewFromChain(name, chain, 2)
		cfg := Config{
			Net: topology.NewMesh(4, 4), Alg: alg, VCs: alg.VCs(),
			InjectionRate: 0.6, PacketLen: 8, BufferDepth: 2, Seed: 7,
			Warmup: 2000, Measure: 6000, Drain: 2000, DeadlockThreshold: 500,
		}
		res := New(cfg).Run()
		if res.Deadlocked {
			t.Errorf("%s deadlocked: %s", name, res)
		}
		if res.DeliveredPackets == 0 {
			t.Errorf("%s delivered nothing", name)
		}
	}
}

func TestAdaptiveBeatsDeterministicOnTranspose(t *testing.T) {
	// Transpose concentrates XY traffic on the diagonal; the fully
	// adaptive six-channel design should carry at least as much traffic.
	mk := func(alg routing.Algorithm, vcs []int) Result {
		return New(Config{
			Net: topology.NewMesh(6, 6), Alg: alg, VCs: vcs,
			Pattern:       traffic.Transpose{},
			InjectionRate: 0.25, Seed: 11,
			Warmup: 1000, Measure: 3000, Drain: 2000,
		}).Run()
	}
	xy := mk(routing.NewXY(), nil)
	dyxy := routing.NewFromChain("dyxy", core.MustParseChain("PA[X1+ Y1+ Y1-] -> PB[X1- Y2+ Y2-]"), 2)
	ad := mk(dyxy, dyxy.VCs())
	if xy.Deadlocked || ad.Deadlocked {
		t.Fatalf("unexpected deadlock: xy=%s dyxy=%s", xy, ad)
	}
	if ad.Throughput < xy.Throughput*0.95 {
		t.Errorf("adaptive throughput %.4f well below XY %.4f on transpose", ad.Throughput, xy.Throughput)
	}
}

func TestDuatoRunsWithoutDeadlockUnderStress(t *testing.T) {
	alg := duato.New()
	net := topology.NewMesh(4, 4)
	cfg := Config{
		Net: net, Alg: alg, VCs: alg.VCsPerDim(net),
		InjectionRate: 0.6, PacketLen: 8, BufferDepth: 2, Seed: 7,
		Warmup: 2000, Measure: 6000, Drain: 2000, DeadlockThreshold: 500,
	}
	res := New(cfg).Run()
	if res.Deadlocked {
		t.Errorf("duato deadlocked: %s", res)
	}
	if res.DeliveredPackets == 0 {
		t.Error("duato delivered nothing")
	}
}

func TestFlitConservation(t *testing.T) {
	cfg := lowLoadConfig(routing.NewXY(), nil)
	cfg.InjectionRate = 0.1
	cfg.Drain = 4000
	res := New(cfg).Run()
	if res.Deadlocked {
		t.Fatal(res)
	}
	// With a long drain at moderate load, everything injected must come
	// out, and nothing may remain in flight.
	if res.DeliveredPackets != res.InjectedPackets || res.StuckFlits != 0 {
		t.Errorf("conservation violated: %s", res)
	}
}

func TestSelectionPolicies(t *testing.T) {
	chain := core.MustParseChain("PA[X1+ Y1+ Y1-] -> PB[X1- Y2+ Y2-]")
	alg := routing.NewFromChain("dyxy", chain, 2)
	for _, sel := range []Selection{SelectRandom, SelectFirst, SelectCredits} {
		cfg := lowLoadConfig(alg, alg.VCs())
		cfg.Selection = sel
		res := New(cfg).Run()
		if res.Deadlocked || res.DeliveredPackets != res.InjectedPackets {
			t.Errorf("selection %d: %s", sel, res)
		}
	}
}

func TestPatterns(t *testing.T) {
	for _, p := range []traffic.Pattern{
		traffic.Uniform{}, traffic.Transpose{}, traffic.BitComplement{},
		traffic.Neighbor{}, traffic.Hotspot{Fraction: 0.2},
	} {
		cfg := lowLoadConfig(routing.NewXY(), nil)
		cfg.Pattern = p
		res := New(cfg).Run()
		if res.Deadlocked {
			t.Errorf("%s: %s", p.Name(), res)
		}
		if res.InjectedPackets > 0 && res.DeliveredPackets != res.InjectedPackets {
			t.Errorf("%s: delivered %d/%d", p.Name(), res.DeliveredPackets, res.InjectedPackets)
		}
	}
}

func TestHigherLoadHigherThroughputBelowSaturation(t *testing.T) {
	mk := func(rate float64) Result {
		cfg := lowLoadConfig(routing.NewXY(), nil)
		cfg.InjectionRate = rate
		return New(cfg).Run()
	}
	lo, hi := mk(0.05), mk(0.15)
	if hi.Throughput <= lo.Throughput {
		t.Errorf("throughput did not scale: %.4f -> %.4f", lo.Throughput, hi.Throughput)
	}
	// Accepted traffic tracks offered load below saturation.
	if hi.Throughput < 0.10 || lo.Throughput < 0.03 {
		t.Errorf("accepted traffic too low: lo=%.4f hi=%.4f", lo.Throughput, hi.Throughput)
	}
}

func TestTorusDatelineSimulation(t *testing.T) {
	alg := routing.NewDatelineTorus()
	net := topology.NewTorus(4, 4)
	cfg := Config{
		Net: net, Alg: alg, VCs: alg.VCsPerDim(net),
		InjectionRate: 0.1, Seed: 3,
		Warmup: 500, Measure: 2000, Drain: 2000,
	}
	res := New(cfg).Run()
	if res.Deadlocked || res.DeliveredPackets != res.InjectedPackets {
		t.Errorf("dateline torus sim: %s", res)
	}
}

func TestFairnessIndex(t *testing.T) {
	// Uniform traffic at low load should be near-perfectly fair; the
	// index lives in (1/N, 1].
	cfg := lowLoadConfig(routing.NewXY(), nil)
	cfg.InjectionRate = 0.1
	cfg.Measure = 4000
	res := New(cfg).Run()
	if res.Deadlocked {
		t.Fatal(res)
	}
	if res.Fairness < 0.8 || res.Fairness > 1.0 {
		t.Errorf("uniform low-load fairness = %.3f, want near 1", res.Fairness)
	}
	// A single-source trace yields the minimum 1/N.
	net := topology.NewMesh(4, 4)
	var trace []traffic.TraceEntry
	for c := 1; c <= 40; c++ {
		trace = append(trace, traffic.TraceEntry{
			Cycle: c * 10, Src: 0, Dst: net.ID(topology.Coord{3, 3}),
		})
	}
	res = New(Config{Net: net, Alg: routing.NewXY(), Trace: trace,
		Warmup: 1, Measure: 500, Drain: 500, Seed: 1}).Run()
	want := 1.0 / 16
	if res.Fairness < want-1e-9 || res.Fairness > want+1e-9 {
		t.Errorf("single-source fairness = %.4f, want %.4f", res.Fairness, want)
	}
}

func TestRunSeeds(t *testing.T) {
	cfg := lowLoadConfig(routing.NewXY(), nil)
	cfg.InjectionRate = 0.1
	rep := RunSeeds(cfg, 4)
	if rep.Runs != 4 || rep.Deadlocks != 0 {
		t.Fatalf("replication: %s", rep)
	}
	if rep.Latency.N() != 4 || rep.Latency.Mean() <= 0 {
		t.Errorf("latency stream: %s", rep.Latency.String())
	}
	// Different seeds should produce some spread.
	if rep.Latency.Std() == 0 && rep.Throughput.Std() == 0 {
		t.Error("zero variance across seeds is suspicious")
	}
	// Deadlocking configs are counted, not averaged.
	bad := Config{
		Net: topology.NewMesh(4, 4), Alg: routing.NewUnrestricted(),
		InjectionRate: 0.6, PacketLen: 8, BufferDepth: 2, Seed: 7,
		Warmup: 1500, Measure: 4000, Drain: 500, DeadlockThreshold: 400,
	}
	brep := RunSeeds(bad, 2)
	if brep.Deadlocks == 0 {
		t.Error("expected deadlocks to be counted")
	}
	if !strings.Contains(brep.String(), "deadlocked") {
		t.Errorf("render: %s", brep)
	}
}

func TestLinkLatencyIncreasesLatency(t *testing.T) {
	mk := func(linkLatency int) Result {
		cfg := lowLoadConfig(routing.NewXY(), nil)
		cfg.LinkLatency = linkLatency
		return New(cfg).Run()
	}
	l1, l3 := mk(1), mk(3)
	if l1.Deadlocked || l3.Deadlocked {
		t.Fatal("unexpected deadlock")
	}
	if l3.AvgLatency <= l1.AvgLatency+1 {
		t.Errorf("link latency 3 should raise latency: %.1f vs %.1f", l3.AvgLatency, l1.AvgLatency)
	}
	if l3.DeliveredPackets != l3.InjectedPackets {
		t.Errorf("delivery broken with link latency: %s", l3)
	}
}

func TestAdaptiveSpreadsLoadMoreEvenly(t *testing.T) {
	// Under transpose traffic, XY concentrates flits on the diagonal
	// links; the fully adaptive design spreads them (lower Gini).
	mk := func(alg routing.Algorithm, vcs []int) Result {
		return New(Config{
			Net: topology.NewMesh(6, 6), Alg: alg, VCs: vcs,
			Pattern:       traffic.Transpose{},
			InjectionRate: 0.2, Seed: 21,
			Warmup: 1000, Measure: 3000, Drain: 2000,
		}).Run()
	}
	xy := mk(routing.NewXY(), nil)
	dyxy := routing.NewFromChain("dyxy", core.MustParseChain("PA[X1+ Y1+ Y1-] -> PB[X1- Y2+ Y2-]"), 2)
	ad := mk(dyxy, dyxy.VCs())
	if xy.Deadlocked || ad.Deadlocked {
		t.Fatal("unexpected deadlock")
	}
	if ad.LinkLoad.Gini >= xy.LinkLoad.Gini {
		t.Errorf("adaptive gini %.3f not below XY gini %.3f",
			ad.LinkLoad.Gini, xy.LinkLoad.Gini)
	}
	if xy.LatencyStd <= 0 {
		t.Error("latency std should be positive under load")
	}
}

func TestFaultySimulationReturnsCredits(t *testing.T) {
	// Regression: with a unidirectional link fault, credit return must
	// not depend on the reverse data link existing (credits are control
	// signals tied to the forward link). Before the fix, draining a
	// buffer whose reverse link was faulty leaked credits and wedged the
	// network.
	chain := core.MustParseChain("PA[X1+ Y1+ Y1-] -> PB[X1- Y2+ Y2-]")
	base := topology.NewMesh(6, 6)
	faults := []topology.Link{
		{From: base.ID(topology.Coord{2, 3}), Dim: channel.X, Sign: channel.Plus},
		{From: base.ID(topology.Coord{3, 2}), Dim: channel.Y, Sign: channel.Plus},
	}
	faulty := base.WithoutLinks(faults)
	alg := routing.NewFaultTolerant("dyxy-ft", chain, faulty)
	res := New(Config{
		Net: faulty, Alg: alg, VCs: alg.VCs(),
		InjectionRate: 0.15, Seed: 3,
	}).Run()
	if res.Deadlocked {
		t.Fatalf("credit leak regression: %s", res)
	}
	if res.DeliveredPackets != res.InjectedPackets {
		t.Errorf("delivered %d/%d", res.DeliveredPackets, res.InjectedPackets)
	}
}

func TestPartial3DElevatorSimulation(t *testing.T) {
	net := topology.NewPartialMesh3D(3, 3, 2, [][2]int{{2, 2}})
	chain := core.MustParseChain("PA[X1+ Y1* Z1+] -> PB[X1- Y2* Z1-]")
	alg := routing.NewEbDaElevator(chain, routing.Elevators{{2, 2}})
	cfg := Config{
		Net: net, Alg: alg, VCs: alg.VCs(),
		InjectionRate: 0.05, Seed: 9,
		Warmup: 500, Measure: 2000, Drain: 3000,
	}
	res := New(cfg).Run()
	if res.Deadlocked || res.DeliveredPackets != res.InjectedPackets {
		t.Errorf("partial 3D sim: %s", res)
	}
}

func TestRunSeedsJobsDeterministic(t *testing.T) {
	// A memoizing adaptive algorithm shared across workers is the
	// hardest case: concurrent Candidates calls hit the same reach
	// cache. The aggregate must be bit-identical for every jobs value.
	dyxy := routing.NewFromChain("dyxy", core.MustParseChain("PA[X1+ Y1+ Y1-] -> PB[X1- Y2+ Y2-]"), 2)
	cfg := lowLoadConfig(dyxy, dyxy.VCs())
	cfg.InjectionRate = 0.1
	ref := RunSeedsJobs(cfg, 6, 1)
	for _, jobs := range []int{2, 8} {
		rep := RunSeedsJobs(cfg, 6, jobs)
		if rep != ref {
			t.Fatalf("jobs=%d diverged:\n  got  %+v\n  want %+v", jobs, rep, ref)
		}
	}
	if ref.Runs != 6 || ref.Latency.N() != 6 {
		t.Fatalf("aggregate lost runs: %+v", ref)
	}
}
