package sim

import (
	"fmt"
	"strings"

	"ebda/internal/channel"
	"ebda/internal/topology"
)

// waitNode identifies one blocked entity in the wait-for graph: an input
// VC buffer or a source queue.
type waitNode struct {
	router topology.NodeID
	port   int
	vc     int
	src    bool
}

// diagnose extracts a wait cycle from a wedged network: a sequence of
// buffers each of which cannot advance until the next one drains or frees.
// It returns a human-readable trace, or a note when no cycle is found
// (e.g. when the wedge is caused by a routing function that returned no
// candidates).
func (s *Simulator) diagnose() string {
	edges := map[waitNode][]waitNode{}
	addEdge := func(from, to waitNode) { edges[from] = append(edges[from], to) }

	// target returns the wait node a blocked sender points at: the
	// downstream buffer it needs space or ownership in. If that buffer
	// is empty but held, the wait continues at the holder's own input.
	target := func(r *router, op, ov int) waitNode {
		down := waitNode{router: r.neighbor[op], port: op, vc: ov}
		return down
	}

	for _, r := range s.routers {
		for p := 0; p < s.ports; p++ {
			for v := range r.in[p] {
				ivc := &r.in[p][v]
				if len(ivc.buf) == 0 {
					continue
				}
				me := waitNode{router: r.id, port: p, vc: v}
				switch {
				case ivc.assigned && int(ivc.outPort) != s.ejectPort():
					addEdge(me, target(r, int(ivc.outPort), int(ivc.outVC)))
				case !ivc.assigned && ivc.buf[0].head:
					d, sign := portDir(p)
					in := channel.NewVC(d, sign, v+1)
					for _, c := range s.cfg.Alg.Candidates(s.net, r.id, &in, ivc.buf[0].pkt.dst) {
						op := dirPort(c.Dim, c.Sign)
						if op < s.ports && r.hasOut[op] && c.VC-1 < len(r.out[op]) {
							addEdge(me, target(r, op, c.VC-1))
						}
					}
				}
			}
		}
		if len(r.srcQ) > 0 {
			me := waitNode{router: r.id, src: true}
			if r.src.assigned && int(r.src.outPort) != s.ejectPort() {
				addEdge(me, target(r, int(r.src.outPort), int(r.src.outVC)))
			} else if !r.src.assigned && r.srcQ[0].head {
				for _, c := range s.cfg.Alg.Candidates(s.net, r.id, nil, r.srcQ[0].pkt.dst) {
					op := dirPort(c.Dim, c.Sign)
					if op < s.ports && r.hasOut[op] && c.VC-1 < len(r.out[op]) {
						addEdge(me, target(r, op, c.VC-1))
					}
				}
			}
		}
	}
	// Empty-but-held buffers wait on their holder's input: the holder's
	// remaining flits must flow through before the buffer frees.
	for _, r := range s.routers {
		for p := 0; p < s.ports; p++ {
			for v := range r.in[p] {
				if len(r.in[p][v].buf) > 0 || !r.hasUp[p] {
					continue
				}
				up := s.routers[r.upstream[p]]
				o := up.out[p][v]
				if !o.held {
					continue
				}
				me := waitNode{router: r.id, port: p, vc: v}
				holder := waitNode{router: up.id, port: int(o.holderPort), vc: int(o.holderVC), src: o.holderSrc}
				addEdge(me, holder)
			}
		}
	}

	// DFS for a cycle.
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := map[waitNode]int{}
	var stack []waitNode
	var cycle []waitNode
	var dfs func(u waitNode) bool
	dfs = func(u waitNode) bool {
		color[u] = grey
		stack = append(stack, u)
		for _, w := range edges[u] {
			switch color[w] {
			case grey:
				for i, x := range stack {
					if x == w {
						cycle = append([]waitNode(nil), stack[i:]...)
						return true
					}
				}
			case white:
				if dfs(w) {
					return true
				}
			}
		}
		color[u] = black
		stack = stack[:len(stack)-1]
		return false
	}
	for u := range edges {
		if color[u] == white && dfs(u) {
			break
		}
	}
	if len(cycle) == 0 {
		obsDiagNoCycle.Inc()
		return "no wait cycle found (check for empty routing candidates)"
	}
	obsDiagCycle.Inc()
	var b strings.Builder
	b.WriteString("wait cycle:\n")
	for _, n := range cycle {
		b.WriteString("  " + s.describe(n) + "\n")
	}
	return strings.TrimRight(b.String(), "\n")
}

// describe renders one wait node with its packet context.
func (s *Simulator) describe(n waitNode) string {
	r := s.routers[n.router]
	coord := s.net.Coord(n.router)
	if n.src {
		state := "unallocated"
		if r.src.assigned {
			d, sg := portDir(int(r.src.outPort))
			state = fmt.Sprintf("allocated %s%s vc%d", d, sg, r.src.outVC+1)
		}
		return fmt.Sprintf("source queue at %v (%d flits, %s)", coord, len(r.srcQ), state)
	}
	d, sg := portDir(n.port)
	ivc := &r.in[n.port][n.vc]
	detail := "empty"
	if len(ivc.buf) > 0 {
		pkt := ivc.buf[0].pkt
		detail = fmt.Sprintf("%d flits, front pkt %d (%v -> %v)",
			len(ivc.buf), pkt.id, s.net.Coord(pkt.src), s.net.Coord(pkt.dst))
	}
	state := "unallocated"
	if ivc.assigned {
		if int(ivc.outPort) == s.ejectPort() {
			state = "ejecting"
		} else {
			od, osg := portDir(int(ivc.outPort))
			state = fmt.Sprintf("allocated %s%s vc%d", od, osg, ivc.outVC+1)
		}
	}
	return fmt.Sprintf("buffer %s%s vc%d at %v (%s; %s)", d, sg, n.vc+1, coord, detail, state)
}
