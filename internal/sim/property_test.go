package sim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ebda/internal/cdg"
	"ebda/internal/channel"
	"ebda/internal/core"
	"ebda/internal/routing"
	"ebda/internal/topology"
)

// randomChain greedily assigns a random subset of the channel space to
// random Theorem-1-valid partitions (mirrors the generator in the cdg
// tests). Returns nil when the draw yields nothing connectable.
func randomChain(r *rand.Rand, dims, maxVC int) *core.Chain {
	var pool []channel.Class
	for d := 0; d < dims; d++ {
		for vc := 1; vc <= maxVC; vc++ {
			for _, s := range []channel.Sign{channel.Plus, channel.Minus} {
				if r.Intn(4) > 0 {
					pool = append(pool, channel.NewVC(channel.Dim(d), s, vc))
				}
			}
		}
	}
	r.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	numParts := 1 + r.Intn(3)
	buckets := make([][]channel.Class, numParts)
	for _, c := range pool {
		for _, b := range r.Perm(numParts) {
			trial := append(append([]channel.Class(nil), buckets[b]...), c)
			p, err := core.NewPartition("T", trial...)
			if err == nil && p.CycleFree() {
				buckets[b] = trial
				break
			}
		}
	}
	var parts []*core.Partition
	for i, b := range buckets {
		if len(b) == 0 {
			continue
		}
		p, err := core.NewPartition("P"+string(rune('A'+i)), b...)
		if err != nil {
			return nil
		}
		parts = append(parts, p)
	}
	if len(parts) == 0 {
		return nil
	}
	chain, err := core.NewChain(parts...)
	if err != nil {
		return nil
	}
	return chain
}

// TestQuickRandomChainsSimulateWithoutDeadlock is the end-to-end property:
// any random chain of disjoint Theorem-1 partitions that connects the mesh
// must run in the wormhole simulator without tripping the deadlock
// watchdog — the dynamic counterpart of the static CDG property test.
func TestQuickRandomChainsSimulateWithoutDeadlock(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	net := topology.NewMesh(3, 3)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		chain := randomChain(r, 2, 2)
		if chain == nil {
			return true
		}
		// Only simulate designs that can deliver every pair (partial
		// channel draws often cannot).
		vcs := cdg.VCConfigFor(2, chain.Channels())
		if !cdg.Connectivity(net, vcs, chain.AllTurns(), true).Connected() {
			return true
		}
		alg := routing.NewFromChain("rand", chain, 2)
		res := New(Config{
			Net: net, Alg: alg, VCs: alg.VCs(),
			InjectionRate: 0.4, PacketLen: 6, BufferDepth: 2,
			Seed:   seed,
			Warmup: 300, Measure: 900, Drain: 600, DeadlockThreshold: 400,
		}).Run()
		if res.Deadlocked {
			t.Logf("seed %d: chain %s deadlocked: %s", seed, chain.PlainString(), res)
			return false
		}
		return res.DeliveredPackets > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
