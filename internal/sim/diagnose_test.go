package sim

import (
	"strings"
	"testing"

	"ebda/internal/channel"
	"ebda/internal/core"
	"ebda/internal/routing"
	"ebda/internal/topology"
)

// stressConfig is the adversarial load every diagnose case runs under:
// long packets, shallow buffers, heavy injection — the setting where an
// unbroken dependency cycle wedges within the watchdog window.
func stressConfig(alg routing.Algorithm) Config {
	return Config{
		Net: topology.NewMesh(4, 4), Alg: alg,
		InjectionRate: 0.6, PacketLen: 8, BufferDepth: 2, Seed: 7,
		Warmup: 2000, Measure: 6000, Drain: 2000, DeadlockThreshold: 500,
	}
}

// TestDiagnoseOutcomes pins the diagnose path on both sides of the EbDa
// boundary: a turn set with an unbroken cycle must wedge and yield a wait
// cycle trace (counted under outcome="cycle"), while EbDa-derived designs
// under the identical load must never reach diagnose at all. The obs
// counters are asserted as deltas so the runs double as a check that the
// simulator's instrumentation fires exactly when the semantics say.
func TestDiagnoseOutcomes(t *testing.T) {
	cases := []struct {
		name         string
		cfg          func() Config
		wantDeadlock bool
	}{
		{
			name:         "unrestricted-deadlocks",
			cfg:          func() Config { return stressConfig(routing.NewUnrestricted()) },
			wantDeadlock: true,
		},
		{
			name: "north-last-chain-free",
			cfg: func() Config {
				alg := routing.NewFromChain("north-last-chain",
					core.MustParseChain("PA[X+ X- Y-] -> PB[Y+]"), 2)
				c := stressConfig(alg)
				c.VCs = alg.VCs()
				return c
			},
			wantDeadlock: false,
		},
		{
			name: "negative-first-free",
			cfg: func() Config {
				alg := routing.NewFromChain("negative-first",
					core.MustParseChain("PA[X- Y-] -> PB[X+ Y+]"), 2)
				c := stressConfig(alg)
				c.VCs = alg.VCs()
				return c
			},
			wantDeadlock: false,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			deadlocksBefore := obsDeadlocks.Value()
			cycleBefore := obsDiagCycle.Value()
			noCycleBefore := obsDiagNoCycle.Value()
			runsBefore := obsRuns.Value()

			res := New(tc.cfg()).Run()

			if res.Deadlocked != tc.wantDeadlock {
				t.Fatalf("Deadlocked = %v, want %v: %s", res.Deadlocked, tc.wantDeadlock, res)
			}
			if got := obsRuns.Value() - runsBefore; got != 1 {
				t.Errorf("ebda_sim_runs_total delta = %d, want 1", got)
			}
			deadlockDelta := obsDeadlocks.Value() - deadlocksBefore
			cycleDelta := obsDiagCycle.Value() - cycleBefore
			noCycleDelta := obsDiagNoCycle.Value() - noCycleBefore
			if tc.wantDeadlock {
				if !strings.Contains(res.DeadlockTrace, "wait cycle:") {
					t.Errorf("missing wait cycle trace:\n%s", res.DeadlockTrace)
				}
				if deadlockDelta != 1 {
					t.Errorf("ebda_sim_deadlocks_total delta = %d, want 1", deadlockDelta)
				}
				if cycleDelta != 1 || noCycleDelta != 0 {
					t.Errorf("diagnose outcome deltas = cycle %d / no_cycle %d, want 1 / 0",
						cycleDelta, noCycleDelta)
				}
			} else {
				if res.DeadlockTrace != "" {
					t.Errorf("free design produced a deadlock trace:\n%s", res.DeadlockTrace)
				}
				if deadlockDelta != 0 || cycleDelta != 0 || noCycleDelta != 0 {
					t.Errorf("free design moved diagnose counters: deadlocks %d, cycle %d, no_cycle %d",
						deadlockDelta, cycleDelta, noCycleDelta)
				}
			}
		})
	}
}

// emptyAlg is a degenerate routing function that returns no candidates:
// injected traffic strands in source queues, the watchdog fires, and
// diagnose finds no wait cycle — the failure its fallback note documents.
type emptyAlg struct{}

func (emptyAlg) Name() string { return "empty" }
func (emptyAlg) Candidates(*topology.Network, topology.NodeID, *channel.Class, topology.NodeID) []channel.Class {
	return nil
}

// TestDiagnoseNoCycleOutcome pins the no-cycle branch and its obs counter.
func TestDiagnoseNoCycleOutcome(t *testing.T) {
	before := obsDiagNoCycle.Value()
	cfg := stressConfig(emptyAlg{})
	res := New(cfg).Run()
	if !res.Deadlocked {
		t.Fatalf("candidate-less routing must wedge: %s", res)
	}
	if !strings.Contains(res.DeadlockTrace, "no wait cycle found") {
		t.Fatalf("trace = %q, want the no-cycle note", res.DeadlockTrace)
	}
	if got := obsDiagNoCycle.Value() - before; got != 1 {
		t.Errorf("no_cycle outcome delta = %d, want 1", got)
	}
}
