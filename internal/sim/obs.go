package sim

import "ebda/internal/obs"

// Simulator instrumentation. Per-event totals (flits, packets, cycles)
// are accumulated in plain Simulator fields during a run and folded into
// these counters once per run, so the cycle loop pays nothing for
// observability. Diagnose outcomes are labeled series hoisted here so the
// watchdog path never formats a name.
var (
	obsRuns = obs.NewCounter("ebda_sim_runs_total",
		"simulation runs completed (including deadlocked runs)")
	obsCycles = obs.NewCounter("ebda_sim_cycles_total",
		"router cycles simulated across all runs")
	obsInjectedPackets = obs.NewCounter("ebda_sim_injected_packets_total",
		"packets injected at sources")
	obsDeliveredPackets = obs.NewCounter("ebda_sim_delivered_packets_total",
		"packets fully delivered (tail flit ejected)")
	obsInjectedFlits = obs.NewCounter("ebda_sim_injected_flits_total",
		"flits injected at sources")
	obsDeliveredFlits = obs.NewCounter("ebda_sim_delivered_flits_total",
		"flits ejected at destinations")
	obsDeadlocks = obs.NewCounter("ebda_sim_deadlocks_total",
		"runs aborted by the progress watchdog")
	obsDiagCycle = obs.NewCounter(
		obs.Label("ebda_sim_diagnose_total", "outcome", "cycle"),
		"deadlock diagnoses by outcome")
	obsDiagNoCycle = obs.NewCounter(
		obs.Label("ebda_sim_diagnose_total", "outcome", "no_cycle"),
		"deadlock diagnoses by outcome")

	phaseRun   = obs.NewPhase("sim.run", "")
	phaseSeeds = obs.NewPhase("sim.seeds", "")
)

// recordObs folds one finished run's totals into the process counters.
func (s *Simulator) recordObs(res Result) {
	obsRuns.Inc()
	obsCycles.Add(uint64(res.Cycles))
	obsInjectedPackets.Add(uint64(s.injected))
	obsDeliveredPackets.Add(uint64(s.delivered))
	obsInjectedFlits.Add(uint64(s.injectedFlits))
	obsDeliveredFlits.Add(uint64(s.deliveredFlits))
	if res.Deadlocked {
		obsDeadlocks.Inc()
	}
}
