package deadlock

import (
	"strings"
	"testing"

	"ebda/internal/cdg"
	"ebda/internal/core"
	"ebda/internal/duato"
	"ebda/internal/routing"
	"ebda/internal/topology"
)

func TestXYHasNoConfiguration(t *testing.T) {
	cfg := Find(topology.NewMesh(4, 4), nil, routing.NewXY())
	if !cfg.Empty() {
		t.Fatalf("XY should have no deadlock configuration:\n%s", cfg)
	}
}

func TestEbDaChainsHaveNoConfiguration(t *testing.T) {
	net := topology.NewMesh(4, 4)
	for _, spec := range []string{
		"PA[X+ X- Y-] -> PB[Y+]",
		"PA[X- Y-] -> PB[X+ Y+]",
		"PA[X1+ Y1+ Y1-] -> PB[X1- Y2+ Y2-]",
	} {
		chain := core.MustParseChain(spec)
		alg := routing.NewFromChain(spec, chain, 2)
		cfg := Find(net, cdg.VCConfig(alg.VCs()), alg)
		if !cfg.Empty() {
			t.Errorf("%s: found configuration:\n%s", spec, cfg)
		}
	}
}

func TestUnrestrictedHasConfiguration(t *testing.T) {
	cfg := Find(topology.NewMesh(3, 3), nil, routing.NewUnrestricted())
	if cfg.Empty() {
		t.Fatal("unrestricted routing must admit a deadlock configuration")
	}
	// Internal consistency: every occupant's requests lie inside the
	// configuration and the occupant has not arrived.
	inSet := map[int]bool{}
	for _, o := range cfg.Occupants {
		inSet[o.Channel.Index] = true
	}
	for _, o := range cfg.Occupants {
		if o.Channel.Link.To == o.Dst {
			t.Errorf("occupant %s already at its destination", o.Channel)
		}
		if len(o.Requests) == 0 {
			t.Errorf("occupant %s has no requests", o.Channel)
		}
		for _, r := range o.Requests {
			if !inSet[r.Index] {
				t.Errorf("request %s of %s escapes the configuration", r, o.Channel)
			}
		}
	}
	if !strings.Contains(cfg.String(), "deadlock configuration") {
		t.Errorf("render: %s", cfg)
	}
}

func TestDuatoHasCyclesButNoConfiguration(t *testing.T) {
	// The Section-2 contrast, mechanically: the Duato design's full
	// dependency graph is cyclic, yet no deadlock configuration exists —
	// every candidate circular wait is broken by the always-requestable
	// escape channel. (Duato's theorem on our own implementation.)
	net := topology.NewMesh(4, 4)
	a := duato.New()
	vcs := cdg.VCConfig(a.VCsPerDim(net))
	if routing.Verify(net, vcs, a).Acyclic {
		t.Fatal("precondition: Duato relation should be cyclic")
	}
	cfg := Find(net, vcs, a)
	if !cfg.Empty() {
		t.Fatalf("Duato design should have no deadlock configuration:\n%s", cfg)
	}
}

func TestDuatoTorusNoConfiguration(t *testing.T) {
	tor := topology.NewTorus(4, 4)
	a := duato.NewTorus()
	cfg := Find(tor, cdg.VCConfig(a.VCsPerDim(tor)), a)
	if !cfg.Empty() {
		t.Fatalf("torus Duato should have no deadlock configuration:\n%s", cfg)
	}
}

func TestPlainTorusDORHasConfiguration(t *testing.T) {
	// DOR without the dateline discipline wedges around the ring.
	tor := topology.NewTorus(5, 5)
	cfg := Find(tor, nil, routing.NewXY())
	if cfg.Empty() {
		t.Fatal("plain DOR on a torus must admit a deadlock configuration")
	}
}

func TestDatelineTorusNoConfiguration(t *testing.T) {
	tor := topology.NewTorus(5, 5)
	a := routing.NewDatelineTorus()
	cfg := Find(tor, cdg.VCConfig(a.VCsPerDim(tor)), a)
	if !cfg.Empty() {
		t.Fatalf("dateline torus should be clean:\n%s", cfg)
	}
}

func TestEmptyRender(t *testing.T) {
	var cfg *Configuration
	if cfg.String() != "no deadlock configuration (deadlock-free)" {
		t.Errorf("nil render: %q", cfg.String())
	}
}
