// Package deadlock searches for potential deadlock configurations of a
// routing algorithm on a concrete network — a strictly sharper analysis
// than cycle detection, and the mechanical bridge between the two theories
// the paper contrasts in Section 2.
//
// A (single-packet-per-channel) deadlock configuration is a non-empty set
// S of occupied channels, with a destination assigned to each, such that
// every occupant is blocked: it has not arrived, it has somewhere it is
// allowed to go, and every channel it is allowed to request belongs to S.
// This is the classic circular-wait ("knot") condition:
//
//   - an acyclic dependency graph admits no such S (take the occupant
//     whose channel is last in topological order: its requests point
//     forward, out of S) — EbDa designs pass trivially;
//   - a cyclic graph MAY still admit none, when every cycle has an escape
//     request leading out of any candidate S — exactly Duato's theorem,
//     and our Duato baseline demonstrates it: cycles among the adaptive
//     channels, no deadlock configuration, because the escape VC is always
//     requestable;
//   - the unrestricted baseline yields a concrete configuration that
//     matches what the simulator's watchdog traps dynamically.
//
// The search computes a greatest fixed point: start from all channels
// occupied and repeatedly evict channels whose occupant could not be
// blocked under any destination, until the set stabilises. Destinations
// considered for an occupant are restricted to those for which the channel
// is actually reachable from injection (the same forward closure the
// routing-relation verification uses), so impossible packet states cannot
// fabricate a deadlock.
package deadlock

import (
	"fmt"
	"strings"

	"ebda/internal/cdg"
	"ebda/internal/routing"
	"ebda/internal/topology"
)

// Occupant is one channel of a deadlock configuration with its witness
// destination.
type Occupant struct {
	Channel cdg.Channel
	Dst     topology.NodeID
	// Requests are the channels the occupant is allowed to take, all of
	// which are inside the configuration.
	Requests []cdg.Channel
}

// Configuration is a potential deadlock: every occupant's full request set
// lies inside the configuration.
type Configuration struct {
	Occupants []Occupant
}

// Empty reports whether no deadlock configuration was found.
func (c *Configuration) Empty() bool { return c == nil || len(c.Occupants) == 0 }

// String renders the configuration.
func (c *Configuration) String() string {
	if c.Empty() {
		return "no deadlock configuration (deadlock-free)"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "deadlock configuration with %d occupied channels:\n", len(c.Occupants))
	for _, o := range c.Occupants {
		reqs := make([]string, len(o.Requests))
		for i, r := range o.Requests {
			reqs[i] = r.String()
		}
		fmt.Fprintf(&b, "  %s (dst n%d) waits on {%s}\n", o.Channel, o.Dst, strings.Join(reqs, ", "))
	}
	return strings.TrimRight(b.String(), "\n")
}

// Find searches for a potential deadlock configuration of the algorithm on
// the network. A nil/empty result means none exists under the
// one-packet-per-virtual-channel abstraction.
func Find(net *topology.Network, vcs cdg.VCConfig, alg routing.Algorithm) *Configuration {
	g := cdg.NewGraph(net, vcs)
	n := g.NumChannels()
	dsts := net.Nodes()

	// usable[d][c]: channel c can carry a packet destined to d (forward
	// closure from injection). succ[d][c]: the channels such a packet may
	// request from c's head.
	usable := make([][]bool, dsts)
	succ := make([][][]int32, dsts)
	for d := 0; d < dsts; d++ {
		usable[d] = make([]bool, n)
		succ[d] = make([][]int32, n)
		dst := topology.NodeID(d)
		// Seed with injection candidates from every source.
		var queue []int32
		for src := topology.NodeID(0); int(src) < net.Nodes(); src++ {
			if src == dst {
				continue
			}
			for _, cand := range alg.Candidates(net, src, nil, dst) {
				if ch, ok := g.FindChannel(src, cand.Dim, cand.Sign, cand.VC); ok {
					if !usable[d][ch.Index] {
						usable[d][ch.Index] = true
						queue = append(queue, int32(ch.Index))
					}
				}
			}
		}
		for len(queue) > 0 {
			ci := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			ch := g.Channels()[ci]
			at := ch.Link.To
			if at == dst {
				continue
			}
			cls := ch.Class()
			for _, cand := range alg.Candidates(net, at, &cls, dst) {
				next, ok := g.FindChannel(at, cand.Dim, cand.Sign, cand.VC)
				if !ok {
					continue
				}
				succ[d][ci] = append(succ[d][ci], int32(next.Index))
				if !usable[d][next.Index] {
					usable[d][next.Index] = true
					queue = append(queue, int32(next.Index))
				}
			}
		}
	}

	// Greatest fixed point: evict channels that cannot be blocked.
	inSet := make([]bool, n)
	for i := range inSet {
		inSet[i] = true
	}
	witness := make([]int, n) // witness destination per channel
	for changed := true; changed; {
		changed = false
		for c := 0; c < n; c++ {
			if !inSet[c] {
				continue
			}
			head := g.Channels()[c].Link.To
			blocked := false
			for d := 0; d < dsts && !blocked; d++ {
				if !usable[d][c] || topology.NodeID(d) == head {
					continue
				}
				reqs := succ[d][c]
				if len(reqs) == 0 {
					continue
				}
				all := true
				for _, r := range reqs {
					if !inSet[r] {
						all = false
						break
					}
				}
				if all {
					blocked = true
					witness[c] = d
				}
			}
			if !blocked {
				inSet[c] = false
				changed = true
			}
		}
	}

	cfg := &Configuration{}
	for c := 0; c < n; c++ {
		if !inSet[c] {
			continue
		}
		o := Occupant{Channel: g.Channels()[c], Dst: topology.NodeID(witness[c])}
		for _, r := range succ[witness[c]][c] {
			o.Requests = append(o.Requests, g.Channels()[r])
		}
		cfg.Occupants = append(cfg.Occupants, o)
	}
	if len(cfg.Occupants) == 0 {
		return nil
	}
	return cfg
}
