// Package stats provides the small statistics toolkit the simulator and
// experiment harness report with: streaming moments (Welford), exact
// percentiles over collected samples, histograms, and load-imbalance
// metrics (max/mean ratio and Gini coefficient) used to compare how evenly
// routing algorithms spread traffic over links.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Stream accumulates count, mean and variance without storing samples
// (Welford's algorithm).
type Stream struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add inserts a sample.
func (s *Stream) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// N returns the sample count.
func (s *Stream) N() int { return s.n }

// Mean returns the sample mean (0 with no samples).
func (s *Stream) Mean() float64 { return s.mean }

// Var returns the unbiased sample variance.
func (s *Stream) Var() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Std returns the sample standard deviation.
func (s *Stream) Std() float64 { return math.Sqrt(s.Var()) }

// Min and Max return the extremes (0 with no samples).
func (s *Stream) Min() float64 { return s.min }

// Max returns the largest sample.
func (s *Stream) Max() float64 { return s.max }

// String renders "mean=12.3 std=4.5 n=678 [1, 99]".
func (s *Stream) String() string {
	return fmt.Sprintf("mean=%.2f std=%.2f n=%d [%g, %g]", s.Mean(), s.Std(), s.n, s.min, s.max)
}

// Samples collects integer samples for exact percentile queries.
type Samples struct {
	xs     []int
	sorted bool
}

// Add inserts a sample.
func (s *Samples) Add(x int) {
	s.xs = append(s.xs, x)
	s.sorted = false
}

// N returns the sample count.
func (s *Samples) N() int { return len(s.xs) }

// Mean returns the sample mean.
func (s *Samples) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	sum := 0
	for _, x := range s.xs {
		sum += x
	}
	return float64(sum) / float64(len(s.xs))
}

func (s *Samples) sort() {
	if !s.sorted {
		sort.Ints(s.xs)
		s.sorted = true
	}
}

// Percentile returns the p-th percentile (p in [0, 100]) by the
// nearest-rank method; 0 with no samples.
func (s *Samples) Percentile(p float64) int {
	if len(s.xs) == 0 {
		return 0
	}
	s.sort()
	idx := int(p / 100 * float64(len(s.xs)))
	if idx >= len(s.xs) {
		idx = len(s.xs) - 1
	}
	return s.xs[idx]
}

// Max returns the largest sample (0 with no samples).
func (s *Samples) Max() int {
	if len(s.xs) == 0 {
		return 0
	}
	s.sort()
	return s.xs[len(s.xs)-1]
}

// Histogram builds a fixed-width histogram with the given bucket width.
type Histogram struct {
	Width   int
	Buckets map[int]int
	count   int
}

// NewHistogram returns a histogram with the given bucket width (>= 1).
func NewHistogram(width int) *Histogram {
	if width < 1 {
		width = 1
	}
	return &Histogram{Width: width, Buckets: map[int]int{}}
}

// Add inserts a sample.
func (h *Histogram) Add(x int) {
	h.Buckets[x/h.Width]++
	h.count++
}

// N returns the sample count.
func (h *Histogram) N() int { return h.count }

// String renders an ASCII bar chart, one line per bucket.
func (h *Histogram) String() string {
	if h.count == 0 {
		return "(empty)"
	}
	var keys []int
	maxCount := 0
	for k, c := range h.Buckets {
		keys = append(keys, k)
		if c > maxCount {
			maxCount = c
		}
	}
	sort.Ints(keys)
	var b strings.Builder
	for _, k := range keys {
		c := h.Buckets[k]
		bar := strings.Repeat("#", int(math.Ceil(40*float64(c)/float64(maxCount))))
		fmt.Fprintf(&b, "%6d-%-6d %7d %s\n", k*h.Width, (k+1)*h.Width-1, c, bar)
	}
	return b.String()
}

// LoadImbalance summarises how evenly a load vector (e.g. flits per link)
// is spread.
type LoadImbalance struct {
	// MaxOverMean is the peak-to-average ratio (1 = perfectly even).
	MaxOverMean float64
	// Gini is the Gini coefficient in [0, 1) (0 = perfectly even).
	Gini float64
}

// Imbalance computes load-imbalance metrics over a non-negative vector.
func Imbalance(loads []int) LoadImbalance {
	if len(loads) == 0 {
		return LoadImbalance{}
	}
	sum, max := 0, 0
	for _, l := range loads {
		sum += l
		if l > max {
			max = l
		}
	}
	if sum == 0 {
		return LoadImbalance{}
	}
	mean := float64(sum) / float64(len(loads))
	sorted := append([]int(nil), loads...)
	sort.Ints(sorted)
	// Gini = (2 * sum(i * x_i) / (n * sum(x)) ) - (n + 1) / n, with
	// 1-based ranks over ascending values.
	var weighted float64
	for i, x := range sorted {
		weighted += float64(i+1) * float64(x)
	}
	n := float64(len(sorted))
	gini := 2*weighted/(n*float64(sum)) - (n+1)/n
	return LoadImbalance{
		MaxOverMean: float64(max) / mean,
		Gini:        gini,
	}
}

// String renders the metrics.
func (l LoadImbalance) String() string {
	return fmt.Sprintf("max/mean=%.2f gini=%.3f", l.MaxOverMean, l.Gini)
}
