package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestStreamMoments(t *testing.T) {
	var s Stream
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Errorf("N = %d", s.N())
	}
	if math.Abs(s.Mean()-5) > 1e-9 {
		t.Errorf("mean = %f", s.Mean())
	}
	// Population variance is 4; sample variance is 32/7.
	if math.Abs(s.Var()-32.0/7) > 1e-9 {
		t.Errorf("var = %f", s.Var())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("min/max = %f/%f", s.Min(), s.Max())
	}
	if !strings.Contains(s.String(), "n=8") {
		t.Errorf("String = %q", s.String())
	}
}

func TestStreamEmptyAndSingle(t *testing.T) {
	var s Stream
	if s.Mean() != 0 || s.Std() != 0 {
		t.Error("empty stream should be zero")
	}
	s.Add(3)
	if s.Mean() != 3 || s.Var() != 0 {
		t.Error("single sample broken")
	}
}

func TestQuickStreamMatchesDirectComputation(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(50)
		xs := make([]float64, n)
		var s Stream
		for i := range xs {
			xs[i] = r.Float64()*100 - 50
			s.Add(xs[i])
		}
		mean := 0.0
		for _, x := range xs {
			mean += x
		}
		mean /= float64(n)
		varSum := 0.0
		for _, x := range xs {
			varSum += (x - mean) * (x - mean)
		}
		direct := varSum / float64(n-1)
		return math.Abs(s.Mean()-mean) < 1e-9 && math.Abs(s.Var()-direct) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSamplesPercentiles(t *testing.T) {
	var s Samples
	for i := 100; i >= 1; i-- { // insert descending to exercise sorting
		s.Add(i)
	}
	if s.N() != 100 || s.Mean() != 50.5 {
		t.Errorf("n=%d mean=%f", s.N(), s.Mean())
	}
	if got := s.Percentile(50); got != 51 {
		t.Errorf("p50 = %d", got)
	}
	if got := s.Percentile(99); got != 100 {
		t.Errorf("p99 = %d", got)
	}
	if got := s.Percentile(0); got != 1 {
		t.Errorf("p0 = %d", got)
	}
	if s.Max() != 100 {
		t.Errorf("max = %d", s.Max())
	}
	var empty Samples
	if empty.Percentile(50) != 0 || empty.Max() != 0 || empty.Mean() != 0 {
		t.Error("empty samples should be zero")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(10)
	for _, x := range []int{1, 5, 9, 10, 15, 25, 99} {
		h.Add(x)
	}
	if h.N() != 7 {
		t.Errorf("N = %d", h.N())
	}
	if h.Buckets[0] != 3 || h.Buckets[1] != 2 || h.Buckets[2] != 1 || h.Buckets[9] != 1 {
		t.Errorf("buckets = %v", h.Buckets)
	}
	out := h.String()
	if !strings.Contains(out, "#") || !strings.Contains(out, "90") {
		t.Errorf("render: %q", out)
	}
	if NewHistogram(0).Width != 1 {
		t.Error("width should clamp to 1")
	}
	if (NewHistogram(5)).String() != "(empty)" {
		t.Error("empty histogram render")
	}
}

func TestImbalance(t *testing.T) {
	even := Imbalance([]int{5, 5, 5, 5})
	if math.Abs(even.MaxOverMean-1) > 1e-9 || math.Abs(even.Gini) > 1e-9 {
		t.Errorf("even load: %+v", even)
	}
	skewed := Imbalance([]int{0, 0, 0, 20})
	if skewed.MaxOverMean != 4 {
		t.Errorf("skewed max/mean = %f", skewed.MaxOverMean)
	}
	if skewed.Gini < 0.7 {
		t.Errorf("skewed gini = %f", skewed.Gini)
	}
	if z := Imbalance(nil); z.MaxOverMean != 0 || z.Gini != 0 {
		t.Error("nil load should be zero")
	}
	if z := Imbalance([]int{0, 0}); z.MaxOverMean != 0 {
		t.Error("all-zero load should be zero")
	}
}

func TestQuickImbalanceBounds(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(30)
		loads := make([]int, n)
		sum := 0
		for i := range loads {
			loads[i] = r.Intn(100)
			sum += loads[i]
		}
		im := Imbalance(loads)
		if sum == 0 {
			return im.Gini == 0 && im.MaxOverMean == 0
		}
		return im.Gini >= -1e-9 && im.Gini < 1 && im.MaxOverMean >= 1-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
