package graphio

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"ebda/internal/cdg"
)

const goldenDir = "../../testdata/graphio"

func readGolden(t *testing.T, name string) []byte {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(goldenDir, name))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// snippetsExample is the constellation verify.py CDG from SNIPPETS.md
// §1: an xy-routing per-output graph for destination 8.
const snippetsExample = `24
1 2 3 4 5 6 7
8
1 17
2 8
3 17
4 19
5 23
6 19
7 23
17 8
19 8
23 19
`

func TestParseSnippetsExample(t *testing.T) {
	g, err := ParseCDG([]byte(snippetsExample))
	if err != nil {
		t.Fatal(err)
	}
	if g.Edges.NumNodes() != 24 || g.Edges.NumEdges() != 10 {
		t.Fatalf("parsed %d channels, %d edges", g.Edges.NumNodes(), g.Edges.NumEdges())
	}
	if len(g.Inputs) != 7 || len(g.Outputs) != 1 || g.Outputs[0] != 8 {
		t.Fatalf("annotations: in=%v out=%v", g.Inputs, g.Outputs)
	}
	for _, mode := range []cdg.GraphMode{cdg.ModeLoop, cdg.ModeLiveness, cdg.ModeSubrel} {
		rep, err := g.Verify(mode, nil)
		if err != nil || !rep.OK {
			t.Fatalf("%s: %+v err=%v", mode, rep, err)
		}
	}
	// Round trip is byte-stable: the example is already canonical.
	if got := g.ExportCDG(); !bytes.Equal(got, []byte(snippetsExample)) {
		t.Fatalf("export drifted:\n%s", got)
	}
}

// xyPerOutputGraph regenerates the committed xy3x3-out4.txt golden: a
// 3x3 mesh routed XY toward the centre node 4. Channels: injection i
// per node i (0..8, the inputs), ejection 9 (the output), then one
// channel per directed mesh link XY uses, ordered by (from, to) node.
func xyPerOutputGraph(t *testing.T) *Graph {
	t.Helper()
	links := [][2]int{{0, 1}, {1, 4}, {2, 1}, {3, 4}, {5, 4}, {6, 7}, {7, 4}, {8, 7}}
	linkCh := make(map[[2]int]int, len(links))
	for i, l := range links {
		linkCh[l] = 10 + i
	}
	var edges [][2]int
	seen := make(map[[2]int]bool)
	add := func(from, to int) {
		if !seen[[2]int{from, to}] {
			seen[[2]int{from, to}] = true
			edges = append(edges, [2]int{from, to})
		}
	}
	for src := 0; src < 9; src++ {
		x, y := src%3, src/3
		prev := src // injection channel
		for x != 1 || y != 1 {
			from := y*3 + x
			if x != 1 {
				x += sign(1 - x)
			} else {
				y += sign(1 - y)
			}
			ch := linkCh[[2]int{from, y*3 + x}]
			add(prev, ch)
			prev = ch
		}
		add(prev, 9)
	}
	g, err := New(18, []int{0, 1, 2, 3, 4, 5, 6, 7, 8}, []int{9}, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func sign(v int) int {
	if v < 0 {
		return -1
	}
	if v > 0 {
		return 1
	}
	return 0
}

func TestXYGoldenMatchesGenerator(t *testing.T) {
	want := readGolden(t, "xy3x3-out4.txt")
	if got := xyPerOutputGraph(t).ExportCDG(); !bytes.Equal(got, want) {
		t.Fatalf("golden drifted from generator:\n%s", got)
	}
}

func TestRoundTripGoldens(t *testing.T) {
	for _, name := range []string{"xy3x3-out4.txt", "cycle4.txt", "escape-ok.txt", "deadend.txt"} {
		data := readGolden(t, name)
		g, err := ParseCDG(data)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got := g.ExportCDG(); !bytes.Equal(got, data) {
			t.Fatalf("%s: round trip drifted:\n%s", name, got)
		}
		// Text -> JSON -> text lands on the same canonical bytes.
		g2, err := Parse(g.ExportJSON())
		if err != nil {
			t.Fatalf("%s: reparse JSON: %v", name, err)
		}
		if got := g2.ExportCDG(); !bytes.Equal(got, data) {
			t.Fatalf("%s: JSON round trip drifted:\n%s", name, got)
		}
	}
}

func TestJSONGoldenRoundTrip(t *testing.T) {
	data := readGolden(t, "escape-ok.json")
	g, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.ExportJSON(); !bytes.Equal(got, data) {
		t.Fatalf("JSON export drifted:\n%s", got)
	}
	text := readGolden(t, "escape-ok.txt")
	if got := g.ExportCDG(); !bytes.Equal(got, text) {
		t.Fatalf("JSON and text goldens disagree:\n%s", got)
	}
}

// TestGoldenVerdicts pins the constellation-style verdicts and witness
// shapes for every committed golden in all four modes.
func TestGoldenVerdicts(t *testing.T) {
	type want struct {
		mode   cdg.GraphMode
		escape []int
		ok     bool
		reason string
	}
	cases := map[string][]want{
		"xy3x3-out4.txt": {
			{mode: cdg.ModeLoop, ok: true},
			{mode: cdg.ModeLiveness, ok: true},
			{mode: cdg.ModeEscape, escape: []int{10, 11, 12, 13, 14, 15, 16, 17}, ok: true},
			{mode: cdg.ModeSubrel, ok: true},
		},
		"cycle4.txt": {
			{mode: cdg.ModeLoop, reason: cdg.ReasonCycle},
			{mode: cdg.ModeLiveness, reason: cdg.ReasonCycle},
			{mode: cdg.ModeEscape, escape: []int{2}, reason: cdg.ReasonEscapeStranded},
			{mode: cdg.ModeSubrel, reason: cdg.ReasonNoSubrel},
		},
		"escape-ok.txt": {
			{mode: cdg.ModeLoop, reason: cdg.ReasonCycle},
			{mode: cdg.ModeLiveness, reason: cdg.ReasonCycle},
			{mode: cdg.ModeEscape, escape: []int{4}, ok: true},
			{mode: cdg.ModeSubrel, ok: true},
		},
		"deadend.txt": {
			{mode: cdg.ModeLoop, ok: true},
			{mode: cdg.ModeLiveness, reason: cdg.ReasonDeadEnd},
			{mode: cdg.ModeEscape, escape: []int{1}, reason: cdg.ReasonEscapeStranded},
			{mode: cdg.ModeSubrel, reason: cdg.ReasonNoSubrel},
		},
	}
	for name, wants := range cases {
		g, err := ParseCDG(readGolden(t, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, w := range wants {
			rep, err := g.Verify(w.mode, w.escape)
			if err != nil {
				t.Fatalf("%s %s: %v", name, w.mode, err)
			}
			if rep.OK != w.ok || rep.Reason != w.reason {
				t.Fatalf("%s %s: got ok=%v reason=%q, want ok=%v reason=%q",
					name, w.mode, rep.OK, rep.Reason, w.ok, w.reason)
			}
			if !rep.OK && len(rep.Path) == 0 && len(rep.Cycle) == 0 {
				t.Fatalf("%s %s: violation without witness: %+v", name, w.mode, rep)
			}
			if w.mode == cdg.ModeSubrel && rep.OK && len(rep.Subrelation) == 0 {
				t.Fatalf("%s subrel: verified without a subrelation", name)
			}
		}
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	in := "# per-output CDG\n\n4\n0\n3\n# edges\n0 1\n\n1 2\n2 3\n"
	g, err := ParseCDG([]byte(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.Edges.NumEdges() != 3 {
		t.Fatalf("edges: %d", g.Edges.NumEdges())
	}
	// Export is canonical: comments and blank lines do not survive.
	want := "4\n0\n3\n0 1\n1 2\n2 3\n"
	if got := string(g.ExportCDG()); got != want {
		t.Fatalf("export: %q", got)
	}
}

func TestEmptyIDSets(t *testing.T) {
	g, err := ParseCDG([]byte("2\n\n\n0 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Inputs) != 0 || len(g.Outputs) != 0 {
		t.Fatalf("sets: in=%v out=%v", g.Inputs, g.Outputs)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want error
		line int
	}{
		{"empty", "", ErrMissingSection, 0},
		{"count only", "4\n", ErrMissingSection, 0},
		{"no outputs", "4\n0\n", ErrMissingSection, 0},
		{"bad count", "x\n0\n1\n", ErrChannelCount, 1},
		{"negative count", "-2\n\n\n", ErrChannelCount, 1},
		{"huge count", "99999999\n\n\n", ErrChannelCount, 1},
		{"input out of range", "2\n5\n1\n", ErrIDRange, 2},
		{"output out of range", "2\n0\n-1\n", ErrIDRange, 3},
		{"sender out of range", "2\n0\n1\n7 1\n", ErrIDRange, 4},
		{"receiver out of range", "2\n0\n1\n0 9\n", ErrIDRange, 4},
		{"duplicate edge", "3\n0\n2\n0 1\n0 1\n", ErrDuplicateEdge, 5},
		{"duplicate edge one line", "3\n0\n2\n0 1 1\n", ErrDuplicateEdge, 4},
		{"duplicate input", "3\n0 0\n2\n", ErrDuplicateID, 2},
		{"lonely sender", "3\n0\n2\n1\n", ErrSyntax, 4},
		{"non-numeric edge", "3\n0\n2\n0 x\n", ErrSyntax, 4},
	}
	for _, tc := range cases {
		_, err := ParseCDG([]byte(tc.in))
		if !errors.Is(err, tc.want) {
			t.Fatalf("%s: got %v, want %v", tc.name, err, tc.want)
		}
		var pe *ParseError
		if !errors.As(err, &pe) {
			t.Fatalf("%s: error %T is not a *ParseError", tc.name, err)
		}
		if tc.line > 0 && pe.Line != tc.line {
			t.Fatalf("%s: reported line %d, want %d", tc.name, pe.Line, tc.line)
		}
	}
}

func TestParseJSONErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want error
	}{
		{"unknown field", `{"channels":2,"inputs":[],"outputs":[],"edges":[],"extra":1}`, ErrSyntax},
		{"trailing data", `{"channels":2,"inputs":[],"outputs":[],"edges":[]} {}`, ErrSyntax},
		{"bad json", `{`, ErrSyntax},
		{"range", `{"channels":2,"inputs":[9],"outputs":[],"edges":[]}`, ErrIDRange},
		{"negative channels", `{"channels":-1,"inputs":[],"outputs":[],"edges":[]}`, ErrChannelCount},
		{"duplicate edge", `{"channels":2,"inputs":[],"outputs":[],"edges":[[0,1],[0,1]]}`, ErrDuplicateEdge},
	}
	for _, tc := range cases {
		if _, err := ParseJSON([]byte(tc.in)); !errors.Is(err, tc.want) {
			t.Fatalf("%s: got %v, want %v", tc.name, err, tc.want)
		}
	}
}

func TestParseSniffsJSON(t *testing.T) {
	g, err := Parse([]byte("  \n\t" + `{"channels":1,"inputs":[],"outputs":[0],"edges":[]}`))
	if err != nil || g.Edges.NumNodes() != 1 {
		t.Fatalf("sniff: %+v err=%v", g, err)
	}
}

func TestVerifyEscapeRange(t *testing.T) {
	g, err := New(2, []int{0}, []int{1}, [][2]int{{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Verify(cdg.ModeEscape, []int{7}); !errors.Is(err, ErrIDRange) {
		t.Fatalf("escape range: %v", err)
	}
}

// FuzzParseCDG: the parser must never panic on arbitrary bytes — only
// return typed errors — and every accepted graph must round-trip to
// canonical bytes stably.
func FuzzParseCDG(f *testing.F) {
	f.Add([]byte(snippetsExample))
	for _, name := range []string{"xy3x3-out4.txt", "cycle4.txt", "escape-ok.txt", "deadend.txt", "escape-ok.json"} {
		data, err := os.ReadFile(filepath.Join(goldenDir, name))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte("2\n\n\n0 1\n"))
	f.Add([]byte("# comment\n3\n0 1\n2\n0 2\n1 2\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := Parse(data)
		if err != nil {
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("untyped parse error %T: %v", err, err)
			}
			return
		}
		canon := g.ExportCDG()
		g2, err := ParseCDG(canon)
		if err != nil {
			t.Fatalf("canonical export does not reparse: %v\n%s", err, canon)
		}
		if again := g2.ExportCDG(); !bytes.Equal(canon, again) {
			t.Fatalf("export not stable:\n%s\n---\n%s", canon, again)
		}
	})
}
