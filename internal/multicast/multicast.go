// Package multicast implements the dual-path Hamiltonian multicast
// strategy of Lin & Ni that Section 6.2 of the paper derives from EbDa
// parity partitions: the mesh is ordered along a Hamiltonian snake, the
// destination set is split into the nodes above and below the source, and
// two worms visit them in label order — one on the "high" network
// (ascending labels: Xe+, Xo-, Y+), one on the "low" network (descending:
// Xe-, Xo+, Y-). Every hop either follows the snake or takes a vertical
// shortcut, so all turns lie inside the two partitions of
// paper.HamiltonianChain and the traffic is deadlock-free by Theorems 1-3.
package multicast

import (
	"fmt"
	"sort"

	"ebda/internal/channel"
	"ebda/internal/topology"
)

// Hamiltonian orders a 2D mesh along the row-snake Hamiltonian path:
// row 0 west-to-east, row 1 east-to-west, and so on.
type Hamiltonian struct {
	net    *topology.Network
	labels []int
	nodes  []topology.NodeID // label -> node
}

// New builds the Hamiltonian ordering for a 2D mesh.
func New(net *topology.Network) (*Hamiltonian, error) {
	if net.Dims() != 2 {
		return nil, fmt.Errorf("multicast: need a 2D mesh, got %d dimensions", net.Dims())
	}
	if net.Wrap(channel.X) || net.Wrap(channel.Y) {
		return nil, fmt.Errorf("multicast: wraparound not supported")
	}
	h := &Hamiltonian{
		net:    net,
		labels: make([]int, net.Nodes()),
		nodes:  make([]topology.NodeID, net.Nodes()),
	}
	k := net.Size(channel.X)
	for id := topology.NodeID(0); int(id) < net.Nodes(); id++ {
		c := net.Coord(id)
		label := c[1] * k
		if c[1]%2 == 0 {
			label += c[0]
		} else {
			label += k - 1 - c[0]
		}
		h.labels[id] = label
		h.nodes[label] = id
	}
	return h, nil
}

// Label returns a node's position on the Hamiltonian path.
func (h *Hamiltonian) Label(id topology.NodeID) int { return h.labels[id] }

// NodeAt returns the node at a path position.
func (h *Hamiltonian) NodeAt(label int) topology.NodeID { return h.nodes[label] }

// NextHop returns the neighbor to take from cur toward target on the high
// (ascending) or low (descending) network: among neighbors whose label
// lies strictly between cur's (exclusive) and target's (inclusive), the
// one closest to the target. This is the classic dual-path step; it always
// progresses because the snake neighbor qualifies.
func (h *Hamiltonian) NextHop(cur, target topology.NodeID, high bool) (topology.NodeID, error) {
	lc, lt := h.labels[cur], h.labels[target]
	if cur == target {
		return cur, nil
	}
	if high && lt < lc || !high && lt > lc {
		return 0, fmt.Errorf("multicast: target label %d on the wrong side of %d", lt, lc)
	}
	best := topology.NodeID(-1)
	bestLabel := -1
	for d := 0; d < 2; d++ {
		for _, sign := range []channel.Sign{channel.Plus, channel.Minus} {
			v, _, ok := h.net.Neighbor(cur, channel.Dim(d), sign)
			if !ok {
				continue
			}
			lv := h.labels[v]
			inRange := (high && lv > lc && lv <= lt) || (!high && lv < lc && lv >= lt)
			if !inRange {
				continue
			}
			better := best < 0 ||
				(high && lv > bestLabel) || (!high && lv < bestLabel)
			if better {
				best, bestLabel = v, lv
			}
		}
	}
	if best < 0 {
		return 0, fmt.Errorf("multicast: no progress from label %d toward %d", lc, lt)
	}
	return best, nil
}

// Route is a multicast delivery plan: up to two worm paths (high and low),
// each a node sequence starting at the source.
type Route struct {
	Src topology.NodeID
	// High visits the destinations with labels above the source in
	// ascending order; Low the ones below, descending. Either may be
	// empty.
	High, Low []topology.NodeID
}

// Hops returns the total link traversals of the plan.
func (r Route) Hops() int {
	hops := 0
	if len(r.High) > 1 {
		hops += len(r.High) - 1
	}
	if len(r.Low) > 1 {
		hops += len(r.Low) - 1
	}
	return hops
}

// DualPath plans the delivery of one message from src to every
// destination: destinations are split by label into the high and low sets
// and visited in path order by two worms.
func (h *Hamiltonian) DualPath(src topology.NodeID, dsts []topology.NodeID) (Route, error) {
	route := Route{Src: src}
	var high, low []topology.NodeID
	seen := map[topology.NodeID]bool{src: true}
	for _, d := range dsts {
		if seen[d] {
			continue
		}
		seen[d] = true
		if h.labels[d] > h.labels[src] {
			high = append(high, d)
		} else {
			low = append(low, d)
		}
	}
	sort.Slice(high, func(i, j int) bool { return h.labels[high[i]] < h.labels[high[j]] })
	sort.Slice(low, func(i, j int) bool { return h.labels[low[i]] > h.labels[low[j]] })
	var err error
	route.High, err = h.walk(src, high, true)
	if err != nil {
		return route, err
	}
	route.Low, err = h.walk(src, low, false)
	return route, err
}

// walk traces the worm path visiting the (sorted) destinations in order.
func (h *Hamiltonian) walk(src topology.NodeID, dsts []topology.NodeID, high bool) ([]topology.NodeID, error) {
	if len(dsts) == 0 {
		return nil, nil
	}
	path := []topology.NodeID{src}
	cur := src
	for _, d := range dsts {
		for cur != d {
			next, err := h.NextHop(cur, d, high)
			if err != nil {
				return nil, err
			}
			path = append(path, next)
			cur = next
		}
	}
	return path, nil
}

// PathClasses maps a worm path onto the abstract channel classes of the
// Hamiltonian partitioning (Xe+/Xo-/Y+ for high, mirrored for low), so
// callers can check every transition against an extracted turn set.
func (h *Hamiltonian) PathClasses(path []topology.NodeID) ([]channel.Class, error) {
	var out []channel.Class
	for i := 0; i+1 < len(path); i++ {
		a, b := h.net.Coord(path[i]), h.net.Coord(path[i+1])
		switch {
		case b[0] == a[0]+1 && b[1] == a[1]:
			out = append(out, xClass(a[1], channel.Plus))
		case b[0] == a[0]-1 && b[1] == a[1]:
			out = append(out, xClass(a[1], channel.Minus))
		case b[1] == a[1]+1 && b[0] == a[0]:
			out = append(out, channel.New(channel.Y, channel.Plus))
		case b[1] == a[1]-1 && b[0] == a[0]:
			out = append(out, channel.New(channel.Y, channel.Minus))
		default:
			return nil, fmt.Errorf("multicast: non-adjacent path step %v -> %v", a, b)
		}
	}
	return out, nil
}

// xClass returns the row-parity class of an X hop in row y.
func xClass(y int, sign channel.Sign) channel.Class {
	par := channel.Even
	if y%2 != 0 {
		par = channel.Odd
	}
	return channel.NewParity(channel.X, sign, channel.Y, par)
}

// UnicastHops returns the total hops of delivering to each destination
// with separate minimal unicasts — the baseline dual-path multicast is
// compared against.
func UnicastHops(net *topology.Network, src topology.NodeID, dsts []topology.NodeID) int {
	total := 0
	for _, d := range dsts {
		total += net.MinimalHops(src, d)
	}
	return total
}
