package multicast

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ebda/internal/channel"
	"ebda/internal/paper"
	"ebda/internal/topology"
)

func TestLabelsAreASnake(t *testing.T) {
	net := topology.NewMesh(4, 4)
	h, err := New(net)
	if err != nil {
		t.Fatal(err)
	}
	// Labels are a bijection and consecutive labels are adjacent nodes.
	for l := 0; l < net.Nodes(); l++ {
		if h.Label(h.NodeAt(l)) != l {
			t.Fatalf("label round trip failed at %d", l)
		}
		if l > 0 {
			a, b := net.Coord(h.NodeAt(l-1)), net.Coord(h.NodeAt(l))
			if net.MinimalHops(h.NodeAt(l-1), h.NodeAt(l)) != 1 {
				t.Fatalf("labels %d and %d not adjacent: %v %v", l-1, l, a, b)
			}
		}
	}
	// Row 0 runs west-to-east, row 1 east-to-west.
	if h.Label(net.ID(topology.Coord{0, 0})) != 0 || h.Label(net.ID(topology.Coord{3, 0})) != 3 {
		t.Error("row 0 ordering wrong")
	}
	if h.Label(net.ID(topology.Coord{3, 1})) != 4 {
		t.Error("row 1 should start at its east end")
	}
}

func TestNewRejectsBadNetworks(t *testing.T) {
	if _, err := New(topology.NewMesh(3, 3, 3)); err == nil {
		t.Error("3D should be rejected")
	}
	if _, err := New(topology.NewTorus(4, 4)); err == nil {
		t.Error("torus should be rejected")
	}
}

func TestDualPathVisitsAllDestinations(t *testing.T) {
	net := topology.NewMesh(5, 5)
	h, err := New(net)
	if err != nil {
		t.Fatal(err)
	}
	src := net.ID(topology.Coord{2, 2})
	dsts := []topology.NodeID{
		net.ID(topology.Coord{0, 0}),
		net.ID(topology.Coord{4, 4}),
		net.ID(topology.Coord{4, 0}),
		net.ID(topology.Coord{0, 4}),
		net.ID(topology.Coord{1, 3}),
	}
	route, err := h.DualPath(src, dsts)
	if err != nil {
		t.Fatal(err)
	}
	visited := map[topology.NodeID]bool{}
	for _, p := range [][]topology.NodeID{route.High, route.Low} {
		for _, n := range p {
			visited[n] = true
		}
	}
	for _, d := range dsts {
		if !visited[d] {
			t.Errorf("destination %v not visited", net.Coord(d))
		}
	}
	if route.Hops() == 0 {
		t.Error("no hops")
	}
}

func TestDualPathMonotoneLabels(t *testing.T) {
	net := topology.NewMesh(5, 5)
	h, _ := New(net)
	src := net.ID(topology.Coord{2, 2})
	var dsts []topology.NodeID
	for id := topology.NodeID(0); int(id) < net.Nodes(); id++ {
		if id != src {
			dsts = append(dsts, id)
		}
	}
	route, err := h.DualPath(src, dsts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(route.High); i++ {
		if h.Label(route.High[i]) <= h.Label(route.High[i-1]) {
			t.Fatal("high path labels must strictly ascend")
		}
	}
	for i := 1; i < len(route.Low); i++ {
		if h.Label(route.Low[i]) >= h.Label(route.Low[i-1]) {
			t.Fatal("low path labels must strictly descend")
		}
	}
}

func TestDualPathTurnsComplyWithEbDaPartitioning(t *testing.T) {
	// Every transition of every dual-path worm must be admitted by the
	// turn set extracted from the Section 6.2 Hamiltonian partitioning —
	// the mechanical justification that dual-path multicast traffic is
	// deadlock-free under Theorems 1-3.
	net := topology.NewMesh(6, 6)
	h, _ := New(net)
	ts := paper.HamiltonianChain().AllTurns()
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		src := topology.NodeID(r.Intn(net.Nodes()))
		var dsts []topology.NodeID
		for len(dsts) < 1+r.Intn(6) {
			d := topology.NodeID(r.Intn(net.Nodes()))
			if d != src {
				dsts = append(dsts, d)
			}
		}
		route, err := h.DualPath(src, dsts)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range [][]topology.NodeID{route.High, route.Low} {
			classes, err := h.PathClasses(p)
			if err != nil {
				t.Fatal(err)
			}
			for i := 1; i < len(classes); i++ {
				if !ts.Allows(classes[i-1], classes[i]) {
					t.Fatalf("turn %s -> %s not admitted by the Hamiltonian partitioning",
						classes[i-1], classes[i])
				}
			}
		}
	}
}

func TestBroadcastBeatsUnicasts(t *testing.T) {
	net := topology.NewMesh(6, 6)
	h, _ := New(net)
	src := net.ID(topology.Coord{0, 0})
	var dsts []topology.NodeID
	for id := topology.NodeID(1); int(id) < net.Nodes(); id++ {
		dsts = append(dsts, id)
	}
	route, err := h.DualPath(src, dsts)
	if err != nil {
		t.Fatal(err)
	}
	uni := UnicastHops(net, src, dsts)
	if route.Hops() >= uni {
		t.Errorf("broadcast dual-path hops %d should beat %d unicast hops", route.Hops(), uni)
	}
	// A broadcast from the path head needs at most ~N-1 hops on the high
	// path alone.
	if route.Hops() > net.Nodes() {
		t.Errorf("broadcast hops %d exceed node count", route.Hops())
	}
}

func TestQuickDualPathAlwaysDelivers(t *testing.T) {
	net := topology.NewMesh(5, 4)
	h, err := New(net)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		src := topology.NodeID(r.Intn(net.Nodes()))
		var dsts []topology.NodeID
		for i := 0; i < 1+r.Intn(8); i++ {
			dsts = append(dsts, topology.NodeID(r.Intn(net.Nodes())))
		}
		route, err := h.DualPath(src, dsts)
		if err != nil {
			return false
		}
		visited := map[topology.NodeID]bool{src: true}
		for _, p := range [][]topology.NodeID{route.High, route.Low} {
			for _, n := range p {
				visited[n] = true
			}
		}
		for _, d := range dsts {
			if !visited[d] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPathClassesParity(t *testing.T) {
	net := topology.NewMesh(4, 4)
	h, _ := New(net)
	// Path east along row 1 (odd): classes must be Xo+.
	path := []topology.NodeID{
		net.ID(topology.Coord{0, 1}),
		net.ID(topology.Coord{1, 1}),
	}
	classes, err := h.PathClasses(path)
	if err != nil {
		t.Fatal(err)
	}
	want := channel.NewParity(channel.X, channel.Plus, channel.Y, channel.Odd)
	if classes[0] != want {
		t.Errorf("class = %v, want %v", classes[0], want)
	}
	// Non-adjacent steps are rejected.
	bad := []topology.NodeID{net.ID(topology.Coord{0, 0}), net.ID(topology.Coord{2, 0})}
	if _, err := h.PathClasses(bad); err == nil {
		t.Error("non-adjacent step should fail")
	}
}
