package cdg

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"

	"ebda/internal/channel"
	"ebda/internal/topology"
)

// Verify-cache snapshots let a replica warm-start from another's (or
// its own previous) memoized verdicts: ebda-serve saves one on a clean
// drain and loads one before serving, and the cluster load generator
// uses them to prove a cold replica answers its first hot-key request
// from cache. The format is a versioned, length-prefixed binary stream
// with an integrity hash:
//
//	magic   [8]byte  "EBDASNAP"
//	version uint32   (currently 1)
//	count   uint64   entry count
//	entry*  key uint64, check uint64, replen uint32, report[replen]
//	trailer uint64   FNV-1a 64 over every preceding byte
//
// where each report is:
//
//	nlen uint32, network [nlen]byte
//	channels uint64, edges uint64, acyclic byte
//	cyclen uint32, cycle channel*
//
// and each cycle channel is:
//
//	from uint64, to uint64, dim uint64, sign byte (0 plus / 1 minus),
//	wrap byte, vc uint64, index uint64
//
// All integers are little-endian and fixed-width. Entries are written
// in ascending key order, so equal cache contents produce byte-equal
// snapshots. The loader verifies the magic, the version and the
// trailer hash over the full stream before inserting anything, so a
// truncated or bit-flipped file changes nothing.

// Snapshot load errors. ErrSnapshotVersion marks a version the reader
// does not speak (a skewed replica); ErrSnapshotCorrupt marks
// everything else — bad magic, truncation, implausible lengths or a
// trailer hash mismatch. Both are matchable with errors.Is.
var (
	ErrSnapshotCorrupt = errors.New("cdg: cache snapshot corrupt")
	ErrSnapshotVersion = errors.New("cdg: cache snapshot version unsupported")
)

const (
	snapshotVersion = 1
	// snapMaxEntries / snapMaxCycle / snapMaxName bound decoded lengths:
	// anything larger than the cache could plausibly hold is corruption,
	// not data, and must not drive allocation.
	snapMaxEntries = 1 << 24
	snapMaxCycle   = 1 << 20
	snapMaxName    = 1 << 12
)

var snapshotMagic = [8]byte{'E', 'B', 'D', 'A', 'S', 'N', 'A', 'P'}

// fnvWriter hashes every byte it forwards (FNV-1a 64); the running sum
// is the snapshot's integrity trailer.
type fnvWriter struct {
	w   io.Writer
	sum uint64
}

func (f *fnvWriter) Write(p []byte) (int, error) {
	for _, b := range p {
		f.sum = (f.sum ^ uint64(b)) * 0x100000001b3
	}
	return f.w.Write(p)
}

// fnvReader is the reading side of fnvWriter.
type fnvReader struct {
	r   io.Reader
	sum uint64
}

func (f *fnvReader) Read(p []byte) (int, error) {
	n, err := f.r.Read(p)
	for _, b := range p[:n] {
		f.sum = (f.sum ^ uint64(b)) * 0x100000001b3
	}
	return n, err
}

const fnvOffset = 0xcbf29ce484222325

// SaveSnapshot writes the cache's current entries to w and returns how
// many it wrote. The entry set is captured under the lock, then encoded
// outside it, so concurrent verifications are never blocked on I/O.
// Reports are deep-copied by encoding; the snapshot shares no memory
// with live cache entries.
func (c *VerifyCache) SaveSnapshot(w io.Writer) (int, error) {
	type keyed struct {
		key uint64
		e   cacheEntry
	}
	c.mu.RLock()
	entries := make([]keyed, 0, len(c.m))
	for k, e := range c.m {
		entries = append(entries, keyed{key: k, e: e})
	}
	c.mu.RUnlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].key < entries[j].key })

	fw := &fnvWriter{w: bufio.NewWriter(w), sum: fnvOffset}
	if _, err := fw.Write(snapshotMagic[:]); err != nil {
		return 0, err
	}
	if err := putU32(fw, snapshotVersion); err != nil {
		return 0, err
	}
	if err := putU64(fw, uint64(len(entries))); err != nil {
		return 0, err
	}
	var repBuf []byte
	for _, kv := range entries {
		repBuf = appendReport(repBuf[:0], kv.e.rep)
		if err := putU64(fw, kv.key); err != nil {
			return 0, err
		}
		if err := putU64(fw, kv.e.check); err != nil {
			return 0, err
		}
		if err := putU32(fw, uint32(len(repBuf))); err != nil {
			return 0, err
		}
		if _, err := fw.Write(repBuf); err != nil {
			return 0, err
		}
	}
	// The trailer is the hash of everything before it, so it bypasses
	// the hashing writer.
	sum := fw.sum
	var tail [8]byte
	binary.LittleEndian.PutUint64(tail[:], sum)
	if _, err := fw.w.Write(tail[:]); err != nil {
		return 0, err
	}
	if err := fw.w.(*bufio.Writer).Flush(); err != nil {
		return 0, err
	}
	obsSnapshotSaved.Add(uint64(len(entries)))
	return len(entries), nil
}

// LoadSnapshot reads a snapshot from r and merges its entries into the
// cache, returning how many entries the stream carried. The stream is
// fully decoded and its trailer hash verified before the first insert —
// a corrupt or truncated snapshot changes nothing. Inserts follow the
// cache's normal epoch semantics: past maxCacheEntries the map is
// flushed wholesale and the dropped entries counted as evictions, so a
// snapshot larger than the cache bound warm-starts the tail of its key
// order rather than growing without limit. Loading is safe against
// concurrent verifications and eviction flushes; a load never replaces
// an entry with a report for a different verification (keys carry their
// independent check hashes through the file).
func (c *VerifyCache) LoadSnapshot(r io.Reader) (int, error) {
	fr := &fnvReader{r: bufio.NewReader(r), sum: fnvOffset}
	var magic [8]byte
	if _, err := io.ReadFull(fr, magic[:]); err != nil {
		return 0, fmt.Errorf("%w: short magic: %v", ErrSnapshotCorrupt, err)
	}
	if magic != snapshotMagic {
		return 0, fmt.Errorf("%w: bad magic %q", ErrSnapshotCorrupt, magic[:])
	}
	version, err := getU32(fr)
	if err != nil {
		return 0, fmt.Errorf("%w: short version: %v", ErrSnapshotCorrupt, err)
	}
	if version != snapshotVersion {
		return 0, fmt.Errorf("%w: version %d, reader speaks %d", ErrSnapshotVersion, version, snapshotVersion)
	}
	count, err := getU64(fr)
	if err != nil {
		return 0, fmt.Errorf("%w: short entry count: %v", ErrSnapshotCorrupt, err)
	}
	if count > snapMaxEntries {
		return 0, fmt.Errorf("%w: implausible entry count %d", ErrSnapshotCorrupt, count)
	}
	type keyed struct {
		key uint64
		e   cacheEntry
	}
	entries := make([]keyed, 0, count)
	for i := uint64(0); i < count; i++ {
		key, err := getU64(fr)
		if err != nil {
			return 0, fmt.Errorf("%w: entry %d: short key: %v", ErrSnapshotCorrupt, i, err)
		}
		check, err := getU64(fr)
		if err != nil {
			return 0, fmt.Errorf("%w: entry %d: short check: %v", ErrSnapshotCorrupt, i, err)
		}
		replen, err := getU32(fr)
		if err != nil {
			return 0, fmt.Errorf("%w: entry %d: short report length: %v", ErrSnapshotCorrupt, i, err)
		}
		if replen > snapMaxName+snapMaxCycle*48+64 {
			return 0, fmt.Errorf("%w: entry %d: implausible report length %d", ErrSnapshotCorrupt, i, replen)
		}
		buf := make([]byte, replen)
		if _, err := io.ReadFull(fr, buf); err != nil {
			return 0, fmt.Errorf("%w: entry %d: short report: %v", ErrSnapshotCorrupt, i, err)
		}
		rep, err := decodeReport(buf)
		if err != nil {
			return 0, fmt.Errorf("%w: entry %d: %v", ErrSnapshotCorrupt, i, err)
		}
		entries = append(entries, keyed{key: key, e: cacheEntry{check: check, rep: rep}})
	}
	// The trailer hash covers everything read so far; capture the sum
	// before the trailer itself passes through the hashing reader.
	want := fr.sum
	got, err := getU64(fr)
	if err != nil {
		return 0, fmt.Errorf("%w: short trailer: %v", ErrSnapshotCorrupt, err)
	}
	if got != want {
		return 0, fmt.Errorf("%w: integrity hash mismatch (file %x, computed %x)", ErrSnapshotCorrupt, got, want)
	}
	if _, err := fr.Read(make([]byte, 1)); err != io.EOF {
		return 0, fmt.Errorf("%w: trailing data after trailer", ErrSnapshotCorrupt)
	}

	c.mu.Lock()
	if c.m == nil {
		c.m = make(map[uint64]cacheEntry, len(entries))
	}
	for _, kv := range entries {
		if len(c.m) >= maxCacheEntries {
			if n := len(c.m); n > 0 {
				c.evictions.Add(uint64(n))
				obsCacheEvictions.Add(uint64(n))
			}
			c.m = make(map[uint64]cacheEntry)
		}
		c.m[kv.key] = kv.e
	}
	obsCacheEntries.Set(int64(len(c.m)))
	c.mu.Unlock()
	obsSnapshotLoaded.Add(uint64(len(entries)))
	return len(entries), nil
}

// appendReport encodes one report onto buf.
func appendReport(buf []byte, rep Report) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(rep.Network)))
	buf = append(buf, rep.Network...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(rep.Channels))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(rep.Edges))
	if rep.Acyclic {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(rep.Cycle)))
	for _, ch := range rep.Cycle {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(ch.Link.From))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(ch.Link.To))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(ch.Link.Dim))
		if ch.Link.Sign == channel.Minus {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
		if ch.Link.Wrap {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
		buf = binary.LittleEndian.AppendUint64(buf, uint64(ch.VC))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(ch.Index))
	}
	return buf
}

// decodeReport decodes one report from its length-prefixed buffer. It
// returns plain errors; LoadSnapshot wraps them as ErrSnapshotCorrupt.
func decodeReport(buf []byte) (Report, error) {
	var rep Report
	nlen, buf, err := takeU32(buf)
	if err != nil || nlen > snapMaxName {
		return rep, fmt.Errorf("bad network length")
	}
	if uint32(len(buf)) < nlen {
		return rep, fmt.Errorf("short network name")
	}
	rep.Network = string(buf[:nlen])
	buf = buf[nlen:]
	var v uint64
	if v, buf, err = takeU64(buf); err != nil {
		return rep, fmt.Errorf("short channels")
	}
	rep.Channels = int(v)
	if v, buf, err = takeU64(buf); err != nil {
		return rep, fmt.Errorf("short edges")
	}
	rep.Edges = int(v)
	if len(buf) < 1 {
		return rep, fmt.Errorf("short acyclic flag")
	}
	switch buf[0] {
	case 0:
		rep.Acyclic = false
	case 1:
		rep.Acyclic = true
	default:
		return rep, fmt.Errorf("bad acyclic flag %d", buf[0])
	}
	buf = buf[1:]
	cyclen, buf, err := takeU32(buf)
	if err != nil || cyclen > snapMaxCycle {
		return rep, fmt.Errorf("bad cycle length")
	}
	if cyclen > 0 {
		rep.Cycle = make([]Channel, cyclen)
		for i := range rep.Cycle {
			var from, to, dim, vc, index uint64
			if from, buf, err = takeU64(buf); err != nil {
				return rep, fmt.Errorf("short cycle channel")
			}
			if to, buf, err = takeU64(buf); err != nil {
				return rep, fmt.Errorf("short cycle channel")
			}
			if dim, buf, err = takeU64(buf); err != nil {
				return rep, fmt.Errorf("short cycle channel")
			}
			if len(buf) < 2 {
				return rep, fmt.Errorf("short cycle channel flags")
			}
			sign := channel.Plus
			if buf[0] == 1 {
				sign = channel.Minus
			}
			wrap := buf[1] == 1
			buf = buf[2:]
			if vc, buf, err = takeU64(buf); err != nil {
				return rep, fmt.Errorf("short cycle channel")
			}
			if index, buf, err = takeU64(buf); err != nil {
				return rep, fmt.Errorf("short cycle channel")
			}
			rep.Cycle[i] = Channel{
				Link: topology.Link{
					From: topology.NodeID(from),
					To:   topology.NodeID(to),
					Dim:  channel.Dim(dim),
					Sign: sign,
					Wrap: wrap,
				},
				VC:    int(vc),
				Index: int(index),
			}
		}
	}
	if len(buf) != 0 {
		return rep, fmt.Errorf("%d trailing bytes in report", len(buf))
	}
	return rep, nil
}

func putU32(w io.Writer, v uint32) error {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	_, err := w.Write(b[:])
	return err
}

func putU64(w io.Writer, v uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	_, err := w.Write(b[:])
	return err
}

func getU32(r io.Reader) (uint32, error) {
	var b [4]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

func getU64(r io.Reader) (uint64, error) {
	var b [8]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

func takeU32(buf []byte) (uint32, []byte, error) {
	if len(buf) < 4 {
		return 0, buf, io.ErrUnexpectedEOF
	}
	return binary.LittleEndian.Uint32(buf), buf[4:], nil
}

func takeU64(buf []byte) (uint64, []byte, error) {
	if len(buf) < 8 {
		return 0, buf, io.ErrUnexpectedEOF
	}
	return binary.LittleEndian.Uint64(buf), buf[8:], nil
}
