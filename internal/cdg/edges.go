package cdg

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// This file is the engine's first topology-free surface: an EdgeSet is a
// channel dependency graph stripped down to "n nodes, directed edges",
// verified through the identical Kahn peel + residual DFS that powers
// VerifyTurnSet. The paper's reduction — deadlock freedom iff the
// dependency graph is acyclic — does not care that our concrete channels
// happen to be (link, VC) pairs of a mesh; any wait-for relation reduced
// to dense indices gets the same verdict machinery, the same determinism
// guarantees, and the same cached entry-point discipline. The first
// client is deadlint (internal/lint), which verifies the repository's own
// lock-acquisition/wait graph; the ROADMAP's "abstract channel graph"
// refactor is the second.

// EdgeSet is an abstract directed dependency graph over n dense node
// indices [0, n). Adjacency rows are kept sorted ascending and
// duplicate-free, so verification output is independent of insertion
// order.
type EdgeSet struct {
	adj   [][]int32
	edges int
}

// NewEdgeSet returns an empty edge set over n nodes.
func NewEdgeSet(n int) *EdgeSet {
	if n < 0 {
		n = 0
	}
	return &EdgeSet{adj: make([][]int32, n)}
}

// NumNodes returns the node count.
func (e *EdgeSet) NumNodes() int { return len(e.adj) }

// NumEdges returns the number of distinct edges added.
func (e *EdgeSet) NumEdges() int { return e.edges }

// AddEdge adds the directed edge from -> to (self-edges allowed: a node
// that depends on itself is a one-node cycle) and reports whether it was
// new. Out-of-range endpoints panic — callers map their domain onto dense
// indices first.
func (e *EdgeSet) AddEdge(from, to int) bool {
	if from < 0 || from >= len(e.adj) || to < 0 || to >= len(e.adj) {
		panic(fmt.Sprintf("cdg: EdgeSet.AddEdge(%d, %d) outside [0, %d)", from, to, len(e.adj)))
	}
	row := e.adj[from]
	i := sort.Search(len(row), func(k int) bool { return row[k] >= int32(to) })
	if i < len(row) && row[i] == int32(to) {
		return false
	}
	row = append(row, 0)
	copy(row[i+1:], row[i:])
	row[i] = int32(to)
	e.adj[from] = row
	e.edges++
	return true
}

// HasEdge reports whether the directed edge exists.
func (e *EdgeSet) HasEdge(from, to int) bool {
	if from < 0 || from >= len(e.adj) {
		return false
	}
	row := e.adj[from]
	i := sort.Search(len(row), func(k int) bool { return row[k] >= int32(to) })
	return i < len(row) && row[i] == int32(to)
}

// Succs returns the successors of a node, ascending. The slice must not
// be modified.
func (e *EdgeSet) Succs(i int) []int32 { return e.adj[i] }

// Fingerprint returns an order-independent dual 64-bit digest of the
// edge set (node count included): two sets digest equal iff built from
// the same nodes and edges, regardless of AddEdge order. It is the
// EdgeCache's identity, mirroring core.TurnSet.Fingerprint.
func (e *EdgeSet) Fingerprint() (uint64, uint64) {
	const (
		edgeSeedA = 0x8f14e45fceea167a
		edgeSeedB = 0x6c62272e07bb0142
	)
	h1 := mix64(uint64(len(e.adj)) ^ edgeSeedA)
	h2 := mix64(uint64(len(e.adj)) ^ edgeSeedB)
	for from, row := range e.adj {
		for _, to := range row {
			// Ordered pair combination, so a->b and b->a digest
			// differently; per-edge mixes sum commutatively.
			v := uint64(uint32(from))*0x100000001b3 ^ uint64(uint32(to))
			h1 += mix64(v ^ edgeSeedA)
			h2 += mix64(v ^ edgeSeedB)
		}
	}
	return h1, h2
}

// EdgeReport is the verdict for an abstract edge set: the analogue of
// Report for graphs with no underlying network.
type EdgeReport struct {
	Nodes   int
	Edges   int
	Acyclic bool
	// Cycle holds one dependency cycle as node indices in dependency
	// order (the last element depends on the first) when Acyclic is
	// false.
	Cycle []int
}

// String renders the report on one line.
func (r EdgeReport) String() string {
	status := "ACYCLIC (deadlock-free)"
	if !r.Acyclic {
		parts := make([]string, len(r.Cycle))
		for i, v := range r.Cycle {
			parts[i] = fmt.Sprintf("n%d", v)
		}
		status = "CYCLIC: " + strings.Join(parts, " => ") + " => (repeat)"
	}
	return fmt.Sprintf("edge-set: %d nodes, %d edges: %s", r.Nodes, r.Edges, status)
}

// VerifyEdgeSet checks an abstract edge set for acyclicity using every
// available core: the same parallel Kahn peel and residual-only cycle DFS
// as the concrete verification path, so the verdict and witness are
// bit-identical for every worker count.
func VerifyEdgeSet(e *EdgeSet) EdgeReport { return VerifyEdgeSetJobs(e, 0) }

// VerifyEdgeSetJobs is VerifyEdgeSet over a bounded worker pool (jobs <=
// 0 means all cores).
func VerifyEdgeSetJobs(e *EdgeSet, jobs int) EdgeReport {
	obsEdgeVerifies.Inc()
	var st acyclicState
	rep := EdgeReport{Nodes: len(e.adj), Edges: e.edges}
	peeled, _ := kahnPeelAdj(context.Background(), e.adj, jobs, &st)
	if peeled == len(e.adj) {
		rep.Acyclic = true
		return rep
	}
	obsEdgeCyclic.Inc()
	idx := findCycleResidualAdj(e.adj, &st)
	rep.Cycle = make([]int, len(idx))
	for i, v := range idx {
		rep.Cycle[i] = int(v)
	}
	return rep
}

// EdgeCache memoizes edge-set verdicts by the set's order-independent
// fingerprint, with the same dual-hash discipline as VerifyCache: each
// entry stores an independently derived check hash, and a key match with
// a check mismatch is a miss, never a wrong report. Cached reports share
// their Cycle slice; callers must treat it as read-only.
type EdgeCache struct {
	mu sync.RWMutex
	m  map[uint64]edgeCacheEntry

	hits   atomic.Uint64
	misses atomic.Uint64
}

type edgeCacheEntry struct {
	check uint64
	rep   EdgeReport
}

// DefaultEdgeCache is the process-wide edge-set cache behind
// VerifyEdgeSetCached.
var DefaultEdgeCache = &EdgeCache{}

// EdgeKey exposes the cache's dual-hash identity of an edge-set
// verification, decorrelated from the VerifyKey and DeltaKey families by
// its own seeds.
func EdgeKey(e *EdgeSet) (key, check uint64) {
	const (
		edgeKeySeedA = 0x2545f4914f6cdd1d
		edgeKeySeedB = 0x9e6c63d0876a9a47
	)
	f1, f2 := e.Fingerprint()
	return mix64(f1 ^ edgeKeySeedA), mix64(f2*0x100000001b3 + edgeKeySeedB)
}

// Stats returns current hit/miss counters and the live entry count.
func (c *EdgeCache) Stats() CacheStats {
	c.mu.RLock()
	n := len(c.m)
	c.mu.RUnlock()
	return CacheStats{Hits: c.hits.Load(), Misses: c.misses.Load(), Entries: n}
}

// Reset clears all entries and counters.
func (c *EdgeCache) Reset() {
	c.mu.Lock()
	c.m = nil
	c.mu.Unlock()
	c.hits.Store(0)
	c.misses.Store(0)
}

// VerifyEdgeSetJobs returns the memoized verdict for the edge set,
// computing and caching it on a miss (jobs <= 0 means all cores).
// Reports are identical to the uncached path for every jobs value.
func (c *EdgeCache) VerifyEdgeSetJobs(e *EdgeSet, jobs int) EdgeReport {
	key, check := EdgeKey(e)
	c.mu.RLock()
	ent, ok := c.m[key]
	c.mu.RUnlock()
	if ok && ent.check == check {
		c.hits.Add(1)
		obsEdgeCacheHits.Inc()
		return ent.rep
	}
	c.misses.Add(1)
	obsEdgeCacheMisses.Inc()
	rep := VerifyEdgeSetJobs(e, jobs)
	c.mu.Lock()
	if c.m == nil || len(c.m) >= maxCacheEntries {
		c.m = make(map[uint64]edgeCacheEntry)
	}
	c.m[key] = edgeCacheEntry{check: check, rep: rep}
	c.mu.Unlock()
	return rep
}

// VerifyEdgeSetCached is VerifyEdgeSet through the DefaultEdgeCache — the
// blessed entry point for tooling that verifies abstract dependency
// graphs (deadlint's lock-order graph flows through here; the verifygate
// discipline of "verdicts come from the cached engine" applies to the
// checker itself).
func VerifyEdgeSetCached(e *EdgeSet) EdgeReport {
	return DefaultEdgeCache.VerifyEdgeSetJobs(e, 0)
}
