package cdg

import (
	"testing"

	"ebda/internal/core"
	"ebda/internal/topology"
)

// The tentpole perf claim: re-verifying an 8x8 mesh after a single-link
// change through the retained workspace must cost a few percent of a full
// verification. BenchmarkVerifyDelta and BenchmarkVerifyFull measure the
// two sides; cmd/ebda-deltabench records their ratio in BENCH_delta.json
// and ebda-benchdiff gates it.

func benchSetup(b *testing.B) (*topology.Network, VCConfig, *core.TurnSet, []topology.Link) {
	b.Helper()
	net := topology.NewMesh(8, 8)
	ts := core.MustParseChain("PA[X+ X- Y-] -> PB[Y+]").AllTurns()
	return net, nil, ts, net.Links()
}

func BenchmarkVerifyDelta(b *testing.B) {
	net, vcs, ts, links := benchSetup(b)
	dw, err := NewDeltaWorkspace(net, vcs, ts)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		diff := Diff{RemoveLinks: []topology.Link{links[i%len(links)]}}
		if _, err := dw.VerifyDiffJobs(diff, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVerifyDeltaTurnToggle(b *testing.B) {
	net, vcs, ts, _ := benchSetup(b)
	dw, err := NewDeltaWorkspace(net, vcs, ts)
	if err != nil {
		b.Fatal(err)
	}
	turns := ts.Turns()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		diff := Diff{DisableTurns: []core.Turn{turns[i%len(turns)]}}
		if _, err := dw.VerifyDiffJobs(diff, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVerifyFull(b *testing.B) {
	net, vcs, ts, links := benchSetup(b)
	// Verify the same faulty variants the delta benchmark checks, the
	// pre-delta way: derive the faulty network and run the pooled full
	// verification.
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		derived := net.WithoutLinks([]topology.Link{links[i%len(links)]})
		rep := VerifyTurnSetJobs(derived, vcs, ts, 1)
		if rep.Channels == 0 {
			b.Fatal("empty report")
		}
	}
}

// BenchmarkVerifyFullRetained isolates the verification cost from the
// network derivation: a full rebuild + peel on the retained base shape.
func BenchmarkVerifyFullRetained(b *testing.B) {
	net, vcs, ts, _ := benchSetup(b)
	ws := NewWorkspace(net, vcs)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rep := ws.VerifyTurnSetJobs(ts, 1); rep.Channels == 0 {
			b.Fatal("empty report")
		}
	}
}
