package cdg

import (
	"bytes"
	"encoding/binary"
	"errors"
	"reflect"
	"sync"
	"testing"

	"ebda/internal/topology"
)

// snapshotCache builds a cache holding both acyclic and cyclic verdicts
// (cyclic entries carry Cycle witnesses, exercising the full report
// codec) and returns it with the design list used to populate it.
func snapshotCache(t *testing.T) (*VerifyCache, []*topology.Network) {
	t.Helper()
	c := &VerifyCache{}
	nets := []*topology.Network{
		topology.NewMesh(4, 4),
		topology.NewMesh(3, 5),
		topology.NewTorus(4, 4),
		topology.NewPartialMesh3D(3, 3, 2, [][2]int{{0, 0}}),
	}
	for _, net := range nets {
		c.VerifyTurnSetJobs(net, nil, xyTurnSet(), 1)
		c.VerifyTurnSetJobs(net, nil, allTurnSet(), 1)
	}
	return c, nets
}

func TestSnapshotRoundTrip(t *testing.T) {
	src, nets := snapshotCache(t)
	var buf bytes.Buffer
	saved, err := src.SaveSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if want := src.Stats().Entries; saved != want {
		t.Fatalf("saved %d entries, cache holds %d", saved, want)
	}

	dst := &VerifyCache{}
	loaded, err := dst.LoadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if loaded != saved {
		t.Fatalf("loaded %d entries, saved %d", loaded, saved)
	}

	// Every lookup through the warm-started cache must be bit-identical
	// to the source, via both the shape probe and the raw-key probe.
	for _, net := range nets {
		for _, mk := range []int{0, 1} {
			ts := xyTurnSet()
			if mk == 1 {
				ts = allTurnSet()
			}
			want, ok := src.Lookup(net, nil, ts)
			if !ok {
				t.Fatalf("%s: source cache lost an entry", net.Name())
			}
			got, ok := dst.Lookup(net, nil, ts)
			if !ok {
				t.Fatalf("%s: warm-started cache misses", net.Name())
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("%s: report diverged after round-trip:\n%+v\nvs\n%+v", net.Name(), want, got)
			}
			key, check := VerifyKey(net, nil, ts)
			byKey, ok := dst.LookupKey(key, check)
			if !ok || !reflect.DeepEqual(want, byKey) {
				t.Fatalf("%s: LookupKey diverged after round-trip", net.Name())
			}
		}
	}
}

func TestSnapshotDeterministicBytes(t *testing.T) {
	// Equal cache contents must produce byte-equal snapshots regardless
	// of map iteration order: entries are sorted by key on save.
	c, _ := snapshotCache(t)
	var a, b bytes.Buffer
	if _, err := c.SaveSnapshot(&a); err != nil {
		t.Fatal(err)
	}
	if _, err := c.SaveSnapshot(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two saves of one cache produced different bytes")
	}
}

func TestSnapshotEmptyCache(t *testing.T) {
	c := &VerifyCache{}
	var buf bytes.Buffer
	if n, err := c.SaveSnapshot(&buf); err != nil || n != 0 {
		t.Fatalf("empty save = (%d, %v)", n, err)
	}
	d := &VerifyCache{}
	if n, err := d.LoadSnapshot(bytes.NewReader(buf.Bytes())); err != nil || n != 0 {
		t.Fatalf("empty load = (%d, %v)", n, err)
	}
}

func TestSnapshotRejectsCorruption(t *testing.T) {
	c, _ := snapshotCache(t)
	var buf bytes.Buffer
	if _, err := c.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	t.Run("bad magic", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[0] ^= 0xff
		d := &VerifyCache{}
		if _, err := d.LoadSnapshot(bytes.NewReader(bad)); !errors.Is(err, ErrSnapshotCorrupt) {
			t.Fatalf("err = %v, want ErrSnapshotCorrupt", err)
		}
		if d.Stats().Entries != 0 {
			t.Fatal("corrupt load mutated the cache")
		}
	})

	t.Run("version skew", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		binary.LittleEndian.PutUint32(bad[8:], snapshotVersion+1)
		d := &VerifyCache{}
		if _, err := d.LoadSnapshot(bytes.NewReader(bad)); !errors.Is(err, ErrSnapshotVersion) {
			t.Fatalf("err = %v, want ErrSnapshotVersion", err)
		}
		if d.Stats().Entries != 0 {
			t.Fatal("version-skewed load mutated the cache")
		}
	})

	t.Run("bit flip in body", func(t *testing.T) {
		// Flip one bit in the middle of the entry region: either a
		// decoded length goes implausible or the trailer hash catches it.
		bad := append([]byte(nil), good...)
		bad[len(bad)/2] ^= 0x01
		d := &VerifyCache{}
		if _, err := d.LoadSnapshot(bytes.NewReader(bad)); !errors.Is(err, ErrSnapshotCorrupt) {
			t.Fatalf("err = %v, want ErrSnapshotCorrupt", err)
		}
		if d.Stats().Entries != 0 {
			t.Fatal("bit-flipped load mutated the cache")
		}
	})

	t.Run("bit flip in trailer", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[len(bad)-1] ^= 0x80
		d := &VerifyCache{}
		if _, err := d.LoadSnapshot(bytes.NewReader(bad)); !errors.Is(err, ErrSnapshotCorrupt) {
			t.Fatalf("err = %v, want ErrSnapshotCorrupt", err)
		}
	})

	t.Run("truncation", func(t *testing.T) {
		// Cut the stream at every interesting boundary plus a sweep of
		// mid-stream offsets; all must reject without mutating the cache.
		cuts := []int{0, 4, 8, 11, 12, 19, 20, len(good) / 3, len(good) / 2, len(good) - 9, len(good) - 1}
		for _, n := range cuts {
			if n >= len(good) {
				continue
			}
			d := &VerifyCache{}
			if _, err := d.LoadSnapshot(bytes.NewReader(good[:n])); !errors.Is(err, ErrSnapshotCorrupt) {
				t.Fatalf("truncation at %d: err = %v, want ErrSnapshotCorrupt", n, err)
			}
			if d.Stats().Entries != 0 {
				t.Fatalf("truncation at %d mutated the cache", n)
			}
		}
	})

	t.Run("trailing garbage", func(t *testing.T) {
		bad := append(append([]byte(nil), good...), 0x00)
		d := &VerifyCache{}
		if _, err := d.LoadSnapshot(bytes.NewReader(bad)); !errors.Is(err, ErrSnapshotCorrupt) {
			t.Fatalf("err = %v, want ErrSnapshotCorrupt", err)
		}
	})
}

func TestSnapshotLoadRespectsEvictionEpochs(t *testing.T) {
	// A snapshot larger than the cache bound must warm-start through the
	// normal epoch-flush semantics, not grow without limit.
	old := maxCacheEntries
	maxCacheEntries = 3
	defer func() { maxCacheEntries = old }()

	src, _ := snapshotCache(t)
	var buf bytes.Buffer
	if _, err := src.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	d := &VerifyCache{}
	n, err := d.LoadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	s := d.Stats()
	if s.Entries > maxCacheEntries {
		t.Fatalf("entries = %d, bound %d", s.Entries, maxCacheEntries)
	}
	if n > maxCacheEntries && s.Evictions == 0 {
		t.Fatalf("loaded %d entries past bound %d with no evictions counted", n, maxCacheEntries)
	}
}

func TestSnapshotLoadConcurrentWithVerifies(t *testing.T) {
	// Snapshot loads racing live verifications and eviction flushes must
	// stay safe (run under -race in CI) and must never surface a wrong
	// verdict: the dual-hash key contract holds for loaded entries too.
	src, nets := snapshotCache(t)
	var buf bytes.Buffer
	if _, err := src.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	snap := buf.Bytes()

	// Lower the epoch-flush bound for the contended cache only, after the
	// fully-populated source snapshot exists, so loads constantly race
	// eviction flushes.
	old := maxCacheEntries
	maxCacheEntries = 4
	defer func() { maxCacheEntries = old }()

	// Ground truth per design, from the source cache (XY on the torus is
	// cyclic — wrap links close a dependency ring without extra VCs).
	wantXY := make([]bool, len(nets))
	for i, net := range nets {
		rep, ok := src.Lookup(net, nil, xyTurnSet())
		if !ok {
			t.Fatalf("%s: source cache lost an entry", net.Name())
		}
		wantXY[i] = rep.Acyclic
	}

	c := &VerifyCache{}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if w%2 == 0 {
					if _, err := c.LoadSnapshot(bytes.NewReader(snap)); err != nil {
						t.Errorf("concurrent load: %v", err)
						return
					}
				} else {
					ni := (w + i) % len(nets)
					rep := c.VerifyTurnSetJobs(nets[ni], nil, xyTurnSet(), 1)
					if rep.Acyclic != wantXY[ni] {
						t.Errorf("%s under XY: acyclic = %v, want %v", nets[ni].Name(), rep.Acyclic, wantXY[ni])
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()

	// Whatever interleaving happened, surviving entries answer correctly.
	for i, net := range nets {
		if rep, ok := c.Lookup(net, nil, xyTurnSet()); ok && rep.Acyclic != wantXY[i] {
			t.Fatalf("%s: cache serves a wrong verdict after concurrent loads", net.Name())
		}
		if rep, ok := c.Lookup(net, nil, allTurnSet()); ok && rep.Acyclic {
			t.Fatalf("%s: cache serves a wrong verdict after concurrent loads", net.Name())
		}
	}
}
