package cdg

import (
	"strings"
	"testing"

	"ebda/internal/core"
	"ebda/internal/topology"
)

func TestTopoOrderWitness(t *testing.T) {
	chain := core.MustParseChain("PA[X1+ Y1+ Y1-] -> PB[X1- Y2+ Y2-]")
	g := BuildFromTurnSet(topology.NewMesh(4, 4), VCConfigFor(2, chain.Channels()), chain.AllTurns())
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != g.NumChannels() {
		t.Fatalf("order covers %d of %d channels", len(order), g.NumChannels())
	}
	// Every dependency must go forward in the ordering.
	pos := make(map[int]int, len(order))
	for i, ch := range order {
		pos[ch.Index] = i
	}
	for i := range g.Channels() {
		for _, s := range g.Succs(i) {
			if pos[i] >= pos[int(s)] {
				t.Fatalf("dependency %d -> %d violates the witness ordering", i, s)
			}
		}
	}
}

func TestTopoOrderFailsOnCycles(t *testing.T) {
	g := BuildFromTurnSet(topology.NewMesh(3, 3), nil, allTurnSet())
	if _, err := g.TopoOrder(); err == nil {
		t.Fatal("cyclic graph must not have a topological order")
	}
}

func TestRegionAdaptivenessTable5Claim(t *testing.T) {
	// Section 6.3: with PA[X1+ Y1* Z1+] -> PB[X1- Y2* Z1-], "fully
	// adaptive routing can be utilized in four regions as NEU, SEU, NWD,
	// SWD and partially adaptive routing can be used in the other four".
	// Verified here on a fully connected 3D mesh (the region claim is a
	// property of the turn set; vertical partial connectivity only
	// restricts which pairs exist).
	chain := core.MustParseChain("PA[X1+ Y1* Z1+] -> PB[X1- Y2* Z1-]")
	net := topology.NewMesh(3, 3, 3)
	vcs := VCConfigFor(3, chain.Channels())
	regions, err := RegionAdaptiveness(net, vcs, chain.AllTurns())
	if err != nil {
		t.Fatal(err)
	}
	wantFull := map[string]bool{
		"ENU": true, "ESU": true, "WND": true, "WSD": true,
		"END": false, "ESD": false, "WNU": false, "WSU": false,
	}
	for _, r := range regions {
		want, ok := wantFull[r.Name()]
		if !ok {
			t.Fatalf("unexpected region %s", r.Name())
		}
		if r.Pairs == 0 {
			t.Fatalf("region %s has no pairs", r.Name())
		}
		if got := r.FullyAdaptive(); got != want {
			t.Errorf("region %s fully adaptive = %v, want %v (%s)",
				r.Name(), got, want, r.AdaptivenessReport)
		}
		if r.BrokenPairs != 0 {
			t.Errorf("region %s has %d broken pairs", r.Name(), r.BrokenPairs)
		}
	}
}

func TestRegionAdaptivenessWestFirst(t *testing.T) {
	chain := core.MustParseChain("PA[X-] -> PB[X+ Y+ Y-]")
	net := topology.NewMesh(5, 5)
	regions, err := RegionAdaptiveness(net, nil, chain.AllTurns())
	if err != nil {
		t.Fatal(err)
	}
	wantFull := map[string]bool{"EN": true, "ES": true, "WN": false, "WS": false}
	for _, r := range regions {
		if got := r.FullyAdaptive(); got != wantFull[r.Name()] {
			t.Errorf("west-first region %s fully adaptive = %v, want %v",
				r.Name(), got, wantFull[r.Name()])
		}
	}
}

func TestCertificate(t *testing.T) {
	chain := core.MustParseChain("PA[X+ X- Y-] -> PB[Y+]")
	g := BuildFromTurnSet(topology.NewMesh(4, 4), nil, chain.AllTurns())
	cert, err := g.Certificate()
	if err != nil {
		t.Fatal(err)
	}
	if err := g.CheckCertificate(cert); err != nil {
		t.Fatalf("own certificate rejected: %v", err)
	}
	// Tampered certificates are rejected.
	swapped := &Certificate{Order: append([]int(nil), cert.Order...)}
	swapped.Order[0], swapped.Order[len(swapped.Order)-1] =
		swapped.Order[len(swapped.Order)-1], swapped.Order[0]
	if err := g.CheckCertificate(swapped); err == nil {
		t.Error("tampered certificate accepted")
	}
	// Short, repeated and out-of-range certificates are rejected.
	if err := g.CheckCertificate(&Certificate{Order: cert.Order[:3]}); err == nil {
		t.Error("short certificate accepted")
	}
	dup := append([]int(nil), cert.Order...)
	dup[1] = dup[0]
	if err := g.CheckCertificate(&Certificate{Order: dup}); err == nil {
		t.Error("duplicated certificate accepted")
	}
	bad := append([]int(nil), cert.Order...)
	bad[0] = len(cert.Order) + 5
	if err := g.CheckCertificate(&Certificate{Order: bad}); err == nil {
		t.Error("out-of-range certificate accepted")
	}
	// Cyclic graphs have no certificate.
	gc := BuildFromTurnSet(topology.NewMesh(3, 3), nil, allTurnSet())
	if _, err := gc.Certificate(); err == nil {
		t.Error("cyclic graph produced a certificate")
	}
}

func TestDOTOutput(t *testing.T) {
	gAcyclic := BuildFromTurnSet(topology.NewMesh(3, 3), nil, xyTurnSet())
	dot := gAcyclic.DOT("xy")
	for _, want := range []string{"digraph \"xy\"", "rankdir=LR", "->"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q", want)
		}
	}
	if strings.Contains(dot, "ffcccc") {
		t.Error("acyclic graph should have no highlighted SCC nodes")
	}
	gCyclic := BuildFromTurnSet(topology.NewMesh(3, 3), nil, allTurnSet())
	dot = gCyclic.DOT("all")
	if !strings.Contains(dot, "ffcccc") || !strings.Contains(dot, "color=red") {
		t.Error("cyclic graph should highlight its SCCs")
	}
}
