package cdg

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"

	"ebda/internal/channel"
	"ebda/internal/core"
	"ebda/internal/obs/trace"
	"ebda/internal/topology"
)

// Workspace owns a dependency graph plus all the scratch one verification
// needs — the per-channel class-match lists and the Kahn/DFS state — so
// repeated verifications on the same (network, VC configuration) shape
// reset buffers instead of reallocating them. The channel table, head/tail
// indices and coordinate table depend only on the shape and are built
// once; only the adjacency rows change between turn sets, and Reset
// truncates them in place, keeping their capacity.
//
// A Workspace is single-verification at a time: its methods must not be
// called concurrently (the verification itself still fans out over the
// worker pool internally). Use a WorkspacePool to share workspaces across
// goroutines.
type Workspace struct {
	g       *Graph
	st      acyclicState
	matched [][]int32
}

// NewWorkspace builds a workspace for one network shape.
func NewWorkspace(net *topology.Network, vcs VCConfig) *Workspace {
	return &Workspace{g: NewGraph(net, vcs)}
}

// Graph returns the workspace's graph. It reflects the most recent
// verification; Reset or another verification invalidates its edges.
func (ws *Workspace) Graph() *Graph { return ws.g }

// Reset removes every dependency edge, keeping the channel table and the
// adjacency rows' capacity for the next build.
func (ws *Workspace) Reset() {
	for i := range ws.g.adj {
		ws.g.adj[i] = ws.g.adj[i][:0]
	}
	ws.g.edges = 0
}

// report runs the acyclicity fast path on the current graph and assembles
// the Report. The Cycle channels are value copies, so the report stays
// valid after the workspace is reset or reused. Cancellation between Kahn
// rounds returns ctx's error and a zero Report — a cancelled verification
// never yields a verdict.
func (ws *Workspace) report(ctx context.Context, jobs int) (Report, error) {
	g := ws.g
	var cyc []Channel
	sp := phaseAcycl.Start()
	peeled, err := g.kahnPeel(ctx, jobs, &ws.st)
	if err != nil {
		sp.End()
		return Report{}, err
	}
	if peeled != len(g.channels) {
		obsResidualDFS.Inc()
		cyc = g.findCycleResidual(&ws.st)
	}
	sp.End()
	obsVerifies.Inc()
	if cyc != nil {
		obsVerifyCyclic.Inc()
	}
	return Report{
		Network:  g.net.String(),
		Channels: g.NumChannels(),
		Edges:    g.NumEdges(),
		Acyclic:  cyc == nil,
		Cycle:    cyc,
	}, nil
}

// VerifyTurnSetCtx resets the workspace, builds the dependency graph of
// the turn set and checks acyclicity (jobs <= 0 means all cores), honouring
// ctx: cancellation is observed before the build and between Kahn rounds,
// and returns ctx's error with a zero Report. A completed report is
// bit-identical to the unpooled path for every jobs value. The workspace
// stays reusable after a cancelled run — every buffer is re-zeroed by the
// next verification.
//
//ebda:hotpath
func (ws *Workspace) VerifyTurnSetCtx(ctx context.Context, ts *core.TurnSet, jobs int) (Report, error) {
	if err := ctx.Err(); err != nil {
		obsVerifyCancelled.Inc()
		return Report{}, err
	}
	tc := trace.FromContext(ctx)
	vsp := tc.StartSpan("cdg.verify")
	sp := phaseVerify.Start()
	ws.Reset()
	if ws.matched == nil {
		ws.matched = make([][]int32, len(ws.g.channels))
	}
	tesp := tc.StartSpan("cdg.edges")
	esp := phaseEdges.Start()
	ws.g.addTurnEdges(ts, jobs, ws.matched)
	esp.End()
	tesp.SetInt("edges", int64(ws.g.NumEdges()))
	tesp.End()
	rep, err := ws.report(ctx, jobs)
	sp.End()
	vsp.SetInt("channels", int64(rep.Channels))
	if rep.Acyclic {
		vsp.SetInt("acyclic", 1)
	} else {
		vsp.SetInt("acyclic", 0)
	}
	vsp.End()
	return rep, err
}

// VerifyTurnSetJobs is VerifyTurnSetCtx without a deadline.
//
//ebda:hotpath
func (ws *Workspace) VerifyTurnSetJobs(ts *core.TurnSet, jobs int) Report {
	rep, _ := ws.VerifyTurnSetCtx(context.Background(), ts, jobs)
	return rep
}

// VerifyRelationJobs resets the workspace, builds the dependency graph of
// a routing relation and checks acyclicity (jobs <= 0 means all cores).
// name overrides the report's Network field when non-empty (routing
// verifications label reports "network / algorithm").
func (ws *Workspace) VerifyRelationJobs(route RoutingRelation, name string, jobs int) Report {
	ws.Reset()
	ws.g.AddRoutingEdgesJobs(route, jobs)
	rep, _ := ws.report(context.Background(), jobs)
	if name != "" {
		rep.Network = name
	}
	return rep
}

// poolKey identifies a workspace shape: the network (by identity —
// geometry is immutable after build) and the canonical VC configuration.
type poolKey struct {
	net *topology.Network
	vcs string
}

// canonicalVCs renders the effective per-dimension VC counts, so
// VCConfigs that differ only in representation (nil vs explicit ones,
// trailing defaults) share workspaces.
func canonicalVCs(net *topology.Network, vcs VCConfig) string {
	var b strings.Builder
	for d := 0; d < net.Dims(); d++ {
		fmt.Fprintf(&b, "%d,", vcs.VCs(channel.Dim(d)))
	}
	return b.String()
}

// WorkspacePool is a goroutine-safe free list of workspaces keyed by
// shape. Get returns a pooled workspace or builds a fresh one; Put
// returns it for reuse. Growth is bounded: each shape keeps at most
// GOMAXPROCS idle workspaces, and when the number of distinct shapes
// exceeds maxPoolKeys the pool is cleared wholesale (an epoch flush —
// correctness never depends on pool contents).
type WorkspacePool struct {
	mu   sync.Mutex
	free map[poolKey][]*Workspace
}

// maxPoolKeys bounds the number of distinct shapes the pool retains.
const maxPoolKeys = 64

// DefaultPool is the process-wide workspace pool used by VerifyTurnSet
// and the verification cache.
var DefaultPool = &WorkspacePool{}

// Get returns a workspace for the shape, reusing a pooled one when
// available.
func (p *WorkspacePool) Get(net *topology.Network, vcs VCConfig) *Workspace {
	obsPoolGets.Inc()
	key := poolKey{net, canonicalVCs(net, vcs)}
	p.mu.Lock()
	if list := p.free[key]; len(list) > 0 {
		ws := list[len(list)-1]
		list[len(list)-1] = nil
		p.free[key] = list[:len(list)-1]
		p.mu.Unlock()
		obsPoolReuses.Inc()
		return ws
	}
	p.mu.Unlock()
	return NewWorkspace(net, vcs)
}

// Put returns a workspace to the pool. The caller must not use it (or any
// Graph obtained from it) afterwards.
func (p *WorkspacePool) Put(ws *Workspace) {
	obsPoolPuts.Inc()
	key := poolKey{ws.g.net, canonicalVCs(ws.g.net, ws.g.vcs)}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.free == nil {
		p.free = make(map[poolKey][]*Workspace)
	}
	if _, ok := p.free[key]; !ok && len(p.free) >= maxPoolKeys {
		obsPoolFlushes.Inc()
		p.free = make(map[poolKey][]*Workspace)
	}
	if list := p.free[key]; len(list) < runtime.GOMAXPROCS(0) {
		p.free[key] = append(list, ws)
	}
}
