package cdg

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"ebda/internal/channel"
	"ebda/internal/core"
	"ebda/internal/topology"
)

// reportsIdentical compares two reports the way the delta contract
// promises equality: every scalar field plus the formatted cycle witness.
// Raw Cycle slices are not compared element-wise because a derived
// network's dense renumbering changes Channel.Index without changing any
// rendered form.
func reportsIdentical(a, b Report) bool {
	return a.Network == b.Network &&
		a.Channels == b.Channels &&
		a.Edges == b.Edges &&
		a.Acyclic == b.Acyclic &&
		FormatCycle(a.Cycle) == FormatCycle(b.Cycle)
}

// forceBudget overrides the delta dirty budget for the duration of a test.
func forceBudget(t *testing.T, f func(nc int) int) {
	t.Helper()
	old := deltaBudget
	deltaBudget = f
	t.Cleanup(func() { deltaBudget = old })
}

// deltaCases pairs a network with turn-set designs to perturb: acyclic
// chain extractions and a deliberately cyclic relation, so witness
// formatting is exercised too.
func deltaCases() []struct {
	name string
	net  *topology.Network
	vcs  VCConfig
	ts   *core.TurnSet
} {
	cyclic := func(vcs string) *core.TurnSet {
		ts := core.NewTurnSet()
		dirs := channel.MustParseList(vcs)
		for _, a := range dirs {
			for _, b := range dirs {
				if a.Dim != b.Dim {
					ts.Add(a, b, core.ByTheorem1)
				}
			}
		}
		return ts
	}
	chainTS := func(spec string) *core.TurnSet {
		return core.MustParseChain(spec).AllTurns()
	}
	return []struct {
		name string
		net  *topology.Network
		vcs  VCConfig
		ts   *core.TurnSet
	}{
		{"mesh4x4-northlast", topology.NewMesh(4, 4), nil, chainTS("PA[X+ X- Y-] -> PB[Y+]")},
		{"mesh5x5-negfirst", topology.NewMesh(5, 5), nil, chainTS("PA[X- Y-] -> PB[X+ Y+]")},
		{"mesh8x8-vc", topology.NewMesh(8, 8), VCConfig{1, 2}, chainTS("PA[X1+ Y1+ Y1-] -> PB[X1- Y2+ Y2-]")},
		{"mesh4x4-cyclic", topology.NewMesh(4, 4), VCConfig{2, 2}, cyclic("X1+ X2- Y1+ Y2-")},
		{"torus4x4-cyclic", topology.NewTorus(4, 4), nil, cyclic("X1+ Y1-")},
		{"torus5x4-chain", topology.NewTorus(5, 4), nil, chainTS("PA[X+ X- Y-] -> PB[Y+]")},
	}
}

// TestDeltaSingleLinkEquivalence is the tentpole contract: removing a link
// through a delta on the retained base must produce the identical report —
// including cycle witness formatting — as a fresh verification of the
// topology.WithoutLinks-derived network, across shapes and seeds.
func TestDeltaSingleLinkEquivalence(t *testing.T) {
	for _, tc := range deltaCases() {
		t.Run(tc.name, func(t *testing.T) {
			dw, err := NewDeltaWorkspace(tc.net, tc.vcs, tc.ts)
			if err != nil {
				t.Fatal(err)
			}
			links := tc.net.Links()
			for _, seed := range []int64{1, 7, 42} {
				rng := rand.New(rand.NewSource(seed))
				for n := 0; n < 4; n++ {
					l := links[rng.Intn(len(links))]
					diff := Diff{RemoveLinks: []topology.Link{l}}
					got, err := dw.VerifyDiffJobs(diff, 1)
					if err != nil {
						t.Fatalf("seed %d link %v: %v", seed, l, err)
					}
					derived := tc.net.WithoutLinks([]topology.Link{l})
					want := VerifyTurnSetJobs(derived, tc.vcs, tc.ts, 1)
					if !reportsIdentical(got, want) {
						t.Fatalf("seed %d link %v:\ndelta: %s\nfresh: %s", seed, l, got, want)
					}
				}
			}
		})
	}
}

// TestDeltaMultiLinkEquivalence removes several links at once, including
// adjacent ones (shared endpoints), and checks the same equivalence.
func TestDeltaMultiLinkEquivalence(t *testing.T) {
	for _, tc := range deltaCases() {
		t.Run(tc.name, func(t *testing.T) {
			dw, err := NewDeltaWorkspace(tc.net, tc.vcs, tc.ts)
			if err != nil {
				t.Fatal(err)
			}
			links := tc.net.Links()
			for _, seed := range []int64{3, 11} {
				rng := rand.New(rand.NewSource(seed))
				var faults []topology.Link
				picked := map[int]bool{}
				for len(faults) < 3 {
					i := rng.Intn(len(links))
					if picked[i] {
						continue
					}
					picked[i] = true
					faults = append(faults, links[i])
				}
				got, err := dw.VerifyDiffJobs(Diff{RemoveLinks: faults}, 1)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				want := VerifyTurnSetJobs(tc.net.WithoutLinks(faults), tc.vcs, tc.ts, 1)
				if !reportsIdentical(got, want) {
					t.Fatalf("seed %d faults %v:\ndelta: %s\nfresh: %s", seed, faults, got, want)
				}
			}
		})
	}
}

// TestDeltaTurnToggleEquivalence disables and enables turns through deltas
// and compares against fresh verifications of the correspondingly modified
// turn set on the same network and VC configuration.
func TestDeltaTurnToggleEquivalence(t *testing.T) {
	net := topology.NewMesh(5, 5)
	full := core.MustParseChain("PA[X+ X- Y-] -> PB[Y+]").AllTurns()
	dw, err := NewDeltaWorkspace(net, nil, full)
	if err != nil {
		t.Fatal(err)
	}
	turns := full.Turns()
	for _, seed := range []int64{2, 9, 33} {
		rng := rand.New(rand.NewSource(seed))
		tn := turns[rng.Intn(len(turns))]
		if tn.From == tn.To {
			continue
		}
		got, err := dw.VerifyDiffJobs(Diff{DisableTurns: []core.Turn{tn}}, 1)
		if err != nil {
			t.Fatalf("seed %d disable %s: %v", seed, tn, err)
		}
		mod := full.Clone()
		if !mod.Remove(tn.From, tn.To) {
			t.Fatalf("turn %s not removable", tn)
		}
		want := VerifyTurnSetJobs(net, nil, mod, 1)
		if !reportsIdentical(got, want) {
			t.Fatalf("disable %s:\ndelta: %s\nfresh: %s", tn, got, want)
		}
	}
	// Enable: start from a reduced base and toggle a removed turn back on;
	// the delta verdict must match the full set's fresh verdict.
	for _, tn := range turns[:4] {
		if tn.From == tn.To {
			continue
		}
		reduced := full.Clone()
		if !reduced.Remove(tn.From, tn.To) {
			continue
		}
		rdw, err := NewDeltaWorkspace(net, nil, reduced)
		if err != nil {
			t.Fatal(err)
		}
		got, err := rdw.VerifyDiffJobs(Diff{EnableTurns: []core.Turn{tn}}, 1)
		if err != nil {
			t.Fatalf("enable %s: %v", tn, err)
		}
		want := VerifyTurnSetJobs(net, nil, full, 1)
		if !reportsIdentical(got, want) {
			t.Fatalf("enable %s:\ndelta: %s\nfresh: %s", tn, got, want)
		}
	}
	// Disabling a Y+ continuation-adjacent turn on a cyclic design must
	// also track witness changes: toggle on the cyclic relation.
	cyc := core.NewTurnSet()
	dirs := channel.MustParseList("X1+ X2- Y1+ Y2-")
	for _, a := range dirs {
		for _, b := range dirs {
			if a.Dim != b.Dim {
				cyc.Add(a, b, core.ByTheorem1)
			}
		}
	}
	cdw, err := NewDeltaWorkspace(topology.NewMesh(3, 3), VCConfig{2, 2}, cyc)
	if err != nil {
		t.Fatal(err)
	}
	for _, tn := range cyc.Turns() {
		got, err := cdw.VerifyDiffJobs(Diff{DisableTurns: []core.Turn{tn}}, 1)
		if err != nil {
			t.Fatalf("disable %s: %v", tn, err)
		}
		mod := cyc.Clone()
		mod.Remove(tn.From, tn.To)
		want := VerifyTurnSetJobs(topology.NewMesh(3, 3), VCConfig{2, 2}, mod, 1)
		// Distinct Network instances share geometry; names match ("3x3
		// mesh"), so reports must be identical.
		if !reportsIdentical(got, want) {
			t.Fatalf("disable %s:\ndelta: %s\nfresh: %s", tn, got, want)
		}
	}
}

// TestDeltaJobsInvariance proves the acceptance criterion: delta verdicts
// are bit-identical for every worker count, on both the incremental path
// and the forced full-peel fallback.
func TestDeltaJobsInvariance(t *testing.T) {
	for _, budget := range []struct {
		name string
		f    func(nc int) int
	}{
		{"incremental", func(nc int) int { return nc * 16 }},
		{"fallback", func(int) int { return -1 }},
	} {
		t.Run(budget.name, func(t *testing.T) {
			forceBudget(t, budget.f)
			for _, tc := range deltaCases() {
				dw, err := NewDeltaWorkspace(tc.net, tc.vcs, tc.ts)
				if err != nil {
					t.Fatal(err)
				}
				links := tc.net.Links()
				rng := rand.New(rand.NewSource(5))
				diffs := []Diff{
					{RemoveLinks: []topology.Link{links[rng.Intn(len(links))]}},
					{RemoveLinks: []topology.Link{links[rng.Intn(len(links))], links[rng.Intn(len(links))/2]}},
				}
				if ts := tc.ts.Turns(); len(ts) > 0 {
					diffs = append(diffs, Diff{DisableTurns: []core.Turn{ts[rng.Intn(len(ts))]}})
				}
				for di, diff := range diffs {
					base, err := dw.VerifyDiffJobs(diff, 1)
					if err != nil {
						t.Fatalf("%s diff %d: %v", tc.name, di, err)
					}
					for _, jobs := range []int{2, 3, 4, 8} {
						got, err := dw.VerifyDiffJobs(diff, jobs)
						if err != nil {
							t.Fatalf("%s diff %d jobs %d: %v", tc.name, di, jobs, err)
						}
						if !reportsIdentical(got, base) {
							t.Fatalf("%s diff %d: jobs %d diverged\njobs=1: %s\njobs=%d: %s",
								tc.name, di, jobs, base, jobs, got)
						}
					}
				}
			}
		})
	}
}

// TestDeltaFallbackAgreement runs every case's diffs through both the
// incremental path and the forced fallback and requires bit-identical
// reports — the two implementations check each other.
func TestDeltaFallbackAgreement(t *testing.T) {
	for _, tc := range deltaCases() {
		t.Run(tc.name, func(t *testing.T) {
			dw, err := NewDeltaWorkspace(tc.net, tc.vcs, tc.ts)
			if err != nil {
				t.Fatal(err)
			}
			links := tc.net.Links()
			rng := rand.New(rand.NewSource(13))
			for n := 0; n < 6; n++ {
				diff := Diff{RemoveLinks: []topology.Link{links[rng.Intn(len(links))]}}
				forceBudget(t, func(nc int) int { return nc * 16 })
				inc, err := dw.VerifyDiffJobs(diff, 1)
				if err != nil {
					t.Fatal(err)
				}
				deltaBudget = func(int) int { return -1 }
				full, err := dw.VerifyDiffJobs(diff, 1)
				if err != nil {
					t.Fatal(err)
				}
				if !reportsIdentical(inc, full) {
					t.Fatalf("paths diverged for %v:\nincremental: %s\nfallback:    %s", diff.RemoveLinks, inc, full)
				}
			}
		})
	}
}

// TestDeltaRawEdgeCycle adds a raw back-edge that closes a cycle through
// the previously peeled region — the suspect-probe case — and checks both
// detection and restoration.
func TestDeltaRawEdgeCycle(t *testing.T) {
	net := topology.NewMesh(4, 4)
	ts := core.MustParseChain("PA[X+ X- Y-] -> PB[Y+]").AllTurns()
	dw, err := NewDeltaWorkspace(net, nil, ts)
	if err != nil {
		t.Fatal(err)
	}
	if !dw.BaseReport().Acyclic {
		t.Fatal("base must be acyclic")
	}
	g := dw.Graph()
	// Find an existing dependency a->b and add the reverse b->a, unless it
	// exists; that closes a 2-cycle entirely inside the peeled region.
	var a, b int32 = -1, -1
	for i := range g.adj {
		for _, s := range g.adj[i] {
			if int32(i) != s && !g.HasEdge(int(s), i) {
				a, b = int32(i), s
				break
			}
		}
		if a >= 0 {
			break
		}
	}
	if a < 0 {
		t.Fatal("no candidate edge found")
	}
	rep, err := dw.VerifyDiffJobs(Diff{AddEdges: [][2]int32{{b, a}}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Acyclic {
		t.Fatal("added back-edge must create a cycle")
	}
	if len(rep.Cycle) == 0 {
		t.Fatal("cyclic delta report must carry a witness")
	}
	// The workspace must be back at base: an empty diff reproduces the
	// base report and the graph's edge count is restored.
	if g.NumEdges() != dw.baseEdges {
		t.Fatalf("edges not restored: %d != %d", g.NumEdges(), dw.baseEdges)
	}
	again, err := dw.VerifyDiffJobs(Diff{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reportsIdentical(again, dw.BaseReport()) {
		t.Fatalf("empty diff diverged from base: %s vs %s", again, dw.BaseReport())
	}
	// Removing the raw edge a->b must match a fresh graph without it.
	rep2, err := dw.VerifyDiffJobs(Diff{RemoveEdges: [][2]int32{{a, b}}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Edges != dw.baseEdges-1 {
		t.Fatalf("raw removal edge count = %d, want %d", rep2.Edges, dw.baseEdges-1)
	}
}

// TestDeltaRepeatedCallsStable re-runs the same diffs many times on one
// workspace; every repetition must reproduce the first report exactly
// (rollback leaves no residue).
func TestDeltaRepeatedCallsStable(t *testing.T) {
	tc := deltaCases()[2] // 8x8 mesh with VCs
	dw, err := NewDeltaWorkspace(tc.net, tc.vcs, tc.ts)
	if err != nil {
		t.Fatal(err)
	}
	links := tc.net.Links()
	rng := rand.New(rand.NewSource(21))
	diffs := make([]Diff, 5)
	firsts := make([]Report, 5)
	for i := range diffs {
		diffs[i] = Diff{RemoveLinks: []topology.Link{links[rng.Intn(len(links))]}}
		firsts[i], err = dw.VerifyDiffJobs(diffs[i], 1)
		if err != nil {
			t.Fatal(err)
		}
	}
	for round := 0; round < 3; round++ {
		for i, diff := range diffs {
			rep, err := dw.VerifyDiffJobs(diff, 1)
			if err != nil {
				t.Fatal(err)
			}
			if !reportsIdentical(rep, firsts[i]) {
				t.Fatalf("round %d diff %d drifted:\nfirst: %s\nnow:   %s", round, i, firsts[i], rep)
			}
		}
	}
}

// TestDeltaValidation exercises every ErrBadDiff path.
func TestDeltaValidation(t *testing.T) {
	net := topology.NewMesh(4, 4)
	ts := core.MustParseChain("PA[X+ X- Y-] -> PB[Y+]").AllTurns()
	dw, err := NewDeltaWorkspace(net, nil, ts)
	if err != nil {
		t.Fatal(err)
	}
	xPlus := channel.MustParse("X+")
	zPlus := channel.Class{Dim: channel.Z, Sign: channel.Plus, VC: 1}
	yPlus := channel.MustParse("Y+")
	bad := []Diff{
		// Border link that does not exist (X+ out of the last column).
		{RemoveLinks: []topology.Link{{From: net.ID(topology.Coord{3, 0}), Dim: channel.X, Sign: channel.Plus}}},
		// Disabling an absent turn (Y+ -> X+ is forbidden by north-last).
		{DisableTurns: []core.Turn{{From: yPlus, To: xPlus}}},
		// Disabling a continuation.
		{DisableTurns: []core.Turn{{From: xPlus, To: xPlus}}},
		// Enabling a turn that leaves the declared class set.
		{EnableTurns: []core.Turn{{From: xPlus, To: zPlus}}},
		// Enabling an already-present turn.
		{EnableTurns: []core.Turn{{From: xPlus, To: yPlus}}},
		// Raw edges out of range / duplicated / conflicting.
		{AddEdges: [][2]int32{{-1, 0}}},
		{RemoveEdges: [][2]int32{{0, int32(dw.Graph().NumChannels())}}},
	}
	for i, diff := range bad {
		if _, err := dw.VerifyDiffJobs(diff, 1); !errors.Is(err, ErrBadDiff) {
			t.Errorf("bad diff %d: err = %v, want ErrBadDiff", i, err)
		}
	}
	// A rejected diff must leave the base intact.
	rep, err := dw.VerifyDiffJobs(Diff{}, 1)
	if err != nil || !reportsIdentical(rep, dw.BaseReport()) {
		t.Fatalf("base damaged after rejected diffs: %v %s", err, rep)
	}
	// SingleLinkDiff mirrors link validation.
	if _, err := SingleLinkDiff(net, net.ID(topology.Coord{3, 0}), channel.X, channel.Plus); !errors.Is(err, ErrBadDiff) {
		t.Errorf("SingleLinkDiff on absent link: %v", err)
	}
	if d, err := SingleLinkDiff(net, 0, channel.X, channel.Plus); err != nil || len(d.RemoveLinks) != 1 {
		t.Errorf("SingleLinkDiff on real link: %v %v", d, err)
	}
}

// TestDeltaFingerprint checks canonicality: order-independence across
// categories, and sensitivity to every component including Name.
func TestDeltaFingerprint(t *testing.T) {
	net := topology.NewMesh(4, 4)
	links := net.Links()
	a := Diff{RemoveLinks: []topology.Link{links[0], links[5]}}
	b := Diff{RemoveLinks: []topology.Link{links[5], links[0]}}
	a1, a2 := a.Fingerprint()
	b1, b2 := b.Fingerprint()
	if a1 != b1 || a2 != b2 {
		t.Error("fingerprint must be order-independent")
	}
	c1, c2 := Diff{RemoveLinks: []topology.Link{links[0]}}.Fingerprint()
	if c1 == a1 && c2 == a2 {
		t.Error("different link sets must differ")
	}
	xPlus, yPlus := channel.MustParse("X+"), channel.MustParse("Y+")
	d1, d2 := Diff{DisableTurns: []core.Turn{{From: xPlus, To: yPlus}}}.Fingerprint()
	e1, e2 := Diff{EnableTurns: []core.Turn{{From: xPlus, To: yPlus}}}.Fingerprint()
	if d1 == e1 && d2 == e2 {
		t.Error("disable and enable of the same turn must differ")
	}
	f1a, f2a := Diff{Name: "a"}.Fingerprint()
	f1b, f2b := Diff{Name: "b"}.Fingerprint()
	if f1a == f1b && f2a == f2b {
		t.Error("name must contribute")
	}
	g1, g2 := Diff{AddEdges: [][2]int32{{1, 2}}}.Fingerprint()
	h1, h2 := Diff{RemoveEdges: [][2]int32{{1, 2}}}.Fingerprint()
	if g1 == h1 && g2 == h2 {
		t.Error("add and remove of the same edge must differ")
	}
}

// TestDeltaCache exercises the delta cache entry points: miss computes,
// hit returns the memoized report, and the delta key is decorrelated from
// the base key.
func TestDeltaCache(t *testing.T) {
	net := topology.NewMesh(6, 6)
	ts := core.MustParseChain("PA[X+ X- Y-] -> PB[Y+]").AllTurns()
	links := net.Links()
	diff := Diff{RemoveLinks: []topology.Link{links[7]}}

	bk, bc := VerifyKey(net, nil, ts)
	dk, dc := DeltaKey(net, nil, ts, diff)
	if bk == dk || bc == dc {
		t.Fatal("delta key must differ from base key")
	}
	dk2, dc2 := DeltaKey(net, nil, ts, Diff{RemoveLinks: []topology.Link{links[8]}})
	if dk == dk2 && dc == dc2 {
		t.Fatal("different diffs must have different keys")
	}

	c := &VerifyCache{}
	if _, ok := c.LookupDelta(net, nil, ts, diff); ok {
		t.Fatal("empty cache must miss")
	}
	rep, err := c.VerifyDeltaJobs(net, nil, ts, diff, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := VerifyTurnSetJobs(net.WithoutLinks(diff.RemoveLinks), nil, ts, 1)
	if !reportsIdentical(rep, want) {
		t.Fatalf("cached delta verdict wrong:\ndelta: %s\nfresh: %s", rep, want)
	}
	hit, ok := c.LookupDelta(net, nil, ts, diff)
	if !ok || !reportsIdentical(hit, rep) {
		t.Fatalf("second probe must hit with the same report")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss", st)
	}
	// An invalid diff returns the error and stores nothing.
	badLink := topology.Link{From: net.ID(topology.Coord{5, 0}), Dim: channel.X, Sign: channel.Plus}
	if _, err := c.VerifyDeltaJobs(net, nil, ts, Diff{RemoveLinks: []topology.Link{badLink}}, 1); !errors.Is(err, ErrBadDiff) {
		t.Fatalf("invalid diff: %v", err)
	}
}

// TestDeltaPool checks reuse and the check-hash guard.
func TestDeltaPool(t *testing.T) {
	net := topology.NewMesh(4, 4)
	ts := core.MustParseChain("PA[X+ X- Y-] -> PB[Y+]").AllTurns()
	p := &DeltaPool{}
	dw, err := p.GetCtx(context.Background(), net, nil, ts, 1)
	if err != nil {
		t.Fatal(err)
	}
	p.Put(dw)
	dw2, err := p.GetCtx(context.Background(), net, nil, ts, 1)
	if err != nil {
		t.Fatal(err)
	}
	if dw2 != dw {
		t.Fatal("pool must reuse the retained workspace")
	}
	// A different base on the same pool builds fresh.
	other := core.MustParseChain("PA[X- Y-] -> PB[X+ Y+]").AllTurns()
	dw3, err := p.GetCtx(context.Background(), net, nil, other, 1)
	if err != nil {
		t.Fatal(err)
	}
	if dw3 == dw2 {
		t.Fatal("different base must not share a workspace")
	}
}

// TestDeltaEmptyDiffName checks report naming: empty diffs and pure turn
// toggles keep the base name, link removals get the -faulty suffix, and an
// explicit Name wins.
func TestDeltaNames(t *testing.T) {
	net := topology.NewMesh(4, 4)
	ts := core.MustParseChain("PA[X+ X- Y-] -> PB[Y+]").AllTurns()
	dw, err := NewDeltaWorkspace(net, nil, ts)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := dw.VerifyDiffJobs(Diff{}, 1)
	if err != nil || rep.Network != "4x4 mesh" {
		t.Fatalf("empty diff name = %q (%v)", rep.Network, err)
	}
	l := net.Links()[0]
	rep, err = dw.VerifyDiffJobs(Diff{RemoveLinks: []topology.Link{l}}, 1)
	if err != nil || rep.Network != "4x4 mesh-faulty" {
		t.Fatalf("link diff name = %q (%v)", rep.Network, err)
	}
	rep, err = dw.VerifyDiffJobs(Diff{RemoveLinks: []topology.Link{l}, Name: "override"}, 1)
	if err != nil || rep.Network != "override" {
		t.Fatalf("named diff name = %q (%v)", rep.Network, err)
	}
}
