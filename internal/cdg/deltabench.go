package cdg

import (
	"encoding/json"
	"fmt"
	"io"
)

// DeltaBench is the incremental-verification perf snapshot written by
// ebda-deltabench (the BENCH_delta.json file). Kind distinguishes it
// from the engine snapshot (no kind) and the serving snapshot ("serve");
// ebda-benchdiff dispatches on it. The headline number is each case's
// Ratio — incremental re-verification cost as a fraction of the
// from-scratch cost — which benchdiff gates absolutely (the delta path
// only earns its complexity while it stays a few percent of a full
// verification).
type DeltaBench struct {
	Kind        string `json:"kind"` // always "delta"
	GeneratedAt string `json:"generated_at"`
	GoVersion   string `json:"go_version"`
	NumCPU      int    `json:"num_cpu"`
	Jobs        int    `json:"jobs"`
	Rounds      int    `json:"rounds"`

	Cases []DeltaBenchCase `json:"cases"`
}

// DeltaBenchCase compares one perturbation family on one design.
type DeltaBenchCase struct {
	Name    string `json:"name"`
	Network string `json:"network"`
	// FullNanos is the mean per-diff cost of the pre-delta path: derive
	// the perturbed design and verify it from scratch.
	FullNanos float64 `json:"full_ns"`
	// DeltaNanos is the mean per-diff cost through the retained
	// workspace's region re-peel.
	DeltaNanos float64 `json:"delta_ns"`
	// Ratio is DeltaNanos / FullNanos (0 when the full baseline is 0).
	Ratio float64 `json:"ratio"`
	// Incremental and Fallbacks split the delta verifications by path, so
	// a snapshot where every diff fell back to a full peel is visibly not
	// measuring the incremental machinery.
	Incremental uint64 `json:"incremental"`
	Fallbacks   uint64 `json:"fallbacks"`
}

// DeltaBenchKind is the Kind value of delta snapshots.
const DeltaBenchKind = "delta"

// WriteJSON renders the snapshot as indented JSON.
func (b DeltaBench) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// ReadDeltaBench parses a delta snapshot, rejecting other kinds.
func ReadDeltaBench(data []byte) (DeltaBench, error) {
	var b DeltaBench
	if err := json.Unmarshal(data, &b); err != nil {
		return DeltaBench{}, err
	}
	if b.Kind != DeltaBenchKind {
		return DeltaBench{}, fmt.Errorf("snapshot kind %q is not %q", b.Kind, DeltaBenchKind)
	}
	return b, nil
}
