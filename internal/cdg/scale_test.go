package cdg

import (
	"testing"

	"ebda/internal/core"
	"ebda/internal/partstrat"
	"ebda/internal/topology"
)

// The paper's scalability pitch: Dally-style search is infeasible beyond a
// handful of channels (4^24 combinations for 3D with one added VC), while
// EbDa designs verify directly at any dimension. These tests verify
// constructed designs well beyond the sizes turn-model search could reach.

func TestScale2DLargeMesh(t *testing.T) {
	chain := core.MustParseChain("PA[X1+ Y1+ Y1-] -> PB[X1- Y2+ Y2-]")
	net := topology.NewMesh(32, 32)
	rep := VerifyChain(net, chain)
	if !rep.Acyclic {
		t.Fatalf("32x32: %s", rep)
	}
	if rep.Channels < 5000 {
		t.Errorf("expected thousands of channels, got %d", rep.Channels)
	}
}

func TestScale4DDesign(t *testing.T) {
	chain, err := partstrat.MinFullyAdaptiveChain(4)
	if err != nil {
		t.Fatal(err)
	}
	net := topology.NewMesh(3, 3, 3, 3)
	rep := VerifyChain(net, chain)
	if !rep.Acyclic {
		t.Fatalf("4D: %s", rep)
	}
	conn := Connectivity(net, VCConfigFor(4, chain.Channels()), chain.AllTurns(), true)
	if !conn.Connected() {
		t.Errorf("4D connectivity: %s", conn)
	}
}

func TestScale5DDesign(t *testing.T) {
	// 5D: 96 channels in 16 partitions — the regime where the paper says
	// turn-model verification needs billions of combinations.
	chain, err := partstrat.MinFullyAdaptiveChain(5)
	if err != nil {
		t.Fatal(err)
	}
	if chain.Len() != 16 || len(chain.Channels()) != 96 {
		t.Fatalf("5D design shape: %d partitions, %d channels", chain.Len(), len(chain.Channels()))
	}
	net := topology.NewMesh(2, 2, 2, 2, 2)
	rep := VerifyChain(net, chain)
	if !rep.Acyclic {
		t.Fatalf("5D: %s", rep)
	}
}

func TestScaleWitnessLargeMesh(t *testing.T) {
	// The topological witness also scales: a full ordering of every
	// concrete channel on a 16x16 mesh.
	chain := core.MustParseChain("PA[X1+ Y1+ Y1-] -> PB[X1- Y2+ Y2-]")
	g := BuildFromTurnSet(topology.NewMesh(16, 16),
		VCConfigFor(2, chain.Channels()), chain.AllTurns())
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != g.NumChannels() {
		t.Errorf("witness covers %d of %d", len(order), g.NumChannels())
	}
}
