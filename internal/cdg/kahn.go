package cdg

import (
	"context"
	"sync/atomic"

	"ebda/internal/obs/trace"
)

// This file implements the parallel acyclicity fast path: a Kahn
// topological peel over the bounded worker pool, with cycle extraction by
// three-colour DFS restricted to the unpeeled residual.
//
// The peel repeatedly removes every channel whose dependency in-degree has
// dropped to zero. The maximal peel is unique — a channel is peelable iff
// no cycle reaches it, a property of the graph, not of removal order — so
// the residual (and therefore Acyclic and the extracted cycle) is
// bit-identical for every worker count and scheduling. The residual is
// also successor-closed: an edge from an unpeeled channel never delivered
// its decrement, so its target's in-degree stays positive. DFS started
// from residual channels therefore never leaves the residual and needs no
// membership tests on successors.

// DFS colours shared by findCycleResidual and FindCycle.
const (
	dfsWhite = 0
	dfsGrey  = 1
	dfsBlack = 2
)

// acyclicState is the reusable scratch of one Kahn peel + residual DFS.
// The zero value is ready to use; Workspaces keep one across
// verifications so the common acyclic case allocates nothing after the
// first run.
type acyclicState struct {
	// indeg[i] is channel i's remaining dependency in-degree; after the
	// peel, indeg[i] > 0 marks the residual.
	indeg []int32
	// frontier/swap double-buffer the zero in-degree wavefront.
	frontier []int32
	swap     []int32
	// next[w] is worker w's private discovery buffer for one round.
	next [][]int32
	// color/parent are the residual DFS scratch, sized lazily because the
	// common acyclic case never needs them.
	color  []uint8
	parent []int32
}

// ensure sizes the peel scratch for n channels, zeroing in-degrees.
func (st *acyclicState) ensure(n int) {
	if cap(st.indeg) < n {
		st.indeg = make([]int32, n)
	} else {
		st.indeg = st.indeg[:n]
		for i := range st.indeg {
			st.indeg[i] = 0
		}
	}
	st.frontier = st.frontier[:0]
	st.swap = st.swap[:0]
}

// kahnPeel runs the topological peel and returns the number of channels
// peeled; the graph is acyclic iff that equals NumChannels. jobs <= 0
// means all cores. On return st.indeg marks the residual (indeg > 0).
//
// ctx is checked once per frontier round (rounds are the only unbounded
// dimension of the peel; one round is a bounded parallel sweep), so a
// server deadline stops the work within a round's latency. On
// cancellation the peel stops early and returns ctx's error; the partial
// peel count must not be used for a verdict.
//
//ebda:hotpath
func (g *Graph) kahnPeel(ctx context.Context, jobs int, st *acyclicState) (int, error) {
	return kahnPeelAdj(ctx, g.adj, jobs, st)
}

// kahnPeelAdj is the representation-agnostic peel behind Graph.kahnPeel
// and the abstract EdgeSet verification: it needs only the adjacency rows
// (sorted or not — the peel never relies on row order), so any dependency
// graph reduced to dense int32 successor lists runs through the one
// engine. The determinism argument is unchanged: the maximal peel is a
// property of the graph, so the residual is bit-identical for every
// worker count.
//
//ebda:hotpath
func kahnPeelAdj(ctx context.Context, adj [][]int32, jobs int, st *acyclicState) (int, error) {
	nc := len(adj)
	st.ensure(nc)
	if nc == 0 {
		return 0, ctx.Err()
	}
	ksp := trace.FromContext(ctx).StartSpan("cdg.kahn")
	workers := resolveJobs(jobs, nc)
	indeg := st.indeg
	// In-degree accumulation: rows shard by channel; targets are shared,
	// so parallel workers count with atomic adds.
	if workers <= 1 {
		for i := 0; i < nc; i++ {
			for _, s := range adj[i] {
				indeg[s]++
			}
		}
	} else {
		parallelFor(workers, func(w int) {
			for i := w; i < nc; i += workers {
				for _, s := range adj[i] {
					atomic.AddInt32(&indeg[s], 1)
				}
			}
		})
	}
	frontier := st.frontier
	for i := 0; i < nc; i++ {
		if indeg[i] == 0 {
			frontier = append(frontier, int32(i))
		}
	}
	peeled := len(frontier)
	rounds := uint64(0)
	if cap(st.next) < workers {
		st.next = append(st.next[:cap(st.next)], make([][]int32, workers-cap(st.next))...)
	}
	st.next = st.next[:workers]
	// Peel rounds: each round removes the current frontier and discovers
	// the channels whose in-degree that drops to zero. The atomic
	// decrement returns the new value, so exactly one worker sees zero and
	// discovery buffers stay duplicate-free.
	for len(frontier) > 0 {
		if err := ctx.Err(); err != nil {
			st.frontier = frontier
			obsKahnRounds.Add(rounds)
			obsVerifyCancelled.Inc()
			ksp.SetInt("rounds", int64(rounds))
			ksp.SetInt("cancelled", 1)
			ksp.End()
			return peeled, err
		}
		rounds++
		w := resolveJobs(workers, len(frontier))
		out := st.swap[:0]
		if w <= 1 {
			for _, v := range frontier {
				for _, s := range adj[v] {
					if indeg[s]--; indeg[s] == 0 {
						out = append(out, s)
					}
				}
			}
		} else {
			parallelFor(w, func(k int) {
				buf := st.next[k][:0]
				for i := k; i < len(frontier); i += w {
					for _, s := range adj[frontier[i]] {
						if atomic.AddInt32(&indeg[s], -1) == 0 {
							buf = append(buf, s)
						}
					}
				}
				st.next[k] = buf
			})
			for k := 0; k < w; k++ {
				out = append(out, st.next[k]...)
			}
		}
		st.swap, frontier = frontier, out
		peeled += len(frontier)
	}
	st.frontier = frontier
	obsKahnRounds.Add(rounds)
	ksp.SetInt("rounds", int64(rounds))
	ksp.SetInt("peeled", int64(peeled))
	ksp.End()
	return peeled, nil
}

// findCycleResidual extracts one dependency cycle from the residual left
// by kahnPeel (st.indeg > 0), which must be non-empty. The three-colour
// DFS visits residual channels in ascending index order over sorted
// adjacency, so the reported cycle is independent of the worker count the
// peel ran with.
func (g *Graph) findCycleResidual(st *acyclicState) []Channel {
	idx := findCycleResidualAdj(g.adj, st)
	if idx == nil {
		return nil
	}
	cyc := make([]Channel, len(idx))
	for i, v := range idx {
		cyc[i] = g.channels[v]
	}
	return cyc
}

// findCycleResidualAdj is findCycleResidual on bare adjacency rows,
// returning the cycle as dense indices in dependency order (the last
// element depends on the first). It is shared by the concrete Graph and
// the abstract EdgeSet verification.
func findCycleResidualAdj(adj [][]int32, st *acyclicState) []int32 {
	nc := len(adj)
	if cap(st.color) < nc {
		st.color = make([]uint8, nc)
		st.parent = make([]int32, nc)
	}
	st.color = st.color[:nc]
	st.parent = st.parent[:nc]
	// Only residual entries need resetting: the DFS never reads the rest
	// (the residual is successor-closed).
	for i := 0; i < nc; i++ {
		if st.indeg[i] > 0 {
			st.color[i] = dfsWhite
			st.parent[i] = -1
		}
	}
	type frame struct {
		node int32
		next int
	}
	var stack []frame
	for start := 0; start < nc; start++ {
		if st.indeg[start] == 0 || st.color[start] != dfsWhite {
			continue
		}
		stack = append(stack[:0], frame{node: int32(start)})
		st.color[start] = dfsGrey
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.next < len(adj[f.node]) {
				succ := adj[f.node][f.next]
				f.next++
				switch st.color[succ] {
				case dfsWhite:
					st.color[succ] = dfsGrey
					st.parent[succ] = f.node
					stack = append(stack, frame{node: succ})
				case dfsGrey:
					// Found a cycle: walk parents from f.node back to
					// succ, then reverse into dependency order.
					var cyc []int32
					for v := f.node; ; v = st.parent[v] {
						cyc = append(cyc, v)
						if v == succ {
							break
						}
					}
					for i, j := 0, len(cyc)-1; i < j; i, j = i+1, j-1 {
						cyc[i], cyc[j] = cyc[j], cyc[i]
					}
					return cyc
				}
			} else {
				st.color[f.node] = dfsBlack
				stack = stack[:len(stack)-1]
			}
		}
	}
	return nil
}

// AcyclicJobs reports whether the graph has no cycles, running the Kahn
// peel over a bounded worker pool (jobs <= 0 means all cores). The answer
// is identical for every jobs value.
func (g *Graph) AcyclicJobs(jobs int) bool {
	var st acyclicState
	peeled, _ := g.kahnPeel(context.Background(), jobs, &st)
	return peeled == len(g.channels)
}

// FindCycleJobs returns one dependency cycle (the last element depends on
// the first), or nil if the graph is acyclic. The acyclicity test is the
// parallel Kahn peel; cycle extraction runs only on the unpeeled residual,
// so the common acyclic case is parallel O(V+E) and the cyclic case hands
// the DFS a smaller graph. Output is identical for every jobs value.
func (g *Graph) FindCycleJobs(jobs int) []Channel {
	var st acyclicState
	if peeled, _ := g.kahnPeel(context.Background(), jobs, &st); peeled == len(g.channels) {
		return nil
	}
	return g.findCycleResidual(&st)
}
