package cdg

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"ebda/internal/core"
	"ebda/internal/topology"
)

// cancelledCtx returns a context that is already cancelled.
func cancelledCtx() context.Context {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	return ctx
}

// TestVerifyCtxAlreadyCancelled pins the serving contract: an expired
// deadline stops the work before any verdict is produced, at every layer
// (workspace, pooled package entry, cache).
func TestVerifyCtxAlreadyCancelled(t *testing.T) {
	net := topology.NewMesh(6, 6)
	chain := core.MustParseChain("PA[X+ X- Y-] -> PB[Y+]")
	ts := chain.AllTurns()
	vcs := VCConfigFor(net.Dims(), chain.Channels())
	ctx := cancelledCtx()

	ws := NewWorkspace(net, vcs)
	if rep, err := ws.VerifyTurnSetCtx(ctx, ts, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("workspace: err = %v, want context.Canceled", err)
	} else if !reflect.DeepEqual(rep, Report{}) {
		t.Fatalf("workspace: cancelled run produced a non-zero report: %+v", rep)
	}

	if _, err := VerifyTurnSetCtx(ctx, net, vcs, ts, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("pooled: err = %v, want context.Canceled", err)
	}

	cache := &VerifyCache{}
	if _, err := cache.VerifyTurnSetCtx(ctx, net, vcs, ts, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("cache: err = %v, want context.Canceled", err)
	}
	if st := cache.Stats(); st.Entries != 0 {
		t.Fatalf("cache stored an entry for a cancelled verification: %+v", st)
	}
}

// TestVerifyCtxCancelledBetweenKahnRounds drives kahnPeel directly with a
// pre-cancelled context: the peel must abandon the rounds loop and report
// the error (the initial zero-in-degree frontier is discovered before the
// first round check, so the peel count stays partial).
func TestVerifyCtxCancelledBetweenKahnRounds(t *testing.T) {
	net := topology.NewMesh(6, 6)
	chain := core.MustParseChain("PA[X+ X- Y-] -> PB[Y+]")
	ts := chain.AllTurns()
	vcs := VCConfigFor(net.Dims(), chain.Channels())
	g := BuildFromTurnSet(net, vcs, ts)
	var st acyclicState
	peeled, err := g.kahnPeel(cancelledCtx(), 1, &st)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("kahnPeel err = %v, want context.Canceled", err)
	}
	if peeled >= g.NumChannels() {
		t.Fatalf("cancelled peel claims completion: peeled %d of %d", peeled, g.NumChannels())
	}
}

// TestVerifyCtxMatchesUncancelledPath checks the context-aware entry
// points return bit-identical reports to the established ones when the
// context never fires, for both an acyclic and a cyclic design.
func TestVerifyCtxMatchesUncancelledPath(t *testing.T) {
	net := topology.NewMesh(5, 5)
	cases := []struct {
		name string
		ts   *core.TurnSet
	}{
		{"acyclic", core.MustParseChain("PA[X+ X- Y-] -> PB[Y+]").AllTurns()},
		{"cyclic", allTurnsTS()},
	}
	for _, tc := range cases {
		vcs := VCConfigFor(net.Dims(), tc.ts.Classes())
		want := VerifyTurnSetJobs(net, vcs, tc.ts, 1)
		got, err := VerifyTurnSetCtx(context.Background(), net, vcs, tc.ts, 2)
		if err != nil {
			t.Fatalf("%s: unexpected error: %v", tc.name, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("%s: ctx path diverged:\nwant %+v\ngot  %+v", tc.name, want, got)
		}
	}
}

// allTurnsTS builds the unrestricted 2D relation (every 90-degree turn
// allowed), which is cyclic on a mesh.
func allTurnsTS() *core.TurnSet {
	turns, err := core.ParseTurnList("X+>Y+,X+>Y-,X->Y+,X->Y-,Y+>X+,Y+>X-,Y->X+,Y->X-")
	if err != nil {
		panic(err)
	}
	ts := core.NewTurnSet()
	for _, t := range turns {
		ts.Add(t.From, t.To, core.ByTheorem1)
	}
	return ts
}

// TestCacheLookupProvenance pins Lookup's contract: a miss counts
// nothing, a hit counts a hit and returns the exact stored report.
func TestCacheLookupProvenance(t *testing.T) {
	net := topology.NewMesh(5, 5)
	chain := core.MustParseChain("PA[X+ X- Y-] -> PB[Y+]")
	ts := chain.AllTurns()
	vcs := VCConfigFor(net.Dims(), chain.Channels())
	cache := &VerifyCache{}

	if _, ok := cache.Lookup(net, vcs, ts); ok {
		t.Fatal("Lookup hit on an empty cache")
	}
	if st := cache.Stats(); st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("Lookup miss moved counters: %+v", st)
	}
	want, err := cache.VerifyTurnSetCtx(context.Background(), net, vcs, ts, 1)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := cache.Lookup(net, vcs, ts)
	if !ok {
		t.Fatal("Lookup miss after a computed verification")
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("Lookup returned a different report:\nwant %+v\ngot  %+v", want, got)
	}
	if st := cache.Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("counters after miss+compute+hit: %+v", st)
	}
}

// TestVerifyKeyStable pins that VerifyKey matches the cache's internal
// identity: equal shapes collide, different turn sets do not.
func TestVerifyKeyStable(t *testing.T) {
	net := topology.NewMesh(5, 5)
	a := core.MustParseChain("PA[X+ X- Y-] -> PB[Y+]")
	b := core.MustParseChain("PA[X+ X- Y+] -> PB[Y-]")
	vcsA := VCConfigFor(net.Dims(), a.Channels())
	k1, c1 := VerifyKey(net, vcsA, a.AllTurns())
	k2, c2 := VerifyKey(net, vcsA, a.AllTurns())
	if k1 != k2 || c1 != c2 {
		t.Fatal("VerifyKey is not deterministic for equal inputs")
	}
	k3, _ := VerifyKey(net, VCConfigFor(net.Dims(), b.Channels()), b.AllTurns())
	if k1 == k3 {
		t.Fatal("distinct turn sets share a verify key")
	}
}
