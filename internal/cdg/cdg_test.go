package cdg

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ebda/internal/channel"
	"ebda/internal/core"
	"ebda/internal/topology"
)

func xyTurnSet() *core.TurnSet {
	// XY routing: X before Y — EN, ES, WN, WS only.
	ts := core.NewTurnSet()
	e, w := channel.New(channel.X, channel.Plus), channel.New(channel.X, channel.Minus)
	n, s := channel.New(channel.Y, channel.Plus), channel.New(channel.Y, channel.Minus)
	for _, from := range []channel.Class{e, w} {
		for _, to := range []channel.Class{n, s} {
			ts.Add(from, to, core.ByTheorem3)
		}
	}
	return ts
}

func allTurnSet() *core.TurnSet {
	// Every 90-degree turn — deadlock-capable.
	ts := core.NewTurnSet()
	dirs := channel.MustParseList("X+ X- Y+ Y-")
	for _, a := range dirs {
		for _, b := range dirs {
			if a.Dim != b.Dim {
				ts.Add(a, b, core.ByTheorem1)
			}
		}
	}
	return ts
}

func TestXYAcyclic(t *testing.T) {
	rep := VerifyTurnSet(topology.NewMesh(4, 4), nil, xyTurnSet())
	if !rep.Acyclic {
		t.Fatalf("XY routing must be acyclic: %s", rep)
	}
	if rep.Channels != 48 {
		t.Errorf("channels = %d, want 48", rep.Channels)
	}
}

func TestAllTurnsCyclic(t *testing.T) {
	rep := VerifyTurnSet(topology.NewMesh(3, 3), nil, allTurnSet())
	if rep.Acyclic {
		t.Fatal("unrestricted 2D turns must form cycles")
	}
	if len(rep.Cycle) < 4 {
		t.Errorf("cycle too short: %v", rep.Cycle)
	}
	// The reported cycle must be a genuine dependency cycle: consecutive
	// channels meet head-to-tail.
	for i, c := range rep.Cycle {
		next := rep.Cycle[(i+1)%len(rep.Cycle)]
		if c.Link.To != next.Link.From {
			t.Errorf("cycle edge %d does not connect: %v -> %v", i, c, next)
		}
	}
}

func TestSCCsMatchCycleDetection(t *testing.T) {
	gCyclic := BuildFromTurnSet(topology.NewMesh(3, 3), nil, allTurnSet())
	if len(gCyclic.SCCs()) == 0 {
		t.Error("cyclic graph should report SCCs")
	}
	gAcyclic := BuildFromTurnSet(topology.NewMesh(3, 3), nil, xyTurnSet())
	if len(gAcyclic.SCCs()) != 0 {
		t.Error("acyclic graph should report no SCCs")
	}
}

func TestVerifyChainNorthLast(t *testing.T) {
	chain := core.MustParseChain("PA[X+ X- Y-] -> PB[Y+]")
	rep := VerifyChain(topology.NewMesh(5, 5), chain)
	if !rep.Acyclic {
		t.Fatalf("north-last chain must verify acyclic: %s", rep)
	}
}

func TestVerifyChainWithUTurns(t *testing.T) {
	// The full turn set including Theorem-2/3 U- and I-turns must remain
	// acyclic — the paper's central claim.
	for _, spec := range []string{
		"PA[X+ X- Y-] -> PB[Y+]",
		"PA[X- Y-] -> PB[X+ Y+]",
		"PA[X1+ Y1+ Y1-] -> PB[X1- Y2+ Y2-]",
		"PA[X+] -> PB[X-] -> PC[Y+] -> PD[Y-]",
	} {
		chain := core.MustParseChain(spec)
		rep := VerifyChain(topology.NewMesh(4, 4), chain)
		if !rep.Acyclic {
			t.Errorf("%s: %s", spec, rep)
		}
	}
}

func TestTwoCompletePairsCycle(t *testing.T) {
	// A Theorem-1-violating partition (both pairs complete) must produce
	// a cycle once its turns are laid on a mesh. Build the turn set
	// manually since NewChain would reject the partition.
	ts := core.NewTurnSet()
	dirs := channel.MustParseList("X1+ X2- Y1+ Y2-")
	for _, a := range dirs {
		for _, b := range dirs {
			if a.Dim != b.Dim {
				ts.Add(a, b, core.ByTheorem1)
			}
		}
	}
	rep := VerifyTurnSet(topology.NewMesh(3, 3), VCConfig{2, 2}, ts)
	if rep.Acyclic {
		t.Fatal("two complete pairs must form a cycle (note to Theorem 1)")
	}
}

func TestVCConfig(t *testing.T) {
	var nilCfg VCConfig
	if nilCfg.VCs(channel.X) != 1 {
		t.Error("nil config should default to 1")
	}
	cfg := Uniform(3, 2)
	if cfg.VCs(channel.Z) != 2 || cfg.VCs(channel.Dim(5)) != 1 {
		t.Error("Uniform/overflow broken")
	}
	derived := VCConfigFor(3, channel.MustParseList("X2+ Y1- Z4+"))
	if derived[0] != 2 || derived[1] != 1 || derived[2] != 4 {
		t.Errorf("VCConfigFor = %v", derived)
	}
}

func TestChannelCount(t *testing.T) {
	g := NewGraph(topology.NewMesh(3, 3), VCConfig{2, 1})
	// 3x3 mesh: 12 X-links and 12 Y-links each direction pair => 24
	// unidirectional links; X links get 2 VCs.
	want := 12*2 + 12*1
	if g.NumChannels() != want {
		t.Errorf("channels = %d, want %d", g.NumChannels(), want)
	}
}

func TestParityMatchingOddEven(t *testing.T) {
	// Odd-Even Rule 1: EN allowed only at odd columns. With the class
	// E -> No, the dependency E(into odd-x node) -> N must exist and the
	// even-column one must not.
	ts := core.NewTurnSet()
	e := channel.New(channel.X, channel.Plus)
	no := channel.NewParity(channel.Y, channel.Plus, channel.X, channel.Odd)
	ts.Add(e, no, core.ByTheorem1)
	net := topology.NewMesh(4, 4)
	g := BuildFromTurnSet(net, nil, ts)

	// E channel into node (1,1): tail (0,1); N channel out of (1,1).
	eIntoOdd, ok1 := g.FindChannel(net.ID(topology.Coord{0, 1}), channel.X, channel.Plus, 1)
	nAtOdd, ok2 := g.FindChannel(net.ID(topology.Coord{1, 1}), channel.Y, channel.Plus, 1)
	if !ok1 || !ok2 {
		t.Fatal("channels not found")
	}
	if !g.HasEdge(eIntoOdd.Index, nAtOdd.Index) {
		t.Error("EN dependency at odd column must exist")
	}
	// E channel into node (2,1): tail (1,1); N channel out of (2,1).
	eIntoEven, ok3 := g.FindChannel(net.ID(topology.Coord{1, 1}), channel.X, channel.Plus, 1)
	nAtEven, ok4 := g.FindChannel(net.ID(topology.Coord{2, 1}), channel.Y, channel.Plus, 1)
	if !ok3 || !ok4 {
		t.Fatal("channels not found")
	}
	if g.HasEdge(eIntoEven.Index, nAtEven.Index) {
		t.Error("EN dependency at even column must not exist")
	}
	// Same-class continuation must exist for declared classes: E -> E.
	if !g.HasEdge(eIntoOdd.Index, eIntoEven.Index) {
		t.Error("E continuation dependency must exist")
	}
}

func TestConnectivityXY(t *testing.T) {
	rep := Connectivity(topology.NewMesh(4, 4), nil, xyTurnSet(), true)
	if !rep.Connected() {
		t.Fatalf("XY must connect all pairs: %s", rep)
	}
	if rep.Pairs != 16*15 {
		t.Errorf("pairs = %d", rep.Pairs)
	}
}

func TestConnectivityDetectsGaps(t *testing.T) {
	// Only EN allowed: many pairs unreachable.
	ts := core.NewTurnSet()
	ts.Add(channel.New(channel.X, channel.Plus), channel.New(channel.Y, channel.Plus), core.ByTheorem1)
	rep := Connectivity(topology.NewMesh(3, 3), nil, ts, true)
	if rep.Connected() {
		t.Fatal("EN-only turn set cannot be fully connected")
	}
}

func TestAdaptivenessXYDeterministic(t *testing.T) {
	rep, err := Adaptiveness(topology.NewMesh(4, 4), nil, xyTurnSet())
	if err != nil {
		t.Fatal(err)
	}
	// XY uses exactly one minimal path per pair.
	if rep.UsableSum != rep.Pairs {
		t.Errorf("XY usable paths = %d, want %d (one per pair)", rep.UsableSum, rep.Pairs)
	}
	if rep.FullyAdaptive() {
		t.Error("XY must not be fully adaptive")
	}
	if rep.BrokenPairs != 0 {
		t.Errorf("XY broke %d pairs", rep.BrokenPairs)
	}
}

func TestAdaptivenessDyXYFull(t *testing.T) {
	// Figure 7(b): the six-channel design is fully adaptive.
	chain := core.MustParseChain("PA[X1+ Y1+ Y1-] -> PB[X1- Y2+ Y2-]")
	net := topology.NewMesh(4, 4)
	vcs := VCConfigFor(2, chain.Channels())
	rep, err := Adaptiveness(net, vcs, chain.AllTurns())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.FullyAdaptive() {
		t.Fatalf("DyXY design must be fully adaptive: %s", rep)
	}
}

func TestAdaptivenessWestFirstPartial(t *testing.T) {
	chain := core.MustParseChain("PA[X-] -> PB[X+ Y+ Y-]")
	rep, err := Adaptiveness(topology.NewMesh(4, 4), nil, chain.AllTurns())
	if err != nil {
		t.Fatal(err)
	}
	if rep.FullyAdaptive() {
		t.Error("west-first must not be fully adaptive")
	}
	if rep.BrokenPairs != 0 {
		t.Errorf("west-first broke %d pairs", rep.BrokenPairs)
	}
	if rep.Degree() <= 0.5 {
		t.Errorf("west-first adaptiveness %.3f suspiciously low", rep.Degree())
	}
}

func TestUsableMinimalPathsExact(t *testing.T) {
	// West-first on a straight-east route: 1 path, usable.
	chain := core.MustParseChain("PA[X-] -> PB[X+ Y+ Y-]")
	net := topology.NewMesh(4, 4)
	ts := chain.AllTurns()
	src, dst := net.ID(topology.Coord{0, 0}), net.ID(topology.Coord{3, 0})
	usable, total, err := UsableMinimalPaths(net, nil, ts, src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if usable != 1 || total != 1 {
		t.Errorf("straight east: %d/%d", usable, total)
	}
	// North-east region is fully adaptive under west-first.
	dst = net.ID(topology.Coord{2, 2})
	usable, total, err = UsableMinimalPaths(net, nil, ts, src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if total != 6 || usable != 6 {
		t.Errorf("NE region: %d/%d, want 6/6", usable, total)
	}
	// South-west region is deterministic (west first, then south... the
	// WS turn allows south after west only): exactly 1 usable path.
	src = net.ID(topology.Coord{3, 3})
	dst = net.ID(topology.Coord{1, 1})
	usable, total, err = UsableMinimalPaths(net, nil, ts, src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if total != 6 || usable != 1 {
		t.Errorf("SW region: %d/%d, want 1/6", usable, total)
	}
}

func TestQuickRandomChainsVerifyAcyclic(t *testing.T) {
	// The heart of the reproduction: ANY valid chain built from random
	// disjoint Theorem-1 partitions must induce an acyclic CDG with all
	// of Theorems 1-3 applied.
	net := topology.NewMesh(3, 3)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		chain := randomChain(r, 2, 2)
		if chain == nil {
			return true
		}
		vcs := VCConfigFor(2, chain.Channels())
		rep := VerifyTurnSet(net, vcs, chain.AllTurns())
		return rep.Acyclic
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickRandomChains3D(t *testing.T) {
	net := topology.NewMesh(3, 3, 2)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		chain := randomChain(r, 3, 2)
		if chain == nil {
			return true
		}
		vcs := VCConfigFor(3, chain.Channels())
		rep := VerifyTurnSet(net, vcs, chain.AllTurns())
		return rep.Acyclic
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// randomChain greedily assigns a random subset of the (dim, sign, vc)
// channel space to random partitions, keeping each partition Theorem-1
// valid; returns nil when the draw produces no valid non-empty chain.
func randomChain(r *rand.Rand, dims, maxVC int) *core.Chain {
	var pool []channel.Class
	for d := 0; d < dims; d++ {
		for vc := 1; vc <= maxVC; vc++ {
			for _, s := range []channel.Sign{channel.Plus, channel.Minus} {
				if r.Intn(3) > 0 { // keep ~2/3 of channels
					pool = append(pool, channel.NewVC(channel.Dim(d), s, vc))
				}
			}
		}
	}
	r.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	numParts := 1 + r.Intn(4)
	buckets := make([][]channel.Class, numParts)
	for _, c := range pool {
		// Try buckets in random order; place c in the first one that
		// stays Theorem-1 valid.
		order := r.Perm(numParts)
		for _, b := range order {
			trial := append(append([]channel.Class(nil), buckets[b]...), c)
			p, err := core.NewPartition("T", trial...)
			if err == nil && p.CycleFree() {
				buckets[b] = trial
				break
			}
		}
	}
	var parts []*core.Partition
	for i, b := range buckets {
		if len(b) == 0 {
			continue
		}
		p, err := core.NewPartition("P"+string(rune('A'+i)), b...)
		if err != nil {
			return nil
		}
		parts = append(parts, p)
	}
	if len(parts) == 0 {
		return nil
	}
	chain, err := core.NewChain(parts...)
	if err != nil {
		return nil
	}
	return chain
}
