package cdg

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// This file extends the topology-free EdgeSet surface from plain
// acyclicity to the full family of channel-dependence-graph properties
// the constellation verify.py interchange exercises (-a/-b/-c/-d): a
// graph annotated with input and output channel sets can be checked for
// liveness (every packet injected at an input drains to an output),
// escape-channel validity (the Duato condition on a given escape
// subset), and existence of a valid subrelation (an acyclic sub-CDG
// that still drains everything). All four modes run through the same
// parallel Kahn peel + residual-only cycle DFS as the concrete engine,
// so verdicts and witnesses are bit-identical for every worker count,
// and all four memoize through mode-aware cache keys derived from the
// EdgeKey family.
//
// Semantics (outputs are absorbing — a packet that reaches an output
// channel is consumed, so edges out of outputs never propagate):
//
//	loop      the full graph is acyclic (EdgeSet acyclicity, with the
//	          input/output annotation folded into the cache key).
//	liveness  every channel reachable from an input, stopping at
//	          outputs, is neither on a cycle nor a non-output dead
//	          end: every maximal path from every input ends at an
//	          output.
//	escape    a given escape channel set C is valid: (1) the subgraph
//	          induced by C is acyclic, (2) every channel in C drains
//	          to an output within C ∪ outputs, and (3) every other
//	          non-output channel reaches C ∪ outputs.
//	subrel    some acyclic subrelation (a subset of the dependency
//	          edges, one outgoing edge per non-output channel) drains
//	          every non-output channel to an output. Such a
//	          subrelation exists iff every non-output channel can
//	          reach an output; the reported witness follows
//	          breadth-first distance-to-output, so it is canonical.
//
// Channels with no edges at all are vacuous for escape and subrel:
// constellation per-output CDGs leave most channel ids out of the
// relation for any one destination, and a channel no packet can occupy
// or wait on cannot participate in a deadlock, so it owes no escape
// path. (Liveness still rejects a reachable isolated channel — a packet
// routed into it is stuck.)

// GraphMode selects a verification property for an annotated edge set.
type GraphMode uint8

const (
	// ModeLoop proves deadlock freedom by searching the full graph for a
	// loop (constellation -b).
	ModeLoop GraphMode = 1 + iota
	// ModeLiveness proves every input channel drains to an output
	// without entering a cycle or dead end (constellation -a).
	ModeLiveness
	// ModeEscape proves deadlock freedom by verifying a given escape
	// channel set (constellation -c).
	ModeEscape
	// ModeSubrel proves deadlock freedom by searching for a valid
	// acyclic subrelation (constellation -d).
	ModeSubrel
)

// String returns the mode's CLI spelling.
func (m GraphMode) String() string {
	switch m {
	case ModeLoop:
		return "loop"
	case ModeLiveness:
		return "liveness"
	case ModeEscape:
		return "escape"
	case ModeSubrel:
		return "subrel"
	}
	return fmt.Sprintf("mode(%d)", uint8(m))
}

// ParseGraphMode parses a CLI/API mode spelling.
func ParseGraphMode(s string) (GraphMode, error) {
	switch s {
	case "loop":
		return ModeLoop, nil
	case "liveness":
		return ModeLiveness, nil
	case "escape":
		return ModeEscape, nil
	case "subrel":
		return ModeSubrel, nil
	}
	return 0, fmt.Errorf("cdg: unknown graph mode %q (want loop, liveness, escape or subrel)", s)
}

// Violation reasons carried by ModeReport.Reason.
const (
	// ReasonCycle: the (relevant region of the) graph contains a
	// dependency cycle; ModeReport.Cycle holds it.
	ReasonCycle = "cycle"
	// ReasonDeadEnd: a non-output channel reachable from an input has no
	// successors; ModeReport.Path walks from an input to it.
	ReasonDeadEnd = "dead-end"
	// ReasonEscapeCycle: the subgraph induced by the escape set is
	// cyclic.
	ReasonEscapeCycle = "escape-cycle"
	// ReasonEscapeStranded: an escape channel cannot drain to an output
	// within the escape subrelation.
	ReasonEscapeStranded = "escape-stranded"
	// ReasonNoEscape: a non-output channel cannot reach the escape set
	// or an output.
	ReasonNoEscape = "no-escape"
	// ReasonNoSubrel: no valid subrelation exists — some non-output
	// channel cannot reach an output at all.
	ReasonNoSubrel = "no-subrelation"
)

// ModeReport is the verdict of one mode verification over an annotated
// edge set. It is the EdgeReport of the multi-mode surface: witnesses
// are dense channel indices produced by the same deterministic
// machinery (parallel Kahn peel, residual-only DFS, ascending-order
// BFS), so reports are bit-identical for every worker count.
type ModeReport struct {
	Mode  GraphMode
	Nodes int
	Edges int
	// OK reports whether the property holds.
	OK bool
	// Reason names the violation kind when OK is false (one of the
	// Reason* constants).
	Reason string
	// Path is a witness chain of channels leading to the violation: for
	// liveness it walks from an input to the offending channel; for
	// escape/subrel failures it names the stranded channel.
	Path []int
	// Cycle holds the offending dependency cycle in dependency order
	// (the last element depends on the first) when the violation is a
	// cycle.
	Cycle []int
	// Subrelation is the found acyclic escape subrelation for a
	// successful subrel verification: one (sender, receiver) edge per
	// draining non-output channel, ascending by sender.
	Subrelation [][2]int
}

// FormatNodeChain renders dense channel indices as "n1 => n17 => n8".
func FormatNodeChain(chain []int) string {
	parts := make([]string, len(chain))
	for i, v := range chain {
		parts[i] = fmt.Sprintf("n%d", v)
	}
	return strings.Join(parts, " => ")
}

// String renders the report on one line.
func (r ModeReport) String() string {
	if r.OK {
		extra := ""
		if r.Mode == ModeSubrel {
			extra = fmt.Sprintf(" (subrelation: %d edges)", len(r.Subrelation))
		}
		return fmt.Sprintf("%s: %d channels, %d edges: VERIFIED%s", r.Mode, r.Nodes, r.Edges, extra)
	}
	w := ""
	switch {
	case len(r.Cycle) > 0 && len(r.Path) > 0:
		w = ": " + FormatNodeChain(r.Path) + " => [" + FormatNodeChain(r.Cycle) + " => (repeat)]"
	case len(r.Cycle) > 0:
		w = ": " + FormatNodeChain(r.Cycle) + " => (repeat)"
	case len(r.Path) > 0:
		w = ": " + FormatNodeChain(r.Path)
	}
	return fmt.Sprintf("%s: %d channels, %d edges: VIOLATED (%s)%s", r.Mode, r.Nodes, r.Edges, r.Reason, w)
}

// canonSet dedups and ascending-sorts a channel id set, panicking on an
// out-of-range id (callers — the graphio parser and the serve decoder —
// validate ranges before reaching the engine, mirroring
// EdgeSet.AddEdge's contract).
func canonSet(ids []int, n int, what string) []int32 {
	out := make([]int32, 0, len(ids))
	for _, v := range ids {
		if v < 0 || v >= n {
			panic(fmt.Sprintf("cdg: %s channel %d outside [0, %d)", what, v, n))
		}
		out = append(out, int32(v))
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	w := 0
	for i, v := range out {
		if i == 0 || v != out[w-1] {
			out[w] = v
			w++
		}
	}
	return out[:w]
}

// markSet builds a membership table for a canonical set.
func markSet(n int, ids []int32) []bool {
	m := make([]bool, n)
	for _, v := range ids {
		m[v] = true
	}
	return m
}

// VerifyMode checks one property of an annotated edge set using every
// available core. Escape ids are only meaningful for ModeEscape and
// must name non-output channels; all id sets are deduplicated and
// order-independent.
func VerifyMode(e *EdgeSet, mode GraphMode, inputs, outputs, escape []int) ModeReport {
	return VerifyModeJobs(e, mode, inputs, outputs, escape, 0)
}

// VerifyModeJobs is VerifyMode over a bounded worker pool (jobs <= 0
// means all cores). The report is identical for every jobs value.
func VerifyModeJobs(e *EdgeSet, mode GraphMode, inputs, outputs, escape []int, jobs int) ModeReport {
	rep, _ := verifyModeCtx(context.Background(), e, mode, inputs, outputs, escape, jobs)
	return rep
}

// verifyModeCtx is the ctx-aware mode dispatcher. Cancellation is
// observed by the Kahn peels (once per frontier round) and by the BFS
// sweeps (every bfsCtxStride pops); a cancelled verification's partial
// report must not be used.
func verifyModeCtx(ctx context.Context, e *EdgeSet, mode GraphMode, inputs, outputs, escape []int, jobs int) (ModeReport, error) {
	n := len(e.adj)
	in := canonSet(inputs, n, "input")
	out := canonSet(outputs, n, "output")
	esc := canonSet(escape, n, "escape")
	isOut := markSet(n, out)
	obsModeVerify(mode)
	msp := phaseMode.Start()
	defer msp.End()
	rep := ModeReport{Mode: mode, Nodes: n, Edges: e.edges}
	var err error
	switch mode {
	case ModeLoop:
		err = loopMode(ctx, e, jobs, &rep)
	case ModeLiveness:
		err = livenessMode(ctx, e, in, isOut, jobs, &rep)
	case ModeEscape:
		err = escapeMode(ctx, e, out, esc, isOut, jobs, &rep)
	case ModeSubrel:
		err = subrelMode(ctx, e, out, isOut, jobs, &rep)
	default:
		panic(fmt.Sprintf("cdg: VerifyMode with invalid mode %d", uint8(mode)))
	}
	if err != nil {
		return ModeReport{}, err
	}
	if !rep.OK {
		obsModeViolations.Inc()
	}
	return rep, nil
}

// obsModeVerify bumps the per-mode verification counter.
func obsModeVerify(mode GraphMode) {
	switch mode {
	case ModeLoop:
		obsModeLoop.Inc()
	case ModeLiveness:
		obsModeLiveness.Inc()
	case ModeEscape:
		obsModeEscape.Inc()
	case ModeSubrel:
		obsModeSubrel.Inc()
	}
}

// loopMode is plain acyclicity of the full graph.
func loopMode(ctx context.Context, e *EdgeSet, jobs int, rep *ModeReport) error {
	var st acyclicState
	peeled, err := kahnPeelAdj(ctx, e.adj, jobs, &st)
	if err != nil {
		return err
	}
	if peeled == len(e.adj) {
		rep.OK = true
		return nil
	}
	rep.Reason = ReasonCycle
	rep.Cycle = toInts(findCycleResidualAdj(e.adj, &st))
	return nil
}

// bfsCtxStride bounds how many BFS pops happen between context checks.
const bfsCtxStride = 1 << 12

// livenessMode explores the region reachable from the inputs (outputs
// absorb), then rejects cycles and non-output dead ends inside it.
func livenessMode(ctx context.Context, e *EdgeSet, in []int32, isOut []bool, jobs int, rep *ModeReport) error {
	n := len(e.adj)
	seen := make([]bool, n)
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = -1
	}
	queue := make([]int32, 0, len(in))
	for _, v := range in {
		seen[v] = true
		queue = append(queue, v)
	}
	for qi := 0; qi < len(queue); qi++ {
		if qi%bfsCtxStride == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		v := queue[qi]
		if isOut[v] {
			continue
		}
		for _, s := range e.adj[v] {
			if !seen[s] {
				seen[s] = true
				parent[s] = v
				queue = append(queue, s)
			}
		}
	}
	// The region's adjacency: expanded rows are exactly the full rows
	// (every successor of an expanded channel is in the region), so rows
	// are shared, not copied. Outputs and unreached channels get empty
	// rows and peel immediately.
	radj := make([][]int32, n)
	for v := 0; v < n; v++ {
		if seen[v] && !isOut[v] {
			radj[v] = e.adj[v]
		}
	}
	var st acyclicState
	peeled, err := kahnPeelAdj(ctx, radj, jobs, &st)
	if err != nil {
		return err
	}
	if peeled != n {
		cyc := findCycleResidualAdj(radj, &st)
		rep.Reason = ReasonCycle
		rep.Cycle = toInts(cyc)
		rep.Path = walkParents(parent, lowest(cyc))
		return nil
	}
	for v := 0; v < n; v++ {
		if seen[v] && !isOut[v] && len(e.adj[v]) == 0 {
			rep.Reason = ReasonDeadEnd
			rep.Path = walkParents(parent, int32(v))
			return nil
		}
	}
	rep.OK = true
	return nil
}

// escapeMode verifies the Duato condition for a given escape channel
// set: the induced escape subgraph is acyclic, escape channels drain to
// outputs within the escape subrelation, and every other non-output
// channel can reach the escape set or an output.
func escapeMode(ctx context.Context, e *EdgeSet, out, esc []int32, isOut []bool, jobs int, rep *ModeReport) error {
	n := len(e.adj)
	// An escape channel that is also an output is absorbing anyway;
	// treat it as an output, not an escape member.
	kept := make([]int32, 0, len(esc))
	for _, v := range esc {
		if !isOut[v] {
			kept = append(kept, v)
		}
	}
	esc = kept
	isEsc := markSet(n, esc)
	// (1) induced escape subgraph acyclicity.
	eadj := make([][]int32, n)
	for _, c := range esc {
		row := make([]int32, 0, len(e.adj[c]))
		for _, s := range e.adj[c] {
			if isEsc[s] {
				row = append(row, s)
			}
		}
		eadj[c] = row
	}
	var st acyclicState
	peeled, err := kahnPeelAdj(ctx, eadj, jobs, &st)
	if err != nil {
		return err
	}
	if peeled != n {
		rep.Reason = ReasonEscapeCycle
		rep.Cycle = toInts(findCycleResidualAdj(eadj, &st))
		return nil
	}
	rev, err := reverseAdj(ctx, e, isOut)
	if err != nil {
		return err
	}
	active := activeSet(e, rev)
	// (2) escape channels drain within escape ∪ outputs: reverse BFS
	// from the outputs crossing only escape-to-(escape|output) edges.
	drained := make([]bool, n)
	queue := make([]int32, 0, len(out))
	for _, o := range out {
		drained[o] = true
		queue = append(queue, o)
	}
	for qi := 0; qi < len(queue); qi++ {
		if qi%bfsCtxStride == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		for _, p := range rev[queue[qi]] {
			if isEsc[p] && !drained[p] {
				drained[p] = true
				queue = append(queue, p)
			}
		}
	}
	for _, c := range esc {
		if active[c] && !drained[c] {
			rep.Reason = ReasonEscapeStranded
			rep.Path = []int{int(c)}
			return nil
		}
	}
	// (3) everything else reaches escape ∪ outputs: reverse BFS seeded
	// from both sets over all (absorbing) edges.
	reach := make([]bool, n)
	queue = queue[:0]
	for v := 0; v < n; v++ {
		if isOut[v] || isEsc[v] {
			reach[v] = true
			queue = append(queue, int32(v))
		}
	}
	for qi := 0; qi < len(queue); qi++ {
		if qi%bfsCtxStride == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		for _, p := range rev[queue[qi]] {
			if !reach[p] {
				reach[p] = true
				queue = append(queue, p)
			}
		}
	}
	for v := 0; v < n; v++ {
		if active[v] && !reach[v] {
			rep.Reason = ReasonNoEscape
			rep.Path = []int{v}
			return nil
		}
	}
	rep.OK = true
	return nil
}

// activeSet marks channels that participate in the dependency relation
// (at least one incident edge after output absorption); the rest are
// vacuous for escape and subrelation purposes.
func activeSet(e *EdgeSet, rev [][]int32) []bool {
	active := make([]bool, len(e.adj))
	for v := range active {
		active[v] = len(e.adj[v]) > 0 || len(rev[v]) > 0
	}
	return active
}

// subrelMode searches for a valid acyclic subrelation. One exists iff
// every non-output channel can reach an output (breadth-first distance
// to the output set is finite everywhere); the witness keeps, for each
// draining channel, its lowest distance-decreasing successor — a
// functional subgraph in which distance strictly decreases, hence
// acyclic, and every maximal path ends at an output.
func subrelMode(ctx context.Context, e *EdgeSet, out []int32, isOut []bool, jobs int, rep *ModeReport) error {
	n := len(e.adj)
	rev, err := reverseAdj(ctx, e, isOut)
	if err != nil {
		return err
	}
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	queue := make([]int32, 0, len(out))
	for _, o := range out {
		dist[o] = 0
		queue = append(queue, o)
	}
	for qi := 0; qi < len(queue); qi++ {
		if qi%bfsCtxStride == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		v := queue[qi]
		for _, p := range rev[v] {
			if dist[p] < 0 {
				dist[p] = dist[v] + 1
				queue = append(queue, p)
			}
		}
	}
	active := activeSet(e, rev)
	var strandedMin int32 = -1
	stranded := false
	sadj := make([][]int32, n)
	for v := 0; v < n; v++ {
		if active[v] && !isOut[v] && dist[v] < 0 {
			if !stranded {
				strandedMin = int32(v)
				stranded = true
			}
			// Successors of a stranded channel are all stranded (a
			// draining successor would drain it), so rows are shared.
			sadj[v] = e.adj[v]
		}
	}
	if stranded {
		rep.Reason = ReasonNoSubrel
		rep.Path = []int{int(strandedMin)}
		var st acyclicState
		peeled, err := kahnPeelAdj(ctx, sadj, jobs, &st)
		if err != nil {
			return err
		}
		if peeled != n {
			rep.Cycle = toInts(findCycleResidualAdj(sadj, &st))
		}
		return nil
	}
	rel := make([][2]int, 0, n-len(out))
	for v := 0; v < n; v++ {
		if !active[v] || isOut[v] || dist[v] < 0 {
			continue
		}
		for _, s := range e.adj[v] {
			if dist[s] == dist[v]-1 {
				rel = append(rel, [2]int{v, int(s)})
				break
			}
		}
	}
	rep.OK = true
	rep.Subrelation = rel
	return nil
}

// reverseAdj builds the reversed adjacency with absorbing outputs
// (edges out of outputs are dropped). Predecessor rows come out
// ascending because senders are visited ascending.
func reverseAdj(ctx context.Context, e *EdgeSet, isOut []bool) ([][]int32, error) {
	n := len(e.adj)
	rev := make([][]int32, n)
	for i := 0; i < n; i++ {
		if i%bfsCtxStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		if isOut[i] {
			continue
		}
		for _, s := range e.adj[i] {
			rev[s] = append(rev[s], int32(i))
		}
	}
	return rev, nil
}

// walkParents rebuilds the BFS discovery path from a seed to target,
// inclusive.
func walkParents(parent []int32, target int32) []int {
	var back []int
	for v := target; v >= 0; v = parent[v] {
		back = append(back, int(v))
	}
	for i, j := 0, len(back)-1; i < j; i, j = i+1, j-1 {
		back[i], back[j] = back[j], back[i]
	}
	return back
}

// lowest returns the smallest index in a non-empty cycle.
func lowest(cyc []int32) int32 {
	m := cyc[0]
	for _, v := range cyc[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// toInts widens a dense index slice.
func toInts(v []int32) []int {
	if v == nil {
		return nil
	}
	out := make([]int, len(v))
	for i, x := range v {
		out[i] = int(x)
	}
	return out
}

// ModeKey is the dual-hash cache identity of one mode verification:
// the EdgeKey fingerprint family extended with the mode and the
// order-independent digests of the input/output/escape annotation
// sets. Two verifications share a key iff they ask the same question
// of the same graph — in particular, the four modes of one graph never
// share keys (pinned by test), and none collides with the EdgeKey of
// the bare edge set.
func ModeKey(e *EdgeSet, mode GraphMode, inputs, outputs, escape []int) (key, check uint64) {
	const (
		modeKeySeedA = 0x71c9d37af3b26d61
		modeKeySeedB = 0x4cf5ad432745937f
		inSeed       = 0x9ddfea08eb382d69
		outSeed      = 0xc3a5c85c97cb3127
		escSeed      = 0xb492b66fbe98f273
	)
	n := len(e.adj)
	f1, f2 := e.Fingerprint()
	s1 := setDigest(canonSet(inputs, n, "input"), inSeed) +
		setDigest(canonSet(outputs, n, "output"), outSeed)
	if mode == ModeEscape {
		s1 += setDigest(canonSet(escape, n, "escape"), escSeed)
	}
	m := uint64(mode) * 0x9e3779b97f4a7c15
	key = mix64(f1 ^ modeKeySeedA ^ m ^ s1)
	check = mix64(f2*0x100000001b3 + modeKeySeedB + m + mix64(s1))
	return key, check
}

// setDigest is an order-independent digest of a canonical id set.
func setDigest(ids []int32, seed uint64) uint64 {
	h := mix64(uint64(len(ids)) ^ seed)
	for _, v := range ids {
		h += mix64(uint64(uint32(v)) ^ seed)
	}
	return h
}

// ModeCache memoizes mode verdicts under ModeKey with the engine-wide
// dual-hash discipline: a key match with a check mismatch is a miss,
// never a wrong report. Cached reports share their witness slices;
// callers must treat them as read-only.
type ModeCache struct {
	mu sync.RWMutex
	m  map[uint64]modeCacheEntry

	hits   atomic.Uint64
	misses atomic.Uint64
}

type modeCacheEntry struct {
	check uint64
	rep   ModeReport
}

// DefaultModeCache is the process-wide mode-verdict cache behind
// VerifyModeCached.
var DefaultModeCache = &ModeCache{}

// Stats returns current hit/miss counters and the live entry count.
func (c *ModeCache) Stats() CacheStats {
	c.mu.RLock()
	n := len(c.m)
	c.mu.RUnlock()
	return CacheStats{Hits: c.hits.Load(), Misses: c.misses.Load(), Entries: n}
}

// Reset clears all entries and counters.
func (c *ModeCache) Reset() {
	c.mu.Lock()
	c.m = nil
	c.mu.Unlock()
	c.hits.Store(0)
	c.misses.Store(0)
}

// Lookup probes the cache without computing. It is the serving layer's
// fast path: a hit is a verdict with zero engine work.
func (c *ModeCache) Lookup(e *EdgeSet, mode GraphMode, inputs, outputs, escape []int) (ModeReport, bool) {
	key, check := ModeKey(e, mode, inputs, outputs, escape)
	c.mu.RLock()
	ent, ok := c.m[key]
	c.mu.RUnlock()
	if ok && ent.check == check {
		c.hits.Add(1)
		obsModeCacheHits.Inc()
		return ent.rep, true
	}
	return ModeReport{}, false
}

// VerifyModeJobs returns the memoized mode verdict, computing and
// caching it on a miss (jobs <= 0 means all cores).
func (c *ModeCache) VerifyModeJobs(e *EdgeSet, mode GraphMode, inputs, outputs, escape []int, jobs int) ModeReport {
	rep, _ := c.VerifyModeCtx(context.Background(), e, mode, inputs, outputs, escape, jobs)
	return rep
}

// VerifyModeCtx is VerifyModeJobs under a context: a cancelled
// verification returns ctx's error and is never cached.
func (c *ModeCache) VerifyModeCtx(ctx context.Context, e *EdgeSet, mode GraphMode, inputs, outputs, escape []int, jobs int) (ModeReport, error) {
	key, check := ModeKey(e, mode, inputs, outputs, escape)
	c.mu.RLock()
	ent, ok := c.m[key]
	c.mu.RUnlock()
	if ok && ent.check == check {
		c.hits.Add(1)
		obsModeCacheHits.Inc()
		return ent.rep, nil
	}
	c.misses.Add(1)
	obsModeCacheMisses.Inc()
	rep, err := verifyModeCtx(ctx, e, mode, inputs, outputs, escape, jobs)
	if err != nil {
		return ModeReport{}, err
	}
	c.mu.Lock()
	if c.m == nil || len(c.m) >= maxCacheEntries {
		c.m = make(map[uint64]modeCacheEntry)
	}
	c.m[key] = modeCacheEntry{check: check, rep: rep}
	c.mu.Unlock()
	return rep, nil
}

// VerifyModeCached is VerifyMode through the DefaultModeCache — the
// blessed entry point for tooling that proves liveness/escape/
// subrelation properties of imported channel dependence graphs.
func VerifyModeCached(e *EdgeSet, mode GraphMode, inputs, outputs, escape []int) ModeReport {
	return DefaultModeCache.VerifyModeJobs(e, mode, inputs, outputs, escape, 0)
}
