package cdg

import (
	"fmt"
	"runtime"
	"sync"

	"ebda/internal/channel"
	"ebda/internal/core"
	"ebda/internal/topology"
)

// ConnectivityReport summarises whether a turn relation can deliver packets
// between all node pairs of a network.
type ConnectivityReport struct {
	Pairs       int
	Unreachable int
	// Example holds one unreachable (src, dst) pair when Unreachable > 0.
	ExampleSrc, ExampleDst topology.NodeID
}

// Connected reports full connectivity.
func (r ConnectivityReport) Connected() bool { return r.Unreachable == 0 }

// String renders the report.
func (r ConnectivityReport) String() string {
	if r.Connected() {
		return fmt.Sprintf("connected (%d pairs)", r.Pairs)
	}
	return fmt.Sprintf("%d/%d pairs unreachable (e.g. n%d -> n%d)",
		r.Unreachable, r.Pairs, r.ExampleSrc, r.ExampleDst)
}

// Connectivity checks, for every ordered node pair, whether a packet
// injected at the source can reach the destination by taking concrete
// channels whose class transitions the turn set permits. When minimalOnly
// is true only productive (distance-reducing) hops are considered; set it
// false for designs that require detours, such as routing through elevators
// in partially connected networks.
func Connectivity(net *topology.Network, vcs VCConfig, ts *core.TurnSet, minimalOnly bool) ConnectivityReport {
	g := BuildFromTurnSet(net, vcs, ts)
	// For each destination, walk the dependency graph backwards from the
	// channels that terminate at the destination; a source can reach the
	// destination if one of its outgoing channels is on such a path.
	// Destinations are independent, so they are processed in parallel.
	rev := make([][]int32, len(g.channels))
	for a, succs := range g.adj {
		for _, b := range succs {
			rev[b] = append(rev[b], int32(a))
		}
	}
	productive := func(ch Channel, dst topology.NodeID) bool {
		if !minimalOnly {
			return true
		}
		off := net.MinimalOffsets(ch.Link.From, dst)[ch.Link.Dim]
		if off == 0 {
			return false
		}
		return (off > 0) == (ch.Link.Sign == channel.Plus)
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > net.Nodes() {
		workers = net.Nodes()
	}
	reports := make([]ConnectivityReport, workers)
	hasExample := make([]bool, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			report := &reports[w]
			reach := make([]bool, len(g.channels))
			queue := make([]int32, 0, len(g.channels))
			for dst := topology.NodeID(w); int(dst) < net.Nodes(); dst += topology.NodeID(workers) {
				for i := range reach {
					reach[i] = false
				}
				queue = queue[:0]
				for _, ci := range g.byHead[dst] {
					if productive(g.channels[ci], dst) {
						reach[ci] = true
						queue = append(queue, ci)
					}
				}
				for len(queue) > 0 {
					b := queue[0]
					queue = queue[1:]
					for _, a := range rev[b] {
						if reach[a] || !productive(g.channels[a], dst) {
							continue
						}
						reach[a] = true
						queue = append(queue, a)
					}
				}
				for src := topology.NodeID(0); int(src) < net.Nodes(); src++ {
					if src == dst {
						continue
					}
					report.Pairs++
					ok := false
					for _, ci := range g.byTail[src] {
						if reach[ci] {
							ok = true
							break
						}
					}
					if !ok {
						if !hasExample[w] {
							report.ExampleSrc, report.ExampleDst = src, dst
							hasExample[w] = true
						}
						report.Unreachable++
					}
				}
			}
		}(w)
	}
	wg.Wait()
	var out ConnectivityReport
	exampleSet := false
	for w := range reports {
		out.Pairs += reports[w].Pairs
		out.Unreachable += reports[w].Unreachable
		if !hasExample[w] {
			continue
		}
		// Keep the smallest (dst, src) example for determinism.
		better := !exampleSet ||
			reports[w].ExampleDst < out.ExampleDst ||
			(reports[w].ExampleDst == out.ExampleDst && reports[w].ExampleSrc < out.ExampleSrc)
		if better {
			out.ExampleSrc, out.ExampleDst = reports[w].ExampleSrc, reports[w].ExampleDst
			exampleSet = true
		}
	}
	return out
}

// AdaptivenessReport records how many of the minimal paths of a network a
// turn relation makes usable — the paper's measure of adaptiveness
// (Section 4: a design is fully adaptive when every minimal path is
// usable).
type AdaptivenessReport struct {
	Pairs       int
	UsableSum   int
	MinimalSum  int
	FullPairs   int // pairs where every minimal path is usable
	BrokenPairs int // pairs with zero usable minimal paths
}

// FullyAdaptive reports whether every minimal path of every pair is usable.
func (r AdaptivenessReport) FullyAdaptive() bool { return r.FullPairs == r.Pairs }

// Degree returns the fraction of minimal paths usable, in [0, 1].
func (r AdaptivenessReport) Degree() float64 {
	if r.MinimalSum == 0 {
		return 0
	}
	return float64(r.UsableSum) / float64(r.MinimalSum)
}

// String renders the report.
func (r AdaptivenessReport) String() string {
	return fmt.Sprintf("adaptiveness %.4f (%d/%d minimal paths; %d/%d pairs fully adaptive)",
		r.Degree(), r.UsableSum, r.MinimalSum, r.FullPairs, r.Pairs)
}

// RegionReport is the adaptiveness of one destination region: the orthant
// of (dst - src) signs, in the paper's compass naming (NE, SWU, ...).
type RegionReport struct {
	// Signs is the per-dimension sign of the region (+1 or -1).
	Signs []int
	AdaptivenessReport
}

// Name renders the region in compass letters (E/W, N/S, U/D; higher
// dimensions fall back to D3+/D3-).
func (r RegionReport) Name() string {
	letters := [][2]string{{"E", "W"}, {"N", "S"}, {"U", "D"}}
	out := ""
	for d, s := range r.Signs {
		var pair [2]string
		if d < len(letters) {
			pair = letters[d]
		} else {
			pair = [2]string{fmt.Sprintf("D%d+", d), fmt.Sprintf("D%d-", d)}
		}
		if s > 0 {
			out += pair[0]
		} else {
			out += pair[1]
		}
	}
	return out
}

// RegionAdaptiveness measures adaptiveness separately per destination
// orthant — the paper's region-wise view ("fully adaptive routing can be
// utilized in four regions...", Section 6.3). Only pairs with non-zero
// offsets in every dimension belong to an orthant; boundary pairs are
// excluded. Regions are returned in a fixed order (all-positive first,
// binary countdown over signs).
func RegionAdaptiveness(net *topology.Network, vcs VCConfig, ts *core.TurnSet) ([]RegionReport, error) {
	n := net.Dims()
	var regions []RegionReport
	for mask := 0; mask < 1<<uint(n); mask++ {
		signs := make([]int, n)
		for d := 0; d < n; d++ {
			if mask&(1<<uint(d)) == 0 {
				signs[d] = 1
			} else {
				signs[d] = -1
			}
		}
		regions = append(regions, RegionReport{Signs: signs})
	}
	regionOf := func(offs []int) int {
		mask := 0
		for d, off := range offs {
			if off == 0 {
				return -1
			}
			if off < 0 {
				mask |= 1 << uint(d)
			}
		}
		return mask
	}
	for src := topology.NodeID(0); int(src) < net.Nodes(); src++ {
		for dst := topology.NodeID(0); int(dst) < net.Nodes(); dst++ {
			if src == dst {
				continue
			}
			ri := regionOf(net.MinimalOffsets(src, dst))
			if ri < 0 {
				continue
			}
			usable, total, err := UsableMinimalPaths(net, vcs, ts, src, dst)
			if err != nil {
				return nil, err
			}
			r := &regions[ri]
			r.Pairs++
			r.UsableSum += usable
			r.MinimalSum += total
			if usable == total {
				r.FullPairs++
			}
			if usable == 0 {
				r.BrokenPairs++
			}
		}
	}
	return regions, nil
}

// maxTrackedClasses bounds the class-set bitmask used during path counting.
const maxTrackedClasses = 64

// UsableMinimalPaths counts the minimal direction sequences from src to dst
// that can be realised under the turn set (for some per-hop virtual-channel
// assignment), alongside the total number of minimal direction sequences.
// It returns an error if the turn set mentions more than 64 distinct
// classes (beyond any design in the paper).
func UsableMinimalPaths(net *topology.Network, vcs VCConfig, ts *core.TurnSet, src, dst topology.NodeID) (usable, total int, err error) {
	classes := ts.Classes()
	if len(classes) > maxTrackedClasses {
		return 0, 0, fmt.Errorf("cdg: %d classes exceed the %d-class analysis limit",
			len(classes), maxTrackedClasses)
	}
	classIdx := make(map[channel.Class]int, len(classes))
	for i, c := range classes {
		classIdx[c] = i
	}
	total = net.MinimalPathCount(src, dst)
	if src == dst {
		return 0, 0, nil
	}

	// matchMask returns the bitmask of turn-set classes a concrete hop
	// from node u along (d, sign) on VC vc instantiates.
	matchMask := func(u topology.NodeID, d channel.Dim, sign channel.Sign, vc int) uint64 {
		coord := net.Coord(u)
		var m uint64
		for i, cls := range classes {
			if cls.Dim != d || cls.Sign != sign || cls.VC != vc {
				continue
			}
			if cls.Par != channel.Any && !cls.Par.Matches(coord[cls.PDim]) {
				continue
			}
			m |= 1 << uint(i)
		}
		return m
	}
	// allowedFrom[b] = mask of classes a with (a -> b) permitted.
	allowedFrom := make([]uint64, len(classes))
	for bi, b := range classes {
		for ai, a := range classes {
			if ts.Allows(a, b) {
				allowedFrom[bi] |= 1 << uint(ai)
			}
		}
	}

	type key struct {
		node  topology.NodeID
		state uint64
	}
	memo := make(map[key]int)
	var count func(u topology.NodeID, state uint64) int
	count = func(u topology.NodeID, state uint64) int {
		if u == dst {
			return 1
		}
		k := key{u, state}
		if v, ok := memo[k]; ok {
			return v
		}
		offs := net.MinimalOffsets(u, dst)
		sum := 0
		for d := 0; d < net.Dims(); d++ {
			if offs[d] == 0 {
				continue
			}
			sign := channel.Plus
			if offs[d] < 0 {
				sign = channel.Minus
			}
			v, _, ok := net.Neighbor(u, channel.Dim(d), sign)
			if !ok {
				continue
			}
			// Union over VC choices of the classes reachable by this hop.
			var next uint64
			for vc := 1; vc <= vcs.VCs(channel.Dim(d)); vc++ {
				m := matchMask(u, channel.Dim(d), sign, vc)
				if state == injectionState {
					next |= m
					continue
				}
				for bi := 0; bi < len(classes); bi++ {
					if m&(1<<uint(bi)) != 0 && state&allowedFrom[bi] != 0 {
						next |= 1 << uint(bi)
					}
				}
			}
			if next == 0 {
				continue
			}
			sum += count(v, next)
		}
		memo[k] = sum
		return sum
	}
	usable = count(src, injectionState)
	return usable, total, nil
}

// injectionState marks the pre-first-hop state, at which any channel class
// may be taken (packets start at the source's injection port, which imposes
// no turn restriction).
const injectionState = ^uint64(0)

// Adaptiveness measures usable minimal paths across every ordered node pair
// of the network. Sources are processed in parallel (the turn set is only
// read), so large meshes verify at full core count.
func Adaptiveness(net *topology.Network, vcs VCConfig, ts *core.TurnSet) (AdaptivenessReport, error) {
	workers := runtime.GOMAXPROCS(0)
	if workers > net.Nodes() {
		workers = net.Nodes()
	}
	results := make([]AdaptivenessReport, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := &results[w]
			for src := topology.NodeID(w); int(src) < net.Nodes(); src += topology.NodeID(workers) {
				for dst := topology.NodeID(0); int(dst) < net.Nodes(); dst++ {
					if src == dst {
						continue
					}
					usable, total, err := UsableMinimalPaths(net, vcs, ts, src, dst)
					if err != nil {
						errs[w] = err
						return
					}
					r.Pairs++
					r.UsableSum += usable
					r.MinimalSum += total
					if usable == total {
						r.FullPairs++
					}
					if usable == 0 {
						r.BrokenPairs++
					}
				}
			}
		}(w)
	}
	wg.Wait()
	var out AdaptivenessReport
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			return out, errs[w]
		}
		out.Pairs += results[w].Pairs
		out.UsableSum += results[w].UsableSum
		out.MinimalSum += results[w].MinimalSum
		out.FullPairs += results[w].FullPairs
		out.BrokenPairs += results[w].BrokenPairs
	}
	return out, nil
}
