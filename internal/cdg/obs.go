package cdg

import "ebda/internal/obs"

// Engine instrumentation: every series the verification pipeline records,
// hoisted to package variables so hot paths never touch the registry.
// Counters mirror the invariants DESIGN.md §7 documents — e.g. pool gets
// equal puts after every verification, cache hits+misses equal verify
// calls through the cached entry points.
var (
	obsVerifies = obs.NewCounter("ebda_cdg_verifies_total",
		"turn-set and relation verifications run through pooled workspaces")
	obsVerifyCyclic = obs.NewCounter("ebda_cdg_verify_cyclic_total",
		"verifications whose dependency graph contained a cycle")
	obsKahnRounds = obs.NewCounter("ebda_cdg_kahn_rounds_total",
		"frontier rounds executed by the Kahn topological peel")
	obsResidualDFS = obs.NewCounter("ebda_cdg_residual_dfs_total",
		"residual cycle-extraction DFS runs (one per cyclic verification)")
	obsVerifyCancelled = obs.NewCounter("ebda_cdg_verify_cancelled_total",
		"verifications abandoned by context cancellation before a verdict")

	obsEdgeVerifies = obs.NewCounter("ebda_cdg_edge_verifies_total",
		"abstract edge-set verifications (topology-free graphs, e.g. deadlint lock graphs)")
	obsEdgeCyclic = obs.NewCounter("ebda_cdg_edge_verify_cyclic_total",
		"abstract edge-set verifications whose graph contained a cycle")
	obsEdgeCacheHits = obs.NewCounter("ebda_edge_cache_hits_total",
		"edge-set cache probes answered from a memoized verdict")
	obsEdgeCacheMisses = obs.NewCounter("ebda_edge_cache_misses_total",
		"edge-set cache probes that recomputed the verdict")

	obsModeLoop = obs.NewCounter(obs.Label("ebda_cdg_mode_verifies_total", "mode", "loop"),
		"loop-mode (full-graph acyclicity) verifications of imported channel graphs")
	obsModeLiveness = obs.NewCounter(obs.Label("ebda_cdg_mode_verifies_total", "mode", "liveness"),
		"liveness-mode verifications of imported channel graphs")
	obsModeEscape = obs.NewCounter(obs.Label("ebda_cdg_mode_verifies_total", "mode", "escape"),
		"escape-mode (Duato condition) verifications of imported channel graphs")
	obsModeSubrel = obs.NewCounter(obs.Label("ebda_cdg_mode_verifies_total", "mode", "subrel"),
		"valid-subrelation searches over imported channel graphs")
	obsModeViolations = obs.NewCounter("ebda_cdg_mode_violations_total",
		"mode verifications whose property was violated")
	obsModeCacheHits = obs.NewCounter("ebda_mode_cache_hits_total",
		"mode cache probes answered from a memoized verdict")
	obsModeCacheMisses = obs.NewCounter("ebda_mode_cache_misses_total",
		"mode cache probes that recomputed the verdict")

	obsCacheHits = obs.NewCounter("ebda_verify_cache_hits_total",
		"verify cache probes answered from a memoized report")
	obsCacheMisses = obs.NewCounter("ebda_verify_cache_misses_total",
		"verify cache probes that recomputed the report")
	obsCacheEvictions = obs.NewCounter("ebda_verify_cache_evictions_total",
		"entries dropped by verify cache epoch flushes")
	obsCacheEntries = obs.NewGauge("ebda_verify_cache_entries",
		"live entries in the default verify cache")
	obsSnapshotSaved = obs.NewCounter("ebda_verify_cache_snapshot_saved_total",
		"cache entries written to verify-cache snapshots")
	obsSnapshotLoaded = obs.NewCounter("ebda_verify_cache_snapshot_loaded_total",
		"cache entries loaded from verify-cache snapshots")

	obsDeltaVerifies = obs.NewCounter("ebda_cdg_delta_verifies_total",
		"delta verifications run through retained workspaces")
	obsDeltaIncremental = obs.NewCounter("ebda_cdg_delta_incremental_total",
		"delta verifications answered by the incremental region re-peel")
	obsDeltaFallbacks = obs.NewCounter("ebda_cdg_delta_fallbacks_total",
		"delta verifications that fell back to a full peel of the patched graph")
	obsDeltaPoolGets = obs.NewCounter("ebda_delta_pool_gets_total",
		"delta workspace pool checkouts")
	obsDeltaPoolReuses = obs.NewCounter("ebda_delta_pool_reuses_total",
		"delta workspace pool checkouts satisfied from the free list")

	obsPoolGets = obs.NewCounter("ebda_workspace_pool_gets_total",
		"workspace pool checkouts")
	obsPoolReuses = obs.NewCounter("ebda_workspace_pool_reuses_total",
		"workspace pool checkouts satisfied from the free list")
	obsPoolPuts = obs.NewCounter("ebda_workspace_pool_puts_total",
		"workspaces returned to the pool")
	obsPoolFlushes = obs.NewCounter("ebda_workspace_pool_flushes_total",
		"workspace pool epoch flushes (distinct-shape bound exceeded)")

	phaseMode   = obs.NewPhase("cdg.mode", "")
	phaseVerify = obs.NewPhase("cdg.verify", "")
	phaseEdges  = obs.NewPhase("cdg.addTurnEdges", "cdg.verify")
	phaseAcycl  = obs.NewPhase("cdg.acyclicity", "cdg.verify")
	phaseDelta  = obs.NewPhase("cdg.delta", "")
)
