package cdg

import (
	"strings"
	"testing"
)

// ring returns an n-node edge set forming the cycle 0 -> 1 -> ... -> 0.
func ring(n int) *EdgeSet {
	e := NewEdgeSet(n)
	for i := 0; i < n; i++ {
		e.AddEdge(i, (i+1)%n)
	}
	return e
}

func TestEdgeSetVerifyAcyclic(t *testing.T) {
	e := NewEdgeSet(5)
	e.AddEdge(0, 1)
	e.AddEdge(1, 2)
	e.AddEdge(0, 3)
	e.AddEdge(3, 4)
	e.AddEdge(2, 4)
	rep := VerifyEdgeSet(e)
	if !rep.Acyclic {
		t.Fatalf("DAG reported cyclic: %s", rep)
	}
	if rep.Nodes != 5 || rep.Edges != 5 {
		t.Fatalf("counts wrong: %+v", rep)
	}
	if rep.Cycle != nil {
		t.Fatalf("acyclic report carries a cycle: %v", rep.Cycle)
	}
}

func TestEdgeSetVerifyCycle(t *testing.T) {
	e := ring(4)
	// A peelable tail hanging off the ring must not confuse the witness.
	e.AddEdge(1, 3) // chord inside the ring
	rep := VerifyEdgeSet(e)
	if rep.Acyclic {
		t.Fatal("ring reported acyclic")
	}
	if len(rep.Cycle) < 2 {
		t.Fatalf("degenerate witness: %v", rep.Cycle)
	}
	// The witness must be a real cycle: every consecutive pair an edge,
	// and the last element depends on the first.
	for i := range rep.Cycle {
		from := rep.Cycle[i]
		to := rep.Cycle[(i+1)%len(rep.Cycle)]
		if !e.HasEdge(from, to) {
			t.Fatalf("witness step %d -> %d is not an edge (cycle %v)", from, to, rep.Cycle)
		}
	}
	if s := rep.String(); !strings.Contains(s, "CYCLIC") {
		t.Fatalf("String() of cyclic report: %q", s)
	}
}

func TestEdgeSetSelfLoop(t *testing.T) {
	e := NewEdgeSet(3)
	e.AddEdge(0, 1)
	e.AddEdge(2, 2)
	rep := VerifyEdgeSet(e)
	if rep.Acyclic {
		t.Fatal("self-loop reported acyclic")
	}
	if len(rep.Cycle) != 1 || rep.Cycle[0] != 2 {
		t.Fatalf("self-loop witness: %v", rep.Cycle)
	}
}

func TestEdgeSetJobsInvariant(t *testing.T) {
	e := ring(64)
	for i := 0; i < 64; i += 3 {
		e.AddEdge(i, (i+7)%64)
	}
	base := VerifyEdgeSetJobs(e, 1)
	for _, jobs := range []int{2, 3, 8, 0} {
		rep := VerifyEdgeSetJobs(e, jobs)
		if rep.Acyclic != base.Acyclic || len(rep.Cycle) != len(base.Cycle) {
			t.Fatalf("jobs=%d diverges: %v vs %v", jobs, rep, base)
		}
		for i := range rep.Cycle {
			if rep.Cycle[i] != base.Cycle[i] {
				t.Fatalf("jobs=%d witness diverges: %v vs %v", jobs, rep.Cycle, base.Cycle)
			}
		}
	}
}

func TestEdgeSetAddEdgeDedup(t *testing.T) {
	e := NewEdgeSet(2)
	if !e.AddEdge(0, 1) {
		t.Fatal("first AddEdge reported duplicate")
	}
	if e.AddEdge(0, 1) {
		t.Fatal("duplicate AddEdge reported new")
	}
	if e.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", e.NumEdges())
	}
	if !e.HasEdge(0, 1) || e.HasEdge(1, 0) {
		t.Fatal("HasEdge wrong")
	}
}

func TestEdgeSetFingerprintOrderIndependent(t *testing.T) {
	a := NewEdgeSet(6)
	b := NewEdgeSet(6)
	edges := [][2]int{{0, 1}, {4, 2}, {2, 3}, {5, 0}, {3, 1}}
	for _, e := range edges {
		a.AddEdge(e[0], e[1])
	}
	for i := len(edges) - 1; i >= 0; i-- {
		b.AddEdge(edges[i][0], edges[i][1])
	}
	a1, a2 := a.Fingerprint()
	b1, b2 := b.Fingerprint()
	if a1 != b1 || a2 != b2 {
		t.Fatalf("fingerprint depends on insertion order: (%x,%x) vs (%x,%x)", a1, a2, b1, b2)
	}
	// Direction matters.
	c := NewEdgeSet(6)
	for _, e := range edges {
		c.AddEdge(e[1], e[0])
	}
	c1, c2 := c.Fingerprint()
	if c1 == a1 && c2 == a2 {
		t.Fatal("reversed edges share the fingerprint")
	}
	// Node count matters even with identical edges.
	d := NewEdgeSet(7)
	for _, e := range edges {
		d.AddEdge(e[0], e[1])
	}
	d1, d2 := d.Fingerprint()
	if d1 == a1 && d2 == a2 {
		t.Fatal("node count not part of the fingerprint")
	}
}

func TestEdgeCacheHitsAndEquivalence(t *testing.T) {
	cache := &EdgeCache{}
	e := ring(10)
	first := cache.VerifyEdgeSetJobs(e, 0)
	// A structurally identical set built in a different order must hit.
	f := NewEdgeSet(10)
	for i := 9; i >= 0; i-- {
		f.AddEdge(i, (i+1)%10)
	}
	second := cache.VerifyEdgeSetJobs(f, 0)
	st := cache.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss", st)
	}
	if first.Acyclic != second.Acyclic || len(first.Cycle) != len(second.Cycle) {
		t.Fatalf("cached verdict diverges: %v vs %v", first, second)
	}
	uncached := VerifyEdgeSet(e)
	if uncached.Acyclic != first.Acyclic || len(uncached.Cycle) != len(first.Cycle) {
		t.Fatalf("cached vs uncached diverge: %v vs %v", first, uncached)
	}
	cache.Reset()
	if st := cache.Stats(); st.Entries != 0 || st.Hits != 0 {
		t.Fatalf("Reset left state: %+v", st)
	}
}

func TestEdgeSetEmpty(t *testing.T) {
	rep := VerifyEdgeSet(NewEdgeSet(0))
	if !rep.Acyclic || rep.Nodes != 0 {
		t.Fatalf("empty set: %+v", rep)
	}
}
