package cdg

import (
	"reflect"
	"testing"

	"ebda/internal/channel"
	"ebda/internal/core"
	"ebda/internal/topology"
)

// xyRoute is dimension-order routing as a RoutingRelation: correct the
// lowest unaligned dimension on VC 1.
func xyRoute(g *Graph, at topology.NodeID, in *Channel, dst topology.NodeID) []int {
	offs := g.Net().MinimalOffsets(at, dst)
	for d := 0; d < g.Net().Dims(); d++ {
		off := offs[d]
		if off == 0 {
			continue
		}
		sign := channel.Plus
		if off < 0 {
			sign = channel.Minus
		}
		if ch, ok := g.FindChannel(at, channel.Dim(d), sign, 1); ok {
			return []int{ch.Index}
		}
		return nil
	}
	return nil
}

// addRoutingEdgesReference is the obvious serial map-based construction the
// sharded implementation must reproduce exactly.
func addRoutingEdgesReference(g *Graph, route RoutingRelation) map[[2]int32]bool {
	edges := map[[2]int32]bool{}
	nodes := g.Net().Nodes()
	for dst := topology.NodeID(0); int(dst) < nodes; dst++ {
		usable := make([]bool, g.NumChannels())
		var queue []int32
		for src := topology.NodeID(0); int(src) < nodes; src++ {
			if src == dst {
				continue
			}
			for _, bi := range route(g, src, nil, dst) {
				if !usable[bi] {
					usable[bi] = true
					queue = append(queue, int32(bi))
				}
			}
		}
		for len(queue) > 0 {
			ai := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			ch := g.Channels()[ai]
			if ch.Link.To == dst {
				continue
			}
			for _, bi := range route(g, ch.Link.To, &ch, dst) {
				edges[[2]int32{ai, int32(bi)}] = true
				if !usable[bi] {
					usable[bi] = true
					queue = append(queue, int32(bi))
				}
			}
		}
	}
	return edges
}

// requireIdentical asserts two graphs have bit-identical adjacency.
func requireIdentical(t *testing.T, want, got *Graph, label string) {
	t.Helper()
	if want.NumEdges() != got.NumEdges() {
		t.Fatalf("%s: edges = %d, want %d", label, got.NumEdges(), want.NumEdges())
	}
	for i := 0; i < want.NumChannels(); i++ {
		if !reflect.DeepEqual(want.Succs(i), got.Succs(i)) {
			t.Fatalf("%s: adjacency of channel %d differs: %v vs %v",
				label, i, want.Succs(i), got.Succs(i))
		}
	}
}

// parityTurnSet mixes plain and parity-restricted classes so the interned
// matrix path sees every class kind (odd-even turn model flavour).
func parityTurnSet() *core.TurnSet {
	ts := core.NewTurnSet()
	e, w := channel.New(channel.X, channel.Plus), channel.New(channel.X, channel.Minus)
	nOdd := channel.NewParity(channel.Y, channel.Plus, channel.X, channel.Odd)
	nEven := channel.NewParity(channel.Y, channel.Plus, channel.X, channel.Even)
	s := channel.New(channel.Y, channel.Minus)
	ts.Add(e, nOdd, core.ByTheorem3)
	ts.Add(w, nEven, core.ByTheorem3)
	ts.Add(e, s, core.ByTheorem3)
	ts.Add(nEven, e, core.ByTheorem3)
	return ts
}

func TestAddTurnEdgesJobsDeterministic(t *testing.T) {
	nets := []*topology.Network{
		topology.NewMesh(5, 4),
		topology.NewTorus(4, 4),
	}
	sets := map[string]*core.TurnSet{
		"xy":     xyTurnSet(),
		"all":    allTurnSet(),
		"parity": parityTurnSet(),
	}
	for _, net := range nets {
		for name, ts := range sets {
			ref := BuildFromTurnSetJobs(net, nil, ts, 1)
			for _, jobs := range []int{2, 3, 8} {
				g := BuildFromTurnSetJobs(net, nil, ts, jobs)
				requireIdentical(t, ref, g, net.String()+"/"+name)
			}
		}
	}
}

func TestAddRoutingEdgesJobsDeterministic(t *testing.T) {
	for _, net := range []*topology.Network{
		topology.NewMesh(5, 4),
		topology.NewMesh(3, 3, 3),
	} {
		ref := NewGraph(net, nil)
		ref.AddRoutingEdgesJobs(xyRoute, 1)
		want := addRoutingEdgesReference(NewGraph(net, nil), xyRoute)
		if ref.NumEdges() != len(want) {
			t.Fatalf("%s: jobs=1 edges = %d, reference has %d", net, ref.NumEdges(), len(want))
		}
		for e := range want {
			if !ref.HasEdge(int(e[0]), int(e[1])) {
				t.Fatalf("%s: reference edge %v missing from jobs=1 build", net, e)
			}
		}
		for _, jobs := range []int{2, 8} {
			g := NewGraph(net, nil)
			g.AddRoutingEdgesJobs(xyRoute, jobs)
			requireIdentical(t, ref, g, net.String())
		}
	}
}

// TestParallelBuildRace drives both sharded constructors with an explicit
// 8-worker pool on an 8x8 mesh so `go test -race` can observe any unsound
// sharing even on machines with few cores.
func TestParallelBuildRace(t *testing.T) {
	net := topology.NewMesh(8, 8)
	g := BuildFromTurnSetJobs(net, Uniform(2, 2), xyTurnSet(), 8)
	if g.FindCycle() != nil {
		t.Fatal("XY turn graph must stay acyclic under parallel build")
	}
	r := NewGraph(net, nil)
	r.AddRoutingEdgesJobs(xyRoute, 8)
	if r.FindCycle() != nil {
		t.Fatal("DOR routing graph must stay acyclic under parallel build")
	}
}

// TestFindCycleJobsAgreesWithSerialDFS: the Kahn-peel fast path must agree
// with the reference three-colour DFS on acyclicity for every worker
// count, and any cycle it reports must be genuine (consecutive channels
// meet head-to-tail and every hop is a real dependency edge).
func TestFindCycleJobsAgreesWithSerialDFS(t *testing.T) {
	nets := []*topology.Network{
		topology.NewMesh(4, 4),
		topology.NewMesh(3, 3, 3),
		topology.NewTorus(4, 4),
	}
	sets := map[string]*core.TurnSet{
		"xy": xyTurnSet(), "all": allTurnSet(), "parity": parityTurnSet(),
	}
	for _, net := range nets {
		for name, ts := range sets {
			g := BuildFromTurnSet(net, nil, ts)
			ref := g.FindCycle()
			for _, jobs := range []int{1, 2, 8} {
				cyc := g.FindCycleJobs(jobs)
				if (cyc == nil) != (ref == nil) {
					t.Fatalf("%s/%s jobs=%d: FindCycleJobs nil=%v, FindCycle nil=%v",
						net, name, jobs, cyc == nil, ref == nil)
				}
				if g.AcyclicJobs(jobs) != (ref == nil) {
					t.Fatalf("%s/%s jobs=%d: AcyclicJobs disagrees", net, name, jobs)
				}
				for i, c := range cyc {
					next := cyc[(i+1)%len(cyc)]
					if c.Link.To != next.Link.From {
						t.Fatalf("%s/%s jobs=%d: cycle breaks at %d: %v", net, name, jobs, i, cyc)
					}
					if !g.HasEdge(c.Index, next.Index) {
						t.Fatalf("%s/%s jobs=%d: cycle hop %d is not an edge", net, name, jobs, i)
					}
				}
			}
		}
	}
}

// TestVerifyReportJobsInvariant asserts the full public report — including
// the extracted cycle on cyclic inputs — is bit-identical for every worker
// count, through the pooled VerifyTurnSetJobs entry point.
func TestVerifyReportJobsInvariant(t *testing.T) {
	for _, net := range []*topology.Network{
		topology.NewMesh(5, 4),
		topology.NewTorus(4, 4),
	} {
		for name, ts := range map[string]*core.TurnSet{
			"acyclic": xyTurnSet(), "cyclic": allTurnSet(), "parity": parityTurnSet(),
		} {
			want := VerifyTurnSetJobs(net, nil, ts, 1)
			for _, jobs := range []int{2, 3, 8} {
				got := VerifyTurnSetJobs(net, nil, ts, jobs)
				if !reflect.DeepEqual(got, want) {
					t.Errorf("%s/%s jobs=%d: %+v, want %+v", net, name, jobs, got, want)
				}
			}
		}
	}
}

func TestFindChannelAndHasEdge(t *testing.T) {
	net := topology.NewMesh(4, 3)
	g := NewGraph(net, Uniform(2, 2))
	// Every channel must be findable at its own coordinates.
	for _, ch := range g.Channels() {
		got, ok := g.FindChannel(ch.Link.From, ch.Link.Dim, ch.Link.Sign, ch.VC)
		if !ok || got.Index != ch.Index {
			t.Fatalf("FindChannel lost channel %v", ch)
		}
	}
	// Mesh edges have no wraparound channel; out-of-range queries are safe.
	if _, ok := g.FindChannel(0, channel.X, channel.Minus, 1); ok {
		t.Error("mesh corner must have no X- channel")
	}
	if _, ok := g.FindChannel(0, channel.X, channel.Plus, 3); ok {
		t.Error("VC beyond the configuration must not resolve")
	}
	if _, ok := g.FindChannel(0, channel.Dim(5), channel.Plus, 1); ok {
		t.Error("dimension beyond the network must not resolve")
	}
	// HasEdge agrees with the successor lists after out-of-order inserts.
	g.AddEdge(5, 9)
	g.AddEdge(5, 2)
	g.AddEdge(5, 7)
	if want := []int32{2, 7, 9}; !reflect.DeepEqual(g.Succs(5), want) {
		t.Fatalf("Succs(5) = %v, want %v", g.Succs(5), want)
	}
	for _, to := range []int{2, 7, 9} {
		if !g.HasEdge(5, to) {
			t.Errorf("HasEdge(5, %d) = false", to)
		}
	}
	if g.HasEdge(5, 8) || g.HasEdge(4, 2) {
		t.Error("HasEdge invented an edge")
	}
}
