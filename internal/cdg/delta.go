package cdg

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"ebda/internal/channel"
	"ebda/internal/core"
	"ebda/internal/obs/trace"
	"ebda/internal/topology"
)

// This file implements incremental (delta) verification: re-checking a
// slightly perturbed design without rebuilding the dependency graph or
// re-running the full Kahn peel.
//
// The key observation is that the peel's final state is canonical. After
// kahnPeel, indeg[i] is 0 for every peeled channel and, for residual
// channels, the number of in-edges arriving from the residual — a function
// of the graph alone, independent of peel order and worker count. Delta
// verification therefore maintains that canonical state directly: apply
// the edge patches, then run join/leave cascades that grow and shrink the
// residual exactly as a from-scratch peel would have computed it. The one
// blind spot is an added edge whose source was peeled in the base — it can
// close a new cycle entirely inside the previously peeled region, which
// in-degree bookkeeping cannot see — so those edges trigger a bounded
// reachability probe and, if it finds (or cannot exclude) such a cycle, a
// full re-peel of the patched graph. The fallback also covers oversized
// diffs: when the dirty region exceeds deltaBudget the incremental path
// would not pay for itself, and a full peel of the patched graph is both
// cheap enough and trivially canonical.

// ErrBadDiff wraps every diff-validation failure, so serving layers can
// map it to a client error (400) without string matching.
var ErrBadDiff = errors.New("cdg: invalid delta diff")

// Diff describes a perturbation of a base verification.
//
// RemoveLinks lists unidirectional physical links made faulty; every
// concrete channel riding a listed link is masked out of the graph along
// with its dependency edges, mirroring topology.WithoutLinks. Links are
// identified by source node, dimension and sign (To and Wrap are ignored);
// use topology.FindLink or SingleLinkDiff to build canonical values.
//
// DisableTurns and EnableTurns toggle transitions of the base turn set.
// Endpoint classes must already be declared by the base design and a turn
// may not be a same-class continuation: both constraints keep the interned
// class table — and the VC configuration it implies — identical to the
// base, which is what lets the retained workspace be patched in place.
//
// AddEdges and RemoveEdges are raw dependency-edge patches by channel
// index for callers that computed their own dependency diff (fault models
// outside the turn formalism). Removed edges must exist; added edges must
// not, and may not touch a masked channel.
//
// Name overrides the resulting Report.Network. When empty the report is
// named after the base network, with "-faulty" appended if RemoveLinks is
// non-empty — matching what a fresh verify of the WithoutLinks-derived
// network reports.
type Diff struct {
	RemoveLinks  []topology.Link
	DisableTurns []core.Turn
	EnableTurns  []core.Turn
	AddEdges     [][2]int32
	RemoveEdges  [][2]int32
	Name         string
}

// Empty reports whether the diff perturbs nothing.
func (d Diff) Empty() bool {
	return len(d.RemoveLinks) == 0 &&
		len(d.DisableTurns) == 0 && len(d.EnableTurns) == 0 &&
		len(d.AddEdges) == 0 && len(d.RemoveEdges) == 0
}

// SingleLinkDiff returns the diff that removes the one link leaving from
// in direction (d, sign) on the network, or an ErrBadDiff error when that
// link does not exist.
func SingleLinkDiff(net *topology.Network, from topology.NodeID, d channel.Dim, sign channel.Sign) (Diff, error) {
	l, ok := net.FindLink(from, d, sign)
	if !ok {
		return Diff{}, fmt.Errorf("%w: no link from n%d along %s%s", ErrBadDiff, from, d, sign)
	}
	return Diff{RemoveLinks: []topology.Link{l}}, nil
}

// Fingerprint returns two independent 64-bit digests of the diff,
// canonical across element order: per-element digests are seeded by
// category and combine by addition, like TurnSet.Fingerprint. The digest
// covers the Name override, so two diffs that produce differently-labelled
// reports never share a cache entry. Callers should not list the same
// element twice (a duplicate changes the digest without changing the
// semantics); the serving layer deduplicates before building a Diff.
func (d Diff) Fingerprint() (uint64, uint64) {
	const (
		linkSeedA    = 0x8ebc6af09c88c6e3
		linkSeedB    = 0x589965cc75374cc3
		disableSeedA = 0x1d8e4e27c47d124f
		disableSeedB = 0xeb44accab455d165
		enableSeedA  = 0x9c6e6877736c46e3
		enableSeedB  = 0xca9b0c407576b44d
		addSeedA     = 0x2f61c9dd1eaa8d73
		addSeedB     = 0x83eb27934a62cd5f
		rmSeedA      = 0x6b8e21c1f3c863e5
		rmSeedB      = 0xf4c1e93b1a7d2b39
		nameSeedA    = 0x5851f42d4c957f2d
		nameSeedB    = 0x14057b7ef767814f
	)
	var h1, h2 uint64
	for _, l := range d.RemoveLinks {
		e := uint64(uint32(int32(l.From)))
		e = e*1000003 + uint64(uint32(int32(l.Dim)))
		e = e*1000003 + uint64(uint32(int32(l.Sign)))
		h1 += mix64(e ^ linkSeedA)
		h2 += mix64(e ^ linkSeedB)
	}
	pair := func(t core.Turn) uint64 {
		return turnClassCode(t.From)*0x100000001b3 ^ turnClassCode(t.To)
	}
	for _, t := range d.DisableTurns {
		h1 += mix64(pair(t) ^ disableSeedA)
		h2 += mix64(pair(t) ^ disableSeedB)
	}
	for _, t := range d.EnableTurns {
		h1 += mix64(pair(t) ^ enableSeedA)
		h2 += mix64(pair(t) ^ enableSeedB)
	}
	for _, e := range d.AddEdges {
		c := uint64(uint32(e[0]))<<32 | uint64(uint32(e[1]))
		h1 += mix64(c ^ addSeedA)
		h2 += mix64(c ^ addSeedB)
	}
	for _, e := range d.RemoveEdges {
		c := uint64(uint32(e[0]))<<32 | uint64(uint32(e[1]))
		h1 += mix64(c ^ rmSeedA)
		h2 += mix64(c ^ rmSeedB)
	}
	// Name is a single ordered string: fold it sequentially, then mix the
	// result in once.
	hn := uint64(len(d.Name))
	for i := 0; i < len(d.Name); i++ {
		hn = hn*0x100000001b3 + uint64(d.Name[i])
	}
	h1 += mix64(hn ^ nameSeedA)
	h2 += mix64(hn ^ nameSeedB)
	return h1, h2
}

// turnClassCode packs a channel class for diff fingerprinting, mirroring
// core's classCode packing.
func turnClassCode(c channel.Class) uint64 {
	e := uint64(uint32(int32(c.Dim)))
	e = e*1000003 + uint64(uint32(int32(c.Sign)))
	e = e*1000003 + uint64(uint32(int32(c.VC)))
	e = e*1000003 + uint64(uint32(int32(c.PDim)))
	e = e*1000003 + uint64(uint32(int32(c.Par)))
	return e
}

// reportName resolves the diff's Report.Network label against a base
// network.
func (d Diff) reportName(net *topology.Network) string {
	if d.Name != "" {
		return d.Name
	}
	if len(d.RemoveLinks) > 0 {
		// Match topology.WithoutLinks: "8x8 mesh" -> "8x8 mesh-faulty".
		return net.String() + "-faulty"
	}
	return net.String()
}

// deltaBudget bounds the dirty region an incremental re-peel may touch
// before falling back to a full peel of the patched graph; nc is the
// channel count. It is a variable so tests can force either path.
var deltaBudget = func(nc int) int { return nc/4 + 32 }

// savedRow is one journal entry of the adjacency patch: the pristine
// content of row idx lives at arena[off:off+n].
type savedRow struct {
	idx    int32
	off, n int
}

// DeltaWorkspace retains one base verification — the built dependency
// graph, the per-channel class-match lists, and the canonical final state
// of the base peel — so perturbed variants of that design re-verify by
// patching the structures in place instead of rebuilding them.
//
// Every VerifyDiff call patches the adjacency rows (journaling pristine
// row contents), maintains the canonical peel state incrementally, renders
// the report, and rolls every mutation back, so the workspace always holds
// the unperturbed base between calls and diffs never compound. Like
// Workspace, a DeltaWorkspace runs one verification at a time; use a
// DeltaPool to share instances across goroutines.
type DeltaWorkspace struct {
	ws *Workspace
	ts *core.TurnSet

	baseKey   uint64
	baseCheck uint64
	baseRep   Report
	baseEdges int
	// baseFin is the canonical final state of the base peel: 0 for peeled
	// channels, the in-residual in-degree for residual channels.
	baseFin []int32

	// Per-call scratch, reused across diffs.
	st        acyclicState // fallback peel + residual-DFS scratch
	fin       []int32
	masked    []bool
	maskedIdx []int32
	rmOps     [][2]int32
	addOps    [][2]int32
	decs      []int32
	queue     []int32
	visited   []uint32
	visEpoch  uint32
	rowMark   []uint32
	rowEpoch  uint32
	saved     []savedRow
	arena     []int32
}

// NewDeltaWorkspace builds a delta workspace over the base verification,
// using every available core for the base build.
func NewDeltaWorkspace(net *topology.Network, vcs VCConfig, ts *core.TurnSet) (*DeltaWorkspace, error) {
	return NewDeltaWorkspaceCtx(context.Background(), net, vcs, ts, 0)
}

// NewDeltaWorkspaceCtx builds the base graph, runs the base verification
// (jobs <= 0 means all cores) and retains its state for incremental
// re-verification. Cancellation returns ctx's error and no workspace.
func NewDeltaWorkspaceCtx(ctx context.Context, net *topology.Network, vcs VCConfig, ts *core.TurnSet, jobs int) (*DeltaWorkspace, error) {
	ws := NewWorkspace(net, vcs)
	rep, err := ws.VerifyTurnSetCtx(ctx, ts, jobs)
	if err != nil {
		return nil, err
	}
	key, check := verifyKey(net, vcs, ts)
	nc := ws.g.NumChannels()
	dw := &DeltaWorkspace{
		ws:        ws,
		ts:        ts,
		baseKey:   key,
		baseCheck: check,
		baseRep:   rep,
		baseEdges: ws.g.edges,
		baseFin:   append([]int32(nil), ws.st.indeg...),
		fin:       make([]int32, nc),
		masked:    make([]bool, nc),
		visited:   make([]uint32, nc),
		rowMark:   make([]uint32, nc),
	}
	return dw, nil
}

// BaseReport returns the base verification's report.
func (dw *DeltaWorkspace) BaseReport() Report { return dw.baseRep }

// BaseKey returns the cache identity (key, check) of the base
// verification, as computed by VerifyKey.
func (dw *DeltaWorkspace) BaseKey() (uint64, uint64) { return dw.baseKey, dw.baseCheck }

// Graph exposes the retained base graph. Between VerifyDiff calls it holds
// the unperturbed base; callers must not mutate it.
func (dw *DeltaWorkspace) Graph() *Graph { return dw.ws.g }

// VerifyDiffJobs is VerifyDiffCtx without a deadline.
func (dw *DeltaWorkspace) VerifyDiffJobs(diff Diff, jobs int) (Report, error) {
	return dw.VerifyDiffCtx(context.Background(), diff, jobs)
}

// VerifyDiffCtx verifies the base design perturbed by the diff and returns
// the same Report a from-scratch verification of the perturbed design
// would produce: identical Network/Channels/Edges/Acyclic and an identical
// cycle witness under FormatCycle, for every jobs value. (For link-removal
// diffs the witness's Channel.Index values reflect the base channel
// numbering rather than the derived network's dense renumbering; every
// formatted representation is unaffected, because channel order is
// preserved.) Invalid diffs return an error wrapping ErrBadDiff. The
// workspace is restored to the base state before returning, on every path.
func (dw *DeltaWorkspace) VerifyDiffCtx(ctx context.Context, diff Diff, jobs int) (Report, error) {
	if err := ctx.Err(); err != nil {
		obsVerifyCancelled.Inc()
		return Report{}, err
	}
	tc := trace.FromContext(ctx)
	dsp := tc.StartSpan("cdg.delta")
	defer dsp.End()
	sp := phaseDelta.Start()
	defer sp.End()
	obsDeltaVerifies.Inc()
	name := diff.reportName(dw.ws.g.net)
	if diff.Empty() {
		rep := dw.baseRep
		rep.Network = name
		return rep, nil
	}
	defer dw.rollback()
	psp := tc.StartSpan("cdg.patch")
	if err := dw.planDiff(diff); err != nil {
		psp.End()
		return Report{}, err
	}
	dw.applyOps()
	psp.SetInt("removed", int64(len(dw.rmOps)))
	psp.SetInt("added", int64(len(dw.addOps)))
	psp.End()
	rsp := tc.StartSpan("cdg.repeel")
	rep, err := dw.repeel(ctx, jobs)
	rsp.End()
	if err != nil {
		return Report{}, err
	}
	rep.Network = name
	return rep, nil
}

// planDiff validates the diff against the base design and lowers it to
// sorted, deduplicated edge operations (dw.rmOps, dw.addOps) plus the set
// of masked channels (dw.masked / dw.maskedIdx). Nothing is mutated yet.
func (dw *DeltaWorkspace) planDiff(diff Diff) error {
	g := dw.ws.g
	dw.rmOps = dw.rmOps[:0]
	dw.addOps = dw.addOps[:0]
	// Link removals mask whole channels.
	for _, l := range diff.RemoveLinks {
		if !g.net.HasLink(l.From, l.Dim, l.Sign) {
			return fmt.Errorf("%w: no link from n%d along %s%s", ErrBadDiff, l.From, l.Dim, l.Sign)
		}
		for vc := 1; vc <= g.vcs.VCs(l.Dim); vc++ {
			ch, ok := g.FindChannel(l.From, l.Dim, l.Sign, vc)
			if !ok {
				return fmt.Errorf("%w: no channel from n%d along %s%s vc %d", ErrBadDiff, l.From, l.Dim, l.Sign, vc)
			}
			if !dw.masked[ch.Index] {
				dw.masked[ch.Index] = true
				dw.maskedIdx = append(dw.maskedIdx, int32(ch.Index))
			}
		}
	}
	// A masked channel loses all its dependency edges: its successor row,
	// and the edges from its (unmasked) predecessors. Predecessors are the
	// channels into the masked channel's tail node; edges between two
	// masked channels are collected once, from the masked source's row.
	for _, ci := range dw.maskedIdx {
		for _, s := range g.adj[ci] {
			dw.rmOps = append(dw.rmOps, [2]int32{ci, s})
		}
		for _, p := range g.byHead[g.channels[ci].Link.From] {
			if dw.masked[p] {
				continue
			}
			if g.HasEdge(int(p), int(ci)) {
				dw.rmOps = append(dw.rmOps, [2]int32{p, int32(ci)})
			}
		}
	}
	if len(diff.DisableTurns)+len(diff.EnableTurns) > 0 {
		if err := dw.planTurnOps(diff); err != nil {
			return err
		}
	}
	nc := int32(len(g.channels))
	for _, e := range diff.RemoveEdges {
		if e[0] < 0 || e[0] >= nc || e[1] < 0 || e[1] >= nc {
			return fmt.Errorf("%w: edge %v out of range", ErrBadDiff, e)
		}
		if !g.HasEdge(int(e[0]), int(e[1])) {
			return fmt.Errorf("%w: removed edge %v does not exist", ErrBadDiff, e)
		}
		dw.rmOps = append(dw.rmOps, e)
	}
	for _, e := range diff.AddEdges {
		if e[0] < 0 || e[0] >= nc || e[1] < 0 || e[1] >= nc {
			return fmt.Errorf("%w: edge %v out of range", ErrBadDiff, e)
		}
		if dw.masked[e[0]] || dw.masked[e[1]] {
			return fmt.Errorf("%w: added edge %v touches a removed channel", ErrBadDiff, e)
		}
		if g.HasEdge(int(e[0]), int(e[1])) {
			return fmt.Errorf("%w: added edge %v already exists", ErrBadDiff, e)
		}
		dw.addOps = append(dw.addOps, e)
	}
	sortPairs(dw.rmOps)
	dw.rmOps = dedupePairs(dw.rmOps)
	sortPairs(dw.addOps)
	dw.addOps = dedupePairs(dw.addOps)
	if p, clash := pairsIntersect(dw.rmOps, dw.addOps); clash {
		return fmt.Errorf("%w: edge %v both added and removed", ErrBadDiff, p)
	}
	return nil
}

// planTurnOps lowers turn toggles to edge operations. Toggling the turn
// (f, t) can only change dependency edges between channel pairs where the
// in-channel instantiates class f and the out-channel class t; for each
// such pair the full pair-level relation is re-evaluated against the
// toggled matrix (a channel may instantiate several classes, and another
// class pair can keep the edge alive).
func (dw *DeltaWorkspace) planTurnOps(diff Diff) error {
	g, ts := dw.ws.g, dw.ts
	m := ts.Matrix()
	mod := ts.Clone()
	for _, t := range diff.DisableTurns {
		if t.From == t.To {
			return fmt.Errorf("%w: cannot disable same-class continuation of %s", ErrBadDiff, t.From)
		}
		if !mod.Remove(t.From, t.To) {
			return fmt.Errorf("%w: disabled turn %s>%s is not in the base set", ErrBadDiff, t.From, t.To)
		}
	}
	for _, t := range diff.EnableTurns {
		if t.From == t.To {
			return fmt.Errorf("%w: cannot enable same-class continuation of %s", ErrBadDiff, t.From)
		}
		if !ts.Declared(t.From) || !ts.Declared(t.To) {
			return fmt.Errorf("%w: enabled turn %s>%s leaves the base class set", ErrBadDiff, t.From, t.To)
		}
		if mod.Allows(t.From, t.To) {
			return fmt.Errorf("%w: enabled turn %s>%s is already permitted", ErrBadDiff, t.From, t.To)
		}
		mod.Add(t.From, t.To, t.Source)
	}
	mm := mod.Matrix()
	if mm.NumClasses() != m.NumClasses() {
		return fmt.Errorf("%w: toggles changed the declared class set", ErrBadDiff)
	}
	matched := dw.ws.matched
	nodes := g.net.Nodes()
	toggled := make([]core.Turn, 0, len(diff.DisableTurns)+len(diff.EnableTurns))
	toggled = append(toggled, diff.DisableTurns...)
	toggled = append(toggled, diff.EnableTurns...)
	for _, t := range toggled {
		fi, okF := m.Index(t.From)
		ti, okT := m.Index(t.To)
		if !okF || !okT {
			return fmt.Errorf("%w: turn %s>%s class not interned", ErrBadDiff, t.From, t.To)
		}
		for v := 0; v < nodes; v++ {
			for _, ai := range g.byHead[v] {
				if dw.masked[ai] || !containsIdx(matched[ai], int32(fi)) {
					continue
				}
				for _, bi := range g.byTail[v] {
					if dw.masked[bi] || !containsIdx(matched[bi], int32(ti)) {
						continue
					}
					had := g.HasEdge(int(ai), int(bi))
					want := mm.AllowsAny(matched[ai], matched[bi])
					switch {
					case had && !want:
						dw.rmOps = append(dw.rmOps, [2]int32{ai, bi})
					case !had && want:
						dw.addOps = append(dw.addOps, [2]int32{ai, bi})
					}
				}
			}
		}
	}
	return nil
}

// applyOps patches the adjacency rows in place, journaling the pristine
// content of every touched row so rollback restores the base graph
// exactly.
func (dw *DeltaWorkspace) applyOps() {
	g := dw.ws.g
	dw.rowEpoch++
	dw.saved = dw.saved[:0]
	dw.arena = dw.arena[:0]
	for _, op := range dw.rmOps {
		dw.saveRow(op[0])
		g.adj[op[0]] = deleteSorted(g.adj[op[0]], op[1])
	}
	for _, op := range dw.addOps {
		dw.saveRow(op[0])
		g.adj[op[0]] = insertSorted(g.adj[op[0]], op[1])
	}
	g.edges += len(dw.addOps) - len(dw.rmOps)
}

// saveRow journals row i's pristine content once per delta application.
func (dw *DeltaWorkspace) saveRow(i int32) {
	if dw.rowMark[i] == dw.rowEpoch {
		return
	}
	dw.rowMark[i] = dw.rowEpoch
	row := dw.ws.g.adj[i]
	off := len(dw.arena)
	dw.arena = append(dw.arena, row...)
	dw.saved = append(dw.saved, savedRow{idx: i, off: off, n: len(row)})
}

// rollback restores the base graph: journaled adjacency rows, the edge
// count and the mask. It is safe to call after a partial plan (empty
// journal) and always leaves the scratch lists reset.
func (dw *DeltaWorkspace) rollback() {
	g := dw.ws.g
	for _, s := range dw.saved {
		g.adj[s.idx] = append(g.adj[s.idx][:0], dw.arena[s.off:s.off+s.n]...)
	}
	dw.saved = dw.saved[:0]
	g.edges = dw.baseEdges
	for _, ci := range dw.maskedIdx {
		dw.masked[ci] = false
	}
	dw.maskedIdx = dw.maskedIdx[:0]
}

// repeel computes the canonical peel state of the patched graph — either
// incrementally from the retained base state, or by a full peel when the
// dirty region exceeds the budget or an added edge may close a cycle
// through the previously peeled region — and renders the report.
func (dw *DeltaWorkspace) repeel(ctx context.Context, jobs int) (Report, error) {
	g := dw.ws.g
	nc := len(g.channels)
	active := nc - len(dw.maskedIdx)
	budget := deltaBudget(nc)
	dirty := len(dw.rmOps) + len(dw.addOps)
	if dirty > budget {
		return dw.fullRepeel(ctx, jobs, active)
	}
	// Suspect probe: an added edge (u, v) with u peeled in the base can
	// participate in a cycle only if v reaches u in the patched graph. The
	// probe is bounded by the remaining dirty budget; exhausting it means
	// the absence of such a cycle was not established, and the full peel
	// decides.
	for _, op := range dw.addOps {
		if dw.baseFin[op[0]] != 0 {
			continue
		}
		found, visits := dw.reachable(op[1], op[0], budget-dirty)
		dirty += visits
		if found || dirty > budget {
			return dw.fullRepeel(ctx, jobs, active)
		}
	}
	obsDeltaIncremental.Inc()
	fin := dw.fin[:nc]
	copy(fin, dw.baseFin)
	// Join phase: count added edges from base-residual sources, then close
	// forward. A node whose count rises from zero joins the candidate
	// residual and contributes all its patched out-edges. Added edges whose
	// source itself joins are counted by that closure, not here.
	joins := dw.queue[:0]
	for _, op := range dw.addOps {
		if dw.baseFin[op[0]] == 0 {
			continue
		}
		if fin[op[1]] == 0 {
			fin[op[1]] = 1
			joins = append(joins, op[1])
		} else {
			fin[op[1]]++
		}
	}
	for len(joins) > 0 {
		x := joins[len(joins)-1]
		joins = joins[:len(joins)-1]
		for _, s := range g.adj[x] {
			if fin[s] == 0 {
				fin[s] = 1
				joins = append(joins, s)
			} else {
				fin[s]++
			}
		}
	}
	// Removal phase: a removed edge was counted by the base state exactly
	// when both endpoints sat in the base residual; collect those first
	// (judged on the immutable base state), then apply, queueing nodes
	// whose support drops to zero.
	dw.decs = dw.decs[:0]
	for _, op := range dw.rmOps {
		if dw.baseFin[op[0]] > 0 && dw.baseFin[op[1]] > 0 {
			dw.decs = append(dw.decs, op[1])
		}
	}
	leaves := joins[:0]
	for _, v := range dw.decs {
		if fin[v]--; fin[v] == 0 {
			leaves = append(leaves, v)
		}
	}
	// Leave phase: standard peel continuation over the patched graph.
	for len(leaves) > 0 {
		v := leaves[len(leaves)-1]
		leaves = leaves[:len(leaves)-1]
		for _, s := range g.adj[v] {
			if fin[s] > 0 {
				if fin[s]--; fin[s] == 0 {
					leaves = append(leaves, s)
				}
			}
		}
	}
	dw.queue = leaves[:0]
	rep := Report{Network: g.net.String(), Channels: active, Edges: g.edges, Acyclic: true}
	for i := 0; i < nc; i++ {
		if fin[i] > 0 {
			rep.Acyclic = false
			break
		}
	}
	if !rep.Acyclic {
		obsResidualDFS.Inc()
		dw.st.indeg = append(dw.st.indeg[:0], fin...)
		rep.Cycle = g.findCycleResidual(&dw.st)
	}
	return rep, nil
}

// fullRepeel is the fallback: a from-scratch Kahn peel of the patched
// graph (jobs <= 0 means all cores), canonical by construction. Masked
// channels have no edges left, so they peel in the first round and the
// acyclicity condition stays peeled == NumChannels.
func (dw *DeltaWorkspace) fullRepeel(ctx context.Context, jobs int, active int) (Report, error) {
	obsDeltaFallbacks.Inc()
	g := dw.ws.g
	peeled, err := g.kahnPeel(ctx, jobs, &dw.st)
	if err != nil {
		return Report{}, err
	}
	rep := Report{Network: g.net.String(), Channels: active, Edges: g.edges, Acyclic: peeled == len(g.channels)}
	if !rep.Acyclic {
		obsResidualDFS.Inc()
		rep.Cycle = g.findCycleResidual(&dw.st)
	}
	return rep, nil
}

// reachable reports whether target is reachable from start in the patched
// graph, visiting at most budget channels beyond the start. The second
// result is the number of channels visited; when it exceeds budget the
// search was abandoned and false means "not established".
func (dw *DeltaWorkspace) reachable(start, target int32, budget int) (bool, int) {
	if start == target {
		return true, 1
	}
	g := dw.ws.g
	dw.visEpoch++
	q := dw.queue[:0]
	q = append(q, start)
	dw.visited[start] = dw.visEpoch
	visits := 1
	for head := 0; head < len(q); head++ {
		for _, s := range g.adj[q[head]] {
			if dw.visited[s] == dw.visEpoch {
				continue
			}
			if s == target {
				dw.queue = q[:0]
				return true, visits
			}
			dw.visited[s] = dw.visEpoch
			visits++
			if visits > budget {
				dw.queue = q[:0]
				return false, visits
			}
			q = append(q, s)
		}
	}
	dw.queue = q[:0]
	return false, visits
}

// sortPairs orders edge operations by (from, to).
func sortPairs(ps [][2]int32) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i][0] != ps[j][0] {
			return ps[i][0] < ps[j][0]
		}
		return ps[i][1] < ps[j][1]
	})
}

// dedupePairs compacts a sorted operation list in place.
func dedupePairs(ps [][2]int32) [][2]int32 {
	out := ps[:0]
	for i, p := range ps {
		if i == 0 || p != ps[i-1] {
			out = append(out, p)
		}
	}
	return out
}

// pairsIntersect returns a pair present in both sorted lists, if any.
func pairsIntersect(a, b [][2]int32) ([2]int32, bool) {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			return a[i], true
		case a[i][0] < b[j][0] || (a[i][0] == b[j][0] && a[i][1] < b[j][1]):
			i++
		default:
			j++
		}
	}
	return [2]int32{}, false
}

// containsIdx reports whether the ascending index list contains v. Match
// lists are tiny (a channel instantiates few classes), so a linear scan
// beats a binary search.
func containsIdx(list []int32, v int32) bool {
	for _, x := range list {
		if x == v {
			return true
		}
	}
	return false
}

// deleteSorted removes v from the ascending row, which must contain it.
func deleteSorted(row []int32, v int32) []int32 {
	i := sort.Search(len(row), func(k int) bool { return row[k] >= v })
	copy(row[i:], row[i+1:])
	return row[:len(row)-1]
}

// deltaPoolKey identifies a retained base verification by its cache key;
// entries additionally carry the check hash, so a single-hash collision
// builds fresh instead of reusing the wrong base.
type deltaPoolKey = uint64

// DeltaPool is a goroutine-safe free list of delta workspaces keyed by
// their base verification. Get returns a retained workspace for the base
// or builds one (running the base verification); Put returns it for
// reuse. Growth is bounded like WorkspacePool: at most GOMAXPROCS idle
// workspaces per base, and an epoch flush when the number of distinct
// bases exceeds maxDeltaBases.
type DeltaPool struct {
	mu   sync.Mutex
	free map[deltaPoolKey][]*DeltaWorkspace
}

// maxDeltaBases bounds the number of distinct retained bases.
const maxDeltaBases = 32

// DefaultDeltaPool is the process-wide delta workspace pool used by the
// verification cache's delta entry points.
var DefaultDeltaPool = &DeltaPool{}

// GetCtx returns a delta workspace for the base (network, VC
// configuration, turn set), reusing a pooled one when available and
// building the base verification otherwise (jobs <= 0 means all cores).
func (p *DeltaPool) GetCtx(ctx context.Context, net *topology.Network, vcs VCConfig, ts *core.TurnSet, jobs int) (*DeltaWorkspace, error) {
	obsDeltaPoolGets.Inc()
	key, check := verifyKey(net, vcs, ts)
	p.mu.Lock()
	list := p.free[key]
	for len(list) > 0 {
		dw := list[len(list)-1]
		list[len(list)-1] = nil
		list = list[:len(list)-1]
		if dw.baseCheck == check {
			p.free[key] = list
			p.mu.Unlock()
			obsDeltaPoolReuses.Inc()
			return dw, nil
		}
	}
	if p.free != nil {
		p.free[key] = list
	}
	p.mu.Unlock()
	return NewDeltaWorkspaceCtx(ctx, net, vcs, ts, jobs)
}

// Put returns a workspace to the pool. The caller must not use it (or its
// Graph) afterwards.
func (p *DeltaPool) Put(dw *DeltaWorkspace) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.free == nil {
		p.free = make(map[deltaPoolKey][]*DeltaWorkspace)
	}
	if _, ok := p.free[dw.baseKey]; !ok && len(p.free) >= maxDeltaBases {
		p.free = make(map[deltaPoolKey][]*DeltaWorkspace)
	}
	if list := p.free[dw.baseKey]; len(list) < runtime.GOMAXPROCS(0) {
		p.free[dw.baseKey] = append(list, dw)
	}
}
