package cdg

import (
	"reflect"
	"sync"
	"testing"

	"ebda/internal/channel"
	"ebda/internal/core"
	"ebda/internal/topology"
)

func TestCacheHitOnRepeat(t *testing.T) {
	c := &VerifyCache{}
	net := topology.NewMesh(4, 4)
	ts := xyTurnSet()
	first := c.VerifyTurnSetJobs(net, nil, ts, 0)
	second := c.VerifyTurnSetJobs(net, nil, ts, 0)
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("cached report diverged: %+v vs %+v", first, second)
	}
	s := c.Stats()
	if s.Misses != 1 || s.Hits != 1 || s.Entries != 1 {
		t.Errorf("stats = %+v, want 1 miss, 1 hit, 1 entry", s)
	}
	if s.HitRate() != 0.5 {
		t.Errorf("hit rate = %v, want 0.5", s.HitRate())
	}
}

func TestCacheHitsAcrossInstances(t *testing.T) {
	// Equal relations built independently on equal-shape (but distinct)
	// networks must share one entry — the sweeps rebuild both per
	// candidate.
	c := &VerifyCache{}
	c.VerifyTurnSetJobs(topology.NewMesh(4, 4), nil, xyTurnSet(), 0)
	rep := c.VerifyTurnSetJobs(topology.NewMesh(4, 4), nil, xyTurnSet(), 0)
	if s := c.Stats(); s.Hits != 1 || s.Misses != 1 {
		t.Errorf("stats = %+v, want a cross-instance hit", s)
	}
	if !rep.Acyclic {
		t.Errorf("XY must verify acyclic: %s", rep)
	}
}

func TestCacheKeyDiscriminates(t *testing.T) {
	c := &VerifyCache{}
	mesh := topology.NewMesh(4, 4)
	base := c.Stats()
	probes := []struct {
		name string
		net  *topology.Network
		vcs  VCConfig
		ts   *core.TurnSet
	}{
		{"base", mesh, nil, xyTurnSet()},
		{"bigger mesh", topology.NewMesh(5, 4), nil, xyTurnSet()},
		{"torus", topology.NewTorus(4, 4), nil, xyTurnSet()},
		{"more vcs", mesh, Uniform(2, 2), xyTurnSet()},
		{"other turns", mesh, nil, allTurnSet()},
	}
	for i, p := range probes {
		c.VerifyTurnSetJobs(p.net, p.vcs, p.ts, 0)
		s := c.Stats()
		if want := base.Misses + uint64(i) + 1; s.Misses != want {
			t.Fatalf("%s: misses = %d, want %d (keys must differ)", p.name, s.Misses, want)
		}
		if s.Hits != base.Hits {
			t.Fatalf("%s: unexpected hit", p.name)
		}
	}
}

func TestCacheInvalidatedByMutation(t *testing.T) {
	c := &VerifyCache{}
	net := topology.NewMesh(4, 4)
	ts := xyTurnSet()
	if rep := c.VerifyTurnSetJobs(net, nil, ts, 0); !rep.Acyclic {
		t.Fatalf("XY must be acyclic: %s", rep)
	}
	// Completing the turn set to every 90-degree turn makes it cyclic;
	// the mutated set must fingerprint differently and re-verify.
	n, s := channel.New(channel.Y, channel.Plus), channel.New(channel.Y, channel.Minus)
	e, w := channel.New(channel.X, channel.Plus), channel.New(channel.X, channel.Minus)
	for _, from := range []channel.Class{n, s} {
		for _, to := range []channel.Class{e, w} {
			ts.Add(from, to, core.ByTheorem1)
		}
	}
	rep := c.VerifyTurnSetJobs(net, nil, ts, 0)
	if rep.Acyclic {
		t.Fatal("full 2D turn set must be cyclic — stale cache entry served")
	}
	if st := c.Stats(); st.Misses != 2 || st.Hits != 0 {
		t.Errorf("stats = %+v, want two distinct misses", st)
	}
}

func TestCacheIrregularNetworksDistinct(t *testing.T) {
	// Same name, same dimensions, different elevator columns: only the
	// link list tells them apart, so irregular keys must include it.
	c := &VerifyCache{}
	a := topology.NewPartialMesh3D(3, 3, 2, [][2]int{{0, 0}})
	b := topology.NewPartialMesh3D(3, 3, 2, [][2]int{{0, 0}, {2, 2}})
	ts := xyTurnSet()
	ra := c.VerifyTurnSetJobs(a, nil, ts, 0)
	rb := c.VerifyTurnSetJobs(b, nil, ts, 0)
	if s := c.Stats(); s.Misses != 2 || s.Hits != 0 {
		t.Fatalf("stats = %+v: different irregular networks must miss", s)
	}
	if ra.Channels == rb.Channels {
		t.Errorf("elevator variants report equal channel counts (%d); key test is vacuous", ra.Channels)
	}
}

func TestCacheChainEntryPoint(t *testing.T) {
	// VerifyChainCached must hit across chain re-parses: AllTurns builds
	// a fresh TurnSet per call, but the relation is identical.
	DefaultCache.Reset()
	net := topology.NewMesh(4, 4)
	before := DefaultCache.Stats()
	spec := "PA[X1+ Y1+ Y1-] -> PB[X1- Y2+ Y2-]"
	first := VerifyChainCached(net, core.MustParseChain(spec))
	second := VerifyChainCached(net, core.MustParseChain(spec))
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("chain reports diverged: %+v vs %+v", first, second)
	}
	after := DefaultCache.Stats()
	if after.Hits != before.Hits+1 || after.Misses != before.Misses+1 {
		t.Errorf("stats before %+v after %+v, want one miss then one hit", before, after)
	}
}

func TestCacheConcurrent(t *testing.T) {
	// Hammer one cache from many goroutines across a mix of shapes; run
	// under -race via `make check`. Every result must match the serial
	// reference for its shape.
	c := &VerifyCache{}
	nets := []*topology.Network{
		topology.NewMesh(4, 4),
		topology.NewMesh(3, 5),
		topology.NewTorus(4, 4),
	}
	sets := []*core.TurnSet{xyTurnSet(), allTurnSet(), parityTurnSet()}
	var want []Report
	for i, net := range nets {
		want = append(want, freshReport(net, nil, sets[i], 1))
	}
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				k := (w + i) % len(nets)
				got := c.VerifyTurnSetJobs(nets[k], nil, sets[k], 2)
				if !reflect.DeepEqual(got, want[k]) {
					select {
					case errs <- got.String() + " != " + want[k].String():
					default:
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	if s := c.Stats(); s.Hits+s.Misses != 8*20 {
		t.Errorf("stats = %+v, want %d total probes", s, 8*20)
	}
}

func TestCacheEvictionCounting(t *testing.T) {
	// Lower the epoch-flush bound to force evictions; cdg tests run
	// sequentially within the package, so restoring it is safe.
	old := maxCacheEntries
	maxCacheEntries = 2
	defer func() { maxCacheEntries = old }()

	c := &VerifyCache{}
	nets := []*topology.Network{
		topology.NewMesh(4, 4),
		topology.NewMesh(3, 5),
		topology.NewMesh(5, 5),
	}
	for _, net := range nets {
		c.VerifyTurnSetJobs(net, nil, xyTurnSet(), 1)
	}
	s := c.Stats()
	if s.Misses != 3 || s.Evictions != 2 {
		t.Fatalf("stats = %+v, want 3 misses and 2 evictions (epoch flush at 2 entries)", s)
	}
	if s.Entries != 1 {
		t.Fatalf("entries = %d, want 1 after the flush", s.Entries)
	}
	// Reset is an intentional epoch boundary, not capacity pressure.
	c.Reset()
	if s := c.Stats(); s.Evictions != 0 || s.Entries != 0 {
		t.Fatalf("stats after reset = %+v, want zeroed", s)
	}
}
