package cdg

import (
	"context"
	"sync"
	"sync/atomic"

	"ebda/internal/channel"
	"ebda/internal/core"
	"ebda/internal/topology"
)

// VerifyCache memoizes verification Reports across turn sets, keyed by a
// canonical 64-bit hash of (network shape, VC configuration, turn-set
// transition relation). The experiment sweeps (E04/E05/E07, the partition
// strategy searches, the paper-section turn-model enumerations) verify
// many structurally identical designs — chains rebuilt per call produce
// fresh TurnSet instances with identical relations — and the cache turns
// those repeats into a map probe.
//
// The cache is goroutine-safe. Each entry stores a second, independently
// derived 64-bit check hash: a probe whose key matches but whose check
// differs is treated as a miss and recomputed, so a single-hash collision
// can never surface a wrong report. Cached Reports share their Cycle
// slice; callers must treat it as read-only (every in-repo consumer only
// formats it).
type VerifyCache struct {
	mu sync.RWMutex
	m  map[uint64]cacheEntry

	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
}

type cacheEntry struct {
	check uint64
	rep   Report
}

// maxCacheEntries bounds memory: past it the map is flushed wholesale (an
// epoch flush — correctness never depends on cache contents). The
// repository's full sweep population is a few thousand entries. It is a
// variable only so tests can lower it to exercise the eviction path.
var maxCacheEntries = 1 << 15

// DefaultCache is the process-wide verification cache behind
// VerifyTurnSetCached and VerifyChainCached.
var DefaultCache = &VerifyCache{}

// CacheStats is a snapshot of cache effectiveness.
type CacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
}

// HitRate returns hits / (hits + misses), or 0 when empty.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Stats returns current hit/miss/eviction counters and the live entry
// count.
func (c *VerifyCache) Stats() CacheStats {
	c.mu.RLock()
	n := len(c.m)
	c.mu.RUnlock()
	return CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Entries:   n,
	}
}

// Reset clears all entries and counters. Entries dropped here are not
// counted as evictions: Reset marks an intentional epoch boundary (the
// bench harness isolates experiments with it), not capacity pressure.
func (c *VerifyCache) Reset() {
	c.mu.Lock()
	c.m = nil
	c.mu.Unlock()
	c.hits.Store(0)
	c.misses.Store(0)
	c.evictions.Store(0)
	obsCacheEntries.Set(0)
}

// verifyKey derives the cache key and its independent check hash. The
// network contributes its family name, per-dimension sizes and wraps (and,
// for irregular networks, the full memoized link list — shape parameters
// alone do not determine an irregular topology); the VC configuration
// contributes its effective per-dimension counts; the turn set contributes
// its order-independent relation fingerprint.
func verifyKey(net *topology.Network, vcs VCConfig, ts *core.TurnSet) (key, check uint64) {
	h1 := uint64(0x9e3779b97f4a7c15)
	h2 := uint64(0xc2b2ae3d27d4eb4f)
	put := func(v uint64) {
		h1 = mix64(h1 ^ v)
		h2 = mix64(h2*0x100000001b3 + v)
	}
	name := net.Name()
	put(uint64(len(name)))
	for i := 0; i < len(name); i++ {
		put(uint64(name[i]))
	}
	dims := net.Dims()
	put(uint64(dims))
	for d := 0; d < dims; d++ {
		put(uint64(net.Size(channel.Dim(d))))
		if net.Wrap(channel.Dim(d)) {
			put(1)
		} else {
			put(0)
		}
		put(uint64(vcs.VCs(channel.Dim(d))))
	}
	if !net.Regular() {
		links := net.Links()
		put(uint64(len(links)))
		for _, l := range links {
			put(uint64(uint32(l.From))<<32 | uint64(uint32(l.To)))
			w := uint64(0)
			if l.Wrap {
				w = 1
			}
			s := uint64(0)
			if l.Sign == channel.Minus {
				s = 1
			}
			put(uint64(l.Dim)<<2 | s<<1 | w)
		}
	}
	f1, f2 := ts.Fingerprint()
	put(f1)
	put(f2)
	return h1, h2
}

// VerifyKey exposes the cache's dual-hash identity of a verification:
// the canonical key and its independently derived check hash. The pair is
// stable across processes and jobs values, so serving layers can use it
// to coalesce concurrent identical verifications onto one computation
// (two requests share a flight iff they would share a cache entry).
func VerifyKey(net *topology.Network, vcs VCConfig, ts *core.TurnSet) (key, check uint64) {
	return verifyKey(net, vcs, ts)
}

// mix64 is the splitmix64 finalizer, used to diffuse key components.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Lookup probes the cache without computing on a miss. A hit counts as
// cache traffic (it answers a verification); a miss counts nothing — the
// caller decides whether to compute, and the computing entry point
// records the miss. Serving layers use Lookup to report cache provenance
// exactly: hit -> served from cache, miss -> computed (or coalesced onto
// another request's computation).
func (c *VerifyCache) Lookup(net *topology.Network, vcs VCConfig, ts *core.TurnSet) (Report, bool) {
	key, check := verifyKey(net, vcs, ts)
	c.mu.RLock()
	e, ok := c.m[key]
	c.mu.RUnlock()
	if ok && e.check == check {
		c.hits.Add(1)
		obsCacheHits.Inc()
		return e.rep, true
	}
	return Report{}, false
}

// LookupKey probes the cache by a raw dual-hash identity (a VerifyKey or
// DeltaKey pair) without computing on a miss, with Lookup's accounting
// contract: a hit counts as cache traffic, a miss counts nothing. It is
// the peer-lookup entry point for cluster serving — a replica that owns
// a key answers another replica's probe from its cache or not at all,
// and the check hash guarantees a collision is a miss, never a wrong
// report.
func (c *VerifyCache) LookupKey(key, check uint64) (Report, bool) {
	c.mu.RLock()
	e, ok := c.m[key]
	c.mu.RUnlock()
	if ok && e.check == check {
		c.hits.Add(1)
		obsCacheHits.Inc()
		return e.rep, true
	}
	return Report{}, false
}

// VerifyTurnSetJobs returns the memoized report for the (network, vcs,
// turn set) shape, computing and caching it on a miss via the pooled
// verification path (jobs <= 0 means all cores). Reports are identical to
// the uncached path for every jobs value.
func (c *VerifyCache) VerifyTurnSetJobs(net *topology.Network, vcs VCConfig, ts *core.TurnSet, jobs int) Report {
	rep, _ := c.VerifyTurnSetCtx(context.Background(), net, vcs, ts, jobs)
	return rep
}

// VerifyTurnSetCtx is VerifyTurnSetJobs with a deadline. A cache hit is
// answered even when ctx has already expired — it costs no work and the
// verdict is real. A miss computes through the context-aware pooled path;
// cancellation returns ctx's error, counts the probe as a miss, and
// stores nothing (partial peels never become cache entries).
func (c *VerifyCache) VerifyTurnSetCtx(ctx context.Context, net *topology.Network, vcs VCConfig, ts *core.TurnSet, jobs int) (Report, error) {
	key, check := verifyKey(net, vcs, ts)
	c.mu.RLock()
	e, ok := c.m[key]
	c.mu.RUnlock()
	if ok && e.check == check {
		c.hits.Add(1)
		obsCacheHits.Inc()
		return e.rep, nil
	}
	c.misses.Add(1)
	obsCacheMisses.Inc()
	rep, err := VerifyTurnSetCtx(ctx, net, vcs, ts, jobs)
	if err != nil {
		return Report{}, err
	}
	c.mu.Lock()
	if c.m == nil || len(c.m) >= maxCacheEntries {
		if n := len(c.m); n > 0 {
			c.evictions.Add(uint64(n))
			obsCacheEvictions.Add(uint64(n))
		}
		c.m = make(map[uint64]cacheEntry)
	}
	c.m[key] = cacheEntry{check: check, rep: rep}
	obsCacheEntries.Set(int64(len(c.m)))
	c.mu.Unlock()
	return rep, nil
}

// DeltaKey derives the cache identity of a delta verification: the base
// verification's dual-hash key mixed with the diff's canonical
// fingerprint. Like VerifyKey it is stable across processes and jobs
// values, so serving layers coalesce concurrent identical deltas onto one
// computation. Delta entries live in the same cache map as full
// verifications; the seeds keep the two key families decorrelated and the
// check hash catches any residual collision.
func DeltaKey(net *topology.Network, vcs VCConfig, ts *core.TurnSet, diff Diff) (key, check uint64) {
	const (
		deltaSeedA = 0x71c3a9d0f54bd137
		deltaSeedB = 0x3c79ac492ba7b653
	)
	bk, bc := verifyKey(net, vcs, ts)
	f1, f2 := diff.Fingerprint()
	key = mix64(bk ^ mix64(f1^deltaSeedA))
	check = mix64(bc*0x100000001b3 + mix64(f2^deltaSeedB))
	return key, check
}

// LookupDelta probes the cache for a delta verdict without computing on a
// miss, with the same hit/miss accounting contract as Lookup: a hit counts
// as cache traffic, a miss counts nothing.
func (c *VerifyCache) LookupDelta(net *topology.Network, vcs VCConfig, ts *core.TurnSet, diff Diff) (Report, bool) {
	key, check := DeltaKey(net, vcs, ts, diff)
	c.mu.RLock()
	e, ok := c.m[key]
	c.mu.RUnlock()
	if ok && e.check == check {
		c.hits.Add(1)
		obsCacheHits.Inc()
		return e.rep, true
	}
	return Report{}, false
}

// VerifyDeltaCtx returns the memoized report of the base design perturbed
// by the diff, computing it on a miss through a pooled DeltaWorkspace
// (jobs <= 0 means all cores) — the cache-layer delta entry point serving
// code must use. A hit is answered even when ctx has expired; a miss that
// is cancelled (or whose diff is invalid) returns the error and stores
// nothing. Reports are bit-identical to a from-scratch verification of the
// perturbed design for every jobs value.
func (c *VerifyCache) VerifyDeltaCtx(ctx context.Context, net *topology.Network, vcs VCConfig, ts *core.TurnSet, diff Diff, jobs int) (Report, error) {
	key, check := DeltaKey(net, vcs, ts, diff)
	c.mu.RLock()
	e, ok := c.m[key]
	c.mu.RUnlock()
	if ok && e.check == check {
		c.hits.Add(1)
		obsCacheHits.Inc()
		return e.rep, nil
	}
	c.misses.Add(1)
	obsCacheMisses.Inc()
	dw, err := DefaultDeltaPool.GetCtx(ctx, net, vcs, ts, jobs)
	if err != nil {
		return Report{}, err
	}
	rep, err := dw.VerifyDiffCtx(ctx, diff, jobs)
	DefaultDeltaPool.Put(dw)
	if err != nil {
		return Report{}, err
	}
	c.mu.Lock()
	if c.m == nil || len(c.m) >= maxCacheEntries {
		if n := len(c.m); n > 0 {
			c.evictions.Add(uint64(n))
			obsCacheEvictions.Add(uint64(n))
		}
		c.m = make(map[uint64]cacheEntry)
	}
	c.m[key] = cacheEntry{check: check, rep: rep}
	obsCacheEntries.Set(int64(len(c.m)))
	c.mu.Unlock()
	return rep, nil
}

// VerifyDeltaJobs is VerifyDeltaCtx without a deadline.
func (c *VerifyCache) VerifyDeltaJobs(net *topology.Network, vcs VCConfig, ts *core.TurnSet, diff Diff, jobs int) (Report, error) {
	return c.VerifyDeltaCtx(context.Background(), net, vcs, ts, diff, jobs)
}

// VerifyDeltaCached is VerifyDeltaJobs through the DefaultCache.
func VerifyDeltaCached(net *topology.Network, vcs VCConfig, ts *core.TurnSet, diff Diff) (Report, error) {
	return DefaultCache.VerifyDeltaJobs(net, vcs, ts, diff, 0)
}

// VerifyTurnSetCached is VerifyTurnSet through the DefaultCache.
func VerifyTurnSetCached(net *topology.Network, vcs VCConfig, ts *core.TurnSet) Report {
	return DefaultCache.VerifyTurnSetJobs(net, vcs, ts, 0)
}

// VerifyTurnSetCachedJobs is VerifyTurnSetJobs through the DefaultCache.
func VerifyTurnSetCachedJobs(net *topology.Network, vcs VCConfig, ts *core.TurnSet, jobs int) Report {
	return DefaultCache.VerifyTurnSetJobs(net, vcs, ts, jobs)
}

// VerifyChainCached is VerifyChain through the DefaultCache: the chain's
// full turn set and derived VC configuration, memoized by relation — two
// chains extracting equal turn sets share one verification.
func VerifyChainCached(net *topology.Network, chain *core.Chain) Report {
	vcs := VCConfigFor(net.Dims(), chain.Channels())
	return DefaultCache.VerifyTurnSetJobs(net, vcs, chain.AllTurns(), 0)
}
