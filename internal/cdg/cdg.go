// Package cdg builds concrete channel dependency graphs and checks them for
// cycles — Dally's necessary-and-sufficient condition for deadlock freedom
// that the EbDa theory constructs designs against.
//
// A concrete channel is one unidirectional physical link of a topology
// paired with a virtual-channel number. Given a turn set extracted from an
// EbDa partition chain (or any other turn relation), the graph contains a
// dependency edge from channel a (into node v) to channel b (out of node v)
// whenever the relation permits the transition between their channel
// classes. The EbDa theorems claim every chain-derived relation yields an
// acyclic graph; this package verifies that claim mechanically, and exposes
// the same machinery for adversarial designs that should contain cycles.
package cdg

import (
	"context"
	"fmt"
	"math/bits"
	"runtime"
	"sort"
	"strings"
	"sync"

	"ebda/internal/channel"
	"ebda/internal/core"
	"ebda/internal/topology"
)

// VCConfig gives the number of virtual channels per dimension. A nil or
// short config defaults missing dimensions to 1.
type VCConfig []int

// VCs returns the VC count for a dimension (at least 1).
func (v VCConfig) VCs(d channel.Dim) int {
	if int(d) < len(v) && v[d] > 0 {
		return v[d]
	}
	return 1
}

// Uniform returns a VCConfig with the same VC count in every one of n
// dimensions.
func Uniform(n, vcs int) VCConfig {
	cfg := make(VCConfig, n)
	for i := range cfg {
		cfg[i] = vcs
	}
	return cfg
}

// VCConfigFor derives the VC configuration implied by a set of channel
// classes: each dimension gets as many VCs as the largest VC number
// mentioned for it.
func VCConfigFor(nDims int, classes []channel.Class) VCConfig {
	cfg := make(VCConfig, nDims)
	for i := range cfg {
		cfg[i] = 1
	}
	for _, c := range classes {
		if int(c.Dim) < nDims && c.VC > cfg[c.Dim] {
			cfg[c.Dim] = c.VC
		}
	}
	return cfg
}

// Channel is one concrete channel: a physical link plus a VC number.
type Channel struct {
	Link topology.Link
	VC   int
	// Index is the channel's dense index within its Graph.
	Index int
}

// Class returns the channel's intrinsic class (dimension, sign, VC; no
// parity restriction).
func (c Channel) Class() channel.Class {
	return channel.NewVC(c.Link.Dim, c.Link.Sign, c.VC)
}

// String renders the channel as "(0,1)->(1,1) X1+".
func (c Channel) String() string {
	return fmt.Sprintf("n%d->n%d %s", c.Link.From, c.Link.To, c.Class())
}

// Graph is a channel dependency graph over a concrete network.
//
// Adjacency lists are kept sorted ascending at all times (AddEdge inserts
// in order; the bulk constructors emit sorted runs), so membership tests
// binary-search and all traversal output is independent of how many
// workers built the graph.
type Graph struct {
	net      *topology.Network
	vcs      VCConfig
	channels []Channel
	// byHead[v] lists indices of channels whose Link.To == v, ascending.
	byHead [][]int32
	// byTail[v] lists indices of channels whose Link.From == v, ascending.
	byTail [][]int32
	adj    [][]int32
	edges  int
	// tailIndex is the dense (node, dim, sign, vc) -> channel index table
	// behind the O(1) FindChannel; -1 marks absent channels. maxVC is the
	// per-dimension stride.
	tailIndex []int32
	maxVC     int
	// coords[v*Dims()+d] is node v's coordinate in dimension d: a flat
	// copy of net.Coord so parity tests in the class-matching hot loop
	// are allocation-free.
	coords []int32
}

// NewGraph enumerates the concrete channels of the network under the VC
// configuration; the graph starts with no dependency edges.
func NewGraph(net *topology.Network, vcs VCConfig) *Graph {
	g := &Graph{
		net:    net,
		vcs:    vcs,
		byHead: make([][]int32, net.Nodes()),
		byTail: make([][]int32, net.Nodes()),
		maxVC:  1,
	}
	for d := 0; d < net.Dims(); d++ {
		if v := vcs.VCs(channel.Dim(d)); v > g.maxVC {
			g.maxVC = v
		}
	}
	g.tailIndex = make([]int32, net.Nodes()*net.Dims()*2*g.maxVC)
	for i := range g.tailIndex {
		g.tailIndex[i] = -1
	}
	dims := net.Dims()
	g.coords = make([]int32, net.Nodes()*dims)
	for v := 0; v < net.Nodes(); v++ {
		c := net.Coord(topology.NodeID(v))
		for d, x := range c {
			g.coords[v*dims+d] = int32(x)
		}
	}
	for _, link := range net.Links() {
		for vc := 1; vc <= vcs.VCs(link.Dim); vc++ {
			idx := len(g.channels)
			g.channels = append(g.channels, Channel{Link: link, VC: vc, Index: idx})
			g.byHead[link.To] = append(g.byHead[link.To], int32(idx))
			g.byTail[link.From] = append(g.byTail[link.From], int32(idx))
			g.tailIndex[g.tailSlot(link.From, link.Dim, link.Sign, vc)] = int32(idx)
		}
	}
	g.adj = make([][]int32, len(g.channels))
	return g
}

// tailSlot computes the dense tailIndex position of (from, d, sign, vc).
func (g *Graph) tailSlot(from topology.NodeID, d channel.Dim, sign channel.Sign, vc int) int {
	s := 0
	if sign == channel.Minus {
		s = 1
	}
	return ((int(from)*g.net.Dims()+int(d))*2+s)*g.maxVC + (vc - 1)
}

// Net returns the underlying network.
func (g *Graph) Net() *topology.Network { return g.net }

// VCs returns the VC configuration.
func (g *Graph) VCs() VCConfig { return g.vcs }

// Channels returns all concrete channels. The slice must not be modified.
func (g *Graph) Channels() []Channel { return g.channels }

// NumChannels returns the number of concrete channels.
func (g *Graph) NumChannels() int { return len(g.channels) }

// NumEdges returns the number of dependency edges added so far.
func (g *Graph) NumEdges() int { return g.edges }

// Into returns the channels whose head is node v.
func (g *Graph) Into(v topology.NodeID) []int32 { return g.byHead[v] }

// OutOf returns the channels whose tail is node v.
func (g *Graph) OutOf(v topology.NodeID) []int32 { return g.byTail[v] }

// AddEdge adds a dependency edge between two channel indices, keeping the
// successor list sorted.
func (g *Graph) AddEdge(from, to int) {
	g.adj[from] = insertSorted(g.adj[from], int32(to))
	g.edges++
}

// insertSorted places v into its ordered position in row. The common bulk
// case (v not below the current maximum) is a plain append.
//
//ebda:hotpath
func insertSorted(row []int32, v int32) []int32 {
	if n := len(row); n == 0 || row[n-1] <= v {
		return append(row, v)
	}
	i := sort.Search(len(row), func(k int) bool { return row[k] >= v })
	row = append(row, 0)
	copy(row[i+1:], row[i:])
	row[i] = v
	return row
}

// AddEdges adds dependency edges from one channel to every listed successor
// in a single sorted merge — the batched counterpart of AddEdge, used by
// the bulk constructors so incremental O(n) inserts stay off the hot path.
// tos may be in any order (it is sorted in place when needed). Not safe for
// concurrent use; the parallel constructors batch per worker and merge into
// disjoint rows instead.
//
//ebda:hotpath
func (g *Graph) AddEdges(from int, tos ...int32) {
	if len(tos) == 0 {
		return
	}
	if !sortedInt32(tos) {
		sort.Slice(tos, func(i, j int) bool { return tos[i] < tos[j] })
	}
	g.adj[from] = mergeSorted(g.adj[from], tos)
	g.edges += len(tos)
}

// sortedInt32 reports whether the slice is ascending.
func sortedInt32(s []int32) bool {
	for i := 1; i < len(s); i++ {
		if s[i] < s[i-1] {
			return false
		}
	}
	return true
}

// mergeSorted merges the ascending batch into the ascending row in one
// pass, keeping the result ascending. The common bulk case — the batch
// entirely above the current maximum, which covers every first fill of a
// freshly reset row — is a plain append. Otherwise the row grows once and
// a backwards merge avoids any temporary buffer.
//
//ebda:hotpath
func mergeSorted(row, batch []int32) []int32 {
	if len(batch) == 0 {
		return row
	}
	if n := len(row); n == 0 || row[n-1] <= batch[0] {
		return append(row, batch...)
	}
	n, b := len(row), len(batch)
	row = append(row, batch...)
	i, j, k := n-1, b-1, n+b-1
	for j >= 0 {
		if i >= 0 && row[i] > batch[j] {
			row[k] = row[i]
			i--
		} else {
			row[k] = batch[j]
			j--
		}
		k--
	}
	return row
}

// Succs returns the dependency successors of a channel index, ascending.
// The slice must not be modified.
func (g *Graph) Succs(i int) []int32 { return g.adj[i] }

// HasEdge reports whether the dependency edge from one channel index to
// another exists. Successor lists are sorted, so this is a binary search.
func (g *Graph) HasEdge(from, to int) bool {
	row := g.adj[from]
	i := sort.Search(len(row), func(k int) bool { return row[k] >= int32(to) })
	return i < len(row) && row[i] == int32(to)
}

// FindChannel locates the concrete channel leaving a node in the given
// direction on the given VC via the dense tail-index table — O(1), no
// scan of the node's channel list.
func (g *Graph) FindChannel(from topology.NodeID, d channel.Dim, sign channel.Sign, vc int) (Channel, bool) {
	if int(d) >= g.net.Dims() || vc < 1 || vc > g.maxVC {
		return Channel{}, false
	}
	if idx := g.tailIndex[g.tailSlot(from, d, sign, vc)]; idx >= 0 {
		return g.channels[idx], true
	}
	return Channel{}, false
}

// resolveJobs turns a jobs request (0 = all cores) into a worker count
// bounded by the number of independent shards.
func resolveJobs(jobs, shards int) int {
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if jobs > shards {
		jobs = shards
	}
	if jobs < 1 {
		jobs = 1
	}
	return jobs
}

// matchClassIdx appends to dst, for a concrete channel, the interned
// indices of the matrix classes it instantiates, and returns the extended
// slice (append-into form so callers can reuse scratch). Parity
// restrictions are evaluated against the channel's tail-node coordinate in
// the class's parity dimension (a channel does not move in dimensions
// other than its own, so head and tail agree there except on its
// own-dimension wraparound, which parity classes may not reference).
//
//ebda:hotpath
func (g *Graph) matchClassIdx(dst []int32, ch Channel, m *core.AllowMatrix) []int32 {
	base := int(ch.Link.From) * g.net.Dims()
	for i, cls := range m.Classes() {
		if cls.Dim != ch.Link.Dim || cls.Sign != ch.Link.Sign || cls.VC != ch.VC {
			continue
		}
		if cls.Par != channel.Any && !cls.Par.Matches(int(g.coords[base+int(cls.PDim)])) {
			continue
		}
		dst = append(dst, int32(i))
	}
	return dst
}

// AddTurnEdges adds a dependency edge for every pair of concrete channels
// (a into v, b out of v) whose classes are related by the turn set, using
// every available core. It returns the number of edges added.
func (g *Graph) AddTurnEdges(ts *core.TurnSet) int { return g.AddTurnEdgesJobs(ts, 0) }

// AddTurnEdgesJobs is AddTurnEdges over a bounded worker pool (jobs <= 0
// means all cores). Nodes shard perfectly: the dependency a->b exists via
// the single node where a's head meets b's tail, so every channel's
// successor list is owned by exactly one node and workers write disjoint
// rows. The result — row contents and order — is identical for every
// worker count.
func (g *Graph) AddTurnEdgesJobs(ts *core.TurnSet, jobs int) int {
	return g.addTurnEdges(ts, jobs, make([][]int32, len(g.channels)))
}

// addTurnEdges is the engine behind AddTurnEdgesJobs. matched is
// caller-provided scratch of length NumChannels (entries are reset to
// length zero and refilled, keeping capacity), so a Workspace can run
// repeated extractions without reallocating the per-channel match lists.
//
//ebda:hotpath
func (g *Graph) addTurnEdges(ts *core.TurnSet, jobs int, matched [][]int32) int {
	m := ts.Matrix()
	nc := len(g.channels)
	workers := resolveJobs(jobs, g.net.Nodes())
	// Phase 1: intern class matches per channel (independent per channel).
	parallelFor(workers, func(w int) {
		for i := w; i < nc; i += workers {
			matched[i] = g.matchClassIdx(matched[i][:0], g.channels[i], m)
		}
	})
	// Phase 2: per-node edge construction. byTail rows are ascending, so
	// each batch arrives sorted and merges into the row in one pass.
	counts := make([]int, workers)
	nodes := g.net.Nodes()
	parallelFor(workers, func(w int) {
		added := 0
		var batch []int32
		for v := w; v < nodes; v += workers {
			for _, ai := range g.byHead[v] {
				batch = batch[:0]
				for _, bi := range g.byTail[v] {
					if m.AllowsAny(matched[ai], matched[bi]) {
						batch = append(batch, bi)
					}
				}
				if len(batch) > 0 {
					g.adj[ai] = mergeSorted(g.adj[ai], batch)
					added += len(batch)
				}
			}
		}
		counts[w] = added
	})
	added := 0
	for _, c := range counts {
		added += c
	}
	g.edges += added
	return added
}

// parallelFor runs fn(w) for w in [0, workers) on separate goroutines
// (inline when one suffices) and waits for all of them. Each fn must
// stride its shard range by the same workers count it was resolved with.
func parallelFor(workers int, fn func(w int)) {
	if workers <= 1 {
		fn(0)
		return
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			fn(w)
		}(w)
	}
	wg.Wait()
}

// RoutingRelation describes a routing function for dependency extraction:
// given the node a packet is at, the concrete channel it arrived on (nil at
// injection) and its destination, it returns the indices of the concrete
// channels the packet may take next.
type RoutingRelation func(g *Graph, at topology.NodeID, in *Channel, dst topology.NodeID) []int

// AddRoutingEdges adds a dependency edge a->b whenever some destination
// exists for which a packet that can actually occupy channel a (reachable
// from some injection under the routing function) may request channel b.
// This is the classic Dally construction: for each destination a forward
// closure is computed from the injection candidates of every source, and
// only transitions of reachable packet states become dependencies. All
// cores are used; see AddRoutingEdgesJobs.
func (g *Graph) AddRoutingEdges(route RoutingRelation) int {
	return g.AddRoutingEdgesJobs(route, 0)
}

// AddRoutingEdgesJobs is AddRoutingEdges sharded by destination over a
// bounded worker pool (jobs <= 0 means all cores). Each worker records the
// edges its destinations induce in a dense per-worker bitset; the bitsets
// are then OR-merged row-wise into sorted successor lists, so the
// resulting graph — edge set and adjacency order — is bit-identical for
// every worker count. The route function is called concurrently from
// multiple goroutines when jobs > 1 and must be safe for that (all
// algorithms in this repository are).
func (g *Graph) AddRoutingEdgesJobs(route RoutingRelation, jobs int) int {
	nc := len(g.channels)
	if nc == 0 {
		return 0
	}
	nodes := g.net.Nodes()
	workers := resolveJobs(jobs, nodes)
	words := (nc + 63) / 64
	// seen[w] is worker w's nc x nc edge bitset, rows of `words` words.
	seen := make([][]uint64, workers)
	parallelFor(workers, func(w int) {
		bits := make([]uint64, nc*words)
		seen[w] = bits
		usable := make([]bool, nc)
		queue := make([]int32, 0, nc)
		for dst := topology.NodeID(w); int(dst) < nodes; dst += topology.NodeID(workers) {
			for i := range usable {
				usable[i] = false
			}
			queue = queue[:0]
			// Injection states: the candidates offered to freshly
			// injected packets at every source.
			for src := topology.NodeID(0); int(src) < nodes; src++ {
				if src == dst {
					continue
				}
				for _, bi := range route(g, src, nil, dst) {
					if !usable[bi] {
						usable[bi] = true
						queue = append(queue, int32(bi))
					}
				}
			}
			// Forward closure.
			for len(queue) > 0 {
				ai := queue[len(queue)-1]
				queue = queue[:len(queue)-1]
				ch := g.channels[ai]
				at := ch.Link.To
				if at == dst {
					continue
				}
				row := bits[int(ai)*words:]
				for _, bi := range route(g, at, &ch, dst) {
					row[bi/64] |= 1 << uint(bi%64)
					if !usable[bi] {
						usable[bi] = true
						queue = append(queue, int32(bi))
					}
				}
			}
		}
	})
	// Merge: OR the per-worker rows and expand set bits in ascending
	// order, then land each row's batch in a single sorted merge. Rows are
	// independent, so the merge shards over channels.
	counts := make([]int, workers)
	parallelFor(workers, func(w int) {
		added := 0
		merged := make([]uint64, words)
		var batch []int32
		for a := w; a < nc; a += workers {
			for i := range merged {
				merged[i] = 0
			}
			any := false
			for _, bits := range seen {
				row := bits[a*words : (a+1)*words]
				for i, word := range row {
					merged[i] |= word
					any = any || word != 0
				}
			}
			if !any {
				continue
			}
			batch = batch[:0]
			for i, word := range merged {
				for ; word != 0; word &= word - 1 {
					batch = append(batch, int32(i*64+bits.TrailingZeros64(word)))
				}
			}
			g.adj[a] = mergeSorted(g.adj[a], batch)
			added += len(batch)
		}
		counts[w] = added
	})
	added := 0
	for _, c := range counts {
		added += c
	}
	g.edges += added
	return added
}

// BuildFromTurnSet constructs the dependency graph induced by a turn set on
// a network, using every available core.
func BuildFromTurnSet(net *topology.Network, vcs VCConfig, ts *core.TurnSet) *Graph {
	return BuildFromTurnSetJobs(net, vcs, ts, 0)
}

// BuildFromTurnSetJobs is BuildFromTurnSet over a bounded worker pool
// (jobs <= 0 means all cores). The graph is identical for every jobs
// value.
func BuildFromTurnSetJobs(net *topology.Network, vcs VCConfig, ts *core.TurnSet, jobs int) *Graph {
	g := NewGraph(net, vcs)
	g.AddTurnEdgesJobs(ts, jobs)
	return g
}

// Acyclic reports whether the dependency graph has no cycles.
func (g *Graph) Acyclic() bool { return g.FindCycle() == nil }

// FindCycle returns one dependency cycle as a channel sequence (the last
// element depends on the first), or nil if the graph is acyclic. It uses an
// iterative three-colour DFS, so it scales to large networks without
// recursion-depth limits.
func (g *Graph) FindCycle() []Channel {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make([]uint8, len(g.channels))
	parent := make([]int32, len(g.channels))
	for i := range parent {
		parent[i] = -1
	}
	type frame struct {
		node int32
		next int
	}
	for start := range g.channels {
		if color[start] != white {
			continue
		}
		stack := []frame{{node: int32(start)}}
		color[start] = grey
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.next < len(g.adj[f.node]) {
				succ := g.adj[f.node][f.next]
				f.next++
				switch color[succ] {
				case white:
					color[succ] = grey
					parent[succ] = f.node
					stack = append(stack, frame{node: succ})
				case grey:
					// Found a cycle: walk parents from f.node back
					// to succ.
					var cyc []Channel
					for v := f.node; ; v = parent[v] {
						cyc = append(cyc, g.channels[v])
						if v == succ {
							break
						}
					}
					// Reverse into dependency order.
					for i, j := 0, len(cyc)-1; i < j; i, j = i+1, j-1 {
						cyc[i], cyc[j] = cyc[j], cyc[i]
					}
					return cyc
				}
			} else {
				color[f.node] = black
				stack = stack[:len(stack)-1]
			}
		}
	}
	return nil
}

// SCCs returns the strongly connected components with more than one channel
// or with a self-loop — the deadlock-capable cores of the graph. Components
// are returned as channel index lists. An empty result means acyclic.
func (g *Graph) SCCs() [][]int {
	n := len(g.channels)
	index := make([]int32, n)
	low := make([]int32, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var (
		counter int32
		stack   []int32
		out     [][]int
	)
	type frame struct {
		v    int32
		next int
	}
	// Adjacency rows are sorted ascending, so the self-loop test is a
	// binary search instead of a linear scan.
	selfLoop := func(v int32) bool {
		row := g.adj[v]
		i := sort.Search(len(row), func(k int) bool { return row[k] >= v })
		return i < len(row) && row[i] == v
	}
	for root := 0; root < n; root++ {
		if index[root] != -1 {
			continue
		}
		call := []frame{{v: int32(root)}}
		for len(call) > 0 {
			f := &call[len(call)-1]
			v := f.v
			if f.next == 0 {
				index[v] = counter
				low[v] = counter
				counter++
				stack = append(stack, v)
				onStack[v] = true
			}
			advanced := false
			for f.next < len(g.adj[v]) {
				w := g.adj[v][f.next]
				f.next++
				if index[w] == -1 {
					call = append(call, frame{v: w})
					advanced = true
					break
				}
				if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
			}
			if advanced {
				continue
			}
			if low[v] == index[v] {
				var comp []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, int(w))
					if w == v {
						break
					}
				}
				if len(comp) > 1 || (len(comp) == 1 && selfLoop(v)) {
					out = append(out, comp)
				}
			}
			call = call[:len(call)-1]
			if len(call) > 0 {
				p := call[len(call)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
		}
	}
	return out
}

// FormatCycle renders a dependency cycle for diagnostics.
func FormatCycle(cyc []Channel) string {
	if len(cyc) == 0 {
		return "<acyclic>"
	}
	parts := make([]string, len(cyc))
	for i, c := range cyc {
		parts[i] = c.String()
	}
	return strings.Join(parts, " => ") + " => (repeat)"
}

// Report summarises a verification run.
type Report struct {
	Network  string
	Channels int
	Edges    int
	Acyclic  bool
	// Cycle holds one example dependency cycle when Acyclic is false.
	Cycle []Channel
}

// String renders the report on one line.
func (r Report) String() string {
	status := "ACYCLIC (deadlock-free)"
	if !r.Acyclic {
		status = "CYCLIC: " + FormatCycle(r.Cycle)
	}
	return fmt.Sprintf("%s: %d channels, %d dependencies: %s",
		r.Network, r.Channels, r.Edges, status)
}

// VerifyTurnSet builds the dependency graph of a turn set on a network and
// checks acyclicity, using every available core for the build.
func VerifyTurnSet(net *topology.Network, vcs VCConfig, ts *core.TurnSet) Report {
	return VerifyTurnSetJobs(net, vcs, ts, 0)
}

// VerifyTurnSetJobs is VerifyTurnSet over a bounded worker pool (jobs <= 0
// means all cores); the report is identical for every jobs value. The
// build runs in a pooled Workspace, so repeated verifications on the same
// (network, VC configuration) shape reuse the channel table, adjacency
// rows and acyclicity scratch instead of reallocating them.
//
//ebda:hotpath
func VerifyTurnSetJobs(net *topology.Network, vcs VCConfig, ts *core.TurnSet, jobs int) Report {
	rep, _ := VerifyTurnSetCtx(context.Background(), net, vcs, ts, jobs)
	return rep
}

// VerifyTurnSetCtx is VerifyTurnSetJobs with a deadline: cancellation is
// observed before the build and between Kahn rounds and returns ctx's
// error with a zero Report. A cancelled verification never produces a
// verdict, so the served result is always backed by a completed CDG check;
// the workspace is returned to the pool either way (its buffers are
// re-zeroed on the next use).
func VerifyTurnSetCtx(ctx context.Context, net *topology.Network, vcs VCConfig, ts *core.TurnSet, jobs int) (Report, error) {
	ws := DefaultPool.Get(net, vcs)
	rep, err := ws.VerifyTurnSetCtx(ctx, ts, jobs)
	DefaultPool.Put(ws)
	return rep, err
}

// VerifyChain extracts the full turn set of a chain (Theorems 1-3, U/I
// turns included) and verifies it on the network, deriving the VC
// configuration from the chain's channels.
func VerifyChain(net *topology.Network, chain *core.Chain) Report {
	vcs := VCConfigFor(net.Dims(), chain.Channels())
	return VerifyTurnSet(net, vcs, chain.AllTurns())
}
