// Package cdg builds concrete channel dependency graphs and checks them for
// cycles — Dally's necessary-and-sufficient condition for deadlock freedom
// that the EbDa theory constructs designs against.
//
// A concrete channel is one unidirectional physical link of a topology
// paired with a virtual-channel number. Given a turn set extracted from an
// EbDa partition chain (or any other turn relation), the graph contains a
// dependency edge from channel a (into node v) to channel b (out of node v)
// whenever the relation permits the transition between their channel
// classes. The EbDa theorems claim every chain-derived relation yields an
// acyclic graph; this package verifies that claim mechanically, and exposes
// the same machinery for adversarial designs that should contain cycles.
package cdg

import (
	"fmt"
	"strings"

	"ebda/internal/channel"
	"ebda/internal/core"
	"ebda/internal/topology"
)

// VCConfig gives the number of virtual channels per dimension. A nil or
// short config defaults missing dimensions to 1.
type VCConfig []int

// VCs returns the VC count for a dimension (at least 1).
func (v VCConfig) VCs(d channel.Dim) int {
	if int(d) < len(v) && v[d] > 0 {
		return v[d]
	}
	return 1
}

// Uniform returns a VCConfig with the same VC count in every one of n
// dimensions.
func Uniform(n, vcs int) VCConfig {
	cfg := make(VCConfig, n)
	for i := range cfg {
		cfg[i] = vcs
	}
	return cfg
}

// VCConfigFor derives the VC configuration implied by a set of channel
// classes: each dimension gets as many VCs as the largest VC number
// mentioned for it.
func VCConfigFor(nDims int, classes []channel.Class) VCConfig {
	cfg := make(VCConfig, nDims)
	for i := range cfg {
		cfg[i] = 1
	}
	for _, c := range classes {
		if int(c.Dim) < nDims && c.VC > cfg[c.Dim] {
			cfg[c.Dim] = c.VC
		}
	}
	return cfg
}

// Channel is one concrete channel: a physical link plus a VC number.
type Channel struct {
	Link topology.Link
	VC   int
	// Index is the channel's dense index within its Graph.
	Index int
}

// Class returns the channel's intrinsic class (dimension, sign, VC; no
// parity restriction).
func (c Channel) Class() channel.Class {
	return channel.NewVC(c.Link.Dim, c.Link.Sign, c.VC)
}

// String renders the channel as "(0,1)->(1,1) X1+".
func (c Channel) String() string {
	return fmt.Sprintf("n%d->n%d %s", c.Link.From, c.Link.To, c.Class())
}

// Graph is a channel dependency graph over a concrete network.
type Graph struct {
	net      *topology.Network
	vcs      VCConfig
	channels []Channel
	// byHead[v] lists indices of channels whose Link.To == v.
	byHead [][]int32
	// byTail[v] lists indices of channels whose Link.From == v.
	byTail [][]int32
	adj    [][]int32
	edges  int
}

// NewGraph enumerates the concrete channels of the network under the VC
// configuration; the graph starts with no dependency edges.
func NewGraph(net *topology.Network, vcs VCConfig) *Graph {
	g := &Graph{
		net:    net,
		vcs:    vcs,
		byHead: make([][]int32, net.Nodes()),
		byTail: make([][]int32, net.Nodes()),
	}
	for _, link := range net.Links() {
		for vc := 1; vc <= vcs.VCs(link.Dim); vc++ {
			idx := len(g.channels)
			g.channels = append(g.channels, Channel{Link: link, VC: vc, Index: idx})
			g.byHead[link.To] = append(g.byHead[link.To], int32(idx))
			g.byTail[link.From] = append(g.byTail[link.From], int32(idx))
		}
	}
	g.adj = make([][]int32, len(g.channels))
	return g
}

// Net returns the underlying network.
func (g *Graph) Net() *topology.Network { return g.net }

// VCs returns the VC configuration.
func (g *Graph) VCs() VCConfig { return g.vcs }

// Channels returns all concrete channels. The slice must not be modified.
func (g *Graph) Channels() []Channel { return g.channels }

// NumChannels returns the number of concrete channels.
func (g *Graph) NumChannels() int { return len(g.channels) }

// NumEdges returns the number of dependency edges added so far.
func (g *Graph) NumEdges() int { return g.edges }

// Into returns the channels whose head is node v.
func (g *Graph) Into(v topology.NodeID) []int32 { return g.byHead[v] }

// OutOf returns the channels whose tail is node v.
func (g *Graph) OutOf(v topology.NodeID) []int32 { return g.byTail[v] }

// AddEdge adds a dependency edge between two channel indices.
func (g *Graph) AddEdge(from, to int) {
	g.adj[from] = append(g.adj[from], int32(to))
	g.edges++
}

// Succs returns the dependency successors of a channel index. The slice
// must not be modified.
func (g *Graph) Succs(i int) []int32 { return g.adj[i] }

// HasEdge reports whether the dependency edge from one channel index to
// another exists.
func (g *Graph) HasEdge(from, to int) bool {
	for _, s := range g.adj[from] {
		if s == int32(to) {
			return true
		}
	}
	return false
}

// FindChannel locates the concrete channel leaving a node in the given
// direction on the given VC.
func (g *Graph) FindChannel(from topology.NodeID, d channel.Dim, sign channel.Sign, vc int) (Channel, bool) {
	for _, i := range g.byTail[from] {
		ch := g.channels[i]
		if ch.Link.Dim == d && ch.Link.Sign == sign && ch.VC == vc {
			return ch, true
		}
	}
	return Channel{}, false
}

// matchClasses returns, for a concrete channel, which of the given abstract
// classes it instantiates. Parity restrictions are evaluated against the
// channel's tail-node coordinate in the class's parity dimension (a channel
// does not move in dimensions other than its own, so head and tail agree
// there except on its own-dimension wraparound, which parity classes may
// not reference).
func (g *Graph) matchClasses(ch Channel, classes []channel.Class) []channel.Class {
	var out []channel.Class
	coord := g.net.Coord(ch.Link.From)
	for _, cls := range classes {
		if cls.Dim != ch.Link.Dim || cls.Sign != ch.Link.Sign || cls.VC != ch.VC {
			continue
		}
		if cls.Par != channel.Any && !cls.Par.Matches(coord[cls.PDim]) {
			continue
		}
		out = append(out, cls)
	}
	return out
}

// AddTurnEdges adds a dependency edge for every pair of concrete channels
// (a into v, b out of v) whose classes are related by the turn set. It
// returns the number of edges added.
func (g *Graph) AddTurnEdges(ts *core.TurnSet) int {
	classes := ts.Classes()
	// Precompute class matches per channel.
	matched := make([][]channel.Class, len(g.channels))
	for i, ch := range g.channels {
		matched[i] = g.matchClasses(ch, classes)
	}
	added := 0
	for v := topology.NodeID(0); int(v) < g.net.Nodes(); v++ {
		for _, ai := range g.byHead[v] {
			for _, bi := range g.byTail[v] {
				if g.allowed(matched[ai], matched[bi], ts) {
					g.AddEdge(int(ai), int(bi))
					added++
				}
			}
		}
	}
	return added
}

func (g *Graph) allowed(from, to []channel.Class, ts *core.TurnSet) bool {
	for _, a := range from {
		for _, b := range to {
			if ts.Allows(a, b) {
				return true
			}
		}
	}
	return false
}

// RoutingRelation describes a routing function for dependency extraction:
// given the node a packet is at, the concrete channel it arrived on (nil at
// injection) and its destination, it returns the indices of the concrete
// channels the packet may take next.
type RoutingRelation func(g *Graph, at topology.NodeID, in *Channel, dst topology.NodeID) []int

// AddRoutingEdges adds a dependency edge a->b whenever some destination
// exists for which a packet that can actually occupy channel a (reachable
// from some injection under the routing function) may request channel b.
// This is the classic Dally construction: for each destination a forward
// closure is computed from the injection candidates of every source, and
// only transitions of reachable packet states become dependencies.
func (g *Graph) AddRoutingEdges(route RoutingRelation) int {
	added := 0
	type edge struct{ a, b int32 }
	seen := make(map[edge]bool)
	usable := make([]bool, len(g.channels))
	var queue []int32
	for dst := topology.NodeID(0); int(dst) < g.net.Nodes(); dst++ {
		for i := range usable {
			usable[i] = false
		}
		queue = queue[:0]
		// Injection states: the candidates offered to freshly injected
		// packets at every source.
		for src := topology.NodeID(0); int(src) < g.net.Nodes(); src++ {
			if src == dst {
				continue
			}
			for _, bi := range route(g, src, nil, dst) {
				if !usable[bi] {
					usable[bi] = true
					queue = append(queue, int32(bi))
				}
			}
		}
		// Forward closure.
		for len(queue) > 0 {
			ai := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			ch := g.channels[ai]
			at := ch.Link.To
			if at == dst {
				continue
			}
			for _, bi := range route(g, at, &ch, dst) {
				e := edge{ai, int32(bi)}
				if !seen[e] {
					seen[e] = true
					g.AddEdge(int(ai), bi)
					added++
				}
				if !usable[bi] {
					usable[bi] = true
					queue = append(queue, int32(bi))
				}
			}
		}
	}
	return added
}

// BuildFromTurnSet constructs the dependency graph induced by a turn set on
// a network.
func BuildFromTurnSet(net *topology.Network, vcs VCConfig, ts *core.TurnSet) *Graph {
	g := NewGraph(net, vcs)
	g.AddTurnEdges(ts)
	return g
}

// Acyclic reports whether the dependency graph has no cycles.
func (g *Graph) Acyclic() bool { return g.FindCycle() == nil }

// FindCycle returns one dependency cycle as a channel sequence (the last
// element depends on the first), or nil if the graph is acyclic. It uses an
// iterative three-colour DFS, so it scales to large networks without
// recursion-depth limits.
func (g *Graph) FindCycle() []Channel {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make([]uint8, len(g.channels))
	parent := make([]int32, len(g.channels))
	for i := range parent {
		parent[i] = -1
	}
	type frame struct {
		node int32
		next int
	}
	for start := range g.channels {
		if color[start] != white {
			continue
		}
		stack := []frame{{node: int32(start)}}
		color[start] = grey
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.next < len(g.adj[f.node]) {
				succ := g.adj[f.node][f.next]
				f.next++
				switch color[succ] {
				case white:
					color[succ] = grey
					parent[succ] = f.node
					stack = append(stack, frame{node: succ})
				case grey:
					// Found a cycle: walk parents from f.node back
					// to succ.
					var cyc []Channel
					for v := f.node; ; v = parent[v] {
						cyc = append(cyc, g.channels[v])
						if v == succ {
							break
						}
					}
					// Reverse into dependency order.
					for i, j := 0, len(cyc)-1; i < j; i, j = i+1, j-1 {
						cyc[i], cyc[j] = cyc[j], cyc[i]
					}
					return cyc
				}
			} else {
				color[f.node] = black
				stack = stack[:len(stack)-1]
			}
		}
	}
	return nil
}

// SCCs returns the strongly connected components with more than one channel
// or with a self-loop — the deadlock-capable cores of the graph. Components
// are returned as channel index lists. An empty result means acyclic.
func (g *Graph) SCCs() [][]int {
	n := len(g.channels)
	index := make([]int32, n)
	low := make([]int32, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var (
		counter int32
		stack   []int32
		out     [][]int
	)
	type frame struct {
		v    int32
		next int
	}
	selfLoop := func(v int32) bool {
		for _, w := range g.adj[v] {
			if w == v {
				return true
			}
		}
		return false
	}
	for root := 0; root < n; root++ {
		if index[root] != -1 {
			continue
		}
		call := []frame{{v: int32(root)}}
		for len(call) > 0 {
			f := &call[len(call)-1]
			v := f.v
			if f.next == 0 {
				index[v] = counter
				low[v] = counter
				counter++
				stack = append(stack, v)
				onStack[v] = true
			}
			advanced := false
			for f.next < len(g.adj[v]) {
				w := g.adj[v][f.next]
				f.next++
				if index[w] == -1 {
					call = append(call, frame{v: w})
					advanced = true
					break
				}
				if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
			}
			if advanced {
				continue
			}
			if low[v] == index[v] {
				var comp []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, int(w))
					if w == v {
						break
					}
				}
				if len(comp) > 1 || (len(comp) == 1 && selfLoop(v)) {
					out = append(out, comp)
				}
			}
			call = call[:len(call)-1]
			if len(call) > 0 {
				p := call[len(call)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
		}
	}
	return out
}

// FormatCycle renders a dependency cycle for diagnostics.
func FormatCycle(cyc []Channel) string {
	if len(cyc) == 0 {
		return "<acyclic>"
	}
	parts := make([]string, len(cyc))
	for i, c := range cyc {
		parts[i] = c.String()
	}
	return strings.Join(parts, " => ") + " => (repeat)"
}

// Report summarises a verification run.
type Report struct {
	Network  string
	Channels int
	Edges    int
	Acyclic  bool
	// Cycle holds one example dependency cycle when Acyclic is false.
	Cycle []Channel
}

// String renders the report on one line.
func (r Report) String() string {
	status := "ACYCLIC (deadlock-free)"
	if !r.Acyclic {
		status = "CYCLIC: " + FormatCycle(r.Cycle)
	}
	return fmt.Sprintf("%s: %d channels, %d dependencies: %s",
		r.Network, r.Channels, r.Edges, status)
}

// VerifyTurnSet builds the dependency graph of a turn set on a network and
// checks acyclicity.
func VerifyTurnSet(net *topology.Network, vcs VCConfig, ts *core.TurnSet) Report {
	g := BuildFromTurnSet(net, vcs, ts)
	cyc := g.FindCycle()
	return Report{
		Network:  net.String(),
		Channels: g.NumChannels(),
		Edges:    g.NumEdges(),
		Acyclic:  cyc == nil,
		Cycle:    cyc,
	}
}

// VerifyChain extracts the full turn set of a chain (Theorems 1-3, U/I
// turns included) and verifies it on the network, deriving the VC
// configuration from the chain's channels.
func VerifyChain(net *topology.Network, chain *core.Chain) Report {
	vcs := VCConfigFor(net.Dims(), chain.Channels())
	return VerifyTurnSet(net, vcs, chain.AllTurns())
}
