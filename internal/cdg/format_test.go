package cdg

import (
	"strings"
	"testing"

	"ebda/internal/channel"
	"ebda/internal/topology"
)

// uturnPair returns a graph on a 2x2 mesh plus the indices of the two
// X-dimension channels between nodes 0 and 1 — the smallest possible
// dependency cycle when each U-turn back onto the other is added.
func uturnPair(t *testing.T) (*Graph, int, int) {
	t.Helper()
	g := NewGraph(topology.NewMesh(2, 2), nil)
	east, ok := g.FindChannel(0, channel.X, channel.Plus, 1)
	if !ok {
		t.Fatal("no X+ channel at node 0")
	}
	west, ok := g.FindChannel(1, channel.X, channel.Minus, 1)
	if !ok {
		t.Fatal("no X- channel at node 1")
	}
	return g, east.Index, west.Index
}

func TestFormatCycleAcyclic(t *testing.T) {
	if got := FormatCycle(nil); got != "<acyclic>" {
		t.Errorf("FormatCycle(nil) = %q, want %q", got, "<acyclic>")
	}
	if got := FormatCycle([]Channel{}); got != "<acyclic>" {
		t.Errorf("FormatCycle(empty) = %q, want %q", got, "<acyclic>")
	}
}

func TestFormatCycleTwoChannel(t *testing.T) {
	g, east, west := uturnPair(t)
	g.AddEdge(east, west)
	g.AddEdge(west, east)
	cyc := g.FindCycle()
	if len(cyc) != 2 {
		t.Fatalf("cycle = %v, want the 2-channel U-turn cycle", cyc)
	}
	got := FormatCycle(cyc)
	for _, want := range []string{
		cyc[0].String(), cyc[1].String(), " => ", " => (repeat)",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("FormatCycle = %q, missing %q", got, want)
		}
	}
	if n := strings.Count(got, " => "); n != 2 {
		t.Errorf("FormatCycle = %q: %d separators, want 2", got, n)
	}
}

func TestReportStringAcyclic(t *testing.T) {
	rep := Report{Network: "2x2 mesh", Channels: 8, Edges: 3, Acyclic: true}
	got := rep.String()
	for _, want := range []string{
		"2x2 mesh", "8 channels", "3 dependencies", "ACYCLIC (deadlock-free)",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("Report.String() = %q, missing %q", got, want)
		}
	}
	if strings.Contains(got, "CYCLIC:") {
		t.Errorf("acyclic report rendered as cyclic: %q", got)
	}
}

func TestReportStringCyclic(t *testing.T) {
	g, east, west := uturnPair(t)
	g.AddEdge(east, west)
	g.AddEdge(west, east)
	cyc := g.FindCycle()
	rep := Report{
		Network: "2x2 mesh", Channels: g.NumChannels(), Edges: g.NumEdges(),
		Acyclic: false, Cycle: cyc,
	}
	got := rep.String()
	for _, want := range []string{"CYCLIC: ", FormatCycle(cyc)} {
		if !strings.Contains(got, want) {
			t.Errorf("Report.String() = %q, missing %q", got, want)
		}
	}
}

func TestSCCsSelfLoop(t *testing.T) {
	g, east, west := uturnPair(t)
	// A single-node component exists only with a self-loop.
	g.AddEdge(east, east)
	// An ordinary edge must not create a component on its own.
	g.AddEdge(east, west)
	comps := g.SCCs()
	if len(comps) != 1 {
		t.Fatalf("SCCs = %v, want exactly the self-loop component", comps)
	}
	if len(comps[0]) != 1 || comps[0][0] != east {
		t.Errorf("component = %v, want [%d]", comps[0], east)
	}
}

func TestSCCsMultiComponent(t *testing.T) {
	// Two disjoint 2-cycles on a 3x3 mesh: the X channels between nodes
	// 0<->1 and the Y channels between nodes 0<->3.
	g := NewGraph(topology.NewMesh(3, 3), nil)
	find := func(from topology.NodeID, d channel.Dim, s channel.Sign) int {
		ch, ok := g.FindChannel(from, d, s, 1)
		if !ok {
			t.Fatalf("missing channel at n%d", from)
		}
		return ch.Index
	}
	e, w := find(0, channel.X, channel.Plus), find(1, channel.X, channel.Minus)
	n, s := find(0, channel.Y, channel.Plus), find(3, channel.Y, channel.Minus)
	g.AddEdge(e, w)
	g.AddEdge(w, e)
	g.AddEdge(n, s)
	g.AddEdge(s, n)
	comps := g.SCCs()
	if len(comps) != 2 {
		t.Fatalf("SCCs = %v, want two components", comps)
	}
	members := map[int]bool{}
	for _, comp := range comps {
		if len(comp) != 2 {
			t.Errorf("component %v, want size 2", comp)
		}
		for _, v := range comp {
			members[v] = true
		}
	}
	for _, v := range []int{e, w, n, s} {
		if !members[v] {
			t.Errorf("channel %d missing from components %v", v, comps)
		}
	}
}

func TestSCCsAcyclicEmpty(t *testing.T) {
	g := BuildFromTurnSet(topology.NewMesh(3, 3), nil, xyTurnSet())
	if comps := g.SCCs(); len(comps) != 0 {
		t.Errorf("acyclic graph has components: %v", comps)
	}
}
