package cdg

import (
	"fmt"
	"sort"
	"strings"
)

// TopoOrder returns a topological ordering of the dependency graph — the
// explicit witness of deadlock freedom (a channel numbering under which
// every dependency goes from a lower to a higher number, exactly the
// ordering argument behind Dally's condition and the paper's ascending
// disciplines). It returns an error when the graph is cyclic.
func (g *Graph) TopoOrder() ([]Channel, error) {
	indeg := make([]int, len(g.channels))
	for _, succs := range g.adj {
		for _, s := range succs {
			indeg[s]++
		}
	}
	queue := make([]int32, 0, len(g.channels))
	for i, d := range indeg {
		if d == 0 {
			queue = append(queue, int32(i))
		}
	}
	out := make([]Channel, 0, len(g.channels))
	for len(queue) > 0 {
		// Pop the smallest index for a deterministic ordering.
		best := 0
		for i := 1; i < len(queue); i++ {
			if queue[i] < queue[best] {
				best = i
			}
		}
		v := queue[best]
		queue[best] = queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		out = append(out, g.channels[v])
		for _, s := range g.adj[v] {
			indeg[s]--
			if indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if len(out) != len(g.channels) {
		return nil, fmt.Errorf("cdg: graph is cyclic (%d of %d channels ordered)",
			len(out), len(g.channels))
	}
	return out, nil
}

// Certificate is a machine-checkable proof of deadlock freedom: a
// permutation of the graph's channel indices such that every dependency
// edge goes forward. Anyone holding the graph can re-validate the
// certificate with CheckCertificate without trusting its producer.
type Certificate struct {
	// Order lists every channel index exactly once, in ascending
	// dependency order.
	Order []int
}

// Certificate produces a deadlock-freedom certificate, or an error when
// the graph is cyclic.
func (g *Graph) Certificate() (*Certificate, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	c := &Certificate{Order: make([]int, len(order))}
	for i, ch := range order {
		c.Order[i] = ch.Index
	}
	return c, nil
}

// CheckCertificate independently validates a certificate against the
// graph: the order must be a permutation of all channels and every
// dependency edge must go from an earlier to a later position.
func (g *Graph) CheckCertificate(c *Certificate) error {
	if c == nil || len(c.Order) != len(g.channels) {
		return fmt.Errorf("cdg: certificate covers %d of %d channels",
			len(c.Order), len(g.channels))
	}
	pos := make([]int, len(g.channels))
	for i := range pos {
		pos[i] = -1
	}
	for i, idx := range c.Order {
		if idx < 0 || idx >= len(g.channels) {
			return fmt.Errorf("cdg: certificate index %d out of range", idx)
		}
		if pos[idx] != -1 {
			return fmt.Errorf("cdg: certificate repeats channel %d", idx)
		}
		pos[idx] = i
	}
	for a, succs := range g.adj {
		for _, b := range succs {
			if pos[a] >= pos[b] {
				return fmt.Errorf("cdg: dependency %s => %s violates the certificate order",
					g.channels[a], g.channels[b])
			}
		}
	}
	return nil
}

// DOT renders the dependency graph in Graphviz format. Channels are
// grouped by their class for readability; when the graph contains cycles
// the channels of the deadlock-capable strongly connected components are
// highlighted.
func (g *Graph) DOT(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", name)
	b.WriteString("  rankdir=LR;\n  node [shape=box, fontsize=9];\n")
	inSCC := make(map[int]bool)
	for _, comp := range g.SCCs() {
		for _, v := range comp {
			inSCC[v] = true
		}
	}
	// Stable node order.
	idx := make([]int, len(g.channels))
	for i := range idx {
		idx[i] = i
	}
	sort.Ints(idx)
	for _, i := range idx {
		ch := g.channels[i]
		attrs := ""
		if inSCC[i] {
			attrs = ", style=filled, fillcolor=\"#ffcccc\""
		}
		fmt.Fprintf(&b, "  c%d [label=\"n%d→n%d\\n%s\"%s];\n",
			i, ch.Link.From, ch.Link.To, ch.Class(), attrs)
	}
	for _, i := range idx {
		for _, s := range g.adj[i] {
			attrs := ""
			if inSCC[i] && inSCC[int(s)] {
				attrs = " [color=red]"
			}
			fmt.Fprintf(&b, "  c%d -> c%d%s;\n", i, s, attrs)
		}
	}
	b.WriteString("}\n")
	return b.String()
}
