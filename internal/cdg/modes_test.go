package cdg

import (
	"context"
	"reflect"
	"testing"
)

// modeGraph builds an EdgeSet from explicit edges.
func modeGraph(n int, edges [][2]int) *EdgeSet {
	e := NewEdgeSet(n)
	for _, ed := range edges {
		e.AddEdge(ed[0], ed[1])
	}
	return e
}

// escapeOKGraph is the canonical Duato exerciser: inputs 0,1 feed an
// adaptive cycle 2<->3, escape channel 4 drains both to output 5. The
// full graph is cyclic, liveness fails, but the escape set {4} verifies
// and a valid subrelation exists.
func escapeOKGraph() (*EdgeSet, []int, []int) {
	e := modeGraph(6, [][2]int{{0, 2}, {1, 3}, {2, 3}, {3, 2}, {2, 4}, {3, 4}, {4, 5}})
	return e, []int{0, 1}, []int{5}
}

func TestModeLoop(t *testing.T) {
	e := modeGraph(4, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	rep := VerifyMode(e, ModeLoop, []int{0}, []int{3}, nil)
	if !rep.OK || rep.Reason != "" || rep.Cycle != nil {
		t.Fatalf("acyclic graph: %+v", rep)
	}
	if rep.Nodes != 4 || rep.Edges != 3 {
		t.Fatalf("counts: %+v", rep)
	}

	ring := modeGraph(3, [][2]int{{0, 1}, {1, 2}, {2, 0}})
	rep = VerifyMode(ring, ModeLoop, nil, nil, nil)
	if rep.OK || rep.Reason != ReasonCycle {
		t.Fatalf("ring: %+v", rep)
	}
	checkCycle(t, ring, rep.Cycle)
	// Loop mode must agree with the bare edge-set verdict.
	if er := VerifyEdgeSet(ring); er.Acyclic {
		t.Fatal("VerifyEdgeSet disagrees with loop mode")
	}
}

func TestModeLivenessVerified(t *testing.T) {
	// 0,1 -> 2 -> 3(out); all paths end at the output.
	e := modeGraph(4, [][2]int{{0, 2}, {1, 2}, {2, 3}})
	rep := VerifyMode(e, ModeLiveness, []int{0, 1}, []int{3}, nil)
	if !rep.OK {
		t.Fatalf("live graph rejected: %+v", rep)
	}
}

func TestModeLivenessCycle(t *testing.T) {
	e, in, out := escapeOKGraph()
	rep := VerifyMode(e, ModeLiveness, in, out, nil)
	if rep.OK || rep.Reason != ReasonCycle {
		t.Fatalf("cyclic region accepted: %+v", rep)
	}
	checkCycle(t, e, rep.Cycle)
	checkPath(t, e, rep.Path, in)
	// The path must land on the cycle's lowest channel.
	want := rep.Cycle[0]
	for _, v := range rep.Cycle {
		if v < want {
			want = v
		}
	}
	if rep.Path[len(rep.Path)-1] != want {
		t.Fatalf("path %v does not end at lowest cycle channel %d", rep.Path, want)
	}
}

func TestModeLivenessDeadEnd(t *testing.T) {
	// 0 -> 1 -> 2 (sink, not an output); 3 is the declared output.
	e := modeGraph(4, [][2]int{{0, 1}, {1, 2}})
	rep := VerifyMode(e, ModeLiveness, []int{0}, []int{3}, nil)
	if rep.OK || rep.Reason != ReasonDeadEnd {
		t.Fatalf("dead end accepted: %+v", rep)
	}
	checkPath(t, e, rep.Path, []int{0})
	if got := rep.Path[len(rep.Path)-1]; got != 2 {
		t.Fatalf("path ends at %d, want dead end 2", got)
	}
	// Loop mode passes the same graph: the dead end is not a cycle.
	if lr := VerifyMode(e, ModeLoop, []int{0}, []int{3}, nil); !lr.OK {
		t.Fatalf("loop mode rejected acyclic graph: %+v", lr)
	}
}

func TestModeLivenessIgnoresUnreachableCycle(t *testing.T) {
	// The cycle 3<->4 is not reachable from the input, so liveness
	// holds even though loop mode fails.
	e := modeGraph(5, [][2]int{{0, 1}, {3, 4}, {4, 3}})
	in, out := []int{0}, []int{1}
	if rep := VerifyMode(e, ModeLiveness, in, out, nil); !rep.OK {
		t.Fatalf("liveness rejected unreachable cycle: %+v", rep)
	}
	if rep := VerifyMode(e, ModeLoop, in, out, nil); rep.OK {
		t.Fatal("loop mode missed the cycle")
	}
}

func TestModeEscapeVerified(t *testing.T) {
	e, in, out := escapeOKGraph()
	rep := VerifyMode(e, ModeEscape, in, out, []int{4})
	if !rep.OK {
		t.Fatalf("valid escape set rejected: %+v", rep)
	}
	// Loop mode fails the same graph: only the escape subrelation is
	// acyclic — exactly Duato's contrast.
	if lr := VerifyMode(e, ModeLoop, in, out, nil); lr.OK {
		t.Fatal("loop mode accepted the cyclic full graph")
	}
}

func TestModeEscapeCycle(t *testing.T) {
	// Escape channels 2,3 form a cycle between themselves.
	e, in, out := escapeOKGraph()
	rep := VerifyMode(e, ModeEscape, in, out, []int{2, 3})
	if rep.OK || rep.Reason != ReasonEscapeCycle {
		t.Fatalf("cyclic escape set accepted: %+v", rep)
	}
	checkCycle(t, e, rep.Cycle)
}

func TestModeEscapeStranded(t *testing.T) {
	// 4 is acyclic as a singleton but cannot drain to the output within
	// the escape subrelation (its only path 4->5 exists... remove it).
	e := modeGraph(6, [][2]int{{0, 2}, {1, 3}, {2, 3}, {3, 2}, {2, 4}, {3, 4}})
	rep := VerifyMode(e, ModeEscape, []int{0, 1}, []int{5}, []int{4})
	if rep.OK || rep.Reason != ReasonEscapeStranded {
		t.Fatalf("stranded escape accepted: %+v", rep)
	}
	if !reflect.DeepEqual(rep.Path, []int{4}) {
		t.Fatalf("witness: %v", rep.Path)
	}
}

func TestModeEscapeUnreached(t *testing.T) {
	// Channels 1 and 4 cycle between themselves with no path to the
	// escape set or an output.
	e := modeGraph(5, [][2]int{{0, 2}, {2, 3}, {1, 4}, {4, 1}})
	rep := VerifyMode(e, ModeEscape, []int{0}, []int{3}, []int{2})
	if rep.OK || rep.Reason != ReasonNoEscape {
		t.Fatalf("unreachable channel accepted: %+v", rep)
	}
	if !reflect.DeepEqual(rep.Path, []int{1}) {
		t.Fatalf("witness: %v", rep.Path)
	}
}

func TestModeIsolatedChannelsVacuous(t *testing.T) {
	// Channel 1 has no edges at all: constellation per-output CDGs leave
	// most ids out of the relation, so escape and subrel ignore it.
	e := modeGraph(4, [][2]int{{0, 2}, {2, 3}})
	if rep := VerifyMode(e, ModeEscape, []int{0}, []int{3}, []int{2}); !rep.OK {
		t.Fatalf("isolated channel broke escape: %+v", rep)
	}
	if rep := VerifyMode(e, ModeSubrel, []int{0}, []int{3}, nil); !rep.OK {
		t.Fatalf("isolated channel broke subrel: %+v", rep)
	}
	// Liveness still fails if an input is routed into an isolated
	// channel-free sink... here 1 is unreachable, so liveness holds.
	if rep := VerifyMode(e, ModeLiveness, []int{0}, []int{3}, nil); !rep.OK {
		t.Fatalf("liveness: %+v", rep)
	}
}

func TestModeEscapeOutputMember(t *testing.T) {
	// Listing an output as an escape channel is harmless: it is
	// absorbing either way.
	e, in, out := escapeOKGraph()
	rep := VerifyMode(e, ModeEscape, in, out, []int{4, 5})
	if !rep.OK {
		t.Fatalf("escape set containing an output rejected: %+v", rep)
	}
}

func TestModeSubrelFound(t *testing.T) {
	e, in, out := escapeOKGraph()
	rep := VerifyMode(e, ModeSubrel, in, out, nil)
	if !rep.OK {
		t.Fatalf("subrelation not found: %+v", rep)
	}
	// One outgoing edge per non-output channel, every edge from the
	// original graph, and the subrelation itself must be acyclic.
	sub := NewEdgeSet(e.NumNodes())
	seen := make(map[int]bool)
	for _, ed := range rep.Subrelation {
		if !e.HasEdge(ed[0], ed[1]) {
			t.Fatalf("subrelation edge %v not in the graph", ed)
		}
		if seen[ed[0]] {
			t.Fatalf("channel %d has two subrelation edges", ed[0])
		}
		seen[ed[0]] = true
		sub.AddEdge(ed[0], ed[1])
	}
	if len(seen) != e.NumNodes()-len(out) {
		t.Fatalf("subrelation covers %d channels, want %d", len(seen), e.NumNodes()-len(out))
	}
	if sr := VerifyEdgeSet(sub); !sr.Acyclic {
		t.Fatalf("subrelation is cyclic: %v", sr)
	}
	// The found subrelation's senders must also pass escape-mode
	// verification as an escape set... the non-output channels all
	// drain, so the full channel set is a valid escape set here only if
	// induced acyclicity holds; instead pin the defining property:
	// every maximal subrelation path ends at an output.
	for _, ed := range rep.Subrelation {
		v := ed[1]
		for hops := 0; ; hops++ {
			if hops > e.NumNodes() {
				t.Fatalf("subrelation path from %v does not terminate", ed)
			}
			isOutV := false
			for _, o := range out {
				if v == o {
					isOutV = true
				}
			}
			if isOutV {
				break
			}
			succs := sub.Succs(v)
			if len(succs) != 1 {
				t.Fatalf("subrelation channel %d has %d successors", v, len(succs))
			}
			v = int(succs[0])
		}
	}
}

func TestModeSubrelNone(t *testing.T) {
	// 1,2,3 cycle with no route to the output: no subrelation exists.
	e := modeGraph(5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 1}})
	rep := VerifyMode(e, ModeSubrel, []int{0}, []int{4}, nil)
	if rep.OK || rep.Reason != ReasonNoSubrel {
		t.Fatalf("impossible subrelation reported: %+v", rep)
	}
	if len(rep.Path) != 1 || rep.Path[0] != 0 {
		t.Fatalf("witness channel: %v (want lowest stranded 0)", rep.Path)
	}
	checkCycle(t, e, rep.Cycle)
}

func TestModeJobsInvariance(t *testing.T) {
	// A denser graph: two meshes of channels with a cyclic core.
	n := 64
	e := NewEdgeSet(n)
	for i := 0; i < n-2; i++ {
		e.AddEdge(i, (i*7+3)%(n-1))
		e.AddEdge(i, (i+1)%(n-1))
	}
	in, out := []int{0, 1, 2}, []int{n - 1, n - 2}
	e.AddEdge(5, n-1)
	for _, mode := range []GraphMode{ModeLoop, ModeLiveness, ModeEscape, ModeSubrel} {
		base := VerifyModeJobs(e, mode, in, out, []int{5}, 1)
		for jobs := 2; jobs <= 8; jobs *= 2 {
			got := VerifyModeJobs(e, mode, in, out, []int{5}, jobs)
			if !reflect.DeepEqual(base, got) {
				t.Fatalf("%s: jobs=1 %+v != jobs=%d %+v", mode, base, jobs, got)
			}
		}
	}
}

// TestModeKeyNoCollisions pins the acceptance criterion: mode-aware
// cache keys never collide across modes for the same graph, and none
// collides with the bare EdgeKey.
func TestModeKeyNoCollisions(t *testing.T) {
	e, in, out := escapeOKGraph()
	esc := []int{4}
	modes := []GraphMode{ModeLoop, ModeLiveness, ModeEscape, ModeSubrel}
	keys := make(map[uint64]string)
	ek, _ := EdgeKey(e)
	keys[ek] = "EdgeKey"
	for _, m := range modes {
		k, _ := ModeKey(e, m, in, out, esc)
		if prev, dup := keys[k]; dup {
			t.Fatalf("mode %s key collides with %s", m, prev)
		}
		keys[k] = m.String()
	}
	// Different annotation sets are different questions.
	k1, _ := ModeKey(e, ModeLiveness, in, out, nil)
	k2, _ := ModeKey(e, ModeLiveness, []int{0}, out, nil)
	if k1 == k2 {
		t.Fatal("input set not part of the key")
	}
	k3, _ := ModeKey(e, ModeEscape, in, out, []int{4})
	k4, _ := ModeKey(e, ModeEscape, in, out, []int{2})
	if k3 == k4 {
		t.Fatal("escape set not part of the escape-mode key")
	}
	// ...but the escape set is irrelevant to non-escape modes.
	k5, _ := ModeKey(e, ModeSubrel, in, out, []int{4})
	k6, _ := ModeKey(e, ModeSubrel, in, out, nil)
	if k5 != k6 {
		t.Fatal("escape set leaked into the subrel key")
	}
	// Order and duplicates do not change the question.
	k7, c7 := ModeKey(e, ModeLiveness, []int{1, 0, 1}, out, nil)
	k8, c8 := ModeKey(e, ModeLiveness, in, out, nil)
	if k7 != k8 || c7 != c8 {
		t.Fatal("set canonicalisation missing from ModeKey")
	}
}

func TestModeCache(t *testing.T) {
	e, in, out := escapeOKGraph()
	c := &ModeCache{}
	if _, ok := c.Lookup(e, ModeLiveness, in, out, nil); ok {
		t.Fatal("hit on empty cache")
	}
	want := VerifyMode(e, ModeLiveness, in, out, nil)
	got := c.VerifyModeJobs(e, ModeLiveness, in, out, nil, 0)
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("cached %+v != direct %+v", got, want)
	}
	if rep, ok := c.Lookup(e, ModeLiveness, in, out, nil); !ok || !reflect.DeepEqual(rep, want) {
		t.Fatalf("lookup after fill: ok=%v %+v", ok, rep)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats: %+v", st)
	}
	// A second compute is a hit.
	if got := c.VerifyModeJobs(e, ModeLiveness, in, out, nil, 0); !reflect.DeepEqual(want, got) {
		t.Fatalf("second verify: %+v", got)
	}
	if st := c.Stats(); st.Hits != 2 {
		t.Fatalf("stats after repeat: %+v", st)
	}
	// Different mode, same graph: distinct entry.
	c.VerifyModeJobs(e, ModeLoop, in, out, nil, 0)
	if st := c.Stats(); st.Entries != 2 {
		t.Fatalf("modes share an entry: %+v", st)
	}
	c.Reset()
	if st := c.Stats(); st.Entries != 0 || st.Hits != 0 {
		t.Fatalf("reset: %+v", st)
	}
}

func TestModeCacheCancelledNotCached(t *testing.T) {
	e, in, out := escapeOKGraph()
	c := &ModeCache{}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.VerifyModeCtx(ctx, e, ModeLiveness, in, out, nil, 1); err == nil {
		t.Fatal("cancelled verification returned no error")
	}
	if st := c.Stats(); st.Entries != 0 {
		t.Fatalf("cancelled verdict cached: %+v", st)
	}
	// The same question answers fine afterwards.
	rep, err := c.VerifyModeCtx(context.Background(), e, ModeLiveness, in, out, nil, 1)
	if err != nil || rep.Mode != ModeLiveness {
		t.Fatalf("post-cancel verify: %+v err=%v", rep, err)
	}
}

func TestVerifyModeCachedEquivalence(t *testing.T) {
	e, in, out := escapeOKGraph()
	for _, mode := range []GraphMode{ModeLoop, ModeLiveness, ModeEscape, ModeSubrel} {
		direct := VerifyMode(e, mode, in, out, []int{4})
		cached := VerifyModeCached(e, mode, in, out, []int{4})
		if !reflect.DeepEqual(direct, cached) {
			t.Fatalf("%s: cached %+v != direct %+v", mode, cached, direct)
		}
	}
}

func TestModeReportString(t *testing.T) {
	e, in, out := escapeOKGraph()
	ok := VerifyMode(e, ModeEscape, in, out, []int{4})
	if s := ok.String(); s != "escape: 6 channels, 7 edges: VERIFIED" {
		t.Fatalf("ok render: %q", s)
	}
	bad := VerifyMode(e, ModeLiveness, in, out, nil)
	s := bad.String()
	if want := "liveness: 6 channels, 7 edges: VIOLATED (cycle)"; len(s) < len(want) || s[:len(want)] != want {
		t.Fatalf("violation render: %q", s)
	}
	sub := VerifyMode(e, ModeSubrel, in, out, nil)
	if s := sub.String(); s != "subrel: 6 channels, 7 edges: VERIFIED (subrelation: 5 edges)" {
		t.Fatalf("subrel render: %q", s)
	}
}

func TestParseGraphMode(t *testing.T) {
	for _, m := range []GraphMode{ModeLoop, ModeLiveness, ModeEscape, ModeSubrel} {
		got, err := ParseGraphMode(m.String())
		if err != nil || got != m {
			t.Fatalf("round trip %s: %v %v", m, got, err)
		}
	}
	if _, err := ParseGraphMode("bogus"); err == nil {
		t.Fatal("bogus mode accepted")
	}
}

// checkCycle asserts the witness is a real dependency cycle of e.
func checkCycle(t *testing.T, e *EdgeSet, cyc []int) {
	t.Helper()
	if len(cyc) == 0 {
		t.Fatal("empty cycle witness")
	}
	for i, v := range cyc {
		next := cyc[(i+1)%len(cyc)]
		if !e.HasEdge(v, next) {
			t.Fatalf("cycle %v: missing edge %d->%d", cyc, v, next)
		}
	}
}

// checkPath asserts the witness path starts at an input and follows
// real edges.
func checkPath(t *testing.T, e *EdgeSet, path []int, inputs []int) {
	t.Helper()
	if len(path) == 0 {
		t.Fatal("empty path witness")
	}
	isIn := false
	for _, v := range inputs {
		if v == path[0] {
			isIn = true
		}
	}
	if !isIn {
		t.Fatalf("path %v does not start at an input", path)
	}
	for i := 0; i+1 < len(path); i++ {
		if !e.HasEdge(path[i], path[i+1]) {
			t.Fatalf("path %v: missing edge %d->%d", path, path[i], path[i+1])
		}
	}
}
