package cdg

import (
	"reflect"
	"testing"

	"ebda/internal/core"
	"ebda/internal/topology"
)

// freshReport is the unpooled reference: a brand-new graph and workspace
// state per call, so reuse bugs in the pooled path cannot hide.
func freshReport(net *topology.Network, vcs VCConfig, ts *core.TurnSet, jobs int) Report {
	return NewWorkspace(net, vcs).VerifyTurnSetJobs(ts, jobs)
}

func TestWorkspaceReuseMatchesFresh(t *testing.T) {
	net := topology.NewMesh(5, 4)
	ws := NewWorkspace(net, nil)
	// Alternate acyclic and cyclic turn sets through one workspace; every
	// result must equal a fresh single-use verification, including the
	// extracted cycle.
	sets := []*core.TurnSet{
		xyTurnSet(), allTurnSet(), xyTurnSet(), parityTurnSet(), allTurnSet(),
	}
	for i, ts := range sets {
		got := ws.VerifyTurnSetJobs(ts, 0)
		want := freshReport(net, nil, ts, 1)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("reuse %d: report %+v, fresh %+v", i, got, want)
		}
	}
}

func TestWorkspaceJobsInvariant(t *testing.T) {
	net := topology.NewMesh(5, 5)
	for name, ts := range map[string]*core.TurnSet{
		"acyclic": xyTurnSet(), "cyclic": allTurnSet(),
	} {
		want := freshReport(net, nil, ts, 1)
		for _, jobs := range []int{2, 3, 8} {
			got := freshReport(net, nil, ts, jobs)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s jobs=%d: %+v, want %+v", name, jobs, got, want)
			}
		}
	}
}

func TestWorkspaceVerifyRelation(t *testing.T) {
	net := topology.NewMesh(4, 4)
	ws := NewWorkspace(net, nil)
	rep := ws.VerifyRelationJobs(xyRoute, "4x4 mesh / dor", 0)
	if !rep.Acyclic {
		t.Fatalf("dimension-order routing must be acyclic: %s", rep)
	}
	if rep.Network != "4x4 mesh / dor" {
		t.Errorf("Network = %q, want the caller-supplied name", rep.Network)
	}
	// Reference: unpooled construction.
	g := NewGraph(net, nil)
	g.AddRoutingEdgesJobs(xyRoute, 1)
	if rep.Edges != g.NumEdges() {
		t.Errorf("edges = %d, want %d", rep.Edges, g.NumEdges())
	}
	// Reuse after a routing build must still be clean.
	again := ws.VerifyTurnSetJobs(xyTurnSet(), 0)
	want := freshReport(net, nil, xyTurnSet(), 1)
	if !reflect.DeepEqual(again, want) {
		t.Errorf("turn-set verify after routing verify: %+v, want %+v", again, want)
	}
}

func TestWorkspacePoolReuse(t *testing.T) {
	pool := &WorkspacePool{}
	net := topology.NewMesh(3, 3)
	ws := pool.Get(net, nil)
	pool.Put(ws)
	if got := pool.Get(net, nil); got != ws {
		t.Error("pool did not reuse the returned workspace")
	}
	// Equivalent VC configurations share a shape.
	pool.Put(ws)
	if got := pool.Get(net, VCConfig{1, 1}); got != ws {
		t.Error("nil and explicit all-ones VCConfig must share workspaces")
	}
	// Different VC configurations must not.
	pool.Put(ws)
	if got := pool.Get(net, Uniform(2, 2)); got == ws {
		t.Error("different VC configuration reused an incompatible workspace")
	}
	// Different network instances are distinct shapes (identity keyed).
	if got := pool.Get(topology.NewMesh(3, 3), nil); got == ws {
		t.Error("distinct network instance reused another network's workspace")
	}
}

func TestAddEdgesBatch(t *testing.T) {
	net := topology.NewMesh(3, 3)
	a := NewGraph(net, nil)
	b := NewGraph(net, nil)
	// Batched insertion must match the incremental path for unsorted
	// input, interleaved batches, and merges below the current maximum.
	batches := [][]int32{
		{9, 2, 7},
		{5},
		{4, 3, 11},
		{1, 10},
	}
	for _, batch := range batches {
		for _, v := range batch {
			a.AddEdge(5, int(v))
		}
		b.AddEdges(5, append([]int32(nil), batch...)...)
	}
	b.AddEdges(7) // empty batch is a no-op
	if !reflect.DeepEqual(a.Succs(5), b.Succs(5)) {
		t.Errorf("AddEdges row = %v, AddEdge row = %v", b.Succs(5), a.Succs(5))
	}
	if a.NumEdges() != b.NumEdges() {
		t.Errorf("edge counts diverge: %d vs %d", a.NumEdges(), b.NumEdges())
	}
}

func TestMergeSorted(t *testing.T) {
	cases := []struct {
		row, batch, want []int32
	}{
		{nil, nil, nil},
		{nil, []int32{3, 5}, []int32{3, 5}},
		{[]int32{1, 4}, nil, []int32{1, 4}},
		{[]int32{1, 4}, []int32{4, 9}, []int32{1, 4, 4, 9}},
		{[]int32{5, 8}, []int32{1, 6, 9}, []int32{1, 5, 6, 8, 9}},
		{[]int32{2, 3, 7}, []int32{1, 1, 8}, []int32{1, 1, 2, 3, 7, 8}},
	}
	for _, tc := range cases {
		row := append([]int32(nil), tc.row...)
		got := mergeSorted(row, tc.batch)
		if len(got) == 0 {
			got = nil
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("mergeSorted(%v, %v) = %v, want %v", tc.row, tc.batch, got, tc.want)
		}
	}
}
