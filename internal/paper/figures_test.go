package paper

import (
	"sort"
	"strings"
	"testing"

	"ebda/internal/cdg"
	"ebda/internal/core"
	"ebda/internal/topology"
)

// turnsByPlain returns the set of PlainString renderings of a turn list.
func turnsByPlain(ts []core.Turn) map[string]bool {
	out := map[string]bool{}
	for _, t := range ts {
		out[t.PlainString()] = true
	}
	return out
}

func turnsByShort(ts []core.Turn) map[string]bool {
	out := map[string]bool{}
	for _, t := range ts {
		out[t.String()] = true
	}
	return out
}

func assertSameTurns(t *testing.T, label string, got map[string]bool, want string) {
	t.Helper()
	wantSet := map[string]bool{}
	for _, w := range strings.Fields(want) {
		wantSet[w] = true
	}
	for w := range wantSet {
		if !got[w] {
			t.Errorf("%s: missing turn %s", label, w)
		}
	}
	for g := range got {
		if !wantSet[g] {
			t.Errorf("%s: extra turn %s", label, g)
		}
	}
}

func TestFigure3(t *testing.T) {
	ts := Figure3().Turns90()
	assertSameTurns(t, "Figure 3", turnsByPlain(ts.Turns()), Figure3Turns)
	rep := cdg.VerifyChain(topology.NewMesh(8, 8), Figure3())
	if !rep.Acyclic {
		t.Errorf("Figure 3 design must be acyclic: %s", rep)
	}
}

func TestFigure4(t *testing.T) {
	ts := Figure4().AllTurns()
	n90, nU, nI := ts.Counts()
	if n90 != 0 || nU != 9 || nI != 6 {
		t.Errorf("Figure 4 counts = %d/%d/%d, want 0/9/6", n90, nU, nI)
	}
	rep := cdg.VerifyChain(topology.NewMesh(4, 4), Figure4())
	if !rep.Acyclic {
		t.Errorf("Figure 4 design must be acyclic: %s", rep)
	}
}

func TestFigure5(t *testing.T) {
	c := Figure5()
	assertSameTurns(t, "Figure 5", turnsByPlain(c.Turns90().Turns()), Figure5Turns90)
	all := c.AllTurns()
	_, nU, nI := all.Counts()
	// One X U-turn (Theorem 2) plus the S->N transition U-turn (Theorem 3).
	if nU != 2 || nI != 0 {
		t.Errorf("Figure 5 U/I = %d/%d, want 2/0", nU, nI)
	}
	rep := cdg.VerifyChain(topology.NewMesh(8, 8), c)
	if !rep.Acyclic {
		t.Errorf("Figure 5 design must be acyclic: %s", rep)
	}
}

func TestFigure6TurnModels(t *testing.T) {
	chains := Figure6()
	// P1 = XY: exactly the four XY turns.
	assertSameTurns(t, "Figure 6 P1", turnsByPlain(chains[0].Chain.Turns90().Turns()), "EN ES WN WS")
	// P3 = West-First: all turns except NW and SW (west must come first).
	p3 := turnsByPlain(chains[2].Chain.Turns90().Turns())
	assertSameTurns(t, "Figure 6 P3", p3, "EN NE ES SE WN WS")
	// P4 = Negative-First: prohibited turns are the positive-to-negative
	// ones, ES and NW.
	p4 := turnsByPlain(chains[3].Chain.Turns90().Turns())
	assertSameTurns(t, "Figure 6 P4", p4, "WN WS SE SW NE EN")
	// Every strategy verifies acyclic with full U/I turns.
	mesh := topology.NewMesh(6, 6)
	for _, nc := range chains {
		rep := cdg.VerifyChain(mesh, nc.Chain)
		if !rep.Acyclic {
			t.Errorf("%s: %s", nc.Name, rep)
		}
	}
}

func TestFigure6P2PartialAdaptiveness(t *testing.T) {
	// P2 gives full adaptiveness in the NE region, deterministic
	// elsewhere.
	c := core.MustParseChain("PA[Y-] -> PB[X-] -> PC[Y+ X+]")
	net := topology.NewMesh(5, 5)
	ts := c.AllTurns()
	// NE: (0,0) -> (3,3): all 20 minimal paths usable.
	u, total, err := cdg.UsableMinimalPaths(net, nil, ts, net.ID(topology.Coord{0, 0}), net.ID(topology.Coord{3, 3}))
	if err != nil {
		t.Fatal(err)
	}
	if total != 20 || u != 20 {
		t.Errorf("NE region: %d/%d, want 20/20", u, total)
	}
	// SW: (3,3) -> (0,0): deterministic (1 path).
	u, total, err = cdg.UsableMinimalPaths(net, nil, ts, net.ID(topology.Coord{3, 3}), net.ID(topology.Coord{0, 0}))
	if err != nil {
		t.Fatal(err)
	}
	if total != 20 || u != 1 {
		t.Errorf("SW region: %d/%d, want 1/20", u, total)
	}
}

func TestFigure6P5VCsDoNotAddAdaptiveness(t *testing.T) {
	// Figure 6(e): adding Y VCs inside PB leaves minimal-path
	// adaptiveness identical to P3 (west-first).
	net := topology.NewMesh(5, 5)
	p3 := core.MustParseChain("PA[X-] -> PB[X+ Y+ Y-]")
	p5 := core.MustParseChain("PA[X-] -> PB[X+ Y1+ Y1- Y2+ Y2-]")
	a3, err := cdg.Adaptiveness(net, nil, p3.AllTurns())
	if err != nil {
		t.Fatal(err)
	}
	a5, err := cdg.Adaptiveness(net, cdg.VCConfig{1, 2}, p5.AllTurns())
	if err != nil {
		t.Fatal(err)
	}
	if a3.UsableSum != a5.UsableSum || a3.MinimalSum != a5.MinimalSum {
		t.Errorf("P3 %s vs P5 %s: adaptiveness should be identical", a3, a5)
	}
	// But P5 has strictly more U/I turns.
	_, u3, i3 := p3.AllTurns().Counts()
	_, u5, i5 := p5.AllTurns().Counts()
	if u5+i5 <= u3+i3 {
		t.Errorf("P5 should have more U/I turns: %d+%d vs %d+%d", u5, i5, u3, i3)
	}
}

func TestFigure7(t *testing.T) {
	net := topology.NewMesh(4, 4)
	for _, tc := range []struct {
		name  string
		chain *core.Chain
		chans int
	}{
		{"Figure7(a) four partitions", Figure7FourPartitions(), 8},
		{"Figure7(b) P1/DyXY", Figure7P1(), 6},
		{"Figure7(c) P2", Figure7P2(), 6},
	} {
		if got := len(tc.chain.Channels()); got != tc.chans {
			t.Errorf("%s: %d channels, want %d", tc.name, got, tc.chans)
		}
		rep := cdg.VerifyChain(net, tc.chain)
		if !rep.Acyclic {
			t.Errorf("%s: %s", tc.name, rep)
			continue
		}
		vcs := cdg.VCConfigFor(2, tc.chain.Channels())
		ad, err := cdg.Adaptiveness(net, vcs, tc.chain.AllTurns())
		if err != nil {
			t.Fatal(err)
		}
		if !ad.FullyAdaptive() {
			t.Errorf("%s must be fully adaptive: %s", tc.name, ad)
		}
	}
}

func TestFigure8BoxesExact(t *testing.T) {
	chain := Figure8()
	parts := chain.Partitions()
	partByName := map[string]*core.Partition{}
	for _, p := range parts {
		partByName[p.Name()] = p
	}
	for _, box := range Figure8Boxes() {
		var ts *core.TurnSet
		switch {
		case strings.Contains(box.Label, "->"):
			// Transition box: extract only the Theorem-3 turns between
			// the two named partitions.
			names := strings.SplitN(strings.Fields(box.Label)[0], "->", 2)
			from, to := partByName[names[0]], partByName[names[1]]
			sub := core.MustChain(from, to)
			full := sub.AllTurns()
			ts = core.NewTurnSet()
			for _, turn := range full.BySource(core.ByTheorem3) {
				ts.Add(turn.From, turn.To, turn.Source)
			}
		case strings.Contains(box.Label, "Theorem1"):
			name := strings.Fields(box.Label)[0]
			ts = partByName[name].InnerTurns(false)
		default: // Theorem2 box
			name := strings.Fields(box.Label)[0]
			full := partByName[name].InnerTurns(true)
			ts = core.NewTurnSet()
			for _, turn := range full.BySource(core.ByTheorem2) {
				ts.Add(turn.From, turn.To, turn.Source)
			}
		}
		got90 := turnsByShort(ts.ByKind(core.Turn90))
		gotU := turnsByShort(ts.ByKind(core.UTurn))
		gotI := turnsByShort(ts.ByKind(core.ITurn))
		assertSameTurns(t, box.Label+" 90", got90, box.Turns90)
		assertSameTurns(t, box.Label+" U", gotU, box.UTurns)
		assertSameTurns(t, box.Label+" I", gotI, box.ITurns)
	}
}

func TestFigure8TotalsAndVerification(t *testing.T) {
	chain := Figure8()
	ts := chain.AllTurns()
	n90, nU, nI := ts.Counts()
	// 4 partitions x 10 + 6 transitions x 10 = 100 90-degree turns;
	// 4 x 1 + (3+4+3+3+4+3) = 24 U-turns; (3+2+3+3+2+3) = 16 I-turns.
	if n90 != 100 || nU != 24 || nI != 16 {
		t.Errorf("Figure 8 totals = %d/%d/%d, want 100/24/16", n90, nU, nI)
	}
	rep := cdg.VerifyChain(topology.NewMesh(3, 3, 3), chain)
	if !rep.Acyclic {
		t.Errorf("Figure 8 design: %s", rep)
	}
}

func TestFigure8MaximalityClaim(t *testing.T) {
	// The paper claims Figure 8's turn set "is the maximum amount of
	// turns that offers a deadlock-free network while adding any more
	// turn creates the possibility of deadlock." Exhaustive checking
	// shows the literal claim is too strong: of the 100 missing
	// class-to-class transitions, exactly 21 can each be added
	// individually without creating a cycle (all are backward Pj -> Pi
	// transitions from which no cycle can close, e.g. Z4- -> X2-), and a
	// greedy pass accumulates 14 of them simultaneously. The measured
	// values are stable between 3x3x3 and 4x4x4 meshes and are pinned
	// here; EXPERIMENTS.md records the deviation (D5).
	chain := Figure8()
	base := chain.AllTurns()
	classes := base.Classes()
	net := topology.NewMesh(3, 3, 3)
	vcs := cdg.VCConfigFor(3, chain.Channels())
	if !cdg.VerifyTurnSet(net, vcs, base).Acyclic {
		t.Fatal("precondition: Figure 8 set must be acyclic")
	}
	checked, stillAcyclic := 0, 0
	for _, from := range classes {
		for _, to := range classes {
			if from == to || base.Allows(from, to) {
				continue
			}
			checked++
			augmented := base.Union(core.NewTurnSet())
			augmented.Add(from, to, core.ByTheorem3)
			if cdg.VerifyTurnSet(net, vcs, augmented).Acyclic {
				stillAcyclic++
			}
		}
	}
	if checked != 100 {
		t.Fatalf("checked %d additions, want 100", checked)
	}
	if stillAcyclic != 21 {
		t.Errorf("safe single-turn additions = %d, want 21 (measured, see EXPERIMENTS.md D5)", stillAcyclic)
	}
}

func TestFigure9(t *testing.T) {
	net := topology.NewMesh(3, 3, 3)
	cases := []struct {
		name  string
		chain *core.Chain
		chans int
		parts int
	}{
		{"Figure 9(a)", Figure9EightPartitions(), 24, 8},
		{"Figure 9(b)", Figure9B(), 16, 4},
		{"Figure 9(c)", Figure9C(), 16, 4},
	}
	for _, tc := range cases {
		if got := len(tc.chain.Channels()); got != tc.chans {
			t.Errorf("%s: %d channels, want %d", tc.name, got, tc.chans)
		}
		if got := tc.chain.Len(); got != tc.parts {
			t.Errorf("%s: %d partitions, want %d", tc.name, got, tc.parts)
		}
		rep := cdg.VerifyChain(net, tc.chain)
		if !rep.Acyclic {
			t.Errorf("%s: %s", tc.name, rep)
			continue
		}
		vcs := cdg.VCConfigFor(3, tc.chain.Channels())
		ad, err := cdg.Adaptiveness(net, vcs, tc.chain.AllTurns())
		if err != nil {
			t.Fatal(err)
		}
		if !ad.FullyAdaptive() {
			t.Errorf("%s must be fully adaptive: %s", tc.name, ad)
		}
	}
}

func TestFigure9SortedNames(t *testing.T) {
	// Sanity: partition names of Figure 9(a) are unique.
	names := map[string]bool{}
	for _, p := range Figure9EightPartitions().Partitions() {
		if names[p.Name()] {
			t.Fatalf("duplicate name %s", p.Name())
		}
		names[p.Name()] = true
	}
	var sorted []string
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)
	if len(sorted) != 8 {
		t.Errorf("names = %v", sorted)
	}
}
