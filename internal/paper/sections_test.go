package paper

import (
	"math/big"
	"testing"

	"ebda/internal/cdg"
	"ebda/internal/core"
	"ebda/internal/topology"
)

func TestAbstractCycleCount(t *testing.T) {
	cases := []struct{ n, vcs, want int }{
		{2, 1, 2},
		{2, 2, 8},
		{3, 1, 6},
		{3, 2, 24},
	}
	for _, tc := range cases {
		if got := AbstractCycleCount(tc.n, tc.vcs); got != tc.want {
			t.Errorf("AbstractCycleCount(%d, %d) = %d, want %d", tc.n, tc.vcs, got, tc.want)
		}
	}
}

func TestTurnModelCombinations(t *testing.T) {
	if got := TurnModelCombinations(2); got.Cmp(big.NewInt(16)) != 0 {
		t.Errorf("4^2 = %v", got)
	}
	if got := TurnModelCombinations(8); got.Cmp(big.NewInt(65536)) != 0 {
		t.Errorf("4^8 = %v", got)
	}
	// 4^24 is "more than 8 billion".
	if TurnModelCombinations(24).Cmp(big.NewInt(8_000_000_000)) <= 0 {
		t.Error("4^24 should exceed 8 billion")
	}
}

func TestSection2Claims(t *testing.T) {
	claims := Section2Claims()
	if len(claims) != 4 {
		t.Fatalf("claims = %d", len(claims))
	}
	// The 3D no-VC claim is flagged inconsistent (paper typo); the rest
	// are consistent.
	inconsistent := 0
	for _, c := range claims {
		if !c.Consistent {
			inconsistent++
			if c.Setting != "3D, no VC" {
				t.Errorf("unexpected inconsistent claim %q", c.Setting)
			}
		}
	}
	if inconsistent != 1 {
		t.Errorf("inconsistent claims = %d, want 1", inconsistent)
	}
}

func TestTurnModelSearch(t *testing.T) {
	// The paper (after Glass & Ni): of the 16 ways to remove one turn
	// from each abstract cycle, 12 are deadlock-free and 3 are unique up
	// to symmetry.
	rs := TurnModelSearch(topology.NewMesh(4, 4))
	if len(rs) != 16 {
		t.Fatalf("combinations = %d, want 16", len(rs))
	}
	free, classes := CountDeadlockFree(rs)
	if free != 12 {
		t.Errorf("deadlock-free combinations = %d, want 12", free)
	}
	if classes != 3 {
		t.Errorf("symmetry classes = %d, want 3", classes)
	}
}

func TestTurnModelSearchKnownModels(t *testing.T) {
	// West-first removes NW (ccw) and SW (cw); must be deadlock-free.
	rs := TurnModelSearch(topology.NewMesh(4, 4))
	found := false
	for _, r := range rs {
		cw := r.RemovedCW.PlainString()
		ccw := r.RemovedCCW.PlainString()
		if cw == "SW" && ccw == "NW" {
			found = true
			if !r.DeadlockFree {
				t.Error("west-first removal must be deadlock-free")
			}
		}
		// Removing two turns that share no channel structure, e.g. ES
		// (cw) and SE (ccw), leaves the other cycles closed... at least
		// one combination must be cyclic.
	}
	if !found {
		t.Error("west-first combination not present")
	}
	cyclic := 0
	for _, r := range rs {
		if !r.DeadlockFree {
			cyclic++
		}
	}
	if cyclic != 4 {
		t.Errorf("cyclic combinations = %d, want 4", cyclic)
	}
}

func TestTurnModelSearch3D(t *testing.T) {
	// The 4^6 = 4,096-combination search Section 2 sizes as the last
	// feasible turn-model case. The paper does not state the outcome;
	// our sweep finds 176 deadlock-free removals in 9 classes under the
	// 48 cube symmetries. The count is stable between 3x3x3 and 4x4x4
	// meshes (checked during development); the test pins the 3x3x3 run.
	res := TurnModelSearch3D(topology.NewMesh(3, 3, 3))
	if res.Combinations != 4096 {
		t.Fatalf("combinations = %d", res.Combinations)
	}
	if res.DeadlockFree != 176 {
		t.Errorf("deadlock-free = %d, want 176", res.DeadlockFree)
	}
	if res.Classes != 9 {
		t.Errorf("symmetry classes = %d, want 9", res.Classes)
	}
}

func TestSection5WorkedExample(t *testing.T) {
	chain, err := Section5Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := chain.String(); got != Section5Expected {
		t.Errorf("Section 5 worked example:\n got  %s\n want %s", got, Section5Expected)
	}
	// The result is Figure 9(c) up to channel order inside partitions.
	figC := Figure9C()
	if chain.Len() != figC.Len() {
		t.Fatalf("partition counts differ")
	}
	for i := range chain.Partitions() {
		if !chain.Partitions()[i].EqualUnordered(figC.Partitions()[i]) {
			t.Errorf("partition %d differs from Figure 9(c): %s vs %s",
				i, chain.Partitions()[i], figC.Partitions()[i])
		}
	}
	// And it verifies acyclic + fully adaptive.
	net := topology.NewMesh(3, 3, 3)
	rep := cdg.VerifyChain(net, chain)
	if !rep.Acyclic {
		t.Fatalf("worked example: %s", rep)
	}
	vcs := cdg.VCConfigFor(3, chain.Channels())
	ad, err := cdg.Adaptiveness(net, vcs, chain.AllTurns())
	if err != nil {
		t.Fatal(err)
	}
	if !ad.FullyAdaptive() {
		t.Errorf("worked example: %s", ad)
	}
}

func TestMinChannelClaims(t *testing.T) {
	claims, err := MinChannelClaims(6)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{2, 6, 16, 40, 96, 224}
	for i, c := range claims {
		if c.Channels != want[i] {
			t.Errorf("n=%d: %d channels, want %d", c.N, c.Channels, want[i])
		}
	}
}

func TestFigure8EqualsFigure9B(t *testing.T) {
	if !Figure8().Equal(Figure9B()) {
		t.Error("Figure 8 and Figure 9(b) must be the same design")
	}
}

func TestTable1GeneratedChainsAreTheMinimumPartitionCount(t *testing.T) {
	// The paper: the partition count cannot drop to one (two complete
	// pairs would share a partition). Every Table 1 option has >= 2
	// partitions, and merging any two always violates a theorem.
	chains, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range chains {
		if c.Len() < 2 {
			t.Errorf("%s: fewer than 2 partitions", c.PlainString())
		}
	}
	// Direct check: all four channels in one partition violates Theorem 1.
	if _, err := core.ParseChain("PA[X+ X- Y+ Y-]"); err == nil {
		t.Error("single-partition 2D design must be rejected")
	}
}
