package paper

import (
	"ebda/internal/channel"
	"ebda/internal/core"
	"ebda/internal/partstrat"
)

// Table1Expected lists the 12 partitioning options of Table 1 (maximum
// adaptiveness in a 2D network with four channels), row by row in the
// paper's layout (three columns per row).
var Table1Expected = []string{
	"PA[X+ X- Y+] -> PB[Y-]", "PA[Y+ Y- X+] -> PB[X-]", "PA[X+ Y+] -> PB[X- Y-]",
	"PA[X+ X- Y-] -> PB[Y+]", "PA[Y+ Y- X-] -> PB[X+]", "PA[X+ Y-] -> PB[X- Y+]",
	"PA[Y-] -> PB[X+ X- Y+]", "PA[X-] -> PB[Y+ Y- X+]", "PA[X- Y-] -> PB[X+ Y+]",
	"PA[Y+] -> PB[X+ X- Y-]", "PA[X+] -> PB[Y+ Y- X-]", "PA[X- Y+] -> PB[X+ Y-]",
}

// Table1 generates the 12 maximum-adaptiveness partitioning options of
// Table 1 from the Section-5 methodology:
//
//   - columns 1-2: Algorithm 2 (Derive) over Arrangement 1 with X leading
//     and over Arrangement 2 with Y leading (rows 1-2), plus the reversed
//     transition orders (rows 3-4, Section 5.3.3);
//   - column 3: the four options of the no-VC exceptional case
//     (Section 5.2.2).
//
// The result is ordered to match Table1Expected.
func Table1() ([]*core.Chain, error) {
	setX := partstrat.PairedSet(channel.X, 1)
	setY := partstrat.PairedSet(channel.Y, 1)

	colXLead, err := partstrat.Derive(partstrat.Arrangement{setX, setY})
	if err != nil {
		return nil, err
	}
	colYLead, err := partstrat.Derive(partstrat.Arrangement{setY, setX})
	if err != nil {
		return nil, err
	}
	exc := partstrat.ExceptionalCase(2)
	// ExceptionalCase emits masks 00,01,10,11 =
	// (X+Y+ -> X-Y-), (X-Y+ -> X+Y-), (X+Y- -> X-Y+), (X-Y- -> X+Y+);
	// Table 1's column order is 00, 10, 11, 01.
	excOrdered := []*core.Chain{exc[0], exc[2], exc[3], exc[1]}

	var out []*core.Chain
	for row := 0; row < 2; row++ {
		out = append(out, colXLead[row], colYLead[row], excOrdered[row])
	}
	for row := 0; row < 2; row++ {
		out = append(out, renamed(colXLead[row].Reversed()), renamed(colYLead[row].Reversed()), excOrdered[row+2])
	}
	return out, nil
}

// renamed relabels a chain's partitions PA, PB, ... in order (used after
// Reversed, which keeps original names).
func renamed(c *core.Chain) *core.Chain {
	parts := c.Partitions()
	out := make([]*core.Partition, len(parts))
	for i, p := range parts {
		out[i] = p.WithName("P" + string(rune('A'+i)))
	}
	return core.MustChain(out...)
}

// Table2Expected lists the four three-partition options of Table 2
// (intermediate adaptiveness).
var Table2Expected = []string{
	"PA[X+ Y+] -> PB[X-] -> PC[Y-]",
	"PA[X+ Y-] -> PB[X-] -> PC[Y+]",
	"PA[X- Y+] -> PB[X+] -> PC[Y-]",
	"PA[X- Y-] -> PB[X+] -> PC[Y+]",
}

// Table2 generates the four options of Table 2 by splitting the trailing
// partition of each exceptional-case option into singletons
// (Section 5.3.2). Ordered to match Table2Expected.
func Table2() []*core.Chain {
	exc := partstrat.ExceptionalCase(2) // masks 00, 01(X-), 10(Y-), 11
	ordered := []*core.Chain{exc[0], exc[2], exc[1], exc[3]}
	out := make([]*core.Chain, len(ordered))
	for i, c := range ordered {
		out[i] = partstrat.SplitLast(c)
	}
	return out
}

// Table3Expected lists the six deterministic-routing options of Table 3.
var Table3Expected = []string{
	"PA[X+] -> PB[Y+] -> PC[X-] -> PD[Y-]",
	"PA[X+] -> PB[Y-] -> PC[X-] -> PD[Y+]",
	"PA[X-] -> PB[Y+] -> PC[X+] -> PD[Y-]",
	"PA[X-] -> PB[Y-] -> PC[X+] -> PD[Y+]",
	"PA[X+] -> PB[X-] -> PC[Y+] -> PD[Y-]",
	"PA[Y+] -> PB[Y-] -> PC[X+] -> PD[X-]",
}

// Table3 generates the six deterministic options of Table 3 by fully
// splitting the exceptional-case options (rows 1-4) and the two Algorithm-1
// options with X and Y leading (rows 5-6). Ordered to match Table3Expected.
func Table3() ([]*core.Chain, error) {
	exc := partstrat.ExceptionalCase(2)
	ordered := []*core.Chain{exc[0], exc[2], exc[1], exc[3]}
	var out []*core.Chain
	for _, c := range ordered {
		out = append(out, partstrat.FullSplit(c))
	}
	xLead, err := partstrat.Arrangement{partstrat.PairedSet(channel.X, 1), partstrat.PairedSet(channel.Y, 1)}.Partition()
	if err != nil {
		return nil, err
	}
	yLead, err := partstrat.Arrangement{partstrat.PairedSet(channel.Y, 1), partstrat.PairedSet(channel.X, 1)}.Partition()
	if err != nil {
		return nil, err
	}
	out = append(out, partstrat.FullSplit(xLead), partstrat.FullSplit(yLead))
	return out, nil
}

// Table4Chain is the Odd-Even partitioning of Section 6.2:
// PA = {X- Ye*} and PB = {X+ Yo*}, where Ye/Yo are the Y channels in even
// and odd columns.
func Table4Chain() *core.Chain {
	pa := core.MustPartition("PA",
		channel.New(channel.X, channel.Minus),
		channel.NewParity(channel.Y, channel.Plus, channel.X, channel.Even),
		channel.NewParity(channel.Y, channel.Minus, channel.X, channel.Even),
	)
	pb := core.MustPartition("PB",
		channel.New(channel.X, channel.Plus),
		channel.NewParity(channel.Y, channel.Plus, channel.X, channel.Odd),
		channel.NewParity(channel.Y, channel.Minus, channel.X, channel.Odd),
	)
	return core.MustChain(pa, pb)
}

// Table4Row is one row of Table 4 (allowable turns in Odd-Even).
type Table4Row struct {
	Label   string
	Turns90 string
	UITurns string
	Notes   string
}

// Table4Expected reproduces Table 4. Endpoints use ShortPlain notation with
// parity subscripts (Ne, So). The transition row's Ne/No combinations are
// the turns the paper highlights as allowable but unusable in a mesh (even
// and odd columns are not adjacent for Y channels); our extraction also
// admits the safe W->E U-turn, which the paper's table omits (recorded in
// Notes).
func Table4Expected() []Table4Row {
	return []Table4Row{
		{Label: "in PA", Turns90: "WNe WSe NeW SeW", UITurns: "NeSe"},
		{Label: "in PB", Turns90: "ENo ESo NoE SoE", UITurns: "NoSo"},
		{Label: "PA->PB", Turns90: "WNo WSo NeE SeE",
			UITurns: "NeNo NeSo SeNo SeSo",
			Notes:   "extraction additionally admits the safe U-turn WE, omitted by the paper's table"},
	}
}

// FormatClassForDesign renders a class in the paper's table notation: the
// compass letter, with the VC number appended only when the design uses
// more than one VC in that dimension (Table 5 writes E, W, U, D but N1, N2,
// S1, S2 because only Y has two VCs).
func FormatClassForDesign(c channel.Class, vcs []int) string {
	multi := int(c.Dim) < len(vcs) && vcs[c.Dim] > 1
	if multi {
		return c.Short()
	}
	return c.ShortPlain()
}

// FormatTurnForDesign renders a turn with FormatClassForDesign endpoints.
func FormatTurnForDesign(t core.Turn, vcs []int) string {
	return FormatClassForDesign(t.From, vcs) + FormatClassForDesign(t.To, vcs)
}

// Table5Chain is the partially-connected-3D partitioning of Section 6.3:
// P = {PA[X1+ Y1* Z1+]; PB[X1- Y2* Z1-]} using 1, 2, 1 VCs along X, Y, Z.
func Table5Chain() *core.Chain {
	return core.MustParseChain("PA[X1+ Y1* Z1+] -> PB[X1- Y2* Z1-]")
}

// Table5Row is one row of Table 5.
type Table5Row struct {
	Label   string
	Turns90 string
}

// Table5Expected reproduces the thirty 90-degree turns of Table 5.
func Table5Expected() []Table5Row {
	return []Table5Row{
		{Label: "in PA", Turns90: "EN1 ES1 EU N1E N1U S1E S1U UE UN1 US1"},
		{Label: "in PB", Turns90: "WN2 WS2 WD N2W N2D S2W S2D DW DN2 DS2"},
		{Label: "PA->PB", Turns90: "EN2 ES2 ED N1W N1D S1W S1D UW UN2 US2"},
	}
}

// Table5TransitionUITurns lists the six U- and I-turns the paper reports
// alongside Table 5 (the Theorem-3 transition turns; Theorem 2 additionally
// admits the intra-partition U-turns N1S1 and N2S2).
const Table5TransitionUITurns = "EW N1N2 N1S2 S1N2 S1S2 UD"

// ElevatorFirstTurns lists the sixteen turns of the baseline Elevator-First
// routing algorithm (2, 2, 1 VCs along X, Y, Z) as given in Section 6.3.
const ElevatorFirstTurns = "E1N1 E1S1 W1N1 W1S1 N1U N1D S1U S1D UE2 UW2 DE2 DW2 E2N2 E2S2 W2N2 W2S2"

// HamiltonianChain is the Section 6.2 partitioning that covers the
// Hamiltonian-path strategy: PA = {Xe+ Xo- Y+} and PB = {Xe- Xo+ Y-},
// where Xe/Xo are the X channels in even and odd rows.
func HamiltonianChain() *core.Chain {
	pa := core.MustPartition("PA",
		channel.NewParity(channel.X, channel.Plus, channel.Y, channel.Even),
		channel.NewParity(channel.X, channel.Minus, channel.Y, channel.Odd),
		channel.New(channel.Y, channel.Plus),
	)
	pb := core.MustPartition("PB",
		channel.NewParity(channel.X, channel.Minus, channel.Y, channel.Even),
		channel.NewParity(channel.X, channel.Plus, channel.Y, channel.Odd),
		channel.New(channel.Y, channel.Minus),
	)
	return core.MustChain(pa, pb)
}

// HamiltonianPathTurns lists the eight 90-degree turns of the classic
// dual-Hamiltonian-path strategy (channels traced row by row): in even rows
// packets move east and may turn north/south into the next row; in odd rows
// they move west likewise. The twelve turns extracted from HamiltonianChain
// must include all eight.
func HamiltonianPathTurns() []core.Turn {
	mk := func(from, to channel.Class) core.Turn { return core.Turn{From: from, To: to} }
	xe := channel.NewParity(channel.X, channel.Plus, channel.Y, channel.Even)
	xo := channel.NewParity(channel.X, channel.Minus, channel.Y, channel.Odd)
	xeR := channel.NewParity(channel.X, channel.Minus, channel.Y, channel.Even)
	xoR := channel.NewParity(channel.X, channel.Plus, channel.Y, channel.Odd)
	yp := channel.New(channel.Y, channel.Plus)
	ym := channel.New(channel.Y, channel.Minus)
	return []core.Turn{
		// Forward network (PA): east in even rows, west in odd rows,
		// stepping north.
		mk(xe, yp), mk(yp, xo), mk(xo, yp), mk(yp, xe),
		// Backward network (PB): the mirrored turns stepping south.
		mk(xeR, ym), mk(ym, xoR), mk(xoR, ym), mk(ym, xeR),
	}
}
