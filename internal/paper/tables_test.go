package paper

import (
	"strings"
	"testing"

	"ebda/internal/cdg"
	"ebda/internal/channel"
	"ebda/internal/core"
	"ebda/internal/topology"
)

func TestTable1MatchesPaper(t *testing.T) {
	chains, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(chains) != 12 {
		t.Fatalf("Table 1 options = %d, want 12", len(chains))
	}
	for i, c := range chains {
		if got := c.PlainString(); got != Table1Expected[i] {
			t.Errorf("Table 1 entry %d = %s, want %s", i, got, Table1Expected[i])
		}
	}
}

func TestTable1AllMaximallyAdaptiveAndAcyclic(t *testing.T) {
	chains, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	net := topology.NewMesh(5, 5)
	for i, c := range chains {
		ts := c.AllTurns()
		n90, _, _ := ts.Counts()
		// Maximum adaptiveness: six 90-degree turns (the paper's
		// "six 90-degree turns and two U-turns" for the minimal
		// two-partition options).
		if n90 != 6 {
			t.Errorf("entry %d (%s): %d 90-degree turns, want 6", i, c.PlainString(), n90)
		}
		rep := cdg.VerifyChain(net, c)
		if !rep.Acyclic {
			t.Errorf("entry %d (%s): %s", i, c.PlainString(), rep)
		}
	}
}

func TestTable1TwoPartitionOptionsHaveTwoUTurns(t *testing.T) {
	chains, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range chains {
		if c.Len() != 2 {
			continue
		}
		_, nU, _ := c.AllTurns().Counts()
		if nU != 2 {
			t.Errorf("entry %d (%s): %d U-turns, want 2", i, c.PlainString(), nU)
		}
	}
}

func TestTable1MatchesTurnModels(t *testing.T) {
	// The paper highlights that Table 1 contains north-last, west-first
	// and negative-first. Confirm the corresponding entries produce those
	// turn sets.
	chains, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	byString := map[string]*core.Chain{}
	for _, c := range chains {
		byString[c.PlainString()] = c
	}
	cases := []struct {
		entry string
		turns string
		model string
	}{
		{"PA[X+ X- Y-] -> PB[Y+]", "WS SE ES SW EN WN", "north-last"},
		{"PA[X-] -> PB[Y+ Y- X+]", "EN NE ES SE WN WS", "west-first"},
		{"PA[X- Y-] -> PB[X+ Y+]", "WN WS SE SW NE EN", "negative-first"},
	}
	for _, tc := range cases {
		c, ok := byString[tc.entry]
		if !ok {
			t.Errorf("%s entry %q not found in Table 1", tc.model, tc.entry)
			continue
		}
		assertSameTurns(t, tc.model, turnsByPlain(c.Turns90().Turns()), tc.turns)
	}
}

func TestTable2(t *testing.T) {
	chains := Table2()
	if len(chains) != 4 {
		t.Fatalf("Table 2 options = %d, want 4", len(chains))
	}
	net := topology.NewMesh(5, 5)
	for i, c := range chains {
		if got := c.PlainString(); got != Table2Expected[i] {
			t.Errorf("entry %d = %s, want %s", i, got, Table2Expected[i])
		}
		rep := cdg.VerifyChain(net, c)
		if !rep.Acyclic {
			t.Errorf("entry %d: %s", i, rep)
		}
		// Intermediate adaptiveness: strictly between deterministic
		// (degree for XY ~ pairs/minimalSum) and maximal.
		ad, err := cdg.Adaptiveness(net, nil, c.AllTurns())
		if err != nil {
			t.Fatal(err)
		}
		if ad.BrokenPairs != 0 {
			t.Errorf("entry %d: %d broken pairs", i, ad.BrokenPairs)
		}
		if ad.FullyAdaptive() {
			t.Errorf("entry %d should not be fully adaptive", i)
		}
	}
}

func TestTable2LessAdaptiveThanTable1(t *testing.T) {
	net := topology.NewMesh(5, 5)
	// Table 1 entry with the same first partition: X+Y+ -> X-Y-.
	t1 := core.MustParseChain("PA[X+ Y+] -> PB[X- Y-]")
	t2 := Table2()[0] // X+Y+ -> X- -> Y-
	a1, err := cdg.Adaptiveness(net, nil, t1.AllTurns())
	if err != nil {
		t.Fatal(err)
	}
	a2, err := cdg.Adaptiveness(net, nil, t2.AllTurns())
	if err != nil {
		t.Fatal(err)
	}
	if a2.UsableSum >= a1.UsableSum {
		t.Errorf("splitting should reduce adaptiveness: %d >= %d", a2.UsableSum, a1.UsableSum)
	}
}

func TestTable3(t *testing.T) {
	chains, err := Table3()
	if err != nil {
		t.Fatal(err)
	}
	if len(chains) != 6 {
		t.Fatalf("Table 3 options = %d, want 6", len(chains))
	}
	net := topology.NewMesh(5, 5)
	for i, c := range chains {
		if got := c.PlainString(); got != Table3Expected[i] {
			t.Errorf("entry %d = %s, want %s", i, got, Table3Expected[i])
		}
		rep := cdg.VerifyChain(net, c)
		if !rep.Acyclic {
			t.Errorf("entry %d: %s", i, rep)
		}
		// Deterministic: exactly one usable minimal path per pair.
		ad, err := cdg.Adaptiveness(net, nil, c.AllTurns())
		if err != nil {
			t.Fatal(err)
		}
		if ad.UsableSum != ad.Pairs || ad.BrokenPairs != 0 {
			t.Errorf("entry %d (%s): not deterministic-connected: %s", i, c.PlainString(), ad)
		}
	}
}

func TestTable3ContainsXYAndYX(t *testing.T) {
	chains, err := Table3()
	if err != nil {
		t.Fatal(err)
	}
	// Entry 5 is X+ -> X- -> Y+ -> Y-: the XY algorithm (X channels
	// before Y channels). Its 90-degree turns are EN ES WN WS.
	assertSameTurns(t, "XY", turnsByPlain(chains[4].Turns90().Turns()), "EN ES WN WS")
	// Entry 6 is YX.
	assertSameTurns(t, "YX", turnsByPlain(chains[5].Turns90().Turns()), "NE NW SE SW")
}

func TestTable4OddEven(t *testing.T) {
	chain := Table4Chain()
	if err := chain.Validate(); err != nil {
		t.Fatal(err)
	}
	rows := Table4Expected()
	parts := chain.Partitions()

	// Row "in PA".
	paTs := parts[0].InnerTurns(true)
	assertSameTurns(t, "Table4 PA 90", turnsByShortBare(paTs.ByKind(core.Turn90)), rows[0].Turns90)
	assertSameTurns(t, "Table4 PA UI", turnsByShortBare(append(paTs.ByKind(core.UTurn), paTs.ByKind(core.ITurn)...)), rows[0].UITurns)
	// Row "in PB".
	pbTs := parts[1].InnerTurns(true)
	assertSameTurns(t, "Table4 PB 90", turnsByShortBare(pbTs.ByKind(core.Turn90)), rows[1].Turns90)
	assertSameTurns(t, "Table4 PB UI", turnsByShortBare(append(pbTs.ByKind(core.UTurn), pbTs.ByKind(core.ITurn)...)), rows[1].UITurns)
	// Transition row: Theorem-3 turns.
	full := chain.AllTurns()
	t3 := full.BySource(core.ByTheorem3)
	var t390, t3ui []core.Turn
	for _, turn := range t3 {
		if turn.Kind() == core.Turn90 {
			t390 = append(t390, turn)
		} else {
			t3ui = append(t3ui, turn)
		}
	}
	assertSameTurns(t, "Table4 transition 90", turnsByShortBare(t390), rows[2].Turns90)
	// The UI turns are the paper's four Ne/No combinations plus the safe
	// WE U-turn the paper omits.
	got := turnsByShortBare(t3ui)
	assertSameTurns(t, "Table4 transition UI", got, rows[2].UITurns+" WE")
}

// turnsByShortBare renders turns with ShortPlain endpoints ("WNe", "NeE").
func turnsByShortBare(ts []core.Turn) map[string]bool {
	out := map[string]bool{}
	for _, t := range ts {
		out[t.From.ShortPlain()+t.To.ShortPlain()] = true
	}
	return out
}

func TestTable4OddEvenRules(t *testing.T) {
	// Chiu's rules, mechanically: no EN/ES dependency at even columns,
	// no NW/SW dependency at odd columns; the mirror cases exist.
	chain := Table4Chain()
	net := topology.NewMesh(6, 6)
	g := cdg.BuildFromTurnSet(net, nil, chain.AllTurns())
	mustEdge := func(fromTail topology.Coord, fd channel.Dim, fs channel.Sign, toTail topology.Coord, td channel.Dim, tsgn channel.Sign, want bool, label string) {
		t.Helper()
		a, ok1 := g.FindChannel(net.ID(fromTail), fd, fs, 1)
		b, ok2 := g.FindChannel(net.ID(toTail), td, tsgn, 1)
		if !ok1 || !ok2 {
			t.Fatalf("%s: channels missing", label)
		}
		if got := g.HasEdge(a.Index, b.Index); got != want {
			t.Errorf("%s: edge = %v, want %v", label, got, want)
		}
	}
	// EN at even column x=2 (E channel (1,1)->(2,1), N at (2,1)): banned.
	mustEdge(topology.Coord{1, 1}, channel.X, channel.Plus, topology.Coord{2, 1}, channel.Y, channel.Plus, false, "EN at even column")
	// EN at odd column x=3: allowed.
	mustEdge(topology.Coord{2, 1}, channel.X, channel.Plus, topology.Coord{3, 1}, channel.Y, channel.Plus, true, "EN at odd column")
	// NW at odd column x=3 (N channel (3,0)->(3,1), W at (3,1)): banned.
	mustEdge(topology.Coord{3, 0}, channel.Y, channel.Plus, topology.Coord{3, 1}, channel.X, channel.Minus, false, "NW at odd column")
	// NW at even column x=2: allowed.
	mustEdge(topology.Coord{2, 0}, channel.Y, channel.Plus, topology.Coord{2, 1}, channel.X, channel.Minus, true, "NW at even column")
}

func TestTable4OddEvenVerifiesAndConnects(t *testing.T) {
	chain := Table4Chain()
	net := topology.NewMesh(6, 6)
	rep := cdg.VerifyChain(net, chain)
	if !rep.Acyclic {
		t.Fatalf("Odd-Even: %s", rep)
	}
	conn := cdg.Connectivity(net, nil, chain.AllTurns(), true)
	if !conn.Connected() {
		t.Errorf("Odd-Even: %s", conn)
	}
}

func TestTable4AdaptivenessVsWestFirst(t *testing.T) {
	// The paper's concrete claim: Odd-Even allows 12 turns (split across
	// odd and even columns) against West-First's 6, while offering "the
	// same level of adaptiveness". The turn counts are exact; the
	// adaptiveness comparison is qualitative — both must be partially
	// adaptive (between deterministic and fully adaptive) and within the
	// same band. Measured degrees are recorded in EXPERIMENTS.md.
	oeTs := Table4Chain().Turns90()
	n90, _, _ := oeTs.Counts()
	if n90 != 12 {
		t.Errorf("Odd-Even 90-degree turns = %d, want 12", n90)
	}
	wfChain := core.MustParseChain("PA[X-] -> PB[X+ Y+ Y-]")
	wf90, _, _ := wfChain.Turns90().Counts()
	if wf90 != 6 {
		t.Errorf("West-First 90-degree turns = %d, want 6", wf90)
	}

	net := topology.NewMesh(6, 6)
	oe, err := cdg.Adaptiveness(net, nil, Table4Chain().AllTurns())
	if err != nil {
		t.Fatal(err)
	}
	wf, err := cdg.Adaptiveness(net, nil, wfChain.AllTurns())
	if err != nil {
		t.Fatal(err)
	}
	xy, err := cdg.Adaptiveness(net, nil, core.MustParseChain("PA[X+] -> PB[X-] -> PC[Y+] -> PD[Y-]").AllTurns())
	if err != nil {
		t.Fatal(err)
	}
	for name, a := range map[string]cdg.AdaptivenessReport{"odd-even": oe, "west-first": wf} {
		if a.BrokenPairs != 0 {
			t.Errorf("%s: %d broken pairs", name, a.BrokenPairs)
		}
		if a.FullyAdaptive() {
			t.Errorf("%s must not be fully adaptive", name)
		}
		if a.Degree() <= xy.Degree() {
			t.Errorf("%s degree %.4f not above deterministic %.4f", name, a.Degree(), xy.Degree())
		}
	}
	ratio := oe.Degree() / wf.Degree()
	if ratio < 0.4 || ratio > 2.5 {
		t.Errorf("odd-even %.4f vs west-first %.4f: outside the same band", oe.Degree(), wf.Degree())
	}
}

func TestTable5(t *testing.T) {
	chain := Table5Chain()
	ts := chain.AllTurns()
	n90, nU, nI := ts.Counts()
	if n90 != 30 {
		t.Errorf("Table 5: %d 90-degree turns, want 30", n90)
	}
	// 6 transition U/I turns + 2 intra-partition Theorem-2 U-turns.
	if nU+nI != 8 {
		t.Errorf("Table 5: %d U/I turns, want 8", nU+nI)
	}
	rows := Table5Expected()
	parts := chain.Partitions()
	vcs := []int{1, 2, 1} // the design's VC counts along X, Y, Z
	fmtTurns := func(turns []core.Turn) map[string]bool {
		out := map[string]bool{}
		for _, turn := range turns {
			out[FormatTurnForDesign(turn, vcs)] = true
		}
		return out
	}
	assertSameTurns(t, "Table5 PA", fmtTurns(parts[0].InnerTurns(false).Turns()), rows[0].Turns90)
	assertSameTurns(t, "Table5 PB", fmtTurns(parts[1].InnerTurns(false).Turns()), rows[1].Turns90)
	var t390, t3ui []core.Turn
	for _, turn := range ts.BySource(core.ByTheorem3) {
		if turn.Kind() == core.Turn90 {
			t390 = append(t390, turn)
		} else {
			t3ui = append(t3ui, turn)
		}
	}
	assertSameTurns(t, "Table5 transition", fmtTurns(t390), rows[2].Turns90)
	assertSameTurns(t, "Table5 transition UI", fmtTurns(t3ui), Table5TransitionUITurns)
}

func TestTable5OnPartiallyConnected3D(t *testing.T) {
	// Verify on a vertically partially connected 3D network with two
	// elevators: acyclic, and connected when non-minimal detours through
	// elevators are permitted.
	net := topology.NewPartialMesh3D(4, 4, 3, [][2]int{{0, 0}, {3, 3}})
	chain := Table5Chain()
	vcs := cdg.VCConfigFor(3, chain.Channels())
	rep := cdg.VerifyTurnSet(net, vcs, chain.AllTurns())
	if !rep.Acyclic {
		t.Fatalf("Table 5 on partial 3D: %s", rep)
	}
	conn := cdg.Connectivity(net, vcs, chain.AllTurns(), false)
	if !conn.Connected() {
		t.Errorf("Table 5 on partial 3D: %s", conn)
	}
}

func TestElevatorFirstTurnsAcyclic(t *testing.T) {
	// The sixteen baseline Elevator-First turns form an acyclic CDG on a
	// partially connected 3D network.
	ts := core.NewTurnSet()
	for _, f := range strings.Fields(ElevatorFirstTurns) {
		turn := parseShortTurn(t, f)
		ts.Add(turn.From, turn.To, core.ByTheorem1)
	}
	net := topology.NewPartialMesh3D(4, 4, 3, [][2]int{{1, 1}, {2, 2}})
	rep := cdg.VerifyTurnSet(net, cdg.VCConfig{2, 2, 1}, ts)
	if !rep.Acyclic {
		t.Errorf("Elevator-First: %s", rep)
	}
	// Table 5's partitioning offers strictly more 90-degree turns (30 vs
	// 16) with fewer VCs (1,2,1 vs 2,2,1).
	n90, _, _ := Table5Chain().AllTurns().Counts()
	if n90 <= ts.Len() {
		t.Errorf("partitioned design %d turns should exceed Elevator-First %d", n90, ts.Len())
	}
}

// parseShortTurn parses compass-with-VC notation like "E1N1", "UE2", "N1D".
func parseShortTurn(t *testing.T, s string) core.Turn {
	t.Helper()
	classes := map[byte][2]interface{}{}
	_ = classes
	parse := func(s string) (channel.Class, string) {
		letters := map[byte]channel.Class{
			'E': channel.New(channel.X, channel.Plus),
			'W': channel.New(channel.X, channel.Minus),
			'N': channel.New(channel.Y, channel.Plus),
			'S': channel.New(channel.Y, channel.Minus),
			'U': channel.New(channel.Z, channel.Plus),
			'D': channel.New(channel.Z, channel.Minus),
		}
		c, ok := letters[s[0]]
		if !ok {
			t.Fatalf("bad compass letter in %q", s)
		}
		rest := s[1:]
		if len(rest) > 0 && rest[0] >= '1' && rest[0] <= '9' {
			c = c.WithVC(int(rest[0] - '0'))
			rest = rest[1:]
		}
		return c, rest
	}
	from, rest := parse(s)
	to, rest2 := parse(rest)
	if rest2 != "" {
		t.Fatalf("trailing junk in turn %q", s)
	}
	return core.Turn{From: from, To: to}
}

func TestHamiltonianChain(t *testing.T) {
	chain := HamiltonianChain()
	if err := chain.Validate(); err != nil {
		t.Fatal(err)
	}
	ts := chain.AllTurns()
	n90, _, _ := ts.Counts()
	if n90 != 12 {
		t.Errorf("Hamiltonian partitioning: %d 90-degree turns, want 12", n90)
	}
	// All eight classic dual-Hamiltonian-path turns are included.
	for _, want := range HamiltonianPathTurns() {
		if !ts.Allows(want.From, want.To) {
			t.Errorf("missing Hamiltonian turn %s -> %s", want.From, want.To)
		}
	}
	net := topology.NewMesh(6, 6)
	rep := cdg.VerifyTurnSet(net, nil, ts)
	if !rep.Acyclic {
		t.Errorf("Hamiltonian partitioning: %s", rep)
	}
	conn := cdg.Connectivity(net, nil, ts, false)
	if !conn.Connected() {
		t.Errorf("Hamiltonian partitioning: %s", conn)
	}
}
