package paper

import (
	"fmt"
	"math/big"
	"sort"
	"strings"

	"ebda/internal/cdg"
	"ebda/internal/channel"
	"ebda/internal/core"
	"ebda/internal/partstrat"
	"ebda/internal/topology"
)

// AbstractCycleCount returns the number of abstract cycles turn-model
// verification must consider in an n-dimensional network with vcs virtual
// channels per dimension: every ordered plane pair contributes a clockwise
// and a counterclockwise cycle for each VC choice on its two dimensions —
// n(n-1) * vcs^2. For n=2, vcs=1 this is 2; for n=2, vcs=2 it is 8; for
// n=3, vcs=1 it is 6 (Section 2's 4^2, 4^8 and 4^6 exponents).
func AbstractCycleCount(n, vcs int) int {
	return n * (n - 1) * vcs * vcs
}

// TurnModelCombinations returns 4^cycles: the number of one-turn-per-cycle
// removal combinations turn-model verification must examine (each abstract
// cycle has four 90-degree turns, one of which is prohibited).
func TurnModelCombinations(cycles int) *big.Int {
	return new(big.Int).Exp(big.NewInt(4), big.NewInt(int64(cycles)), nil)
}

// Section2Claim records one of the paper's Section-2 search-space figures
// alongside the value our formula reproduces.
type Section2Claim struct {
	Setting    string
	Cycles     int
	Combos     *big.Int
	PaperText  string
	Consistent bool
	Notes      string
}

// Section2Claims reproduces the four search-space figures of Section 2.
// The paper's "29,696" for the 3D no-VC case disagrees with its own
// parenthetical 4^6 = 4,096; we reproduce the formula value and flag the
// discrepancy.
func Section2Claims() []Section2Claim {
	mk := func(setting string, n, vcs int, paperText string, consistent bool, notes string) Section2Claim {
		cycles := AbstractCycleCount(n, vcs)
		return Section2Claim{
			Setting: setting, Cycles: cycles,
			Combos:    TurnModelCombinations(cycles),
			PaperText: paperText, Consistent: consistent, Notes: notes,
		}
	}
	return []Section2Claim{
		mk("2D, no VC", 2, 1, "16 (4^2)", true, ""),
		mk("2D, one VC added per dimension", 2, 2, "65,536 (4^8)", true, ""),
		mk("3D, no VC", 3, 1, "29,696 (4^6)", false,
			"4^6 = 4,096; the paper's 29,696 disagrees with its own exponent"),
		mk("3D, one VC added per dimension", 3, 2, "more than 8 billion", true,
			"4^24 = 2.8e14, which is indeed more than 8 billion"),
	}
}

// TurnRemoval describes one combination of the classic 2D turn-model
// search: removing one turn from the clockwise and one from the
// counterclockwise abstract cycle.
type TurnRemoval struct {
	// RemovedCW and RemovedCCW are the prohibited turns.
	RemovedCW, RemovedCCW core.Turn
	// DeadlockFree records whether the remaining six turns induce an
	// acyclic channel dependency graph.
	DeadlockFree bool
	// SymmetryClass groups deadlock-free combinations equivalent under
	// the symmetries of the square; -1 for combinations with cycles.
	SymmetryClass int
}

// cwTurns and ccwTurns are the four 90-degree turns of the two abstract
// cycles in a 2D network.
func cwTurns() []core.Turn {
	e, w := channel.New(channel.X, channel.Plus), channel.New(channel.X, channel.Minus)
	n, s := channel.New(channel.Y, channel.Plus), channel.New(channel.Y, channel.Minus)
	return []core.Turn{{From: e, To: s}, {From: s, To: w}, {From: w, To: n}, {From: n, To: e}}
}

func ccwTurns() []core.Turn {
	e, w := channel.New(channel.X, channel.Plus), channel.New(channel.X, channel.Minus)
	n, s := channel.New(channel.Y, channel.Plus), channel.New(channel.Y, channel.Minus)
	return []core.Turn{{From: e, To: n}, {From: n, To: w}, {From: w, To: s}, {From: s, To: e}}
}

// TurnModelSearch brute-forces all 16 combinations of removing one turn
// from each abstract cycle of a 2D network and verifies each remaining
// six-turn set on the given mesh through the channel dependency graph.
// The paper (citing Glass & Ni) states 12 of the 16 are deadlock-free and
// 3 are unique up to symmetry.
func TurnModelSearch(mesh *topology.Network) []TurnRemoval {
	cw, ccw := cwTurns(), ccwTurns()
	var out []TurnRemoval
	for _, rc := range cw {
		for _, rcc := range ccw {
			ts := core.NewTurnSet()
			for _, t := range cw {
				if t != rc {
					ts.Add(t.From, t.To, core.ByTheorem1)
				}
			}
			for _, t := range ccw {
				if t != rcc {
					ts.Add(t.From, t.To, core.ByTheorem1)
				}
			}
			rep := cdg.VerifyTurnSetCached(mesh, nil, ts)
			out = append(out, TurnRemoval{
				RemovedCW: rc, RemovedCCW: rcc,
				DeadlockFree:  rep.Acyclic,
				SymmetryClass: -1,
			})
		}
	}
	assignSymmetryClasses(out)
	return out
}

// assignSymmetryClasses groups the deadlock-free removals under the eight
// symmetries of the square acting on direction labels.
func assignSymmetryClasses(rs []TurnRemoval) {
	type key [4]channel.Class
	canon := func(r TurnRemoval, sym func(channel.Class) channel.Class) key {
		a := [4]channel.Class{
			sym(r.RemovedCW.From), sym(r.RemovedCW.To),
			sym(r.RemovedCCW.From), sym(r.RemovedCCW.To),
		}
		// A symmetry that swaps orientation (reflection) turns the CW
		// cycle into the CCW cycle; normalise by ordering the two
		// removed turns canonically.
		first := [2]channel.Class{a[0], a[1]}
		second := [2]channel.Class{a[2], a[3]}
		if cmpPair(first, second) > 0 {
			first, second = second, first
		}
		return key{first[0], first[1], second[0], second[1]}
	}
	syms := squareSymmetries()
	classOf := map[key]int{}
	next := 0
	for i := range rs {
		if !rs[i].DeadlockFree {
			continue
		}
		// The class of a removal is the minimum canonical key over all
		// symmetries.
		best := canon(rs[i], syms[0])
		for _, s := range syms[1:] {
			k := canon(rs[i], s)
			if cmpKey(k, best) < 0 {
				best = k
			}
		}
		id, ok := classOf[best]
		if !ok {
			id = next
			next++
			classOf[best] = id
		}
		rs[i].SymmetryClass = id
	}
}

func cmpPair(a, b [2]channel.Class) int {
	if c := a[0].Compare(b[0]); c != 0 {
		return c
	}
	return a[1].Compare(b[1])
}

func cmpKey(a, b [4]channel.Class) int {
	for i := range a {
		if c := a[i].Compare(b[i]); c != 0 {
			return c
		}
	}
	return 0
}

// squareSymmetries returns the eight direction permutations of the
// dihedral group of the square, as maps on channel classes.
func squareSymmetries() []func(channel.Class) channel.Class {
	// Represent a direction as (dim, sign); the group is generated by a
	// 90-degree rotation and a reflection across the X axis.
	rotate := func(c channel.Class) channel.Class {
		// E->N, N->W, W->S, S->E.
		switch {
		case c.Dim == channel.X && c.Sign == channel.Plus:
			return channel.New(channel.Y, channel.Plus)
		case c.Dim == channel.Y && c.Sign == channel.Plus:
			return channel.New(channel.X, channel.Minus)
		case c.Dim == channel.X && c.Sign == channel.Minus:
			return channel.New(channel.Y, channel.Minus)
		default:
			return channel.New(channel.X, channel.Plus)
		}
	}
	reflect := func(c channel.Class) channel.Class {
		if c.Dim == channel.Y {
			return c.Opposite()
		}
		return c
	}
	id := func(c channel.Class) channel.Class { return c }
	compose := func(f, g func(channel.Class) channel.Class) func(channel.Class) channel.Class {
		return func(c channel.Class) channel.Class { return f(g(c)) }
	}
	r1 := rotate
	r2 := compose(rotate, r1)
	r3 := compose(rotate, r2)
	return []func(channel.Class) channel.Class{
		id, r1, r2, r3,
		reflect, compose(reflect, r1), compose(reflect, r2), compose(reflect, r3),
	}
}

// cycleTurns returns the four 90-degree turns of one abstract cycle in
// the (a, b) plane: clockwise walks a+, b-, a-, b+ when cw, the mirror
// otherwise.
func cycleTurns(a, b channel.Dim, cw bool) []core.Turn {
	ap, am := channel.New(a, channel.Plus), channel.New(a, channel.Minus)
	bp, bm := channel.New(b, channel.Plus), channel.New(b, channel.Minus)
	if cw {
		return []core.Turn{{From: ap, To: bm}, {From: bm, To: am}, {From: am, To: bp}, {From: bp, To: ap}}
	}
	return []core.Turn{{From: ap, To: bp}, {From: bp, To: am}, {From: am, To: bm}, {From: bm, To: ap}}
}

// Search3DResult summarises the exhaustive 3D turn-model search.
type Search3DResult struct {
	Combinations int
	DeadlockFree int
	// Classes is the number of equivalence classes among the
	// deadlock-free combinations under the 48 signed-permutation
	// symmetries of the cube.
	Classes int
}

// TurnModelSearch3D brute-forces the Section-2 search the paper sizes at
// 4^6 = 4,096 combinations: a 3D network has six abstract cycles (two per
// plane), one turn is removed from each, and the remaining 18-turn set is
// checked through the channel dependency graph. The paper's point is that
// this is the last feasible size (adding one VC per dimension explodes to
// 4^24); our CDG checker sweeps it in seconds and reports how many of the
// 4,096 removals are actually deadlock-free — a figure the paper does not
// state.
func TurnModelSearch3D(mesh *topology.Network) Search3DResult {
	cycles := [][]core.Turn{
		cycleTurns(channel.X, channel.Y, true), cycleTurns(channel.X, channel.Y, false),
		cycleTurns(channel.X, channel.Z, true), cycleTurns(channel.X, channel.Z, false),
		cycleTurns(channel.Y, channel.Z, true), cycleTurns(channel.Y, channel.Z, false),
	}
	res := Search3DResult{}
	removal := make([]int, len(cycles))
	type combo = [6]int
	var freeCombos []combo
	var rec func(i int)
	rec = func(i int) {
		if i == len(cycles) {
			res.Combinations++
			ts := core.NewTurnSet()
			for ci, cyc := range cycles {
				for ti, t := range cyc {
					if ti != removal[ci] {
						ts.Add(t.From, t.To, core.ByTheorem1)
					}
				}
			}
			if cdg.VerifyTurnSetCached(mesh, nil, ts).Acyclic {
				res.DeadlockFree++
				var c combo
				copy(c[:], removal)
				freeCombos = append(freeCombos, c)
			}
			return
		}
		for removal[i] = 0; removal[i] < 4; removal[i]++ {
			rec(i + 1)
		}
	}
	rec(0)
	res.Classes = count3DSymmetryClasses(cycles, freeCombos)
	return res
}

// count3DSymmetryClasses groups deadlock-free removals under the 48 cube
// symmetries (signed axis permutations) acting on direction labels.
func count3DSymmetryClasses(cycles [][]core.Turn, combos [][6]int) int {
	syms := cubeSymmetries()
	// A combination is canonicalised by mapping its removed-turn set
	// through each symmetry and taking the lexicographically smallest
	// sorted key.
	turnKey := func(t core.Turn) string { return t.From.String() + ">" + t.To.String() }
	canon := func(c [6]int) string {
		best := ""
		for _, sym := range syms {
			keys := make([]string, 0, 6)
			for ci, cyc := range cycles {
				t := cyc[c[ci]]
				keys = append(keys, turnKey(core.Turn{From: sym(t.From), To: sym(t.To)}))
			}
			sort.Strings(keys)
			k := strings.Join(keys, ",")
			if best == "" || k < best {
				best = k
			}
		}
		return best
	}
	classes := map[string]bool{}
	for _, c := range combos {
		classes[canon(c)] = true
	}
	return len(classes)
}

// cubeSymmetries returns the 48 signed permutations of the three axes as
// maps on channel classes.
func cubeSymmetries() []func(channel.Class) channel.Class {
	perms := [][3]channel.Dim{
		{channel.X, channel.Y, channel.Z}, {channel.X, channel.Z, channel.Y},
		{channel.Y, channel.X, channel.Z}, {channel.Y, channel.Z, channel.X},
		{channel.Z, channel.X, channel.Y}, {channel.Z, channel.Y, channel.X},
	}
	var out []func(channel.Class) channel.Class
	for _, p := range perms {
		p := p
		for mask := 0; mask < 8; mask++ {
			mask := mask
			out = append(out, func(c channel.Class) channel.Class {
				nd := p[c.Dim]
				sign := c.Sign
				if mask&(1<<uint(c.Dim)) != 0 {
					sign = sign.Opposite()
				}
				nc := c
				nc.Dim = nd
				nc.Sign = sign
				return nc
			})
		}
	}
	return out
}

// CountDeadlockFree summarises a TurnModelSearch result: the number of
// deadlock-free combinations and the number of symmetry classes among
// them.
func CountDeadlockFree(rs []TurnRemoval) (free, classes int) {
	seen := map[int]bool{}
	for _, r := range rs {
		if r.DeadlockFree {
			free++
			seen[r.SymmetryClass] = true
		}
	}
	return free, len(seen)
}

// Section5Arrangement is the worked example of Section 5: a 3D network
// with 3, 2 and 3 VCs along X, Y and Z. The Z set leads (tied with X at
// three pairs); the Y set is pre-ordered Y1+, Y2+, Y1-, Y2- so consecutive
// partitions cover neighbouring regions, exactly as the paper chooses.
func Section5Arrangement() partstrat.Arrangement {
	setZ := partstrat.PairedSet(channel.Z, 3)
	setX := partstrat.PairedSet(channel.X, 3)
	setY := partstrat.MustSet(channel.Y,
		channel.NewVC(channel.Y, channel.Plus, 1),
		channel.NewVC(channel.Y, channel.Plus, 2),
		channel.NewVC(channel.Y, channel.Minus, 1),
		channel.NewVC(channel.Y, channel.Minus, 2),
	)
	return partstrat.Arrangement{setZ, setX, setY}
}

// Section5Expected is the partitioning the worked example arrives at
// (identical to Figure 9(c)).
const Section5Expected = "PA[Z1+ Z1- X1+ Y1+] -> PB[Z2+ Z2- X1- Y2+] -> PC[X2+ X2- Z3+ Y1-] -> PD[X3+ X3- Z3- Y2-]"

// Section5Run executes Algorithm 1 on the worked-example arrangement.
func Section5Run() (*core.Chain, error) {
	return Section5Arrangement().Partition()
}

// MinChannelClaim records the formula value N = (n+1) * 2^(n-1) for one
// dimension count.
type MinChannelClaim struct {
	N        int
	Channels int
}

// MinChannelClaims tabulates the Section-4 minimum-channel formula for
// n = 1..maxN and cross-checks it against the constructive design of
// partstrat.MinFullyAdaptiveChain.
func MinChannelClaims(maxN int) ([]MinChannelClaim, error) {
	var out []MinChannelClaim
	for n := 1; n <= maxN; n++ {
		want := core.MinChannelsFullyAdaptive(n)
		if n <= 8 {
			chain, err := partstrat.MinFullyAdaptiveChain(n)
			if err != nil {
				return nil, err
			}
			if got := len(chain.Channels()); got != want {
				return nil, fmt.Errorf("paper: constructive design for n=%d has %d channels, formula says %d", n, got, want)
			}
		}
		out = append(out, MinChannelClaim{N: n, Channels: want})
	}
	return out, nil
}
