// Package paper assembles the exact artifacts of the EbDa paper: the
// partition chains behind every figure and table, the turn listings the
// paper prints, and the section-level numeric claims. It is the shared
// source of truth for the reproduction harness (cmd/ebda-repro,
// cmd/ebda-tables, cmd/ebda-figures), the test suite, and the benchmarks.
//
// Where the paper's listing contains an apparent typo the corrected value
// is used and the deviation is recorded in the artifact's Notes field (see
// EXPERIMENTS.md for the full list).
package paper

import (
	"fmt"

	"ebda/internal/channel"
	"ebda/internal/core"
)

// Figure3 is the single three-channel partition of Figure 3:
// P = {X+ X- Y-}. Its 90-degree turns are WS, SE, ES and SW.
func Figure3() *core.Chain {
	return core.MustParseChain("P[X+ X- Y-]")
}

// Figure3Turns lists the four 90-degree turns the paper gives for Figure 3.
const Figure3Turns = "WS SE ES SW"

// Figure4 is the partition of Figure 4: three VCs along the Y dimension
// inside one partition ({Y1+ Y1- Y2+ Y2- Y3+ Y3-}). The ascending-order
// rule yields n(n-1)/2 = 15 U/I-turns: 9 U-turns and 6 I-turns.
func Figure4() *core.Chain {
	return core.MustParseChain("P[Y1* Y2* Y3*]")
}

// Figure5 is the two-partition chain of Figure 5 and the example of
// Theorem 3: PA{X+ X- Y-} -> PB{Y+}. Its 90-degree turns equal the
// North-Last turn model; Theorem 2 adds one X U-turn and Theorem 3 the
// S -> N U-turn.
func Figure5() *core.Chain {
	return core.MustParseChain("PA[X+ X- Y-] -> PB[Y+]")
}

// Figure5Turns90 lists the six 90-degree turns (North-Last).
const Figure5Turns90 = "WS SE ES SW EN WN"

// Figure6 returns the five partitioning strategies P1..P5 of Figure 6
// together with the routing algorithm each defines.
func Figure6() []NamedChain {
	return []NamedChain{
		{Name: "P1 (XY routing)", Chain: core.MustParseChain("PA[X+] -> PB[X-] -> PC[Y+] -> PD[Y-]")},
		{Name: "P2 (partially adaptive)", Chain: core.MustParseChain("PA[Y-] -> PB[X-] -> PC[Y+ X+]")},
		{Name: "P3 (West-First)", Chain: core.MustParseChain("PA[X-] -> PB[X+ Y+ Y-]")},
		{Name: "P4 (Negative-First)", Chain: core.MustParseChain("PA[X- Y-] -> PB[X+ Y+]")},
		{Name: "P5 (VCs add no adaptiveness)", Chain: core.MustParseChain("PA[X-] -> PB[X+ Y1+ Y1- Y2+ Y2-]")},
	}
}

// NamedChain pairs a chain with the routing algorithm it defines.
type NamedChain struct {
	Name  string
	Chain *core.Chain
}

// Figure7FourPartitions is the four-partition, eight-channel design of
// Figure 7(a): one partition per region, fully adaptive but not minimal in
// channel count.
func Figure7FourPartitions() *core.Chain {
	return core.MustParseChain(
		"PA[X1+ Y1+] -> PB[X2+ Y1-] -> PC[X2- Y2-] -> PD[X1- Y2+]")
}

// Figure7P1 is the six-channel fully adaptive design of Figure 7(b),
// equivalent to DyXY: P1 = {PA[X1+ Y1+ Y1-]; PB[X1- Y2+ Y2-]}.
func Figure7P1() *core.Chain {
	return core.MustParseChain("PA[X1+ Y1+ Y1-] -> PB[X1- Y2+ Y2-]")
}

// Figure7P2 is the alternative six-channel design of Figure 7(c):
// P2 = {PA[X1+ X1- Y1+]; PB[X2+ X2- Y1-]}.
func Figure7P2() *core.Chain {
	return core.MustParseChain("PA[X1+ X1- Y1+] -> PB[X2+ X2- Y1-]")
}

// Figure8 is the 3D design with 2, 2 and 4 VCs along X, Y and Z whose
// complete turn extraction the paper prints as Figure 8 (the partitioning
// of Figure 9(b)): PA{E1 N1 U1 D1}, PB{E2 S1 U2 D2}, PC{W2 S2 U3 D3},
// PD{W1 N2 U4 D4}.
func Figure8() *core.Chain {
	return core.MustParseChain(
		"PA[X1+ Y1+ Z1+ Z1-] -> PB[X2+ Y1- Z2+ Z2-] -> PC[X2- Y2- Z3+ Z3-] -> PD[X1- Y2+ Z4+ Z4-]")
}

// Figure8Box is one printed box of Figure 8: the turns one theorem
// contributes for one partition or partition transition.
type Figure8Box struct {
	// Label identifies the box, e.g. "PA Theorem1" or "PA->PC Theorem3".
	Label string
	// Turns90, UTurns and ITurns list the paper's turn strings in Short
	// notation (E1N1, U1D2, ...).
	Turns90, UTurns, ITurns string
	// Notes records corrections applied to the paper's listing.
	Notes string
}

// Figure8Boxes returns every box of Figure 8 exactly as printed, with one
// correction: the paper's PC->PD I-turn list contains "W1W2", which is
// backwards for a PC->PD transition (W2 is in PC, W1 in PD); the corrected
// turn is W2W1.
func Figure8Boxes() []Figure8Box {
	return []Figure8Box{
		{Label: "PA Theorem1",
			Turns90: "E1U1 E1D1 E1N1 N1U1 N1D1 N1E1 U1E1 U1N1 D1E1 D1N1"},
		{Label: "PA Theorem2", UTurns: "U1D1"},
		{Label: "PB Theorem1",
			Turns90: "E2U2 E2D2 E2S1 S1U2 S1D2 S1E2 U2E2 U2S1 D2E2 D2S1"},
		{Label: "PB Theorem2", UTurns: "U2D2"},
		{Label: "PC Theorem1",
			Turns90: "W2U3 W2D3 W2S2 S2U3 S2D3 S2W2 U3W2 U3S2 D3W2 D3S2"},
		{Label: "PC Theorem2", UTurns: "U3D3"},
		{Label: "PD Theorem1",
			Turns90: "W1U4 W1D4 W1N2 N2U4 N2D4 N2W1 U4W1 U4N2 D4W1 D4N2"},
		{Label: "PD Theorem2", UTurns: "U4D4"},
		{Label: "PA->PB Theorem3",
			Turns90: "E1U2 E1D2 E1S1 N1U2 N1D2 N1E2 U1E2 U1S1 D1E2 D1S1",
			UTurns:  "N1S1 U1D2 D1U2",
			ITurns:  "E1E2 U1U2 D1D2"},
		{Label: "PA->PC Theorem3",
			Turns90: "E1U3 E1D3 E1S2 N1U3 N1D3 N1W2 U1W2 U1S2 D1W2 D1S2",
			UTurns:  "N1S2 E1W2 U1D3 D1U3",
			ITurns:  "U1U3 D1D3"},
		{Label: "PA->PD Theorem3",
			Turns90: "E1U4 E1D4 E1N2 N1U4 N1D4 N1W1 U1W1 U1N2 D1W1 D1N2",
			UTurns:  "E1W1 U1D4 D1U4",
			ITurns:  "N1N2 U1U4 D1D4"},
		{Label: "PB->PC Theorem3",
			Turns90: "E2U3 E2D3 E2S2 S1U3 S1D3 S1W2 U2W2 U2S2 D2W2 D2S2",
			UTurns:  "E2W2 U2D3 D2U3",
			ITurns:  "S1S2 U2U3 D2D3"},
		{Label: "PB->PD Theorem3",
			Turns90: "E2U4 E2D4 E2N2 S1U4 S1D4 S1W1 U2W1 U2N2 D2W1 D2N2",
			UTurns:  "E2W1 S1N2 U2D4 D2U4",
			ITurns:  "U2U4 D2D4"},
		{Label: "PC->PD Theorem3",
			Turns90: "W2U4 W2D4 W2N2 S2U4 S2D4 S2W1 U3W1 U3N2 D3W1 D3N2",
			UTurns:  "S2N2 U3D4 D3U4",
			ITurns:  "W2W1 U3U4 D3D4",
			Notes:   "paper prints I-turn W1W2; corrected to W2W1 (W2 is in PC, W1 in PD)"},
	}
}

// Figure9EightPartitions is the eight-partition, 24-channel 3D design of
// Figure 9(a): one partition per orthant.
func Figure9EightPartitions() *core.Chain {
	return core.MustParseChain(
		"PA[X1+ Y1+ Z1+] -> PB[X1- Y2+ Z4+] -> PC[X2+ Y1- Z2+] -> PD[X2- Y2- Z3+] -> " +
			"PE[X3+ Y3+ Z1-] -> PF[X3- Y4+ Z4-] -> PG[X4- Y4- Z3-] -> PH[X4+ Y3- Z2-]")
}

// Figure9B is the 16-channel design of Figure 9(b) (2, 2, 4 VCs along X,
// Y, Z) — identical to Figure8.
func Figure9B() *core.Chain { return Figure8() }

// PlanarAdaptiveChain expresses Chien & Kim's planar-adaptive routing
// (reference [2], discussed in the paper's related work) as an EbDa
// partition chain: each routing plane Ai = (d_i, d_i+1) contributes the
// two DyXY-style partitions
//
//	PAi[d_i+ @lead  d_i+1(+,-) @vc1]  ->  PBi[d_i- @lead  d_i+1(+,-) @vc2]
//
// with lead VC 1 for the first dimension and 3 for middle dimensions, and
// planes chained in order. For n = 3 this uses 1, 3, 2 VCs (12 channels)
// against the 16 of the fully adaptive design — a worked example of the
// paper's point that prior algorithms fall out of the partitioning
// methodology. The chain's turn relation is a superset of the classic
// rule-based algorithm (Theorem 3 also admits early transitions into
// later planes).
func PlanarAdaptiveChain(n int) (*core.Chain, error) {
	if n < 2 {
		return nil, fmt.Errorf("paper: planar-adaptive needs n >= 2, got %d", n)
	}
	var parts []*core.Partition
	name := 'A'
	for i := 0; i < n-1; i++ {
		lead := 1
		if i > 0 {
			lead = 3
		}
		di, dj := channel.Dim(i), channel.Dim(i+1)
		pa, err := core.NewPartition("P"+string(name),
			channel.NewVC(di, channel.Plus, lead),
			channel.NewVC(dj, channel.Plus, 1),
			channel.NewVC(dj, channel.Minus, 1),
		)
		if err != nil {
			return nil, err
		}
		name++
		pb, err := core.NewPartition("P"+string(name),
			channel.NewVC(di, channel.Minus, lead),
			channel.NewVC(dj, channel.Plus, 2),
			channel.NewVC(dj, channel.Minus, 2),
		)
		if err != nil {
			return nil, err
		}
		name++
		parts = append(parts, pa, pb)
	}
	return core.NewChain(parts...)
}

// Figure10 is the Odd-Even turn model of Figure 10, reproduced by the
// parity partitioning of Section 6.2 — identical to Table4Chain.
func Figure10() *core.Chain { return Table4Chain() }

// Figure9C is the alternative 16-channel design of Figure 9(c) (3, 2, 3
// VCs along X, Y, Z), as produced by the Section 5 worked example:
// P = {PA[Z1* X1+ Y1+]; PB[Z2* X1- Y2+]; PC[X2* Z3+ Y1-]; PD[X3* Z3- Y2-]}.
func Figure9C() *core.Chain {
	return core.MustParseChain(
		"PA[Z1* X1+ Y1+] -> PB[Z2* X1- Y2+] -> PC[X2* Z3+ Y1-] -> PD[X3* Z3- Y2-]")
}
