package obs

import (
	"sync/atomic"
	"time"
)

// maxWorkers bounds the per-phase worker attribution table. Worker
// indices wrap modulo this (a power of two, so the hot path masks rather
// than divides); the engine's pools run far fewer workers than 64.
const maxWorkers = 64

// Phase aggregates span-style regions of the pipeline ("cdg.verify",
// "sim.run", ...) into a phase table: span count, total and maximum wall
// duration, per-worker attribution, and a duration histogram shared under
// ebda_phase_duration_seconds{phase="name"}. Recording is a few atomic
// adds; there is no per-event storage.
type Phase struct {
	name   string
	parent string
	hist   *Histogram

	count       atomic.Uint64
	totalNanos  atomic.Int64
	maxNanos    atomic.Int64
	workerNanos [maxWorkers]atomic.Int64
}

// Name returns the phase name.
func (p *Phase) Name() string { return p.name }

// Span is one open region of a phase. It is a small value — starting and
// ending a span allocates nothing. The zero Span is inert: End on it is a
// no-op, so spans can be threaded through code paths that only sometimes
// trace.
type Span struct {
	phase  *Phase
	start  time.Time
	worker int
}

// Start opens a span attributed to worker 0.
//
//ebda:hotpath
func (p *Phase) Start() Span { return p.StartWorker(0) }

// StartWorker opens a span attributed to the given worker index (wrapped
// modulo the attribution table size), so parallel stages can see how wall
// time split across their pool.
//
//ebda:hotpath
func (p *Phase) StartWorker(w int) Span {
	return Span{phase: p, start: time.Now(), worker: w & (maxWorkers - 1)} //ebda:allow detlint spans measure wall durations by design; snapshots separate timing from logic fields
}

// End closes the span, folding its wall duration into the phase table and
// the phase's duration histogram.
//
//ebda:hotpath
func (s Span) End() {
	p := s.phase
	if p == nil {
		return
	}
	d := time.Since(s.start) //ebda:allow detlint spans measure wall durations by design; snapshots separate timing from logic fields
	n := d.Nanoseconds()
	p.count.Add(1)
	p.totalNanos.Add(n)
	p.workerNanos[s.worker].Add(n)
	for {
		old := p.maxNanos.Load()
		if n <= old || p.maxNanos.CompareAndSwap(old, n) {
			break
		}
	}
	p.hist.Observe(d.Seconds())
}
