package trace

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func newTestTracer(cfg Config) *Tracer {
	if cfg.Recorder == nil {
		cfg.Recorder = NewRecorder(8, 4)
	}
	return New(cfg)
}

// TestTraceRecordPathAllocFree pins the zero-alloc contract of the
// record path: once a trace is minted, FromContext, StartSpan, End and
// the attribute setters must not allocate — they run inside
// //ebda:hotpath functions in cdg and serve.
func TestTraceRecordPathAllocFree(t *testing.T) {
	tr := newTestTracer(Config{SampleEvery: 1})
	tc := tr.Start("root")
	defer tc.Finish(200)
	ctx := NewContext(context.Background(), tc)

	allocs := testing.AllocsPerRun(200, func() {
		got := FromContext(ctx)
		sp := got.StartSpan("work")
		sp.SetInt("n", 42)
		sp.SetStr("kind", "test")
		sp.End()
		// Rewind so the bounded span buffer never fills; the reset is
		// slice-shrinking only, no allocation.
		got.mu.Lock()
		got.spans = got.spans[:1]
		got.cur = 0
		got.mu.Unlock()
	})
	if allocs != 0 {
		t.Fatalf("record path allocated %v times per op, want 0", allocs)
	}
}

func TestSpanTreeNesting(t *testing.T) {
	tr := newTestTracer(Config{SampleEvery: 1})
	tc := tr.Start("root")
	a := tc.StartSpan("a")
	b := tc.StartSpan("b") // nests under a
	b.End()
	c := tc.StartSpan("c") // back under a
	c.End()
	a.End()
	d := tc.StartSpan("d") // under root again
	d.End()
	tc.Finish(0)

	got := tr.Recorder().Snapshot()
	if len(got) != 1 {
		t.Fatalf("recorder holds %d traces, want 1", len(got))
	}
	tj := got[0].Export()
	wantParents := map[string]string{
		"root": "",
		"a":    "root",
		"b":    "a",
		"c":    "a",
		"d":    "root",
	}
	if len(tj.Spans) != len(wantParents) {
		t.Fatalf("got %d spans, want %d: %+v", len(tj.Spans), len(wantParents), tj.Spans)
	}
	name := make(map[string]string, len(tj.Spans))
	for _, sp := range tj.Spans {
		name[sp.ID] = sp.Name
	}
	for _, sp := range tj.Spans {
		if want := wantParents[sp.Name]; name[sp.Parent] != want {
			t.Errorf("span %q parent = %q, want %q", sp.Name, name[sp.Parent], want)
		}
	}
	if tj.Status != 200 {
		t.Errorf("Finish(0) status = %d, want 200", tj.Status)
	}
}

func TestSpanCapDrops(t *testing.T) {
	tr := newTestTracer(Config{SampleEvery: 1, MaxSpans: 4})
	tc := tr.Start("root")
	for i := 0; i < 10; i++ {
		sp := tc.StartSpan("filler")
		sp.End()
	}
	tc.Finish(200)
	tj := tr.Recorder().Snapshot()[0].Export()
	if len(tj.Spans) != 4 {
		t.Fatalf("got %d spans, want 4 (cap)", len(tj.Spans))
	}
	if tj.DroppedSpans != 7 {
		t.Fatalf("dropped = %d, want 7", tj.DroppedSpans)
	}
}

func TestSamplingGatesRetentionNotRecording(t *testing.T) {
	rec := NewRecorder(16, 4)
	tr := newTestTracer(Config{SampleEvery: 4, Recorder: rec})
	for i := 0; i < 8; i++ {
		tc := tr.Start("root")
		sp := tc.StartSpan("work") // recording always works
		sp.End()
		tc.Finish(200)
	}
	if got := len(rec.Snapshot()); got != 2 {
		t.Fatalf("retained %d traces of 8 at SampleEvery=4, want 2", got)
	}
}

func TestSlowLaneCapturesPastThreshold(t *testing.T) {
	rec := NewRecorder(8, 4)
	// SampleEvery 0: only the slow lane can retain.
	tr := newTestTracer(Config{SampleEvery: 0, SlowThreshold: time.Nanosecond, Recorder: rec})
	tc := tr.Start("root")
	tc.Finish(200)
	got := rec.Snapshot()
	if len(got) != 1 {
		t.Fatalf("slow lane captured %d traces, want 1", len(got))
	}
	if !got[0].Export().Slow {
		t.Fatalf("captured trace not marked slow")
	}
}

func TestSlowLaneCapturesErrors(t *testing.T) {
	rec := NewRecorder(8, 4)
	// Latency capture disabled; errors must still be captured.
	tr := newTestTracer(Config{SampleEvery: 0, SlowThreshold: -1, Recorder: rec})
	ok := tr.Start("root")
	ok.Finish(200)
	bad := tr.Start("root")
	bad.Finish(503)
	got := rec.Snapshot()
	if len(got) != 1 {
		t.Fatalf("captured %d traces, want only the 5xx one", len(got))
	}
	if st := got[0].Export().Status; st != 503 {
		t.Fatalf("captured status = %d, want 503", st)
	}
}

func TestUnretainedTracesArePooled(t *testing.T) {
	tr := newTestTracer(Config{SampleEvery: 0, SlowThreshold: -1})
	tc := tr.Start("root")
	tc.Finish(200)
	again := tr.Start("root")
	defer again.Finish(200)
	if tc != again {
		t.Skip("pool did not return the same trace (GC ran); nothing to assert")
	}
	tj := again.Export()
	if len(tj.Spans) != 1 || tj.Spans[0].Name != "root" {
		t.Fatalf("pooled trace not reset: %+v", tj.Spans)
	}
}

func TestRetainBlocksPooling(t *testing.T) {
	tr := newTestTracer(Config{SampleEvery: 0, SlowThreshold: -1})
	tc := tr.Start("root")
	tc.Retain()
	tc.Finish(200)
	// Still referenced: a follow-up span must land on this trace, and a
	// fresh Start must mint a different one.
	sp := tc.StartSpan("late")
	sp.End()
	other := tr.Start("root")
	if other == tc {
		t.Fatalf("retained trace was pooled while referenced")
	}
	other.Finish(200)
	tc.Release()
}

func TestHeaderRoundTrip(t *testing.T) {
	tr := newTestTracer(Config{Fragment: "edge", SampleEvery: 1})
	tc := tr.Start("serve.verify")
	sp := tc.StartSpan("cluster.forward")
	h := sp.Header()
	id, frag, idx, ok := ParseHeader(h)
	if !ok {
		t.Fatalf("ParseHeader(%q) not ok", h)
	}
	if id != tc.ID() || frag != "edge" || idx != 1 {
		t.Fatalf("ParseHeader(%q) = (%q, %q, %d), want (%q, edge, 1)", h, id, frag, idx, tc.ID())
	}
	sp.End()
	tc.Finish(200)

	for _, bad := range []string{
		"", "noslash", "a/b", "/b/1", "a//1", "a/b/", "a/b/c/1x", "a/b/-1", "a/b/x",
	} {
		if _, _, _, ok := ParseHeader(bad); ok {
			t.Errorf("ParseHeader(%q) accepted, want reject", bad)
		}
	}
}

func TestRemoteJoinMergesIntoOneTrace(t *testing.T) {
	rec := NewRecorder(8, 4)
	edge := newTestTracer(Config{Fragment: "edge", SampleEvery: 1, Recorder: rec})
	owner := newTestTracer(Config{Fragment: "owner", SampleEvery: 0, SlowThreshold: -1, Recorder: rec})

	et := edge.Start("serve.verify")
	hop := et.StartSpan("cluster.forward")
	header := hop.Header()

	// Owner side: remote fragments are always retained even unsampled.
	ot := owner.StartRemote(header, "serve.verify")
	peel := ot.StartSpan("cdg.verify")
	peel.End()
	ot.Finish(200)

	hop.End()
	et.SetProvenance("forwarded")
	et.Finish(200)

	merged := Collect(rec.Snapshot())
	if len(merged) != 1 {
		t.Fatalf("Collect produced %d traces, want 1 merged: %+v", len(merged), merged)
	}
	tj := merged[0]
	if tj.ID != et.ID() {
		t.Fatalf("merged ID = %q, want the edge ID %q", tj.ID, et.ID())
	}
	if len(tj.Fragments) != 2 || tj.Fragments[0] != "edge" || tj.Fragments[1] != "owner" {
		t.Fatalf("fragments = %v, want [edge owner]", tj.Fragments)
	}
	if tj.Provenance != "forwarded" {
		t.Fatalf("provenance = %q taken from the wrong fragment", tj.Provenance)
	}
	// The owner's root span must link back to the edge's forward span.
	var ownerRoot *SpanJSON
	for i := range tj.Spans {
		if tj.Spans[i].ID == "owner:0" {
			ownerRoot = &tj.Spans[i]
		}
	}
	if ownerRoot == nil {
		t.Fatalf("owner root span missing from merge: %+v", tj.Spans)
	}
	if ownerRoot.Parent != "edge:1" {
		t.Fatalf("owner root parent = %q, want edge:1", ownerRoot.Parent)
	}

	var text strings.Builder
	if err := tj.WriteText(&text); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	for _, want := range []string{"cluster.forward", "cdg.verify"} {
		if !strings.Contains(text.String(), want) {
			t.Errorf("text render missing %q:\n%s", want, text.String())
		}
	}
}

func TestRingOverwriteConcurrent(t *testing.T) {
	rec := NewRecorder(4, 2)
	tr := newTestTracer(Config{SampleEvery: 1, SlowThreshold: -1, Recorder: rec})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Concurrent readers while writers wrap the tiny ring many times.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, tj := range Collect(rec.Snapshot()) {
					if len(tj.Spans) == 0 {
						t.Error("snapshot exposed a trace with no spans")
						return
					}
				}
			}
		}()
	}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tc := tr.Start("root")
				sp := tc.StartSpan("work")
				sp.SetInt("i", int64(i))
				sp.End()
				tc.Finish(200)
			}
		}()
	}
	done := make(chan struct{})
	go func() { defer close(done); wg.Wait() }()
	go func() {
		// Give readers a moment of overlap with the writers, then stop them.
		time.Sleep(10 * time.Millisecond) //ebda:allow detlint test-only pacing
		close(stop)
	}()
	<-done
	got := rec.Snapshot()
	if len(got) > 4+2 {
		t.Fatalf("snapshot holds %d traces, ring bounds are 4+2", len(got))
	}
	if len(got) == 0 {
		t.Fatalf("snapshot empty after 800 retained finishes")
	}
	for i := 1; i < len(got); i++ {
		if got[i-1].retainedSeq.Load() < got[i].retainedSeq.Load() {
			t.Fatalf("snapshot not newest-first at %d", i)
		}
	}
}

func TestCanonicalRenderDeterministic(t *testing.T) {
	run := func() string {
		rec := NewRecorder(8, 4)
		tr := newTestTracer(Config{Fragment: "det", SampleEvery: 1, SlowThreshold: -1, Recorder: rec})
		for i := 0; i < 3; i++ {
			tc := tr.Start("serve.verify")
			look := tc.StartSpan("cache.lookup")
			look.SetInt("hit", int64(i%2))
			look.End()
			fl := tc.StartSpan("flight")
			fl.SetStr("role", "leader")
			fl.End()
			tc.SetProvenance("computed")
			tc.Finish(200)
		}
		var b strings.Builder
		for _, tj := range Collect(rec.Snapshot()) {
			if err := tj.WriteCanonicalText(&b); err != nil {
				t.Fatalf("WriteCanonicalText: %v", err)
			}
		}
		return b.String()
	}
	first, second := run(), run()
	if first != second {
		t.Fatalf("canonical renders differ:\n--- first\n%s--- second\n%s", first, second)
	}
	if strings.Contains(first, "ms") || strings.Contains(first, "det-") {
		t.Fatalf("canonical render leaks timings or IDs:\n%s", first)
	}
}

func TestNilTraceSafe(t *testing.T) {
	var tc *Trace
	ctx := NewContext(context.Background(), tc)
	if got := FromContext(ctx); got != nil {
		t.Fatalf("nil trace round-tripped as %v", got)
	}
	sp := tc.StartSpan("x")
	sp.SetInt("k", 1)
	sp.SetStr("k", "v")
	sp.End()
	if sp.Header() != "" {
		t.Fatalf("zero SpanRef rendered a header")
	}
	tc.SetProvenance("cache")
	tc.SetCoalescedWith("other")
	tc.Retain()
	tc.Release()
	tc.Finish(200)
	if tc.ID() != "" || tc.Fragment() != "" {
		t.Fatalf("nil trace has identity")
	}
}
