package trace

import (
	"strconv"
	"strings"
)

// Header is the HTTP header that propagates trace context across
// cluster hops (peer cache lookups and forwards). Its value is
// "traceID/fragment/spanIndex": the ID the whole distributed trace
// shares, the sending replica's fragment name, and the index of the
// sending span — the remote parent the receiving fragment's root span
// links back to. SpanRef.Header renders it; ParseHeader reads it.
const Header = "X-Ebda-Trace"

// ParseHeader splits an X-Ebda-Trace value. ok is false when the value
// does not carry exactly three non-empty fields with a decimal span
// index; trace IDs contain no '/', so the split is unambiguous.
func ParseHeader(v string) (id, fragment string, spanIdx int32, ok bool) {
	first := strings.IndexByte(v, '/')
	last := strings.LastIndexByte(v, '/')
	if first <= 0 || last <= first+1 || last == len(v)-1 {
		return "", "", 0, false
	}
	id, fragment = v[:first], v[first+1:last]
	if strings.ContainsRune(fragment, '/') {
		return "", "", 0, false
	}
	n, err := strconv.ParseInt(v[last+1:], 10, 32)
	if err != nil || n < 0 {
		return "", "", 0, false
	}
	return id, fragment, int32(n), true
}
