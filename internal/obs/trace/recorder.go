package trace

import (
	"sort"
	"sync/atomic"
)

// Default ring sizes when NewRecorder is given zeros.
const (
	defaultMainLane = 256
	defaultSlowLane = 64
)

// Recorder is the bounded lock-free flight recorder: two rings of
// atomic trace pointers, the sampled main lane and the always-capture
// slow/error lane. Writers claim a slot with one atomic increment and
// publish with one atomic store — no lock, no allocation — overwriting
// the oldest entry once the lane wraps. Readers snapshot whatever is
// published; an overwritten trace stays valid for any reader that
// already loaded it (overwritten traces are garbage-collected, never
// pooled).
type Recorder struct {
	main []atomic.Pointer[Trace]
	slow []atomic.Pointer[Trace]
	// mainNext/slowNext are the claim counters; insertSeq orders traces
	// across both lanes for newest-first snapshots.
	mainNext  atomic.Uint64
	slowNext  atomic.Uint64
	insertSeq atomic.Uint64
}

// DefaultRecorder is the process-wide flight recorder behind
// /debug/traces.
var DefaultRecorder = NewRecorder(0, 0)

// NewRecorder builds a recorder with the given lane sizes (0 picks the
// defaults).
func NewRecorder(mainSize, slowSize int) *Recorder {
	if mainSize <= 0 {
		mainSize = defaultMainLane
	}
	if slowSize <= 0 {
		slowSize = defaultSlowLane
	}
	return &Recorder{
		main: make([]atomic.Pointer[Trace], mainSize),
		slow: make([]atomic.Pointer[Trace], slowSize),
	}
}

// record publishes a finished trace into a lane, overwriting the oldest
// entry when the lane is full.
func (r *Recorder) record(t *Trace, slowLane bool) {
	t.retainedSeq.Store(r.insertSeq.Add(1))
	lane, next := r.main, &r.mainNext
	if slowLane {
		lane, next = r.slow, &r.slowNext
	}
	lane[(next.Add(1)-1)%uint64(len(lane))].Store(t)
}

// Snapshot returns every currently published trace, newest first
// (insertion order across both lanes). The traces are live — a remote
// fragment may still gain spans — so renderers read them under each
// trace's own lock.
func (r *Recorder) Snapshot() []*Trace {
	out := make([]*Trace, 0, len(r.main)+len(r.slow))
	for i := range r.main {
		if t := r.main[i].Load(); t != nil {
			out = append(out, t)
		}
	}
	for i := range r.slow {
		if t := r.slow[i].Load(); t != nil {
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].retainedSeq.Load() > out[j].retainedSeq.Load()
	})
	return out
}
