// Package trace is the request-scoped half of the observability layer:
// where obs aggregates every request into counters and phase tables,
// trace reconstructs one request's path through the serving pipeline as
// a tree of timed spans with typed attributes.
//
// A Tracer mints one Trace per request. The trace travels through the
// pipeline inside a context.Context (NewContext / FromContext), and the
// record path — FromContext, Trace.StartSpan, SpanRef.End and the
// attribute setters — is allocation-free, pinned by
// TestTraceRecordPathAllocFree the same way the obs record path is, so
// spans may be opened inside //ebda:hotpath functions (the hotpath
// analyzer restricts those functions to exactly this fast-path set).
//
// Every request records spans; sampling gates retention, not recording.
// When a trace finishes, the Tracer routes it: slow (past the
// SlowThreshold) and errored (5xx) traces always land in the flight
// recorder's slow lane, 1-in-SampleEvery traces land in the main lane,
// and everything else is reset and pooled. Remote fragments — traces
// joined from an X-Ebda-Trace header a peer sent along a cluster hop —
// are always retained, so a forwarded request's owner-side spans are
// available to merge with the edge replica's fragment at /debug/traces.
//
// Trace IDs are deterministic where possible: "<fragment>-<hexseq>"
// from a per-tracer sequence, so a sequential deterministic workload
// names its traces identically across runs. IDs are rendered lazily —
// an unretained, unpropagated trace never formats one.
package trace

import (
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ebda/internal/obs"
)

// maxAttrs bounds the typed attributes one span carries.
const maxAttrs = 4

// DefaultMaxSpans is the per-trace span cap: spans recorded past it are
// counted as dropped, never stored (the record path stays bounded and
// allocation-free).
const DefaultMaxSpans = 64

// DefaultSlowThreshold is the always-capture latency bound when a
// Config leaves SlowThreshold zero.
const DefaultSlowThreshold = 250 * time.Millisecond

// Trace and recorder instrumentation. finished = retained{main} +
// retained{slow} + the traces released back to the pool.
var (
	obsFinished = obs.NewCounter("ebda_trace_finished_total",
		"request traces finished (retained or pooled)")
	obsRetainedMain = obs.NewCounter(obs.Label("ebda_trace_retained_total", "lane", "main"),
		"finished traces retained in the flight recorder's sampled main lane")
	obsRetainedSlow = obs.NewCounter(obs.Label("ebda_trace_retained_total", "lane", "slow"),
		"finished traces captured by the always-on slow/error lane")
	obsSpansDropped = obs.NewCounter("ebda_trace_spans_dropped_total",
		"spans dropped by the per-trace span cap")
	obsRemoteJoins = obs.NewCounter("ebda_trace_remote_joins_total",
		"traces joined from a propagated X-Ebda-Trace header")
	obsBadHeaders = obs.NewCounter("ebda_trace_bad_headers_total",
		"X-Ebda-Trace headers that failed to parse (a fresh trace was minted instead)")
)

// Attr is one typed span attribute. IsStr selects which value field
// carries it; keys and string values must be constants or otherwise
// already-allocated strings on the record path.
type Attr struct {
	Key   string
	Str   string
	Int   int64
	IsStr bool
}

// span is one timed region of a trace. Offsets are nanoseconds since
// the trace fragment started; end == 0 marks a span still open.
type span struct {
	name   string
	parent int32 // index of the enclosing span; -1 for the root
	start  int64
	end    int64
	attrs  [maxAttrs]Attr
	nattrs int8
}

// Trace is one request's recorded fragment: a bounded tree of spans plus
// the verdict metadata Finish stamps. All span recording goes through a
// mutex — only the flight-recorder ring is lock-free — so a flight
// leader's detached compute goroutine can keep recording while the
// handler finishes the trace.
type Trace struct {
	tracer      *Tracer
	seq         uint64
	fragment    string
	remote      bool // joined from a header; always retained
	start       time.Time
	sampled     bool
	refs        atomic.Int32
	retainedSeq atomic.Uint64 // recorder insertion order; 0 = not retained

	mu            sync.Mutex
	id            string // rendered lazily; pre-set for remote joins
	remoteParent  string // "fragment:index" of the propagating span
	spans         []span
	cur           int32 // innermost open span; -1 when none
	dropped       int
	status        int
	provenance    string
	coalesced     string // trace ID of the flight leader this request joined
	slow          bool
	durationNanos int64
}

// SpanRef addresses one recorded span. The zero SpanRef is inert: End
// and the setters on it are no-ops, so spans thread through paths that
// only sometimes trace (a nil Trace or a capped span buffer both hand
// back the zero ref).
type SpanRef struct {
	t   *Trace
	idx int32
}

// ID returns the trace ID, rendering it on first use. Safe on nil.
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.idLocked()
}

// idLocked renders the ID; every caller already holds t.mu.
func (t *Trace) idLocked() string {
	if t.id == "" { //ebda:allow locklint callers hold t.mu
		t.id = t.fragment + "-" + strconv.FormatUint(t.seq, 16) //ebda:allow locklint callers hold t.mu
	}
	return t.id //ebda:allow locklint callers hold t.mu
}

// Fragment returns the name of the replica that recorded this fragment.
func (t *Trace) Fragment() string {
	if t == nil {
		return ""
	}
	return t.fragment
}

// StartSpan opens a span under the innermost open span (the root when
// none is open) and returns its ref. Past the span cap the span is
// counted dropped and the zero ref comes back. Safe on nil.
//
//ebda:hotpath
func (t *Trace) StartSpan(name string) SpanRef {
	if t == nil {
		return SpanRef{}
	}
	t.mu.Lock()
	if len(t.spans) == cap(t.spans) {
		t.dropped++
		t.mu.Unlock()
		obsSpansDropped.Inc()
		return SpanRef{}
	}
	idx := int32(len(t.spans))
	t.spans = append(t.spans, span{
		name:   name,
		parent: t.cur,
		start:  time.Since(t.start).Nanoseconds(), //ebda:allow detlint spans measure wall durations by design; canonical renderings zero them
	})
	t.cur = idx
	t.mu.Unlock()
	return SpanRef{t: t, idx: idx}
}

// End closes the span and restores its parent as the innermost open
// span. Ending twice keeps the first end time.
//
//ebda:hotpath
func (s SpanRef) End() {
	t := s.t
	if t == nil {
		return
	}
	t.mu.Lock()
	sp := &t.spans[s.idx]
	if sp.end == 0 {
		sp.end = time.Since(t.start).Nanoseconds() //ebda:allow detlint spans measure wall durations by design; canonical renderings zero them
	}
	if t.cur == s.idx {
		t.cur = sp.parent
	}
	t.mu.Unlock()
}

// SetInt attaches an integer attribute (dropped past the per-span cap).
//
//ebda:hotpath
func (s SpanRef) SetInt(key string, v int64) {
	t := s.t
	if t == nil {
		return
	}
	t.mu.Lock()
	sp := &t.spans[s.idx]
	if int(sp.nattrs) < maxAttrs {
		sp.attrs[sp.nattrs] = Attr{Key: key, Int: v}
		sp.nattrs++
	}
	t.mu.Unlock()
}

// SetStr attaches a string attribute. The value must already be
// allocated (a constant, a config field); the record path never formats.
//
//ebda:hotpath
func (s SpanRef) SetStr(key, v string) {
	t := s.t
	if t == nil {
		return
	}
	t.mu.Lock()
	sp := &t.spans[s.idx]
	if int(sp.nattrs) < maxAttrs {
		sp.attrs[sp.nattrs] = Attr{Key: key, Str: v, IsStr: true}
		sp.nattrs++
	}
	t.mu.Unlock()
}

// Header renders the X-Ebda-Trace value that names this span as the
// remote parent of a downstream fragment: "traceID/fragment/spanIndex".
// Empty for the zero ref.
func (s SpanRef) Header() string {
	t := s.t
	if t == nil {
		return ""
	}
	return t.ID() + "/" + t.fragment + "/" + strconv.FormatInt(int64(s.idx), 10)
}

// SetProvenance records which pipeline path answered the request.
func (t *Trace) SetProvenance(p string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.provenance = p
	t.mu.Unlock()
}

// SetCoalescedWith links this trace to the flight leader whose in-flight
// computation answered it.
func (t *Trace) SetCoalescedWith(leaderID string) {
	if t == nil || leaderID == "" {
		return
	}
	t.mu.Lock()
	t.coalesced = leaderID
	t.mu.Unlock()
}

// Retain takes an extra reference: the trace will not return to the
// pool until the matching Release. The flight group retains the leader's
// trace across its detached compute goroutine.
func (t *Trace) Retain() {
	if t != nil {
		t.refs.Add(1)
	}
}

// Release drops one reference; the last release of an unretained trace
// returns it to the tracer's pool. Traces held by the flight recorder
// are never pooled — the ring and any snapshot readers may still see
// them — and are left to the garbage collector once overwritten.
func (t *Trace) Release() {
	if t == nil {
		return
	}
	if t.refs.Add(-1) == 0 && t.retainedSeq.Load() == 0 {
		t.tracer.put(t)
	}
}

// Finish stamps the trace with the response status, routes it to the
// flight recorder (slow/error lane first, then the sampled main lane)
// and drops the minting reference. The trace must not be used by the
// finisher afterwards; a retained flight goroutine may keep recording
// through its own reference.
func (t *Trace) Finish(status int) {
	if t == nil {
		return
	}
	tr := t.tracer
	t.mu.Lock()
	if status == 0 {
		status = 200
	}
	t.status = status
	t.durationNanos = time.Since(t.start).Nanoseconds() //ebda:allow detlint spans measure wall durations by design; canonical renderings zero them
	if len(t.spans) > 0 && t.spans[0].end == 0 {
		t.spans[0].end = t.durationNanos
	}
	slow := tr.slow > 0 && t.durationNanos >= int64(tr.slow)
	errored := status >= 500
	t.slow = slow || errored
	t.mu.Unlock()
	obsFinished.Inc()
	switch {
	case slow || errored:
		obsRetainedSlow.Inc()
		tr.rec.record(t, true)
	case t.sampled || t.remote:
		obsRetainedMain.Inc()
		tr.rec.record(t, false)
	}
	t.Release()
}

// Config parameterizes a Tracer.
type Config struct {
	// Fragment names this replica in trace IDs and propagation headers
	// (default "local").
	Fragment string
	// SampleEvery retains 1 in N finished traces in the recorder's main
	// lane (1 = every trace; 0 = none — the slow/error lane still
	// captures).
	SampleEvery int
	// SlowThreshold is the always-capture latency bound (0 = the
	// package default; negative disables latency-based capture — errored
	// requests still land in the slow lane).
	SlowThreshold time.Duration
	// MaxSpans caps spans per trace (0 = DefaultMaxSpans).
	MaxSpans int
	// Recorder receives retained traces (nil = DefaultRecorder).
	Recorder *Recorder
}

// Tracer mints, pools and routes traces for one replica.
type Tracer struct {
	fragment string
	every    uint64
	slow     time.Duration
	maxSpans int
	rec      *Recorder
	seq      atomic.Uint64
	pool     sync.Pool
}

// New builds a tracer from cfg (see the Config field docs for defaults).
func New(cfg Config) *Tracer {
	if cfg.Fragment == "" {
		cfg.Fragment = "local"
	}
	if cfg.SampleEvery < 0 {
		cfg.SampleEvery = 0
	}
	if cfg.SlowThreshold == 0 {
		cfg.SlowThreshold = DefaultSlowThreshold
	} else if cfg.SlowThreshold < 0 {
		cfg.SlowThreshold = 0
	}
	if cfg.MaxSpans <= 0 {
		cfg.MaxSpans = DefaultMaxSpans
	}
	if cfg.Recorder == nil {
		cfg.Recorder = DefaultRecorder
	}
	return &Tracer{
		fragment: cfg.Fragment,
		every:    uint64(cfg.SampleEvery),
		slow:     cfg.SlowThreshold,
		maxSpans: cfg.MaxSpans,
		rec:      cfg.Recorder,
	}
}

// Recorder returns the recorder retained traces land in.
func (tr *Tracer) Recorder() *Recorder { return tr.rec }

// Fragment returns the tracer's replica name.
func (tr *Tracer) Fragment() string { return tr.fragment }

// Start mints a trace with root as its root span.
func (tr *Tracer) Start(root string) *Trace {
	t := tr.get()
	t.refs.Store(1)
	t.seq = tr.seq.Add(1) - 1
	t.sampled = tr.every > 0 && t.seq%tr.every == 0
	t.start = time.Now() //ebda:allow detlint spans measure wall durations by design; canonical renderings zero them
	t.StartSpan(root)
	return t
}

// StartRemote joins the trace a peer propagated via an X-Ebda-Trace
// header: the new fragment shares the sender's trace ID and records the
// sender's span as its root's remote parent. Remote fragments are
// always retained — the edge replica decided this trace matters. An
// unparseable header falls back to a fresh local trace.
func (tr *Tracer) StartRemote(header, root string) *Trace {
	id, frag, idx, ok := ParseHeader(header)
	if !ok {
		obsBadHeaders.Inc()
		return tr.Start(root)
	}
	obsRemoteJoins.Inc()
	t := tr.get()
	t.refs.Store(1)
	t.seq = tr.seq.Add(1) - 1
	t.remote = true
	t.start = time.Now() //ebda:allow detlint spans measure wall durations by design; canonical renderings zero them
	t.mu.Lock()
	t.id = id
	t.remoteParent = frag + ":" + strconv.FormatInt(int64(idx), 10)
	t.mu.Unlock()
	t.StartSpan(root)
	return t
}

// get checks a reset trace out of the pool (or builds one with a full
// span buffer preallocated).
func (tr *Tracer) get() *Trace {
	if v := tr.pool.Get(); v != nil {
		return v.(*Trace)
	}
	return &Trace{
		tracer:   tr,
		fragment: tr.fragment,
		spans:    make([]span, 0, tr.maxSpans),
		cur:      -1,
	}
}

// put resets a trace and returns it to the pool.
func (tr *Tracer) put(t *Trace) {
	t.seq = 0
	t.remote = false
	t.sampled = false
	t.mu.Lock()
	t.id = ""
	t.remoteParent = ""
	t.spans = t.spans[:0]
	t.cur = -1
	t.dropped = 0
	t.status = 0
	t.provenance = ""
	t.coalesced = ""
	t.slow = false
	t.durationNanos = 0
	t.mu.Unlock()
	tr.pool.Put(t)
}
