package trace

import (
	"fmt"
	"io"
	"strconv"
)

// AttrJSON is one rendered span attribute (integer values are rendered
// decimal, so the JSON shape is uniform).
type AttrJSON struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// SpanJSON is one span in the exported model. IDs are "fragment:index",
// stable across runs of a deterministic workload; Parent is empty only
// on the origin fragment's root span.
type SpanJSON struct {
	ID          string     `json:"id"`
	Parent      string     `json:"parent,omitempty"`
	Name        string     `json:"name"`
	StartMicros int64      `json:"start_us"`
	DurMicros   int64      `json:"dur_us"`
	Attrs       []AttrJSON `json:"attrs,omitempty"`
}

// TraceJSON is one distributed trace as served by /debug/traces: every
// recorded fragment sharing the trace ID merged into a single span
// list. Verdict metadata (status, provenance, duration) comes from the
// origin fragment — the one not joined from a propagated header.
type TraceJSON struct {
	ID            string     `json:"id"`
	Status        int        `json:"status"`
	Provenance    string     `json:"provenance,omitempty"`
	CoalescedWith string     `json:"coalesced_with,omitempty"`
	DurationMs    float64    `json:"duration_ms"`
	Slow          bool       `json:"slow,omitempty"`
	Fragments     []string   `json:"fragments"`
	DroppedSpans  int        `json:"dropped_spans,omitempty"`
	Spans         []SpanJSON `json:"spans"`
}

// export renders one fragment's spans into the JSON model, prefixing
// span IDs with the fragment name and linking the root span to the
// remote parent when the fragment was joined from a header.
func (t *Trace) export(into *TraceJSON) {
	t.mu.Lock()
	defer t.mu.Unlock()
	frag := t.fragment
	into.Fragments = append(into.Fragments, frag)
	into.DroppedSpans += t.dropped
	if t.remoteParent == "" {
		into.ID = t.idLocked()
		into.Status = t.status
		into.Provenance = t.provenance
		into.CoalescedWith = t.coalesced
		into.DurationMs = float64(t.durationNanos) / 1e6
		into.Slow = t.slow
	}
	for i := range t.spans {
		sp := &t.spans[i]
		sj := SpanJSON{
			ID:          frag + ":" + strconv.Itoa(i),
			Name:        sp.name,
			StartMicros: sp.start / 1e3,
		}
		if sp.end > sp.start {
			sj.DurMicros = (sp.end - sp.start) / 1e3
		}
		if sp.parent >= 0 {
			sj.Parent = frag + ":" + strconv.Itoa(int(sp.parent))
		} else if t.remoteParent != "" {
			sj.Parent = t.remoteParent
		}
		for a := 0; a < int(sp.nattrs); a++ {
			at := sp.attrs[a]
			v := at.Str
			if !at.IsStr {
				v = strconv.FormatInt(at.Int, 10)
			}
			sj.Attrs = append(sj.Attrs, AttrJSON{Key: at.Key, Value: v})
		}
		into.Spans = append(into.Spans, sj)
	}
}

// Export renders a single fragment as a TraceJSON (tests and the text
// renderer use it; /debug/traces merges fragments through Collect).
func (t *Trace) Export() TraceJSON {
	var tj TraceJSON
	t.export(&tj)
	if tj.ID == "" {
		tj.ID = t.ID()
	}
	return tj
}

// Collect merges a recorder snapshot (newest first) into distributed
// traces: fragments sharing a trace ID fold into one TraceJSON, origin
// fragment first, joined fragments following in snapshot order. A
// joined fragment whose origin was never recorded (or already
// overwritten) still renders, keeping the propagated ID.
func Collect(traces []*Trace) []TraceJSON {
	byID := make(map[string]int, len(traces))
	var order []*TraceJSON
	for _, t := range traces {
		id := t.ID()
		if i, ok := byID[id]; ok {
			t.export(order[i])
			continue
		}
		tj := &TraceJSON{}
		t.export(tj)
		if tj.ID == "" {
			tj.ID = id
		}
		byID[id] = len(order)
		order = append(order, tj)
	}
	out := make([]TraceJSON, len(order))
	for i, tj := range order {
		out[i] = *tj
	}
	return out
}

// WriteText renders the trace as an indented span tree:
//
//	trace local-0 status=200 provenance=computed 12.41ms [local]
//	  serve.verify 12.38ms
//	    cache.lookup 0.01ms hit=0
//	    flight 12.30ms role=leader
//	      queue.wait 0.12ms
//	      cdg.verify 11.90ms channels=224 edges=1210 acyclic=1
//
// Spans whose parent lives on an unrecorded fragment render at the top
// level under their trace.
func (tj TraceJSON) WriteText(w io.Writer) error {
	return tj.writeText(w, false)
}

// WriteCanonicalText is WriteText with every nondeterministic field
// omitted — trace IDs, span IDs and all timings — keeping names,
// nesting, attributes, status and provenance. Two runs of an identical
// sequential workload produce byte-identical canonical renderings; the
// obssmoke trace check pins that.
func (tj TraceJSON) WriteCanonicalText(w io.Writer) error {
	return tj.writeText(w, true)
}

func (tj TraceJSON) writeText(w io.Writer, canonical bool) error {
	if canonical {
		if _, err := fmt.Fprintf(w, "trace status=%d provenance=%s spans=%d\n",
			tj.Status, tj.Provenance, len(tj.Spans)); err != nil {
			return err
		}
	} else {
		if _, err := fmt.Fprintf(w, "trace %s status=%d provenance=%s %.2fms %v\n",
			tj.ID, tj.Status, tj.Provenance, tj.DurationMs, tj.Fragments); err != nil {
			return err
		}
	}
	// children[i] lists span indices whose Parent is span i; roots are
	// spans whose parent is absent from the merged list.
	index := make(map[string]int, len(tj.Spans))
	for i, sp := range tj.Spans {
		index[sp.ID] = i
	}
	children := make([][]int, len(tj.Spans))
	var roots []int
	for i, sp := range tj.Spans {
		if p, ok := index[sp.Parent]; ok && sp.Parent != "" {
			children[p] = append(children[p], i)
		} else {
			roots = append(roots, i)
		}
	}
	var walk func(i, depth int) error
	walk = func(i, depth int) error {
		sp := tj.Spans[i]
		for d := 0; d < depth+1; d++ {
			if _, err := io.WriteString(w, "  "); err != nil {
				return err
			}
		}
		if canonical {
			if _, err := io.WriteString(w, sp.Name); err != nil {
				return err
			}
		} else {
			if _, err := fmt.Fprintf(w, "%s %.2fms", sp.Name, float64(sp.DurMicros)/1e3); err != nil {
				return err
			}
		}
		for _, a := range sp.Attrs {
			if _, err := fmt.Fprintf(w, " %s=%s", a.Key, a.Value); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
		for _, c := range children[i] {
			if err := walk(c, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	for _, r := range roots {
		if err := walk(r, 0); err != nil {
			return err
		}
	}
	return nil
}
