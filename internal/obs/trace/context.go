package trace

import "context"

// ctxKey is the context key traces travel under. A zero-size struct
// converts to an interface without allocating, so FromContext stays on
// the zero-alloc record path.
type ctxKey struct{}

// NewContext returns ctx carrying t. A nil trace returns ctx unchanged,
// so callers can thread optional tracing without branching.
func NewContext(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, t)
}

// FromContext returns the trace ctx carries, or nil. Every method on a
// nil *Trace is a no-op, so the result can be used unconditionally.
//
//ebda:hotpath
func FromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(ctxKey{}).(*Trace)
	return t
}
