package obshttp

import (
	"encoding/json"
	"net/http"
	"strconv"

	"ebda/internal/obs/trace"
)

// TracesHandler serves a flight recorder's contents. The default
// response is JSON: the merged distributed traces (fragments sharing a
// trace ID folded together), newest first. Query parameters narrow and
// reshape it:
//
//	min_ms=N       only traces at least N milliseconds long
//	status=N       only traces that finished with HTTP status N
//	n=N            at most N traces (after filtering)
//	format=text    indented span trees instead of JSON
//	canonical=1    with format=text: omit IDs and timings, keeping
//	               names, nesting, attributes, status and provenance —
//	               byte-identical across runs of a deterministic
//	               sequential workload
//
// The handler only reads published ring slots — it never touches the
// verify queue or the caches, so it is safe to scrape during a drain.
func TracesHandler(rec *trace.Recorder) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		minMs, err := parseIntParam(q.Get("min_ms"))
		if err != nil {
			http.Error(w, "bad min_ms", http.StatusBadRequest)
			return
		}
		status, err := parseIntParam(q.Get("status"))
		if err != nil {
			http.Error(w, "bad status", http.StatusBadRequest)
			return
		}
		limit, err := parseIntParam(q.Get("n"))
		if err != nil {
			http.Error(w, "bad n", http.StatusBadRequest)
			return
		}

		all := trace.Collect(rec.Snapshot())
		out := all[:0]
		for _, tj := range all {
			if minMs > 0 && tj.DurationMs < float64(minMs) {
				continue
			}
			if status > 0 && tj.Status != status {
				continue
			}
			out = append(out, tj)
			if limit > 0 && len(out) == limit {
				break
			}
		}

		if q.Get("format") == "text" {
			canonical := q.Get("canonical") == "1"
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			for _, tj := range out {
				render := tj.WriteText
				if canonical {
					render = tj.WriteCanonicalText
				}
				if err := render(w); err != nil {
					return
				}
			}
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(struct {
			Traces []trace.TraceJSON `json:"traces"`
		}{Traces: out}); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}

func parseIntParam(v string) (int, error) {
	if v == "" {
		return 0, nil
	}
	return strconv.Atoi(v)
}
