// Package obshttp serves an obs.Registry over HTTP: the opt-in -obs
// endpoint shared by cmd/ebda-verify, cmd/ebda-sim and cmd/ebda-repro,
// and the introspection mux embedded by cmd/ebda-serve. It exposes
// /metrics (Prometheus text), /debug/vars (the JSON snapshot), the
// standard net/http/pprof profile handlers and the /healthz + /readyz
// probes, and implements the -obs-json end-of-run dump. It lives in a
// subpackage so the engine packages that record metrics never link
// net/http.
package obshttp

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"

	"ebda/internal/obs"
	"ebda/internal/obs/trace"
)

// Mux routes /metrics, /debug/vars, /debug/traces (the process-wide
// flight recorder), /debug/pprof/*, /healthz and /readyz for one
// registry, returning the mux so callers (ebda-serve) can add their own
// routes beside the introspection set. ready gates /readyz: nil
// means always ready; a false return (a draining server) answers 503 so
// load balancers stop routing new work while in-flight requests finish.
// /healthz is liveness and always answers 200 — a draining process is
// still alive.
func Mux(reg *obs.Registry, ready func() bool) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := reg.WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if err := reg.Snapshot().WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.Handle("/debug/traces", TracesHandler(trace.DefaultRecorder))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		if ready != nil && !ready() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, "ready\n")
	})
	return mux
}

// Handler routes the introspection set for one registry, always ready.
func Handler(reg *obs.Registry) http.Handler { return Mux(reg, nil) }

// Serve binds addr and serves Handler(reg) in a background goroutine,
// returning the server (Close stops it) and the bound address — useful
// with ":0".
func Serve(addr string, reg *obs.Registry) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: Handler(reg)}
	go srv.Serve(ln)
	return srv, ln.Addr().String(), nil
}

// Setup wires the shared -obs/-obs-json command flags against the Default
// registry: when addr is non-empty the endpoint starts immediately; the
// returned finish function writes the end-of-run JSON dump when jsonPath
// is non-empty. Commands call finish once the run is complete, before
// deciding their exit status.
func Setup(addr, jsonPath string) (finish func() error, err error) {
	if addr != "" {
		_, bound, err := Serve(addr, obs.Default)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "obs: serving /metrics, /debug/vars and /debug/pprof on %s\n", bound)
	}
	return func() error {
		if jsonPath == "" {
			return nil
		}
		f, err := os.Create(jsonPath)
		if err != nil {
			return err
		}
		if err := obs.Default.Snapshot().WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}, nil
}
