// Package obshttp serves an obs.Registry over HTTP: the opt-in -obs
// endpoint shared by cmd/ebda-verify, cmd/ebda-sim and cmd/ebda-repro. It
// exposes /metrics (Prometheus text), /debug/vars (the JSON snapshot) and
// the standard net/http/pprof profile handlers, and implements the
// -obs-json end-of-run dump. It lives in a subpackage so the engine
// packages that record metrics never link net/http.
package obshttp

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"

	"ebda/internal/obs"
)

// Handler routes /metrics, /debug/vars and /debug/pprof/* for one
// registry.
func Handler(reg *obs.Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := reg.WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if err := reg.Snapshot().WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve binds addr and serves Handler(reg) in a background goroutine,
// returning the server (Close stops it) and the bound address — useful
// with ":0".
func Serve(addr string, reg *obs.Registry) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: Handler(reg)}
	go srv.Serve(ln)
	return srv, ln.Addr().String(), nil
}

// Setup wires the shared -obs/-obs-json command flags against the Default
// registry: when addr is non-empty the endpoint starts immediately; the
// returned finish function writes the end-of-run JSON dump when jsonPath
// is non-empty. Commands call finish once the run is complete, before
// deciding their exit status.
func Setup(addr, jsonPath string) (finish func() error, err error) {
	if addr != "" {
		_, bound, err := Serve(addr, obs.Default)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "obs: serving /metrics, /debug/vars and /debug/pprof on %s\n", bound)
	}
	return func() error {
		if jsonPath == "" {
			return nil
		}
		f, err := os.Create(jsonPath)
		if err != nil {
			return err
		}
		if err := obs.Default.Snapshot().WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}, nil
}
