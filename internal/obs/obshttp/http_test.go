package obshttp

import (
	"io"
	"net/http/httptest"
	"strings"
	"testing"

	"ebda/internal/obs"
)

func TestHandlerMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("ebda_verify_cache_hits_total", "cache hits").Add(5)
	srv := httptest.NewServer(Handler(reg))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("Content-Type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "ebda_verify_cache_hits_total 5") {
		t.Fatalf("metrics body missing counter:\n%s", body)
	}
}

func TestHandlerDebugVars(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("c_total", "").Add(2)
	srv := httptest.NewServer(Handler(reg))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	s, err := obs.ParseSnapshot(body)
	if err != nil {
		t.Fatalf("debug/vars not a snapshot: %v\n%s", err, body)
	}
	if s.Counter("c_total") != 2 {
		t.Fatalf("snapshot = %+v", s)
	}
}

func TestHealthzAlwaysOK(t *testing.T) {
	draining := func() bool { return false }
	srv := httptest.NewServer(Mux(obs.NewRegistry(), draining))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET /healthz = %d, want 200 even while not ready", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if string(body) != "ok\n" {
		t.Fatalf("healthz body = %q", body)
	}
}

func TestReadyzFollowsReadiness(t *testing.T) {
	ready := true
	srv := httptest.NewServer(Mux(obs.NewRegistry(), func() bool { return ready }))
	defer srv.Close()

	get := func() int {
		resp, err := srv.Client().Get(srv.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode
	}
	if code := get(); code != 200 {
		t.Fatalf("ready server: GET /readyz = %d, want 200", code)
	}
	ready = false
	if code := get(); code != 503 {
		t.Fatalf("draining server: GET /readyz = %d, want 503", code)
	}
}

func TestReadyzNilGateAlwaysReady(t *testing.T) {
	srv := httptest.NewServer(Handler(obs.NewRegistry()))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET /readyz with nil gate = %d, want 200", resp.StatusCode)
	}
}

func TestServeBindsEphemeralPort(t *testing.T) {
	srv, addr, err := Serve("127.0.0.1:0", obs.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if !strings.Contains(addr, ":") || strings.HasSuffix(addr, ":0") {
		t.Fatalf("bound addr = %q", addr)
	}
}
