package obs

// Merge folds another snapshot into this one, series-wise by name, and
// returns the combined snapshot — the fleet view /v1/cluster/metrics
// builds by folding every replica's snapshot together. Counters and
// gauges sum (a gauge like queue depth reads as the fleet total);
// histogram bucket counts sum when both series share a bucket shape
// (otherwise the merged series keeps the receiver's buckets and only
// Sum/Count combine); phase counts, totals and worker attributions sum
// while maxima take the larger side. Series present on either side
// appear in the result, which keeps every section sorted by name as
// long as both inputs were — Registry.Snapshot and ParseSnapshot both
// guarantee that.
func (s Snapshot) Merge(o Snapshot) Snapshot {
	out := Snapshot{}

	for i, j := 0, 0; i < len(s.Counters) || j < len(o.Counters); {
		switch {
		case j == len(o.Counters) || (i < len(s.Counters) && s.Counters[i].Name < o.Counters[j].Name):
			out.Counters = append(out.Counters, s.Counters[i])
			i++
		case i == len(s.Counters) || o.Counters[j].Name < s.Counters[i].Name:
			out.Counters = append(out.Counters, o.Counters[j])
			j++
		default:
			out.Counters = append(out.Counters, CounterVal{
				Name:  s.Counters[i].Name,
				Value: s.Counters[i].Value + o.Counters[j].Value,
			})
			i, j = i+1, j+1
		}
	}

	for i, j := 0, 0; i < len(s.Gauges) || j < len(o.Gauges); {
		switch {
		case j == len(o.Gauges) || (i < len(s.Gauges) && s.Gauges[i].Name < o.Gauges[j].Name):
			out.Gauges = append(out.Gauges, s.Gauges[i])
			i++
		case i == len(s.Gauges) || o.Gauges[j].Name < s.Gauges[i].Name:
			out.Gauges = append(out.Gauges, o.Gauges[j])
			j++
		default:
			out.Gauges = append(out.Gauges, GaugeVal{
				Name:  s.Gauges[i].Name,
				Value: s.Gauges[i].Value + o.Gauges[j].Value,
			})
			i, j = i+1, j+1
		}
	}

	for i, j := 0, 0; i < len(s.Histograms) || j < len(o.Histograms); {
		switch {
		case j == len(o.Histograms) || (i < len(s.Histograms) && s.Histograms[i].Name < o.Histograms[j].Name):
			out.Histograms = append(out.Histograms, s.Histograms[i])
			i++
		case i == len(s.Histograms) || o.Histograms[j].Name < s.Histograms[i].Name:
			out.Histograms = append(out.Histograms, o.Histograms[j])
			j++
		default:
			out.Histograms = append(out.Histograms, mergeHist(s.Histograms[i], o.Histograms[j]))
			i, j = i+1, j+1
		}
	}

	for i, j := 0, 0; i < len(s.Phases) || j < len(o.Phases); {
		switch {
		case j == len(o.Phases) || (i < len(s.Phases) && s.Phases[i].Name < o.Phases[j].Name):
			out.Phases = append(out.Phases, s.Phases[i])
			i++
		case i == len(s.Phases) || o.Phases[j].Name < s.Phases[i].Name:
			out.Phases = append(out.Phases, o.Phases[j])
			j++
		default:
			out.Phases = append(out.Phases, mergePhase(s.Phases[i], o.Phases[j]))
			i, j = i+1, j+1
		}
	}
	return out
}

func mergeHist(a, b HistogramVal) HistogramVal {
	m := HistogramVal{
		Name:  a.Name,
		Sum:   a.Sum + b.Sum,
		Count: a.Count + b.Count,
	}
	sameShape := len(a.Bounds) == len(b.Bounds) && len(a.Counts) == len(b.Counts)
	for i := 0; sameShape && i < len(a.Bounds); i++ {
		sameShape = a.Bounds[i] == b.Bounds[i]
	}
	m.Bounds = append([]float64(nil), a.Bounds...)
	m.Counts = append([]uint64(nil), a.Counts...)
	if sameShape {
		for i := range b.Counts {
			m.Counts[i] += b.Counts[i]
		}
	}
	return m
}

func mergePhase(a, b PhaseVal) PhaseVal {
	m := PhaseVal{
		Name:         a.Name,
		Parent:       a.Parent,
		Count:        a.Count + b.Count,
		TotalSeconds: a.TotalSeconds + b.TotalSeconds,
		MaxSeconds:   a.MaxSeconds,
	}
	if m.Parent == "" {
		m.Parent = b.Parent
	}
	if b.MaxSeconds > m.MaxSeconds {
		m.MaxSeconds = b.MaxSeconds
	}
	// Worker rows are sorted by index on both sides (Snapshot emits them
	// in index order); merge them the same way the sections merge.
	for i, j := 0, 0; i < len(a.Workers) || j < len(b.Workers); {
		switch {
		case j == len(b.Workers) || (i < len(a.Workers) && a.Workers[i].Worker < b.Workers[j].Worker):
			m.Workers = append(m.Workers, a.Workers[i])
			i++
		case i == len(a.Workers) || b.Workers[j].Worker < a.Workers[i].Worker:
			m.Workers = append(m.Workers, b.Workers[j])
			j++
		default:
			m.Workers = append(m.Workers, WorkerVal{
				Worker:  a.Workers[i].Worker,
				Seconds: a.Workers[i].Seconds + b.Workers[j].Seconds,
			})
			i, j = i+1, j+1
		}
	}
	return m
}
