package obs

import (
	"math"
	"sync/atomic"
)

// DurationBuckets are the default bucket upper bounds for wall-duration
// histograms, in seconds: decades from one microsecond to ten seconds.
// The engine's spans range from sub-microsecond counter bumps to
// multi-second experiment sweeps, so decades keep the table small while
// still separating "cache hit" from "full rebuild".
var DurationBuckets = []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10}

// Histogram is a fixed-bucket histogram with atomic bucket counts and an
// atomically maintained float64 sum. Observe is lock-free and allocates
// nothing; bounds are immutable after construction.
type Histogram struct {
	// bounds are the ascending bucket upper bounds; counts has one extra
	// slot for the implicit +Inf bucket. Both are fixed at construction,
	// so concurrent Observe calls only touch atomics.
	bounds  []float64
	counts  []atomic.Uint64
	sumBits atomic.Uint64
	count   atomic.Uint64
}

// newHistogram builds a histogram over the given upper bounds (copied).
func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	return &Histogram{
		bounds: b,
		counts: make([]atomic.Uint64, len(b)+1),
	}
}

// Observe records one value: the first bucket whose upper bound is >= v
// (or the +Inf bucket), the total count, and the running sum via a
// compare-and-swap loop over the float64 bit pattern.
//
//ebda:hotpath
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }
